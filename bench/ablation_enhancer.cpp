// Ablation (DESIGN.md design-choice study): Enhancement-AI design
// decisions at matched training budget —
//   * DDnet (dense blocks + deconvolution decoder, the paper's pick)
//     vs a plain U-Net denoiser (§6.3's comparator family);
//   * residual vs direct prediction;
//   * the MS-SSIM loss weight (0 = pure MSE, 0.1 = paper, 1.0 = heavy).
#include <cstdio>

#include "autograd/optim.h"
#include "bench_common.h"
#include "metrics/image_quality.h"
#include "nn/ddnet.h"
#include "nn/unet.h"
#include "pipeline/enhancement_ai.h"

using namespace ccovid;

namespace {

struct EvalResult {
  double mse;
  double msssim;
};

// Shared train loop over (low, full) pairs for any module with a
// forward(Var)->Var; returns test metrics.
template <typename Net>
EvalResult train_and_eval(Net& net, const data::EnhancementDataset& ds,
                          int epochs, real_t msssim_weight, Rng& rng) {
  autograd::Adam opt(net.parameters(), 2e-3);
  autograd::ExponentialLR sched(opt, 0.9);
  std::vector<index_t> order(ds.train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int e = 0; e < epochs; ++e) {
    net.set_training(true);
    for (index_t i = static_cast<index_t>(order.size()) - 1; i > 0; --i) {
      std::swap(order[i], order[rng.uniform_int(0, i)]);
    }
    for (index_t idx : order) {
      const auto& pair = ds.train[idx];
      autograd::Var x(pair.low.clone().reshape(
          {1, 1, pair.low.dim(0), pair.low.dim(1)}));
      autograd::Var pred = net.forward(x);
      const Tensor target = pair.full.clone().reshape(
          {1, 1, pair.full.dim(0), pair.full.dim(1)});
      autograd::Var loss =
          msssim_weight > 0.0f
              ? autograd::enhancement_loss(pred, target, msssim_weight,
                                           11, 1)
              : autograd::mse_loss(pred, target);
      opt.zero_grad();
      loss.backward();
      opt.step();
    }
    sched.step();
  }
  net.set_training(false);
  EvalResult r{0.0, 0.0};
  for (const auto& pair : ds.test) {
    const Tensor e = net.enhance(pair.low);
    r.mse += metrics::mse(pair.full, e);
    r.msssim += metrics::ms_ssim(pair.full, e);
  }
  r.mse /= ds.test.size();
  r.msssim /= ds.test.size();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  const index_t px = args.quick ? 32 : 48;
  const int epochs = args.quick ? 4 : 12;

  bench::print_header(
      "Ablation: enhancement architecture & loss design choices");

  Rng rng(23);
  data::EnhancementDatasetConfig dcfg;
  dcfg.image_px = px;
  dcfg.num_train = args.quick ? 8 : 24;
  dcfg.num_val = 2;
  dcfg.num_test = args.quick ? 2 : 6;
  dcfg.lowdose.photons_per_ray = 2e4;
  const data::EnhancementDataset ds =
      data::make_enhancement_dataset(dcfg, rng);

  double baseline_mse = 0.0, baseline_ms = 0.0;
  for (const auto& pair : ds.test) {
    baseline_mse += metrics::mse(pair.full, pair.low);
    baseline_ms += metrics::ms_ssim(pair.full, pair.low);
  }
  baseline_mse /= ds.test.size();
  baseline_ms /= ds.test.size();
  std::printf("unenhanced low-dose baseline: MSE %.5f, MS-SSIM %.4f\n\n",
              baseline_mse, baseline_ms);
  std::printf("%-34s %-12s %-10s\n", "variant", "test MSE", "MS-SSIM");
  bench::print_rule(58);

  const auto report = [](const char* name, const EvalResult& r) {
    std::printf("%-34s %-12.5f %-10.4f\n", name, r.mse, r.msssim);
  };

  nn::DDnetConfig dd;
  dd.base_channels = 8;
  dd.growth = 8;
  dd.levels = 2;
  dd.dense_layers = 2;

  {
    nn::seed_init_rng(23);
    nn::DDnet net(dd);
    Rng r(1);
    report("DDnet, residual, w=0.1 (paper)",
           train_and_eval(net, ds, epochs, 0.1f, r));
  }
  {
    nn::DDnetConfig cfg = dd;
    cfg.residual = false;
    nn::seed_init_rng(23);
    nn::DDnet net(cfg);
    Rng r(1);
    report("DDnet, direct (no residual)",
           train_and_eval(net, ds, epochs, 0.1f, r));
  }
  {
    nn::seed_init_rng(23);
    nn::DDnet net(dd);
    Rng r(1);
    report("DDnet, pure MSE loss (w=0)",
           train_and_eval(net, ds, epochs, 0.0f, r));
  }
  {
    nn::seed_init_rng(23);
    nn::DDnet net(dd);
    Rng r(1);
    report("DDnet, heavy MS-SSIM (w=1.0)",
           train_and_eval(net, ds, epochs, 1.0f, r));
  }
  {
    nn::UNetConfig ucfg;
    ucfg.base_channels = 12;  // roughly parameter-matched to the DDnet
    ucfg.levels = 2;
    nn::seed_init_rng(23);
    nn::UNetDenoiser net(ucfg);
    Rng r(1);
    report("U-Net comparator, w=0.1",
           train_and_eval(net, ds, epochs, 0.1f, r));
  }

  bench::print_rule(58);
  std::printf(
      "Expected shape: every variant beats the unenhanced baseline; the\n"
      "MS-SSIM ranking tracks the MSE ranking with the composite loss\n"
      "trading a little MSE for structure. Architecture ordering at this\n"
      "miniature budget is noise-level — the paper's DDnet advantage\n"
      "materializes at clinical resolution and training scale.\n");
  return 0;
}
