// Ablation (DESIGN.md design-choice study): how much of the low-dose
// image-quality loss each reconstruction strategy recovers —
//   FBP            (the paper's reconstruction),
//   SIRT           (classic iterative reconstruction, §6.3's family),
//   FBP + DDnet    (the ComputeCOVID19+ approach).
// Also sweeps the photon budget to locate the crossover: at mild noise
// plain FBP suffices; as dose falls, learned enhancement wins.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ct/hu.h"
#include "ct/iterative.h"
#include "ct/siddon.h"
#include "metrics/image_quality.h"
#include "pipeline/enhancement_ai.h"

using namespace ccovid;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  const index_t px = args.quick ? 24 : 48;

  bench::print_header(
      "Ablation: FBP vs SIRT vs FBP+DDnet across photon budgets "
      "(mean MSE vs ground truth over phantom slices)");

  // Train the enhancer once at a middle dose.
  Rng rng(17);
  data::EnhancementDatasetConfig dcfg;
  dcfg.image_px = px;
  dcfg.num_train = args.quick ? 6 : 24;
  dcfg.num_val = 2;
  dcfg.num_test = 0;
  dcfg.lowdose.photons_per_ray = 2e4;
  const data::EnhancementDataset ds =
      data::make_enhancement_dataset(dcfg, rng);
  nn::seed_init_rng(17);
  nn::DDnetConfig ncfg;
  ncfg.base_channels = 8;
  ncfg.growth = 8;
  ncfg.levels = 2;
  ncfg.dense_layers = 2;
  pipeline::EnhancementAI enhancer(ncfg);
  pipeline::EnhancementTrainConfig tcfg;
  tcfg.epochs = args.quick ? 4 : 20;
  tcfg.lr = 2e-3;
  tcfg.msssim_scales = 1;
  std::printf("training DDnet on %zu pairs (%d epochs)...\n\n",
              ds.train.size(), tcfg.epochs);
  enhancer.train(ds, tcfg, rng);

  ct::FanBeamGeometry g = ct::paper_geometry().scaled(px);
  // SIRT warm-started from the FBP image (standard practice): the
  // iterations then refine data consistency instead of spending the
  // whole budget recovering the coarse image from zero.
  ct::SirtConfig scfg;
  scfg.iterations = args.quick ? 10 : 30;

  const std::vector<double> doses =
      args.quick ? std::vector<double>{1e4, 1e5}
                 : std::vector<double>{4e3, 1e4, 5e4, 2e5, 1e6};
  const int slices = args.quick ? 2 : 4;

  std::printf("%-12s %-12s %-12s %-12s\n", "photons b", "FBP",
              "SIRT", "FBP+DDnet");
  bench::print_rule(50);
  for (double b : doses) {
    double mse_fbp = 0, mse_sirt = 0, mse_enh = 0;
    Rng eval_rng(400 + static_cast<std::uint64_t>(b));
    for (int i = 0; i < slices; ++i) {
      const data::Anatomy anatomy = data::Anatomy::sample(eval_rng);
      const auto lesions = data::sample_covid_lesions(eval_rng);
      const data::PhantomSlice slice =
          data::render_slice(px, anatomy, lesions, 0.5);
      const Tensor mu = ct::hu_to_mu(slice.hu);
      const Tensor sino = ct::forward_project(mu, g);
      const ct::NoiseModel noise{b};
      const Tensor noisy = ct::apply_poisson_noise(sino, noise, eval_rng);

      const Tensor fbp = ct::fbp_reconstruct(noisy, g);
      const auto sirt = ct::sirt_reconstruct(noisy, g, scfg, fbp);
      const Tensor truth_norm = ct::normalize_hu(slice.hu);
      const Tensor fbp_norm = ct::normalize_hu(ct::mu_to_hu(fbp));
      const Tensor sirt_norm =
          ct::normalize_hu(ct::mu_to_hu(sirt.image));
      const Tensor enhanced = enhancer.enhance(fbp_norm);

      mse_fbp += metrics::mse(truth_norm, fbp_norm);
      mse_sirt += metrics::mse(truth_norm, sirt_norm);
      mse_enh += metrics::mse(truth_norm, enhanced);
    }
    std::printf("%-12.0e %-12.5f %-12.5f %-12.5f\n", b, mse_fbp / slices,
                mse_sirt / slices, mse_enh / slices);
  }
  bench::print_rule(50);
  std::printf(
      "Expected shape: warm-started SIRT improves on FBP (data-consistent\n"
      "refinement); FBP+DDnet gives the largest gain around its training\n"
      "dose; the advantages shrink as b -> 1e6 where reconstruction\n"
      "error, not photon noise, dominates.\n");
  return 0;
}
