// Ablation — sparse-view CT, DDnet's original problem (paper ref [45])
// and §6.3's sinogram-completion baseline: reconstruct from a fraction
// of the views and compare
//   FBP(sparse)              — streak-artifacted baseline,
//   FBP(inpainted sinogram)  — classical sinogram completion,
//   FBP(sparse) + DDnet      — learned image-domain repair,
// against the full-view reconstruction, across decimation factors.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ct/hu.h"
#include "ct/siddon.h"
#include "ct/sparse_view.h"
#include "metrics/image_quality.h"
#include "pipeline/enhancement_ai.h"

using namespace ccovid;

namespace {

Tensor fbp_hu_norm(const Tensor& sino, const ct::FanBeamGeometry& g) {
  return ct::normalize_hu(ct::mu_to_hu(ct::fbp_reconstruct(sino, g)));
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  const index_t px = args.quick ? 32 : 48;
  const index_t train_factor = 4;  // DDnet trains at one decimation

  bench::print_header(
      "Ablation: sparse-view reconstruction — FBP vs sinogram "
      "completion vs DDnet repair (mean MSE vs full-view FBP truth)");

  ct::FanBeamGeometry g = ct::paper_geometry().scaled(px);
  // Make the view count divisible by every factor we sweep.
  g.num_views = (g.num_views / 16) * 16;

  // --- training pairs: (sparse-view FBP, full-view FBP) slices ---
  Rng rng(31);
  data::EnhancementDataset ds;
  const index_t n_train = args.quick ? 6 : 24;
  for (index_t i = 0; i < n_train + 2; ++i) {
    const data::Anatomy anatomy = data::Anatomy::sample(rng);
    const auto lesions = rng.bernoulli(0.5)
                             ? data::sample_covid_lesions(rng)
                             : std::vector<data::Lesion>{};
    const data::PhantomSlice slice =
        data::render_slice(px, anatomy, lesions, rng.uniform(0.3, 0.7));
    const Tensor mu = ct::hu_to_mu(slice.hu);
    const Tensor sino = ct::forward_project(mu, g);
    ct::FanBeamGeometry gs;
    const Tensor sparse = ct::decimate_views(sino, g, train_factor, &gs);
    data::LowDosePair pair;
    pair.low = fbp_hu_norm(sparse, gs);
    pair.full = ct::normalize_hu(slice.hu);
    (i < n_train ? ds.train : ds.val).push_back(std::move(pair));
  }

  nn::seed_init_rng(31);
  nn::DDnetConfig ncfg;
  ncfg.base_channels = 8;
  ncfg.growth = 8;
  ncfg.levels = 2;
  ncfg.dense_layers = 2;
  pipeline::EnhancementAI enhancer(ncfg);
  pipeline::EnhancementTrainConfig tcfg;
  tcfg.epochs = args.quick ? 4 : 20;
  tcfg.lr = 2e-3;
  tcfg.msssim_scales = 1;
  std::printf("training DDnet on %lld sparse-view pairs (1/%lld views, "
              "%d epochs)...\n\n",
              (long long)n_train, (long long)train_factor, tcfg.epochs);
  enhancer.train(ds, tcfg, rng);

  const std::vector<index_t> factors =
      args.quick ? std::vector<index_t>{4} : std::vector<index_t>{2, 4, 8};
  const int slices = args.quick ? 2 : 4;

  std::printf("%-10s %-14s %-14s %-14s\n", "views", "sparse FBP",
              "inpainted", "sparse+DDnet");
  bench::print_rule(54);
  for (index_t factor : factors) {
    double mse_sparse = 0, mse_inpaint = 0, mse_net = 0;
    Rng eval_rng(500 + factor);
    for (int i = 0; i < slices; ++i) {
      const data::Anatomy anatomy = data::Anatomy::sample(eval_rng);
      const auto lesions = data::sample_covid_lesions(eval_rng);
      const data::PhantomSlice slice =
          data::render_slice(px, anatomy, lesions, 0.5);
      const Tensor mu = ct::hu_to_mu(slice.hu);
      const Tensor sino = ct::forward_project(mu, g);
      const Tensor truth = ct::normalize_hu(slice.hu);

      ct::FanBeamGeometry gs;
      const Tensor sparse = ct::decimate_views(sino, g, factor, &gs);
      const Tensor recon_sparse = fbp_hu_norm(sparse, gs);
      const Tensor recon_inpaint =
          fbp_hu_norm(ct::inpaint_views(sparse, g, factor), g);
      const Tensor recon_net = enhancer.enhance(recon_sparse);

      mse_sparse += metrics::mse(truth, recon_sparse);
      mse_inpaint += metrics::mse(truth, recon_inpaint);
      mse_net += metrics::mse(truth, recon_net);
    }
    std::printf("1/%-8lld %-14.5f %-14.5f %-14.5f\n", (long long)factor,
                mse_sparse / slices, mse_inpaint / slices,
                mse_net / slices);
  }
  bench::print_rule(54);
  std::printf(
      "Expected shape: error grows with decimation; sinogram inpainting\n"
      "helps at mild decimation; the learned repair wins at its training\n"
      "factor (1/%lld) — the sparse-view result DDnet was built for.\n",
      (long long)train_factor);
  return 0;
}
