// Shared helpers for the table/figure reproduction binaries: flag
// parsing, table printing, time formatting, and the reduced-scale
// default configurations (one CPU core cannot run the authors' 512x512 /
// 5120-image workload in benchmark time; every binary accepts
// --paper-scale to run the full configuration).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "core/types.h"

namespace ccovid::bench {

struct Args {
  bool paper_scale = false;  ///< full 512x512 / full-epoch configuration
  bool quick = false;        ///< minimal sanity-run configuration
  std::string out_dir = ".";

  static Args parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--paper-scale") == 0) {
        a.paper_scale = true;
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        a.quick = true;
      } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
        a.out_dir = argv[++i];
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "flags: --paper-scale (full 512x512 config, slow)\n"
            "       --quick       (minimal sanity config)\n"
            "       --out-dir D   (where CSV/PGM artifacts go)\n");
        std::exit(0);
      }
    }
    return a;
  }
};

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const char* title) {
  print_rule();
  std::printf("%s\n", title);
  print_rule();
}

/// hh:mm:ss like the paper's Table 3.
inline std::string format_hms(double seconds) {
  const long total = static_cast<long>(seconds + 0.5);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%ld:%02ld:%02ld", total / 3600,
                (total % 3600) / 60, total % 60);
  return buf;
}

}  // namespace ccovid::bench
