// Measured per-kernel-class timing of one DDnet forward pass on the
// local CPU, mirroring the paper's event-based OpenCL kernel timing
// (Table 5): each conv/deconv/pool/unpool/bn/activation invocation is
// bracketed with a timer and accumulated per class. The walk mirrors
// hetero::count_ddnet exactly, using raw ops (no autograd) on random
// weights — inference timing is weight-value independent.
#pragma once

#include "core/random.h"
#include "core/timer.h"
#include "nn/ddnet.h"
#include "ops/ops.h"

namespace ccovid::bench {

struct MeasuredBreakdown {
  double conv_s = 0;
  double deconv_s = 0;
  double other_s = 0;
  double total() const { return conv_s + deconv_s + other_s; }
};

inline MeasuredBreakdown measure_ddnet_cpu(const nn::DDnetConfig& cfg,
                                           index_t h, index_t w,
                                           const ops::KernelOptions& opt) {
  Rng rng(42);
  KernelProfile prof;
  const index_t base = cfg.base_channels;
  const index_t g = cfg.growth;

  auto rand_t = [&rng](Shape s) {
    Tensor t(std::move(s));
    rng.fill_gaussian(t, 0.0, 0.05);
    return t;
  };
  auto conv = [&](Tensor x, index_t cout, index_t k) {
    const Tensor wgt = rand_t({cout, x.dim(1), k, k});
    const Tensor b = rand_t({cout});
    ScopedKernelTimer t(prof, "convolution");
    return ops::conv2d(x, wgt, b, ops::Conv2dParams::same(k), opt);
  };
  auto deconv = [&](Tensor x, index_t cout, index_t k) {
    const Tensor wgt = rand_t({x.dim(1), cout, k, k});
    const Tensor b = rand_t({cout});
    ScopedKernelTimer t(prof, "deconvolution");
    return ops::deconv2d(x, wgt, b, ops::Deconv2dParams::same(k), opt);
  };
  auto bn_lrelu = [&](Tensor x) {
    const index_t c = x.dim(1);
    const Tensor gamma = Tensor::ones({c});
    const Tensor beta = Tensor::zeros({c});
    const Tensor mean = Tensor::zeros({c});
    const Tensor var = Tensor::ones({c});
    ScopedKernelTimer t(prof, "other");
    Tensor y = ops::batch_norm_infer(x, gamma, beta, mean, var);
    return ops::leaky_relu(y, 0.01f);
  };
  auto pool = [&](Tensor x) {
    ScopedKernelTimer t(prof, "other");
    return ops::max_pool2d(x, {3, 2, 1}).output;
  };
  auto unpool = [&](Tensor x) {
    ScopedKernelTimer t(prof, "other");
    return ops::unpool2d_bilinear(x, 2);
  };

  Tensor x = rand_t({1, cfg.in_channels, h, w});
  x = bn_lrelu(conv(x, base, 7));
  std::vector<Tensor> skips{x};
  for (int level = 0; level < cfg.levels; ++level) {
    x = pool(x);
    Tensor block_in = x;
    std::vector<Tensor> features{block_in};
    for (int l = 0; l < cfg.dense_layers; ++l) {
      Tensor hcat = features.size() == 1 ? features[0]
                                         : ops::concat_channels(features);
      Tensor y = bn_lrelu(hcat);
      y = conv(y, 4 * g, 1);
      y = bn_lrelu(y);
      y = conv(y, g, 5);
      features.push_back(y);
    }
    x = ops::concat_channels(features);
    x = bn_lrelu(conv(x, base, 1));
    if (level + 1 < cfg.levels) skips.push_back(x);
  }
  for (int level = 0; level < cfg.levels; ++level) {
    const bool is_output = (level == cfg.levels - 1);
    x = unpool(x);
    x = ops::concat_channels(
        {x, skips[static_cast<std::size_t>(cfg.levels - 1 - level)]});
    x = bn_lrelu(deconv(x, 2 * base, 5));
    x = deconv(x, is_output ? cfg.out_channels : base, 1);
    if (!is_output) x = bn_lrelu(x);
  }

  MeasuredBreakdown out;
  out.conv_s = prof.total("convolution");
  out.deconv_s = prof.total("deconvolution");
  out.other_s = prof.total("other");
  return out;
}

/// Reduced DDnet used by the inference benches when --paper-scale is not
/// given (full 512x512 paper DDnet needs minutes per pass on one core).
inline nn::DDnetConfig bench_inference_config(bool paper_scale,
                                              index_t* image_px) {
  if (paper_scale) {
    *image_px = 512;
    return nn::DDnetConfig::paper();
  }
  *image_px = 128;
  nn::DDnetConfig cfg = nn::DDnetConfig::paper();
  cfg.base_channels = 8;
  cfg.growth = 8;
  return cfg;
}

}  // namespace ccovid::bench
