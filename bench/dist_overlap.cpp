// Distributed training step — sequential vs overlapped gradient sync.
//
// Two measurements per (world, collective, bucket budget) cell:
//
//  * MODELED cluster step time, from the same roofline + interconnect
//    models the Table 3/4 benches use. Compute C is the projected
//    T4-class step time for the PAPER-config DDnet (forward from the
//    instrumented op counts, backward priced at 2x forward — the
//    standard two-GEMM-per-layer estimate); the interconnect is
//    commodity 1 GbE, where the 2.3 MB gradient payload makes sync a
//    large fraction of the step — the regime bucketed overlap exists
//    for (on 10 GbE the same payload is a few percent of the step and
//    overlap is a wash; that regime is visible by reading the comm
//    column). Sequential sync pays C + allreduce(all bytes) serially;
//    overlapped sync replays the bucket pipeline: bucket b's gradients
//    are ready at C x (fraction of elements produced through bucket
//    b), its allreduce starts when both the gradients and the (serial)
//    comm channel are free, and the step ends when compute AND the
//    last bucket finish. The reported speedup is seq / overlapped —
//    the quantity gated by scripts/check_bench.py --kind overlap
//    (world-4 row, floor 1.25x).
//
//  * REAL single-machine wall time + bitwise check: both modes actually
//    train (threads over the in-process transport), and the post-epoch
//    parameters of the overlapped run must match the sequential run
//    bit for bit on every rank (the dist/collective.h canonical-fold
//    contract). `bitwise_match` is a HARD gate in check_bench.
//
// One extra probe run records a level-2 trace of an overlapped epoch
// and reports `trace_overlap_frac`: the fraction of ddp.allreduce span
// time that coincides with autograd.node spans of the same rank lane —
// direct evidence the collective ran while backward was still
// producing gradients (> 0 is gated; the chrome://tracing export is
// written next to the JSON for eyeballing the lanes).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "autograd/losses.h"
#include "bench_common.h"
#include "core/digest.h"
#include "core/parallel.h"
#include "dist/collective.h"
#include "dist/ddp.h"
#include "hetero/ddnet_counts.h"
#include "hetero/device_model.h"
#include "nn/ddnet.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace ccovid;

namespace {

nn::DDnetConfig bench_net_config() {
  nn::DDnetConfig cfg;
  cfg.base_channels = 8;
  cfg.growth = 8;
  cfg.dense_layers = 2;
  cfg.levels = 2;
  return cfg;
}

struct ModeledStep {
  double seq_s = 0;
  double overlap_s = 0;
  double speedup() const { return overlap_s > 0 ? seq_s / overlap_s : 0; }
};

/// Replays the bucket pipeline against the analytic models. `buckets`
/// come from the real trainer's plan, in drain order (bucket 0 = the
/// deepest parameters, produced first by backward).
ModeledStep model_step(double compute_s,
                       const std::vector<dist::DdpTrainer::Bucket>& buckets,
                       index_t total_elems, const dist::InterconnectModel& net,
                       dist::Collective coll, int world) {
  ModeledStep m;
  const std::uint64_t total_bytes =
      static_cast<std::uint64_t>(total_elems) * sizeof(real_t);
  m.seq_s = compute_s + net.collective_seconds(coll, total_bytes, world);
  double produced = 0;  // elements finalized so far, in drain order
  double comm_free = 0;
  double last_finish = 0;
  for (const auto& b : buckets) {
    produced += static_cast<double>(b.elems);
    const double ready =
        compute_s * (produced / static_cast<double>(total_elems));
    const double start = std::max(ready, comm_free);
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(b.elems) * sizeof(real_t);
    comm_free = start + net.collective_seconds(coll, bytes, world);
    last_finish = comm_free;
  }
  m.overlap_s = std::max(compute_s, last_finish);
  return m;
}

struct RealRun {
  double wall_s = 0;
  std::vector<std::uint64_t> rank_digests;
};

RealRun run_real(const nn::DDnetConfig& net_cfg, dist::DdpConfig cfg,
                 index_t dataset, index_t px) {
  nn::seed_init_rng(42);
  Rng data_rng(43);
  std::vector<Tensor> inputs, targets;
  for (index_t i = 0; i < dataset; ++i) {
    Tensor t({1, 1, px, px});
    data_rng.fill_uniform(t, 0.2, 0.8);
    Tensor in = t.clone();
    for (index_t j = 0; j < in.numel(); ++j) {
      in.data()[j] += static_cast<real_t>(data_rng.gaussian(0, 0.1));
    }
    inputs.push_back(std::move(in));
    targets.push_back(std::move(t));
  }
  dist::DdpTrainer trainer(
      [&] { return std::make_shared<nn::DDnet>(net_cfg); }, cfg);
  auto loss_fn = [&](nn::Module& model, int /*rank*/,
                     const std::vector<index_t>& samples) {
    auto& net = dynamic_cast<nn::DDnet&>(model);
    autograd::Var total;
    for (index_t s : samples) {
      autograd::Var pred = net.forward(autograd::Var(inputs[s].clone()));
      autograd::Var loss = autograd::mse_loss(pred, targets[s]);
      total = total.defined() ? autograd::add(total, loss) : loss;
    }
    return autograd::mul_scalar(total,
                                1.0f / static_cast<real_t>(samples.size()));
  };
  Rng rng(44);
  const auto t0 = std::chrono::steady_clock::now();
  (void)trainer.train_epoch(dataset, loss_fn, rng);
  const auto t1 = std::chrono::steady_clock::now();
  RealRun r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (int rank = 0; rank < cfg.world_size; ++rank) {
    std::uint64_t h = kFnv1aOffset;
    for (const auto& p : trainer.model(rank).parameters()) {
      h = fnv1a64(p.value(), h);
    }
    r.rank_digests.push_back(h);
  }
  return r;
}

/// Fraction of ddp.allreduce span time that coincides with
/// autograd.node spans of the same correlation lane.
double trace_overlap_fraction(const trace::Snapshot& snap) {
  struct Iv {
    std::uint64_t t0, t1;
  };
  std::vector<std::uint64_t> lanes;
  for (const trace::Event& e : snap.events) {
    if (e.name && std::strcmp(e.name, "ddp.allreduce") == 0 &&
        std::find(lanes.begin(), lanes.end(), e.id) == lanes.end()) {
      lanes.push_back(e.id);
    }
  }
  double covered = 0, total = 0;
  for (const std::uint64_t lane : lanes) {
    std::vector<Iv> comm, node;
    for (const trace::Event& e : snap.events) {
      if (!e.name || e.id != lane || e.kind != trace::Kind::kSpan) continue;
      if (std::strcmp(e.name, "ddp.allreduce") == 0) {
        comm.push_back({e.t0_ns, e.t1_ns});
      } else if (std::strcmp(e.name, "autograd.node") == 0) {
        node.push_back({e.t0_ns, e.t1_ns});
      }
    }
    for (const Iv& c : comm) {
      total += static_cast<double>(c.t1 - c.t0);
      for (const Iv& n : node) {
        const std::uint64_t lo = std::max(c.t0, n.t0);
        const std::uint64_t hi = std::min(c.t1, n.t1);
        if (hi > lo) covered += static_cast<double>(hi - lo);
      }
    }
  }
  return total > 0 ? covered / total : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  // The real runs must exercise the ACTUAL async engine: rank threads
  // resolve their backward width from the process-global lane count
  // (ParallelPin is per-thread and does not reach them), and on a
  // single-core runner the default of 1 would silently degrade every
  // rank to the inline sequential drain.
  set_num_threads(4);
  const auto real_cfg = bench_net_config();
  const auto model_cfg = nn::DDnetConfig::paper();
  // Modeled workload: one paper-config step at a quarter-resolution
  // slice; the 2.3 MB gradient payload is resolution-independent, so
  // the comm side is exact at any px.
  const index_t model_px = args.paper_scale ? 512 : 128;
  const index_t real_px = args.quick ? 16 : 32;

  const hetero::DeviceSpec dev = hetero::device_by_name("Nvidia T4 GPU");
  const hetero::NetworkCounts counts =
      hetero::count_ddnet(model_cfg, model_px, model_px);
  const double forward_s =
      hetero::project_network_seconds(dev, counts, ops::KernelOptions::all())
          .total();
  const double compute_s = 3.0 * forward_s;  // forward + 2x backward
  dist::InterconnectModel icm;
  icm.bandwidth_Bps = 0.125e9;  // commodity 1 GbE

  bench::print_header(
      "Distributed step: sequential vs overlapped bucketed allreduce "
      "(modeled T4 nodes over 1 GbE; real runs on local threads)");

  const dist::Collective colls[] = {dist::Collective::kRing,
                                    dist::Collective::kTree,
                                    dist::Collective::kBcastHalving};
  struct Cell {
    int world;
    dist::Collective coll;
    std::size_t bucket_kb;
  };
  std::vector<Cell> cells;
  for (const int world : {2, 4, 8}) {
    for (const dist::Collective c : colls) cells.push_back({world, c, 64});
  }
  cells.push_back({4, dist::Collective::kRing, 16});
  cells.push_back({4, dist::Collective::kRing, 256});

  std::printf("modeled compute / step: %.3f ms (%lldx%lld px, DDnet %s)\n\n",
              compute_s * 1e3, static_cast<long long>(model_px),
              static_cast<long long>(model_px),
              ops::KernelOptions::all().str().c_str());
  std::printf("%-6s %-14s %-9s %-11s %-11s %-8s %-10s %-10s %-8s\n", "world",
              "collective", "bucketKB", "seq(ms)", "ovl(ms)", "speedup",
              "wall_seq", "wall_ovl", "bitwise");

  std::string rows_json;
  bool all_bitwise = true;
  for (const Cell& cell : cells) {
    dist::DdpConfig cfg;
    cfg.world_size = cell.world;
    cfg.per_worker_batch = 1;
    cfg.lr = 1e-3;
    cfg.collective = cell.coll;
    cfg.bucket_bytes = cell.bucket_kb * 1024;
    cfg.overlap = true;

    // Bucket plan + payload of the modeled (paper) net, from the real
    // planner. The plan depends only on the parameter list and the
    // bucket budget, so a world-2 probe trainer is the cheapest oracle.
    const ModeledStep m = [&] {
      dist::DdpConfig probe_cfg = cfg;
      probe_cfg.world_size = 2;
      nn::seed_init_rng(42);
      dist::DdpTrainer probe(
          [&] { return std::make_shared<nn::DDnet>(model_cfg); }, probe_cfg);
      return model_step(compute_s, probe.buckets(),
                        probe.gradient_elements(), icm, cell.coll,
                        cell.world);
    }();

    const index_t dataset = static_cast<index_t>(cell.world) * 2;  // 2 steps
    const RealRun ovl = run_real(real_cfg, cfg, dataset, real_px);
    cfg.overlap = false;
    const RealRun seq = run_real(real_cfg, cfg, dataset, real_px);
    const bool bitwise = ovl.rank_digests == seq.rank_digests;
    all_bitwise = all_bitwise && bitwise;

    std::printf("%-6d %-14s %-9zu %-11.3f %-11.3f %-8.2f %-10.4f %-10.4f %s\n",
                cell.world, dist::collective_name(cell.coll), cell.bucket_kb,
                m.seq_s * 1e3, m.overlap_s * 1e3, m.speedup(), seq.wall_s,
                ovl.wall_s, bitwise ? "yes" : "NO");

    char row[512];
    std::snprintf(row, sizeof(row),
                  "    {\"world\": %d, \"collective\": \"%s\", "
                  "\"bucket_kb\": %zu, \"modeled_seq_s\": %.9f, "
                  "\"modeled_overlap_s\": %.9f, \"modeled_speedup\": %.4f, "
                  "\"wall_seq_s\": %.6f, \"wall_overlap_s\": %.6f, "
                  "\"bitwise_match\": %s}",
                  cell.world, dist::collective_name(cell.coll), cell.bucket_kb,
                  m.seq_s, m.overlap_s, m.speedup(), seq.wall_s, ovl.wall_s,
                  bitwise ? "true" : "false");
    if (!rows_json.empty()) rows_json += ",\n";
    rows_json += row;
  }

  // Overlap evidence probe: trace one overlapped world-4 epoch and
  // measure how much allreduce time coincides with engine node spans.
  {
    dist::DdpConfig cfg;
    cfg.world_size = 4;
    cfg.per_worker_batch = 1;
    cfg.lr = 1e-3;
    cfg.collective = dist::Collective::kRing;
    cfg.bucket_bytes = 16 * 1024;
    cfg.overlap = true;
    trace::clear();
    trace::set_level(2);
    (void)run_real(real_cfg, cfg, /*dataset=*/8, real_px);
    trace::set_level(0);
    const trace::Snapshot snap = trace::snapshot();
    const double frac = trace_overlap_fraction(snap);
    const std::string trace_path = args.out_dir + "/dist_overlap_trace.json";
    std::ofstream(trace_path) << trace::chrome_json(snap);
    trace::clear();
    std::printf("\ntrace overlap fraction (allreduce concurrent with "
                "backward): %.2f\nchrome trace: %s\n",
                frac, trace_path.c_str());

    const std::string json_path = args.out_dir + "/BENCH_dist.json";
    std::ofstream out(json_path);
    out << "{\n  \"trace_overlap_frac\": " << frac
        << ",\n  \"dist_runs\": [\n" << rows_json << "\n  ]\n}\n";
    std::printf("json: %s\n", json_path.c_str());
  }
  return all_bitwise ? 0 : 1;
}
