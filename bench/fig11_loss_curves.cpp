// Figure 11 — training & validation loss curves for (a) Enhancement AI
// (composite Eq.-1 loss) and (b) Classification AI (binary
// cross-entropy). Prints the curves and writes fig11a.csv / fig11b.csv.
#include <cstdio>

#include "bench_common.h"
#include "core/image_io.h"
#include "ct/hu.h"
#include "pipeline/classification_ai.h"
#include "pipeline/enhancement_ai.h"

using namespace ccovid;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  const int epochs = args.paper_scale ? 50 : args.quick ? 4 : 20;

  bench::print_header("Figure 11a: Enhancement AI loss curves");
  Rng rng(11);
  data::EnhancementDatasetConfig ecfg;
  ecfg.image_px = args.paper_scale ? 512 : 32;
  ecfg.num_train = args.paper_scale ? 2816 : 24;
  ecfg.num_val = args.paper_scale ? 484 : 6;
  ecfg.num_test = 0;
  if (!args.paper_scale) ecfg.lowdose.photons_per_ray = 5e4;
  const data::EnhancementDataset eds =
      data::make_enhancement_dataset(ecfg, rng);

  nn::seed_init_rng(11);
  nn::DDnetConfig ncfg = nn::DDnetConfig::paper();
  if (!args.paper_scale) {
    ncfg.base_channels = 8;
    ncfg.growth = 8;
    ncfg.levels = 2;
    ncfg.dense_layers = 2;
  }
  pipeline::EnhancementAI enh(ncfg);
  pipeline::EnhancementTrainConfig etc;
  etc.epochs = epochs;
  etc.lr = args.paper_scale ? 1e-4 : 2e-3;
  etc.msssim_scales = args.paper_scale ? 5 : 1;
  const auto elogs = enh.train(eds, etc, rng);

  std::printf("%-7s %-14s %-14s\n", "epoch", "train loss", "val loss");
  std::vector<std::vector<double>> rows_a;
  for (const auto& log : elogs) {
    std::printf("%-7d %-14.5f %-14.5f\n", log.epoch, log.train_loss,
                log.val_loss);
    rows_a.push_back({double(log.epoch), log.train_loss, log.val_loss});
  }
  write_csv(args.out_dir + "/fig11a_enhancement_loss.csv",
            {"epoch", "train_loss", "val_loss"}, rows_a);

  bench::print_header("Figure 11b: Classification AI loss curves");
  data::ClassificationDatasetConfig ccfg;
  ccfg.depth = args.paper_scale ? 128 : 8;
  ccfg.image_px = args.paper_scale ? 512 : 24;
  ccfg.num_train = args.paper_scale ? 305 : 16;
  ccfg.num_test = args.paper_scale ? 95 : 8;
  const data::ClassificationDataset cds =
      data::make_classification_dataset(ccfg, rng);

  std::vector<Tensor> train_vols, val_vols;
  std::vector<int> train_labels, val_labels;
  for (const auto& s : cds.train) {
    train_vols.push_back(ct::normalize_hu(s.hu).mul(s.lung_mask));
    train_labels.push_back(s.label);
  }
  for (const auto& s : cds.test) {
    val_vols.push_back(ct::normalize_hu(s.hu).mul(s.lung_mask));
    val_labels.push_back(s.label);
  }

  pipeline::ClassificationAI cls;
  pipeline::ClassificationTrainConfig ctc;
  ctc.epochs = args.paper_scale ? 100 : epochs;
  ctc.lr = args.paper_scale ? 1e-6 : 1e-3;
  const auto clogs =
      cls.train(train_vols, train_labels, ctc, rng, &val_vols, &val_labels);

  std::printf("%-7s %-14s %-14s\n", "epoch", "train loss", "val loss");
  std::vector<std::vector<double>> rows_b;
  for (const auto& log : clogs) {
    std::printf("%-7d %-14.5f %-14.5f\n", log.epoch, log.train_loss,
                log.val_loss);
    rows_b.push_back({double(log.epoch), log.train_loss, log.val_loss});
  }
  write_csv(args.out_dir + "/fig11b_classification_loss.csv",
            {"epoch", "train_loss", "val_loss"}, rows_b);

  bench::print_rule();
  std::printf(
      "Expected shape: both curves decrease and flatten (Fig. 11); the "
      "validation curve tracks the training curve with a gap.\nCSVs "
      "written to %s.\n",
      args.out_dir.c_str());
  return 0;
}
