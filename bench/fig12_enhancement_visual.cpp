// Figure 12 — image-enhancement panels: full-dose target, low-dose FBP
// input, DDnet-enhanced output, and the absolute difference maps
// |Y - X| and |Y - f(X)| for sample slices. Writes PGM images and prints
// the per-image quality metrics the panels illustrate.
#include <cstdio>

#include "bench_common.h"
#include "core/image_io.h"
#include "metrics/image_quality.h"
#include "pipeline/enhancement_ai.h"

using namespace ccovid;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  const index_t px = args.paper_scale ? 512 : args.quick ? 32 : 64;
  const int epochs = args.paper_scale ? 50 : args.quick ? 4 : 25;

  bench::print_header(
      "Figure 12: DDnet enhancement panels + absolute difference maps");

  Rng rng(12);
  data::EnhancementDatasetConfig dcfg;
  dcfg.image_px = px;
  dcfg.num_train = args.paper_scale ? 2816 : args.quick ? 6 : 48;
  dcfg.num_val = 4;
  dcfg.num_test = 3;
  dcfg.lowdose.photons_per_ray = args.paper_scale ? 1e6 : 5e4;
  const data::EnhancementDataset ds =
      data::make_enhancement_dataset(dcfg, rng);

  nn::seed_init_rng(12);
  nn::DDnetConfig ncfg = nn::DDnetConfig::paper();
  if (!args.paper_scale) {
    ncfg.base_channels = 8;
    ncfg.growth = 8;
    ncfg.levels = 2;
    ncfg.dense_layers = 2;
  }
  pipeline::EnhancementAI ai(ncfg);
  pipeline::EnhancementTrainConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.lr = args.paper_scale ? 1e-4 : 2e-3;
  tcfg.msssim_scales = args.paper_scale ? 5 : (px >= 44 ? 2 : 1);
  ai.train(ds, tcfg, rng);

  std::printf("%-7s %-12s %-12s %-12s %-12s\n", "slice", "MSE(Y,X)",
              "MSE(Y,f(X))", "SSIM(Y,X)", "SSIM(Y,f(X))");
  bench::print_rule(60);
  for (std::size_t i = 0; i < ds.test.size(); ++i) {
    const auto& pair = ds.test[i];
    const Tensor enhanced = ai.enhance(pair.low);
    Tensor diff_low = pair.full.sub(pair.low);
    Tensor diff_enh = pair.full.sub(enhanced);
    for (index_t j = 0; j < diff_low.numel(); ++j) {
      diff_low.data()[j] = std::fabs(diff_low.data()[j]);
      diff_enh.data()[j] = std::fabs(diff_enh.data()[j]);
    }
    const std::string tag = args.out_dir + "/fig12_slice" +
                            std::to_string(i);
    write_pgm(tag + "_fulldose.pgm", pair.full, 0.0f, 1.0f);
    write_pgm(tag + "_lowdose.pgm", pair.low, 0.0f, 1.0f);
    write_pgm(tag + "_enhanced.pgm", enhanced, 0.0f, 1.0f);
    write_pgm(tag + "_absdiff_lowdose.pgm", diff_low, 0.0f, 0.25f);
    write_pgm(tag + "_absdiff_enhanced.pgm", diff_enh, 0.0f, 0.25f);

    std::printf("%-7zu %-12.5f %-12.5f %-12.4f %-12.4f\n", i,
                metrics::mse(pair.full, pair.low),
                metrics::mse(pair.full, enhanced),
                metrics::ssim(pair.full, pair.low).ssim,
                metrics::ssim(pair.full, enhanced).ssim);
  }
  bench::print_rule(60);
  std::printf(
      "PGM panels written to %s (fig12_slice*_{fulldose,lowdose,"
      "enhanced,absdiff_*}.pgm).\nExpected shape: the enhanced "
      "difference map is visibly darker (smaller residual) than the "
      "low-dose one, as in Fig. 12's rightmost column.\n",
      args.out_dir.c_str());
  return 0;
}
