// Figure 13 + Table 9 — the paper's headline result: classification
// accuracy and ROC/AUC on a held-out test cohort, comparing original
// (low-dose) scans against DDnet-enhanced scans through the identical
// Segmentation AI + Classification AI stack, plus the confusion matrix
// at the Youden-optimal threshold.
//
// Cohort mirrors §5.2.2's class balance (36 positive / 59 negative at
// paper scale; proportionally smaller by default). Mirroring the
// clinical setting, every scan — training and test — is acquired
// through the CT chain at a standard dose (clinical scans carry
// acquisition noise); "original" scores the acquired scan directly,
// "enhanced" scores its DDnet restoration. The classifier is trained on
// acquired (masked) scans, exactly as the paper's was trained on
// clinical scans.
#include <cstdio>

#include "bench_common.h"
#include "core/image_io.h"
#include "ct/hu.h"
#include "metrics/classification.h"
#include "metrics/image_quality.h"
#include "pipeline/classification_ai.h"
#include "pipeline/enhancement_ai.h"
#include "pipeline/segmentation_ai.h"

using namespace ccovid;

namespace {

// Degrades every slice of an HU volume through the low-dose chain,
// returning the normalized [0,1] volume.
Tensor lowdose_volume(const Tensor& hu, const data::LowDoseConfig& cfg,
                      Rng& rng) {
  const index_t d = hu.dim(0), n = hu.dim(1);
  Tensor out({d, n, n});
  for (index_t z = 0; z < d; ++z) {
    Tensor slice({n, n});
    std::copy(hu.data() + z * n * n, hu.data() + (z + 1) * n * n,
              slice.data());
    const data::LowDosePair pair = data::make_lowdose_pair(slice, cfg, rng);
    std::copy(pair.low.data(), pair.low.data() + n * n,
              out.data() + z * n * n);
  }
  return out;
}

void report(const char* tag, const std::vector<double>& scores,
            const std::vector<int>& labels, const std::string& csv_path) {
  const double auc_v = metrics::auc(scores, labels);
  const double thr = metrics::youden_optimal_threshold(scores, labels);
  const auto cm = metrics::confusion_at_threshold(scores, labels, thr);
  double acc_thr = 0.0;
  const double best_acc = metrics::best_accuracy(scores, labels, &acc_thr);

  std::printf("\n[%s]\n", tag);
  std::printf("  AUC-ROC                : %.3f\n", auc_v);
  std::printf("  best accuracy          : %.2f%% (threshold %.3f)\n",
              100.0 * best_acc, acc_thr);
  std::printf("  Youden-optimal thresh. : %.3f\n", thr);
  std::printf("  confusion @ threshold  : TP=%lld FP=%lld FN=%lld "
              "TN=%lld\n",
              (long long)cm.tp, (long long)cm.fp, (long long)cm.fn,
              (long long)cm.tn);
  std::printf("  sensitivity (TPR)      : %.2f%%   specificity: %.2f%%\n",
              100.0 * cm.tpr(), 100.0 * cm.specificity());

  std::vector<std::vector<double>> rows;
  for (const auto& pt : metrics::roc_curve(scores, labels)) {
    rows.push_back({pt.threshold, pt.fpr, pt.tpr});
  }
  write_csv(csv_path, {"threshold", "fpr", "tpr"}, rows);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  const index_t px = args.paper_scale ? 512 : args.quick ? 16 : 32;
  const index_t depth = args.paper_scale ? 128 : args.quick ? 4 : 8;
  const index_t n_train = args.paper_scale ? 210 : args.quick ? 10 : 60;
  const index_t n_test = args.paper_scale ? 95 : args.quick ? 8 : 32;

  bench::print_header(
      "Figure 13 / Table 9: classification with vs without Enhancement "
      "AI");
  std::printf("cohort: %lld train / %lld test volumes of %lldx%lldx%lld\n",
              (long long)n_train, (long long)n_test, (long long)depth,
              (long long)px, (long long)px);

  Rng rng(13);
  data::ClassificationDatasetConfig ccfg;
  ccfg.depth = depth;
  ccfg.image_px = px;
  ccfg.num_train = n_train;
  ccfg.num_test = n_test;
  ccfg.positive_fraction = 36.0 / 95.0;  // §5.2.2's class balance
  // Keep lesions at a clinically proportionate pixel footprint (>= ~4 px
  // across) at reduced resolution.
  ccfg.min_lesion_radius_frac = args.paper_scale ? 0.0 : 4.0 / double(px);
  const data::ClassificationDataset cds =
      data::make_classification_dataset(ccfg, rng);

  data::LowDoseConfig ldcfg;
  ldcfg.geometry = ldcfg.geometry.scaled(px);
  ldcfg.photons_per_ray = args.paper_scale ? 1e6 : 1.2e4;

  // Acquire every volume through the CT chain — clinical scans are
  // reconstructions with acquisition noise, not noiseless renders.
  // Mirroring the paper's *multi-source* test data (BIMCV + MIDRC +
  // LIDC scanners of varying quality), each volume draws its own dose
  // from a log-uniform range around the nominal value; Enhancement AI's
  // role is exactly to normalize this heterogeneity (§5.2.3).
  const auto sample_dose = [&](Rng& r) {
    if (args.paper_scale) return ldcfg.photons_per_ray;
    const double lo = std::log(6e3), hi = std::log(5e4);
    return std::exp(r.uniform(lo, hi));
  };
  std::printf("\nacquiring %lld volumes through the CT chain "
              "(heterogeneous doses)...\n",
              (long long)(n_train + n_test));
  std::vector<Tensor> acq_train, acq_test;
  for (const auto& s : cds.train) {
    data::LowDoseConfig per = ldcfg;
    per.photons_per_ray = sample_dose(rng);
    acq_train.push_back(lowdose_volume(s.hu, per, rng));
  }
  for (const auto& s : cds.test) {
    data::LowDoseConfig per = ldcfg;
    per.photons_per_ray = sample_dose(rng);
    acq_test.push_back(lowdose_volume(s.hu, per, rng));
  }

  // --- Enhancement AI trained on slices of the training volumes ---
  // Pairs are drawn across the whole z-range so the enhancer sees every
  // anatomy it will be applied to; lesion-bearing mid-lung slices are
  // included, which is what protects the classification signal.
  std::printf("\ntraining Enhancement AI...\n");
  data::EnhancementDataset eds;
  const index_t n_pairs = std::min<index_t>(n_train, args.quick ? 8 : 48);
  for (index_t i = 0; i < n_pairs; ++i) {
    const auto& vol = cds.train[i % cds.train.size()];
    Tensor slice({px, px});
    const index_t z = rng.uniform_int(0, vol.hu.dim(0) - 1);
    std::copy(vol.hu.data() + z * px * px,
              vol.hu.data() + (z + 1) * px * px, slice.data());
    data::LowDoseConfig per = ldcfg;
    per.photons_per_ray = sample_dose(rng);  // train across the dose range
    eds.train.push_back(data::make_lowdose_pair(slice, per, rng));
  }
  nn::seed_init_rng(13);
  nn::DDnetConfig ncfg = nn::DDnetConfig::paper();
  if (!args.paper_scale) {
    ncfg.base_channels = 8;
    ncfg.growth = 8;
    ncfg.levels = 2;
    ncfg.dense_layers = 2;
  }
  auto enh = std::make_shared<pipeline::EnhancementAI>(ncfg);
  pipeline::EnhancementTrainConfig etc;
  etc.epochs = args.paper_scale ? 50 : args.quick ? 3 : 30;
  etc.lr = args.paper_scale ? 1e-4 : 2e-3;
  etc.msssim_scales = 1;
  enh->train(eds, etc, rng);
  {  // sanity: report what the enhancer does to held-back slices
    double mse_low = 0, mse_enh = 0;
    for (index_t i = 0; i < 4; ++i) {
      const auto& pair = eds.train[i];
      const Tensor e = enh->enhance(pair.low);
      mse_low += metrics::mse(pair.full, pair.low);
      mse_enh += metrics::mse(pair.full, e);
    }
    std::printf("  enhancement MSE: %.5f -> %.5f (train slices)\n",
                mse_low / 4, mse_enh / 4);
  }

  // --- Segmentation AI on ground-truth masks over *acquired* scans ---
  std::printf("training Segmentation AI...\n");
  std::vector<data::VolumeSample> seg_train;
  for (std::size_t i = 0; i < cds.train.size(); ++i) {
    seg_train.push_back({ct::denormalize_hu(acq_train[i]),
                         cds.train[i].lung_mask.clone(),
                         cds.train[i].label});
  }
  auto seg = std::make_shared<pipeline::SegmentationAI>();
  pipeline::SegmentationTrainConfig scfg;
  scfg.epochs = args.quick ? 3 : 10;
  scfg.lr = 5e-3;
  seg->train(seg_train, scfg, rng);

  // --- Classification AI on acquired, masked training volumes ---
  std::printf("training Classification AI...\n");
  std::vector<Tensor> train_vols;
  std::vector<int> train_labels;
  for (std::size_t i = 0; i < cds.train.size(); ++i) {
    // Ground-truth masks during training (the paper's segmenter is a
    // fixed pre-trained model; ours is trained above and used at test).
    train_vols.push_back(acq_train[i].mul(cds.train[i].lung_mask));
    train_labels.push_back(cds.train[i].label);
  }
  auto cls = std::make_shared<pipeline::ClassificationAI>();
  pipeline::ClassificationTrainConfig ctc;
  ctc.epochs = args.paper_scale ? 100 : args.quick ? 4 : 24;
  ctc.lr = args.paper_scale ? 1e-6 : 1e-3;
  ctc.augment = true;  // §3.3.1 augmentations (noise var 0.1, etc.)
  cls->train(train_vols, train_labels, ctc, rng);

  // --- evaluation: acquired originals vs DDnet-enhanced, same stack ---
  std::printf("scoring %lld test volumes (original vs enhanced)...\n",
              (long long)n_test);
  std::vector<double> scores_orig, scores_enh;
  std::vector<int> labels;
  for (std::size_t i = 0; i < cds.test.size(); ++i) {
    const Tensor& low = acq_test[i];
    const Tensor enhanced = enh->enhance_volume(low);
    const Tensor masked_orig = seg->segment_and_mask(low);
    const Tensor masked_enh = seg->segment_and_mask(enhanced);
    scores_orig.push_back(cls->predict(masked_orig));
    scores_enh.push_back(cls->predict(masked_enh));
    labels.push_back(cds.test[i].label);
  }

  report("original scans (Seg + Cls)", scores_orig, labels,
         args.out_dir + "/fig13_roc_original.csv");
  report("enhanced scans (Enh + Seg + Cls)", scores_enh, labels,
         args.out_dir + "/fig13_roc_enhanced.csv");

  // §5.2.3's probability-shift statistic: mean score change on the
  // positive class.
  double shift = 0.0;
  int positives = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 1) {
      shift += scores_enh[i] - scores_orig[i];
      ++positives;
    }
  }
  bench::print_rule();
  if (positives > 0) {
    std::printf("mean positive-class probability shift: %+.4f "
                "(paper: +0.1136)\n",
                shift / positives);
  }
  std::printf(
      "Paper: accuracy 86.32%% -> 90.53%%, AUC 0.890 -> 0.942, optimal "
      "threshold 0.061.\nExpected shape: the enhanced column matches or "
      "beats the original on accuracy and AUC; the optimal threshold "
      "sits well below 0.5 (minority positive class).\n");
  return 0;
}
