// google-benchmark microbenchmarks for the substrate kernels: the four
// convolution/deconvolution optimization stages, pooling/unpooling,
// batch norm, the CT chain (Siddon, ramp filter, FBP), MS-SSIM, and the
// ring all-reduce.
#include <benchmark/benchmark.h>

#include <thread>

#include "core/random.h"
#include "ct/fbp.h"
#include "ct/siddon.h"
#include "dist/comm.h"
#include "metrics/image_quality.h"
#include "ops/gemm.h"
#include "ops/ops.h"

using namespace ccovid;

namespace {

Tensor random_tensor(Shape s, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(s));
  rng.fill_gaussian(t, 0.0, 0.1);
  return t;
}

void BM_Conv2d(benchmark::State& state, ops::KernelOptions opt) {
  const index_t hw = state.range(0);
  const Tensor x = random_tensor({1, 16, hw, hw}, 1);
  const Tensor w = random_tensor({16, 16, 5, 5}, 2);
  const Tensor b = random_tensor({16}, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops::conv2d(x, w, b, ops::Conv2dParams::same(5), opt));
  }
  state.SetItemsProcessed(state.iterations() * hw * hw * 16 * 16 * 25 * 2);
}

void BM_Deconv2d(benchmark::State& state, ops::KernelOptions opt) {
  const index_t hw = state.range(0);
  const Tensor x = random_tensor({1, 16, hw, hw}, 4);
  const Tensor w = random_tensor({16, 16, 5, 5}, 5);
  const Tensor b = random_tensor({16}, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops::deconv2d(x, w, b, ops::Deconv2dParams::same(5), opt));
  }
  state.SetItemsProcessed(state.iterations() * hw * hw * 16 * 16 * 25 * 2);
}

void BM_Conv2dGemm(benchmark::State& state) {
  const index_t hw = state.range(0);
  const Tensor x = random_tensor({1, 16, hw, hw}, 1);
  const Tensor w = random_tensor({16, 16, 5, 5}, 2);
  const Tensor b = random_tensor({16}, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops::conv2d_gemm(x, w, b, ops::Conv2dParams::same(5)));
  }
  state.SetItemsProcessed(state.iterations() * hw * hw * 16 * 16 * 25 * 2);
}

void BM_Sgemm(benchmark::State& state) {
  const index_t n = state.range(0);
  const Tensor a = random_tensor({n, n}, 4);
  const Tensor b = random_tensor({n, n}, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n * 2);
}

void BM_MaxPool2d(benchmark::State& state) {
  const index_t hw = state.range(0);
  const Tensor x = random_tensor({1, 16, hw, hw}, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::max_pool2d(x, {3, 2, 1}));
  }
}

void BM_Unpool2d(benchmark::State& state) {
  const index_t hw = state.range(0);
  const Tensor x = random_tensor({1, 16, hw, hw}, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::unpool2d_bilinear(x, 2));
  }
}

void BM_BatchNormInfer(benchmark::State& state) {
  const index_t hw = state.range(0);
  const Tensor x = random_tensor({1, 16, hw, hw}, 9);
  const Tensor gamma = Tensor::ones({16});
  const Tensor beta = Tensor::zeros({16});
  const Tensor mean = Tensor::zeros({16});
  const Tensor var = Tensor::ones({16});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops::batch_norm_infer(x, gamma, beta, mean, var));
  }
}

void BM_SiddonProjection(benchmark::State& state) {
  const index_t px = state.range(0);
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(px);
  const Tensor mu = random_tensor({px, px}, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ct::forward_project(mu, g));
  }
}

void BM_FbpReconstruct(benchmark::State& state) {
  const index_t px = state.range(0);
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(px);
  const Tensor mu = random_tensor({px, px}, 11);
  const Tensor sino = ct::forward_project(mu, g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ct::fbp_reconstruct(sino, g));
  }
}

void BM_MsSsim(benchmark::State& state) {
  const index_t hw = state.range(0);
  Rng rng(12);
  Tensor a({hw, hw}), b({hw, hw});
  rng.fill_uniform(a, 0.0, 1.0);
  rng.fill_uniform(b, 0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::ms_ssim(a, b));
  }
}

void BM_RingAllReduce(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const index_t len = 1 << 16;
  for (auto _ : state) {
    dist::World w(world);
    std::vector<std::vector<real_t>> bufs(
        world, std::vector<real_t>(static_cast<std::size_t>(len), 1.0f));
    std::vector<std::thread> threads;
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&w, &bufs, r] { w.all_reduce_sum(r, bufs[r]); });
    }
    for (auto& t : threads) t.join();
    benchmark::DoNotOptimize(bufs[0][0]);
  }
  state.SetBytesProcessed(state.iterations() * len * sizeof(real_t) *
                          world);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Conv2d, baseline, ops::KernelOptions::baseline())
    ->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(BM_Conv2d, prefetch,
                  ops::KernelOptions::refactored_prefetch())
    ->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(BM_Conv2d, unrolled, ops::KernelOptions::all())
    ->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(BM_Deconv2d, scatter_baseline,
                  ops::KernelOptions::baseline())
    ->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(BM_Deconv2d, gather_refactored,
                  ops::KernelOptions::refactored())
    ->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(BM_Deconv2d, gather_unrolled, ops::KernelOptions::all())
    ->Arg(32)->Arg(64);
BENCHMARK(BM_Conv2dGemm)->Arg(32)->Arg(64);
BENCHMARK(BM_Sgemm)->Arg(64)->Arg(128);
BENCHMARK(BM_MaxPool2d)->Arg(64)->Arg(128);
BENCHMARK(BM_Unpool2d)->Arg(32)->Arg(64);
BENCHMARK(BM_BatchNormInfer)->Arg(64)->Arg(128);
BENCHMARK(BM_SiddonProjection)->Arg(32)->Arg(64);
BENCHMARK(BM_FbpReconstruct)->Arg(32)->Arg(64);
BENCHMARK(BM_MsSsim)->Arg(64)->Arg(128);
BENCHMARK(BM_RingAllReduce)->Arg(2)->Arg(4);

BENCHMARK_MAIN();
