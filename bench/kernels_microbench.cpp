// google-benchmark microbenchmarks for the substrate kernels: the four
// convolution/deconvolution optimization stages, pooling/unpooling,
// batch norm, the CT chain (Siddon, ramp filter, FBP), MS-SSIM, and the
// ring all-reduce.
//
// Thread-scaling sweep: `kernels_microbench --scaling-json OUT.json`
// skips google-benchmark and instead times the hot inference kernels
// (plus a full DDnet forward) at 1/2/4/8 task-engine lanes, writing a
// machine-readable {op, threads, ns_per_iter} table. CI and
// EXPERIMENTS.md track that file (BENCH_kernels.json) across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.h"
#include "core/precision.h"
#include "core/random.h"
#include "core/simd.h"
#include "ct/fbp.h"
#include "ct/siddon.h"
#include "ddnet_timing.h"
#include "dist/comm.h"
#include "graph/graph.h"
#include "metrics/image_quality.h"
#include "nn/ddnet.h"
#include "ops/gemm.h"
#include "ops/ops.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace ccovid;

namespace {

Tensor random_tensor(Shape s, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(s));
  rng.fill_gaussian(t, 0.0, 0.1);
  return t;
}

void BM_Conv2d(benchmark::State& state, ops::KernelOptions opt) {
  const index_t hw = state.range(0);
  const Tensor x = random_tensor({1, 16, hw, hw}, 1);
  const Tensor w = random_tensor({16, 16, 5, 5}, 2);
  const Tensor b = random_tensor({16}, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops::conv2d(x, w, b, ops::Conv2dParams::same(5), opt));
  }
  state.SetItemsProcessed(state.iterations() * hw * hw * 16 * 16 * 25 * 2);
}

void BM_Deconv2d(benchmark::State& state, ops::KernelOptions opt) {
  const index_t hw = state.range(0);
  const Tensor x = random_tensor({1, 16, hw, hw}, 4);
  const Tensor w = random_tensor({16, 16, 5, 5}, 5);
  const Tensor b = random_tensor({16}, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops::deconv2d(x, w, b, ops::Deconv2dParams::same(5), opt));
  }
  state.SetItemsProcessed(state.iterations() * hw * hw * 16 * 16 * 25 * 2);
}

void BM_Conv2dGemm(benchmark::State& state) {
  const index_t hw = state.range(0);
  const Tensor x = random_tensor({1, 16, hw, hw}, 1);
  const Tensor w = random_tensor({16, 16, 5, 5}, 2);
  const Tensor b = random_tensor({16}, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops::conv2d_gemm(x, w, b, ops::Conv2dParams::same(5)));
  }
  state.SetItemsProcessed(state.iterations() * hw * hw * 16 * 16 * 25 * 2);
}

void BM_Sgemm(benchmark::State& state) {
  const index_t n = state.range(0);
  const Tensor a = random_tensor({n, n}, 4);
  const Tensor b = random_tensor({n, n}, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n * 2);
}

void BM_MaxPool2d(benchmark::State& state) {
  const index_t hw = state.range(0);
  const Tensor x = random_tensor({1, 16, hw, hw}, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::max_pool2d(x, {3, 2, 1}));
  }
}

void BM_Unpool2d(benchmark::State& state) {
  const index_t hw = state.range(0);
  const Tensor x = random_tensor({1, 16, hw, hw}, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::unpool2d_bilinear(x, 2));
  }
}

void BM_BatchNormInfer(benchmark::State& state) {
  const index_t hw = state.range(0);
  const Tensor x = random_tensor({1, 16, hw, hw}, 9);
  const Tensor gamma = Tensor::ones({16});
  const Tensor beta = Tensor::zeros({16});
  const Tensor mean = Tensor::zeros({16});
  const Tensor var = Tensor::ones({16});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops::batch_norm_infer(x, gamma, beta, mean, var));
  }
}

void BM_SiddonProjection(benchmark::State& state) {
  const index_t px = state.range(0);
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(px);
  const Tensor mu = random_tensor({px, px}, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ct::forward_project(mu, g));
  }
}

void BM_FbpReconstruct(benchmark::State& state) {
  const index_t px = state.range(0);
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(px);
  const Tensor mu = random_tensor({px, px}, 11);
  const Tensor sino = ct::forward_project(mu, g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ct::fbp_reconstruct(sino, g));
  }
}

void BM_MsSsim(benchmark::State& state) {
  const index_t hw = state.range(0);
  Rng rng(12);
  Tensor a({hw, hw}), b({hw, hw});
  rng.fill_uniform(a, 0.0, 1.0);
  rng.fill_uniform(b, 0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::ms_ssim(a, b));
  }
}

void BM_RingAllReduce(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const index_t len = 1 << 16;
  for (auto _ : state) {
    dist::World w(world);
    std::vector<std::vector<real_t>> bufs(
        world, std::vector<real_t>(static_cast<std::size_t>(len), 1.0f));
    std::vector<std::thread> threads;
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&w, &bufs, r] { w.all_reduce_sum(r, bufs[r]); });
    }
    for (auto& t : threads) t.join();
    benchmark::DoNotOptimize(bufs[0][0]);
  }
  state.SetBytesProcessed(state.iterations() * len * sizeof(real_t) *
                          world);
}

// ------------------------------------------------ thread scaling

// Median-of-reps wall time of one call to `body`, in nanoseconds.
// Adaptive iteration count keeps each rep around a few milliseconds so
// the sweep finishes quickly at every width.
template <typename Body>
double time_ns_per_iter(Body&& body) {
  using clock = std::chrono::steady_clock;
  const auto once = [&] {
    const auto t0 = clock::now();
    body();
    return std::chrono::duration<double, std::nano>(clock::now() - t0)
        .count();
  };
  double probe = once();  // also serves as warm-up
  int iters = 1;
  if (probe < 2e6) iters = static_cast<int>(2e6 / (probe + 1.0)) + 1;
  if (iters > 200) iters = 200;
  std::vector<double> reps;
  for (int r = 0; r < 3; ++r) {
    const auto t0 = clock::now();
    for (int i = 0; i < iters; ++i) body();
    reps.push_back(
        std::chrono::duration<double, std::nano>(clock::now() - t0)
            .count() /
        iters);
  }
  std::sort(reps.begin(), reps.end());
  return reps[1];
}

struct ScalingRow {
  std::string op;
  int threads;
  double ns_per_iter;
};

// Times every op at widths 1/2/4/8 and writes the JSON artifact. The
// engine's workers are shared across widths; ParallelPin caps how many
// lanes each dispatch may use without touching global configuration.
int run_scaling_sweep(const std::string& path, bool trace_on) {
  if (trace_on) {
    // The sweep emits ~1e5 spans; a deeper ring keeps wraparound losses
    // out of the aggregate.
    trace::set_ring_capacity(1 << 17);
    trace::set_level(1);
  }
  std::vector<ScalingRow> rows;
  const int widths[] = {1, 2, 4, 8};

  const Tensor cx = random_tensor({1, 16, 64, 64}, 1);
  const Tensor cw = random_tensor({16, 16, 5, 5}, 2);
  const Tensor cb = random_tensor({16}, 3);
  const Tensor ga = random_tensor({128, 128}, 4);
  const Tensor gb = random_tensor({128, 128}, 5);
  const ct::FanBeamGeometry geom = ct::paper_geometry().scaled(64);
  const Tensor mu = random_tensor({64, 64}, 10);
  const Tensor sino = ct::forward_project(mu, geom);
  index_t ddnet_px = 0;
  const nn::DDnetConfig ddnet_cfg =
      bench::bench_inference_config(false, &ddnet_px);

  // Graph-fusion pair: the same seeded network timed as (a) the
  // op-by-op module walk with fusion forced off — the pre-graph
  // production path — and (b) the compiled fused graph. Construction
  // and compilation sit outside the timed region, matching steady-state
  // serving where both are built once and reused per request.
  nn::seed_init_rng(7);
  nn::DDnet ddnet_net(ddnet_cfg);
  ddnet_net.set_training(false);
  // --precision selects the storage format of the compiled-graph row
  // (the committed BENCH numbers use the fp32 default; the dedicated
  // per-precision sweep is --lowprec-json).
  graph::CompileOptions ddnet_opt;
  ddnet_opt.precision = core::active_precision();
  {
    graph::Graph g0 = ddnet_net.build_graph(1, ddnet_px, ddnet_px);
    if (ddnet_opt.precision == core::Precision::kInt8) {
      Rng crng(13);
      Tensor cal({1, 1, ddnet_px, ddnet_px});
      crng.fill_uniform(cal, 0.0, 1.0);
      ddnet_opt.calibration = graph::calibrate(g0, {cal});
    }
  }
  const graph::CompiledGraph ddnet_graph = graph::compile(
      ddnet_net.build_graph(1, ddnet_px, ddnet_px), ddnet_opt);
  const Tensor ddnet_img = random_tensor({ddnet_px, ddnet_px}, 6);
  const Tensor ddnet_in =
      ddnet_img.clone().reshape({1, 1, ddnet_px, ddnet_px});

  for (const int t : widths) {
    ParallelPin pin(t);
    rows.push_back({"conv2d_unrolled_64", t, time_ns_per_iter([&] {
                      benchmark::DoNotOptimize(ops::conv2d(
                          cx, cw, cb, ops::Conv2dParams::same(5),
                          ops::KernelOptions::all()));
                    })});
    rows.push_back({"deconv2d_gather_64", t, time_ns_per_iter([&] {
                      benchmark::DoNotOptimize(ops::deconv2d(
                          cx, cw, cb, ops::Deconv2dParams::same(5),
                          ops::KernelOptions::all()));
                    })});
    rows.push_back({"conv2d_gemm_64", t, time_ns_per_iter([&] {
                      benchmark::DoNotOptimize(ops::conv2d_gemm(
                          cx, cw, cb, ops::Conv2dParams::same(5)));
                    })});
    rows.push_back({"sgemm_128", t, time_ns_per_iter([&] {
                      benchmark::DoNotOptimize(ops::matmul(ga, gb));
                    })});
    rows.push_back({"siddon_forward_64", t, time_ns_per_iter([&] {
                      benchmark::DoNotOptimize(
                          ct::forward_project(mu, geom));
                    })});
    rows.push_back({"fbp_reconstruct_64", t, time_ns_per_iter([&] {
                      benchmark::DoNotOptimize(
                          ct::fbp_reconstruct(sino, geom));
                    })});
    rows.push_back(
        {"ddnet_forward_128", t, time_ns_per_iter([&] {
           benchmark::DoNotOptimize(bench::measure_ddnet_cpu(
               ddnet_cfg, ddnet_px, ddnet_px, ops::KernelOptions::all()));
         })});
    rows.push_back({"ddnet_forward_128_module", t, time_ns_per_iter([&] {
                      graph::FusionGuard off(false);
                      benchmark::DoNotOptimize(ddnet_net.enhance(ddnet_img));
                    })});
    rows.push_back({"ddnet_forward_128_fused", t, time_ns_per_iter([&] {
                      benchmark::DoNotOptimize(ddnet_graph.run(ddnet_in));
                    })});
    std::printf("width %d done (%zu rows)\n", t, rows.size());
  }

  // SIMD backend sweep: the same hot ops at width 1, once per available
  // instruction-set backend. Rows are keyed "<op>_simd_<backend>" so the
  // bench gate tracks each backend's regression independently; the
  // scalar rows double as the baseline for the vectorization speedups
  // recorded in EXPERIMENTS.md.
  {
    ParallelPin pin(1);
    const simd::Backend prev = simd::active_backend();
    for (const simd::Backend be :
         {simd::Backend::kScalar, simd::Backend::kSse2,
          simd::Backend::kAvx2}) {
      if (!simd::backend_available(be)) continue;
      simd::set_backend(be);
      const std::string suffix = std::string("_simd_") + simd::backend_name(be);
      rows.push_back({"sgemm_128" + suffix, 1, time_ns_per_iter([&] {
                        benchmark::DoNotOptimize(ops::matmul(ga, gb));
                      })});
      rows.push_back({"conv2d_gemm_64" + suffix, 1, time_ns_per_iter([&] {
                        benchmark::DoNotOptimize(ops::conv2d_gemm(
                            cx, cw, cb, ops::Conv2dParams::same(5)));
                      })});
      rows.push_back({"conv2d_unrolled_64" + suffix, 1, time_ns_per_iter([&] {
                        benchmark::DoNotOptimize(ops::conv2d(
                            cx, cw, cb, ops::Conv2dParams::same(5),
                            ops::KernelOptions::all()));
                      })});
      rows.push_back({"fbp_reconstruct_64" + suffix, 1, time_ns_per_iter([&] {
                        benchmark::DoNotOptimize(
                            ct::fbp_reconstruct(sino, geom));
                      })});
      std::printf("simd backend %s done (%zu rows)\n",
                  simd::backend_name(be), rows.size());
    }
    simd::set_backend(prev);
  }

  std::string trace_json;
  if (trace_on) {
    const trace::Snapshot snap = trace::snapshot();
    std::printf("\ntrace spans (merged across threads):\n%s",
                trace::table(trace::aggregate(snap)).c_str());
    trace_json = trace::summary_json(snap);
    trace::set_level(0);
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\"bench\":\"kernels_microbench\",");
  std::fprintf(f, "\"hardware_concurrency\":%u,\"results\":[",
               std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "%s{\"op\":\"%s\",\"threads\":%d,\"ns_per_iter\":%.1f}",
                 i ? "," : "", rows[i].op.c_str(), rows[i].threads,
                 rows[i].ns_per_iter);
  }
  std::fprintf(f, "]");
  if (!trace_json.empty()) std::fprintf(f, ",\"trace\":%s", trace_json.c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

// ------------------------------------------- low-precision sweep
//
// `--lowprec-json OUT.json`: times the fused DDnet forward at every
// storage format and scores each output against the fp32 run with
// MS-SSIM. The JSON feeds scripts/check_bench.py --kind lowprec, which
// enforces the fp16/int8 speedup floors and the accuracy threshold
// (BENCH_lowprec.json in CI).
int run_lowprec_sweep(const std::string& path) {
  index_t px = 0;
  const nn::DDnetConfig cfg = bench::bench_inference_config(false, &px);
  nn::seed_init_rng(7);
  nn::DDnet net(cfg);
  net.set_training(false);
  const Tensor img = random_tensor({px, px}, 6);
  const Tensor in = img.clone().reshape({1, 1, px, px});

  // One calibration for the int8 cell, from a seeded batch with the
  // input's dynamic range.
  graph::Graph g = net.build_graph(1, px, px);
  graph::Calibration cal;
  {
    Rng crng(13);
    Tensor c0({1, 1, px, px});
    crng.fill_uniform(c0, 0.0, 1.0);
    cal = graph::calibrate(g, {c0, in.clone()});
  }

  struct LowpRow {
    const char* precision;
    double ns_per_iter;
    double ms_ssim;
    double speedup;
    std::vector<double> round_ns;
  };
  std::vector<LowpRow> rows;
  std::vector<graph::CompiledGraph> graphs;
  Tensor ref;
  for (const core::Precision prec :
       {core::Precision::kF32, core::Precision::kF16,
        core::Precision::kBf16, core::Precision::kInt8}) {
    graph::CompileOptions opt;
    opt.precision = prec;
    if (prec == core::Precision::kInt8) opt.calibration = cal;
    graphs.push_back(graph::compile(net.build_graph(1, px, px), opt));
    Tensor out = graphs.back().run(in).reshape({px, px});
    if (prec == core::Precision::kF32) ref = out.clone();
    rows.push_back({core::precision_name(prec),
                    std::numeric_limits<double>::infinity(),
                    metrics::ms_ssim(ref, out),
                    1.0,
                    {}});
  }
  // The gate compares cells AGAINST EACH OTHER (speedup floors), so
  // time them interleaved — precision i round r right next to
  // precision j round r — and score each cell by the MEDIAN of its
  // per-round PAIRED ratios against the fp32 time of the same round.
  // Two failure modes this survives that simpler scoring does not:
  // sequential per-cell timing leaves minutes between the fp32 and
  // int8 measurements, and background-load drift over that window
  // easily exceeds the floor margins being enforced; and min-per-cell
  // scoring lets one lucky fp32 round (host VM scheduling, page
  // placement) understate every other cell's speedup at once.
  // Each timed run is preceded by an untimed run of the SAME graph:
  // without that, every cell inherits the cache/arena footprint of
  // whichever cell the fixed interleaving order happens to put before
  // it (fp32 ran after the tiny int8 footprint, fp16 after the large
  // fp32 one), which biased the ratios by several percent — the same
  // order of magnitude as the floor margins.
  using clock = std::chrono::steady_clock;
  constexpr int kRounds = 9;
  for (int r = 0; r < kRounds; ++r) {
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      benchmark::DoNotOptimize(graphs[i].run(in));
      const auto t0 = clock::now();
      benchmark::DoNotOptimize(graphs[i].run(in));
      const double ns =
          std::chrono::duration<double, std::nano>(clock::now() - t0)
              .count();
      rows[i].round_ns.push_back(ns);
    }
  }
  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  };
  for (LowpRow& row : rows) {
    row.ns_per_iter = median(row.round_ns);
    std::vector<double> ratios;
    for (int r = 0; r < kRounds; ++r) {
      ratios.push_back(rows[0].round_ns[r] / row.round_ns[r]);
    }
    row.speedup = median(ratios);
  }
  for (const LowpRow& row : rows) {
    std::printf(
        "precision %-5s %12.1f ns/iter  speedup_vs_f32 %.3f  "
        "ms_ssim_vs_f32 %.6f\n",
        row.precision, row.ns_per_iter, row.speedup, row.ms_ssim);
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\"bench\":\"kernels_lowprec\",");
  std::fprintf(f, "\"hardware_concurrency\":%u,\"results\":[",
               std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "%s{\"op\":\"ddnet_forward_128_fused\",\"precision\":"
                 "\"%s\",\"ns_per_iter\":%.1f,\"speedup_vs_f32\":%.3f,"
                 "\"ms_ssim_vs_f32\":%.6f}",
                 i ? "," : "", rows[i].precision, rows[i].ns_per_iter,
                 rows[i].speedup, rows[i].ms_ssim);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

void BM_SgemmThreads(benchmark::State& state) {
  const Tensor a = random_tensor({128, 128}, 4);
  const Tensor b = random_tensor({128, 128}, 5);
  ParallelPin pin(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 128 * 128 * 128 * 2);
}

void BM_SgemmSimd(benchmark::State& state, simd::Backend be) {
  if (!simd::backend_available(be)) {
    state.SkipWithError("backend unavailable on this CPU/build");
    return;
  }
  const simd::Backend prev = simd::set_backend(be);
  const Tensor a = random_tensor({128, 128}, 4);
  const Tensor b = random_tensor({128, 128}, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 128 * 128 * 128 * 2);
  simd::set_backend(prev);
}

void BM_Conv2dGemmSimd(benchmark::State& state, simd::Backend be) {
  if (!simd::backend_available(be)) {
    state.SkipWithError("backend unavailable on this CPU/build");
    return;
  }
  const simd::Backend prev = simd::set_backend(be);
  const Tensor x = random_tensor({1, 16, 64, 64}, 1);
  const Tensor w = random_tensor({16, 16, 5, 5}, 2);
  const Tensor b = random_tensor({16}, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops::conv2d_gemm(x, w, b, ops::Conv2dParams::same(5)));
  }
  simd::set_backend(prev);
}

void BM_Conv2dThreads(benchmark::State& state) {
  const Tensor x = random_tensor({1, 16, 64, 64}, 1);
  const Tensor w = random_tensor({16, 16, 5, 5}, 2);
  const Tensor b = random_tensor({16}, 3);
  ParallelPin pin(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::conv2d(x, w, b,
                                         ops::Conv2dParams::same(5),
                                         ops::KernelOptions::all()));
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Conv2d, baseline, ops::KernelOptions::baseline())
    ->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(BM_Conv2d, prefetch,
                  ops::KernelOptions::refactored_prefetch())
    ->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(BM_Conv2d, unrolled, ops::KernelOptions::all())
    ->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(BM_Deconv2d, scatter_baseline,
                  ops::KernelOptions::baseline())
    ->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(BM_Deconv2d, gather_refactored,
                  ops::KernelOptions::refactored())
    ->Arg(32)->Arg(64);
BENCHMARK_CAPTURE(BM_Deconv2d, gather_unrolled, ops::KernelOptions::all())
    ->Arg(32)->Arg(64);
BENCHMARK(BM_Conv2dGemm)->Arg(32)->Arg(64);
BENCHMARK(BM_Sgemm)->Arg(64)->Arg(128);
BENCHMARK(BM_MaxPool2d)->Arg(64)->Arg(128);
BENCHMARK(BM_Unpool2d)->Arg(32)->Arg(64);
BENCHMARK(BM_BatchNormInfer)->Arg(64)->Arg(128);
BENCHMARK(BM_SiddonProjection)->Arg(32)->Arg(64);
BENCHMARK(BM_FbpReconstruct)->Arg(32)->Arg(64);
BENCHMARK(BM_MsSsim)->Arg(64)->Arg(128);
BENCHMARK(BM_RingAllReduce)->Arg(2)->Arg(4);
BENCHMARK(BM_SgemmThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_Conv2dThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_SgemmSimd, scalar, simd::Backend::kScalar);
BENCHMARK_CAPTURE(BM_SgemmSimd, sse2, simd::Backend::kSse2);
BENCHMARK_CAPTURE(BM_SgemmSimd, avx2, simd::Backend::kAvx2);
BENCHMARK_CAPTURE(BM_Conv2dGemmSimd, scalar, simd::Backend::kScalar);
BENCHMARK_CAPTURE(BM_Conv2dGemmSimd, sse2, simd::Backend::kSse2);
BENCHMARK_CAPTURE(BM_Conv2dGemmSimd, avx2, simd::Backend::kAvx2);

// Custom main so `--scaling-json PATH` can bypass google-benchmark and
// run the JSON-emitting sweep instead.
int main(int argc, char** argv) {
  // --trace enables span collection during the sweep: the aggregated
  // per-span table is printed and a "trace" summary object is merged
  // into the JSON artifact. Leave it off for committed BENCH numbers.
  bool trace_on = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace_on = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  // --precision sets the process-wide storage format (the scaling
  // sweep's fused-graph row honors it; equivalent to CCOVID_PRECISION).
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--precision") == 0) {
      core::Precision p;
      if (!core::parse_precision(argv[i + 1], &p)) {
        std::fprintf(stderr,
                     "--precision: unknown format '%s' "
                     "(fp32|fp16|bf16|int8)\n",
                     argv[i + 1]);
        return 1;
      }
      core::set_active_precision(p);
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  if (argc >= 2 && std::strcmp(argv[1], "--scaling-json") == 0) {
    return run_scaling_sweep(argc >= 3 ? argv[2] : "BENCH_kernels.json",
                             trace_on);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--lowprec-json") == 0) {
    return run_lowprec_sweep(argc >= 3 ? argv[2] : "BENCH_lowprec.json");
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
