// monitor_stream — longitudinal-monitoring load generation against the
// serve::InferenceServer with the PR-10 monitor enabled: P concurrent
// patients, each submitting R sequential scan rounds that alternate
// between two volumes (baseline / follow-up), so from round 3 on every
// scan is a result-cache hit. The same stream is replayed against a
// monitor-off server as the uncached reference.
//
// What the gate (scripts/check_bench.py --kind monitor) reads out of
// the emitted JSON:
//
//   correctness (HARD, tolerance plays no role):
//     stale_serves      scans whose probability or burden bits differed
//                       from the uncached recomputation — a cache hit
//                       must be bitwise-identical, so this must be 0
//     lost_deltas /     per-patient scan ordinals: every patient must
//     duplicate_deltas  see exactly 1..R, each once
//     delta_mismatches  burden_delta bits that diverged from the same
//                       subtraction on the uncached burdens
//   performance:
//     hit_rate          must clear the gate's floor ((R-2)/R expected)
//     cached_speedup    cached vs uncached wall-clock throughput; hits
//                       skip both the pipeline and the emulated device
//                       residency, which is the monitoring-mode latency
//                       claim (EXPERIMENTS.md)
//
// Device residency emulation mirrors serve_throughput: each MISS blocks
// for the projected paper-scale DDnet time on the chosen Table-4 device
// (--stall-ms overrides; hits pay nothing).
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/timer.h"
#include "data/phantom.h"
#include "hetero/ddnet_counts.h"
#include "nn/layers.h"
#include "serve/server.h"

using namespace ccovid;

namespace {

struct ScanRecord {
  bool ok = false;
  bool cache_hit = false;
  double probability = 0.0;
  double burden = 0.0;
  double burden_delta = 0.0;
  std::uint64_t scan_seq = 0;
};

struct RunReport {
  std::string mode;  // "cached" / "uncached"
  double elapsed_s = 0.0;
  double achieved_vps = 0.0;
  double p50_s = 0.0, p95_s = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t hits = 0, misses = 0;
  double hit_rate = 0.0;
  std::uint64_t stale_serves = 0;
  std::uint64_t lost_deltas = 0;
  std::uint64_t duplicate_deltas = 0;
  std::uint64_t delta_mismatches = 0;
};

std::shared_ptr<const pipeline::ComputeCovid19Pipeline> build_pipeline() {
  nn::seed_init_rng(1);
  auto enh =
      std::make_shared<pipeline::EnhancementAI>(nn::DDnetConfig::tiny());
  auto seg = std::make_shared<pipeline::SegmentationAI>();
  auto cls = std::make_shared<pipeline::ClassificationAI>();
  enh->network().set_training(false);
  seg->network().set_training(false);
  cls->network().set_training(false);
  return std::make_shared<const pipeline::ComputeCovid19Pipeline>(enh, seg,
                                                                  cls);
}

/// One scan stream: patient p, round r scans volume vols[2*p + r%2].
/// Streams are sequential per patient (the monitoring contract) and
/// concurrent across patients — one thread per patient.
std::vector<std::vector<ScanRecord>> run_stream(
    const std::shared_ptr<const pipeline::ComputeCovid19Pipeline>& pipe,
    const std::vector<data::PhantomVolume>& vols, std::size_t patients,
    int rounds, double stall_s, bool monitored, RunReport& report) {
  serve::ServerOptions opt;
  opt.workers = 2;
  opt.max_batch = 2;
  opt.batch_delay = std::chrono::microseconds(500);
  opt.queue_capacity = 2 * patients;
  opt.device_stall_s = stall_s;
  opt.monitor = monitored;
  serve::InferenceServer server(pipe, opt);

  std::vector<std::vector<ScanRecord>> scans(
      patients, std::vector<ScanRecord>(rounds));
  WallTimer wall;
  std::vector<std::thread> streams;
  streams.reserve(patients);
  for (std::size_t p = 0; p < patients; ++p) {
    streams.emplace_back([&, p] {
      for (int r = 0; r < rounds; ++r) {
        serve::ServeOptions so;
        so.patient_id = 1 + p;
        auto fut = server.submit(vols[2 * p + (r % 2)].hu, so);
        const serve::DiagnoseResponse resp = fut.get();
        ScanRecord& rec = scans[p][r];
        rec.ok = resp.status == serve::RequestStatus::kOk;
        rec.cache_hit = resp.cache_hit;
        rec.probability = resp.diagnosis.probability;
        rec.burden = resp.infection_burden;
        rec.burden_delta = resp.burden_delta;
        rec.scan_seq = resp.scan_seq;
      }
    });
  }
  for (auto& t : streams) t.join();
  const double elapsed = wall.seconds();

  report.mode = monitored ? "cached" : "uncached";
  report.elapsed_s = elapsed;
  report.completed = server.stats().completed.load();
  report.achieved_vps = static_cast<double>(report.completed) / elapsed;
  report.p50_s = server.stats().total.quantile(0.50);
  report.p95_s = server.stats().total.quantile(0.95);
  if (monitored && server.monitor() != nullptr) {
    report.hits = server.monitor()->cache().hits.load();
    report.misses = server.monitor()->cache().misses.load();
    const double looked = static_cast<double>(report.hits + report.misses);
    report.hit_rate =
        looked > 0.0 ? static_cast<double>(report.hits) / looked : 0.0;
  }
  server.shutdown();
  return scans;
}

void append_run_json(std::string& out, const RunReport& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"mode\":\"%s\",\"elapsed_s\":%.4f,\"achieved_vps\":%.3f,"
      "\"completed\":%llu,\"p50_s\":%.6f,\"p95_s\":%.6f,"
      "\"hits\":%llu,\"misses\":%llu,\"hit_rate\":%.4f,"
      "\"stale_serves\":%llu,\"lost_deltas\":%llu,"
      "\"duplicate_deltas\":%llu,\"delta_mismatches\":%llu}",
      r.mode.c_str(), r.elapsed_s, r.achieved_vps,
      static_cast<unsigned long long>(r.completed), r.p50_s, r.p95_s,
      static_cast<unsigned long long>(r.hits),
      static_cast<unsigned long long>(r.misses), r.hit_rate,
      static_cast<unsigned long long>(r.stale_serves),
      static_cast<unsigned long long>(r.lost_deltas),
      static_cast<unsigned long long>(r.duplicate_deltas),
      static_cast<unsigned long long>(r.delta_mismatches));
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  double stall_ms = -1.0;  // <0 = derive from the device model
  std::string device = "V100";
  std::string json_name = "monitor_stream.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--stall-ms") && i + 1 < argc) {
      stall_ms = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--device") && i + 1 < argc) {
      device = argv[++i];
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_name = argv[++i];  // e.g. BENCH_monitor.json for CI tracking
    }
  }

  index_t depth = 4, px = 16;
  std::size_t patients = 8;
  int rounds = 4;
  if (args.quick) {
    patients = 4;
    rounds = 4;
  } else if (args.paper_scale) {
    depth = 8;
    px = 32;
    patients = 12;
    rounds = 6;
  }

  // Fixed seed: same workload every run — the bitwise checks and the
  // committed BENCH_monitor.json depend on it.
  Rng rng(7);
  std::vector<data::PhantomVolume> vols;
  for (std::size_t i = 0; i < 2 * patients; ++i) {
    vols.push_back(data::make_volume(depth, px, i % 2 == 1, rng));
  }

  std::string device_full = "(override)";
  if (stall_ms < 0.0) {
    hetero::DeviceSpec spec{};
    bool found = false;
    for (const auto& d : hetero::paper_devices()) {
      if (d.name.find(device) != std::string::npos) {
        spec = d;
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown --device %s\n", device.c_str());
      return 1;
    }
    device_full = spec.name;
    const hetero::NetworkCounts counts =
        hetero::count_ddnet(nn::DDnetConfig::paper(), 512, 512);
    const double per_slice =
        hetero::project_network_seconds(spec, counts,
                                        ops::KernelOptions::all())
            .total();
    stall_ms = 1e3 * per_slice * static_cast<double>(depth);
  }
  const double stall_s = stall_ms * 1e-3;

  bench::print_header("monitor_stream: longitudinal monitoring throughput");
  std::printf(
      "workload: %zu patients x %d rounds (2 volumes/patient, "
      "%lldx%lldx%lld), device residency %.1f ms/volume (%s)\n\n",
      patients, rounds, (long long)depth, (long long)px, (long long)px,
      stall_ms, device_full.c_str());

  auto pipe = build_pipeline();

  RunReport uncached, cached;
  const auto ref = run_stream(pipe, vols, patients, rounds, stall_s,
                              /*monitored=*/false, uncached);
  const auto mon = run_stream(pipe, vols, patients, rounds, stall_s,
                              /*monitored=*/true, cached);

  // Correctness accounting against the uncached reference.
  for (std::size_t p = 0; p < patients; ++p) {
    std::vector<int> seen(rounds + 1, 0);
    for (int r = 0; r < rounds; ++r) {
      const ScanRecord& a = ref[p][r];
      const ScanRecord& b = mon[p][r];
      if (!a.ok || !b.ok) {
        ++cached.lost_deltas;
        continue;
      }
      // Bitwise: a served (possibly cached) result must be exactly the
      // recomputation. != on doubles is the intentional bit check.
      if (a.probability != b.probability || a.burden != b.burden) {
        ++cached.stale_serves;
      }
      if (b.scan_seq >= 1 && b.scan_seq <= static_cast<std::uint64_t>(rounds)) {
        ++seen[b.scan_seq];
      } else {
        ++cached.lost_deltas;
      }
      if (r > 0) {
        const double want = ref[p][r].burden - ref[p][r - 1].burden;
        if (b.burden_delta != want) ++cached.delta_mismatches;
      }
    }
    for (int s = 1; s <= rounds; ++s) {
      if (seen[s] == 0) ++cached.lost_deltas;
      if (seen[s] > 1) cached.duplicate_deltas += seen[s] - 1;
    }
  }

  const double speedup = uncached.achieved_vps > 0.0
                             ? cached.achieved_vps / uncached.achieved_vps
                             : 0.0;
  std::printf(
      "uncached: %7.2f vps  p50=%6.1fms p95=%6.1fms\n"
      "cached  : %7.2f vps  p50=%6.1fms p95=%6.1fms  "
      "hit_rate=%.2f (%llu/%llu)\n"
      "cached speedup: %.2fx\n"
      "stale serves: %llu  lost deltas: %llu  duplicate deltas: %llu  "
      "delta mismatches: %llu\n",
      uncached.achieved_vps, 1e3 * uncached.p50_s, 1e3 * uncached.p95_s,
      cached.achieved_vps, 1e3 * cached.p50_s, 1e3 * cached.p95_s,
      cached.hit_rate, static_cast<unsigned long long>(cached.hits),
      static_cast<unsigned long long>(cached.hits + cached.misses),
      speedup, static_cast<unsigned long long>(cached.stale_serves),
      static_cast<unsigned long long>(cached.lost_deltas),
      static_cast<unsigned long long>(cached.duplicate_deltas),
      static_cast<unsigned long long>(cached.delta_mismatches));

  std::string json = "{\"workload\":{";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"patients\":%zu,\"rounds\":%d,\"depth\":%lld,"
                "\"px\":%lld,\"stall_ms\":%.3f,\"device\":\"%s\"},",
                patients, rounds, (long long)depth, (long long)px, stall_ms,
                device_full.c_str());
  json += buf;
  json += "\"monitor_runs\":[";
  append_run_json(json, cached);
  json += ",";
  append_run_json(json, uncached);
  std::snprintf(buf, sizeof(buf), "],\"cached_speedup\":%.3f}", speedup);
  json += buf;

  const std::string path = args.out_dir + "/" + json_name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("report: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  return 0;
}
