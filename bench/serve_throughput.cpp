// serve_throughput — closed- and open-loop load generation against the
// serve::InferenceServer, sweeping worker count × micro-batch size ×
// offered load on one fixed phantom workload, and verifying that the
// diagnoses are bitwise-identical no matter the concurrency.
//
// Execution model: each request runs the real (reduced-scale) pipeline
// on the CPU to produce a verifiable diagnosis, and the worker then
// blocks for the projected accelerator residency of the paper-scale
// DDnet on the chosen Table-4 device (roofline device model ×
// slices/volume) — the synchronous device-offload a production
// deployment of the paper's GPU/OpenCL stack would pay. --stall-ms
// overrides the projection; --stall-ms 0 benchmarks pure-CPU serving
// (on a single-core host, worker scaling is then bound by Amdahl, which
// is exactly what the report will show).
//
// Closed loop: C = max(4, 2·workers·batch) submitters, each holding at
// most one request in flight — measures capacity. Open loop: requests
// arrive on a fixed-rate clock regardless of completions (0.7×, 1.0×,
// 1.4× the measured capacity of the largest configuration) against a
// short admission queue — measures latency degradation and rejection
// under overload.
//
// Emits a human-readable table and serve_throughput.json in --out-dir.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "data/phantom.h"
#include "hetero/ddnet_counts.h"
#include "nn/layers.h"
#include "serve/server.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace ccovid;

namespace {

struct RunReport {
  std::string mode;  // "closed" / "open"
  int workers = 0;
  std::size_t batch = 0;
  int concurrency = 0;       // closed loop
  double offered_vps = 0.0;  // open loop
  double elapsed_s = 0.0;
  double achieved_vps = 0.0;
  std::uint64_t submitted = 0, completed = 0, rejected = 0, timed_out = 0;
  double mean_batch = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  // total latency, seconds
  double queue_p95 = 0.0;
};

struct Workload {
  std::vector<data::PhantomVolume> patients;
  int rounds = 1;  // each patient is submitted `rounds` times per run
  std::size_t submissions() const { return patients.size() * rounds; }
};

std::shared_ptr<const pipeline::ComputeCovid19Pipeline> build_pipeline() {
  nn::seed_init_rng(1);
  auto enh = std::make_shared<pipeline::EnhancementAI>(
      nn::DDnetConfig::tiny());
  auto seg = std::make_shared<pipeline::SegmentationAI>();
  auto cls = std::make_shared<pipeline::ClassificationAI>();
  enh->network().set_training(false);
  seg->network().set_training(false);
  cls->network().set_training(false);
  return std::make_shared<const pipeline::ComputeCovid19Pipeline>(enh, seg,
                                                                  cls);
}

serve::ServerOptions server_options(int workers, std::size_t batch,
                                    double stall_s,
                                    std::size_t queue_cap) {
  serve::ServerOptions opt;
  opt.workers = workers;
  opt.max_batch = batch;
  opt.batch_delay = std::chrono::microseconds(2000);
  opt.queue_capacity = queue_cap;
  opt.device_stall_s = stall_s;
  return opt;
}

void fill_latencies(const serve::InferenceServer& server, RunReport& r) {
  const serve::ServerStats& s = server.stats();
  r.completed = s.completed.load();
  r.rejected = s.rejected_queue_full.load();
  r.timed_out = s.timed_out.load();
  r.submitted = s.submitted.load();
  r.mean_batch = s.batches.load() == 0
                     ? 0.0
                     : static_cast<double>(s.batched_volumes.load()) /
                           static_cast<double>(s.batches.load());
  r.p50 = s.total.quantile(0.50);
  r.p95 = s.total.quantile(0.95);
  r.p99 = s.total.quantile(0.99);
  r.queue_p95 = s.queue_wait.quantile(0.95);
}

// `probs[i]` receives the probability of submission i (volume i %
// patients). Returns the run report.
RunReport run_closed_loop(
    const std::shared_ptr<const pipeline::ComputeCovid19Pipeline>& pipe,
    const Workload& w, int workers, std::size_t batch, double stall_s,
    std::vector<double>& probs) {
  serve::InferenceServer server(
      pipe, server_options(workers, batch, stall_s, 256));
  const int concurrency =
      std::max<int>(4, 2 * workers * static_cast<int>(batch));
  const std::size_t n = w.submissions();
  probs.assign(n, -1.0);

  std::atomic<std::size_t> next{0};
  WallTimer wall;
  std::vector<std::thread> submitters;
  submitters.reserve(concurrency);
  for (int c = 0; c < concurrency; ++c) {
    submitters.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) break;
        serve::ServeOptions sopt;
        sopt.use_enhancement = true;
        auto fut = server.submit(
            w.patients[i % w.patients.size()].hu, sopt);
        const serve::DiagnoseResponse r = fut.get();
        if (r.status == serve::RequestStatus::kOk) {
          probs[i] = r.diagnosis.probability;
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  const double elapsed = wall.seconds();
  server.shutdown();

  RunReport r;
  r.mode = "closed";
  r.workers = workers;
  r.batch = batch;
  r.concurrency = concurrency;
  r.elapsed_s = elapsed;
  fill_latencies(server, r);
  r.achieved_vps = static_cast<double>(r.completed) / elapsed;
  return r;
}

RunReport run_open_loop(
    const std::shared_ptr<const pipeline::ComputeCovid19Pipeline>& pipe,
    const Workload& w, int workers, std::size_t batch, double stall_s,
    double offered_vps, std::vector<double>& probs) {
  // Short queue + deadline: overload turns into fast-fail rejections and
  // timeouts instead of unbounded waiting.
  serve::ServerOptions opt = server_options(workers, batch, stall_s, 4);
  opt.default_deadline = std::chrono::milliseconds(2000);
  serve::InferenceServer server(pipe, opt);

  const std::size_t n = w.submissions();
  probs.assign(n, -1.0);
  const auto interval = std::chrono::duration<double>(1.0 / offered_vps);

  std::vector<std::future<serve::DiagnoseResponse>> futures;
  futures.reserve(n);
  WallTimer wall;
  const auto start = serve::Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<serve::Clock::duration>(
                    interval * static_cast<double>(i)));
    serve::ServeOptions sopt;
    sopt.use_enhancement = true;
    futures.push_back(
        server.submit(w.patients[i % w.patients.size()].hu, sopt));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const serve::DiagnoseResponse r = futures[i].get();
    if (r.status == serve::RequestStatus::kOk) {
      probs[i] = r.diagnosis.probability;
    }
  }
  const double elapsed = wall.seconds();
  server.shutdown();

  RunReport r;
  r.mode = "open";
  r.workers = workers;
  r.batch = batch;
  r.offered_vps = offered_vps;
  r.elapsed_s = elapsed;
  fill_latencies(server, r);
  r.achieved_vps = static_cast<double>(r.completed) / elapsed;
  return r;
}

void append_run_json(std::string& out, const RunReport& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"mode\":\"%s\",\"workers\":%d,\"batch\":%zu,"
      "\"concurrency\":%d,\"offered_vps\":%.3f,\"elapsed_s\":%.4f,"
      "\"achieved_vps\":%.3f,\"submitted\":%llu,\"completed\":%llu,"
      "\"rejected\":%llu,\"timed_out\":%llu,\"mean_batch\":%.3f,"
      "\"p50_s\":%.6f,\"p95_s\":%.6f,\"p99_s\":%.6f,"
      "\"queue_wait_p95_s\":%.6f}",
      r.mode.c_str(), r.workers, r.batch, r.concurrency, r.offered_vps,
      r.elapsed_s, r.achieved_vps,
      static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.rejected),
      static_cast<unsigned long long>(r.timed_out), r.mean_batch, r.p50,
      r.p95, r.p99, r.queue_p95);
  out += buf;
}

void print_run(const RunReport& r) {
  std::printf(
      "%-6s w=%d b=%zu %-18s %7.2f vps  p50=%6.1fms p95=%6.1fms "
      "p99=%6.1fms  done=%llu rej=%llu to=%llu  mb=%.2f\n",
      r.mode.c_str(), r.workers, r.batch,
      r.mode == "closed"
          ? ("C=" + std::to_string(r.concurrency)).c_str()
          : ("offered=" + std::to_string(static_cast<int>(r.offered_vps)) +
             "/s")
                .c_str(),
      r.achieved_vps, 1e3 * r.p50, 1e3 * r.p95, 1e3 * r.p99,
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.rejected),
      static_cast<unsigned long long>(r.timed_out), r.mean_batch);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  double stall_ms = -1.0;  // <0 = derive from the device model
  std::string device = "V100";
  std::string json_name = "serve_throughput.json";
  bool trace_on = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--stall-ms") && i + 1 < argc) {
      stall_ms = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--device") && i + 1 < argc) {
      device = argv[++i];
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_name = argv[++i];  // e.g. BENCH_serve.json for CI tracking
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace_on = true;  // leave off for committed BENCH numbers
    }
  }
  if (trace_on) {
    trace::set_ring_capacity(1 << 17);
    trace::set_level(1);
  }

  index_t depth = 4, px = 16;
  std::size_t num_patients = 12;
  Workload w;
  w.rounds = 2;
  if (args.quick) {
    // Enough submissions that batch-2 micro-batches keep all 4 workers
    // of the largest configuration busy (8 batches over 4 workers).
    num_patients = 8;
    w.rounds = 2;
  } else if (args.paper_scale) {
    depth = 8;
    px = 32;
    num_patients = 16;
    w.rounds = 2;
  }

  // Fixed seed: the workload (and hence every diagnosis) is fully
  // deterministic; the bitwise check below depends on it.
  Rng rng(7);
  for (std::size_t i = 0; i < num_patients; ++i) {
    w.patients.push_back(data::make_volume(depth, px, i % 2 == 1, rng));
  }

  // Emulated accelerator residency: projected paper-scale (512²) DDnet
  // per-slice time on the chosen Table-4 device × slices per volume.
  std::string device_full = "(override)";
  if (stall_ms < 0.0) {
    hetero::DeviceSpec spec{};
    bool found = false;
    for (const auto& d : hetero::paper_devices()) {
      if (d.name.find(device) != std::string::npos) {
        spec = d;
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown --device %s\n", device.c_str());
      return 1;
    }
    device_full = spec.name;
    const hetero::NetworkCounts counts =
        hetero::count_ddnet(nn::DDnetConfig::paper(), 512, 512);
    const double per_slice =
        hetero::project_network_seconds(spec, counts,
                                        ops::KernelOptions::all())
            .total();
    stall_ms = 1e3 * per_slice * static_cast<double>(depth);
  }
  const double stall_s = stall_ms * 1e-3;

  bench::print_header("serve_throughput: batching inference server");
  std::printf(
      "workload: %zu phantom volumes (%lldx%lldx%lld) x %d rounds, "
      "enhancement on\n"
      "device residency emulation: %.1f ms/volume (%s)\n\n",
      w.patients.size(), (long long)depth, (long long)px, (long long)px,
      w.rounds, stall_ms, device_full.c_str());

  auto pipe = build_pipeline();

  const std::vector<int> worker_sweep =
      args.quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4};
  const std::vector<std::size_t> batch_sweep =
      args.quick ? std::vector<std::size_t>{2}
                 : std::vector<std::size_t>{1, 4};

  std::vector<RunReport> runs;
  std::vector<std::vector<double>> all_probs;

  for (std::size_t b : batch_sweep) {
    for (int wk : worker_sweep) {
      std::vector<double> probs;
      runs.push_back(run_closed_loop(pipe, w, wk, b, stall_s, probs));
      all_probs.push_back(std::move(probs));
      print_run(runs.back());
    }
  }

  // Capacity of the largest configuration drives the open-loop rates.
  double capacity = 0.0, vps1 = 0.0, vps4 = 0.0;
  const std::size_t ref_batch = batch_sweep.back();
  for (const auto& r : runs) {
    capacity = std::max(capacity, r.achieved_vps);
    if (r.batch == ref_batch && r.workers == 1) vps1 = r.achieved_vps;
    if (r.batch == ref_batch && r.workers == 4) vps4 = r.achieved_vps;
  }

  if (!args.quick) {
    std::printf("\n");
    // 0.7x/1.0x show steady-state latency; 1.4x shows queueing delay;
    // 2.5x drives the short admission queue into rejection/timeout.
    for (double mult : {0.7, 1.0, 1.4, 2.5}) {
      std::vector<double> probs;
      runs.push_back(run_open_loop(pipe, w, worker_sweep.back(),
                                   batch_sweep.back(), stall_s,
                                   mult * capacity, probs));
      all_probs.push_back(std::move(probs));
      print_run(runs.back());
    }
  }

  // Determinism: every completed submission of volume v must produce the
  // same bits in every run (open-loop runs may have rejected some).
  bool deterministic = true;
  const std::size_t n = w.submissions();
  std::vector<double> reference(w.patients.size(), -1.0);
  for (const auto& probs : all_probs) {
    for (std::size_t i = 0; i < probs.size() && i < n; ++i) {
      if (probs[i] < 0.0) continue;  // not completed in this run
      double& ref = reference[i % w.patients.size()];
      if (ref < 0.0) {
        ref = probs[i];
      } else if (probs[i] != ref) {  // bitwise comparison, intentional
        deterministic = false;
      }
    }
  }

  const double speedup = vps1 > 0.0 ? vps4 / vps1 : 0.0;
  std::printf(
      "\nclosed-loop capacity: %.2f vps; 4-worker vs 1-worker speedup "
      "(batch %zu): %.2fx\nresults bitwise-identical across "
      "configurations: %s\n",
      capacity, ref_batch, speedup, deterministic ? "yes" : "NO");

  std::string json = "{\"workload\":{";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"patients\":%zu,\"rounds\":%d,\"depth\":%lld,"
                "\"px\":%lld,\"stall_ms\":%.3f,\"device\":\"%s\"},",
                w.patients.size(), w.rounds, (long long)depth,
                (long long)px, stall_ms, device_full.c_str());
  json += buf;
  json += "\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i) json += ",";
    append_run_json(json, runs[i]);
  }
  std::snprintf(buf, sizeof(buf),
                "],\"speedup_4v1_closed\":%.3f,\"deterministic\":%s",
                speedup, deterministic ? "true" : "false");
  json += buf;
  if (trace_on) {
    // Per-span summary over the whole sweep, merged across every
    // submitter/batcher/worker thread before quantile extraction.
    const trace::Snapshot snap = trace::snapshot();
    std::printf("\ntrace spans (merged across threads):\n%s",
                trace::table(trace::aggregate(snap)).c_str());
    json += ",\"trace\":" + trace::summary_json(snap);
  }
  json += "}";

  const std::string path = args.out_dir + "/" + json_name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("report: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
  }
  return 0;
}
