// Table 3 — "Runtime for the Enhancement AI training for 50 epochs":
// distributed data-parallel DDnet training across (#nodes, batch size,
// epochs) configurations, reporting modeled cluster runtime and the
// trained model's average MS-SSIM on a held-out set.
//
// The eight rows match the paper's; training is real (synchronized SGD
// over the in-process ring all-reduce on genuine low-dose pairs), the
// runtime column is the interconnect-model cluster time (DESIGN.md §1),
// and, like the paper, larger effective batches finish faster but end at
// lower MS-SSIM.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "data/dataset.h"
#include "autograd/losses.h"
#include "dist/ddp.h"
#include "metrics/image_quality.h"
#include "nn/ddnet.h"

using namespace ccovid;

namespace {

struct Row {
  int nodes;
  index_t global_batch;
  int epochs;
};

nn::DDnetConfig bench_net_config(bool paper_scale) {
  if (paper_scale) return nn::DDnetConfig::paper();
  nn::DDnetConfig cfg;
  cfg.base_channels = 8;
  cfg.growth = 8;
  cfg.dense_layers = 2;
  cfg.levels = 2;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  const index_t image_px = args.paper_scale ? 512 : 32;
  // The largest Table 3 row uses a global batch of 64, so the dataset
  // must hold at least 64 pairs even in quick mode.
  const index_t dataset_size = args.paper_scale ? 5120 : 64;
  const int epoch_unit = args.paper_scale ? 50 : args.quick ? 1 : 5;

  bench::print_header(
      "Table 3: Enhancement AI DDP training — runtime & MS-SSIM "
      "(modeled cluster time; T4-class nodes over 10 GbE)");
  std::printf("dataset: %lld synthetic low-dose pairs at %lldx%lld, "
              "epoch unit %d (paper: 50)\n\n",
              static_cast<long long>(dataset_size),
              static_cast<long long>(image_px),
              static_cast<long long>(image_px), epoch_unit);

  // The paper's eight configurations; epochs are expressed in units of
  // the 50-epoch base so the reduced-scale run keeps the 50/100 ratio.
  const std::vector<Row> rows = {
      {1, 1, 1},  {4, 8, 1},  {4, 8, 2},  {4, 16, 1},
      {8, 8, 1},  {8, 8, 2},  {8, 32, 1}, {8, 64, 1},
  };

  Rng data_rng(2021);
  data::EnhancementDatasetConfig dcfg;
  dcfg.image_px = image_px;
  dcfg.num_train = dataset_size;
  dcfg.num_val = std::max<index_t>(4, dataset_size / 8);
  dcfg.num_test = 0;
  if (!args.paper_scale) dcfg.lowdose.photons_per_ray = 5e4;
  const data::EnhancementDataset ds =
      data::make_enhancement_dataset(dcfg, data_rng);

  const auto net_cfg = bench_net_config(args.paper_scale);

  std::printf("%-7s %-11s %-8s %-22s %-10s\n", "#Nodes", "Batch Size",
              "#Epochs", "Runtime (hh:mm:ss)", "MS-SSIM");

  for (const Row& row : rows) {
    nn::seed_init_rng(7);  // identical initial weights per row
    dist::DdpConfig cfg;
    cfg.world_size = row.nodes;
    cfg.per_worker_batch = row.global_batch / row.nodes;
    cfg.lr = 1e-4 * (args.paper_scale ? 1.0 : 20.0);  // scale for tiny net
    cfg.lr_decay = 0.8;
    dist::DdpTrainer trainer(
        [&] { return std::make_shared<nn::DDnet>(net_cfg); }, cfg);

    auto loss_fn = [&ds](nn::Module& model, int /*rank*/,
                         const std::vector<index_t>& samples) {
      auto& net = dynamic_cast<nn::DDnet&>(model);
      autograd::Var total;
      for (index_t s : samples) {
        const auto& pair = ds.train[s];
        autograd::Var x(pair.low.clone().reshape(
            {1, 1, pair.low.dim(0), pair.low.dim(1)}));
        autograd::Var pred = net.forward(x);
        autograd::Var loss = autograd::enhancement_loss(
            pred,
            pair.full.clone().reshape(
                {1, 1, pair.full.dim(0), pair.full.dim(1)}),
            0.1f, 11, 1);
        total = total.defined() ? autograd::add(total, loss) : loss;
      }
      return autograd::mul_scalar(
          total, 1.0f / static_cast<real_t>(samples.size()));
    };

    Rng epoch_rng(row.nodes * 1000 + row.global_batch);
    double modeled_total = 0.0;
    const int epochs = row.epochs * epoch_unit;
    for (int e = 0; e < epochs; ++e) {
      const dist::EpochStats stats =
          trainer.train_epoch(dataset_size, loss_fn, epoch_rng);
      modeled_total += stats.modeled_seconds;
      trainer.decay_lr();
    }

    // Validation MS-SSIM of the trained rank-0 model.
    auto& net = dynamic_cast<nn::DDnet&>(trainer.model(0));
    net.set_training(false);
    double msssim = 0.0;
    for (const auto& pair : ds.val) {
      const Tensor enhanced = net.enhance(pair.low);
      msssim += metrics::ms_ssim(pair.full, enhanced);
    }
    msssim /= static_cast<double>(ds.val.size());

    std::printf("%-7d %-11lld %-8d %-22s %6.2f%%\n", row.nodes,
                static_cast<long long>(row.global_batch),
                epochs * (args.paper_scale ? 1 : 50 / epoch_unit),
                bench::format_hms(modeled_total).c_str(), 100.0 * msssim);
  }

  bench::print_rule();
  std::printf(
      "Paper (Table 3): 1n/b1: 15:14:46 @ 98.71%% | 4n/b8: 2:27:49 @ "
      "96.35%% | 8n/b32: 1:17:25 @ 92.04%% | 8n/b64: 1:12:24 @ 88.02%%\n"
      "Expected shape: runtime falls sub-linearly with nodes; MS-SSIM "
      "degrades as the effective batch grows.\n");
  return 0;
}
