// Table 4 — "Inference runtime for the Enhancement AI tool" across
// heterogeneous platforms.
//
// The local CPU row is *measured* twice, mirroring the paper's two
// columns: the framework-style path (autograd graph construction +
// module dispatch — our stand-in for the PyTorch measurement) and the
// raw optimized kernel path (the OpenCL measurement). The five platforms
// we do not have are *projected* with the roofline device model driven
// by the instrumented per-kernel op counts (DESIGN.md §1); the paper's
// own numbers are printed alongside.
#include <cstdio>

#include "autograd/variable.h"
#include "bench_common.h"
#include "ddnet_timing.h"
#include "hetero/ddnet_counts.h"
#include "hetero/device_model.h"

using namespace ccovid;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  index_t px = 0;
  nn::DDnetConfig cfg = bench::bench_inference_config(
      args.paper_scale && !args.quick, &px);
  if (args.quick) {
    cfg.base_channels = 4;
    cfg.growth = 4;
    px = 64;
  }

  bench::print_header("Table 4: Enhancement AI inference runtime");
  std::printf("DDnet config: base=%lld growth=%lld levels=%d, input "
              "%lldx%lld%s\n\n",
              (long long)cfg.base_channels, (long long)cfg.growth,
              cfg.levels, (long long)px, (long long)px,
              args.paper_scale ? " (paper scale)" : " (reduced scale)");

  // --- measured local CPU ---
  // Framework path: full module forward with autograd bookkeeping.
  nn::seed_init_rng(1);
  nn::DDnet net(cfg);
  net.set_training(false);
  Rng rng(2);
  Tensor img({px, px});
  rng.fill_uniform(img, 0.0, 1.0);
  (void)net.enhance(img);  // warm-up
  double framework_s = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    WallTimer t;
    (void)net.enhance(img);
    framework_s = std::min(framework_s, t.seconds());
  }

  // Kernel path: raw optimized kernels, no graph machinery (min of 3).
  (void)bench::measure_ddnet_cpu(cfg, px, px, ops::KernelOptions::all());
  bench::MeasuredBreakdown measured;
  measured.conv_s = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const auto m =
        bench::measure_ddnet_cpu(cfg, px, px, ops::KernelOptions::all());
    if (m.total() < measured.total()) measured = m;
  }

  // --- projections for the paper's platforms ---
  const auto counts = hetero::count_ddnet(cfg, px, px);

  struct PaperRow {
    const char* name;
    const char* cores;
    double bw, freq;
    const char* pytorch;
    const char* opencl;
  };
  const PaperRow paper_rows[] = {
      {"Nvidia V100 GPU", "5120 (CUDA cores)", 900, 1380, "0.22", "0.10"},
      {"Nvidia P100 GPU", "3584 (CUDA cores)", 732, 1328, "0.73", "0.25"},
      {"AMD Radeon Vega Frontier GPU", "4096 (Stream Proc.)", 480, 1600,
       "-", "0.25"},
      {"Nvidia T4 GPU", "2560 (CUDA cores)", 320, 1590, "1.29", "0.29"},
      {"Intel Xeon Gold 6128 CPU", "24 (CPU cores)", 119, 3400, "5.52",
       "1.64"},
      {"Intel Arria 10 GX 1150 FPGA", "2 (CUs)", 3, 184, "-", "16.74"},
  };

  std::printf("%-30s %9s %9s | %12s %12s\n", "Platform", "BW(GB/s)",
              "MHz", "ours (s)", "paper (s)");
  bench::print_rule();
  for (const auto& row : paper_rows) {
    const auto dev = hetero::device_by_name(row.name);
    const auto proj = hetero::project_network_seconds(
        dev, counts, ops::KernelOptions::all());
    std::printf("%-30s %9.0f %9.0f | %12.3f %12s\n", row.name, row.bw,
                row.freq, proj.total(), row.opencl);
  }
  bench::print_rule();
  std::printf(
      "Local CPU (measured, this machine):\n"
      "  module-graph path (autograd modules): %.3f s\n"
      "  raw kernel path:                      %.3f s\n"
      "  The two agree within ~10%%: unlike PyTorch (whose Python/"
      "dispatcher\n  overhead gives the paper's 5.52 -> 1.64 s = 3.4x "
      "OpenCL gap), our\n  module layer is a thin C++ veneer over the "
      "same kernels.\n",
      framework_s, measured.total());
  std::printf(
      "\nExpected shape: projected runtimes track platform memory "
      "bandwidth\n(V100 < P100 ~ Vega < T4 < CPU << FPGA), the ordering "
      "§5.1.3 reports.\n");
  return 0;
}
