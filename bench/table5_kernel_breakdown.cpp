// Table 5 — "Event-based time of the optimized OpenCL kernels": the
// per-kernel-class (convolution / deconvolution / other) execution-time
// breakdown of one DDnet forward pass. The local CPU row is measured
// with scoped kernel timers; the other platforms are projected per class
// from the instrumented op counts.
#include <cstdio>

#include "bench_common.h"
#include "ddnet_timing.h"
#include "hetero/ddnet_counts.h"
#include "hetero/device_model.h"

using namespace ccovid;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  index_t px = 0;
  nn::DDnetConfig cfg = bench::bench_inference_config(
      args.paper_scale && !args.quick, &px);
  if (args.quick) {
    cfg.base_channels = 4;
    cfg.growth = 4;
    px = 64;
  }

  bench::print_header(
      "Table 5: Event-based per-kernel time of Enhancement AI inference");
  std::printf("DDnet base=%lld growth=%lld, input %lldx%lld\n\n",
              (long long)cfg.base_channels, (long long)cfg.growth,
              (long long)px, (long long)px);

  const auto counts = hetero::count_ddnet(cfg, px, px);
  const auto opt = ops::KernelOptions::all();

  struct PaperRow {
    const char* name;
    double conv, deconv, other;
  };
  const PaperRow paper_rows[] = {
      {"Nvidia V100 GPU", 0.036, 0.059, 0.004},
      {"Nvidia P100 GPU", 0.075, 0.169, 0.005},
      {"AMD Radeon Vega Frontier GPU", 0.082, 0.170, 0.005},
      {"Nvidia T4 GPU", 0.123, 0.153, 0.016},
      {"Intel Xeon Gold 6128 CPU", 0.495, 1.078, 0.057},
      {"Intel Arria 10 GX 1150 FPGA", 9.819, 2.839, 3.991},
  };

  std::printf("%-30s | %-26s | %-26s\n", "",
              "ours: conv / deconv / other",
              "paper: conv / deconv / other");
  bench::print_rule(92);
  for (const auto& row : paper_rows) {
    const auto dev = hetero::device_by_name(row.name);
    const auto proj = hetero::project_network_seconds(dev, counts, opt);
    std::printf("%-30s | %7.3f %8.3f %8.3f   | %7.3f %8.3f %8.3f\n",
                row.name, proj.conv_s, proj.deconv_s, proj.other_s,
                row.conv, row.deconv, row.other);
  }
  bench::print_rule(92);

  const auto measured = bench::measure_ddnet_cpu(cfg, px, px, opt);
  std::printf(
      "Local CPU (measured): conv %.3f s, deconv %.3f s, other %.3f s "
      "(total %.3f s)\n",
      measured.conv_s, measured.deconv_s, measured.other_s,
      measured.total());
  std::printf(
      "\nExpected shape: deconvolution >= convolution on CPU/GPUs "
      "(irregular accesses, integer division); 'other' kernels are a "
      "small fraction; the FPGA inverts the conv/deconv ordering.\n");
  return 0;
}
