// Table 6 — "Global memory load/store and floating-point operation
// count for individual kernels with an input of size 512x512x32":
// exact instrumented counts for each kernel class on the same input
// configuration the paper uses (5x5 filters for conv/deconv, 2x pooling
// and un-pooling factors).
#include <cstdio>

#include "bench_common.h"
#include "ops/instrumented.h"

using namespace ccovid;
using namespace ccovid::ops;

namespace {

void print_row(const char* kernel, const OpCounters& c, double paper_loads,
               double paper_stores, double paper_flops) {
  std::printf("%-20s %12.1f %12.1f %12.1f | %10.1f %10.1f %10.1f\n",
              kernel, c.global_loads / 1e6, c.global_stores / 1e6,
              c.flops / 1e6, paper_loads, paper_stores, paper_flops);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  // Table 6 is analytic over the index space; the full 512x512x32 input
  // costs nothing to count, so --quick only shrinks for smoke testing.
  const index_t hw = args.quick ? 64 : 512;
  const index_t c = args.quick ? 8 : 32;

  bench::print_header(
      "Table 6: per-kernel global loads / stores / flops (millions)");
  std::printf("input %lldx%lldx%lld, 5x5 conv/deconv filters, 2x pooling\n",
              (long long)hw, (long long)hw, (long long)c);
  std::printf("%-20s %12s %12s %12s | %10s %10s %10s\n", "Kernel",
              "loads(1e6)", "stores(1e6)", "flops(1e6)", "paper-ld",
              "paper-st", "paper-fl");
  bench::print_rule(106);

  const Conv2dParams cp = Conv2dParams::same(5);
  const Deconv2dParams dp = Deconv2dParams::same(5);

  print_row("Convolution", count_conv2d(1, c, hw, hw, c, 5, cp), 13421.7,
            8.4, 13421.7);
  print_row("Deconvolution", count_deconv2d_gather(1, c, hw, hw, c, 5, dp),
            13421.7, 8.4, 13421.7);
  print_row("Deconv (scatter)",
            count_deconv2d_scatter(1, c, hw, hw, c, 5, dp), 0, 0, 0);
  print_row("Pooling", count_max_pool2d(1, c, hw, hw, {3, 2, 1}), 18.9,
            2.1, 0.0);
  print_row("Un-pooling", count_unpool2d(1, c, hw / 2, hw / 2, 2), 134.3,
            33.5, 469.7);
  print_row("Leaky-ReLU", count_leaky_relu(hw * hw * c), 8.4, 8.4, 8.4);
  print_row("Batch Normalization", count_batch_norm(1, c, hw * hw), 41.9,
            8.4, 41.9);

  bench::print_rule(106);
  std::printf(
      "Notes: counts are exact for our kernels' loop structures (stores\n"
      "for conv/deconv and elementwise kernels match the paper exactly;\n"
      "load/flop totals depend on the Cin/Cout the authors assumed for\n"
      "the 32-channel input, which Table 6 does not state — ours uses\n"
      "Cin = Cout = 32). The scatter row quantifies the extra traffic\n"
      "the REF refactoring removes; the paper reports no counts for it.\n");
  return 0;
}
