// Table 7 — "Execution time profile of entire DDnet with different
// optimizations": the cumulative Baseline / +REF / +PF / +LU ablation.
//
// Every stage is a genuinely different code path (scatter vs gather
// deconvolution, volatile-reload vs cached loop bounds, generic vs
// fully-unrolled multiply-add loops) — the CPU column is *measured* by
// running all four; the other platforms are projected from the
// per-variant op counts through the device model.
#include <cstdio>

#include "bench_common.h"
#include "ddnet_timing.h"
#include "hetero/ddnet_counts.h"
#include "hetero/device_model.h"

using namespace ccovid;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  index_t px = 0;
  nn::DDnetConfig cfg = bench::bench_inference_config(
      args.paper_scale && !args.quick, &px);
  if (args.quick) {
    cfg.base_channels = 4;
    cfg.growth = 4;
    px = 64;
  }

  const ops::KernelOptions stages[4] = {
      ops::KernelOptions::baseline(), ops::KernelOptions::refactored(),
      ops::KernelOptions::refactored_prefetch(), ops::KernelOptions::all()};
  const char* stage_names[4] = {"Baseline", "+REF", "+REF+PF",
                                "+REF+PF+LU"};

  bench::print_header(
      "Table 7: whole-DDnet execution time under cumulative kernel "
      "optimizations (REF = deconv refactoring, PF = prefetch, LU = "
      "loop unrolling)");
  std::printf("DDnet base=%lld growth=%lld, input %lldx%lld\n\n",
              (long long)cfg.base_channels, (long long)cfg.growth,
              (long long)px, (long long)px);

  // --- measured CPU ablation ---
  std::printf("Local CPU, measured (seconds):\n");
  std::printf("  %-12s %-10s %-10s %-10s %-10s\n", "", "total", "conv",
              "deconv", "other");
  double cpu_measured[4] = {};
  for (int s = 0; s < 4; ++s) {
    // Min of two repetitions to shrug off scheduler noise.
    auto m = bench::measure_ddnet_cpu(cfg, px, px, stages[s]);
    const auto m2 = bench::measure_ddnet_cpu(cfg, px, px, stages[s]);
    if (m2.total() < m.total()) m = m2;
    cpu_measured[s] = m.total();
    std::printf("  %-12s %-10.3f %-10.3f %-10.3f %-10.3f\n",
                stage_names[s], m.total(), m.conv_s, m.deconv_s,
                m.other_s);
  }
  std::printf("  measured Baseline/full speedup: %.2fx (paper CPU: "
              "6.51/1.64 = 4.0x)\n\n",
              cpu_measured[0] / cpu_measured[3]);

  // --- projected ablation for every platform ---
  const auto counts = hetero::count_ddnet(cfg, px, px);
  struct PaperRow {
    const char* name;
    double t[4];
  };
  const PaperRow paper_rows[] = {
      {"Nvidia GPU V100", {63.82, 0.10, 0.10, 0.10}},
      {"Nvidia GPU P100", {152.08, 0.29, 0.26, 0.25}},
      {"AMD Radeon Vega Frontier GPU", {219.60, 0.25, 0.25, 0.25}},
      {"Nvidia T4", {59.30, 0.32, 0.31, 0.29}},
      {"Intel Xeon Gold 6128 CPU", {6.51, 1.95, 1.69, 1.64}},
      {"Intel Arria 10 GX 1150 FPGA", {278.53, 130.62, 127.72, 65.83}},
  };
  const char* model_names[6] = {
      "Nvidia V100 GPU",  "Nvidia P100 GPU",
      "AMD Radeon Vega Frontier GPU", "Nvidia T4 GPU",
      "Intel Xeon Gold 6128 CPU", "Intel Arria 10 GX 1150 FPGA"};

  std::printf("Projected (device model), ours | paper:\n");
  std::printf("%-30s %10s %10s %10s %10s\n", "Platform", "Baseline",
              "+REF", "+PF", "+LU");
  bench::print_rule(86);
  for (int d = 0; d < 6; ++d) {
    const auto dev = hetero::device_by_name(model_names[d]);
    double ours[4];
    for (int s = 0; s < 4; ++s) {
      ours[s] = hetero::project_network_seconds(dev, counts, stages[s])
                    .total();
    }
    std::printf("%-30s %10.2f %10.2f %10.2f %10.2f   (ours)\n",
                paper_rows[d].name, ours[0], ours[1], ours[2], ours[3]);
    std::printf("%-30s %10.2f %10.2f %10.2f %10.2f   (paper)\n", "",
                paper_rows[d].t[0], paper_rows[d].t[1], paper_rows[d].t[2],
                paper_rows[d].t[3]);
  }
  bench::print_rule(86);
  std::printf(
      "Expected shape: REF dominates everywhere (orders of magnitude on\n"
      "GPUs, ~3-4x on CPU); PF and LU are marginal on CPU/GPU because\n"
      "the kernels are memory-bound; LU matters most on the FPGA.\n");
  return 0;
}
