// Table 8 — "Accuracy results of Enhancement AI in DDnet": MSE and
// MS-SSIM between the full-dose target Y and (a) the low-dose input X,
// (b) the DDnet-enhanced f(X), averaged over a held-out test set of
// synthetic low-dose pairs generated with the paper's §3.1.2 physics
// chain (Siddon + Beer/Poisson @ 1e6 photons + FBP).
#include <cstdio>

#include "bench_common.h"
#include "pipeline/enhancement_ai.h"

using namespace ccovid;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  const index_t px = args.paper_scale ? 512 : args.quick ? 32 : 64;
  const index_t train_n = args.paper_scale ? 2816 : args.quick ? 6 : 48;
  const int epochs = args.paper_scale ? 50 : args.quick ? 4 : 25;

  bench::print_header("Table 8: Enhancement AI accuracy (MSE / MS-SSIM)");
  std::printf(
      "%lld training pairs at %lldx%lld, %d epochs, composite loss "
      "MSE + 0.1*(1 - MS-SSIM), Adam lr 1e-4-scaled, x0.8/epoch\n\n",
      (long long)train_n, (long long)px, (long long)px, epochs);

  Rng rng(2021);
  data::EnhancementDatasetConfig dcfg;
  dcfg.image_px = px;
  dcfg.num_train = train_n;
  dcfg.num_val = std::max<index_t>(2, train_n / 8);
  dcfg.num_test = std::max<index_t>(4, train_n / 6);
  // The paper's b = 1e6 photons refers to 512-pixel resolution; at
  // reduced resolution the per-ray path intersects fewer, larger pixels,
  // so we lower the dose to keep a comparable noise level in the image.
  dcfg.lowdose.photons_per_ray = args.paper_scale ? 1e6 : 5e4;

  const data::EnhancementDataset ds =
      data::make_enhancement_dataset(dcfg, rng);

  nn::seed_init_rng(7);
  nn::DDnetConfig net_cfg = nn::DDnetConfig::paper();
  if (!args.paper_scale) {
    net_cfg.base_channels = 8;
    net_cfg.growth = 8;
    net_cfg.levels = 2;
    net_cfg.dense_layers = 2;
  }
  pipeline::EnhancementAI ai(net_cfg);
  pipeline::EnhancementTrainConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.lr = args.paper_scale ? 1e-4 : 2e-3;
  tcfg.msssim_scales = args.paper_scale ? 5 : (px >= 44 ? 2 : 1);
  ai.train(ds, tcfg, rng);

  const pipeline::EnhancementEval eval = ai.evaluate(ds.test);

  std::printf("%-10s %-12s %-12s | %-12s %-12s\n", "", "MSE (ours)",
              "MS-SSIM", "MSE (paper)", "MS-SSIM");
  bench::print_rule(66);
  std::printf("%-10s %-12.5f %10.1f%% | %-12s %10s\n", "Y - X",
              eval.mse_low, 100.0 * eval.msssim_low, "0.00715", "96.2%");
  std::printf("%-10s %-12.5f %10.1f%% | %-12s %10s\n", "Y - f(X)",
              eval.mse_enhanced, 100.0 * eval.msssim_enhanced, "0.00091",
              "98.7%");
  bench::print_rule(66);
  std::printf(
      "MSE reduction: %.1fx (paper: 7.9x)   MS-SSIM gain: +%.1f pts "
      "(paper: +2.5)\n",
      eval.mse_low / std::max(1e-12, eval.mse_enhanced),
      100.0 * (eval.msssim_enhanced - eval.msssim_low));
  std::printf(
      "Expected shape: enhancement cuts MSE by several-fold and lifts "
      "MS-SSIM toward 1.\n");
  return 0;
}
