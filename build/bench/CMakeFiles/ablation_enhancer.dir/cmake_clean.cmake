file(REMOVE_RECURSE
  "CMakeFiles/ablation_enhancer.dir/ablation_enhancer.cpp.o"
  "CMakeFiles/ablation_enhancer.dir/ablation_enhancer.cpp.o.d"
  "ablation_enhancer"
  "ablation_enhancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_enhancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
