# Empty dependencies file for ablation_enhancer.
# This may be replaced when dependencies are built.
