file(REMOVE_RECURSE
  "CMakeFiles/ablation_reconstruction.dir/ablation_reconstruction.cpp.o"
  "CMakeFiles/ablation_reconstruction.dir/ablation_reconstruction.cpp.o.d"
  "ablation_reconstruction"
  "ablation_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
