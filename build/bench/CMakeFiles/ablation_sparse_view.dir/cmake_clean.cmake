file(REMOVE_RECURSE
  "CMakeFiles/ablation_sparse_view.dir/ablation_sparse_view.cpp.o"
  "CMakeFiles/ablation_sparse_view.dir/ablation_sparse_view.cpp.o.d"
  "ablation_sparse_view"
  "ablation_sparse_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sparse_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
