# Empty compiler generated dependencies file for ablation_sparse_view.
# This may be replaced when dependencies are built.
