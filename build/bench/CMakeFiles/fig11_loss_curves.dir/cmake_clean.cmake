file(REMOVE_RECURSE
  "CMakeFiles/fig11_loss_curves.dir/fig11_loss_curves.cpp.o"
  "CMakeFiles/fig11_loss_curves.dir/fig11_loss_curves.cpp.o.d"
  "fig11_loss_curves"
  "fig11_loss_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_loss_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
