# Empty dependencies file for fig11_loss_curves.
# This may be replaced when dependencies are built.
