file(REMOVE_RECURSE
  "CMakeFiles/fig12_enhancement_visual.dir/fig12_enhancement_visual.cpp.o"
  "CMakeFiles/fig12_enhancement_visual.dir/fig12_enhancement_visual.cpp.o.d"
  "fig12_enhancement_visual"
  "fig12_enhancement_visual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_enhancement_visual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
