# Empty compiler generated dependencies file for fig12_enhancement_visual.
# This may be replaced when dependencies are built.
