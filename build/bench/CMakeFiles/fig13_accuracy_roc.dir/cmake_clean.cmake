file(REMOVE_RECURSE
  "CMakeFiles/fig13_accuracy_roc.dir/fig13_accuracy_roc.cpp.o"
  "CMakeFiles/fig13_accuracy_roc.dir/fig13_accuracy_roc.cpp.o.d"
  "fig13_accuracy_roc"
  "fig13_accuracy_roc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_accuracy_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
