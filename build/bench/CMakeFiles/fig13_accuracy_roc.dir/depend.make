# Empty dependencies file for fig13_accuracy_roc.
# This may be replaced when dependencies are built.
