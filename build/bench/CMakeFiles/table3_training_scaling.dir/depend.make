# Empty dependencies file for table3_training_scaling.
# This may be replaced when dependencies are built.
