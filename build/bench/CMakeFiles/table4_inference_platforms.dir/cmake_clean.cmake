file(REMOVE_RECURSE
  "CMakeFiles/table4_inference_platforms.dir/table4_inference_platforms.cpp.o"
  "CMakeFiles/table4_inference_platforms.dir/table4_inference_platforms.cpp.o.d"
  "table4_inference_platforms"
  "table4_inference_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_inference_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
