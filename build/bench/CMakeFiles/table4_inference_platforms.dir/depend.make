# Empty dependencies file for table4_inference_platforms.
# This may be replaced when dependencies are built.
