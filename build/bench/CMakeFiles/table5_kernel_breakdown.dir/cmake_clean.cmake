file(REMOVE_RECURSE
  "CMakeFiles/table5_kernel_breakdown.dir/table5_kernel_breakdown.cpp.o"
  "CMakeFiles/table5_kernel_breakdown.dir/table5_kernel_breakdown.cpp.o.d"
  "table5_kernel_breakdown"
  "table5_kernel_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_kernel_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
