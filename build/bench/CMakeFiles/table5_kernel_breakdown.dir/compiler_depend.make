# Empty compiler generated dependencies file for table5_kernel_breakdown.
# This may be replaced when dependencies are built.
