file(REMOVE_RECURSE
  "CMakeFiles/table6_op_counts.dir/table6_op_counts.cpp.o"
  "CMakeFiles/table6_op_counts.dir/table6_op_counts.cpp.o.d"
  "table6_op_counts"
  "table6_op_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_op_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
