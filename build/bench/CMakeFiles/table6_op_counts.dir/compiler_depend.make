# Empty compiler generated dependencies file for table6_op_counts.
# This may be replaced when dependencies are built.
