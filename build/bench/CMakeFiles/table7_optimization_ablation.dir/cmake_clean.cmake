file(REMOVE_RECURSE
  "CMakeFiles/table7_optimization_ablation.dir/table7_optimization_ablation.cpp.o"
  "CMakeFiles/table7_optimization_ablation.dir/table7_optimization_ablation.cpp.o.d"
  "table7_optimization_ablation"
  "table7_optimization_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_optimization_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
