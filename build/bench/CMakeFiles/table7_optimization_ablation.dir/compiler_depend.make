# Empty compiler generated dependencies file for table7_optimization_ablation.
# This may be replaced when dependencies are built.
