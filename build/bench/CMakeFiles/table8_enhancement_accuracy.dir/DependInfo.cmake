
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table8_enhancement_accuracy.cpp" "bench/CMakeFiles/table8_enhancement_accuracy.dir/table8_enhancement_accuracy.cpp.o" "gcc" "bench/CMakeFiles/table8_enhancement_accuracy.dir/table8_enhancement_accuracy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/ccovid_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ccovid_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/hetero/CMakeFiles/ccovid_hetero.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ccovid_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ccovid_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/ccovid_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/ct/CMakeFiles/ccovid_ct.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ccovid_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/ccovid_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ccovid_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
