file(REMOVE_RECURSE
  "CMakeFiles/table8_enhancement_accuracy.dir/table8_enhancement_accuracy.cpp.o"
  "CMakeFiles/table8_enhancement_accuracy.dir/table8_enhancement_accuracy.cpp.o.d"
  "table8_enhancement_accuracy"
  "table8_enhancement_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_enhancement_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
