# Empty compiler generated dependencies file for table8_enhancement_accuracy.
# This may be replaced when dependencies are built.
