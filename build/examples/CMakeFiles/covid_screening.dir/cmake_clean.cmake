file(REMOVE_RECURSE
  "CMakeFiles/covid_screening.dir/covid_screening.cpp.o"
  "CMakeFiles/covid_screening.dir/covid_screening.cpp.o.d"
  "covid_screening"
  "covid_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covid_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
