# Empty dependencies file for covid_screening.
# This may be replaced when dependencies are built.
