file(REMOVE_RECURSE
  "CMakeFiles/hetero_inference.dir/hetero_inference.cpp.o"
  "CMakeFiles/hetero_inference.dir/hetero_inference.cpp.o.d"
  "hetero_inference"
  "hetero_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
