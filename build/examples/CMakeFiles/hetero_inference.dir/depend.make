# Empty dependencies file for hetero_inference.
# This may be replaced when dependencies are built.
