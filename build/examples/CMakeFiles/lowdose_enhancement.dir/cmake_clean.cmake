file(REMOVE_RECURSE
  "CMakeFiles/lowdose_enhancement.dir/lowdose_enhancement.cpp.o"
  "CMakeFiles/lowdose_enhancement.dir/lowdose_enhancement.cpp.o.d"
  "lowdose_enhancement"
  "lowdose_enhancement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowdose_enhancement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
