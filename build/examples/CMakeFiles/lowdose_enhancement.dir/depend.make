# Empty dependencies file for lowdose_enhancement.
# This may be replaced when dependencies are built.
