file(REMOVE_RECURSE
  "CMakeFiles/ccovid_autograd.dir/functions.cpp.o"
  "CMakeFiles/ccovid_autograd.dir/functions.cpp.o.d"
  "CMakeFiles/ccovid_autograd.dir/gradcheck.cpp.o"
  "CMakeFiles/ccovid_autograd.dir/gradcheck.cpp.o.d"
  "CMakeFiles/ccovid_autograd.dir/losses.cpp.o"
  "CMakeFiles/ccovid_autograd.dir/losses.cpp.o.d"
  "CMakeFiles/ccovid_autograd.dir/optim.cpp.o"
  "CMakeFiles/ccovid_autograd.dir/optim.cpp.o.d"
  "CMakeFiles/ccovid_autograd.dir/variable.cpp.o"
  "CMakeFiles/ccovid_autograd.dir/variable.cpp.o.d"
  "libccovid_autograd.a"
  "libccovid_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccovid_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
