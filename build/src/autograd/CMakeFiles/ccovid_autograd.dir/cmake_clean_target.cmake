file(REMOVE_RECURSE
  "libccovid_autograd.a"
)
