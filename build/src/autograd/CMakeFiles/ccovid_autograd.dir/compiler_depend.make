# Empty compiler generated dependencies file for ccovid_autograd.
# This may be replaced when dependencies are built.
