file(REMOVE_RECURSE
  "CMakeFiles/ccovid_core.dir/counters.cpp.o"
  "CMakeFiles/ccovid_core.dir/counters.cpp.o.d"
  "CMakeFiles/ccovid_core.dir/image_io.cpp.o"
  "CMakeFiles/ccovid_core.dir/image_io.cpp.o.d"
  "CMakeFiles/ccovid_core.dir/parallel.cpp.o"
  "CMakeFiles/ccovid_core.dir/parallel.cpp.o.d"
  "CMakeFiles/ccovid_core.dir/random.cpp.o"
  "CMakeFiles/ccovid_core.dir/random.cpp.o.d"
  "CMakeFiles/ccovid_core.dir/serialize.cpp.o"
  "CMakeFiles/ccovid_core.dir/serialize.cpp.o.d"
  "CMakeFiles/ccovid_core.dir/shape.cpp.o"
  "CMakeFiles/ccovid_core.dir/shape.cpp.o.d"
  "CMakeFiles/ccovid_core.dir/tensor.cpp.o"
  "CMakeFiles/ccovid_core.dir/tensor.cpp.o.d"
  "libccovid_core.a"
  "libccovid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccovid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
