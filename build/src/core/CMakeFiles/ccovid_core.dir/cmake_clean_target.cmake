file(REMOVE_RECURSE
  "libccovid_core.a"
)
