# Empty compiler generated dependencies file for ccovid_core.
# This may be replaced when dependencies are built.
