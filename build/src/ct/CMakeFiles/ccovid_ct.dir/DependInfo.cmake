
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ct/fbp.cpp" "src/ct/CMakeFiles/ccovid_ct.dir/fbp.cpp.o" "gcc" "src/ct/CMakeFiles/ccovid_ct.dir/fbp.cpp.o.d"
  "/root/repo/src/ct/fft.cpp" "src/ct/CMakeFiles/ccovid_ct.dir/fft.cpp.o" "gcc" "src/ct/CMakeFiles/ccovid_ct.dir/fft.cpp.o.d"
  "/root/repo/src/ct/hu.cpp" "src/ct/CMakeFiles/ccovid_ct.dir/hu.cpp.o" "gcc" "src/ct/CMakeFiles/ccovid_ct.dir/hu.cpp.o.d"
  "/root/repo/src/ct/iterative.cpp" "src/ct/CMakeFiles/ccovid_ct.dir/iterative.cpp.o" "gcc" "src/ct/CMakeFiles/ccovid_ct.dir/iterative.cpp.o.d"
  "/root/repo/src/ct/noise.cpp" "src/ct/CMakeFiles/ccovid_ct.dir/noise.cpp.o" "gcc" "src/ct/CMakeFiles/ccovid_ct.dir/noise.cpp.o.d"
  "/root/repo/src/ct/siddon.cpp" "src/ct/CMakeFiles/ccovid_ct.dir/siddon.cpp.o" "gcc" "src/ct/CMakeFiles/ccovid_ct.dir/siddon.cpp.o.d"
  "/root/repo/src/ct/sparse_view.cpp" "src/ct/CMakeFiles/ccovid_ct.dir/sparse_view.cpp.o" "gcc" "src/ct/CMakeFiles/ccovid_ct.dir/sparse_view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ccovid_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
