file(REMOVE_RECURSE
  "CMakeFiles/ccovid_ct.dir/fbp.cpp.o"
  "CMakeFiles/ccovid_ct.dir/fbp.cpp.o.d"
  "CMakeFiles/ccovid_ct.dir/fft.cpp.o"
  "CMakeFiles/ccovid_ct.dir/fft.cpp.o.d"
  "CMakeFiles/ccovid_ct.dir/hu.cpp.o"
  "CMakeFiles/ccovid_ct.dir/hu.cpp.o.d"
  "CMakeFiles/ccovid_ct.dir/iterative.cpp.o"
  "CMakeFiles/ccovid_ct.dir/iterative.cpp.o.d"
  "CMakeFiles/ccovid_ct.dir/noise.cpp.o"
  "CMakeFiles/ccovid_ct.dir/noise.cpp.o.d"
  "CMakeFiles/ccovid_ct.dir/siddon.cpp.o"
  "CMakeFiles/ccovid_ct.dir/siddon.cpp.o.d"
  "CMakeFiles/ccovid_ct.dir/sparse_view.cpp.o"
  "CMakeFiles/ccovid_ct.dir/sparse_view.cpp.o.d"
  "libccovid_ct.a"
  "libccovid_ct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccovid_ct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
