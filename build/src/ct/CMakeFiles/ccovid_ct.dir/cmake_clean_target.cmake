file(REMOVE_RECURSE
  "libccovid_ct.a"
)
