# Empty dependencies file for ccovid_ct.
# This may be replaced when dependencies are built.
