
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/augment.cpp" "src/data/CMakeFiles/ccovid_data.dir/augment.cpp.o" "gcc" "src/data/CMakeFiles/ccovid_data.dir/augment.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/ccovid_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/ccovid_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/lowdose.cpp" "src/data/CMakeFiles/ccovid_data.dir/lowdose.cpp.o" "gcc" "src/data/CMakeFiles/ccovid_data.dir/lowdose.cpp.o.d"
  "/root/repo/src/data/phantom.cpp" "src/data/CMakeFiles/ccovid_data.dir/phantom.cpp.o" "gcc" "src/data/CMakeFiles/ccovid_data.dir/phantom.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ccovid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ct/CMakeFiles/ccovid_ct.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
