file(REMOVE_RECURSE
  "CMakeFiles/ccovid_data.dir/augment.cpp.o"
  "CMakeFiles/ccovid_data.dir/augment.cpp.o.d"
  "CMakeFiles/ccovid_data.dir/dataset.cpp.o"
  "CMakeFiles/ccovid_data.dir/dataset.cpp.o.d"
  "CMakeFiles/ccovid_data.dir/lowdose.cpp.o"
  "CMakeFiles/ccovid_data.dir/lowdose.cpp.o.d"
  "CMakeFiles/ccovid_data.dir/phantom.cpp.o"
  "CMakeFiles/ccovid_data.dir/phantom.cpp.o.d"
  "libccovid_data.a"
  "libccovid_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccovid_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
