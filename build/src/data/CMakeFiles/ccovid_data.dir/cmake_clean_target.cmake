file(REMOVE_RECURSE
  "libccovid_data.a"
)
