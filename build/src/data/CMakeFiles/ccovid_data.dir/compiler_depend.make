# Empty compiler generated dependencies file for ccovid_data.
# This may be replaced when dependencies are built.
