file(REMOVE_RECURSE
  "CMakeFiles/ccovid_dist.dir/comm.cpp.o"
  "CMakeFiles/ccovid_dist.dir/comm.cpp.o.d"
  "CMakeFiles/ccovid_dist.dir/ddp.cpp.o"
  "CMakeFiles/ccovid_dist.dir/ddp.cpp.o.d"
  "libccovid_dist.a"
  "libccovid_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccovid_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
