file(REMOVE_RECURSE
  "libccovid_dist.a"
)
