# Empty compiler generated dependencies file for ccovid_dist.
# This may be replaced when dependencies are built.
