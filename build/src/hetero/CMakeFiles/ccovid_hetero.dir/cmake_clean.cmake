file(REMOVE_RECURSE
  "CMakeFiles/ccovid_hetero.dir/ddnet_counts.cpp.o"
  "CMakeFiles/ccovid_hetero.dir/ddnet_counts.cpp.o.d"
  "CMakeFiles/ccovid_hetero.dir/device_model.cpp.o"
  "CMakeFiles/ccovid_hetero.dir/device_model.cpp.o.d"
  "libccovid_hetero.a"
  "libccovid_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccovid_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
