file(REMOVE_RECURSE
  "libccovid_hetero.a"
)
