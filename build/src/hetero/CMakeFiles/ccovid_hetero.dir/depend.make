# Empty dependencies file for ccovid_hetero.
# This may be replaced when dependencies are built.
