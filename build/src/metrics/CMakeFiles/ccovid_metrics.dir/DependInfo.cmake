
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/classification.cpp" "src/metrics/CMakeFiles/ccovid_metrics.dir/classification.cpp.o" "gcc" "src/metrics/CMakeFiles/ccovid_metrics.dir/classification.cpp.o.d"
  "/root/repo/src/metrics/image_quality.cpp" "src/metrics/CMakeFiles/ccovid_metrics.dir/image_quality.cpp.o" "gcc" "src/metrics/CMakeFiles/ccovid_metrics.dir/image_quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ccovid_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
