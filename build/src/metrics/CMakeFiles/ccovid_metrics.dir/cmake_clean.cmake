file(REMOVE_RECURSE
  "CMakeFiles/ccovid_metrics.dir/classification.cpp.o"
  "CMakeFiles/ccovid_metrics.dir/classification.cpp.o.d"
  "CMakeFiles/ccovid_metrics.dir/image_quality.cpp.o"
  "CMakeFiles/ccovid_metrics.dir/image_quality.cpp.o.d"
  "libccovid_metrics.a"
  "libccovid_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccovid_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
