file(REMOVE_RECURSE
  "libccovid_metrics.a"
)
