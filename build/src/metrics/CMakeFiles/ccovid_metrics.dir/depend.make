# Empty dependencies file for ccovid_metrics.
# This may be replaced when dependencies are built.
