
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/ahnet.cpp" "src/nn/CMakeFiles/ccovid_nn.dir/ahnet.cpp.o" "gcc" "src/nn/CMakeFiles/ccovid_nn.dir/ahnet.cpp.o.d"
  "/root/repo/src/nn/ddnet.cpp" "src/nn/CMakeFiles/ccovid_nn.dir/ddnet.cpp.o" "gcc" "src/nn/CMakeFiles/ccovid_nn.dir/ddnet.cpp.o.d"
  "/root/repo/src/nn/dense_block.cpp" "src/nn/CMakeFiles/ccovid_nn.dir/dense_block.cpp.o" "gcc" "src/nn/CMakeFiles/ccovid_nn.dir/dense_block.cpp.o.d"
  "/root/repo/src/nn/densenet3d.cpp" "src/nn/CMakeFiles/ccovid_nn.dir/densenet3d.cpp.o" "gcc" "src/nn/CMakeFiles/ccovid_nn.dir/densenet3d.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/ccovid_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/ccovid_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/ccovid_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/ccovid_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/unet.cpp" "src/nn/CMakeFiles/ccovid_nn.dir/unet.cpp.o" "gcc" "src/nn/CMakeFiles/ccovid_nn.dir/unet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/ccovid_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/ccovid_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ccovid_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ccovid_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
