file(REMOVE_RECURSE
  "CMakeFiles/ccovid_nn.dir/ahnet.cpp.o"
  "CMakeFiles/ccovid_nn.dir/ahnet.cpp.o.d"
  "CMakeFiles/ccovid_nn.dir/ddnet.cpp.o"
  "CMakeFiles/ccovid_nn.dir/ddnet.cpp.o.d"
  "CMakeFiles/ccovid_nn.dir/dense_block.cpp.o"
  "CMakeFiles/ccovid_nn.dir/dense_block.cpp.o.d"
  "CMakeFiles/ccovid_nn.dir/densenet3d.cpp.o"
  "CMakeFiles/ccovid_nn.dir/densenet3d.cpp.o.d"
  "CMakeFiles/ccovid_nn.dir/layers.cpp.o"
  "CMakeFiles/ccovid_nn.dir/layers.cpp.o.d"
  "CMakeFiles/ccovid_nn.dir/module.cpp.o"
  "CMakeFiles/ccovid_nn.dir/module.cpp.o.d"
  "CMakeFiles/ccovid_nn.dir/unet.cpp.o"
  "CMakeFiles/ccovid_nn.dir/unet.cpp.o.d"
  "libccovid_nn.a"
  "libccovid_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccovid_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
