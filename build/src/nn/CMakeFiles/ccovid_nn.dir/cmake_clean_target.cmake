file(REMOVE_RECURSE
  "libccovid_nn.a"
)
