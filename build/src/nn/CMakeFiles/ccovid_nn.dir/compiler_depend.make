# Empty compiler generated dependencies file for ccovid_nn.
# This may be replaced when dependencies are built.
