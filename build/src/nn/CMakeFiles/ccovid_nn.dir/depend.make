# Empty dependencies file for ccovid_nn.
# This may be replaced when dependencies are built.
