
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/activations.cpp" "src/ops/CMakeFiles/ccovid_ops.dir/activations.cpp.o" "gcc" "src/ops/CMakeFiles/ccovid_ops.dir/activations.cpp.o.d"
  "/root/repo/src/ops/batchnorm.cpp" "src/ops/CMakeFiles/ccovid_ops.dir/batchnorm.cpp.o" "gcc" "src/ops/CMakeFiles/ccovid_ops.dir/batchnorm.cpp.o.d"
  "/root/repo/src/ops/concat.cpp" "src/ops/CMakeFiles/ccovid_ops.dir/concat.cpp.o" "gcc" "src/ops/CMakeFiles/ccovid_ops.dir/concat.cpp.o.d"
  "/root/repo/src/ops/conv2d.cpp" "src/ops/CMakeFiles/ccovid_ops.dir/conv2d.cpp.o" "gcc" "src/ops/CMakeFiles/ccovid_ops.dir/conv2d.cpp.o.d"
  "/root/repo/src/ops/conv3d.cpp" "src/ops/CMakeFiles/ccovid_ops.dir/conv3d.cpp.o" "gcc" "src/ops/CMakeFiles/ccovid_ops.dir/conv3d.cpp.o.d"
  "/root/repo/src/ops/deconv2d.cpp" "src/ops/CMakeFiles/ccovid_ops.dir/deconv2d.cpp.o" "gcc" "src/ops/CMakeFiles/ccovid_ops.dir/deconv2d.cpp.o.d"
  "/root/repo/src/ops/gemm.cpp" "src/ops/CMakeFiles/ccovid_ops.dir/gemm.cpp.o" "gcc" "src/ops/CMakeFiles/ccovid_ops.dir/gemm.cpp.o.d"
  "/root/repo/src/ops/instrumented.cpp" "src/ops/CMakeFiles/ccovid_ops.dir/instrumented.cpp.o" "gcc" "src/ops/CMakeFiles/ccovid_ops.dir/instrumented.cpp.o.d"
  "/root/repo/src/ops/linear.cpp" "src/ops/CMakeFiles/ccovid_ops.dir/linear.cpp.o" "gcc" "src/ops/CMakeFiles/ccovid_ops.dir/linear.cpp.o.d"
  "/root/repo/src/ops/pool2d.cpp" "src/ops/CMakeFiles/ccovid_ops.dir/pool2d.cpp.o" "gcc" "src/ops/CMakeFiles/ccovid_ops.dir/pool2d.cpp.o.d"
  "/root/repo/src/ops/pool3d.cpp" "src/ops/CMakeFiles/ccovid_ops.dir/pool3d.cpp.o" "gcc" "src/ops/CMakeFiles/ccovid_ops.dir/pool3d.cpp.o.d"
  "/root/repo/src/ops/unpool2d.cpp" "src/ops/CMakeFiles/ccovid_ops.dir/unpool2d.cpp.o" "gcc" "src/ops/CMakeFiles/ccovid_ops.dir/unpool2d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ccovid_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
