file(REMOVE_RECURSE
  "CMakeFiles/ccovid_ops.dir/activations.cpp.o"
  "CMakeFiles/ccovid_ops.dir/activations.cpp.o.d"
  "CMakeFiles/ccovid_ops.dir/batchnorm.cpp.o"
  "CMakeFiles/ccovid_ops.dir/batchnorm.cpp.o.d"
  "CMakeFiles/ccovid_ops.dir/concat.cpp.o"
  "CMakeFiles/ccovid_ops.dir/concat.cpp.o.d"
  "CMakeFiles/ccovid_ops.dir/conv2d.cpp.o"
  "CMakeFiles/ccovid_ops.dir/conv2d.cpp.o.d"
  "CMakeFiles/ccovid_ops.dir/conv3d.cpp.o"
  "CMakeFiles/ccovid_ops.dir/conv3d.cpp.o.d"
  "CMakeFiles/ccovid_ops.dir/deconv2d.cpp.o"
  "CMakeFiles/ccovid_ops.dir/deconv2d.cpp.o.d"
  "CMakeFiles/ccovid_ops.dir/gemm.cpp.o"
  "CMakeFiles/ccovid_ops.dir/gemm.cpp.o.d"
  "CMakeFiles/ccovid_ops.dir/instrumented.cpp.o"
  "CMakeFiles/ccovid_ops.dir/instrumented.cpp.o.d"
  "CMakeFiles/ccovid_ops.dir/linear.cpp.o"
  "CMakeFiles/ccovid_ops.dir/linear.cpp.o.d"
  "CMakeFiles/ccovid_ops.dir/pool2d.cpp.o"
  "CMakeFiles/ccovid_ops.dir/pool2d.cpp.o.d"
  "CMakeFiles/ccovid_ops.dir/pool3d.cpp.o"
  "CMakeFiles/ccovid_ops.dir/pool3d.cpp.o.d"
  "CMakeFiles/ccovid_ops.dir/unpool2d.cpp.o"
  "CMakeFiles/ccovid_ops.dir/unpool2d.cpp.o.d"
  "libccovid_ops.a"
  "libccovid_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccovid_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
