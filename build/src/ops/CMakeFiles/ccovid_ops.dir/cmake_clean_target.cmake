file(REMOVE_RECURSE
  "libccovid_ops.a"
)
