# Empty dependencies file for ccovid_ops.
# This may be replaced when dependencies are built.
