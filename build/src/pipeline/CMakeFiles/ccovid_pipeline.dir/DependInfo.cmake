
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/classification_ai.cpp" "src/pipeline/CMakeFiles/ccovid_pipeline.dir/classification_ai.cpp.o" "gcc" "src/pipeline/CMakeFiles/ccovid_pipeline.dir/classification_ai.cpp.o.d"
  "/root/repo/src/pipeline/enhancement_ai.cpp" "src/pipeline/CMakeFiles/ccovid_pipeline.dir/enhancement_ai.cpp.o" "gcc" "src/pipeline/CMakeFiles/ccovid_pipeline.dir/enhancement_ai.cpp.o.d"
  "/root/repo/src/pipeline/framework.cpp" "src/pipeline/CMakeFiles/ccovid_pipeline.dir/framework.cpp.o" "gcc" "src/pipeline/CMakeFiles/ccovid_pipeline.dir/framework.cpp.o.d"
  "/root/repo/src/pipeline/segmentation_ai.cpp" "src/pipeline/CMakeFiles/ccovid_pipeline.dir/segmentation_ai.cpp.o" "gcc" "src/pipeline/CMakeFiles/ccovid_pipeline.dir/segmentation_ai.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/ccovid_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ccovid_data.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ccovid_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/ct/CMakeFiles/ccovid_ct.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/ccovid_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/ccovid_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ccovid_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
