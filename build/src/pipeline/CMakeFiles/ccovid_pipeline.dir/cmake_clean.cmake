file(REMOVE_RECURSE
  "CMakeFiles/ccovid_pipeline.dir/classification_ai.cpp.o"
  "CMakeFiles/ccovid_pipeline.dir/classification_ai.cpp.o.d"
  "CMakeFiles/ccovid_pipeline.dir/enhancement_ai.cpp.o"
  "CMakeFiles/ccovid_pipeline.dir/enhancement_ai.cpp.o.d"
  "CMakeFiles/ccovid_pipeline.dir/framework.cpp.o"
  "CMakeFiles/ccovid_pipeline.dir/framework.cpp.o.d"
  "CMakeFiles/ccovid_pipeline.dir/segmentation_ai.cpp.o"
  "CMakeFiles/ccovid_pipeline.dir/segmentation_ai.cpp.o.d"
  "libccovid_pipeline.a"
  "libccovid_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccovid_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
