file(REMOVE_RECURSE
  "libccovid_pipeline.a"
)
