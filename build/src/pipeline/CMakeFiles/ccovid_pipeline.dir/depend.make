# Empty dependencies file for ccovid_pipeline.
# This may be replaced when dependencies are built.
