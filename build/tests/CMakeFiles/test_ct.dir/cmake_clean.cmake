file(REMOVE_RECURSE
  "CMakeFiles/test_ct.dir/test_ct.cpp.o"
  "CMakeFiles/test_ct.dir/test_ct.cpp.o.d"
  "test_ct"
  "test_ct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
