# Empty compiler generated dependencies file for test_losses.
# This may be replaced when dependencies are built.
