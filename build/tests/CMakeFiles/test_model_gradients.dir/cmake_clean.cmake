file(REMOVE_RECURSE
  "CMakeFiles/test_model_gradients.dir/test_model_gradients.cpp.o"
  "CMakeFiles/test_model_gradients.dir/test_model_gradients.cpp.o.d"
  "test_model_gradients"
  "test_model_gradients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_gradients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
