# Empty compiler generated dependencies file for test_model_gradients.
# This may be replaced when dependencies are built.
