file(REMOVE_RECURSE
  "CMakeFiles/test_ops_deconv.dir/test_ops_deconv.cpp.o"
  "CMakeFiles/test_ops_deconv.dir/test_ops_deconv.cpp.o.d"
  "test_ops_deconv"
  "test_ops_deconv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops_deconv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
