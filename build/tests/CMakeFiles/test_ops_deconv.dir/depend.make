# Empty dependencies file for test_ops_deconv.
# This may be replaced when dependencies are built.
