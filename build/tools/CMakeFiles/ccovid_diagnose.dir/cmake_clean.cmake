file(REMOVE_RECURSE
  "CMakeFiles/ccovid_diagnose.dir/ccovid_diagnose.cpp.o"
  "CMakeFiles/ccovid_diagnose.dir/ccovid_diagnose.cpp.o.d"
  "ccovid_diagnose"
  "ccovid_diagnose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccovid_diagnose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
