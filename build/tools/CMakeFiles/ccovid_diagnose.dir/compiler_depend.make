# Empty compiler generated dependencies file for ccovid_diagnose.
# This may be replaced when dependencies are built.
