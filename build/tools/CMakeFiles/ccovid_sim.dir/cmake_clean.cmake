file(REMOVE_RECURSE
  "CMakeFiles/ccovid_sim.dir/ccovid_sim.cpp.o"
  "CMakeFiles/ccovid_sim.dir/ccovid_sim.cpp.o.d"
  "ccovid_sim"
  "ccovid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccovid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
