# Empty dependencies file for ccovid_sim.
# This may be replaced when dependencies are built.
