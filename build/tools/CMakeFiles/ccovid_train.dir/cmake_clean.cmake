file(REMOVE_RECURSE
  "CMakeFiles/ccovid_train.dir/ccovid_train.cpp.o"
  "CMakeFiles/ccovid_train.dir/ccovid_train.cpp.o.d"
  "ccovid_train"
  "ccovid_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccovid_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
