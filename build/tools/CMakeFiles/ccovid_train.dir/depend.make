# Empty dependencies file for ccovid_train.
# This may be replaced when dependencies are built.
