// COVID-19 screening clinic: the full Fig. 3 workflow on a synthetic
// patient cohort — train the three AI stages, then walk incoming
// "patients" through data preparation, enhancement, lung segmentation
// and classification, printing a per-patient report like a reading-room
// worklist.
#include <cstdio>

#include "ct/hu.h"
#include "metrics/classification.h"
#include "pipeline/framework.h"

using namespace ccovid;

int main() {
  std::printf("ComputeCOVID19+ screening clinic (synthetic cohort)\n");
  std::printf("===================================================\n");

  Rng rng(42);
  const index_t px = 32, depth = 8;

  // --- cohorts ---
  data::ClassificationDatasetConfig ccfg;
  ccfg.depth = depth;
  ccfg.image_px = px;
  ccfg.num_train = 32;
  ccfg.num_test = 10;
  ccfg.positive_fraction = 0.4;
  // Keep GGOs at a clinically proportionate pixel footprint at this
  // reduced resolution (see data::sample_covid_lesions).
  ccfg.min_lesion_radius_frac = 4.0 / double(px);
  std::printf("generating %lld training + %lld incoming patients...\n",
              (long long)ccfg.num_train, (long long)ccfg.num_test);
  const data::ClassificationDataset cohort =
      data::make_classification_dataset(ccfg, rng);

  // --- Enhancement AI ---
  data::EnhancementDatasetConfig ecfg;
  ecfg.image_px = px;
  ecfg.num_train = 10;
  ecfg.num_val = 2;
  ecfg.num_test = 0;
  ecfg.lowdose.photons_per_ray = 5e4;
  const data::EnhancementDataset eds =
      data::make_enhancement_dataset(ecfg, rng);
  nn::seed_init_rng(42);
  nn::DDnetConfig ncfg = nn::DDnetConfig::tiny();
  ncfg.base_channels = 8;
  ncfg.growth = 8;
  auto enh = std::make_shared<pipeline::EnhancementAI>(ncfg);
  pipeline::EnhancementTrainConfig etc;
  etc.epochs = 8;
  etc.lr = 2e-3;
  etc.msssim_scales = 1;
  std::printf("training Enhancement AI (DDnet)...\n");
  enh->train(eds, etc, rng);

  // --- Segmentation AI ---
  auto seg = std::make_shared<pipeline::SegmentationAI>();
  pipeline::SegmentationTrainConfig scfg;
  scfg.epochs = 8;
  scfg.lr = 5e-3;
  std::printf("training Segmentation AI (AH-Net)...\n");
  seg->train(cohort.train, scfg, rng);
  const auto seg_eval = seg->evaluate(cohort.test);
  std::printf("  lung Dice on held-out volumes: %.3f\n", seg_eval.dice);

  // --- Classification AI ---
  std::vector<Tensor> train_vols;
  std::vector<int> train_labels;
  for (const auto& s : cohort.train) {
    train_vols.push_back(ct::normalize_hu(s.hu).mul(s.lung_mask));
    train_labels.push_back(s.label);
  }
  auto cls = std::make_shared<pipeline::ClassificationAI>();
  pipeline::ClassificationTrainConfig ctc;
  ctc.epochs = 20;
  ctc.lr = 1e-3;
  std::printf("training Classification AI (3-D DenseNet)...\n");
  cls->train(train_vols, train_labels, ctc, rng);

  // --- the clinic ---
  pipeline::ComputeCovid19Pipeline clinic(enh, seg, cls);

  // Calibrate the operating threshold on the training cohort, as the
  // paper does for Table 9 (their optimal threshold was 0.061 — far
  // from 0.5, because positives are the minority class).
  std::vector<Tensor> train_hu;
  std::vector<int> calib_labels;
  for (const auto& s : cohort.train) {
    train_hu.push_back(s.hu);
    calib_labels.push_back(s.label);
  }
  const std::vector<double> calib_scores =
      clinic.score_volumes(train_hu, /*use_enhancement=*/true);
  const double threshold =
      metrics::youden_optimal_threshold(calib_scores, calib_labels);
  std::printf("\ncalibrated operating threshold (Youden, train): %.3f\n",
              threshold);

  std::printf("\n%-10s %-14s %-12s %-10s %-8s\n", "patient",
              "P(COVID-19+)", "call", "truth", "correct");
  std::vector<double> scores;
  std::vector<int> labels;
  int correct = 0;
  for (std::size_t i = 0; i < cohort.test.size(); ++i) {
    const auto& patient = cohort.test[i];
    const pipeline::Diagnosis dx =
        clinic.diagnose(patient.hu, /*use_enhancement=*/true, threshold);
    const bool truth = patient.label == 1;
    const bool right = dx.positive == truth;
    correct += right ? 1 : 0;
    scores.push_back(dx.probability);
    labels.push_back(patient.label);
    std::printf("#%-9zu %-14.4f %-12s %-10s %-8s\n", i + 1,
                dx.probability, dx.positive ? "POSITIVE" : "negative",
                truth ? "POSITIVE" : "negative", right ? "yes" : "NO");
  }
  std::printf("\ncohort accuracy @ %.2f: %d/%zu   AUC: %.3f\n", threshold,
              correct, cohort.test.size(), metrics::auc(scores, labels));
  std::printf(
      "(At paper scale — 512x512x128 volumes, 305 training scans — the "
      "same pipeline reaches the paper's 91%% / 0.942 regime; see "
      "bench/fig13_accuracy_roc.)\n");
  return 0;
}
