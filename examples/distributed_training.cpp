// Distributed data-parallel training walkthrough (§4.1): trains the
// same DDnet on 1, 2 and 4 "nodes" (in-process replicas synchronized by
// the ring all-reduce), showing that the replicas stay bit-identical,
// how much gradient traffic each step moves, and what the interconnect
// model predicts for cluster wall time.
#include <cstdio>

#include "autograd/losses.h"
#include "dist/ddp.h"
#include "metrics/image_quality.h"
#include "nn/ddnet.h"
#include "pipeline/enhancement_ai.h"

using namespace ccovid;

int main() {
  std::printf("DistributedDataParallel training of Enhancement AI\n");
  std::printf("==================================================\n");

  Rng rng(5);
  data::EnhancementDatasetConfig dcfg;
  dcfg.image_px = 24;
  dcfg.num_train = 16;
  dcfg.num_val = 4;
  dcfg.num_test = 0;
  dcfg.lowdose.photons_per_ray = 5e4;
  const data::EnhancementDataset ds =
      data::make_enhancement_dataset(dcfg, rng);

  nn::DDnetConfig ncfg = nn::DDnetConfig::tiny();

  auto loss_fn = [&ds](nn::Module& model, int /*rank*/,
                       const std::vector<index_t>& samples) {
    auto& net = dynamic_cast<nn::DDnet&>(model);
    autograd::Var total;
    for (index_t s : samples) {
      const auto& pair = ds.train[s];
      autograd::Var x(pair.low.clone().reshape(
          {1, 1, pair.low.dim(0), pair.low.dim(1)}));
      autograd::Var loss = autograd::enhancement_loss(
          net.forward(x),
          pair.full.clone().reshape(
              {1, 1, pair.full.dim(0), pair.full.dim(1)}),
          0.1f, 11, 1);
      total = total.defined() ? autograd::add(total, loss) : loss;
    }
    return autograd::mul_scalar(total,
                                1.0f / static_cast<real_t>(samples.size()));
  };

  std::printf("%-7s %-12s %-12s %-16s %-12s\n", "nodes", "loss(last)",
              "val MS-SSIM", "grad MB/epoch", "model t/epoch");
  for (int nodes : {1, 2, 4}) {
    nn::seed_init_rng(5);  // identical init across runs
    dist::DdpConfig cfg;
    cfg.world_size = nodes;
    cfg.per_worker_batch = 1;
    cfg.lr = 2e-3;
    dist::DdpTrainer trainer(
        [&] { return std::make_shared<nn::DDnet>(ncfg); }, cfg);

    Rng erng(100);
    dist::EpochStats stats{};
    for (int e = 0; e < 6; ++e) {
      stats = trainer.train_epoch(dcfg.num_train, loss_fn, erng);
      trainer.decay_lr();
    }
    auto& net = dynamic_cast<nn::DDnet&>(trainer.model(0));
    net.set_training(false);
    double msssim = 0.0;
    for (const auto& pair : ds.val) {
      msssim += metrics::ms_ssim(pair.full, net.enhance(pair.low), 11,
                                 1.5, 1.0, 1);
    }
    msssim /= ds.val.size();
    std::printf("%-7d %-12.4f %-12.4f %-16.2f %9.2f s\n", nodes,
                stats.mean_loss, msssim,
                stats.allreduce_bytes_per_rank / 1e6,
                stats.modeled_seconds);
  }
  std::printf(
      "\nNotes: per-epoch modeled time falls with node count but "
      "sub-linearly (all-reduce each step); gradient traffic per rank "
      "is ~2*(N-1)/N of the model size per step.\nThe full Table 3 "
      "reproduction (8 rows, MS-SSIM vs batch) is "
      "bench/table3_training_scaling.\n");
  return 0;
}
