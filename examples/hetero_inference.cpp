// Heterogeneous-platform planning: given a DDnet configuration and an
// input size, measure inference on the local CPU at each §4.2
// optimization stage and project every Table 4 platform with the
// roofline device model — the "which hardware do I deploy on" question
// the paper's §7 raises for clinical settings.
#include <cstdio>

#include "../bench/ddnet_timing.h"
#include "hetero/ddnet_counts.h"
#include "hetero/device_model.h"

using namespace ccovid;

int main(int argc, char** argv) {
  const bool paper = argc > 1 && std::string(argv[1]) == "--paper-scale";
  index_t px = 0;
  const nn::DDnetConfig cfg = bench::bench_inference_config(paper, &px);

  std::printf("DDnet deployment planner\n========================\n");
  std::printf("network: base=%lld growth=%lld levels=%d, slice %lldx%lld\n",
              (long long)cfg.base_channels, (long long)cfg.growth,
              cfg.levels, (long long)px, (long long)px);

  const auto counts = hetero::count_ddnet(cfg, px, px);
  const double gflops = (counts.conv.flops + counts.deconv_gather.flops +
                         counts.other.flops) /
                        1e9;
  const double gbytes =
      (counts.conv.global_loads + counts.conv.global_stores +
       counts.deconv_gather.global_loads +
       counts.deconv_gather.global_stores + counts.other.global_loads +
       counts.other.global_stores) *
      sizeof(real_t) / 1e9;
  std::printf("workload: %.2f GFLOP, %.2f GB of global traffic "
              "(arithmetic intensity %.2f flop/byte -> memory-bound)\n\n",
              gflops, gbytes, gflops / gbytes);

  std::printf("%-30s %12s %14s\n", "platform", "proj. time", "slices/min");
  for (const auto& dev : hetero::paper_devices()) {
    const auto t = hetero::project_network_seconds(
        dev, counts, ops::KernelOptions::all());
    std::printf("%-30s %10.3f s %14.1f\n", dev.name.c_str(), t.total(),
                60.0 / t.total());
  }

  std::printf("\nlocal CPU, measured per optimization stage:\n");
  const ops::KernelOptions stages[4] = {
      ops::KernelOptions::baseline(), ops::KernelOptions::refactored(),
      ops::KernelOptions::refactored_prefetch(), ops::KernelOptions::all()};
  for (const auto& stage : stages) {
    const auto m = bench::measure_ddnet_cpu(cfg, px, px, stage);
    std::printf("  %-14s %8.3f s (conv %.3f, deconv %.3f, other %.3f)\n",
                stage.str().c_str(), m.total(), m.conv_s, m.deconv_s,
                m.other_s);
  }
  std::printf(
      "\nA 128-slice scan on the projected V100 finishes in under a "
      "minute — the paper's \"inference completes in less than one "
      "second\" per-slice regime.\n");
  return 0;
}
