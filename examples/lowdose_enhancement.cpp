// Dose-sweep study: how reconstruction quality degrades with photon
// budget and how much of it DDnet enhancement recovers — the scenario
// the paper's §7 names as its intended stress test ("evaluate the
// framework with low-dose CT image data").
//
// For each blank-scan photon count b in a sweep, the same phantom slices
// are degraded through the CT chain; one DDnet (trained once at the
// middle dose) enhances all of them.
#include <cstdio>
#include <vector>

#include "metrics/image_quality.h"
#include "pipeline/enhancement_ai.h"

using namespace ccovid;

int main() {
  std::printf("Low-dose CT dose sweep with DDnet enhancement\n");
  std::printf("=============================================\n");

  const index_t px = 48;
  Rng rng(7);

  // Train once at a middle dose.
  data::EnhancementDatasetConfig dcfg;
  dcfg.image_px = px;
  dcfg.num_train = 16;
  dcfg.num_val = 2;
  dcfg.num_test = 0;
  dcfg.lowdose.photons_per_ray = 5e4;
  const data::EnhancementDataset ds =
      data::make_enhancement_dataset(dcfg, rng);

  nn::seed_init_rng(7);
  nn::DDnetConfig ncfg;
  ncfg.base_channels = 8;
  ncfg.growth = 8;
  ncfg.levels = 2;
  ncfg.dense_layers = 2;
  pipeline::EnhancementAI enhancer(ncfg);
  pipeline::EnhancementTrainConfig tcfg;
  tcfg.epochs = 15;
  tcfg.lr = 2e-3;
  tcfg.msssim_scales = 1;
  std::printf("training DDnet at b = %.0e photons/ray...\n\n",
              dcfg.lowdose.photons_per_ray);
  enhancer.train(ds, tcfg, rng);

  // Sweep doses on fresh evaluation slices.
  const std::vector<double> doses = {5e3, 2e4, 5e4, 2e5, 1e6};
  const int eval_slices = 4;

  std::printf("%-12s %-22s %-22s\n", "photons b",
              "low-dose MSE / MS-SSIM", "enhanced MSE / MS-SSIM");
  for (double b : doses) {
    data::LowDoseConfig ld;
    ld.geometry = ld.geometry.scaled(px);
    ld.photons_per_ray = b;
    double mse_low = 0, mse_enh = 0, ms_low = 0, ms_enh = 0;
    Rng eval_rng(99);
    for (int i = 0; i < eval_slices; ++i) {
      const data::Anatomy anatomy = data::Anatomy::sample(eval_rng);
      const auto lesions = data::sample_covid_lesions(eval_rng);
      const data::PhantomSlice slice =
          data::render_slice(px, anatomy, lesions, 0.5);
      const data::LowDosePair pair =
          data::make_lowdose_pair(slice.hu, ld, eval_rng);
      const Tensor enhanced = enhancer.enhance(pair.low);
      mse_low += metrics::mse(pair.full, pair.low);
      mse_enh += metrics::mse(pair.full, enhanced);
      ms_low += metrics::ms_ssim(pair.full, pair.low);
      ms_enh += metrics::ms_ssim(pair.full, enhanced);
    }
    std::printf("%-12.0e %9.5f / %-10.4f %9.5f / %-10.4f\n", b,
                mse_low / eval_slices, ms_low / eval_slices,
                mse_enh / eval_slices, ms_enh / eval_slices);
  }
  std::printf(
      "\nExpected: image quality falls as photons drop; enhancement "
      "recovers a large fraction at every dose, largest at low dose.\n");
  return 0;
}
