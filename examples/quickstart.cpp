// Quickstart: the smallest end-to-end tour of the library.
//
//   1. synthesize a chest phantom slice (HU),
//   2. push it through the paper's low-dose CT chain
//      (Siddon projection -> Poisson noise -> FBP),
//   3. train a compact DDnet on a handful of pairs,
//   4. enhance the slice and report MSE / MS-SSIM,
//   5. write viewable PGM panels.
//
// Runs in well under a minute on one CPU core.
#include <cstdio>

#include "core/image_io.h"
#include "metrics/image_quality.h"
#include "pipeline/enhancement_ai.h"

using namespace ccovid;

int main() {
  std::printf("ComputeCOVID19+ quickstart\n==========================\n");

  // 1-2. Synthetic low-dose training pairs at 48x48 (paper: 512x512).
  Rng rng(1);
  data::EnhancementDatasetConfig dcfg;
  dcfg.image_px = 48;
  dcfg.num_train = 12;
  dcfg.num_val = 2;
  dcfg.num_test = 2;
  dcfg.lowdose.photons_per_ray = 5e4;  // paper uses 1e6 at 512px
  std::printf("simulating %lld low-dose CT pairs (Siddon + Poisson + "
              "FBP)...\n",
              (long long)(dcfg.num_train + dcfg.num_val + dcfg.num_test));
  const data::EnhancementDataset ds =
      data::make_enhancement_dataset(dcfg, rng);

  // 3. Compact DDnet (same architecture family as Table 2, scaled down).
  nn::seed_init_rng(1);
  nn::DDnetConfig ncfg;
  ncfg.base_channels = 8;
  ncfg.growth = 8;
  ncfg.levels = 2;
  ncfg.dense_layers = 2;
  pipeline::EnhancementAI enhancer(ncfg);

  pipeline::EnhancementTrainConfig tcfg;
  tcfg.epochs = 12;
  tcfg.lr = 2e-3;
  tcfg.msssim_scales = 1;
  std::printf("training DDnet (%lld parameters) for %d epochs...\n",
              (long long)enhancer.network().num_parameters(), tcfg.epochs);
  const auto logs = enhancer.train(ds, tcfg, rng);
  std::printf("loss: %.4f (epoch 1) -> %.4f (epoch %d)\n",
              logs.front().train_loss, logs.back().train_loss,
              logs.back().epoch);

  // 4. Enhance the held-out slice.
  const auto& pair = ds.test.front();
  const Tensor enhanced = enhancer.enhance(pair.low);
  std::printf("\n              %-10s %-10s\n", "MSE", "MS-SSIM");
  std::printf("low-dose   : %-10.5f %-10.4f\n",
              metrics::mse(pair.full, pair.low),
              metrics::ms_ssim(pair.full, pair.low));
  std::printf("enhanced   : %-10.5f %-10.4f\n",
              metrics::mse(pair.full, enhanced),
              metrics::ms_ssim(pair.full, enhanced));

  // 5. Panels.
  write_pgm("quickstart_fulldose.pgm", pair.full, 0.0f, 1.0f);
  write_pgm("quickstart_lowdose.pgm", pair.low, 0.0f, 1.0f);
  write_pgm("quickstart_enhanced.pgm", enhanced, 0.0f, 1.0f);
  std::printf("\nwrote quickstart_{fulldose,lowdose,enhanced}.pgm\n");
  return 0;
}
