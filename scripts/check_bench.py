#!/usr/bin/env python3
"""Bench-regression gate: fresh run vs committed BENCH_*.json baselines.

Usage:
  check_bench.py --baseline BENCH_kernels.json --fresh fresh.json \
                 [--tolerance 0.15] [--kind kernels|serve]

Compares a freshly generated benchmark artifact against the committed
baseline and exits non-zero when any tracked metric regressed by more
than the tolerance (default 15%). Two artifact kinds are understood:

  kernels  kernels_microbench --scaling-json output:
           {"results": [{"op", "threads", "ns_per_iter"}, ...]}
           keyed by (op, threads); ns_per_iter lower-is-better.

  serve    serve_throughput --json output:
           {"runs": [{"mode", "workers", "batch", ..., "achieved_vps",
                      "p50_s", ...}, ...]}
           keyed by (mode, workers, batch); achieved_vps
           higher-is-better, p50_s lower-is-better.

  shard    ccovid_serve --role front --shard-json output:
           {"shard_runs": [{"transport", "shards", "volumes",
                            "achieved_vps", "single_vps", "bitwise_match",
                            "lost", ...}, ...]}
           keyed by (transport, shards); achieved_vps higher-is-better.
           A fresh run with lost > 0 or bitwise_match false is a HARD
           failure regardless of tolerance — those are correctness
           invariants, not performance metrics.

  graph    kernels-shaped artifact, but gated on the graph-fusion
           speedup invariant instead of per-row drift: at every thread
           count carrying both rows, ns_per_iter of
           ddnet_forward_128_module divided by ddnet_forward_128_fused
           must stay at or above --min-speedup (default 1.5 — the
           ISSUE floor; the committed artifact shows ~2.9x, so the
           default leaves headroom for CI noise). A missing row or a
           ratio below the floor is a HARD failure regardless of
           tolerance: the fused path paying for itself is a shipped
           claim, not a soft metric. Cannot be inferred from contents
           (same schema as kernels) — select it with --kind graph.

  lowprec  kernels_microbench --lowprec-json output:
           {"results": [{"op", "precision", "ns_per_iter",
                         "speedup_vs_f32", "ms_ssim_vs_f32"}, ...]}
           gated on the low-precision storage invariants, all HARD:
           every precision row must be present, fp16 must clear
           --min-speedup-f16 (default 1.2) and int8 --min-speedup-i8
           (default 1.5) over fp32 on ddnet_forward_128_fused, and
           MS-SSIM vs the fp32 output must stay above
           --min-ms-ssim-half / --min-ms-ssim-i8 (accuracy never gets
           noise slack). --floor-slack relaxes only the SPEED floors
           for fresh runs on noisy shared runners; the committed
           artifact is always gated at the full floors. speedup_vs_f32
           is the median of per-round paired ratios (see
           bench/kernels_microbench.cpp), so it is stable under
           machine-wide slowdowns that scale both sides.

  overlap  dist_overlap output:
           {"trace_overlap_frac": F,
            "dist_runs": [{"world", "collective", "bucket_kb",
                           "modeled_speedup", "bitwise_match", ...}, ...]}
           gated on the backward/allreduce-overlap invariants, all
           HARD (the baseline file plays no role): every row's
           bitwise_match must be true (overlapped gradient sync is
           bitwise-equal to reduce-after-backward — a correctness
           claim, not a metric), at least one world-4 row must clear
           --min-overlap-speedup (default 1.25 — the ISSUE floor; the
           committed artifact shows ~1.5x) on modeled_speedup, and
           trace_overlap_frac must be > 0 (the traced run really did
           reduce buckets while backward was producing gradients).
           The modeled numbers are deterministic (roofline +
           interconnect model), so no tolerance applies. Select with
           --kind overlap.

  monitor  monitor_stream --json output:
           {"monitor_runs": [{"mode", "achieved_vps", "hit_rate",
                              "stale_serves", "lost_deltas",
                              "duplicate_deltas", "delta_mismatches",
                              ...}, ...], "cached_speedup": S}
           keyed by mode. Correctness invariants are HARD regardless of
           tolerance: every fresh row must show stale_serves == 0 (a
           cache hit served bits a recomputation would not reproduce),
           lost_deltas == 0 and duplicate_deltas == 0 (every patient's
           scan ordinals exactly once), and delta_mismatches == 0. The
           cached row's hit_rate must clear --min-hit-rate (default
           0.4) and cached_speedup must clear --min-cache-speedup
           (default 1.15; hits skip the emulated device residency).
           achieved_vps additionally drifts against the baseline under
           the normal tolerance.

Rows present on only one side are reported but never fail the gate
(new ops appear, old ones retire — that is what updating the baseline
is for). The waiver / update flow is documented in EXPERIMENTS.md:
regenerate the artifact on an idle machine and commit it alongside the
change that moved the numbers, with the reason in the commit message.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def compare_rows(pairs, tolerance):
    """pairs: [(key, metric, baseline, fresh, lower_is_better)].

    Returns the failure count, printing one line per metric."""
    failures = 0
    for key, metric, base, fresh, lower in pairs:
        if base is None or fresh is None or base == 0:
            continue
        ratio = fresh / base
        # Normalize so regressed > 1 regardless of metric direction.
        regress = ratio if lower else 1.0 / ratio if ratio else float("inf")
        status = "ok"
        if regress > 1.0 + tolerance:
            status = "REGRESSED"
            failures += 1
        delta = (ratio - 1.0) * 100.0
        print(f"  {status:9s} {key} {metric}: {base:.6g} -> {fresh:.6g} "
              f"({delta:+.1f}%)")
    return failures


def check_kernels(baseline, fresh, tolerance):
    base_rows = {(r["op"], r["threads"]): r for r in baseline.get("results", [])}
    fresh_rows = {(r["op"], r["threads"]): r for r in fresh.get("results", [])}
    pairs = []
    for key in sorted(base_rows.keys() & fresh_rows.keys()):
        pairs.append((f"{key[0]}@t{key[1]}", "ns_per_iter",
                      base_rows[key]["ns_per_iter"],
                      fresh_rows[key]["ns_per_iter"], True))
    for key in sorted(base_rows.keys() - fresh_rows.keys()):
        print(f"  note: baseline-only row {key} (retired op?)")
    for key in sorted(fresh_rows.keys() - base_rows.keys()):
        print(f"  note: new row {key} (not yet in baseline)")
    return compare_rows(pairs, tolerance)


def check_serve(baseline, fresh, tolerance):
    def key(r):
        return (r.get("mode"), r.get("workers"), r.get("batch"))

    base_rows = {key(r): r for r in baseline.get("runs", [])}
    fresh_rows = {key(r): r for r in fresh.get("runs", [])}
    pairs = []
    for k in sorted(base_rows.keys() & fresh_rows.keys(),
                    key=lambda t: tuple(str(x) for x in t)):
        label = f"{k[0]}/w{k[1]}/b{k[2]}"
        b, f = base_rows[k], fresh_rows[k]
        pairs.append((label, "achieved_vps", b.get("achieved_vps"),
                      f.get("achieved_vps"), False))
        pairs.append((label, "p50_s", b.get("p50_s"), f.get("p50_s"), True))
    for k in sorted(base_rows.keys() - fresh_rows.keys(),
                    key=lambda t: tuple(str(x) for x in t)):
        print(f"  note: baseline-only run {k}")
    for k in sorted(fresh_rows.keys() - base_rows.keys(),
                    key=lambda t: tuple(str(x) for x in t)):
        print(f"  note: new run {k} (not yet in baseline)")
    return compare_rows(pairs, tolerance)


def check_shard(baseline, fresh, tolerance):
    def key(r):
        return (r.get("transport"), r.get("shards"))

    base_rows = {key(r): r for r in baseline.get("shard_runs", [])}
    fresh_rows = {key(r): r for r in fresh.get("shard_runs", [])}
    failures = 0
    # Correctness invariants first: the sharded path must never lose a
    # request or diverge bitwise from the single-process server.
    for k in sorted(fresh_rows.keys(), key=lambda t: tuple(str(x) for x in t)):
        r = fresh_rows[k]
        label = f"{k[0]}/s{k[1]}"
        if r.get("lost", 0):
            print(f"  INVARIANT {label}: lost={r['lost']} (must be 0)")
            failures += 1
        if not r.get("bitwise_match", True):
            print(f"  INVARIANT {label}: bitwise_match=false "
                  f"(sharded output diverged from single-process)")
            failures += 1
    pairs = []
    for k in sorted(base_rows.keys() & fresh_rows.keys(),
                    key=lambda t: tuple(str(x) for x in t)):
        label = f"{k[0]}/s{k[1]}"
        pairs.append((label, "achieved_vps",
                      base_rows[k].get("achieved_vps"),
                      fresh_rows[k].get("achieved_vps"), False))
    for k in sorted(base_rows.keys() - fresh_rows.keys(),
                    key=lambda t: tuple(str(x) for x in t)):
        print(f"  note: baseline-only run {k}")
    for k in sorted(fresh_rows.keys() - base_rows.keys(),
                    key=lambda t: tuple(str(x) for x in t)):
        print(f"  note: new run {k} (not yet in baseline)")
    return failures + compare_rows(pairs, tolerance)


def check_monitor(baseline, fresh, tolerance, min_hit_rate,
                  min_cache_speedup):
    """Monitoring-mode gate: hard correctness invariants on the fresh
    artifact (stale bits / delta accounting), hard floors on hit rate
    and cached speedup, soft vps drift against the baseline."""
    base_rows = {r.get("mode"): r for r in baseline.get("monitor_runs", [])}
    fresh_rows = {r.get("mode"): r for r in fresh.get("monitor_runs", [])}
    failures = 0
    if "cached" not in fresh_rows:
        print("  INVARIANT no 'cached' monitor_runs row — monitor gate has "
              "nothing to check (bench renamed without updating the gate?)")
        return 1
    for mode in sorted(fresh_rows):
        r = fresh_rows[mode]
        for metric in ("stale_serves", "lost_deltas", "duplicate_deltas",
                       "delta_mismatches"):
            v = r.get(metric, 0)
            if v:
                print(f"  INVARIANT {mode}: {metric}={v} (must be 0)")
                failures += 1
            else:
                print(f"  ok        {mode}: {metric}=0")
    hit_rate = fresh_rows["cached"].get("hit_rate", 0.0)
    status = "ok" if hit_rate >= min_hit_rate else "INVARIANT"
    failures += status != "ok"
    print(f"  {status:9s} cached: hit_rate = {hit_rate:.3f} "
          f"(floor {min_hit_rate:.2f})")
    speedup = fresh.get("cached_speedup")
    if speedup is None:
        print("  INVARIANT cached_speedup missing")
        failures += 1
    else:
        status = "ok" if speedup >= min_cache_speedup else "INVARIANT"
        failures += status != "ok"
        print(f"  {status:9s} cached_speedup = {speedup:.2f}x "
              f"(floor {min_cache_speedup:.2f}x)")
    pairs = []
    for mode in sorted(base_rows.keys() & fresh_rows.keys()):
        pairs.append((mode, "achieved_vps",
                      base_rows[mode].get("achieved_vps"),
                      fresh_rows[mode].get("achieved_vps"), False))
    for mode in sorted(base_rows.keys() - fresh_rows.keys()):
        print(f"  note: baseline-only run {mode}")
    return failures + compare_rows(pairs, tolerance)


def check_graph(fresh, min_speedup):
    """Fused-graph speedup floor over a fresh kernels-shaped artifact.

    The baseline plays no role here: the gate is absolute, not
    relative. Both rows must exist (a silently retired bench row would
    otherwise turn the gate into a no-op) and module/fused must clear
    the floor at every thread count measured."""
    rows = {(r["op"], r["threads"]): r["ns_per_iter"]
            for r in fresh.get("results", [])}
    threads = sorted({t for (op, t) in rows
                      if op in ("ddnet_forward_128_module",
                                "ddnet_forward_128_fused")})
    failures = 0
    if not threads:
        print("  INVARIANT missing both ddnet_forward_128_module and "
              "ddnet_forward_128_fused rows — graph gate has nothing "
              "to check (bench renamed without updating the gate?)")
        return 1
    for t in threads:
        module = rows.get(("ddnet_forward_128_module", t))
        fused = rows.get(("ddnet_forward_128_fused", t))
        if module is None or fused is None:
            missing = "module" if module is None else "fused"
            print(f"  INVARIANT t{t}: ddnet_forward_128_{missing} row "
                  f"missing (must be present)")
            failures += 1
            continue
        ratio = module / fused if fused else float("inf")
        status = "ok" if ratio >= min_speedup else "INVARIANT"
        failures += status != "ok"
        print(f"  {status:9s} t{t}: module/fused = {module:.6g}/{fused:.6g} "
              f"= {ratio:.2f}x (floor {min_speedup:.2f}x)")
    return failures


def check_lowprec(fresh, args):
    """Low-precision storage floors over a lowprec artifact (absolute,
    like the graph kind; the baseline file plays no role)."""
    rows = {r.get("precision"): r for r in fresh.get("results", [])
            if r.get("op") == "ddnet_forward_128_fused"}
    failures = 0
    for prec in ("fp32", "fp16", "bf16", "int8"):
        if prec not in rows:
            print(f"  INVARIANT {prec}: ddnet_forward_128_fused row "
                  f"missing (bench renamed without updating the gate?)")
            failures += 1
    slack = max(0.0, min(args.floor_slack, 0.5))
    for prec, floor in (("fp16", args.min_speedup_f16),
                        ("int8", args.min_speedup_i8)):
        r = rows.get(prec)
        if r is None:
            continue
        speedup = r.get("speedup_vs_f32")
        eff = floor * (1.0 - slack)
        if speedup is None:
            print(f"  INVARIANT {prec}: speedup_vs_f32 missing")
            failures += 1
            continue
        status = "ok" if speedup >= eff else "INVARIANT"
        failures += status != "ok"
        note = f" (slack-adjusted from {floor:.2f}x)" if slack else ""
        print(f"  {status:9s} {prec}: speedup_vs_f32 = {speedup:.3f}x "
              f"(floor {eff:.2f}x{note})")
    if "bf16" in rows and rows["bf16"].get("speedup_vs_f32") is not None:
        print(f"  note      bf16: speedup_vs_f32 = "
              f"{rows['bf16']['speedup_vs_f32']:.3f}x (informational; "
              f"no committed floor)")
    for prec, floor in (("fp16", args.min_ms_ssim_half),
                        ("bf16", args.min_ms_ssim_half),
                        ("int8", args.min_ms_ssim_i8)):
        r = rows.get(prec)
        if r is None:
            continue
        ssim = r.get("ms_ssim_vs_f32")
        if ssim is None:
            print(f"  INVARIANT {prec}: ms_ssim_vs_f32 missing")
            failures += 1
            continue
        status = "ok" if ssim >= floor else "INVARIANT"
        failures += status != "ok"
        print(f"  {status:9s} {prec}: ms_ssim_vs_f32 = {ssim:.6f} "
              f"(floor {floor:.4f}, no slack)")
    return failures


def check_overlap(fresh, min_speedup):
    """Backward/allreduce overlap invariants over a fresh dist artifact
    (absolute, like the graph kind; the baseline file plays no role)."""
    rows = fresh.get("dist_runs", [])
    failures = 0
    if not rows:
        print("  INVARIANT no dist_runs rows — overlap gate has nothing "
              "to check (bench renamed without updating the gate?)")
        return 1
    best_w4 = None
    for r in rows:
        label = (f"w{r.get('world')}/{r.get('collective')}/"
                 f"{r.get('bucket_kb')}KB")
        if not r.get("bitwise_match", False):
            print(f"  INVARIANT {label}: bitwise_match=false (overlapped "
                  f"sync diverged from sequential reduction)")
            failures += 1
        if r.get("world") == 4:
            sp = r.get("modeled_speedup")
            if sp is not None and (best_w4 is None or sp > best_w4):
                best_w4 = sp
    if best_w4 is None:
        print("  INVARIANT no world-4 row with modeled_speedup present")
        failures += 1
    else:
        status = "ok" if best_w4 >= min_speedup else "INVARIANT"
        failures += status != "ok"
        print(f"  {status:9s} best world-4 modeled_speedup = {best_w4:.2f}x "
              f"(floor {min_speedup:.2f}x)")
    frac = fresh.get("trace_overlap_frac")
    if frac is None or frac <= 0:
        print(f"  INVARIANT trace_overlap_frac = {frac} (must be > 0: the "
              f"traced run showed no allreduce time concurrent with "
              f"backward)")
        failures += 1
    else:
        print(f"  ok        trace_overlap_frac = {frac:.2f}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_*.json to compare against")
    ap.add_argument("--fresh", required=True,
                    help="artifact produced by this run")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional regression (default 0.15)")
    ap.add_argument("--kind",
                    choices=["kernels", "serve", "shard", "graph",
                             "lowprec", "overlap", "monitor"],
                    default=None,
                    help="artifact schema; inferred from contents if omitted "
                         "(graph and lowprec must be selected explicitly)")
    ap.add_argument("--min-speedup", type=float, default=1.5,
                    help="graph kind: hard floor on the "
                         "module/fused ns_per_iter ratio (default 1.5)")
    ap.add_argument("--min-hit-rate", type=float, default=0.4,
                    help="monitor kind: hard floor on the cached run's "
                         "result-cache hit rate (default 0.4)")
    ap.add_argument("--min-cache-speedup", type=float, default=1.15,
                    help="monitor kind: hard floor on cached vs uncached "
                         "throughput (default 1.15)")
    ap.add_argument("--min-overlap-speedup", type=float, default=1.25,
                    help="overlap kind: hard floor on the best world-4 "
                         "modeled_speedup (default 1.25)")
    ap.add_argument("--min-speedup-f16", type=float, default=1.2,
                    help="lowprec kind: fp16-over-fp32 speedup floor")
    ap.add_argument("--min-speedup-i8", type=float, default=1.5,
                    help="lowprec kind: int8-over-fp32 speedup floor")
    ap.add_argument("--min-ms-ssim-half", type=float, default=0.995,
                    help="lowprec kind: fp16/bf16 MS-SSIM-vs-fp32 floor")
    ap.add_argument("--min-ms-ssim-i8", type=float, default=0.99,
                    help="lowprec kind: int8 MS-SSIM-vs-fp32 floor")
    ap.add_argument("--floor-slack", type=float, default=0.0,
                    help="lowprec kind: fractional slack applied to the "
                         "SPEED floors only (fresh runs on shared "
                         "runners); accuracy floors never get slack")
    args = ap.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    kind = args.kind
    if kind is None:
        if "monitor_runs" in baseline:
            kind = "monitor"
        elif "shard_runs" in baseline:
            kind = "shard"
        elif "runs" in baseline:
            kind = "serve"
        else:
            kind = "kernels"

    if kind == "graph":
        print(f"check_bench: graph artifact, speedup floor "
              f"{args.min_speedup:.2f}x")
    elif kind == "overlap":
        print(f"check_bench: overlap artifact, world-4 speedup floor "
              f"{args.min_overlap_speedup:.2f}x")
    elif kind == "monitor":
        print(f"check_bench: monitor artifact, hit-rate floor "
              f"{args.min_hit_rate:.2f}, cache-speedup floor "
              f"{args.min_cache_speedup:.2f}x, tolerance "
              f"{args.tolerance:.0%}")
    elif kind == "lowprec":
        print(f"check_bench: lowprec artifact, floors fp16 "
              f"{args.min_speedup_f16:.2f}x / int8 "
              f"{args.min_speedup_i8:.2f}x, floor slack "
              f"{args.floor_slack:.0%}")
    else:
        print(f"check_bench: {kind} artifact, tolerance {args.tolerance:.0%}")
    print(f"  baseline: {args.baseline}")
    print(f"  fresh   : {args.fresh}")
    if kind == "kernels":
        failures = check_kernels(baseline, fresh, args.tolerance)
    elif kind == "shard":
        failures = check_shard(baseline, fresh, args.tolerance)
    elif kind == "graph":
        failures = check_graph(fresh, args.min_speedup)
    elif kind == "lowprec":
        failures = check_lowprec(fresh, args)
    elif kind == "overlap":
        failures = check_overlap(fresh, args.min_overlap_speedup)
    elif kind == "monitor":
        failures = check_monitor(baseline, fresh, args.tolerance,
                                 args.min_hit_rate, args.min_cache_speedup)
    else:
        failures = check_serve(baseline, fresh, args.tolerance)

    if failures:
        if kind == "graph":
            print(f"check_bench: FAILED — {failures} graph invariant(s) "
                  f"violated (fused speedup floor "
                  f"{args.min_speedup:.2f}x).")
        elif kind == "lowprec":
            print(f"check_bench: FAILED — {failures} low-precision "
                  f"invariant(s) violated (speed floors fp16 "
                  f"{args.min_speedup_f16:.2f}x / int8 "
                  f"{args.min_speedup_i8:.2f}x, MS-SSIM floors "
                  f"{args.min_ms_ssim_half:.4f} / "
                  f"{args.min_ms_ssim_i8:.4f}).")
        elif kind == "monitor":
            print(f"check_bench: FAILED — {failures} monitoring "
                  f"invariant(s) or metric(s) violated (stale bits and "
                  f"delta accounting are hard; hit-rate floor "
                  f"{args.min_hit_rate:.2f}, speedup floor "
                  f"{args.min_cache_speedup:.2f}x).")
        else:
            print(f"check_bench: FAILED — {failures} metric(s) regressed "
                  f"more than {args.tolerance:.0%}.")
        print("If the regression is expected, regenerate the baseline and "
              "commit it (see EXPERIMENTS.md, 'Bench gate').")
        return 1
    print("check_bench: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
