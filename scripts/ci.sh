#!/usr/bin/env bash
# CI driver: release build + full suite, a runtime budget on the fast
# suite, then the sanitizer presets over the concurrency-heavy suites —
# including test_trace, whose snapshot-while-writing test is the one the
# trace ring's relaxed-atomic slot design exists to keep race-free.
#
# Environment knobs:
#   FAST_BUDGET_S  fast-suite wall-clock budget in seconds (default 120)
#   SKIP_SANITIZERS=1  release build + budget check only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)
FAST_BUDGET_S=${FAST_BUDGET_S:-120}

cmake --preset default
cmake --build --preset default -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

# Budget check: the sanitizer loops below iterate on `ctest -L fast`,
# so the fast suite staying fast is itself a CI invariant.
start=$(date +%s)
ctest --test-dir build -L fast --output-on-failure
elapsed=$(( $(date +%s) - start ))
echo "fast suite: ${elapsed}s (budget ${FAST_BUDGET_S}s)"
if [ "$elapsed" -gt "$FAST_BUDGET_S" ]; then
  echo "error: 'ctest -L fast' took ${elapsed}s, over the ${FAST_BUDGET_S}s budget" >&2
  exit 1
fi

if [ "${SKIP_SANITIZERS:-0}" = "1" ]; then
  echo "SKIP_SANITIZERS=1: done."
  exit 0
fi

for preset in tsan asan; do
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j"$JOBS"
  ctest --preset "$preset-fast"
  ctest --preset "$preset-trace"
done
