#!/usr/bin/env bash
# CI driver: release build + full suite, a runtime budget on the fast
# suite, explicit chaos/trace labeled subsets, then the sanitizer
# presets over the concurrency-heavy suites — including test_trace,
# whose snapshot-while-writing test is the one the trace ring's
# relaxed-atomic slot design exists to keep race-free. Every ctest run
# goes through run_ctest so a failing subset is named and its exit
# status propagated, never masked by the EXIT trap's preset message.
#
# Environment knobs:
#   FAST_BUDGET_S  fast-suite wall-clock budget in seconds (default 120)
#   SKIP_SANITIZERS=1  release build + budget check only
set -euo pipefail
set -o pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)
FAST_BUDGET_S=${FAST_BUDGET_S:-120}

# Name of the preset currently being driven, for the failure trap: a
# plain `set -e` exit says nothing about WHICH preset died, and the
# tsan/asan loop makes that the first question every triage asks.
CURRENT_PRESET=default
trap 'status=$?; if [ "$status" -ne 0 ]; then
        echo "ci.sh: FAILED (exit $status) while driving preset '\''${CURRENT_PRESET}'\''" >&2
      fi' EXIT

# run_preset NAME — configure + build + full ctest for one configure
# preset. Each stage is checked explicitly so a configure failure (bad
# generator, missing toolchain) exits non-zero instead of letting a
# stale build tree masquerade as a pass.
run_preset() {
  CURRENT_PRESET=$1
  if ! cmake --preset "$1"; then
    echo "ci.sh: configure failed for preset '$1'" >&2
    exit 1
  fi
  if ! cmake --build --preset "$1" -j"$JOBS"; then
    echo "ci.sh: build failed for preset '$1'" >&2
    exit 1
  fi
}

# run_ctest LABEL CMD... — explicit pass/fail guard around a ctest
# invocation. Every ctest below goes through this instead of leaning on
# `set -e`: a bare failing ctest surfaces only as the generic trap
# message for whatever CURRENT_PRESET happens to be, which has twice
# let a later-label failure read like an infra hiccup on the preceding
# stage. The guard names the exact subset that died and propagates its
# real exit status.
run_ctest() {
  local label=$1
  shift
  local status=0
  "$@" || status=$?
  if [ "$status" -ne 0 ]; then
    echo "ci.sh: ctest subset '${label}' FAILED (exit $status)" >&2
    exit "$status"
  fi
}

run_preset default
run_ctest "default-full" ctest --test-dir build --output-on-failure -j"$JOBS"

# Budget check: the sanitizer loops below iterate on `ctest -L fast`,
# so the fast suite staying fast is itself a CI invariant.
start=$(date +%s)
run_ctest "default-fast" ctest --test-dir build -L fast --output-on-failure
elapsed=$(( $(date +%s) - start ))
echo "fast suite: ${elapsed}s (budget ${FAST_BUDGET_S}s)"
if [ "$elapsed" -gt "$FAST_BUDGET_S" ]; then
  echo "error: 'ctest -L fast' took ${elapsed}s, over the ${FAST_BUDGET_S}s budget" >&2
  exit 1
fi

# Labeled subsets after the budget check, mirroring ci.yml's
# Release-only chaos|trace step. These ran inside the full suite above,
# but running them again as named subsets means a chaos-only or
# trace-only failure is reported as exactly that — and the explicit
# run_ctest guard propagates the nonzero exit instead of letting the
# EXIT trap's preset-oriented message mask which label died.
run_ctest "default-chaos" ctest --test-dir build -L chaos --output-on-failure
run_ctest "default-trace" ctest --test-dir build -L trace --output-on-failure

if [ "${SKIP_SANITIZERS:-0}" = "1" ]; then
  echo "SKIP_SANITIZERS=1: done."
  CURRENT_PRESET=done
  exit 0
fi

for preset in tsan asan; do
  run_preset "$preset"
  run_ctest "$preset-fast" ctest --preset "$preset-fast"
  run_ctest "$preset-trace" ctest --preset "$preset-trace"
done
CURRENT_PRESET=done
