#include "autograd/engine.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/env.h"
#include "core/parallel.h"
#include "core/task_engine.h"
#include "trace/trace.h"

namespace ccovid::autograd {

namespace {

// -1 = no thread override; else a BackwardMode value.
thread_local int g_mode_override = -1;

bool process_default_async() {
  static const bool async = [] {
    const auto v = env::choice("CCOVID_ASYNC_BACKWARD", {"0", "1", "on", "off"},
                               "async engine (1)");
    return !(v && (*v == "0" || *v == "off"));
  }();
  return async;
}

}  // namespace

BackwardMode backward_mode() {
  if (g_mode_override >= 0) return static_cast<BackwardMode>(g_mode_override);
  return process_default_async() ? BackwardMode::kAsync
                                 : BackwardMode::kSequential;
}

BackwardModeGuard::BackwardModeGuard(BackwardMode m) : prev_(g_mode_override) {
  g_mode_override = static_cast<int>(m);
}

BackwardModeGuard::~BackwardModeGuard() { g_mode_override = prev_; }

namespace detail {

/// One gradient contribution parked until its target's dependency count
/// drains: `rank` is the contributing consumer's sequential execution
/// rank, `seq` its call index inside that consumer's closure — together
/// the exact position this add_ held in the sequential walk.
struct StagedGrad {
  std::uint32_t rank = 0;
  std::uint32_t seq = 0;
  Tensor grad;
};

struct NodeState {
  VarImpl* node = nullptr;
  std::vector<const VarImpl*> parents;  ///< per recorded edge (multiplicity)
  std::atomic<std::uint32_t> deps{0};   ///< outstanding consumer edges
  std::mutex mu;                        ///< guards `staged`
  std::vector<StagedGrad> staged;
};

struct EngineExecContext {
  BackwardRunState* run = nullptr;
  std::uint32_t consumer_rank = 0;
  std::uint32_t seq = 0;
};

namespace {
thread_local EngineExecContext* g_exec_ctx = nullptr;
}  // namespace

EngineExecContext* current_engine_context() { return g_exec_ctx; }

}  // namespace detail

/// Shared state of one drain. Nodes are stored in SEQUENTIAL EXECUTION
/// order (reverse topological, root first), so a node's index doubles
/// as its execution rank for contribution tags.
struct BackwardRunState : std::enable_shared_from_this<BackwardRunState> {
  std::shared_ptr<detail::VarImpl> root;  ///< keeps the graph alive
  std::unique_ptr<detail::NodeState[]> nodes;
  std::uint32_t count = 0;
  std::unordered_map<const detail::VarImpl*, std::uint32_t> index;
  BackwardOptions opts;

  bool inline_drain = false;  ///< width 1: caller drains, no tasks
  int width = 1;

  std::mutex mu;  ///< guards ready/in_flight/error
  std::vector<std::uint32_t> ready;
  int in_flight = 0;
  std::exception_ptr error;
  std::atomic<bool> aborted{false};
  std::atomic<std::uint32_t> remaining{0};
  std::condition_variable done_cv;

  void record_error(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mu);
    if (!error) error = std::move(e);
    aborted.store(true, std::memory_order_relaxed);
  }

  /// Folds the staged contributions into `node->grad`, replaying the
  /// sequential accumulation order: sort by (consumer rank, call index)
  /// and reduce left to right. First contribution into an undefined
  /// buffer adopts the staged clone — bitwise the sequential
  /// `grad = g.clone()`; everything else is add_ in order.
  void fold_staged(detail::NodeState& s) {
    std::vector<detail::StagedGrad> staged;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      staged.swap(s.staged);
    }
    if (staged.empty()) return;
    std::sort(staged.begin(), staged.end(),
              [](const detail::StagedGrad& a, const detail::StagedGrad& b) {
                return a.rank != b.rank ? a.rank < b.rank : a.seq < b.seq;
              });
    std::size_t i = 0;
    if (!s.node->grad.defined()) {
      s.node->grad = std::move(staged[0].grad);
      i = 1;
    }
    for (; i < staged.size(); ++i) s.node->grad.add_(staged[i].grad);
  }

  void execute(std::uint32_t idx) {
    detail::NodeState& s = nodes[idx];
    fold_staged(s);
    const bool abort = aborted.load(std::memory_order_relaxed);
    if (!abort && s.node->backward_fn && s.node->grad.defined()) {
      detail::EngineExecContext ctx;
      ctx.run = this;
      ctx.consumer_rank = idx;
      detail::EngineExecContext* prev = detail::g_exec_ctx;
      detail::g_exec_ctx = &ctx;
      try {
        trace::ScopedCorrelation corr(opts.trace_correlation
                                          ? opts.trace_correlation
                                          : trace::correlation_id());
        TRACE_SPAN_V("autograd.node");
        s.node->backward_fn(s.node->grad);
      } catch (...) {
        record_error(std::current_exception());
      }
      detail::g_exec_ctx = prev;
      // Release the closure (and its captured activations) once used,
      // exactly as the sequential walk does.
      s.node->backward_fn = nullptr;
    }
    if (!aborted.load(std::memory_order_relaxed) && opts.on_node_finalized) {
      try {
        opts.on_node_finalized(s.node);
      } catch (...) {
        record_error(std::current_exception());
      }
    }
    for (const detail::VarImpl* p : s.parents) {
      const std::uint32_t pidx = index.find(p)->second;
      if (nodes[pidx].deps.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        enqueue_ready(pidx);
      }
    }
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      if (opts.on_complete) {
        try {
          opts.on_complete();
        } catch (...) {
          record_error(std::current_exception());
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      done_cv.notify_all();
    }
  }

  void enqueue_ready(std::uint32_t idx) {
    if (inline_drain) {
      ready.push_back(idx);  // caller-local, no lock needed
      return;
    }
    std::lock_guard<std::mutex> lock(mu);
    ready.push_back(idx);
    dispatch_locked();
  }

  /// Keeps at most `width` node tasks in flight; finished tasks pull
  /// the next ready node. Scheduling order is free — determinism lives
  /// entirely in the staged-fold ordering.
  void dispatch_locked();

  void run_task(std::uint32_t idx) {
    execute(idx);
    std::lock_guard<std::mutex> lock(mu);
    --in_flight;
    dispatch_locked();
  }
};

void BackwardRunState::dispatch_locked() {
  while (in_flight < width && !ready.empty()) {
    const std::uint32_t idx = ready.back();
    ready.pop_back();
    ++in_flight;
    // The task holds a shared_ptr: a BackwardRun destroyed right after
    // remaining hit zero must not free state a finishing task still
    // touches (the in_flight bookkeeping below).
    TaskEngine::instance().submit(
        [self = shared_from_this(), idx] { self->run_task(idx); });
  }
}

namespace detail {

void stage_contribution(EngineExecContext* ctx, const VarImpl* target,
                        const Tensor& g) {
  BackwardRunState* run = ctx->run;
  const auto it = run->index.find(target);
  if (it == run->index.end()) {
    // A contribution to a node outside the drained graph (not reachable
    // from the root): accumulate directly, as the sequential walk would
    // never reorder it against anything.
    const_cast<VarImpl*>(target)->accumulate(g);
    return;
  }
  NodeState& s = run->nodes[it->second];
  StagedGrad sg;
  sg.rank = ctx->consumer_rank;
  sg.seq = ctx->seq++;
  sg.grad = g.clone();
  std::lock_guard<std::mutex> lock(s.mu);
  s.staged.push_back(std::move(sg));
}

}  // namespace detail

BackwardRun::~BackwardRun() {
  if (!state_) return;
  // Hooks and staged state may reference caller-owned memory: block
  // until the drain finished, but never throw from a destructor.
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->done_cv.wait(lock, [this] {
    return state_->remaining.load(std::memory_order_acquire) == 0;
  });
}

void BackwardRun::wait() {
  if (!state_) return;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->done_cv.wait(lock, [this] {
    return state_->remaining.load(std::memory_order_acquire) == 0;
  });
  if (state_->error) {
    std::exception_ptr e = state_->error;
    state_->error = nullptr;  // rethrow once; dtor stays silent
    lock.unlock();
    std::rethrow_exception(e);
  }
}

bool BackwardRun::finished() const {
  return !state_ || state_->remaining.load(std::memory_order_acquire) == 0;
}

BackwardRun backward_start(const std::shared_ptr<detail::VarImpl>& root,
                           const Tensor& seed, BackwardOptions opts) {
  // Topological order by the SAME iterative post-order DFS the
  // sequential walk uses; reversing it yields the sequential execution
  // order, whose positions become the contribution tags.
  std::vector<detail::VarImpl*> order;
  std::unordered_set<detail::VarImpl*> visited;
  std::vector<std::pair<detail::VarImpl*, std::size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      detail::VarImpl* child = node->parents[next_child].get();
      ++next_child;
      if (visited.insert(child).second) stack.emplace_back(child, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  auto state = std::make_shared<BackwardRunState>();
  state->root = root;
  state->opts = std::move(opts);
  state->count = static_cast<std::uint32_t>(order.size());
  state->nodes.reset(new detail::NodeState[state->count]);
  state->index.reserve(order.size());
  for (std::uint32_t i = 0; i < state->count; ++i) {
    detail::VarImpl* node = order[state->count - 1 - i];
    state->nodes[i].node = node;
    state->index.emplace(node, i);
  }
  // Edge-counted dependencies: every recorded parent occurrence is one
  // outstanding edge (mul(x, x) holds x twice and contributes twice).
  for (std::uint32_t i = 0; i < state->count; ++i) {
    detail::NodeState& s = state->nodes[i];
    s.parents.reserve(s.node->parents.size());
    for (const auto& p : s.node->parents) {
      s.parents.push_back(p.get());
      state->nodes[state->index.find(p.get())->second].deps.fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  state->remaining.store(state->count, std::memory_order_relaxed);

  // Seed the root directly, as the sequential walk does before its loop.
  root->accumulate(seed);

  int width = thread_num_threads();
  if (width <= 0) width = num_threads();
  state->width = std::max(1, width);
  state->inline_drain = state->width == 1;

  BackwardRun run;
  run.state_ = state;
  if (state->inline_drain) {
    // Width 1: drain on the calling thread — the staging/fold path is
    // identical, only the scheduling is degenerate.
    state->ready.push_back(0);  // root has no consumers
    while (!state->ready.empty()) {
      const std::uint32_t idx = state->ready.back();
      state->ready.pop_back();
      state->execute(idx);
    }
    return run;
  }
  TaskEngine::instance().ensure_workers(state->width);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->ready.push_back(0);
    state->dispatch_locked();
  }
  return run;
}

void backward_async(const std::shared_ptr<detail::VarImpl>& root,
                    const Tensor& seed) {
  backward_start(root, seed).wait();
}

}  // namespace ccovid::autograd
