// Dependency-counting ready-queue backward engine (the torch
// engine.cpp shape, scaled to this tape): instead of walking the DAG in
// reverse topological order on one thread, every node carries an
// outstanding-dependency count — the number of consumer edges whose
// closures have not yet finished — and nodes whose count reaches zero
// are drained through the process-wide work-stealing TaskEngine.
//
// Bitwise determinism at any worker width
// ---------------------------------------
// The sequential walk accumulates gradient contributions into a shared
// Var in a fixed order: consumers run root-first in reverse topological
// order, and each closure's accumulate_grad calls land in program
// order. Floating-point addition is not associative, so replaying that
// exact order is the whole contract. The engine therefore never
// accumulates from worker threads. Each contribution is STAGED against
// its target node, tagged with (consumer's sequential execution rank,
// intra-closure call index); when the target's dependency count hits
// zero — every contribution is in — the staged list is sorted by tag
// and reduced left to right, which replays the sequential accumulation
// bit for bit. Nodes whose gradient buffer is already defined (leaf
// parameters after Adam::zero_grad) receive add_ in the same order, so
// the defined-grad path matches too.
//
// Completion is edge-counted, not contribution-counted: a consumer that
// finishes (closure run, skipped for an undefined grad, or abandoned
// after a captured exception) decrements each parent once per recorded
// edge, so dead branches and ops that do not propagate to every parent
// cannot wedge the drain.
//
// Mode selection: the async engine is the default backward path
// (CCOVID_ASYNC_BACKWARD=0 restores the sequential walk process-wide);
// BackwardModeGuard pins the calling thread either way, which is how
// the fuzzer and the gradcheck suites compare the two implementations
// in-process. A caller-thread width cap of 1 (ParallelPin) drains the
// ready queue inline with zero task-engine traffic — same staging
// code path, no threads.
#pragma once

#include <functional>
#include <memory>

#include "autograd/variable.h"

namespace ccovid::autograd {

enum class BackwardMode {
  kSequential,  ///< single-threaded reverse-topological walk
  kAsync,       ///< dependency-counting ready queue over the TaskEngine
};

/// Effective mode for the calling thread: thread override if set, else
/// the process default (CCOVID_ASYNC_BACKWARD, async unless =0).
BackwardMode backward_mode();

/// RAII thread-local mode pin (restores the previous override).
class BackwardModeGuard {
 public:
  explicit BackwardModeGuard(BackwardMode m);
  ~BackwardModeGuard();
  BackwardModeGuard(const BackwardModeGuard&) = delete;
  BackwardModeGuard& operator=(const BackwardModeGuard&) = delete;

 private:
  int prev_;  ///< encoded previous override (-1 = none)
};

struct BackwardOptions {
  /// Called after a node's gradient is FINAL (all staged contributions
  /// reduced; closure, if any, already run) — the overlap hook DDP uses
  /// to mark gradient buckets ready while backward is still running.
  /// Fires on whichever thread finalized the node, possibly
  /// concurrently for different nodes; must be cheap and thread-safe.
  /// Not called for nodes abandoned after a captured exception.
  std::function<void(const detail::VarImpl*)> on_node_finalized;
  /// Called exactly once, after the LAST node finalized (before any
  /// waiter wakes). Runs on whichever thread finished last — must be
  /// cheap and thread-safe. Called even when the run aborted on an
  /// exception (wait() still reports the error). DDP uses it to release
  /// bucket waiters for parameters the step's graph never touched.
  std::function<void()> on_complete;
  /// Correlation id stamped on the engine's node spans (trace level 2),
  /// so a DDP rank's backward compute lands in that rank's trace lane.
  std::uint64_t trace_correlation = 0;
};

/// In-flight asynchronous backward pass. The destructor blocks until
/// the drain finished (hooks may reference caller-owned state), but
/// only wait() rethrows a captured exception — call it.
class BackwardRun {
 public:
  BackwardRun() = default;
  BackwardRun(BackwardRun&&) noexcept = default;
  BackwardRun& operator=(BackwardRun&&) noexcept = default;
  ~BackwardRun();

  /// Blocks until every node finalized; rethrows the first exception a
  /// closure raised. Idempotent.
  void wait();

  /// True once every node has been finalized (or abandoned after an
  /// exception) — wait() will not block.
  bool finished() const;

 private:
  friend BackwardRun backward_start(const std::shared_ptr<detail::VarImpl>&,
                                    const Tensor&, BackwardOptions);
  std::shared_ptr<struct BackwardRunState> state_;
};

/// Starts the dependency-driven drain from `root` seeded with `seed`
/// and returns without waiting for completion (the overlap primitive).
/// With a caller width cap of 1 the whole drain runs inline before
/// returning. Gradients and post-run graph state are bitwise identical
/// to Var::backward's sequential walk at any width.
BackwardRun backward_start(const std::shared_ptr<detail::VarImpl>& root,
                           const Tensor& seed, BackwardOptions opts = {});

/// Blocking convenience used by Var::backward in async mode.
void backward_async(const std::shared_ptr<detail::VarImpl>& root,
                    const Tensor& seed);

namespace detail {

/// Thread-local staging context: while a closure runs under the engine,
/// accumulate_grad routes contributions here instead of touching the
/// target's grad buffer. Null outside engine execution.
struct EngineExecContext;
EngineExecContext* current_engine_context();

/// Stages one contribution (clones `g`) tagged with the running
/// consumer's execution rank and its next intra-closure call index.
void stage_contribution(EngineExecContext* ctx, const VarImpl* target,
                        const Tensor& g);

}  // namespace detail

}  // namespace ccovid::autograd
