#include "autograd/functions.h"

#include <cmath>
#include <memory>
#include <stdexcept>

namespace ccovid::autograd {

namespace {

Tensor maybe_value(const Var& v) {
  return v.defined() ? v.value() : Tensor();
}

}  // namespace

Var conv2d(const Var& x, const Var& w, const Var& b, ops::Conv2dParams p,
           const ops::KernelOptions& opt) {
  Tensor out = ops::conv2d(x.value(), w.value(), maybe_value(b), p, opt);
  Var y = Var::make_node(std::move(out), {x, w, b});
  if (y.requires_grad()) {
    const index_t h = x.value().dim(2), wd = x.value().dim(3);
    const index_t k = w.value().dim(2);
    y.set_backward([x, w, b, p, h, wd, k](const Tensor& g) {
      if (x.requires_grad()) {
        accumulate_grad(x, ops::conv2d_backward_input(g, w.value(), h, wd, p));
      }
      if (w.requires_grad()) {
        accumulate_grad(w, ops::conv2d_backward_weight(g, x.value(), k, p));
      }
      if (b.defined() && b.requires_grad()) {
        accumulate_grad(b, ops::conv2d_backward_bias(g));
      }
    });
  }
  return y;
}

Var deconv2d(const Var& x, const Var& w, const Var& b, ops::Deconv2dParams p,
             const ops::KernelOptions& opt) {
  Tensor out = ops::deconv2d(x.value(), w.value(), maybe_value(b), p, opt);
  Var y = Var::make_node(std::move(out), {x, w, b});
  if (y.requires_grad()) {
    const index_t k = w.value().dim(2);
    y.set_backward([x, w, b, p, k](const Tensor& g) {
      if (x.requires_grad()) {
        accumulate_grad(x, ops::deconv2d_backward_input(g, w.value(), p));
      }
      if (w.requires_grad()) {
        accumulate_grad(w, ops::deconv2d_backward_weight(g, x.value(), k, p));
      }
      if (b.defined() && b.requires_grad()) {
        accumulate_grad(b, ops::deconv2d_backward_bias(g));
      }
    });
  }
  return y;
}

Var conv3d(const Var& x, const Var& w, const Var& b, ops::Conv3dParams p) {
  Tensor out = ops::conv3d(x.value(), w.value(), maybe_value(b), p);
  Var y = Var::make_node(std::move(out), {x, w, b});
  if (y.requires_grad()) {
    const index_t d = x.value().dim(2), h = x.value().dim(3),
                  wd = x.value().dim(4);
    const index_t k = w.value().dim(2);
    y.set_backward([x, w, b, p, d, h, wd, k](const Tensor& g) {
      if (x.requires_grad()) {
        accumulate_grad(
            x, ops::conv3d_backward_input(g, w.value(), d, h, wd, p));
      }
      if (w.requires_grad()) {
        accumulate_grad(w, ops::conv3d_backward_weight(g, x.value(), k, p));
      }
      if (b.defined() && b.requires_grad()) {
        accumulate_grad(b, ops::conv3d_backward_bias(g));
      }
    });
  }
  return y;
}

Var linear(const Var& x, const Var& w, const Var& b) {
  Tensor out = ops::linear(x.value(), w.value(), maybe_value(b));
  Var y = Var::make_node(std::move(out), {x, w, b});
  if (y.requires_grad()) {
    y.set_backward([x, w, b](const Tensor& g) {
      if (x.requires_grad()) {
        accumulate_grad(x, ops::linear_backward_input(g, w.value()));
      }
      if (w.requires_grad()) {
        accumulate_grad(w, ops::linear_backward_weight(g, x.value()));
      }
      if (b.defined() && b.requires_grad()) {
        accumulate_grad(b, ops::linear_backward_bias(g));
      }
    });
  }
  return y;
}

Var batch_norm(const Var& x, const Var& gamma, const Var& beta,
               Tensor& running_mean, Tensor& running_var, bool training,
               real_t momentum, real_t eps) {
  if (!training) {
    Tensor out = ops::batch_norm_infer(x.value(), gamma.value(),
                                       beta.value(), running_mean,
                                       running_var, eps);
    Var y = Var::make_node(std::move(out), {x, gamma, beta});
    if (y.requires_grad()) {
      // Eval-mode backward: y = scale*x + shift with frozen statistics.
      Tensor rm = running_mean.clone();
      Tensor rv = running_var.clone();
      y.set_backward([x, gamma, beta, rm, rv, eps](const Tensor& g) {
        const index_t c = gamma.value().dim(0);
        index_t spatial = 1;
        for (int i = 2; i < x.value().rank(); ++i) {
          spatial *= x.value().dim(i);
        }
        const index_t n = x.value().dim(0);
        if (x.requires_grad()) {
          Tensor gx(x.value().shape());
          for (index_t plane = 0; plane < n * c; ++plane) {
            const index_t ch = plane % c;
            const real_t scale =
                gamma.value().at(ch) / std::sqrt(rv.at(ch) + eps);
            const real_t* gp = g.data() + plane * spatial;
            real_t* xp = gx.data() + plane * spatial;
            for (index_t i = 0; i < spatial; ++i) xp[i] = scale * gp[i];
          }
          accumulate_grad(x, gx);
        }
        if (gamma.requires_grad() || beta.requires_grad()) {
          Tensor gg({c});
          Tensor gb({c});
          for (index_t plane = 0; plane < n * c; ++plane) {
            const index_t ch = plane % c;
            const real_t inv_std = 1.0f / std::sqrt(rv.at(ch) + eps);
            const real_t* gp = g.data() + plane * spatial;
            const real_t* xp = x.value().data() + plane * spatial;
            double sg = 0.0, sb = 0.0;
            for (index_t i = 0; i < spatial; ++i) {
              sg += static_cast<double>(gp[i]) * (xp[i] - rm.at(ch)) *
                    inv_std;
              sb += gp[i];
            }
            gg.at(ch) += static_cast<real_t>(sg);
            gb.at(ch) += static_cast<real_t>(sb);
          }
          if (gamma.requires_grad()) accumulate_grad(gamma, gg);
          if (beta.requires_grad()) accumulate_grad(beta, gb);
        }
      });
    }
    return y;
  }

  auto stats = std::make_shared<ops::BatchNormStats>();
  Tensor out =
      ops::batch_norm_train(x.value(), gamma.value(), beta.value(), *stats,
                            eps);
  // Update running statistics (out-of-graph side effect, as in PyTorch).
  // momentum == 0 is the eval-mode batch-stats path (see
  // BatchNorm::forward): the update would be a no-op, and skipping it
  // keeps concurrent inference threads from racing on the buffers.
  if (momentum != 0.0f) {
    const index_t c = gamma.value().dim(0);
    for (index_t ch = 0; ch < c; ++ch) {
      running_mean.at(ch) = (1.0f - momentum) * running_mean.at(ch) +
                            momentum * stats->mean.at(ch);
      running_var.at(ch) = (1.0f - momentum) * running_var.at(ch) +
                           momentum * stats->var.at(ch);
    }
  }
  Var y = Var::make_node(std::move(out), {x, gamma, beta});
  if (y.requires_grad()) {
    y.set_backward([x, gamma, beta, stats](const Tensor& g) {
      ops::BatchNormGrads grads =
          ops::batch_norm_backward(g, x.value(), gamma.value(), *stats);
      if (x.requires_grad()) accumulate_grad(x, grads.grad_input);
      if (gamma.requires_grad()) accumulate_grad(gamma, grads.grad_gamma);
      if (beta.requires_grad()) accumulate_grad(beta, grads.grad_beta);
    });
  }
  return y;
}

Var max_pool2d(const Var& x, ops::Pool2dParams p) {
  auto res = std::make_shared<ops::MaxPool2dResult>(
      ops::max_pool2d(x.value(), p));
  Var y = Var::make_node(res->output.clone(), {x});
  if (y.requires_grad()) {
    const index_t h = x.value().dim(2), w = x.value().dim(3);
    y.set_backward([x, res, h, w](const Tensor& g) {
      accumulate_grad(x, ops::max_pool2d_backward(g, res->argmax, h, w));
    });
  }
  return y;
}

Var avg_pool2d(const Var& x, ops::Pool2dParams p) {
  Tensor out = ops::avg_pool2d(x.value(), p);
  Var y = Var::make_node(std::move(out), {x});
  if (y.requires_grad()) {
    const index_t h = x.value().dim(2), w = x.value().dim(3);
    y.set_backward([x, p, h, w](const Tensor& g) {
      accumulate_grad(x, ops::avg_pool2d_backward(g, p, h, w));
    });
  }
  return y;
}

Var unpool2d(const Var& x, index_t scale) {
  Tensor out = ops::unpool2d_bilinear(x.value(), scale);
  Var y = Var::make_node(std::move(out), {x});
  if (y.requires_grad()) {
    const index_t h = x.value().dim(2), w = x.value().dim(3);
    y.set_backward([x, scale, h, w](const Tensor& g) {
      accumulate_grad(x, ops::unpool2d_bilinear_backward(g, scale, h, w));
    });
  }
  return y;
}

Var max_pool3d(const Var& x, ops::Pool3dParams p) {
  auto res = std::make_shared<ops::MaxPool3dResult>(
      ops::max_pool3d(x.value(), p));
  Var y = Var::make_node(res->output.clone(), {x});
  if (y.requires_grad()) {
    const index_t d = x.value().dim(2), h = x.value().dim(3),
                  w = x.value().dim(4);
    y.set_backward([x, res, d, h, w](const Tensor& g) {
      accumulate_grad(x, ops::max_pool3d_backward(g, res->argmax, d, h, w));
    });
  }
  return y;
}

Var avg_pool3d(const Var& x, ops::Pool3dParams p) {
  Tensor out = ops::avg_pool3d(x.value(), p);
  Var y = Var::make_node(std::move(out), {x});
  if (y.requires_grad()) {
    const index_t d = x.value().dim(2), h = x.value().dim(3),
                  w = x.value().dim(4);
    y.set_backward([x, p, d, h, w](const Tensor& g) {
      accumulate_grad(x, ops::avg_pool3d_backward(g, p, d, h, w));
    });
  }
  return y;
}

Var global_avg_pool3d(const Var& x) {
  Tensor out = ops::global_avg_pool3d(x.value());
  Var y = Var::make_node(std::move(out), {x});
  if (y.requires_grad()) {
    const index_t d = x.value().dim(2), h = x.value().dim(3),
                  w = x.value().dim(4);
    y.set_backward([x, d, h, w](const Tensor& g) {
      accumulate_grad(x, ops::global_avg_pool3d_backward(g, d, h, w));
    });
  }
  return y;
}

Var relu(const Var& x) {
  Var y = Var::make_node(ops::relu(x.value()), {x});
  if (y.requires_grad()) {
    y.set_backward([x](const Tensor& g) {
      accumulate_grad(x, ops::relu_backward(g, x.value()));
    });
  }
  return y;
}

Var leaky_relu(const Var& x, real_t slope) {
  Var y = Var::make_node(ops::leaky_relu(x.value(), slope), {x});
  if (y.requires_grad()) {
    y.set_backward([x, slope](const Tensor& g) {
      accumulate_grad(x, ops::leaky_relu_backward(g, x.value(), slope));
    });
  }
  return y;
}

Var sigmoid(const Var& x) {
  Tensor out = ops::sigmoid(x.value());
  Var y = Var::make_node(out, {x});
  if (y.requires_grad()) {
    y.set_backward([x, out](const Tensor& g) {
      accumulate_grad(x, ops::sigmoid_backward(g, out));
    });
  }
  return y;
}

Var concat(const std::vector<Var>& xs) {
  std::vector<Tensor> vals;
  vals.reserve(xs.size());
  std::vector<index_t> channels;
  for (const Var& v : xs) {
    vals.push_back(v.value());
    channels.push_back(v.value().dim(1));
  }
  Var y = Var::make_node(ops::concat_channels(vals), xs);
  if (y.requires_grad()) {
    y.set_backward([xs, channels](const Tensor& g) {
      std::vector<Tensor> parts = ops::split_channels(g, channels);
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (xs[i].requires_grad()) accumulate_grad(xs[i], parts[i]);
      }
    });
  }
  return y;
}

Var reshape(const Var& x, Shape shape) {
  // clone keeps the node's value independent of the parent buffer.
  Var y = Var::make_node(x.value().clone().reshape(shape), {x});
  if (y.requires_grad()) {
    Shape orig = x.value().shape();
    y.set_backward([x, orig](const Tensor& g) {
      accumulate_grad(x, g.clone().reshape(orig));
    });
  }
  return y;
}

Var add(const Var& a, const Var& b) {
  Var y = Var::make_node(a.value().add(b.value()), {a, b});
  if (y.requires_grad()) {
    y.set_backward([a, b](const Tensor& g) {
      if (a.requires_grad()) accumulate_grad(a, g);
      if (b.requires_grad()) accumulate_grad(b, g);
    });
  }
  return y;
}

Var sub(const Var& a, const Var& b) {
  Var y = Var::make_node(a.value().sub(b.value()), {a, b});
  if (y.requires_grad()) {
    y.set_backward([a, b](const Tensor& g) {
      if (a.requires_grad()) accumulate_grad(a, g);
      if (b.requires_grad()) {
        Tensor neg = g.clone();
        neg.mul_(-1.0f);
        accumulate_grad(b, neg);
      }
    });
  }
  return y;
}

Var mul(const Var& a, const Var& b) {
  Var y = Var::make_node(a.value().mul(b.value()), {a, b});
  if (y.requires_grad()) {
    y.set_backward([a, b](const Tensor& g) {
      if (a.requires_grad()) accumulate_grad(a, g.mul(b.value()));
      if (b.requires_grad()) accumulate_grad(b, g.mul(a.value()));
    });
  }
  return y;
}

Var div(const Var& a, const Var& b) {
  Tensor out(a.value().shape());
  {
    const real_t* pa = a.value().data();
    const real_t* pb = b.value().data();
    real_t* po = out.data();
    const index_t n = out.numel();
    for (index_t i = 0; i < n; ++i) po[i] = pa[i] / pb[i];
  }
  Var y = Var::make_node(std::move(out), {a, b});
  if (y.requires_grad()) {
    y.set_backward([a, b](const Tensor& g) {
      const index_t n = g.numel();
      if (a.requires_grad()) {
        Tensor ga(g.shape());
        const real_t* pg = g.data();
        const real_t* pb = b.value().data();
        real_t* po = ga.data();
        for (index_t i = 0; i < n; ++i) po[i] = pg[i] / pb[i];
        accumulate_grad(a, ga);
      }
      if (b.requires_grad()) {
        Tensor gb(g.shape());
        const real_t* pg = g.data();
        const real_t* pa = a.value().data();
        const real_t* pb = b.value().data();
        real_t* po = gb.data();
        for (index_t i = 0; i < n; ++i) {
          po[i] = -pg[i] * pa[i] / (pb[i] * pb[i]);
        }
        accumulate_grad(b, gb);
      }
    });
  }
  return y;
}

Var add_scalar(const Var& a, real_t s) {
  Tensor out = a.value().clone();
  {
    real_t* p = out.data();
    const index_t n = out.numel();
    for (index_t i = 0; i < n; ++i) p[i] += s;
  }
  Var y = Var::make_node(std::move(out), {a});
  if (y.requires_grad()) {
    y.set_backward([a](const Tensor& g) { accumulate_grad(a, g); });
  }
  return y;
}

Var mul_scalar(const Var& a, real_t s) {
  Tensor out = a.value().clone();
  out.mul_(s);
  Var y = Var::make_node(std::move(out), {a});
  if (y.requires_grad()) {
    y.set_backward([a, s](const Tensor& g) {
      Tensor gs = g.clone();
      gs.mul_(s);
      accumulate_grad(a, gs);
    });
  }
  return y;
}

Var pow_scalar(const Var& a, real_t e) {
  Tensor out(a.value().shape());
  {
    const real_t* pa = a.value().data();
    real_t* po = out.data();
    const index_t n = out.numel();
    for (index_t i = 0; i < n; ++i) po[i] = std::pow(pa[i], e);
  }
  Var y = Var::make_node(std::move(out), {a});
  if (y.requires_grad()) {
    y.set_backward([a, e](const Tensor& g) {
      Tensor ga(g.shape());
      const real_t* pg = g.data();
      const real_t* pa = a.value().data();
      real_t* po = ga.data();
      const index_t n = g.numel();
      for (index_t i = 0; i < n; ++i) {
        po[i] = pg[i] * e * std::pow(pa[i], e - 1.0f);
      }
      accumulate_grad(a, ga);
    });
  }
  return y;
}

Var clamp_min(const Var& a, real_t floor) {
  Tensor out(a.value().shape());
  {
    const real_t* pa = a.value().data();
    real_t* po = out.data();
    const index_t n = out.numel();
    for (index_t i = 0; i < n; ++i) po[i] = pa[i] > floor ? pa[i] : floor;
  }
  Var y = Var::make_node(std::move(out), {a});
  if (y.requires_grad()) {
    y.set_backward([a, floor](const Tensor& g) {
      Tensor ga(g.shape());
      const real_t* pg = g.data();
      const real_t* pa = a.value().data();
      real_t* po = ga.data();
      const index_t n = g.numel();
      for (index_t i = 0; i < n; ++i) po[i] = pa[i] > floor ? pg[i] : 0.0f;
      accumulate_grad(a, ga);
    });
  }
  return y;
}

Var sum(const Var& a) {
  Tensor out({1});
  out.at(0) = a.value().sum();
  Var y = Var::make_node(std::move(out), {a});
  if (y.requires_grad()) {
    y.set_backward([a](const Tensor& g) {
      accumulate_grad(a, Tensor::full(a.value().shape(), g.at(0)));
    });
  }
  return y;
}

Var mean(const Var& a) {
  Tensor out({1});
  out.at(0) = a.value().mean();
  Var y = Var::make_node(std::move(out), {a});
  if (y.requires_grad()) {
    const real_t inv = 1.0f / static_cast<real_t>(a.value().numel());
    y.set_backward([a, inv](const Tensor& g) {
      accumulate_grad(a, Tensor::full(a.value().shape(), g.at(0) * inv));
    });
  }
  return y;
}

}  // namespace ccovid::autograd
