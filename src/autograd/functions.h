// Differentiable operations over Var, mirroring the inference kernels in
// src/ops. Every function computes its forward via the optimized kernels
// and registers an exact backward closure.
#pragma once

#include <vector>

#include "autograd/variable.h"
#include "ops/ops.h"

namespace ccovid::autograd {

// --- convolution family ------------------------------------------------
Var conv2d(const Var& x, const Var& w, const Var& b, ops::Conv2dParams p,
           const ops::KernelOptions& opt = ops::KernelOptions::all());
Var deconv2d(const Var& x, const Var& w, const Var& b, ops::Deconv2dParams p,
             const ops::KernelOptions& opt = ops::KernelOptions::all());
Var conv3d(const Var& x, const Var& w, const Var& b, ops::Conv3dParams p);
Var linear(const Var& x, const Var& w, const Var& b);

// --- normalization ------------------------------------------------------
/// Batch norm with running-stat tracking. In training mode normalizes by
/// batch statistics and updates running_mean/var in place (momentum is
/// the fraction of the new batch statistic); in eval mode uses the
/// running statistics and records no gradient w.r.t. them.
Var batch_norm(const Var& x, const Var& gamma, const Var& beta,
               Tensor& running_mean, Tensor& running_var, bool training,
               real_t momentum = 0.1f, real_t eps = 1e-5f);

// --- pooling / resampling ----------------------------------------------
Var max_pool2d(const Var& x, ops::Pool2dParams p);
Var avg_pool2d(const Var& x, ops::Pool2dParams p);
Var unpool2d(const Var& x, index_t scale = 2);
Var max_pool3d(const Var& x, ops::Pool3dParams p);
Var avg_pool3d(const Var& x, ops::Pool3dParams p);
Var global_avg_pool3d(const Var& x);

// --- activations ---------------------------------------------------------
Var relu(const Var& x);
Var leaky_relu(const Var& x, real_t slope = 0.01f);
Var sigmoid(const Var& x);

// --- structure ------------------------------------------------------------
Var concat(const std::vector<Var>& xs);
Var reshape(const Var& x, Shape shape);

// --- elementwise algebra ---------------------------------------------------
Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);
Var div(const Var& a, const Var& b);
Var add_scalar(const Var& a, real_t s);
Var mul_scalar(const Var& a, real_t s);
/// Elementwise power with constant exponent; inputs must be positive
/// when e is non-integral (callers clamp first).
Var pow_scalar(const Var& a, real_t e);
/// max(x, floor): gradient passes only where x > floor.
Var clamp_min(const Var& a, real_t floor);

// --- reductions --------------------------------------------------------------
Var sum(const Var& a);
Var mean(const Var& a);

}  // namespace ccovid::autograd
