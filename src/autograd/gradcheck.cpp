#include "autograd/gradcheck.h"

#include <cmath>
#include <stdexcept>

namespace ccovid::autograd {

Tensor numerical_gradient(const std::function<double()>& f, Tensor& x,
                          double eps) {
  Tensor g(x.shape());
  real_t* xp = x.data();
  real_t* gp = g.data();
  const index_t n = x.numel();
  for (index_t i = 0; i < n; ++i) {
    const real_t orig = xp[i];
    xp[i] = orig + static_cast<real_t>(eps);
    const double f_plus = f();
    xp[i] = orig - static_cast<real_t>(eps);
    const double f_minus = f();
    xp[i] = orig;
    gp[i] = static_cast<real_t>((f_plus - f_minus) / (2.0 * eps));
  }
  return g;
}

double gradient_error(const Tensor& analytic, const Tensor& numerical) {
  if (analytic.shape() != numerical.shape()) {
    throw std::invalid_argument("gradient_error: shape mismatch");
  }
  const real_t* a = analytic.data();
  const real_t* b = numerical.data();
  const index_t n = analytic.numel();
  double worst = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const double denom = std::max(1.0, std::fabs(double(b[i])));
    worst = std::max(worst, std::fabs(double(a[i]) - b[i]) / denom);
  }
  return worst;
}

}  // namespace ccovid::autograd
