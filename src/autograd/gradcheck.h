// Numerical gradient checking for the autograd test suite: central
// finite differences of a scalar-valued function against the analytic
// gradients produced by backward().
#pragma once

#include <functional>

#include "core/tensor.h"

namespace ccovid::autograd {

/// Central-difference gradient of `f` (a scalar function of the current
/// contents of `x`): g[i] = (f(x + eps e_i) - f(x - eps e_i)) / (2 eps).
/// `x` is restored afterwards.
Tensor numerical_gradient(const std::function<double()>& f, Tensor& x,
                          double eps = 1e-3);

/// Max elementwise |analytic - numerical| / max(1, |numerical|).
double gradient_error(const Tensor& analytic, const Tensor& numerical);

}  // namespace ccovid::autograd
