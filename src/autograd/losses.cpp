#include "autograd/losses.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "metrics/image_quality.h"

namespace ccovid::autograd {

namespace {

// (1, 1, k, k) separable Gaussian window as a convolution weight.
Tensor gaussian_window_2d(index_t size, double sigma) {
  const Tensor w1 = metrics::gaussian_window(size, sigma);
  Tensor w2({1, 1, size, size});
  for (index_t i = 0; i < size; ++i) {
    for (index_t j = 0; j < size; ++j) {
      w2.at(0, 0, i, j) = w1.at(i) * w1.at(j);
    }
  }
  return w2;
}

struct SsimTerms {
  Var luminance_contrast;  ///< mean of the full SSIM map
  Var contrast;            ///< mean of the cs map
};

// One SSIM scale over (N, 1, H, W) batches, "valid" windows.
SsimTerms ssim_scale(const Var& x, const Var& y, const Var& win, double c1,
                     double c2) {
  const ops::Conv2dParams valid{1, 0};
  const Var undef_bias;
  const Var mu_x = conv2d(x, win, undef_bias, valid);
  const Var mu_y = conv2d(y, win, undef_bias, valid);
  const Var xx = conv2d(mul(x, x), win, undef_bias, valid);
  const Var yy = conv2d(mul(y, y), win, undef_bias, valid);
  const Var xy = conv2d(mul(x, y), win, undef_bias, valid);

  const Var mu_xx = mul(mu_x, mu_x);
  const Var mu_yy = mul(mu_y, mu_y);
  const Var mu_xy = mul(mu_x, mu_y);
  const Var var_x = sub(xx, mu_xx);
  const Var var_y = sub(yy, mu_yy);
  const Var cov = sub(xy, mu_xy);

  const Var l = div(add_scalar(mul_scalar(mu_xy, 2.0f), real_t(c1)),
                    add_scalar(add(mu_xx, mu_yy), real_t(c1)));
  const Var cs = div(add_scalar(mul_scalar(cov, 2.0f), real_t(c2)),
                     add_scalar(add(var_x, var_y), real_t(c2)));
  return {mean(mul(l, cs)), mean(cs)};
}

}  // namespace

Var mse_loss(const Var& pred, const Tensor& target) {
  if (pred.value().shape() != target.shape()) {
    throw std::invalid_argument("mse_loss: shape mismatch");
  }
  const Var t(target, /*requires_grad=*/false);
  const Var d = sub(pred, t);
  return mean(mul(d, d));
}

Var ms_ssim(const Var& pred, const Tensor& target, index_t window,
            double sigma, double data_range, int scales) {
  if (pred.value().rank() != 4 || pred.value().dim(1) != 1) {
    throw std::invalid_argument("ms_ssim: expected (N, 1, H, W)");
  }
  if (pred.value().shape() != target.shape()) {
    throw std::invalid_argument("ms_ssim: shape mismatch");
  }
  static const double kWeights[5] = {0.0448, 0.2856, 0.3001, 0.2363,
                                     0.1333};
  if (scales < 1 || scales > 5) {
    throw std::invalid_argument("ms_ssim: scales in [1, 5]");
  }
  // Same usable-scale rule as metrics::ms_ssim.
  int usable = 0;
  {
    index_t m = std::min(pred.value().dim(2), pred.value().dim(3));
    while (usable < scales && m >= window) {
      ++usable;
      m /= 2;
    }
  }
  if (usable == 0) {
    throw std::invalid_argument("ms_ssim: image smaller than window");
  }
  double wsum = 0.0;
  for (int s = 0; s < usable; ++s) wsum += kWeights[s];

  const double c1 = (0.01 * data_range) * (0.01 * data_range);
  const double c2 = (0.03 * data_range) * (0.03 * data_range);
  const Var win(gaussian_window_2d(window, sigma), /*requires_grad=*/false);
  const ops::Pool2dParams down{2, 2, 0};

  Var x = pred;
  Var y(target, /*requires_grad=*/false);
  Var result;
  for (int s = 0; s < usable; ++s) {
    const SsimTerms terms = ssim_scale(x, y, win, c1, c2);
    const double weight = kWeights[s] / wsum;
    const Var term = (s == usable - 1) ? terms.luminance_contrast
                                       : terms.contrast;
    const Var factor =
        pow_scalar(clamp_min(term, 1e-8f), static_cast<real_t>(weight));
    result = result.defined() ? mul(result, factor) : factor;
    if (s + 1 < usable) {
      x = avg_pool2d(x, down);
      y = avg_pool2d(y, down);
    }
  }
  return result;
}

Var enhancement_loss(const Var& pred, const Tensor& target,
                     real_t msssim_weight, index_t window, int scales) {
  const Var mse_term = mse_loss(pred, target);
  const Var ms = ms_ssim(pred, target, window, 1.5, 1.0, scales);
  // mse + w * (1 - msssim)
  const Var one_minus = add_scalar(mul_scalar(ms, -1.0f), 1.0f);
  return add(mse_term, mul_scalar(one_minus, msssim_weight));
}

Var bce_with_logits_loss(const Var& logits, const Tensor& targets) {
  if (logits.value().shape() != targets.shape()) {
    throw std::invalid_argument("bce_with_logits: shape mismatch");
  }
  const index_t n = targets.numel();
  // Stable forward: max(z,0) - z*y + log(1 + exp(-|z|)).
  Tensor out({1});
  {
    const real_t* z = logits.value().data();
    const real_t* y = targets.data();
    double acc = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const double zi = z[i], yi = y[i];
      acc += std::max(zi, 0.0) - zi * yi + std::log1p(std::exp(-std::fabs(zi)));
    }
    out.at(0) = static_cast<real_t>(acc / static_cast<double>(n));
  }
  Var y_var = Var::make_node(std::move(out), {logits});
  if (y_var.requires_grad()) {
    Tensor t = targets.clone();
    y_var.set_backward([logits, t, n](const Tensor& g) {
      // d/dz = (sigmoid(z) - y) / N.
      Tensor gz(logits.value().shape());
      const real_t* z = logits.value().data();
      const real_t* y = t.data();
      real_t* p = gz.data();
      const real_t scale = g.at(0) / static_cast<real_t>(n);
      for (index_t i = 0; i < n; ++i) {
        const double s = 1.0 / (1.0 + std::exp(-static_cast<double>(z[i])));
        p[i] = scale * static_cast<real_t>(s - y[i]);
      }
      accumulate_grad(logits, gz);
    });
  }
  return y_var;
}

}  // namespace ccovid::autograd
