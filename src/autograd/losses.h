// Differentiable loss functions.
//
// Enhancement AI trains with the paper's composite loss (Eq. 1):
//     L = ||y - f(x)||^2 + 0.1 * (1 - MS-SSIM(y, f(x)))
// The MS-SSIM term is built from autograd primitives (Gaussian-window
// convolutions, elementwise algebra, average-pool pyramid), so its
// gradient is exact rather than approximated.
//
// Classification AI trains with binary cross-entropy (Eq. 2), fused with
// the sigmoid for numerical stability.
#pragma once

#include "autograd/functions.h"

namespace ccovid::autograd {

/// Mean squared error: mean((pred - target)^2). `target` is a constant.
Var mse_loss(const Var& pred, const Tensor& target);

/// Differentiable MS-SSIM between batched single-channel images
/// (N, 1, H, W); returns a scalar Var in (0, 1]. Matches
/// metrics::ms_ssim (same window, weights, pyramid and scale-reduction
/// rule) so the training loss and the evaluation metric agree.
Var ms_ssim(const Var& pred, const Tensor& target, index_t window = 11,
            double sigma = 1.5, double data_range = 1.0, int scales = 5);

/// Eq. (1): MSE + msssim_weight * (1 - MS-SSIM).
Var enhancement_loss(const Var& pred, const Tensor& target,
                     real_t msssim_weight = 0.1f, index_t window = 11,
                     int scales = 5);

/// Eq. (2) fused with sigmoid: -mean(y*log(p) + (1-y)*log(1-p)) with
/// p = sigmoid(logits). `targets` holds 0/1 labels, same shape as logits.
Var bce_with_logits_loss(const Var& logits, const Tensor& targets);

}  // namespace ccovid::autograd
