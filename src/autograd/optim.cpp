#include "autograd/optim.h"

#include <cmath>

namespace ccovid::autograd {

Adam::Adam(std::vector<Var> params, double lr, double beta1, double beta2,
           double eps)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    m_.emplace_back(p.value().shape());
    v_.emplace_back(p.value().shape());
  }
}

void Adam::step() {
  ++step_count_;
  const double bc1 = 1.0 - std::pow(beta1_, step_count_);
  const double bc2 = 1.0 - std::pow(beta2_, step_count_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (!p.has_grad()) continue;
    const real_t* g = p.grad().data();
    real_t* w = p.value().data();
    real_t* m = m_[i].data();
    real_t* v = v_[i].data();
    const index_t n = p.value().numel();
    for (index_t j = 0; j < n; ++j) {
      m[j] = static_cast<real_t>(beta1_ * m[j] + (1.0 - beta1_) * g[j]);
      v[j] = static_cast<real_t>(beta2_ * v[j] +
                                 (1.0 - beta2_) * double(g[j]) * g[j]);
      const double m_hat = m[j] / bc1;
      const double v_hat = v[j] / bc2;
      w[j] -= static_cast<real_t>(lr_ * m_hat / (std::sqrt(v_hat) + eps_));
    }
  }
}

void Adam::zero_grad() {
  for (Var& p : params_) p.zero_grad();
}

}  // namespace ccovid::autograd
