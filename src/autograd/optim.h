// Optimizers. The paper trains every network with Adam (§3.1.1, §3.3.1):
// Enhancement AI at lr 1e-4 with the rate exponentially reduced by 0.8
// each epoch; Classification AI at lr 1e-6.
#pragma once

#include <vector>

#include "autograd/variable.h"

namespace ccovid::autograd {

class Adam {
 public:
  Adam(std::vector<Var> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);

  /// Applies one Adam update from the gradients currently accumulated in
  /// the parameters; parameters without a gradient are skipped.
  void step();

  /// Clears the accumulated gradients of all parameters.
  void zero_grad();

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }
  const std::vector<Var>& params() const { return params_; }

 private:
  std::vector<Var> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  double lr_, beta1_, beta2_, eps_;
  long step_count_ = 0;
};

/// Per-epoch multiplicative learning-rate decay (gamma = 0.8 in the
/// paper's Enhancement-AI schedule).
class ExponentialLR {
 public:
  ExponentialLR(Adam& opt, double gamma) : opt_(&opt), gamma_(gamma) {}
  void step() { opt_->set_lr(opt_->lr() * gamma_); }

 private:
  Adam* opt_;
  double gamma_;
};

}  // namespace ccovid::autograd
