#include "autograd/variable.h"

#include <stdexcept>
#include <unordered_set>

#include "autograd/engine.h"

namespace ccovid::autograd {

namespace detail {

void VarImpl::accumulate(const Tensor& g) {
  if (!grad.defined()) {
    grad = g.clone();
  } else {
    grad.add_(g);
  }
}

}  // namespace detail

namespace {
thread_local bool g_grad_enabled = true;
}

bool GradMode::enabled() { return g_grad_enabled; }
void GradMode::set_enabled(bool on) { g_grad_enabled = on; }

NoGradGuard::NoGradGuard() : prev_(GradMode::enabled()) {
  GradMode::set_enabled(false);
}
NoGradGuard::~NoGradGuard() { GradMode::set_enabled(prev_); }

Var::Var(Tensor value, bool requires_grad)
    : impl_(std::make_shared<detail::VarImpl>()) {
  impl_->value = std::move(value);
  impl_->requires_grad = requires_grad;
}

void Var::zero_grad() {
  if (impl_ && impl_->grad.defined()) impl_->grad.zero();
}

Var Var::make_node(Tensor value, std::vector<Var> parents) {
  Var v;
  v.impl_ = std::make_shared<detail::VarImpl>();
  v.impl_->value = std::move(value);
  bool req = false;
  for (const Var& p : parents) {
    if (p.defined() && p.requires_grad()) req = true;
  }
  // Only remember parents when a gradient will actually flow.
  if (req && GradMode::enabled()) {
    v.impl_->requires_grad = true;
    for (const Var& p : parents) {
      if (p.defined()) v.impl_->parents.push_back(p.impl_);
    }
  }
  return v;
}

void Var::set_backward(std::function<void(const Tensor&)> fn) {
  if (impl_ && impl_->requires_grad && GradMode::enabled()) {
    impl_->backward_fn = std::move(fn);
  }
}

Var Var::detach() const {
  Var v(impl_->value, false);
  return v;
}

void Var::backward() {
  if (!defined()) throw std::runtime_error("backward on undefined Var");
  if (value().numel() != 1) {
    throw std::runtime_error(
        "backward() without seed requires a scalar output; shape is " +
        shape().str());
  }
  backward(Tensor::ones(shape()));
}

void Var::backward(const Tensor& seed) {
  if (!defined()) throw std::runtime_error("backward on undefined Var");
  if (seed.shape() != shape()) {
    throw std::invalid_argument("backward: seed shape mismatch");
  }
  if (backward_mode() == BackwardMode::kAsync) {
    // Dependency-counting ready-queue drain (autograd/engine.h) —
    // bitwise identical to the walk below at any worker width.
    backward_async(impl_, seed);
    return;
  }
  // Iterative post-order DFS for the topological order.
  std::vector<detail::VarImpl*> order;
  std::unordered_set<detail::VarImpl*> visited;
  std::vector<std::pair<detail::VarImpl*, std::size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      detail::VarImpl* child = node->parents[next_child].get();
      ++next_child;
      if (visited.insert(child).second) stack.emplace_back(child, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  impl_->accumulate(seed);
  // Reverse topological (root first).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::VarImpl* node = *it;
    if (node->backward_fn && node->grad.defined()) {
      node->backward_fn(node->grad);
      // Release the closure (and the activations it captures) once used;
      // a second backward over the same graph is not supported.
      node->backward_fn = nullptr;
    }
  }
}

void accumulate_grad(const Var& v, const Tensor& g) {
  if (!(v.defined() && v.impl()->requires_grad)) return;
  // Under the async engine a closure's contributions are staged and
  // folded in the sequential order once the target's dependency count
  // drains; outside engine execution this accumulates directly.
  if (detail::EngineExecContext* ctx = detail::current_engine_context()) {
    detail::stage_contribution(ctx, v.impl().get(), g);
  } else {
    v.impl()->accumulate(g);
  }
}

}  // namespace ccovid::autograd
