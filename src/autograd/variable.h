// Tape-based reverse-mode automatic differentiation over Tensor.
//
// A Var wraps a value plus (when gradients are enabled and required) a
// node in the dynamically-built computation DAG. Calling backward() on a
// scalar Var runs every node's backward function, accumulating
// gradients into every contributing Var — the leaf parameters of the
// network modules among them. Two interchangeable executors share this
// tape: the single-threaded reverse-topological walk below, and the
// dependency-counting ready-queue engine (autograd/engine.h) that
// drains nodes through the work-stealing TaskEngine — bitwise-equal by
// construction and selected via backward_mode().
//
// Ownership: nodes own their parents via shared_ptr, so the graph (and
// the activations captured by backward closures) lives exactly as long
// as some downstream Var needs it.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/tensor.h"

namespace ccovid::autograd {

namespace detail {

struct VarImpl {
  Tensor value;
  Tensor grad;  ///< undefined until first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<VarImpl>> parents;
  /// Accumulates parent gradients given this node's output gradient.
  std::function<void(const Tensor&)> backward_fn;

  void accumulate(const Tensor& g);
};

}  // namespace detail

/// Global gradient-recording switch. Disable around pure inference to
/// skip graph construction entirely.
class GradMode {
 public:
  static bool enabled();
  static void set_enabled(bool on);
};

/// RAII no-grad region (cf. torch::NoGradGuard).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

class Var {
 public:
  Var() = default;
  /// Leaf variable (parameter when requires_grad, constant otherwise).
  explicit Var(Tensor value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  const Tensor& value() const { return impl_->value; }
  Tensor& value() { return impl_->value; }
  const Shape& shape() const { return impl_->value.shape(); }

  bool requires_grad() const { return impl_ && impl_->requires_grad; }

  /// Gradient accumulated by backward(); undefined tensor before any
  /// backward pass touched this Var.
  const Tensor& grad() const { return impl_->grad; }
  Tensor& grad() { return impl_->grad; }
  bool has_grad() const { return impl_ && impl_->grad.defined(); }
  void zero_grad();

  /// Reverse-mode sweep from this Var. Seeds with ones for a scalar
  /// (numel == 1); pass an explicit seed otherwise.
  void backward();
  void backward(const Tensor& seed);

  /// Detached copy: same value, no graph history.
  Var detach() const;

  // --- graph-construction plumbing (used by functions.cpp) ---
  static Var make_node(Tensor value, std::vector<Var> parents);
  void set_backward(std::function<void(const Tensor&)> fn);
  const std::shared_ptr<detail::VarImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<detail::VarImpl> impl_;
};

/// Adds `g` into the gradient buffer of `v` (allocating on first use).
/// No-op when v does not require (or propagate) gradients.
void accumulate_grad(const Var& v, const Tensor& g);

}  // namespace ccovid::autograd
