#include "core/alloc_cache.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

// Sanitizer builds must see the real allocator: interposing operator
// new/delete would hide heap bugs from ASan and recycled-block reuse
// would look like races to TSan.
#ifndef CCOVID_ALLOC_CACHE_COMPILED
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    defined(__SANITIZE_MEMORY__)
#define CCOVID_ALLOC_CACHE_COMPILED 0
#endif
#endif
#if !defined(CCOVID_ALLOC_CACHE_COMPILED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define CCOVID_ALLOC_CACHE_COMPILED 0
#endif
#endif
#ifndef CCOVID_ALLOC_CACHE_COMPILED
#define CCOVID_ALLOC_CACHE_COMPILED 1
#endif

namespace ccovid {

namespace {

#if CCOVID_ALLOC_CACHE_COMPILED

// ---- low-level state ------------------------------------------------
// Everything here is constinit / trivially destructible: operator new
// runs before main and after static destructors, so this state must
// never itself be constructed or destroyed.

struct Spinlock {
  std::atomic_flag flag = ATOMIC_FLAG_INIT;
  void lock() {
    while (flag.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() { flag.clear(std::memory_order_release); }
};

// Block header, 16 bytes, directly in front of the user pointer.
struct Header {
  std::uint64_t bytes;  // usable payload size (class size / exact size)
  std::uint32_t magic;
  std::uint32_t kind;
};
static_assert(sizeof(Header) == 16);

constexpr std::uint32_t kMagic = 0xcc01dca5u;
enum : std::uint32_t {
  kKindSmall = 1,    // pow2 class, header at p-16, base = p-16
  kKindLarge = 2,    // exact-size cached, header at p-16, base = p-16
  kKindAligned = 3,  // 64-byte-aligned pool block, header at p-16,
                     // base = p-64 (from std::aligned_alloc)
  kKindOveraligned = 4,  // over-aligned operator new, never cached;
                         // header at p-16, base = p - bytes-of-padding
                         // stashed in header.bytes' upper half
};

// Small classes: 16, 32, ..., 4096 bytes.
constexpr int kSmallClasses = 9;
constexpr std::size_t kSmallMax = 4096;

// Free small block: first word links to the next free block.
struct FreeNode {
  FreeNode* next;
};

struct SmallBin {
  Spinlock lock;
  FreeNode* head = nullptr;
  std::size_t count = 0;
};

// Exact-size caches (large + aligned) share a hashed bucket table; the
// kind participates in the match so a 64 KiB tensor block never
// masquerades as a 64 KiB vector block.
struct ExactNode {
  ExactNode* next;
};

struct ExactBin {
  Spinlock lock;
  ExactNode* head = nullptr;
  std::size_t count = 0;
};

constexpr int kExactBuckets = 256;
constexpr std::size_t kSmallBinCap = 4096;  // blocks kept per class
constexpr std::size_t kExactBinCap = 64;    // blocks kept per bucket

constinit SmallBin g_small[kSmallClasses];
constinit ExactBin g_exact[kExactBuckets];

constinit std::atomic<std::uint64_t> g_fresh{0};
constinit std::atomic<std::uint64_t> g_hits{0};
constinit std::atomic<std::uint64_t> g_puts{0};

// -1 unknown, 0 disabled (CCOVID_DISABLE_ALLOC_CACHE), 1 enabled.
constinit std::atomic<int> g_enabled{-1};

bool cache_enabled() {
  int e = g_enabled.load(std::memory_order_relaxed);
  if (e < 0) {
    const char* s = std::getenv("CCOVID_DISABLE_ALLOC_CACHE");
    e = (s != nullptr && *s != '\0' && *s != '0') ? 0 : 1;
    g_enabled.store(e, std::memory_order_relaxed);
  }
  return e == 1;
}

int small_class(std::size_t bytes) {
  std::size_t c = 16;
  int idx = 0;
  while (c < bytes) {
    c <<= 1;
    ++idx;
  }
  return idx;
}

std::size_t class_bytes(int idx) { return std::size_t{16} << idx; }

std::size_t exact_bucket(std::size_t bytes, std::uint32_t kind) {
  std::uint64_t h = bytes * 0x9e3779b97f4a7c15ULL + kind;
  h ^= h >> 29;
  return static_cast<std::size_t>(h) & (kExactBuckets - 1);
}

Header* header_of(void* p) {
  return reinterpret_cast<Header*>(static_cast<char*>(p) - sizeof(Header));
}

void* fresh_small(int idx) {
  void* base = std::malloc(sizeof(Header) + class_bytes(idx));
  if (base == nullptr) throw std::bad_alloc();
  auto* h = static_cast<Header*>(base);
  h->bytes = class_bytes(idx);
  h->magic = kMagic;
  h->kind = kKindSmall;
  g_fresh.fetch_add(1, std::memory_order_relaxed);
  return h + 1;
}

void* fresh_large(std::size_t bytes) {
  void* base = std::malloc(sizeof(Header) + bytes);
  if (base == nullptr) throw std::bad_alloc();
  auto* h = static_cast<Header*>(base);
  h->bytes = bytes;
  h->magic = kMagic;
  h->kind = kKindLarge;
  g_fresh.fetch_add(1, std::memory_order_relaxed);
  return h + 1;
}

void* pop_exact(std::size_t bytes, std::uint32_t kind) {
  ExactBin& bin = g_exact[exact_bucket(bytes, kind)];
  bin.lock.lock();
  ExactNode** link = &bin.head;
  int scanned = 0;
  while (*link != nullptr && scanned < 16) {
    ExactNode* node = *link;
    Header* h = header_of(node);
    if (h->bytes == bytes && h->kind == kind) {
      *link = node->next;
      --bin.count;
      bin.lock.unlock();
      g_hits.fetch_add(1, std::memory_order_relaxed);
      return node;
    }
    link = &node->next;
    ++scanned;
  }
  bin.lock.unlock();
  return nullptr;
}

// Returns true if the block was cached, false if the caller must free.
bool push_exact(void* p, std::size_t bytes, std::uint32_t kind) {
  ExactBin& bin = g_exact[exact_bucket(bytes, kind)];
  bin.lock.lock();
  if (bin.count >= kExactBinCap) {
    bin.lock.unlock();
    return false;
  }
  auto* node = static_cast<ExactNode*>(p);
  node->next = bin.head;
  bin.head = node;
  ++bin.count;
  bin.lock.unlock();
  g_puts.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void* cached_new(std::size_t size) {
  if (size == 0) size = 1;
  if (size <= kSmallMax) {
    const int idx = small_class(size);
    if (cache_enabled()) {
      SmallBin& bin = g_small[idx];
      bin.lock.lock();
      FreeNode* node = bin.head;
      if (node != nullptr) {
        bin.head = node->next;
        --bin.count;
        bin.lock.unlock();
        g_hits.fetch_add(1, std::memory_order_relaxed);
        return node;
      }
      bin.lock.unlock();
    }
    return fresh_small(idx);
  }
  // Round large sizes to a cache line so near-identical requests reuse
  // one pool entry.
  const std::size_t rounded = (size + 63) & ~std::size_t{63};
  if (cache_enabled()) {
    if (void* p = pop_exact(rounded, kKindLarge)) return p;
  }
  return fresh_large(rounded);
}

void cached_delete(void* p) {
  if (p == nullptr) return;
  Header* h = header_of(p);
  if (h->magic != kMagic) {
    // Not ours (e.g. allocated before this TU was linked in a partial
    // build) — fall through to the system heap untouched.
    std::free(p);
    return;
  }
  switch (h->kind) {
    case kKindSmall: {
      if (cache_enabled()) {
        const int idx = small_class(h->bytes);
        SmallBin& bin = g_small[idx];
        bin.lock.lock();
        if (bin.count < kSmallBinCap) {
          auto* node = static_cast<FreeNode*>(p);
          node->next = bin.head;
          bin.head = node;
          ++bin.count;
          bin.lock.unlock();
          g_puts.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        bin.lock.unlock();
      }
      std::free(h);
      return;
    }
    case kKindLarge: {
      if (cache_enabled() &&
          push_exact(p, static_cast<std::size_t>(h->bytes), kKindLarge)) {
        return;
      }
      std::free(h);
      return;
    }
    case kKindAligned: {
      if (cache_enabled() &&
          push_exact(p, static_cast<std::size_t>(h->bytes), kKindAligned)) {
        return;
      }
      std::free(static_cast<char*>(p) - 64);
      return;
    }
    case kKindOveraligned: {
      std::free(static_cast<char*>(p) -
                static_cast<std::size_t>(h->bytes >> 32));
      return;
    }
    default:
      std::free(p);
  }
}

void* cached_new_aligned(std::size_t size, std::size_t align) {
  // Rare path (alignas > 16 types). Allocate align extra bytes up
  // front, return base + align, stash the padding in the header.
  if (align < alignof(std::max_align_t)) return cached_new(size);
  const std::size_t total = ((size + align - 1) / align + 1) * align;
  void* base = std::aligned_alloc(align, total);
  if (base == nullptr) throw std::bad_alloc();
  void* p = static_cast<char*>(base) + align;
  Header* h = header_of(p);
  h->bytes = (static_cast<std::uint64_t>(align) << 32);
  h->magic = kMagic;
  h->kind = kKindOveraligned;
  g_fresh.fetch_add(1, std::memory_order_relaxed);
  return p;
}

#endif  // CCOVID_ALLOC_CACHE_COMPILED

}  // namespace

bool alloc_cache_active() {
#if CCOVID_ALLOC_CACHE_COMPILED
  return cache_enabled();
#else
  return false;
#endif
}

std::uint64_t fresh_system_allocs() {
#if CCOVID_ALLOC_CACHE_COMPILED
  return g_fresh.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

AllocCacheStats alloc_cache_stats() {
  AllocCacheStats s;
#if CCOVID_ALLOC_CACHE_COMPILED
  s.fresh_system_allocs = g_fresh.load(std::memory_order_relaxed);
  s.cached_allocs = g_hits.load(std::memory_order_relaxed);
  s.cached_frees = g_puts.load(std::memory_order_relaxed);
#endif
  return s;
}

void* cache_aligned_alloc(std::size_t bytes) {
#if CCOVID_ALLOC_CACHE_COMPILED
  // Key on the padded size so equal tensor shapes share pool entries.
  // Clamp to one cache line so a zero-byte request still owns a
  // distinct, header-backed block.
  const std::size_t padded =
      bytes == 0 ? 64 : (bytes + 63) & ~std::size_t{63};
  if (cache_enabled()) {
    if (void* p = pop_exact(padded, kKindAligned)) return p;
  }
  // Layout: [64-byte skirt | payload]; header occupies the last 16
  // bytes of the skirt so the payload keeps 64-byte alignment.
  void* base = std::aligned_alloc(64, 64 + padded);
  if (base == nullptr) throw std::bad_alloc();
  void* p = static_cast<char*>(base) + 64;
  Header* h = header_of(p);
  h->bytes = padded;
  h->magic = kMagic;
  h->kind = kKindAligned;
  g_fresh.fetch_add(1, std::memory_order_relaxed);
  return p;
#else
  const std::size_t padded = (bytes + 63) & ~std::size_t{63};
  void* p = std::aligned_alloc(64, padded == 0 ? 64 : padded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
#endif
}

void cache_aligned_free(void* p) {
  if (p == nullptr) return;
#if CCOVID_ALLOC_CACHE_COMPILED
  cached_delete(p);
#else
  std::free(p);
#endif
}

}  // namespace ccovid

#if CCOVID_ALLOC_CACHE_COMPILED

// ---- global operator new/delete replacement -------------------------
// Defined here (same TU as cache_aligned_alloc) so any binary that uses
// Tensor pulls this object file out of the static library and gets the
// replacement allocator with it.

void* operator new(std::size_t size) { return ccovid::cached_new(size); }
void* operator new[](std::size_t size) { return ccovid::cached_new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return ccovid::cached_new(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return ccovid::cached_new(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t align) {
  return ccovid::cached_new_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ccovid::cached_new_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { ccovid::cached_delete(p); }
void operator delete[](void* p) noexcept { ccovid::cached_delete(p); }
void operator delete(void* p, std::size_t) noexcept {
  ccovid::cached_delete(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  ccovid::cached_delete(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  ccovid::cached_delete(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  ccovid::cached_delete(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ccovid::cached_delete(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ccovid::cached_delete(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  ccovid::cached_delete(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ccovid::cached_delete(p);
}

#endif  // CCOVID_ALLOC_CACHE_COMPILED
