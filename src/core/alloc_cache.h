// Recycling allocation cache backing the zero-allocation inference hot
// path.
//
// Two layers, both defined in alloc_cache.cpp:
//
//  1. A global operator new/delete replacement that services small
//     requests (<= 4 KiB) from power-of-two freelists and larger ones
//     from an exact-size hashed cache. After warm-up every transient
//     allocation the forward pass makes (autograd nodes, shared_ptr
//     control blocks, std::function states, vectors) is a cache hit —
//     the system heap is never entered.
//  2. cache_aligned_alloc/free: 64-byte-aligned block pool used by
//     Tensor storage, exact-size keyed so the steady-state tensor
//     shapes of a model recycle perfectly.
//
// The cache counts *fresh* system allocations (cache misses) separately
// from recycled hits; tests/test_alloc.cpp asserts the fresh count stays
// flat across steady-state inference iterations — the measurable meaning
// of "zero heap allocations after warm-up".
//
// The whole subsystem is compiled out under ASan/TSan/MSan (interposing
// operator new would blind the sanitizers) and can be disabled at
// runtime with CCOVID_DISABLE_ALLOC_CACHE=1; alloc_cache_active()
// reports the effective state so tests can skip rather than fail.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ccovid {

struct AllocCacheStats {
  /// Allocations that had to touch the system heap (cache misses plus
  /// everything before the cache warmed up).
  std::uint64_t fresh_system_allocs = 0;
  /// Allocations served by recycling a previously freed block.
  std::uint64_t cached_allocs = 0;
  /// Blocks returned to the cache instead of the system heap.
  std::uint64_t cached_frees = 0;
};

/// True when the recycling cache is compiled in AND enabled at runtime.
bool alloc_cache_active();

/// Monotonic count of fresh system-heap allocations (see stats).
std::uint64_t fresh_system_allocs();

AllocCacheStats alloc_cache_stats();

/// 64-byte-aligned allocation from the exact-size block pool. `bytes`
/// need not be a multiple of the alignment. Never returns nullptr
/// (throws std::bad_alloc). Pair with cache_aligned_free.
void* cache_aligned_alloc(std::size_t bytes);
void cache_aligned_free(void* p);

}  // namespace ccovid
