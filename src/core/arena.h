// Per-thread scratch arenas for kernel workspace.
//
// Hot kernels (im2col staging, GEMM panel packing, FBP filtering rows)
// need short-lived buffers whose size repeats every call. Allocating
// them from the heap per call costs a lock + page faults; a bump arena
// costs two pointer adjustments and, after the first call warmed the
// chunk up, performs zero heap allocations — the load-bearing property
// behind the steady-state zero-allocation guarantee (tests/test_alloc).
//
// Usage — strictly LIFO, enforced by RAII:
//
//   ArenaScope scope;                       // marks this thread's arena
//   real_t* buf = scope.alloc_floats(n);    // valid until scope exits
//   ...
//   // scope destructor rewinds the arena; buf is dead.
//
// Lifetime rules (also documented in DESIGN.md):
//  * a pointer obtained from a scope is valid only until that scope's
//    destructor runs — never store it in a structure that outlives the
//    kernel invocation;
//  * scopes nest (inner scopes rewind before outer ones) but must not
//    interleave across threads: each thread has its own arena, and a
//    parallel_for body that needs scratch opens its OWN ArenaScope so
//    the allocation lands in the executing worker's arena;
//  * a buffer allocated by the master BEFORE a parallel_for (e.g. the
//    shared im2col staging area) may be read/written by workers inside
//    the loop — the arena only dictates who frees, not who touches.
//
// Chunks grow geometrically and are never returned to the heap while
// the thread lives, so a fixed workload reaches a fixed footprint and
// stays there.
#pragma once

#include <cstddef>
#include <cstring>
#include <vector>

#include "core/alloc_cache.h"
#include "core/types.h"

namespace ccovid {

class ScratchArena {
 public:
  struct Mark {
    std::size_t chunk;
    std::size_t top;
  };

  ScratchArena() = default;
  ~ScratchArena() {
    for (Chunk& c : chunks_) cache_aligned_free(c.data);
  }
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// 64-byte-aligned scratch block; contents are uninitialized.
  void* alloc(std::size_t bytes) {
    bytes = (bytes + 63) & ~std::size_t{63};
    while (active_ < chunks_.size()) {
      Chunk& c = chunks_[active_];
      if (c.top + bytes <= c.cap) {
        void* p = c.data + c.top;
        c.top += bytes;
        return p;
      }
      if (active_ + 1 == chunks_.size()) break;
      ++active_;
      chunks_[active_].top = 0;
    }
    grow(bytes);
    Chunk& c = chunks_[active_];
    void* p = c.data;
    c.top = bytes;
    return p;
  }

  real_t* alloc_floats(index_t n) {
    return static_cast<real_t*>(
        alloc(static_cast<std::size_t>(n) * sizeof(real_t)));
  }
  double* alloc_doubles(index_t n) {
    return static_cast<double*>(
        alloc(static_cast<std::size_t>(n) * sizeof(double)));
  }

  Mark mark() const {
    return Mark{active_, chunks_.empty() ? 0 : chunks_[active_].top};
  }

  void rewind(Mark m) {
    if (chunks_.empty()) return;
    for (std::size_t i = m.chunk + 1; i < chunks_.size(); ++i) {
      chunks_[i].top = 0;
    }
    active_ = m.chunk;
    chunks_[active_].top = m.top;
  }

  /// Total bytes of chunk capacity this arena holds (tests/metrics).
  std::size_t capacity() const {
    std::size_t c = 0;
    for (const Chunk& ch : chunks_) c += ch.cap;
    return c;
  }

 private:
  struct Chunk {
    char* data;
    std::size_t cap;
    std::size_t top;
  };

  void grow(std::size_t need) {
    std::size_t cap = chunks_.empty() ? kInitialChunk : chunks_.back().cap * 2;
    if (cap < need) cap = need;
    chunks_.push_back(
        Chunk{static_cast<char*>(cache_aligned_alloc(cap)), cap, 0});
    active_ = chunks_.size() - 1;
  }

  static constexpr std::size_t kInitialChunk = 256 * 1024;

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
};

/// The calling thread's arena (engine workers, serve workers, and the
/// main thread each get their own lazily).
inline ScratchArena& this_thread_arena() {
  thread_local ScratchArena arena;
  return arena;
}

/// RAII mark/rewind over this thread's arena. All scratch taken through
/// the scope dies when the scope does.
class ArenaScope {
 public:
  ArenaScope() : arena_(this_thread_arena()), mark_(arena_.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  void* alloc(std::size_t bytes) { return arena_.alloc(bytes); }
  real_t* alloc_floats(index_t n) { return arena_.alloc_floats(n); }
  double* alloc_doubles(index_t n) { return arena_.alloc_doubles(n); }

 private:
  ScratchArena& arena_;
  ScratchArena::Mark mark_;
};

}  // namespace ccovid
