#include "core/counters.h"

#include <sstream>

namespace ccovid {

std::string OpCounters::str() const {
  std::ostringstream os;
  os << "loads=" << global_loads << " stores=" << global_stores
     << " flops=" << flops;
  return os.str();
}

OpCounters& tls_counters() {
  thread_local OpCounters counters;
  return counters;
}

void reset_tls_counters() { tls_counters().reset(); }

}  // namespace ccovid
