// Operation counters for the Table 6 reproduction.
//
// The paper obtains its global-memory load/store and floating-point
// operation counts "by implementing counters in each kernel" (§5,
// Table 6, footnote 2). We do the same: the instrumented kernel variants
// in src/ops accumulate into a thread-local OpCounters that can be
// collected into a global tally. The fast (non-instrumented) kernels
// never touch these, so production inference pays nothing.
#pragma once

#include <cstdint>
#include <string>

#include "core/types.h"

namespace ccovid {

struct OpCounters {
  std::uint64_t global_loads = 0;   ///< reads from tensor storage
  std::uint64_t global_stores = 0;  ///< writes to tensor storage
  std::uint64_t flops = 0;          ///< floating-point mul/add/div/cmp ops

  OpCounters& operator+=(const OpCounters& o) {
    global_loads += o.global_loads;
    global_stores += o.global_stores;
    flops += o.flops;
    return *this;
  }
  void reset() { *this = OpCounters{}; }

  std::string str() const;
};

/// Per-thread active counter used by instrumented kernels; never null.
OpCounters& tls_counters();

/// Zeroes the calling thread's counter.
void reset_tls_counters();

}  // namespace ccovid
