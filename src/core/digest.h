// FNV-1a 64-bit digests over raw bytes and tensor storage — the shared
// fingerprint primitive of (a) the golden-trace test harness (bitwise
// regression detection across refactors, tests/test_golden.cpp) and
// (b) the guarded dist transport (per-message checksums detecting
// bit-flipped payloads, src/dist/comm.h). FNV-1a is not cryptographic;
// it is cheap, dependency-free, and collision-resistant enough for
// corruption detection and change detection.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/tensor.h"

namespace ccovid {

inline constexpr std::uint64_t kFnv1aOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/// FNV-1a over `size` bytes, chainable via `h`.
inline std::uint64_t fnv1a64(const void* data, std::size_t size,
                             std::uint64_t h = kFnv1aOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]);
    h *= kFnv1aPrime;
  }
  return h;
}

/// Digest of a tensor's element bytes (shape is NOT mixed in; callers
/// comparing digests implicitly compare equal-shaped outputs).
inline std::uint64_t fnv1a64(const Tensor& t,
                             std::uint64_t h = kFnv1aOffset) {
  if (t.numel() == 0 || t.data() == nullptr) return h;
  return fnv1a64(t.data(),
                 static_cast<std::size_t>(t.numel()) * sizeof(real_t), h);
}

}  // namespace ccovid
