#include "core/env.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ccovid::env {

std::optional<std::string> get(const char* name) {
  const char* v = std::getenv(name);
  if (!v) return std::nullopt;
  return std::string(v);
}

std::string lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::optional<std::string> choice(const char* name,
                                  const std::vector<std::string>& allowed,
                                  const char* fallback_desc) {
  const auto raw = get(name);
  if (!raw) return std::nullopt;
  const std::string v = lower(*raw);
  for (const std::string& a : allowed) {
    if (v == a) return v;
  }
  std::string want;
  for (std::size_t i = 0; i < allowed.size(); ++i) {
    if (i) want += '|';
    want += allowed[i];
  }
  std::fprintf(stderr, "ccovid: %s: unknown value '%s' (want %s); using %s\n",
               name, raw->c_str(), want.c_str(), fallback_desc);
  return std::nullopt;
}

}  // namespace ccovid::env
