// Shared environment-variable parsing for the runtime knobs
// (CCOVID_SIMD, CCOVID_GRAPH_FUSION, CCOVID_PRECISION, ...).
//
// Every knob goes through env_choice() so that an unknown value warns
// ONCE on stderr — naming the variable, the offending value, the
// accepted spellings, and the fallback actually used — instead of
// silently falling back. A typo'd CCOVID_PRECISION=pf16 that silently
// ran fp32 would invalidate a benchmark without anyone noticing; the
// warning is the fix.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace ccovid::env {

/// Raw getenv as an optional (nullopt when unset).
std::optional<std::string> get(const char* name);

/// Lowercased copy (ASCII) — knob values are case-insensitive.
std::string lower(std::string s);

/// Reads `name` and matches its lowercased value against `allowed`.
/// Returns the matched spelling; nullopt when the variable is unset OR
/// set to something unknown. The unknown case prints one stderr
/// warning of the form
///   ccovid: NAME: unknown value 'V' (want a|b|c); using FALLBACK
/// so the caller can apply its default without a second message.
std::optional<std::string> choice(const char* name,
                                  const std::vector<std::string>& allowed,
                                  const char* fallback_desc);

}  // namespace ccovid::env
