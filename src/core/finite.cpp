#include "core/finite.h"

#include <cmath>

namespace ccovid {

index_t count_nonfinite(const Tensor& t) {
  if (t.data() == nullptr) return 0;
  index_t bad = 0;
  const real_t* p = t.data();
  const index_t n = t.numel();
  for (index_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) ++bad;
  }
  return bad;
}

void finite_check(const Tensor& t, const char* stage) {
  const index_t bad = count_nonfinite(t);
  if (bad > 0) {
    throw StageError(stage, std::to_string(bad) +
                                " non-finite element(s) in stage output");
  }
}

}  // namespace ccovid
