// Non-finite sentinels. A NaN produced deep inside a kernel (or injected
// by a failpoint) propagates silently through every downstream stage and
// surfaces as a garbage diagnosis; finite_check() converts that silent
// propagation into a typed StageError at the stage boundary where it
// first appeared, which is what the serving runtime's retry/degrade
// logic and the chaos harness key on.
#pragma once

#include <stdexcept>
#include <string>

#include "core/tensor.h"
#include "core/types.h"

namespace ccovid {

/// Typed error carrying the `layer.component` name of the stage whose
/// output failed validation (naming convention shared with failpoints,
/// see src/fault/failpoint.h).
class StageError : public std::runtime_error {
 public:
  StageError(std::string stage, const std::string& message)
      : std::runtime_error(stage + ": " + message), stage_(std::move(stage)) {}
  const std::string& stage() const { return stage_; }

 private:
  std::string stage_;
};

/// Number of NaN/Inf elements in `t` (0 for empty tensors).
index_t count_nonfinite(const Tensor& t);

/// Throws StageError(stage) when `t` contains any NaN/Inf element.
void finite_check(const Tensor& t, const char* stage);

}  // namespace ccovid
