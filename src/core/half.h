// Scalar fp16 (IEEE binary16) and bf16 (bfloat16) <-> fp32 bit
// conversions, written to be BITWISE identical to the x86 hardware
// instructions the AVX2 backend uses (VCVTPH2PS / VCVTPS2PH with
// round-to-nearest-even), including the awkward corners:
//
//   - subnormal halves are produced and consumed exactly (no FTZ/DAZ),
//   - overflow rounds to infinity at the RNE boundary (65520 for fp16),
//   - signalling NaNs are quietened with the payload truncated the way
//     the conversion instructions truncate it,
//   - signed zero survives both directions.
//
// These functions define the storage-format contract: the scalar and
// sse2 SIMD backends call them per lane, the avx2 backend uses F16C,
// and tests/test_lowprec.cpp proves all three agree on every one of
// the 65536 half patterns plus fuzzed f32 inputs. bf16 has no x86
// conversion instruction below AVX512-BF16, so every backend shares
// the integer implementations here (truncation + RNE carry).
#pragma once

#include <cstdint>
#include <cstring>

#include "core/types.h"

namespace ccovid {

namespace detail {
CCOVID_ALWAYS_INLINE std::uint32_t f32_bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}
CCOVID_ALWAYS_INLINE float bits_f32(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}
}  // namespace detail

/// fp32 -> fp16 bits, round-to-nearest-even. Matches VCVTPS2PH.
inline std::uint16_t f32_to_f16_bits(float f) {
  std::uint32_t x = detail::f32_bits(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  x &= 0x7FFFFFFFu;
  if (x >= 0x7F800000u) {  // Inf / NaN: quieten, truncate payload.
    const std::uint32_t m = x & 0x7FFFFFu;
    return static_cast<std::uint16_t>(
        sign | 0x7C00u | (m ? (0x200u | (m >> 13)) : 0u));
  }
  if (x >= 0x47800000u) {  // >= 2^16: past the RNE boundary for sure.
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (x >= 0x38800000u) {  // normal half range [2^-14, 65536)
    // Round the low 13 mantissa bits in integer space; a mantissa
    // carry bumps the exponent, and a carry out of the top normal
    // exponent lands exactly on the infinity encoding — which is the
    // correct RNE behaviour for (65504, 65536).
    const std::uint32_t r = x + 0xFFFu + ((x >> 13) & 1u);
    return static_cast<std::uint16_t>(sign |
                                      (((r - 0x38000000u) >> 13) & 0x7FFFu));
  }
  if (x < 0x33000000u) {  // < 2^-25: underflows to zero (2^-25 ties to 0)
    return static_cast<std::uint16_t>(sign);
  }
  // Subnormal half: value = m * 2^(e-150), result = RNE(m * 2^(e-126))
  // as an integer in [0, 1024).
  const std::uint32_t e = x >> 23;
  const std::uint32_t m = (x & 0x7FFFFFu) | 0x800000u;
  const std::uint32_t shift = 126u - e;  // 14..24
  const std::uint32_t half = 1u << (shift - 1);
  const std::uint32_t r = (m + half - 1u + ((m >> shift) & 1u)) >> shift;
  return static_cast<std::uint16_t>(sign | r);
}

/// fp32 -> fp16 bits with subnormal RESULTS flushed to signed zero.
/// This is the conversion the inference storage path actually uses:
/// widening a subnormal half (VCVTPH2PS) takes a microcode assist on
/// common Xeon parts — measured 3-4x on the convolution row kernels —
/// so the executor never writes one. Any result whose exponent field
/// is zero keeps only its sign bit. Every SIMD backend applies the
/// identical flush (scalar/sse2 per lane, avx2 as a vector mask after
/// VCVTPS2PH), so lane determinism holds; f32_to_f16_bits above stays
/// the pure IEEE conversion for round-trip tests and golden oracles.
inline std::uint16_t f32_to_f16_bits_ftz(float f) {
  std::uint16_t h = f32_to_f16_bits(f);
  if ((h & 0x7C00u) == 0u) h &= 0x8000u;
  return h;
}

/// fp16 bits -> fp32 (exact: every half value is representable).
/// Matches VCVTPH2PS, including sNaN quietening.
inline float f16_bits_to_f32(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  std::uint32_t e = (h >> 10) & 0x1Fu;
  std::uint32_t m = h & 0x3FFu;
  if (e == 0x1Fu) {  // Inf / NaN; quiet bit forced like cvtph2ps.
    std::uint32_t out = sign | 0x7F800000u | (m << 13);
    if (m) out |= 0x400000u;
    return detail::bits_f32(out);
  }
  if (e == 0) {
    if (m == 0) return detail::bits_f32(sign);  // +/- 0
    // Subnormal: normalize into f32's always-normal range.
    std::uint32_t s = 0;
    while (!(m & 0x400u)) {
      m <<= 1;
      ++s;
    }
    m &= 0x3FFu;
    return detail::bits_f32(sign | ((113u - s) << 23) | (m << 13));
  }
  return detail::bits_f32(sign | ((e + 112u) << 23) | (m << 13));
}

/// fp32 -> bf16 bits, round-to-nearest-even; NaN quietened with the
/// top payload bits kept (never collapses a NaN to infinity).
inline std::uint16_t f32_to_bf16_bits(float f) {
  const std::uint32_t x = detail::f32_bits(f);
  if ((x & 0x7FFFFFFFu) > 0x7F800000u) {
    return static_cast<std::uint16_t>((x >> 16) | 0x40u);
  }
  return static_cast<std::uint16_t>((x + 0x7FFFu + ((x >> 16) & 1u)) >> 16);
}

/// bf16 bits -> fp32: exact by construction (bf16 is truncated fp32).
inline float bf16_bits_to_f32(std::uint16_t h) {
  return detail::bits_f32(static_cast<std::uint32_t>(h) << 16);
}

}  // namespace ccovid
