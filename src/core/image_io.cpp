#include "core/image_io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace ccovid {

void write_pgm(const std::string& path, const Tensor& image, real_t lo,
               real_t hi) {
  if (image.rank() != 2) {
    throw std::invalid_argument("write_pgm: expected rank-2 tensor, got " +
                                image.shape().str());
  }
  if (lo == hi) {
    lo = image.min();
    hi = image.max();
    if (lo == hi) hi = lo + 1.0f;
  }
  const index_t h = image.dim(0);
  const index_t w = image.dim(1);
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("write_pgm: cannot open " + path);
  f << "P5\n" << w << ' ' << h << "\n255\n";
  const real_t* p = image.data();
  std::vector<unsigned char> row(static_cast<std::size_t>(w));
  const real_t scale = 255.0f / (hi - lo);
  for (index_t y = 0; y < h; ++y) {
    for (index_t x = 0; x < w; ++x) {
      const real_t v = std::clamp((p[y * w + x] - lo) * scale, 0.0f, 255.0f);
      row[static_cast<std::size_t>(x)] =
          static_cast<unsigned char>(std::lround(v));
    }
    f.write(reinterpret_cast<const char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
  }
  if (!f) throw std::runtime_error("write_pgm: write failed for " + path);
}

Tensor read_pgm(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("read_pgm: cannot open " + path);
  std::string magic;
  f >> magic;
  if (magic != "P5") throw std::runtime_error("read_pgm: not a P5 PGM");
  index_t w = 0, h = 0;
  int maxval = 0;
  f >> w >> h >> maxval;
  if (maxval != 255) throw std::runtime_error("read_pgm: expected 8-bit");
  f.get();  // single whitespace after header
  Tensor img({h, w});
  std::vector<unsigned char> buf(static_cast<std::size_t>(w * h));
  f.read(reinterpret_cast<char*>(buf.data()),
         static_cast<std::streamsize>(buf.size()));
  if (!f) throw std::runtime_error("read_pgm: truncated file");
  real_t* p = img.data();
  for (index_t i = 0; i < w * h; ++i) {
    p[i] = static_cast<real_t>(buf[static_cast<std::size_t>(i)]) / 255.0f;
  }
  return img;
}

void write_csv(const std::string& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_csv: cannot open " + path);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) f << ',';
    f << header[i];
  }
  f << '\n';
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) f << ',';
      f << row[i];
    }
    f << '\n';
  }
  if (!f) throw std::runtime_error("write_csv: write failed for " + path);
}

}  // namespace ccovid
