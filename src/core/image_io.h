// Minimal image / table output: binary PGM for figure panels (Fig. 12's
// enhanced images and difference maps) and CSV series for loss curves and
// ROC points (Figs. 11 and 13).
#pragma once

#include <string>
#include <vector>

#include "core/tensor.h"

namespace ccovid {

/// Writes a 2-D tensor (H, W) as an 8-bit binary PGM, linearly mapping
/// [lo, hi] -> [0, 255] (values clamped). When lo == hi the image min/max
/// are used.
void write_pgm(const std::string& path, const Tensor& image, real_t lo = 0,
               real_t hi = 0);

/// Reads a binary (P5) 8-bit PGM back into a (H, W) tensor scaled to
/// [0, 1]; used by tests to round-trip figure outputs.
Tensor read_pgm(const std::string& path);

/// Writes rows of doubles with a header line, e.g. loss curves:
/// write_csv("fig11a.csv", {"epoch","train","val"}, rows).
void write_csv(const std::string& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows);

}  // namespace ccovid
