#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ccovid {

namespace {

std::atomic<int> g_num_threads{0};  // 0 = "use default"

thread_local int t_num_threads = 0;  // per-thread override; 0 = none

int default_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
#endif
}

}  // namespace

int num_threads() {
  if (t_num_threads > 0) return t_num_threads;
  const int n = g_num_threads.load(std::memory_order_relaxed);
  return n > 0 ? n : default_threads();
}

void set_num_threads(int n) {
  g_num_threads.store(n, std::memory_order_relaxed);
}

int thread_num_threads() { return t_num_threads; }

void set_thread_num_threads(int n) { t_num_threads = n > 0 ? n : 0; }

void parallel_for(index_t begin, index_t end,
                  const std::function<void(index_t)>& body, index_t grain) {
  if (end <= begin) return;
  const index_t n = end - begin;
  const int threads = num_threads();
  if (threads <= 1 || n < grain) {
    for (index_t i = begin; i < end; ++i) body(i);
    return;
  }
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(threads)
  for (index_t i = begin; i < end; ++i) body(i);
#else
  for (index_t i = begin; i < end; ++i) body(i);
#endif
}

void parallel_for_blocked(index_t begin, index_t end,
                          const std::function<void(index_t, index_t)>& body,
                          index_t grain) {
  if (end <= begin) return;
  const index_t n = end - begin;
  const int threads = num_threads();
  if (threads <= 1 || n <= grain) {
    body(begin, end);
    return;
  }
  const index_t chunks = std::min<index_t>(threads, (n + grain - 1) / grain);
  const index_t chunk = (n + chunks - 1) / chunks;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(static_cast<int>(chunks))
  for (index_t c = 0; c < chunks; ++c) {
    const index_t lo = begin + c * chunk;
    const index_t hi = std::min(end, lo + chunk);
    if (lo < hi) body(lo, hi);
  }
#else
  for (index_t c = 0; c < chunks; ++c) {
    const index_t lo = begin + c * chunk;
    const index_t hi = std::min(end, lo + chunk);
    if (lo < hi) body(lo, hi);
  }
#endif
}

}  // namespace ccovid
