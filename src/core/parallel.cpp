#include "core/parallel.h"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "core/task_engine.h"

namespace ccovid {

namespace {

std::atomic<int> g_num_threads{0};  // 0 = "use default"

thread_local int t_num_threads = 0;  // per-thread override; 0 = none

int env_threads(const char* name) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return 0;
  const int v = std::atoi(s);
  return v > 0 ? v : 0;
}

int default_threads() {
  static const int cached = [] {
    if (const int v = env_threads("CCOVID_NUM_THREADS")) return v;
    if (const int v = env_threads("OMP_NUM_THREADS")) return v;
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
  }();
  return cached;
}

}  // namespace

int num_threads() {
  if (t_num_threads > 0) return t_num_threads;
  const int n = g_num_threads.load(std::memory_order_relaxed);
  return n > 0 ? n : default_threads();
}

void set_num_threads(int n) {
  g_num_threads.store(n, std::memory_order_relaxed);
  // Grow the worker pool eagerly so the first timed kernel after a
  // sweep step does not pay thread-spawn latency.
  if (n > 1) TaskEngine::instance().ensure_workers(n);
}

int thread_num_threads() { return t_num_threads; }

void set_thread_num_threads(int n) { t_num_threads = n > 0 ? n : 0; }

namespace detail {

void parallel_dispatch(index_t begin, index_t end, index_t chunk,
                       void (*fn)(void*, index_t, index_t), void* ctx,
                       int width) {
  TaskEngine::instance().parallel_range(begin, end, chunk, fn, ctx, width);
}

}  // namespace detail

}  // namespace ccovid
