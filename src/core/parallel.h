// Shared-memory parallelism primitives.
//
// Kernels call parallel_for(), which maps to an OpenMP parallel loop when
// built with CCOVID_ENABLE_OPENMP and degrades to a serial loop otherwise.
// The thread count is process-global and settable at runtime so benchmarks
// can sweep it (Table 4's CPU row) and the distributed trainer can pin its
// replica threads without oversubscription.
#pragma once

#include <functional>

#include "core/types.h"

namespace ccovid {

/// Number of worker threads parallel_for uses. Defaults to the hardware
/// concurrency (or OMP_NUM_THREADS when set).
int num_threads();

/// Overrides the worker count for subsequent parallel_for calls.
/// n <= 0 resets to the default.
void set_num_threads(int n);

/// Calling thread's override of num_threads(); 0 = no override. Serving
/// worker threads pin this to 1 so nested parallel_for calls inside
/// kernels run serially — N workers × default_threads would oversubscribe
/// the machine, and per-worker-serial kernels keep results bit-identical
/// for any worker count.
int thread_num_threads();

/// Sets the calling thread's override. n <= 0 clears it.
void set_thread_num_threads(int n);

/// RAII pin of the calling thread's parallel_for width (restores the
/// previous override on destruction).
class ParallelPin {
 public:
  explicit ParallelPin(int n) : prev_(thread_num_threads()) {
    set_thread_num_threads(n);
  }
  ~ParallelPin() { set_thread_num_threads(prev_); }
  ParallelPin(const ParallelPin&) = delete;
  ParallelPin& operator=(const ParallelPin&) = delete;

 private:
  int prev_;
};

/// Runs body(i) for i in [begin, end). Iterations must be independent.
/// `grain` is the minimum chunk per thread; loops smaller than `grain`
/// run serially to avoid fork/join overhead on tiny tensors.
void parallel_for(index_t begin, index_t end,
                  const std::function<void(index_t)>& body,
                  index_t grain = 1024);

/// Blocked variant: body(lo, hi) receives contiguous ranges. Preferred in
/// hot kernels — one std::function call per block, not per element.
void parallel_for_blocked(index_t begin, index_t end,
                          const std::function<void(index_t, index_t)>& body,
                          index_t grain = 1);

}  // namespace ccovid
