// Shared-memory parallelism primitives.
//
// Kernels call parallel_for() / parallel_for_blocked(), which dispatch
// into the in-house work-stealing TaskEngine (core/task_engine.h) — the
// only parallel backend; OpenMP is not used and not required. The loop
// body is passed by reference through a captureless trampoline: no
// std::function, no per-element indirect call, and loops at or below
// `grain` run inline before any type erasure.
//
// Determinism: the engine splits [begin, end) into chunks whose
// boundaries depend only on (range, grain) — never on the thread count —
// and every chunk owns a disjoint index range. Any body whose per-index
// result is deterministic therefore produces bitwise-identical output at
// 1, 2, or 64 threads (asserted by tests/test_golden.cpp).
//
// The thread count is process-global and settable at runtime
// (set_num_threads / CCOVID_NUM_THREADS) so benchmarks can sweep it
// (Table 4's CPU row); ParallelPin gives a per-thread cap the serving
// runtime uses as a per-request concurrency limit on the shared engine.
#pragma once

#include <algorithm>
#include <memory>
#include <type_traits>

#include "core/types.h"

namespace ccovid {

/// Number of lanes parallel_for may use. Defaults to the hardware
/// concurrency, overridable by CCOVID_NUM_THREADS (or OMP_NUM_THREADS,
/// honoured for compatibility with older scripts).
int num_threads();

/// Overrides the lane count for subsequent parallel_for calls.
/// n <= 0 resets to the default.
void set_num_threads(int n);

/// Calling thread's override of num_threads(); 0 = no override. Under
/// the shared engine this is a concurrency CAP for loops launched by
/// this thread, not a partition: pinned loops still run on common
/// workers, they just occupy at most this many lanes at once.
int thread_num_threads();

/// Sets the calling thread's override. n <= 0 clears it.
void set_thread_num_threads(int n);

/// RAII pin of the calling thread's parallel_for width (restores the
/// previous override on destruction).
class ParallelPin {
 public:
  explicit ParallelPin(int n) : prev_(thread_num_threads()) {
    set_thread_num_threads(n);
  }
  ~ParallelPin() { set_thread_num_threads(prev_); }
  ParallelPin(const ParallelPin&) = delete;
  ParallelPin& operator=(const ParallelPin&) = delete;

 private:
  int prev_;
};

namespace detail {

/// Engine dispatch for a type-erased chunk body (plain function pointer,
/// not std::function). Defined in parallel.cpp.
void parallel_dispatch(index_t begin, index_t end, index_t chunk,
                       void (*fn)(void*, index_t, index_t), void* ctx,
                       int width);

/// Chunk size as a pure function of (n, grain): the larger of the
/// caller's grain and n/4096, so degenerate grains on huge ranges don't
/// drown the engine in chunk claims. Thread count must NEVER enter this
/// formula — chunk boundaries are part of the determinism contract.
inline index_t chunk_size(index_t n, index_t grain) {
  if (grain < 1) grain = 1;
  return std::max<index_t>(grain, (n + 4095) / 4096);
}

}  // namespace detail

/// Runs body(i) for i in [begin, end). Iterations must be independent.
/// `grain` is both the serial cutoff (n < grain runs inline on the
/// calling thread with zero dispatch overhead) and the scheduling
/// granularity (indices per engine chunk).
template <typename Body>
inline void parallel_for(index_t begin, index_t end, Body&& body,
                         index_t grain = 1024) {
  if (end <= begin) return;
  using B = std::remove_reference_t<Body>;
  const index_t n = end - begin;
  if (n < grain || num_threads() <= 1) {
    for (index_t i = begin; i < end; ++i) body(i);
    return;
  }
  auto* fn = +[](void* ctx, index_t lo, index_t hi) {
    B& b = *static_cast<B*>(const_cast<void*>(ctx));
    for (index_t i = lo; i < hi; ++i) b(i);
  };
  detail::parallel_dispatch(
      begin, end, detail::chunk_size(n, grain), fn,
      const_cast<void*>(static_cast<const void*>(std::addressof(body))),
      num_threads());
}

/// Blocked variant: body(lo, hi) receives contiguous ranges. Preferred
/// in elementwise kernels — one dispatch per block, and the inner loop
/// stays vectorizable. `grain` is the block size (and serial cutoff:
/// n <= grain runs body(begin, end) inline).
template <typename Body>
inline void parallel_for_blocked(index_t begin, index_t end, Body&& body,
                                 index_t grain = 1) {
  if (end <= begin) return;
  using B = std::remove_reference_t<Body>;
  const index_t n = end - begin;
  if (n <= grain || num_threads() <= 1) {
    body(begin, end);
    return;
  }
  auto* fn = +[](void* ctx, index_t lo, index_t hi) {
    B& b = *static_cast<B*>(const_cast<void*>(ctx));
    b(lo, hi);
  };
  detail::parallel_dispatch(
      begin, end, detail::chunk_size(n, grain), fn,
      const_cast<void*>(static_cast<const void*>(std::addressof(body))),
      num_threads());
}

}  // namespace ccovid
