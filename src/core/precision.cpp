#include "core/precision.h"

#include <atomic>

#include "core/env.h"

namespace ccovid::core {

namespace {

// -1 = unresolved (first active_precision() call reads the env).
std::atomic<int> g_precision{-1};

int resolve_env_default() {
  const auto v =
      env::choice("CCOVID_PRECISION", {"fp32", "fp16", "bf16", "int8"},
                  "fp32");
  Precision p = Precision::kF32;
  if (v) parse_precision(*v, &p);
  return static_cast<int>(p);
}

}  // namespace

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kF32:
      return "fp32";
    case Precision::kF16:
      return "fp16";
    case Precision::kBf16:
      return "bf16";
    case Precision::kInt8:
      return "int8";
  }
  return "?";
}

bool parse_precision(const std::string& spec, Precision* out) {
  const std::string v = env::lower(spec);
  if (v == "fp32" || v == "f32") {
    *out = Precision::kF32;
  } else if (v == "fp16" || v == "f16" || v == "half") {
    *out = Precision::kF16;
  } else if (v == "bf16" || v == "bfloat16") {
    *out = Precision::kBf16;
  } else if (v == "int8" || v == "i8") {
    *out = Precision::kInt8;
  } else {
    return false;
  }
  return true;
}

std::size_t precision_bytes(Precision p) {
  switch (p) {
    case Precision::kF32:
      return 4;
    case Precision::kF16:
    case Precision::kBf16:
      return 2;
    case Precision::kInt8:
      return 1;
  }
  return 4;
}

Precision active_precision() {
  int cur = g_precision.load(std::memory_order_acquire);
  if (cur < 0) {
    // Benign first-call race: every thread resolves the same env value.
    cur = resolve_env_default();
    g_precision.store(cur, std::memory_order_release);
  }
  return static_cast<Precision>(cur);
}

Precision set_active_precision(Precision p) {
  const Precision prev = active_precision();
  g_precision.store(static_cast<int>(p), std::memory_order_release);
  return prev;
}

}  // namespace ccovid::core
