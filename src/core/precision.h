// The storage-precision axis for inference: which format weights and
// activations are STORED in on the compiled-graph path. Accumulation
// is always fp32 (fp16/bf16) or int32 (int8) — the axis trades bytes
// moved and multiply-add throughput, never accumulator width.
//
// Selection mirrors the SIMD backend knob: a process-wide default
// (CCOVID_PRECISION env or --precision on the CLI tools, parsed
// through core/env.h with unknown-value warnings) plus an RAII
// PrecisionGuard for scoped overrides in tests and benchmarks. The
// DDnet graph path reads the active precision ONCE per request when it
// picks a compiled graph, so a mid-stream toggle affects only
// subsequent requests — formats never mix within one request.
#pragma once

#include <cstddef>
#include <string>

namespace ccovid::core {

enum class Precision : int { kF32 = 0, kF16 = 1, kBf16 = 2, kInt8 = 3 };

/// "fp32" / "fp16" / "bf16" / "int8".
const char* precision_name(Precision p);

/// Parses the names above; returns false on any other spelling.
bool parse_precision(const std::string& spec, Precision* out);

/// Bytes per stored activation/weight element for the format.
std::size_t precision_bytes(Precision p);

/// Process-wide default (first call resolves CCOVID_PRECISION; unset
/// or unknown values resolve to fp32, unknown ones with a warning).
Precision active_precision();

/// Sets the process-wide default; returns the previous value.
Precision set_active_precision(Precision p);

/// RAII scoped override of the process-wide default.
class PrecisionGuard {
 public:
  explicit PrecisionGuard(Precision p) : prev_(set_active_precision(p)) {}
  ~PrecisionGuard() { set_active_precision(prev_); }
  PrecisionGuard(const PrecisionGuard&) = delete;
  PrecisionGuard& operator=(const PrecisionGuard&) = delete;

 private:
  Precision prev_;
};

}  // namespace ccovid::core
