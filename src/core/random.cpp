#include "core/random.h"

#include <cmath>

namespace ccovid {

namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

index_t Rng::uniform_int(index_t lo, index_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<index_t>(next_u64() % span);
}

double Rng::gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

std::uint64_t Rng::poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 64.0) {
    // Knuth: multiply uniforms until falling below e^-lambda.
    const double limit = std::exp(-lambda);
    double prod = uniform();
    std::uint64_t k = 0;
    while (prod > limit) {
      prod *= uniform();
      ++k;
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for the
  // photon-count regime (lambda up to 1e6) used by the CT simulator.
  const double x = gaussian(lambda, std::sqrt(lambda)) + 0.5;
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split(std::uint64_t stream_id) {
  std::uint64_t mix = s_[0] ^ (stream_id * 0xD2B74407B1CE6E93ull);
  // Advance own state so successive splits differ.
  mix ^= next_u64();
  return Rng(mix);
}

void Rng::fill_gaussian(Tensor& t, double mean, double stddev) {
  real_t* p = t.data();
  const index_t n = t.numel();
  for (index_t i = 0; i < n; ++i) {
    p[i] = static_cast<real_t>(gaussian(mean, stddev));
  }
}

void Rng::fill_uniform(Tensor& t, double lo, double hi) {
  real_t* p = t.data();
  const index_t n = t.numel();
  for (index_t i = 0; i < n; ++i) {
    p[i] = static_cast<real_t>(uniform(lo, hi));
  }
}

}  // namespace ccovid
