// Deterministic random number generation for the whole library.
//
// All stochastic components (weight init, Poisson projection noise,
// phantom anatomy randomization, augmentations, data shuffles) draw from
// explicitly-seeded Rng instances so that every experiment is exactly
// reproducible. The generator is xoshiro256**, which is fast, has a 256-bit
// state, and supports cheap stream splitting via jump-free reseeding.
#pragma once

#include <cstdint>

#include "core/tensor.h"
#include "core/types.h"

namespace ccovid {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform real in [0, 1).
  double uniform();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  index_t uniform_int(index_t lo, index_t hi);

  /// Standard normal via Box–Muller (cached second variate).
  double gaussian();

  /// Normal with given mean / standard deviation.
  double gaussian(double mean, double stddev);

  /// Poisson sample with the given mean. Uses Knuth multiplication for
  /// small lambda and a normal approximation for lambda >= 64 — the
  /// projection-domain photon counts in the CT simulator reach 1e6, where
  /// sqrt-lambda-relative error of the approximation is ~1e-3.
  std::uint64_t poisson(double lambda);

  /// True with probability p.
  bool bernoulli(double p);

  /// Derives an independent stream (for per-worker RNGs in the
  /// distributed trainer): hashes the parent state with the stream id.
  Rng split(std::uint64_t stream_id);

  /// Fills a tensor with N(mean, stddev) — the paper's filter init is
  /// N(0, 0.01).
  void fill_gaussian(Tensor& t, double mean, double stddev);

  /// Fills a tensor with U[lo, hi).
  void fill_uniform(Tensor& t, double lo, double hi);

 private:
  std::uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ccovid
