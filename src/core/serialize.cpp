#include "core/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace ccovid {

namespace {

constexpr char kMagic[8] = {'C', 'C', '1', '9', 'T', 'N', 'S', 'R'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& f) {
  T v{};
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f) throw std::runtime_error("tensor file: truncated");
  return v;
}

void write_tensor_body(std::ofstream& f, const std::string& name,
                       const Tensor& t) {
  write_pod<std::uint32_t>(f, static_cast<std::uint32_t>(name.size()));
  f.write(name.data(), static_cast<std::streamsize>(name.size()));
  write_pod<std::uint32_t>(f, static_cast<std::uint32_t>(t.rank()));
  for (int i = 0; i < t.rank(); ++i) {
    write_pod<std::int64_t>(f, t.dim(i));
  }
  f.write(reinterpret_cast<const char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(real_t)));
}

std::pair<std::string, Tensor> read_tensor_body(std::ifstream& f) {
  const auto name_len = read_pod<std::uint32_t>(f);
  std::string name(name_len, '\0');
  f.read(name.data(), name_len);
  const auto rank = read_pod<std::uint32_t>(f);
  if (rank > static_cast<std::uint32_t>(Shape::kMaxRank)) {
    throw std::runtime_error("tensor file: bad rank");
  }
  index_t dims[Shape::kMaxRank] = {};
  for (std::uint32_t i = 0; i < rank; ++i) {
    dims[i] = read_pod<std::int64_t>(f);
  }
  Tensor t{Shape(dims, static_cast<int>(rank))};
  f.read(reinterpret_cast<char*>(t.data()),
         static_cast<std::streamsize>(t.numel() * sizeof(real_t)));
  if (!f) throw std::runtime_error("tensor file: truncated tensor data");
  return {std::move(name), std::move(t)};
}

}  // namespace

void save_tensor_map(const std::string& path, const TensorMap& tensors) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_tensor_map: cannot open " + path);
  f.write(kMagic, sizeof(kMagic));
  write_pod<std::uint32_t>(f, kVersion);
  write_pod<std::uint32_t>(f, static_cast<std::uint32_t>(tensors.size()));
  for (const auto& [name, t] : tensors) {
    write_tensor_body(f, name, t);
  }
  if (!f) throw std::runtime_error("save_tensor_map: write failed");
}

TensorMap load_tensor_map(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_tensor_map: cannot open " + path);
  char magic[8];
  f.read(magic, sizeof(magic));
  if (!f || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_tensor_map: bad magic in " + path);
  }
  const auto version = read_pod<std::uint32_t>(f);
  if (version != kVersion) {
    throw std::runtime_error("load_tensor_map: unsupported version");
  }
  const auto count = read_pod<std::uint32_t>(f);
  TensorMap out;
  for (std::uint32_t i = 0; i < count; ++i) {
    out.insert(read_tensor_body(f));
  }
  return out;
}

void save_tensor(const std::string& path, const Tensor& t) {
  save_tensor_map(path, TensorMap{{"tensor", t}});
}

Tensor load_tensor(const std::string& path) {
  auto m = load_tensor_map(path);
  auto it = m.find("tensor");
  if (it == m.end()) {
    throw std::runtime_error("load_tensor: no 'tensor' entry in " + path);
  }
  return it->second;
}

}  // namespace ccovid
