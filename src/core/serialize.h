// Binary tensor and checkpoint serialization. Trained models (DDnet,
// classifier, segmenter) are saved as a named map of tensors so the
// benchmark binaries can reuse weights trained by the examples instead
// of retraining.
//
// Format (little-endian):
//   magic "CC19TNSR" | u32 version | u32 count
//   repeated: u32 name_len | name bytes | u32 rank | i64 dims[rank]
//             | f32 data[numel]
#pragma once

#include <map>
#include <string>

#include "core/tensor.h"

namespace ccovid {

using TensorMap = std::map<std::string, Tensor>;

void save_tensor_map(const std::string& path, const TensorMap& tensors);
TensorMap load_tensor_map(const std::string& path);

void save_tensor(const std::string& path, const Tensor& t);
Tensor load_tensor(const std::string& path);

}  // namespace ccovid
