#include "core/shape.h"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace ccovid {

Shape::Shape(std::initializer_list<index_t> dims) {
  if (static_cast<int>(dims.size()) > kMaxRank) {
    throw std::invalid_argument("Shape: rank exceeds kMaxRank");
  }
  rank_ = static_cast<int>(dims.size());
  int i = 0;
  for (index_t d : dims) {
    if (d < 0) throw std::invalid_argument("Shape: negative extent");
    dims_[i++] = d;
  }
}

Shape::Shape(const index_t* dims, int rank) {
  if (rank < 0 || rank > kMaxRank) {
    throw std::invalid_argument("Shape: bad rank");
  }
  rank_ = rank;
  for (int i = 0; i < rank; ++i) {
    if (dims[i] < 0) throw std::invalid_argument("Shape: negative extent");
    dims_[i] = dims[i];
  }
}

index_t Shape::operator[](int i) const {
  assert(i >= 0 && i < rank_);
  return dims_[i];
}

index_t& Shape::operator[](int i) {
  assert(i >= 0 && i < rank_);
  return dims_[i];
}

index_t Shape::numel() const {
  index_t n = 1;
  for (int i = 0; i < rank_; ++i) n *= dims_[i];
  return n;
}

index_t Shape::stride(int i) const {
  assert(i >= 0 && i < rank_);
  index_t s = 1;
  for (int j = i + 1; j < rank_; ++j) s *= dims_[j];
  return s;
}

index_t Shape::offset_impl(const index_t* idx, int n) const {
  assert(n == rank_);
  index_t off = 0;
  for (int i = 0; i < n; ++i) {
    assert(idx[i] >= 0 && idx[i] < dims_[i]);
    off = off * dims_[i] + idx[i];
  }
  return off;
}

bool Shape::operator==(const Shape& o) const {
  if (rank_ != o.rank_) return false;
  for (int i = 0; i < rank_; ++i) {
    if (dims_[i] != o.dims_[i]) return false;
  }
  return true;
}

std::string Shape::str() const {
  std::ostringstream os;
  os << '[';
  for (int i = 0; i < rank_; ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Shape& s) {
  return os << s.str();
}

}  // namespace ccovid
