// Shape: a small fixed-capacity dimension vector with row-major stride
// math. Tensors in this library are at most 5-D (N, C, D, H, W).
#pragma once

#include <array>
#include <initializer_list>
#include <ostream>
#include <string>

#include "core/types.h"

namespace ccovid {

class Shape {
 public:
  static constexpr int kMaxRank = 5;

  Shape() = default;
  Shape(std::initializer_list<index_t> dims);
  Shape(const index_t* dims, int rank);

  int rank() const { return rank_; }
  index_t operator[](int i) const;
  index_t& operator[](int i);

  /// Product of all extents; 1 for a rank-0 shape (scalar).
  index_t numel() const;

  /// Row-major stride of dimension `i` (elements, not bytes).
  index_t stride(int i) const;

  /// Flat row-major offset of a coordinate tuple. The number of indices
  /// must equal rank(); checked in debug builds.
  template <typename... Ix>
  index_t offset(Ix... ix) const {
    static_assert(sizeof...(Ix) <= kMaxRank);
    const index_t idx[] = {static_cast<index_t>(ix)...};
    return offset_impl(idx, static_cast<int>(sizeof...(Ix)));
  }

  bool operator==(const Shape& o) const;
  bool operator!=(const Shape& o) const { return !(*this == o); }

  /// Human-readable form, e.g. "[1, 16, 512, 512]".
  std::string str() const;

 private:
  index_t offset_impl(const index_t* idx, int n) const;

  std::array<index_t, kMaxRank> dims_{};
  int rank_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Shape& s);

}  // namespace ccovid
