// Runtime backend selection: CPUID caps what the machine can run,
// CCOVID_SIMD (or set_backend_spec from the CLI tools) narrows it, and
// the winner is published once through an atomic table pointer. After
// the first resolution a kernel call costs one acquire load.
#include "core/simd.h"

#include <cstdio>
#include <cstdlib>

#include "core/env.h"

namespace ccovid::simd {

// Defined in the per-backend TUs; sse2/avx2 return nullptr when the
// target architecture (or compiler flags) cannot produce them.
const KernelTable* scalar_kernel_table();
const KernelTable* sse2_kernel_table();
const KernelTable* avx2_kernel_table();

namespace {

std::atomic<const KernelTable*> g_active{nullptr};

bool cpu_supports(Backend b) {
#if defined(__x86_64__) || defined(_M_X64)
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
      return true;  // architectural baseline on x86-64
    case Backend::kAvx2:
      // The avx2 table also carries the FMA low-precision kernels and
      // (when compiled in) F16C converts, so all three must be present
      // before it is eligible.
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("fma") != 0 &&
             __builtin_cpu_supports("f16c") != 0;
  }
  return false;
#else
  return b == Backend::kScalar;
#endif
}

const KernelTable* compiled_table(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return scalar_kernel_table();
    case Backend::kSse2:
      return sse2_kernel_table();
    case Backend::kAvx2:
      return avx2_kernel_table();
  }
  return nullptr;
}

// Best available backend at or below `cap`.
const KernelTable* best_table(Backend cap) {
  for (int b = static_cast<int>(cap); b >= 0; --b) {
    const Backend k = static_cast<Backend>(b);
    if (cpu_supports(k)) {
      if (const KernelTable* t = compiled_table(k)) return t;
    }
  }
  return scalar_kernel_table();  // always compiled
}

const KernelTable* resolve_default() {
  Backend cap = Backend::kAvx2;
  // Unknown values warn once inside env::choice and resolve to auto.
  if (const auto spec = env::choice(
          "CCOVID_SIMD", {"scalar", "sse2", "avx2", "auto"}, "auto")) {
    Backend req;
    bool is_auto = false;
    parse_backend(*spec, &req, &is_auto);
    if (!is_auto) {
      cap = req;
      if (!backend_available(req)) {
        std::fprintf(stderr,
                     "CCOVID_SIMD: backend '%s' unavailable on this "
                     "host; falling back\n",
                     backend_name(req));
      }
    }
  }
  return best_table(cap);
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
  }
  return "?";
}

bool parse_backend(const std::string& spec, Backend* out, bool* is_auto) {
  *is_auto = false;
  if (spec == "auto") {
    *is_auto = true;
    return true;
  }
  if (spec == "scalar") {
    *out = Backend::kScalar;
    return true;
  }
  if (spec == "sse2") {
    *out = Backend::kSse2;
    return true;
  }
  if (spec == "avx2") {
    *out = Backend::kAvx2;
    return true;
  }
  return false;
}

bool backend_available(Backend b) {
  return cpu_supports(b) && compiled_table(b) != nullptr;
}

Backend set_backend(Backend b) {
  const KernelTable* t = best_table(b);
  g_active.store(t, std::memory_order_release);
  return active_backend();
}

bool set_backend_spec(const std::string& spec) {
  Backend req;
  bool is_auto = false;
  if (!parse_backend(spec, &req, &is_auto)) return false;
  g_active.store(best_table(is_auto ? Backend::kAvx2 : req),
                 std::memory_order_release);
  return true;
}

const KernelTable* table_for(Backend b) {
  if (!cpu_supports(b)) return nullptr;
  return compiled_table(b);
}

const KernelTable& kernels() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (!t) {
    // Benign race: concurrent first calls resolve to the same table.
    t = resolve_default();
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

Backend active_backend() {
  const KernelTable& t = kernels();
  if (&t == avx2_kernel_table()) return Backend::kAvx2;
  if (&t == sse2_kernel_table()) return Backend::kSse2;
  return Backend::kScalar;
}

}  // namespace ccovid::simd
