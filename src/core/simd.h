// Fixed-width portable SIMD layer with runtime backend dispatch.
//
// Every vector kernel in the library is written once, against an
// 8-lane f32 vector abstraction (`V::v8`), and compiled three times
// into per-backend translation units:
//
//   scalar  — plain C++ over a float[8] struct (always available; the
//             compiler may still auto-vectorize it, which is fine:
//             auto-vectorization never reassociates FP math at -O2)
//   sse2    — two __m128 halves (x86-64 baseline)
//   avx2    — one __m256 (requires AVX2; selected only when the CPU
//             reports it)
//
// One backend is chosen at first use: CPUID caps the candidates, the
// `CCOVID_SIMD=scalar|sse2|avx2|auto` environment variable (or the
// `--simd` flag on the CLI tools via set_backend_spec) narrows them.
//
// THE LANE-DETERMINISM CONTRACT
//
// Golden digests must be bitwise-identical across scalar/sse2/avx2 and
// across task-engine widths. Two rules make that hold:
//
//  1. Per-output vectorization preserves scalar order. Kernels assign
//     one OUTPUT element per lane (8 output pixels, 8 GEMM columns);
//     each lane accumulates its own taps in exactly the order the
//     scalar code does. `madd(acc, a, b)` is specified as acc + (a*b)
//     with TWO roundings — hardware FMA contraction is deliberately
//     not used, because its single rounding would split scalar and
//     AVX2 results. The kernels are memory-bound; the spare multiply
//     port is not the bottleneck.
//
//  2. Cross-lane reductions use the canonical strided-lane tree.
//     When a kernel must sum across lanes (dot products), elements are
//     assigned to lanes round-robin (element i -> lane i%8, tails
//     zero-filled) and reduced with the fixed tree
//         q_i = l_i + l_{i+4}           (i = 0..3)
//         r_0 = q_0 + q_2,  r_1 = q_1 + q_3
//         sum = r_0 + r_1
//     in every backend, including the scalar emulation. The scalar
//     fallback therefore computes the SAME 8 virtual partial sums and
//     the SAME reduction tree as the widest backend — not a sequential
//     sum that happens to be close.
//
// Instrumented op/byte counts (ops/instrumented.h) model logical taps,
// not instructions, so the roofline inputs are backend-independent.
#pragma once

#include <atomic>
#include <string>

#include "core/types.h"

namespace ccovid::simd {

/// Width of the virtual vector: every backend exposes exactly 8 f32
/// lanes, whatever the underlying register width.
inline constexpr int kLanes = 8;

enum class Backend : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Dispatch table of vector kernels. One instance per compiled backend;
/// `kernels()` returns the active one. Entries marked "probe_" exist
/// for tests/test_simd.cpp to pin per-primitive bitwise equality across
/// backends; they are trivial wrappers over the lane primitives.
struct KernelTable {
  const char* name;  // "scalar" / "sse2" / "avx2"

  /// C[0..4)x[0..8) += A (4 x kc, row stride lda) * B packed (kc x 8,
  /// unit-stride rows). Lane j accumulates column j sequentially over
  /// the K dimension — identical order to the scalar microkernel.
  void (*sgemm_micro_4x8)(const float* a, index_t lda, const float* bpack,
                          float* c, index_t ldc, index_t kc);

  /// One stride-1 conv2d output row (direct form): out[ox] for
  /// ox in [0, wo), taps in ascending (ci, ky, kx) order per output.
  /// `wstride` is the float distance between consecutive ci slices of
  /// the (k x k) filter. Border columns run a scalar path with the
  /// same tap order; interior columns run 8 outputs per vector.
  void (*conv2d_row_s1)(const float* in, const float* wgt, index_t wstride,
                        float* out, index_t cin, index_t h, index_t w,
                        index_t k, index_t oy, index_t pad, index_t wo,
                        float bias);

  /// One stride-1 deconv2d (gather form) output row: iy = oy + pad - ky,
  /// ix = ox + pad - kx, taps in ascending (ci, ky, kx) order.
  void (*deconv2d_row_s1)(const float* in, const float* wgt,
                          index_t wstride, float* out, index_t cin,
                          index_t h, index_t w, index_t k, index_t oy,
                          index_t pad, index_t wo, float bias);

  /// Multi-output-channel variant of conv2d_row_s1 for the graph
  /// executor: one output row for `nco` (1..4) consecutive output
  /// channels per call. Filter co j lives at wgt + j*wstride_co (ci
  /// slices wstride_ci apart); its output row at out + j*ostride_co;
  /// its bias at bias[j]. Each channel keeps its OWN accumulator with
  /// taps in the same ascending (ci, ky, kx) order as the single-row
  /// kernel, so per-element results are bitwise identical — the win is
  /// purely ILP: four independent FMA chains share every input-row
  /// load instead of one latency-bound chain per call.
  void (*conv2d_row4_s1)(const float* in, const float* wgt,
                         index_t wstride_ci, index_t wstride_co, float* out,
                         index_t ostride_co, int nco, index_t cin,
                         index_t h, index_t w, index_t k, index_t oy,
                         index_t pad, index_t wo, const float* bias);

  /// Multi-output-channel deconv2d_row_s1 (gather form), same contract
  /// as conv2d_row4_s1. With the (Cin,Cout,K,K) deconv weight layout,
  /// wstride_co = k*k and wstride_ci = cout*k*k.
  void (*deconv2d_row4_s1)(const float* in, const float* wgt,
                           index_t wstride_ci, index_t wstride_co,
                           float* out, index_t ostride_co, int nco,
                           index_t cin, index_t h, index_t w, index_t k,
                           index_t oy, index_t pad, index_t wo,
                           const float* bias);

  /// y[i] = scale * x[i] + shift — the batch-norm (+ folded affine)
  /// epilogue.
  void (*scale_shift)(const float* x, float* y, index_t n, float scale,
                      float shift);

  /// Fused batch-norm + activation epilogue for the graph executor:
  /// t = scale*x + shift, then act 0 = none, 1 = relu, 2 = leaky.
  /// Deliberately NOT restrict-qualified: x == y (in-place over a conv
  /// output slab) is supported. Bitwise-identical to scale_shift
  /// followed by relu/leaky_relu — the vector body and the scalar tail
  /// apply the exact per-element expressions of those kernels.
  void (*scale_shift_act)(const float* x, float* y, index_t n, float scale,
                          float shift, int act, float slope);

  /// y[i] = max(x[i], 0) with maxps NaN/-0 semantics (NaN -> 0).
  void (*relu)(const float* x, float* y, index_t n);

  /// y[i] = x[i] > 0 ? x[i] : slope * x[i].
  void (*leaky_relu)(const float* x, float* y, index_t n, float slope);

  /// y[i] += v — conv bias epilogue.
  void (*add_scalar)(float* y, index_t n, float v);

  /// In-place complex multiply over interleaved (re, im) f64 pairs:
  /// a[i] *= b[i] with re' = re_a*re_b - im_a*im_b and
  /// im' = im_a*re_b + re_a*im_b — the FBP ramp-filter spectrum
  /// product. Element-wise, so lane determinism is order-free; every
  /// backend keeps the exact mul/sub/add pairing above.
  void (*cmul)(double* a, const double* b, index_t n);

  /// Canonical lane-deterministic dot product: strided 8-lane partials
  /// + the fixed reduction tree (see header comment).
  float (*dot)(const float* a, const float* b, index_t n);

  // ----- test probes (8-wide in/out arrays) -------------------------
  void (*probe_madd)(const float* a, const float* b, const float* c,
                     float* out);                           // c + a*b
  void (*probe_mul)(const float* a, const float* b, float* out);
  void (*probe_add)(const float* a, const float* b, float* out);
  void (*probe_min)(const float* a, const float* b, float* out);
  void (*probe_max)(const float* a, const float* b, float* out);
  float (*probe_reduce)(const float* a);  // fixed-tree sum of 8 lanes
  void (*probe_load_partial)(const float* p, index_t n, float* out);
};

/// Human-readable backend name ("scalar"/"sse2"/"avx2").
const char* backend_name(Backend b);

/// Parses "scalar", "sse2", "avx2" or "auto". Returns false on any
/// other spelling. `is_auto` is set when the spec was "auto" (in which
/// case `out` is left untouched).
bool parse_backend(const std::string& spec, Backend* out, bool* is_auto);

/// True when the backend is both compiled into this binary and
/// supported by the executing CPU.
bool backend_available(Backend b);

/// Selects a backend explicitly. Unavailable requests clamp to the
/// best available backend at or below the request; the effective
/// choice is returned.
Backend set_backend(Backend b);

/// Parses a CCOVID_SIMD-style spec and applies it ("auto" re-runs the
/// default CPUID pick). Returns false (and changes nothing) on an
/// invalid spec — the CLI tools turn that into a usage error.
bool set_backend_spec(const std::string& spec);

/// The backend the next kernel call will use (resolving the
/// environment override and CPUID on first call).
Backend active_backend();

/// Per-backend table, independent of the active selection: nullptr
/// when the backend is not compiled in or the CPU lacks it. Used by
/// tests to compare backends side by side.
const KernelTable* table_for(Backend b);

/// Active dispatch table. First call resolves CCOVID_SIMD + CPUID;
/// afterwards it is one acquire load. Fetch the reference once per op,
/// outside inner loops.
const KernelTable& kernels();

}  // namespace ccovid::simd
