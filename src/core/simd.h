// Fixed-width portable SIMD layer with runtime backend dispatch.
//
// Every vector kernel in the library is written once, against an
// 8-lane f32 vector abstraction (`V::v8`), and compiled three times
// into per-backend translation units:
//
//   scalar  — plain C++ over a float[8] struct (always available; the
//             compiler may still auto-vectorize it, which is fine:
//             auto-vectorization never reassociates FP math at -O2)
//   sse2    — two __m128 halves (x86-64 baseline)
//   avx2    — one __m256 (requires AVX2; selected only when the CPU
//             reports it)
//
// One backend is chosen at first use: CPUID caps the candidates, the
// `CCOVID_SIMD=scalar|sse2|avx2|auto` environment variable (or the
// `--simd` flag on the CLI tools via set_backend_spec) narrows them.
//
// THE LANE-DETERMINISM CONTRACT
//
// Golden digests must be bitwise-identical across scalar/sse2/avx2 and
// across task-engine widths. Two rules make that hold:
//
//  1. Per-output vectorization preserves scalar order. Kernels assign
//     one OUTPUT element per lane (8 output pixels, 8 GEMM columns);
//     each lane accumulates its own taps in exactly the order the
//     scalar code does. `madd(acc, a, b)` is specified as acc + (a*b)
//     with TWO roundings — hardware FMA contraction is deliberately
//     not used, because its single rounding would split scalar and
//     AVX2 results. The kernels are memory-bound; the spare multiply
//     port is not the bottleneck.
//
//  2. Cross-lane reductions use the canonical strided-lane tree.
//     When a kernel must sum across lanes (dot products), elements are
//     assigned to lanes round-robin (element i -> lane i%8, tails
//     zero-filled) and reduced with the fixed tree
//         q_i = l_i + l_{i+4}           (i = 0..3)
//         r_0 = q_0 + q_2,  r_1 = q_1 + q_3
//         sum = r_0 + r_1
//     in every backend, including the scalar emulation. The scalar
//     fallback therefore computes the SAME 8 virtual partial sums and
//     the SAME reduction tree as the widest backend — not a sequential
//     sum that happens to be close.
//
// Instrumented op/byte counts (ops/instrumented.h) model logical taps,
// not instructions, so the roofline inputs are backend-independent.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/types.h"

namespace ccovid::simd {

/// Width of the virtual vector: every backend exposes exactly 8 f32
/// lanes, whatever the underlying register width.
inline constexpr int kLanes = 8;

enum class Backend : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Parameters of the fused int8 dequant -> batch-norm/activation ->
/// requant epilogue (see KernelTable::quant_epilogue_store_i8). The
/// int32 conv accumulator for output channel co dequantizes as
///   t = fma(float(acc), m, bias)        (m = s_in * s_w[co])
/// then runs the affine+activation expression of scale_shift_act and
/// requantizes with round-to-nearest-even, clamped to [-127, 127].
struct QuantEpilogueParams {
  float m0 = 1.0f, m1 = 1.0f;        // dequant multiplier per channel
  float bias0 = 0.0f, bias1 = 0.0f;  // conv bias (fp32 domain)
  int has_affine = 0;                // apply scale/shift (+act) when set
  float scale0 = 1.0f, scale1 = 1.0f;
  float shift0 = 0.0f, shift1 = 0.0f;
  int act = 0;  // 0 none, 1 relu, 2 leaky
  float slope = 0.0f;
  float inv_out = 1.0f;  // 1 / s_out for the requantize store
};

/// Dispatch table of vector kernels. One instance per compiled backend;
/// `kernels()` returns the active one. Entries marked "probe_" exist
/// for tests/test_simd.cpp to pin per-primitive bitwise equality across
/// backends; they are trivial wrappers over the lane primitives.
struct KernelTable {
  const char* name;  // "scalar" / "sse2" / "avx2"

  /// C[0..4)x[0..8) += A (4 x kc, row stride lda) * B packed (kc x 8,
  /// unit-stride rows). Lane j accumulates column j sequentially over
  /// the K dimension — identical order to the scalar microkernel.
  void (*sgemm_micro_4x8)(const float* a, index_t lda, const float* bpack,
                          float* c, index_t ldc, index_t kc);

  /// One stride-1 conv2d output row (direct form): out[ox] for
  /// ox in [0, wo), taps in ascending (ci, ky, kx) order per output.
  /// `wstride` is the float distance between consecutive ci slices of
  /// the (k x k) filter. Border columns run a scalar path with the
  /// same tap order; interior columns run 8 outputs per vector.
  void (*conv2d_row_s1)(const float* in, const float* wgt, index_t wstride,
                        float* out, index_t cin, index_t h, index_t w,
                        index_t k, index_t oy, index_t pad, index_t wo,
                        float bias);

  /// One stride-1 deconv2d (gather form) output row: iy = oy + pad - ky,
  /// ix = ox + pad - kx, taps in ascending (ci, ky, kx) order.
  void (*deconv2d_row_s1)(const float* in, const float* wgt,
                          index_t wstride, float* out, index_t cin,
                          index_t h, index_t w, index_t k, index_t oy,
                          index_t pad, index_t wo, float bias);

  /// Multi-output-channel variant of conv2d_row_s1 for the graph
  /// executor: one output row for `nco` (1..4) consecutive output
  /// channels per call. Filter co j lives at wgt + j*wstride_co (ci
  /// slices wstride_ci apart); its output row at out + j*ostride_co;
  /// its bias at bias[j]. Each channel keeps its OWN accumulator with
  /// taps in the same ascending (ci, ky, kx) order as the single-row
  /// kernel, so per-element results are bitwise identical — the win is
  /// purely ILP: four independent FMA chains share every input-row
  /// load instead of one latency-bound chain per call.
  void (*conv2d_row4_s1)(const float* in, const float* wgt,
                         index_t wstride_ci, index_t wstride_co, float* out,
                         index_t ostride_co, int nco, index_t cin,
                         index_t h, index_t w, index_t k, index_t oy,
                         index_t pad, index_t wo, const float* bias);

  /// Multi-output-channel deconv2d_row_s1 (gather form), same contract
  /// as conv2d_row4_s1. With the (Cin,Cout,K,K) deconv weight layout,
  /// wstride_co = k*k and wstride_ci = cout*k*k.
  void (*deconv2d_row4_s1)(const float* in, const float* wgt,
                           index_t wstride_ci, index_t wstride_co,
                           float* out, index_t ostride_co, int nco,
                           index_t cin, index_t h, index_t w, index_t k,
                           index_t oy, index_t pad, index_t wo,
                           const float* bias);

  /// y[i] = scale * x[i] + shift — the batch-norm (+ folded affine)
  /// epilogue.
  void (*scale_shift)(const float* x, float* y, index_t n, float scale,
                      float shift);

  /// Fused batch-norm + activation epilogue for the graph executor:
  /// t = scale*x + shift, then act 0 = none, 1 = relu, 2 = leaky.
  /// Deliberately NOT restrict-qualified: x == y (in-place over a conv
  /// output slab) is supported. Bitwise-identical to scale_shift
  /// followed by relu/leaky_relu — the vector body and the scalar tail
  /// apply the exact per-element expressions of those kernels.
  void (*scale_shift_act)(const float* x, float* y, index_t n, float scale,
                          float shift, int act, float slope);

  /// y[i] = max(x[i], 0) with maxps NaN/-0 semantics (NaN -> 0).
  void (*relu)(const float* x, float* y, index_t n);

  /// y[i] = x[i] > 0 ? x[i] : slope * x[i].
  void (*leaky_relu)(const float* x, float* y, index_t n, float slope);

  /// y[i] += v — conv bias epilogue.
  void (*add_scalar)(float* y, index_t n, float v);

  /// In-place complex multiply over interleaved (re, im) f64 pairs:
  /// a[i] *= b[i] with re' = re_a*re_b - im_a*im_b and
  /// im' = im_a*re_b + re_a*im_b — the FBP ramp-filter spectrum
  /// product. Element-wise, so lane determinism is order-free; every
  /// backend keeps the exact mul/sub/add pairing above.
  void (*cmul)(double* a, const double* b, index_t n);

  /// Canonical lane-deterministic dot product: strided 8-lane partials
  /// + the fixed reduction tree (see header comment).
  float (*dot)(const float* a, const float* b, index_t n);

  // ----- low-precision storage formats ------------------------------
  //
  // THE LOW-PRECISION NUMERIC CONTRACT. The kernels below define a NEW
  // deterministic contract, separate from the fp32 one: activations
  // (and, at the executor level, weights) are STORED in fp16/bf16/int8
  // and converted to fp32/int32 in registers on load; accumulation is
  // fp32 with SINGLE-rounding fused multiply-add (scalar backends use
  // std::fmaf, which is correctly rounded and therefore bitwise equal
  // to VFMADD*) for the half formats, and exact int32 for int8. The
  // two-roundings rule of the fp32 contract exists to match historical
  // scalar digests; the low-precision paths have no history to match,
  // so they take the FMA throughput win — per-precision golden digests
  // pin THEIR bits across backends and widths instead.

  /// conv2d_row4_s1 with fp16-stored input activations: same contract
  /// and argument order, input elements converted on load (F16C /
  /// scalar bit-exact equivalent), fp32 weights/bias/output, fp32
  /// accumulation via single-rounding fmadd.
  void (*conv2d_row4_s1_f16)(const std::uint16_t* in, const float* wgt,
                             index_t wstride_ci, index_t wstride_co,
                             float* out, index_t ostride_co, int nco,
                             index_t cin, index_t h, index_t w, index_t k,
                             index_t oy, index_t pad, index_t wo,
                             const float* bias);
  void (*deconv2d_row4_s1_f16)(const std::uint16_t* in, const float* wgt,
                               index_t wstride_ci, index_t wstride_co,
                               float* out, index_t ostride_co, int nco,
                               index_t cin, index_t h, index_t w, index_t k,
                               index_t oy, index_t pad, index_t wo,
                               const float* bias);
  void (*conv2d_row4_s1_bf16)(const std::uint16_t* in, const float* wgt,
                              index_t wstride_ci, index_t wstride_co,
                              float* out, index_t ostride_co, int nco,
                              index_t cin, index_t h, index_t w, index_t k,
                              index_t oy, index_t pad, index_t wo,
                              const float* bias);
  void (*deconv2d_row4_s1_bf16)(const std::uint16_t* in, const float* wgt,
                                index_t wstride_ci, index_t wstride_co,
                                float* out, index_t ostride_co, int nco,
                                index_t cin, index_t h, index_t w,
                                index_t k, index_t oy, index_t pad,
                                index_t wo, const float* bias);

  /// The same single-rounding-FMA accumulation over an ALREADY-WIDENED
  /// fp32 input plane. Widening fp16/bf16 to fp32 is elementwise-exact,
  /// so calling this on a converted copy of the input produces bitwise
  /// the bits of conv2d_row4_s1_f16/_bf16 on the stored plane — the
  /// graph executor widens each step's input once and runs these,
  /// instead of re-converting the same rows k times per tap loop.
  /// NOT interchangeable with conv2d_row4_s1 (that one keeps the
  /// two-roundings fp32 contract; this one fuses).
  void (*conv2d_row4_s1_fma)(const float* in, const float* wgt,
                             index_t wstride_ci, index_t wstride_co,
                             float* out, index_t ostride_co, int nco,
                             index_t cin, index_t h, index_t w, index_t k,
                             index_t oy, index_t pad, index_t wo,
                             const float* bias);
  void (*deconv2d_row4_s1_fma)(const float* in, const float* wgt,
                               index_t wstride_ci, index_t wstride_co,
                               float* out, index_t ostride_co, int nco,
                               index_t cin, index_t h, index_t w, index_t k,
                               index_t oy, index_t pad, index_t wo,
                               const float* bias);

  /// Octet variants of the _fma row kernels: nco up to 8 output
  /// channels per input pass (nco <= 4 falls through to the quartet
  /// body). Regrouping output channels never changes a channel's own
  /// (ci, ky, kx) fmadd order, so the bits match the row4 kernels
  /// exactly; the point is halving the number of passes over the
  /// widened input for the memory-bound co=8 DDnet dense-layer convs.
  void (*conv2d_row8_s1_fma)(const float* in, const float* wgt,
                             index_t wstride_ci, index_t wstride_co,
                             float* out, index_t ostride_co, int nco,
                             index_t cin, index_t h, index_t w, index_t k,
                             index_t oy, index_t pad, index_t wo,
                             const float* bias);
  void (*deconv2d_row8_s1_fma)(const float* in, const float* wgt,
                               index_t wstride_ci, index_t wstride_co,
                               float* out, index_t ostride_co, int nco,
                               index_t cin, index_t h, index_t w,
                               index_t k, index_t oy, index_t pad,
                               index_t wo, const float* bias);

  /// scale_shift_act with a converting store: the fp32 affine+act
  /// expression is bit-identical to scale_shift_act, only the store
  /// rounds to the half format (RNE).
  void (*scale_shift_act_store_f16)(const float* x, std::uint16_t* y,
                                    index_t n, float scale, float shift,
                                    int act, float slope);
  void (*scale_shift_act_store_bf16)(const float* x, std::uint16_t* y,
                                     index_t n, float scale, float shift,
                                     int act, float slope);

  /// Array format conversions (element-wise, RNE on narrowing).
  void (*cvt_f32_to_f16)(const float* x, std::uint16_t* y, index_t n);
  void (*cvt_f16_to_f32)(const std::uint16_t* x, float* y, index_t n);
  void (*cvt_f32_to_bf16)(const float* x, std::uint16_t* y, index_t n);
  void (*cvt_bf16_to_f32)(const std::uint16_t* x, float* y, index_t n);

  /// Symmetric-int8 conv row kernels over CHANNEL-PAIR-INTERLEAVED
  /// activations: the plane of channel pair p (channels 2p, 2p+1)
  /// starts at in + p*h*w*2 and stores pixel (y, x) as two adjacent
  /// bytes [c_even, c_odd] — the layout VPMADDWD wants (one 16-byte
  /// load covers 8 output pixels x 2 input channels). Weights are
  /// pre-widened int16 pairs, co-major: channel co's slice starts at
  /// wgt + co*wstride_co (wstride_co in int16 elements) and stores tap
  /// (p, ky, kx) as [w_2p, w_2p+1]. Accumulation is exact int32 (from
  /// zero — bias lives in the fp32 epilogue), so every backend is
  /// bitwise identical by construction; scalar and sse2 share one
  /// portable body and avx2 overrides with the vpmaddwd kernel.
  void (*conv2d_row4_s1_i8)(const std::int8_t* in, const std::int16_t* wgt,
                            index_t wstride_co, std::int32_t* out,
                            index_t ostride_co, int nco, index_t cinp,
                            index_t h, index_t w, index_t k, index_t oy,
                            index_t pad, index_t wo);
  void (*deconv2d_row4_s1_i8)(const std::int8_t* in,
                              const std::int16_t* wgt, index_t wstride_co,
                              std::int32_t* out, index_t ostride_co,
                              int nco, index_t cinp, index_t h, index_t w,
                              index_t k, index_t oy, index_t pad,
                              index_t wo);

  /// Fused int8 epilogue: dequantize two accumulator planes, apply the
  /// affine/activation, requantize, and store one interleaved channel
  /// pair. acc1 may be null (odd trailing channel): the odd bytes
  /// store 0.
  void (*quant_epilogue_store_i8)(const std::int32_t* acc0,
                                  const std::int32_t* acc1,
                                  std::int8_t* out, index_t n,
                                  const QuantEpilogueParams& p);

  /// Dequant epilogue with an fp32 store (graph-output steps).
  void (*dequant_epilogue_f32)(const std::int32_t* acc, float* out,
                               index_t n, float m, float bias,
                               int has_affine, float scale, float shift,
                               int act, float slope);

  /// Two planar fp32 channels -> one interleaved int8 pair plane
  /// (x1 null writes 0 odd bytes): q = clamp(rne(x * inv_scale)).
  void (*quant_f32_to_i8)(const float* x0, const float* x1,
                          std::int8_t* out, index_t n, float inv_scale);
  /// Inverse: interleaved pair plane -> two planar fp32 channels
  /// (x1 null drops the odd channel).
  void (*dequant_i8_to_f32)(const std::int8_t* in, float* x0, float* x1,
                            index_t n, float scale);

  // ----- test probes (8-wide in/out arrays) -------------------------
  void (*probe_madd)(const float* a, const float* b, const float* c,
                     float* out);                           // c + a*b
  void (*probe_fmadd)(const float* a, const float* b, const float* c,
                      float* out);          // fma(a, b, c), one rounding
  void (*probe_mul)(const float* a, const float* b, float* out);
  void (*probe_add)(const float* a, const float* b, float* out);
  void (*probe_min)(const float* a, const float* b, float* out);
  void (*probe_max)(const float* a, const float* b, float* out);
  float (*probe_reduce)(const float* a);  // fixed-tree sum of 8 lanes
  void (*probe_load_partial)(const float* p, index_t n, float* out);
};

/// Human-readable backend name ("scalar"/"sse2"/"avx2").
const char* backend_name(Backend b);

/// Parses "scalar", "sse2", "avx2" or "auto". Returns false on any
/// other spelling. `is_auto` is set when the spec was "auto" (in which
/// case `out` is left untouched).
bool parse_backend(const std::string& spec, Backend* out, bool* is_auto);

/// True when the backend is both compiled into this binary and
/// supported by the executing CPU.
bool backend_available(Backend b);

/// Selects a backend explicitly. Unavailable requests clamp to the
/// best available backend at or below the request; the effective
/// choice is returned.
Backend set_backend(Backend b);

/// Parses a CCOVID_SIMD-style spec and applies it ("auto" re-runs the
/// default CPUID pick). Returns false (and changes nothing) on an
/// invalid spec — the CLI tools turn that into a usage error.
bool set_backend_spec(const std::string& spec);

/// The backend the next kernel call will use (resolving the
/// environment override and CPUID on first call).
Backend active_backend();

/// Per-backend table, independent of the active selection: nullptr
/// when the backend is not compiled in or the CPU lacks it. Used by
/// tests to compare backends side by side.
const KernelTable* table_for(Backend b);

/// Active dispatch table. First call resolves CCOVID_SIMD + CPUID;
/// afterwards it is one acquire load. Fetch the reference once per op,
/// outside inner loops.
const KernelTable& kernels();

}  // namespace ccovid::simd
