// AVX2 backend: one __m256 per virtual vector. Compiled with
// -mavx2 -mfma -ffp-contract=off (see src/core/CMakeLists.txt): the
// ISA is enabled, but automatic mul+add fusion is off — vfmadd's
// single rounding would split this backend's results from the scalar
// reference, and the lane-determinism contract (core/simd.h) outranks
// the marginal FLOP win on these memory-bound kernels. When the
// compiler cannot target AVX2 the TU degrades to a stub and dispatch
// falls back to SSE2/scalar.
#include "core/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "core/half.h"
#include "core/simd_kernels.h"

namespace ccovid::simd {

namespace {

struct Avx2V {
  using v8 = __m256;
  static v8 zero() { return _mm256_setzero_ps(); }
  static v8 set1(float v) { return _mm256_set1_ps(v); }
  static v8 loadu(const float* p) { return _mm256_loadu_ps(p); }
  static v8 load_partial(const float* p, index_t n) {
    float buf[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (index_t j = 0; j < n; ++j) buf[j] = p[j];
    return _mm256_loadu_ps(buf);
  }
  static void storeu(float* p, v8 x) { _mm256_storeu_ps(p, x); }
  static v8 add(v8 a, v8 b) { return _mm256_add_ps(a, b); }
  static v8 mul(v8 a, v8 b) { return _mm256_mul_ps(a, b); }
  static v8 min(v8 a, v8 b) { return _mm256_min_ps(a, b); }
  static v8 max(v8 a, v8 b) { return _mm256_max_ps(a, b); }
  static v8 madd(v8 acc, v8 a, v8 b) {
    // Two roundings by contract; -ffp-contract=off keeps it that way.
    return _mm256_add_ps(acc, _mm256_mul_ps(a, b));
  }
  static v8 blend_gt0(v8 x, v8 a, v8 b) {
    const __m256 m = _mm256_cmp_ps(x, _mm256_setzero_ps(), _CMP_GT_OQ);
    return _mm256_blendv_ps(b, a, m);
  }
  // Low-precision contract (core/simd.h): single rounding per lane.
  static v8 fmadd(v8 acc, v8 a, v8 b) {
#if defined(__FMA__)
    return _mm256_fmadd_ps(a, b, acc);
#else
    float fa[8], fb[8], fc[8];
    storeu(fa, a);
    storeu(fb, b);
    storeu(fc, acc);
    for (int j = 0; j < 8; ++j) fc[j] = std::fmaf(fa[j], fb[j], fc[j]);
    return loadu(fc);
#endif
  }
  static v8 loadu_f16(const std::uint16_t* p) {
#if defined(__F16C__)
    return _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
#else
    // core/half.h is bit-exact vs VCVTPH2PS, so the fallback keeps the
    // backend on the same digests.
    float buf[8];
    for (int j = 0; j < 8; ++j) buf[j] = f16_bits_to_f32(p[j]);
    return loadu(buf);
#endif
  }
  static void storeu_f16(std::uint16_t* p, v8 x) {
#if defined(__F16C__)
    // VCVTPS2PH, then the f32_to_f16_bits_ftz flush as a vector mask:
    // clear the mantissa wherever the exponent field is zero so no
    // subnormal half ever reaches a (slow) VCVTPH2PS widening.
    __m128i h = _mm256_cvtps_ph(
        x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    const __m128i sub = _mm_cmpeq_epi16(
        _mm_and_si128(h, _mm_set1_epi16(0x7C00)), _mm_setzero_si128());
    h = _mm_andnot_si128(_mm_and_si128(sub, _mm_set1_epi16(0x03FF)), h);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), h);
#else
    float buf[8];
    storeu(buf, x);
    for (int j = 0; j < 8; ++j) p[j] = f32_to_f16_bits_ftz(buf[j]);
#endif
  }
  static float load1_f16(const std::uint16_t* p) {
#if defined(__F16C__)
    // Branch-free hardware convert for the scalar border taps; the
    // software converter's zero/subnormal early-outs mispredict badly
    // on post-ReLU activations.
    return _mm_cvtss_f32(
        _mm_cvtph_ps(_mm_cvtsi32_si128(static_cast<int>(*p))));
#else
    return f16_bits_to_f32(*p);
#endif
  }
  static v8 loadu_bf16(const std::uint16_t* p) {
    const __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16));
  }
  static void storeu_bf16(std::uint16_t* p, v8 x) {
    // Integer image of core/half.h f32_to_bf16_bits: NaN -> truncate
    // and set the quiet bit, else RNE carry add then truncate.
    const __m256i xi = _mm256_castps_si256(x);
    const __m256i abs =
        _mm256_and_si256(xi, _mm256_set1_epi32(0x7FFFFFFF));
    const __m256i is_nan =
        _mm256_cmpgt_epi32(abs, _mm256_set1_epi32(0x7F800000));
    const __m256i nan_res = _mm256_or_si256(_mm256_srli_epi32(xi, 16),
                                            _mm256_set1_epi32(0x40));
    const __m256i lsb =
        _mm256_and_si256(_mm256_srli_epi32(xi, 16), _mm256_set1_epi32(1));
    const __m256i rounded = _mm256_srli_epi32(
        _mm256_add_epi32(_mm256_add_epi32(xi, _mm256_set1_epi32(0x7FFF)),
                         lsb),
        16);
    const __m256i r = _mm256_blendv_epi8(rounded, nan_res, is_nan);
    const __m256i pk = _mm256_packus_epi32(r, r);
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(p),
        _mm256_castsi256_si128(_mm256_permute4x64_epi64(pk, 0x08)));
  }
  static float reduce_add(v8 x) {
    // Same tree as the scalar reference: q = lo + hi, movehl fold,
    // final pair.
    const __m128 lo = _mm256_castps256_ps128(x);
    const __m128 hi = _mm256_extractf128_ps(x, 1);
    const __m128 q = _mm_add_ps(lo, hi);
    const __m128 s = _mm_add_ps(q, _mm_movehl_ps(q, q));
    const __m128 r =
        _mm_add_ss(s, _mm_shuffle_ps(s, s, _MM_SHUFFLE(1, 1, 1, 1)));
    return _mm_cvtss_f32(r);
  }
  static void cmul(double* a, const double* b, index_t n) {
    // Two complexes per __m256d: [ar0, ai0, ar1, ai1]. Same pairing
    // as cmul_one: re' = ar*br + (-(ai*bi)), im' = ai*br + ar*bi.
    const __m256d negre = _mm256_set_pd(0.0, -0.0, 0.0, -0.0);
    index_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m256d x = _mm256_loadu_pd(a + 2 * i);
      const __m256d y = _mm256_loadu_pd(b + 2 * i);
      const __m256d br = _mm256_movedup_pd(y);          // [br0,br0,br1,br1]
      const __m256d bi = _mm256_permute_pd(y, 0xF);     // [bi0,bi0,bi1,bi1]
      const __m256d t1 = _mm256_mul_pd(x, br);          // [ar*br, ai*br]x2
      __m256d t2 = _mm256_mul_pd(x, bi);                // [ar*bi, ai*bi]x2
      t2 = _mm256_permute_pd(t2, 0x5);                  // [ai*bi, ar*bi]x2
      t2 = _mm256_xor_pd(t2, negre);
      _mm256_storeu_pd(a + 2 * i, _mm256_add_pd(t1, t2));
    }
    if (i < n) detail::cmul_one(a + 2 * i, b + 2 * i);
  }
};

#if defined(__FMA__)

// ----- int8 vpmaddwd kernels ----------------------------------------
//
// The generic int8 bodies (simd_kernels.h) are exact int32 arithmetic,
// so these overrides only have to compute the same sums faster: one
// 16-byte load covers 8 pixels x 2 interleaved channels, vpmovsxbw
// widens to int16, and vpmaddwd against the broadcast weight pair
// produces the per-pixel two-channel contribution for 8 outputs at
// once. Products are bounded by 2*127*127 so vpmaddwd never saturates.

inline __m256i wpair_i8(const std::int16_t* p) {
  std::int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return _mm256_set1_epi32(v);
}

template <int NCO, bool Deconv>
void i8_rowq_avx2(const std::int8_t* in, const std::int16_t* wgt,
                  index_t wstride_co, std::int32_t* out, index_t ostride_co,
                  index_t cinp, index_t h, index_t w, index_t k, index_t oy,
                  index_t pad, index_t wo) {
  index_t ky0, ky1, xlo, xhi;
  if (Deconv) {
    ky0 = std::max<index_t>(0, oy + pad - h + 1);
    ky1 = std::min<index_t>(k, oy + pad + 1);
    xlo = std::min<index_t>(std::max<index_t>(0, k - 1 - pad), wo);
    xhi = std::max(xlo, std::min<index_t>(wo, w - pad));
  } else {
    ky0 = std::max<index_t>(0, pad - oy);
    ky1 = std::min<index_t>(k, h + pad - oy);
    xlo = std::min<index_t>(pad, wo);
    xhi = std::max(xlo, std::min<index_t>(wo, w - k + pad + 1));
  }
  const auto point = [&](index_t ox) {
    if (Deconv) {
      detail::deconv_point_q_i8<NCO>(in, wgt, wstride_co, out, ostride_co,
                                     cinp, h, w, k, oy, ox, pad);
    } else {
      detail::conv_point_q_i8<NCO>(in, wgt, wstride_co, out, ostride_co,
                                   cinp, h, w, k, oy, ox, pad);
    }
  };
  index_t ox = 0;
  for (; ox < xlo; ++ox) point(ox);
  for (; ox + 16 <= xhi; ox += 16) {
    __m256i a0 = _mm256_setzero_si256(), b0 = a0;
    __m256i a1 = a0, b1 = a0, a2 = a0, b2 = a0, a3 = a0, b3 = a0;
    for (index_t p = 0; p < cinp; ++p) {
      const std::int8_t* plane = in + p * h * w * 2;
      const std::int16_t* wp = wgt + p * k * k * 2;
      for (index_t ky = ky0; ky < ky1; ++ky) {
        const index_t iy = Deconv ? (oy + pad - ky) : (oy - pad + ky);
        for (index_t kx = 0; kx < k; ++kx) {
          const index_t ix = Deconv ? (ox + pad - kx) : (ox - pad + kx);
          const std::int8_t* src = plane + (iy * w + ix) * 2;
          const __m256i x = _mm256_cvtepi8_epi16(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(src)));
          const __m256i y = _mm256_cvtepi8_epi16(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 16)));
          const index_t t = (ky * k + kx) * 2;
          const __m256i w0 = wpair_i8(wp + t);
          a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(x, w0));
          b0 = _mm256_add_epi32(b0, _mm256_madd_epi16(y, w0));
          if (NCO > 1) {
            const __m256i w1 = wpair_i8(wp + wstride_co + t);
            a1 = _mm256_add_epi32(a1, _mm256_madd_epi16(x, w1));
            b1 = _mm256_add_epi32(b1, _mm256_madd_epi16(y, w1));
          }
          if (NCO > 2) {
            const __m256i w2 = wpair_i8(wp + 2 * wstride_co + t);
            a2 = _mm256_add_epi32(a2, _mm256_madd_epi16(x, w2));
            b2 = _mm256_add_epi32(b2, _mm256_madd_epi16(y, w2));
          }
          if (NCO > 3) {
            const __m256i w3 = wpair_i8(wp + 3 * wstride_co + t);
            a3 = _mm256_add_epi32(a3, _mm256_madd_epi16(x, w3));
            b3 = _mm256_add_epi32(b3, _mm256_madd_epi16(y, w3));
          }
        }
      }
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + ox), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + ox + 8), b0);
    if (NCO > 1) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + ostride_co + ox),
                          a1);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + ostride_co + ox + 8), b1);
    }
    if (NCO > 2) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + 2 * ostride_co + ox), a2);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + 2 * ostride_co + ox + 8), b2);
    }
    if (NCO > 3) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + 3 * ostride_co + ox), a3);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + 3 * ostride_co + ox + 8), b3);
    }
  }
  for (; ox + 8 <= xhi; ox += 8) {
    __m256i a0 = _mm256_setzero_si256();
    __m256i a1 = a0, a2 = a0, a3 = a0;
    for (index_t p = 0; p < cinp; ++p) {
      const std::int8_t* plane = in + p * h * w * 2;
      const std::int16_t* wp = wgt + p * k * k * 2;
      for (index_t ky = ky0; ky < ky1; ++ky) {
        const index_t iy = Deconv ? (oy + pad - ky) : (oy - pad + ky);
        for (index_t kx = 0; kx < k; ++kx) {
          const index_t ix = Deconv ? (ox + pad - kx) : (ox - pad + kx);
          const std::int8_t* src = plane + (iy * w + ix) * 2;
          const __m256i x = _mm256_cvtepi8_epi16(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(src)));
          const index_t t = (ky * k + kx) * 2;
          a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(x, wpair_i8(wp + t)));
          if (NCO > 1) {
            a1 = _mm256_add_epi32(
                a1, _mm256_madd_epi16(x, wpair_i8(wp + wstride_co + t)));
          }
          if (NCO > 2) {
            a2 = _mm256_add_epi32(
                a2,
                _mm256_madd_epi16(x, wpair_i8(wp + 2 * wstride_co + t)));
          }
          if (NCO > 3) {
            a3 = _mm256_add_epi32(
                a3,
                _mm256_madd_epi16(x, wpair_i8(wp + 3 * wstride_co + t)));
          }
        }
      }
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + ox), a0);
    if (NCO > 1) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + ostride_co + ox),
                          a1);
    }
    if (NCO > 2) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + 2 * ostride_co + ox), a2);
    }
    if (NCO > 3) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + 3 * ostride_co + ox), a3);
    }
  }
  // Partial-width tail: 1..7 interior columns remain once the 8-wide
  // loop stops. The per-column scalar path costs ~cinp*k*k iterations
  // per column, which at the DDnet shapes dilutes the whole row. Copy
  // the live pixel pairs of each input row into a zero-padded stack
  // buffer and run the same vpmaddwd body: zero input pixels contribute
  // exactly 0 to the int32 sums, so the live lanes are bit-identical to
  // the scalar path and the dead lanes are simply not stored.
  if (ox < xhi && (xhi - ox) + k <= 16) {
    const index_t n = xhi - ox;  // 1..7 live columns
    __m256i a0 = _mm256_setzero_si256();
    __m256i a1 = a0, a2 = a0, a3 = a0;
    const index_t ix0 = Deconv ? (ox + pad - (k - 1)) : (ox - pad);
    const index_t live = (n + k - 1) * 2;  // bytes of real input
    for (index_t p = 0; p < cinp; ++p) {
      const std::int8_t* plane = in + p * h * w * 2;
      const std::int16_t* wp = wgt + p * k * k * 2;
      for (index_t ky = ky0; ky < ky1; ++ky) {
        const index_t iy = Deconv ? (oy + pad - ky) : (oy - pad + ky);
        alignas(32) std::int8_t rb[32];
        std::memcpy(rb, plane + (iy * w + ix0) * 2,
                    static_cast<std::size_t>(live));
        std::memset(rb + live, 0, sizeof(rb) - static_cast<std::size_t>(live));
        for (index_t kx = 0; kx < k; ++kx) {
          const index_t off = Deconv ? (k - 1 - kx) : kx;
          const __m256i x = _mm256_cvtepi8_epi16(_mm_loadu_si128(
              reinterpret_cast<const __m128i*>(rb + off * 2)));
          const index_t t = (ky * k + kx) * 2;
          a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(x, wpair_i8(wp + t)));
          if (NCO > 1) {
            a1 = _mm256_add_epi32(
                a1, _mm256_madd_epi16(x, wpair_i8(wp + wstride_co + t)));
          }
          if (NCO > 2) {
            a2 = _mm256_add_epi32(
                a2,
                _mm256_madd_epi16(x, wpair_i8(wp + 2 * wstride_co + t)));
          }
          if (NCO > 3) {
            a3 = _mm256_add_epi32(
                a3,
                _mm256_madd_epi16(x, wpair_i8(wp + 3 * wstride_co + t)));
          }
        }
      }
    }
    alignas(32) std::int32_t tb[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tb), a0);
    for (index_t j = 0; j < n; ++j) out[ox + j] = tb[j];
    if (NCO > 1) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(tb), a1);
      for (index_t j = 0; j < n; ++j) out[ostride_co + ox + j] = tb[j];
    }
    if (NCO > 2) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(tb), a2);
      for (index_t j = 0; j < n; ++j) out[2 * ostride_co + ox + j] = tb[j];
    }
    if (NCO > 3) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(tb), a3);
      for (index_t j = 0; j < n; ++j) out[3 * ostride_co + ox + j] = tb[j];
    }
    ox = xhi;
  }
  for (; ox < wo; ++ox) point(ox);
}

template <bool Deconv>
void i8_row4_avx2(const std::int8_t* in, const std::int16_t* wgt,
                  index_t wstride_co, std::int32_t* out, index_t ostride_co,
                  int nco, index_t cinp, index_t h, index_t w, index_t k,
                  index_t oy, index_t pad, index_t wo) {
  switch (nco) {
    case 1:
      i8_rowq_avx2<1, Deconv>(in, wgt, wstride_co, out, ostride_co, cinp,
                              h, w, k, oy, pad, wo);
      break;
    case 2:
      i8_rowq_avx2<2, Deconv>(in, wgt, wstride_co, out, ostride_co, cinp,
                              h, w, k, oy, pad, wo);
      break;
    case 3:
      i8_rowq_avx2<3, Deconv>(in, wgt, wstride_co, out, ostride_co, cinp,
                              h, w, k, oy, pad, wo);
      break;
    default:
      i8_rowq_avx2<4, Deconv>(in, wgt, wstride_co, out, ostride_co, cinp,
                              h, w, k, oy, pad, wo);
      break;
  }
}

void conv2d_row4_s1_i8_avx2(const std::int8_t* in, const std::int16_t* wgt,
                            index_t wstride_co, std::int32_t* out,
                            index_t ostride_co, int nco, index_t cinp,
                            index_t h, index_t w, index_t k, index_t oy,
                            index_t pad, index_t wo) {
  i8_row4_avx2<false>(in, wgt, wstride_co, out, ostride_co, nco, cinp, h,
                      w, k, oy, pad, wo);
}

void deconv2d_row4_s1_i8_avx2(const std::int8_t* in,
                              const std::int16_t* wgt, index_t wstride_co,
                              std::int32_t* out, index_t ostride_co,
                              int nco, index_t cinp, index_t h, index_t w,
                              index_t k, index_t oy, index_t pad,
                              index_t wo) {
  i8_row4_avx2<true>(in, wgt, wstride_co, out, ostride_co, nco, cinp, h, w,
                     k, oy, pad, wo);
}

// Vector image of detail::dequant_affine_act: vfmadd (== fmaf), then
// mul+add affine (two roundings), then the activation with the same
// NaN routing as the scalar ternaries.
inline __m256 dequant_affine_act_v(__m256i acc, __m256 m, __m256 bias,
                                   int has_affine, __m256 scale,
                                   __m256 shift, int act, __m256 slope) {
  __m256 t = _mm256_fmadd_ps(_mm256_cvtepi32_ps(acc), m, bias);
  if (has_affine) t = _mm256_add_ps(_mm256_mul_ps(scale, t), shift);
  if (act == 1) {
    t = _mm256_max_ps(t, _mm256_setzero_ps());
  } else if (act == 2) {
    const __m256 gt =
        _mm256_cmp_ps(t, _mm256_setzero_ps(), _CMP_GT_OQ);
    t = _mm256_blendv_ps(_mm256_mul_ps(slope, t), t, gt);
  }
  return t;
}

// Vector image of detail::quant_clamp_rne: maxps/minps keep the
// second-operand-wins NaN semantics (NaN -> -127), and CVTPS2DQ on the
// clamped range is lrintf in the default rounding mode.
inline __m256i quant_i32_v(__m256 v) {
  v = _mm256_max_ps(v, _mm256_set1_ps(-127.0f));
  v = _mm256_min_ps(v, _mm256_set1_ps(127.0f));
  return _mm256_cvtps_epi32(v);
}

// 8 even-channel + 8 odd-channel int32 quants -> 16 interleaved bytes.
inline __m128i interleave_pack_i8(__m256i q0, __m256i q1) {
  const __m256i t =
      _mm256_or_si256(_mm256_slli_epi32(q1, 16),
                      _mm256_and_si256(q0, _mm256_set1_epi32(0xFFFF)));
  const __m256i pk = _mm256_packs_epi16(t, t);
  return _mm256_castsi256_si128(_mm256_permute4x64_epi64(pk, 0x08));
}

void quant_epilogue_store_i8_avx2(const std::int32_t* acc0,
                                  const std::int32_t* acc1,
                                  std::int8_t* out, index_t n,
                                  const QuantEpilogueParams& p) {
  const __m256 m0 = _mm256_set1_ps(p.m0), m1 = _mm256_set1_ps(p.m1);
  const __m256 bb0 = _mm256_set1_ps(p.bias0), bb1 = _mm256_set1_ps(p.bias1);
  const __m256 sc0 = _mm256_set1_ps(p.scale0), sc1 = _mm256_set1_ps(p.scale1);
  const __m256 sh0 = _mm256_set1_ps(p.shift0), sh1 = _mm256_set1_ps(p.shift1);
  const __m256 sl = _mm256_set1_ps(p.slope);
  const __m256 inv = _mm256_set1_ps(p.inv_out);
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc0 + i));
    const __m256 t0 = dequant_affine_act_v(a0, m0, bb0, p.has_affine, sc0,
                                           sh0, p.act, sl);
    const __m256i q0 = quant_i32_v(_mm256_mul_ps(t0, inv));
    __m256i q1 = _mm256_setzero_si256();
    if (acc1) {
      const __m256i a1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc1 + i));
      const __m256 t1 = dequant_affine_act_v(a1, m1, bb1, p.has_affine,
                                             sc1, sh1, p.act, sl);
      q1 = quant_i32_v(_mm256_mul_ps(t1, inv));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i * 2),
                     interleave_pack_i8(q0, q1));
  }
  for (; i < n; ++i) {
    const float t0 =
        detail::dequant_affine_act(acc0[i], p.m0, p.bias0, p.has_affine,
                                   p.scale0, p.shift0, p.act, p.slope);
    out[i * 2] = detail::quant_clamp_rne(t0 * p.inv_out);
    if (acc1) {
      const float t1 =
          detail::dequant_affine_act(acc1[i], p.m1, p.bias1, p.has_affine,
                                     p.scale1, p.shift1, p.act, p.slope);
      out[i * 2 + 1] = detail::quant_clamp_rne(t1 * p.inv_out);
    } else {
      out[i * 2 + 1] = 0;
    }
  }
}

void dequant_epilogue_f32_avx2(const std::int32_t* acc, float* out,
                               index_t n, float m, float bias,
                               int has_affine, float scale, float shift,
                               int act, float slope) {
  const __m256 mv = _mm256_set1_ps(m), bv = _mm256_set1_ps(bias);
  const __m256 sc = _mm256_set1_ps(scale), sh = _mm256_set1_ps(shift);
  const __m256 sl = _mm256_set1_ps(slope);
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    _mm256_storeu_ps(out + i, dequant_affine_act_v(a, mv, bv, has_affine,
                                                   sc, sh, act, sl));
  }
  for (; i < n; ++i) {
    out[i] = detail::dequant_affine_act(acc[i], m, bias, has_affine, scale,
                                        shift, act, slope);
  }
}

void quant_f32_to_i8_avx2(const float* x0, const float* x1,
                          std::int8_t* out, index_t n, float inv_scale) {
  const __m256 inv = _mm256_set1_ps(inv_scale);
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i q0 =
        quant_i32_v(_mm256_mul_ps(_mm256_loadu_ps(x0 + i), inv));
    __m256i q1 = _mm256_setzero_si256();
    if (x1) {
      q1 = quant_i32_v(_mm256_mul_ps(_mm256_loadu_ps(x1 + i), inv));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i * 2),
                     interleave_pack_i8(q0, q1));
  }
  for (; i < n; ++i) {
    out[i * 2] = detail::quant_clamp_rne(x0[i] * inv_scale);
    out[i * 2 + 1] =
        x1 ? detail::quant_clamp_rne(x1[i] * inv_scale) : std::int8_t(0);
  }
}

void dequant_i8_to_f32_avx2(const std::int8_t* in, float* x0, float* x1,
                            index_t n, float scale) {
  const __m256 sc = _mm256_set1_ps(scale);
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i * 2)));
    const __m256i even = _mm256_srai_epi32(_mm256_slli_epi32(x, 16), 16);
    _mm256_storeu_ps(x0 + i,
                     _mm256_mul_ps(_mm256_cvtepi32_ps(even), sc));
    if (x1) {
      const __m256i odd = _mm256_srai_epi32(x, 16);
      _mm256_storeu_ps(x1 + i,
                       _mm256_mul_ps(_mm256_cvtepi32_ps(odd), sc));
    }
  }
  for (; i < n; ++i) {
    x0[i] = static_cast<float>(in[i * 2]) * scale;
    if (x1) x1[i] = static_cast<float>(in[i * 2 + 1]) * scale;
  }
}

#endif  // __FMA__

}  // namespace

const KernelTable* avx2_kernel_table() {
  static const KernelTable t = [] {
    KernelTable tab = detail::make_table<Avx2V>("avx2");
#if defined(__FMA__)
    tab.conv2d_row4_s1_i8 = &conv2d_row4_s1_i8_avx2;
    tab.deconv2d_row4_s1_i8 = &deconv2d_row4_s1_i8_avx2;
    tab.quant_epilogue_store_i8 = &quant_epilogue_store_i8_avx2;
    tab.dequant_epilogue_f32 = &dequant_epilogue_f32_avx2;
    tab.quant_f32_to_i8 = &quant_f32_to_i8_avx2;
    tab.dequant_i8_to_f32 = &dequant_i8_to_f32_avx2;
#endif
    return tab;
  }();
  return &t;
}

}  // namespace ccovid::simd

#else  // !__AVX2__

namespace ccovid::simd {
const KernelTable* avx2_kernel_table() { return nullptr; }
}  // namespace ccovid::simd

#endif
