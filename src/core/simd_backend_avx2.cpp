// AVX2 backend: one __m256 per virtual vector. Compiled with
// -mavx2 -mfma -ffp-contract=off (see src/core/CMakeLists.txt): the
// ISA is enabled, but automatic mul+add fusion is off — vfmadd's
// single rounding would split this backend's results from the scalar
// reference, and the lane-determinism contract (core/simd.h) outranks
// the marginal FLOP win on these memory-bound kernels. When the
// compiler cannot target AVX2 the TU degrades to a stub and dispatch
// falls back to SSE2/scalar.
#include "core/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "core/simd_kernels.h"

namespace ccovid::simd {

namespace {

struct Avx2V {
  using v8 = __m256;
  static v8 zero() { return _mm256_setzero_ps(); }
  static v8 set1(float v) { return _mm256_set1_ps(v); }
  static v8 loadu(const float* p) { return _mm256_loadu_ps(p); }
  static v8 load_partial(const float* p, index_t n) {
    float buf[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (index_t j = 0; j < n; ++j) buf[j] = p[j];
    return _mm256_loadu_ps(buf);
  }
  static void storeu(float* p, v8 x) { _mm256_storeu_ps(p, x); }
  static v8 add(v8 a, v8 b) { return _mm256_add_ps(a, b); }
  static v8 mul(v8 a, v8 b) { return _mm256_mul_ps(a, b); }
  static v8 min(v8 a, v8 b) { return _mm256_min_ps(a, b); }
  static v8 max(v8 a, v8 b) { return _mm256_max_ps(a, b); }
  static v8 madd(v8 acc, v8 a, v8 b) {
    // Two roundings by contract; -ffp-contract=off keeps it that way.
    return _mm256_add_ps(acc, _mm256_mul_ps(a, b));
  }
  static v8 blend_gt0(v8 x, v8 a, v8 b) {
    const __m256 m = _mm256_cmp_ps(x, _mm256_setzero_ps(), _CMP_GT_OQ);
    return _mm256_blendv_ps(b, a, m);
  }
  static float reduce_add(v8 x) {
    // Same tree as the scalar reference: q = lo + hi, movehl fold,
    // final pair.
    const __m128 lo = _mm256_castps256_ps128(x);
    const __m128 hi = _mm256_extractf128_ps(x, 1);
    const __m128 q = _mm_add_ps(lo, hi);
    const __m128 s = _mm_add_ps(q, _mm_movehl_ps(q, q));
    const __m128 r =
        _mm_add_ss(s, _mm_shuffle_ps(s, s, _MM_SHUFFLE(1, 1, 1, 1)));
    return _mm_cvtss_f32(r);
  }
  static void cmul(double* a, const double* b, index_t n) {
    // Two complexes per __m256d: [ar0, ai0, ar1, ai1]. Same pairing
    // as cmul_one: re' = ar*br + (-(ai*bi)), im' = ai*br + ar*bi.
    const __m256d negre = _mm256_set_pd(0.0, -0.0, 0.0, -0.0);
    index_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m256d x = _mm256_loadu_pd(a + 2 * i);
      const __m256d y = _mm256_loadu_pd(b + 2 * i);
      const __m256d br = _mm256_movedup_pd(y);          // [br0,br0,br1,br1]
      const __m256d bi = _mm256_permute_pd(y, 0xF);     // [bi0,bi0,bi1,bi1]
      const __m256d t1 = _mm256_mul_pd(x, br);          // [ar*br, ai*br]x2
      __m256d t2 = _mm256_mul_pd(x, bi);                // [ar*bi, ai*bi]x2
      t2 = _mm256_permute_pd(t2, 0x5);                  // [ai*bi, ar*bi]x2
      t2 = _mm256_xor_pd(t2, negre);
      _mm256_storeu_pd(a + 2 * i, _mm256_add_pd(t1, t2));
    }
    if (i < n) detail::cmul_one(a + 2 * i, b + 2 * i);
  }
};

}  // namespace

const KernelTable* avx2_kernel_table() {
  static const KernelTable t = detail::make_table<Avx2V>("avx2");
  return &t;
}

}  // namespace ccovid::simd

#else  // !__AVX2__

namespace ccovid::simd {
const KernelTable* avx2_kernel_table() { return nullptr; }
}  // namespace ccovid::simd

#endif
