// Scalar emulation backend: a float[8] struct driven by plain loops.
// This is the reference semantics of the vector layer — the SSE2/AVX2
// backends must reproduce it bitwise (tests/test_simd.cpp pins every
// primitive). The compiler is free to auto-vectorize these loops;
// auto-vectorization preserves per-element FP semantics, and the TU is
// compiled with -ffp-contract=off so no mul+add pair can be fused into
// a single-rounding FMA.
#include <cmath>
#include <cstdint>

#include "core/half.h"
#include "core/simd.h"
#include "core/simd_kernels.h"

namespace ccovid::simd {

namespace {

struct ScalarV {
  struct v8 {
    float l[8];
  };
  static v8 zero() { return v8{}; }
  static v8 set1(float v) {
    v8 r;
    for (int j = 0; j < 8; ++j) r.l[j] = v;
    return r;
  }
  static v8 loadu(const float* p) {
    v8 r;
    for (int j = 0; j < 8; ++j) r.l[j] = p[j];
    return r;
  }
  static v8 load_partial(const float* p, index_t n) {
    v8 r{};
    for (index_t j = 0; j < n; ++j) r.l[j] = p[j];
    return r;
  }
  static void storeu(float* p, v8 x) {
    for (int j = 0; j < 8; ++j) p[j] = x.l[j];
  }
  static v8 add(v8 a, v8 b) {
    v8 r;
    for (int j = 0; j < 8; ++j) r.l[j] = a.l[j] + b.l[j];
    return r;
  }
  static v8 mul(v8 a, v8 b) {
    v8 r;
    for (int j = 0; j < 8; ++j) r.l[j] = a.l[j] * b.l[j];
    return r;
  }
  // minps/maxps semantics: the SECOND operand wins on NaN or ties, so
  // the comparisons below are written with the first operand on the
  // left and a strict inequality.
  static v8 min(v8 a, v8 b) {
    v8 r;
    for (int j = 0; j < 8; ++j) r.l[j] = a.l[j] < b.l[j] ? a.l[j] : b.l[j];
    return r;
  }
  static v8 max(v8 a, v8 b) {
    v8 r;
    for (int j = 0; j < 8; ++j) r.l[j] = a.l[j] > b.l[j] ? a.l[j] : b.l[j];
    return r;
  }
  static v8 madd(v8 acc, v8 a, v8 b) {
    v8 r;
    for (int j = 0; j < 8; ++j) r.l[j] = acc.l[j] + a.l[j] * b.l[j];
    return r;
  }
  static v8 blend_gt0(v8 x, v8 a, v8 b) {
    v8 r;
    for (int j = 0; j < 8; ++j) r.l[j] = x.l[j] > 0.0f ? a.l[j] : b.l[j];
    return r;
  }
  // Low-precision contract (core/simd.h): single rounding per lane.
  // std::fmaf is correctly rounded, so this is bitwise VFMADD.
  static v8 fmadd(v8 acc, v8 a, v8 b) {
    v8 r;
    for (int j = 0; j < 8; ++j) r.l[j] = std::fmaf(a.l[j], b.l[j], acc.l[j]);
    return r;
  }
  static v8 loadu_f16(const std::uint16_t* p) {
    v8 r;
    for (int j = 0; j < 8; ++j) r.l[j] = f16_bits_to_f32(p[j]);
    return r;
  }
  static float load1_f16(const std::uint16_t* p) {
    return f16_bits_to_f32(*p);
  }
  static v8 loadu_bf16(const std::uint16_t* p) {
    v8 r;
    for (int j = 0; j < 8; ++j) r.l[j] = bf16_bits_to_f32(p[j]);
    return r;
  }
  static void storeu_f16(std::uint16_t* p, v8 x) {
    for (int j = 0; j < 8; ++j) p[j] = f32_to_f16_bits_ftz(x.l[j]);
  }
  static void storeu_bf16(std::uint16_t* p, v8 x) {
    for (int j = 0; j < 8; ++j) p[j] = f32_to_bf16_bits(x.l[j]);
  }
  // The canonical tree (core/simd.h): lane+4 partials, then a 4-wide
  // movehl-style fold, then the final pair.
  static float reduce_add(v8 x) {
    const float q0 = x.l[0] + x.l[4];
    const float q1 = x.l[1] + x.l[5];
    const float q2 = x.l[2] + x.l[6];
    const float q3 = x.l[3] + x.l[7];
    const float r0 = q0 + q2;
    const float r1 = q1 + q3;
    return r0 + r1;
  }
  static void cmul(double* a, const double* b, index_t n) {
    for (index_t i = 0; i < n; ++i) detail::cmul_one(a + 2 * i, b + 2 * i);
  }
};

}  // namespace

const KernelTable* scalar_kernel_table() {
  static const KernelTable t = detail::make_table<ScalarV>("scalar");
  return &t;
}

}  // namespace ccovid::simd
