// SSE2 backend: the 8 virtual lanes are two __m128 halves (lanes 0-3
// in lo, 4-7 in hi). SSE2 is the x86-64 baseline, so this TU needs no
// special flags beyond -ffp-contract=off; on non-x86 targets it
// compiles to a stub that reports the backend as absent.
#include "core/simd.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <cmath>
#include <cstdint>

#include "core/half.h"
#include "core/simd_kernels.h"

namespace ccovid::simd {

namespace {

struct Sse2V {
  struct v8 {
    __m128 lo, hi;
  };
  static v8 zero() { return {_mm_setzero_ps(), _mm_setzero_ps()}; }
  static v8 set1(float v) { return {_mm_set1_ps(v), _mm_set1_ps(v)}; }
  static v8 loadu(const float* p) {
    return {_mm_loadu_ps(p), _mm_loadu_ps(p + 4)};
  }
  static v8 load_partial(const float* p, index_t n) {
    float buf[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (index_t j = 0; j < n; ++j) buf[j] = p[j];
    return loadu(buf);
  }
  static void storeu(float* p, v8 x) {
    _mm_storeu_ps(p, x.lo);
    _mm_storeu_ps(p + 4, x.hi);
  }
  static v8 add(v8 a, v8 b) {
    return {_mm_add_ps(a.lo, b.lo), _mm_add_ps(a.hi, b.hi)};
  }
  static v8 mul(v8 a, v8 b) {
    return {_mm_mul_ps(a.lo, b.lo), _mm_mul_ps(a.hi, b.hi)};
  }
  static v8 min(v8 a, v8 b) {
    return {_mm_min_ps(a.lo, b.lo), _mm_min_ps(a.hi, b.hi)};
  }
  static v8 max(v8 a, v8 b) {
    return {_mm_max_ps(a.lo, b.lo), _mm_max_ps(a.hi, b.hi)};
  }
  static v8 madd(v8 acc, v8 a, v8 b) {
    return {_mm_add_ps(acc.lo, _mm_mul_ps(a.lo, b.lo)),
            _mm_add_ps(acc.hi, _mm_mul_ps(a.hi, b.hi))};
  }
  static v8 blend_gt0(v8 x, v8 a, v8 b) {
    const __m128 z = _mm_setzero_ps();
    const __m128 mlo = _mm_cmpgt_ps(x.lo, z);
    const __m128 mhi = _mm_cmpgt_ps(x.hi, z);
    return {_mm_or_ps(_mm_and_ps(mlo, a.lo), _mm_andnot_ps(mlo, b.lo)),
            _mm_or_ps(_mm_and_ps(mhi, a.hi), _mm_andnot_ps(mhi, b.hi))};
  }
  // Low-precision contract (core/simd.h): single-rounded lanes. SSE2
  // has no FMA instruction, so go through correctly rounded std::fmaf
  // per lane — bitwise what the AVX2 backend's VFMADD produces.
  static v8 fmadd(v8 acc, v8 a, v8 b) {
    float fa[8], fb[8], fc[8];
    storeu(fa, a);
    storeu(fb, b);
    storeu(fc, acc);
    for (int j = 0; j < 8; ++j) fc[j] = std::fmaf(fa[j], fb[j], fc[j]);
    return loadu(fc);
  }
  static v8 loadu_f16(const std::uint16_t* p) {
    float buf[8];
    for (int j = 0; j < 8; ++j) buf[j] = f16_bits_to_f32(p[j]);
    return loadu(buf);
  }
  static float load1_f16(const std::uint16_t* p) {
    return f16_bits_to_f32(*p);
  }
  static v8 loadu_bf16(const std::uint16_t* p) {
    float buf[8];
    for (int j = 0; j < 8; ++j) buf[j] = bf16_bits_to_f32(p[j]);
    return loadu(buf);
  }
  static void storeu_f16(std::uint16_t* p, v8 x) {
    float buf[8];
    storeu(buf, x);
    for (int j = 0; j < 8; ++j) p[j] = f32_to_f16_bits_ftz(buf[j]);
  }
  static void storeu_bf16(std::uint16_t* p, v8 x) {
    float buf[8];
    storeu(buf, x);
    for (int j = 0; j < 8; ++j) p[j] = f32_to_bf16_bits(buf[j]);
  }
  static float reduce_add(v8 x) {
    // q = lanes + lanes+4; fold high pair onto low pair; final add.
    const __m128 q = _mm_add_ps(x.lo, x.hi);
    const __m128 s = _mm_add_ps(q, _mm_movehl_ps(q, q));
    const __m128 r =
        _mm_add_ss(s, _mm_shuffle_ps(s, s, _MM_SHUFFLE(1, 1, 1, 1)));
    return _mm_cvtss_f32(r);
  }
  static void cmul(double* a, const double* b, index_t n) {
    // One complex per __m128d: [re, im]. re' = ar*br - ai*bi computed
    // as ar*br + (-(ai*bi)) — sign-bit flip then add is bitwise equal
    // to subtraction — and im' = ai*br + ar*bi, matching cmul_one.
    const __m128d negre = _mm_set_pd(0.0, -0.0);
    for (index_t i = 0; i < n; ++i) {
      const __m128d x = _mm_loadu_pd(a + 2 * i);
      const __m128d y = _mm_loadu_pd(b + 2 * i);
      const __m128d br = _mm_unpacklo_pd(y, y);  // [br, br]
      const __m128d bi = _mm_unpackhi_pd(y, y);  // [bi, bi]
      const __m128d t1 = _mm_mul_pd(x, br);      // [ar*br, ai*br]
      __m128d t2 = _mm_mul_pd(x, bi);            // [ar*bi, ai*bi]
      t2 = _mm_shuffle_pd(t2, t2, 0x1);          // [ai*bi, ar*bi]
      t2 = _mm_xor_pd(t2, negre);                // [-(ai*bi), ar*bi]
      _mm_storeu_pd(a + 2 * i, _mm_add_pd(t1, t2));
    }
  }
};

}  // namespace

const KernelTable* sse2_kernel_table() {
  static const KernelTable t = detail::make_table<Sse2V>("sse2");
  return &t;
}

}  // namespace ccovid::simd

#else  // !__SSE2__

namespace ccovid::simd {
const KernelTable* sse2_kernel_table() { return nullptr; }
}  // namespace ccovid::simd

#endif
