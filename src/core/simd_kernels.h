// Backend-generic vector kernel bodies. Each per-backend translation
// unit (simd_backend_*.cpp) instantiates make_table<V>() with its lane
// type V and hands the resulting function-pointer table to the
// dispatcher. The required V interface:
//
//   using v8 = ...;                       // 8 x f32 value type
//   v8    zero();  v8 set1(float);
//   v8    loadu(const float*);            // unaligned 8-lane load
//   v8    load_partial(const float*, n);  // lanes [n,8) zero-filled
//   void  storeu(float*, v8);
//   v8    add/mul/min/max(v8, v8);
//   v8    madd(v8 acc, v8 a, v8 b);       // acc + a*b, TWO roundings
//   v8    blend_gt0(v8 x, v8 a, v8 b);    // per lane: x > 0 ? a : b
//   float reduce_add(v8);                 // canonical fixed tree
//   void  cmul(double* a, const double* b, index_t n);  // complex a*=b
//
// Lane determinism: per-output lanes accumulate in scalar order (rule 1
// of the contract in core/simd.h), and the border/tail scalar paths
// below are shared source, so every backend runs the identical
// instruction-order-insensitive arithmetic on the identical elements.
#pragma once

#include <algorithm>

#include "core/simd.h"

namespace ccovid::simd::detail {

// Scalar single-output conv tap loop — used for border columns and
// interior tails by every backend. Tap order (ci, ky, kx) ascending
// with bounds-check skips, matching the historical scalar kernels.
inline float conv_point(const float* in, const float* wgt, index_t wstride,
                        index_t cin, index_t h, index_t w, index_t k,
                        index_t oy, index_t ox, index_t pad, float bias) {
  float acc = bias;
  const index_t iy0 = oy - pad;
  const index_t ix0 = ox - pad;
  for (index_t ci = 0; ci < cin; ++ci) {
    const float* inp = in + ci * h * w;
    const float* wp = wgt + ci * wstride;
    for (index_t ky = 0; ky < k; ++ky) {
      const index_t iy = iy0 + ky;
      if (iy < 0 || iy >= h) continue;
      for (index_t kx = 0; kx < k; ++kx) {
        const index_t ix = ix0 + kx;
        if (ix < 0 || ix >= w) continue;
        acc += inp[iy * w + ix] * wp[ky * k + kx];
      }
    }
  }
  return acc;
}

// Scalar single-output gather-deconv tap loop (iy = oy + pad - ky).
inline float deconv_point(const float* in, const float* wgt,
                          index_t wstride, index_t cin, index_t h,
                          index_t w, index_t k, index_t oy, index_t ox,
                          index_t pad, float bias) {
  float acc = bias;
  for (index_t ci = 0; ci < cin; ++ci) {
    const float* inp = in + ci * h * w;
    const float* wp = wgt + ci * wstride;
    for (index_t ky = 0; ky < k; ++ky) {
      const index_t iy = oy + pad - ky;
      if (iy < 0 || iy >= h) continue;
      for (index_t kx = 0; kx < k; ++kx) {
        const index_t ix = ox + pad - kx;
        if (ix < 0 || ix >= w) continue;
        acc += inp[iy * w + ix] * wp[ky * k + kx];
      }
    }
  }
  return acc;
}

// Border-column companions of the quad row kernels: one output column
// for NCO consecutive output channels, sharing every input load across
// four independent scalar accumulator chains. Per channel the tap order
// (ci, ky, kx ascending, bounds-check skips) is exactly conv_point /
// deconv_point, so the results are bitwise identical.
template <int NCO>
inline void conv_point_q(const float* in, const float* wgt,
                         index_t wstride_ci, index_t wstride_co, float* out,
                         index_t ostride_co, index_t cin, index_t h,
                         index_t w, index_t k, index_t oy, index_t ox,
                         index_t pad, const float* bias) {
  float a0 = bias[0];
  float a1 = NCO > 1 ? bias[1] : 0.0f;
  float a2 = NCO > 2 ? bias[2] : 0.0f;
  float a3 = NCO > 3 ? bias[3] : 0.0f;
  const index_t iy0 = oy - pad;
  const index_t ix0 = ox - pad;
  for (index_t ci = 0; ci < cin; ++ci) {
    const float* inp = in + ci * h * w;
    const float* w0 = wgt + ci * wstride_ci;
    const float* w1 = w0 + wstride_co;
    const float* w2 = w1 + wstride_co;
    const float* w3 = w2 + wstride_co;
    for (index_t ky = 0; ky < k; ++ky) {
      const index_t iy = iy0 + ky;
      if (iy < 0 || iy >= h) continue;
      for (index_t kx = 0; kx < k; ++kx) {
        const index_t ix = ix0 + kx;
        if (ix < 0 || ix >= w) continue;
        const float x = inp[iy * w + ix];
        a0 += x * w0[ky * k + kx];
        if (NCO > 1) a1 += x * w1[ky * k + kx];
        if (NCO > 2) a2 += x * w2[ky * k + kx];
        if (NCO > 3) a3 += x * w3[ky * k + kx];
      }
    }
  }
  out[ox] = a0;
  if (NCO > 1) out[ostride_co + ox] = a1;
  if (NCO > 2) out[2 * ostride_co + ox] = a2;
  if (NCO > 3) out[3 * ostride_co + ox] = a3;
}

template <int NCO>
inline void deconv_point_q(const float* in, const float* wgt,
                           index_t wstride_ci, index_t wstride_co,
                           float* out, index_t ostride_co, index_t cin,
                           index_t h, index_t w, index_t k, index_t oy,
                           index_t ox, index_t pad, const float* bias) {
  float a0 = bias[0];
  float a1 = NCO > 1 ? bias[1] : 0.0f;
  float a2 = NCO > 2 ? bias[2] : 0.0f;
  float a3 = NCO > 3 ? bias[3] : 0.0f;
  for (index_t ci = 0; ci < cin; ++ci) {
    const float* inp = in + ci * h * w;
    const float* w0 = wgt + ci * wstride_ci;
    const float* w1 = w0 + wstride_co;
    const float* w2 = w1 + wstride_co;
    const float* w3 = w2 + wstride_co;
    for (index_t ky = 0; ky < k; ++ky) {
      const index_t iy = oy + pad - ky;
      if (iy < 0 || iy >= h) continue;
      for (index_t kx = 0; kx < k; ++kx) {
        const index_t ix = ox + pad - kx;
        if (ix < 0 || ix >= w) continue;
        const float x = inp[iy * w + ix];
        a0 += x * w0[ky * k + kx];
        if (NCO > 1) a1 += x * w1[ky * k + kx];
        if (NCO > 2) a2 += x * w2[ky * k + kx];
        if (NCO > 3) a3 += x * w3[ky * k + kx];
      }
    }
  }
  out[ox] = a0;
  if (NCO > 1) out[ostride_co + ox] = a1;
  if (NCO > 2) out[2 * ostride_co + ox] = a2;
  if (NCO > 3) out[3 * ostride_co + ox] = a3;
}

template <class V>
struct Kernels {
  using v8 = typename V::v8;

  static void sgemm_micro_4x8(const float* CCOVID_RESTRICT a, index_t lda,
                              const float* CCOVID_RESTRICT bpack,
                              float* CCOVID_RESTRICT c, index_t ldc,
                              index_t kc) {
    v8 acc0 = V::zero(), acc1 = V::zero(), acc2 = V::zero(),
       acc3 = V::zero();
    for (index_t p = 0; p < kc; ++p) {
      const v8 b = V::loadu(bpack + p * 8);
      acc0 = V::madd(acc0, V::set1(a[0 * lda + p]), b);
      acc1 = V::madd(acc1, V::set1(a[1 * lda + p]), b);
      acc2 = V::madd(acc2, V::set1(a[2 * lda + p]), b);
      acc3 = V::madd(acc3, V::set1(a[3 * lda + p]), b);
    }
    V::storeu(c + 0 * ldc, V::add(V::loadu(c + 0 * ldc), acc0));
    V::storeu(c + 1 * ldc, V::add(V::loadu(c + 1 * ldc), acc1));
    V::storeu(c + 2 * ldc, V::add(V::loadu(c + 2 * ldc), acc2));
    V::storeu(c + 3 * ldc, V::add(V::loadu(c + 3 * ldc), acc3));
  }

  static void conv2d_row_s1(const float* CCOVID_RESTRICT in,
                            const float* CCOVID_RESTRICT wgt,
                            index_t wstride, float* CCOVID_RESTRICT out,
                            index_t cin, index_t h, index_t w, index_t k,
                            index_t oy, index_t pad, index_t wo,
                            float bias) {
    // Interior x span: every kx tap in bounds. Valid ky rows depend
    // only on oy and bound the tap loop identically on both paths.
    const index_t ky0 = std::max<index_t>(0, pad - oy);
    const index_t ky1 = std::min<index_t>(k, h + pad - oy);
    const index_t xlo = std::min<index_t>(pad, wo);
    const index_t xhi = std::max(xlo, std::min<index_t>(wo, w - k + pad + 1));
    index_t ox = 0;
    for (; ox < xlo; ++ox) {
      out[ox] = conv_point(in, wgt, wstride, cin, h, w, k, oy, ox, pad,
                           bias);
    }
    const index_t iy0 = oy - pad;
    for (; ox + 8 <= xhi; ox += 8) {
      v8 acc = V::set1(bias);
      const index_t ix0 = ox - pad;
      for (index_t ci = 0; ci < cin; ++ci) {
        const float* inp = in + ci * h * w;
        const float* wp = wgt + ci * wstride;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const float* row = inp + (iy0 + ky) * w + ix0;
          for (index_t kx = 0; kx < k; ++kx) {
            acc = V::madd(acc, V::loadu(row + kx), V::set1(wp[ky * k + kx]));
          }
        }
      }
      V::storeu(out + ox, acc);
    }
    for (; ox < wo; ++ox) {
      out[ox] = conv_point(in, wgt, wstride, cin, h, w, k, oy, ox, pad,
                           bias);
    }
  }

  static void deconv2d_row_s1(const float* CCOVID_RESTRICT in,
                              const float* CCOVID_RESTRICT wgt,
                              index_t wstride, float* CCOVID_RESTRICT out,
                              index_t cin, index_t h, index_t w, index_t k,
                              index_t oy, index_t pad, index_t wo,
                              float bias) {
    // ix = ox + pad - kx must stay in [0, w) for every kx in [0, k).
    const index_t ky0 = std::max<index_t>(0, oy + pad - h + 1);
    const index_t ky1 = std::min<index_t>(k, oy + pad + 1);
    const index_t xlo = std::min<index_t>(std::max<index_t>(0, k - 1 - pad),
                                          wo);
    const index_t xhi = std::max(xlo, std::min<index_t>(wo, w - pad));
    index_t ox = 0;
    for (; ox < xlo; ++ox) {
      out[ox] = deconv_point(in, wgt, wstride, cin, h, w, k, oy, ox, pad,
                             bias);
    }
    for (; ox + 8 <= xhi; ox += 8) {
      v8 acc = V::set1(bias);
      for (index_t ci = 0; ci < cin; ++ci) {
        const float* inp = in + ci * h * w;
        const float* wp = wgt + ci * wstride;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const float* row = inp + (oy + pad - ky) * w + (ox + pad);
          for (index_t kx = 0; kx < k; ++kx) {
            acc = V::madd(acc, V::loadu(row - kx), V::set1(wp[ky * k + kx]));
          }
        }
      }
      V::storeu(out + ox, acc);
    }
    for (; ox < wo; ++ox) {
      out[ox] = deconv_point(in, wgt, wstride, cin, h, w, k, oy, ox, pad,
                             bias);
    }
  }

  // Quad-channel row kernels. NCO independent accumulator chains (one
  // per output channel) share each 8-lane input load; every chain
  // replays the exact (ci, ky, kx) tap order of the single-channel
  // kernel, so lane contents match conv2d_row_s1 / deconv2d_row_s1 bit
  // for bit. Border columns reuse the shared scalar points per channel.
  template <int NCO, int K>
  static void conv2d_rowq_body(const float* CCOVID_RESTRICT in,
                               const float* CCOVID_RESTRICT wgt,
                               index_t wstride_ci, index_t wstride_co,
                               float* CCOVID_RESTRICT out,
                               index_t ostride_co, index_t cin, index_t h,
                               index_t w, index_t k, index_t oy,
                               index_t pad, index_t wo,
                               const float* CCOVID_RESTRICT bias) {
    // K > 0: compile-time kernel extent — the kx/ky loops below fully
    // unroll and every weight index folds into a constant displacement.
    const index_t kk = K > 0 ? index_t(K) : k;
    const index_t ky0 = std::max<index_t>(0, pad - oy);
    const index_t ky1 = std::min<index_t>(kk, h + pad - oy);
    const index_t xlo = std::min<index_t>(pad, wo);
    const index_t xhi =
        std::max(xlo, std::min<index_t>(wo, w - kk + pad + 1));
    index_t ox = 0;
    for (; ox < xlo; ++ox) {
      conv_point_q<NCO>(in, wgt, wstride_ci, wstride_co, out,
                        ostride_co, cin, h, w, k, oy, ox, pad, bias);
    }
    const index_t iy0 = oy - pad;
    // Double-wide interior: two 8-lane column blocks per pass share
    // every weight broadcast, giving up to eight independent chains in
    // flight. Column block [ox+8, ox+16) sees the identical tap stream
    // it would in the single-block pass below.
    for (; ox + 16 <= xhi; ox += 16) {
      v8 a0 = V::set1(bias[0]), b0 = a0;
      v8 a1 = NCO > 1 ? V::set1(bias[1]) : V::zero(), b1 = a1;
      v8 a2 = NCO > 2 ? V::set1(bias[2]) : V::zero(), b2 = a2;
      v8 a3 = NCO > 3 ? V::set1(bias[3]) : V::zero(), b3 = a3;
      const index_t ix0 = ox - pad;
      for (index_t ci = 0; ci < cin; ++ci) {
        const float* inp = in + ci * h * w;
        const float* w0 = wgt + ci * wstride_ci;
        const float* w1 = w0 + wstride_co;
        const float* w2 = w1 + wstride_co;
        const float* w3 = w2 + wstride_co;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const float* row = inp + (iy0 + ky) * w + ix0;
          const index_t kb = ky * kk;
          for (index_t kx = 0; kx < kk; ++kx) {
            const v8 v = V::loadu(row + kx);
            const v8 u = V::loadu(row + kx + 8);
            const v8 wv0 = V::set1(w0[kb + kx]);
            a0 = V::madd(a0, v, wv0);
            b0 = V::madd(b0, u, wv0);
            if (NCO > 1) {
              const v8 wv1 = V::set1(w1[kb + kx]);
              a1 = V::madd(a1, v, wv1);
              b1 = V::madd(b1, u, wv1);
            }
            if (NCO > 2) {
              const v8 wv2 = V::set1(w2[kb + kx]);
              a2 = V::madd(a2, v, wv2);
              b2 = V::madd(b2, u, wv2);
            }
            if (NCO > 3) {
              const v8 wv3 = V::set1(w3[kb + kx]);
              a3 = V::madd(a3, v, wv3);
              b3 = V::madd(b3, u, wv3);
            }
          }
        }
      }
      V::storeu(out + ox, a0);
      V::storeu(out + ox + 8, b0);
      if (NCO > 1) {
        V::storeu(out + ostride_co + ox, a1);
        V::storeu(out + ostride_co + ox + 8, b1);
      }
      if (NCO > 2) {
        V::storeu(out + 2 * ostride_co + ox, a2);
        V::storeu(out + 2 * ostride_co + ox + 8, b2);
      }
      if (NCO > 3) {
        V::storeu(out + 3 * ostride_co + ox, a3);
        V::storeu(out + 3 * ostride_co + ox + 8, b3);
      }
    }
    for (; ox + 8 <= xhi; ox += 8) {
      // Hand-unrolled accumulators (not an array: the named values must
      // live in registers — a rolled j-loop leaves them on the stack
      // and re-serializes the chains through store-forwarding).
      v8 a0 = V::set1(bias[0]);
      v8 a1 = NCO > 1 ? V::set1(bias[1]) : V::zero();
      v8 a2 = NCO > 2 ? V::set1(bias[2]) : V::zero();
      v8 a3 = NCO > 3 ? V::set1(bias[3]) : V::zero();
      const index_t ix0 = ox - pad;
      for (index_t ci = 0; ci < cin; ++ci) {
        const float* inp = in + ci * h * w;
        const float* w0 = wgt + ci * wstride_ci;
        const float* w1 = w0 + wstride_co;
        const float* w2 = w1 + wstride_co;
        const float* w3 = w2 + wstride_co;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const float* row = inp + (iy0 + ky) * w + ix0;
          const index_t kb = ky * kk;
          for (index_t kx = 0; kx < kk; ++kx) {
            const v8 v = V::loadu(row + kx);
            a0 = V::madd(a0, v, V::set1(w0[kb + kx]));
            if (NCO > 1) a1 = V::madd(a1, v, V::set1(w1[kb + kx]));
            if (NCO > 2) a2 = V::madd(a2, v, V::set1(w2[kb + kx]));
            if (NCO > 3) a3 = V::madd(a3, v, V::set1(w3[kb + kx]));
          }
        }
      }
      V::storeu(out + ox, a0);
      if (NCO > 1) V::storeu(out + ostride_co + ox, a1);
      if (NCO > 2) V::storeu(out + 2 * ostride_co + ox, a2);
      if (NCO > 3) V::storeu(out + 3 * ostride_co + ox, a3);
    }
    for (; ox < wo; ++ox) {
      conv_point_q<NCO>(in, wgt, wstride_ci, wstride_co, out,
                        ostride_co, cin, h, w, k, oy, ox, pad, bias);
    }
  }

  template <int NCO>
  static void conv2d_rowq_k(const float* in, const float* wgt,
                 index_t wstride_ci, index_t wstride_co, float* out,
                 index_t ostride_co, index_t cin, index_t h, index_t w,
                 index_t k, index_t oy, index_t pad, index_t wo,
                 const float* bias) {
    switch (k) {
      case 1:
        conv2d_rowq_body<NCO, 1>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
      case 3:
        conv2d_rowq_body<NCO, 3>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
      case 5:
        conv2d_rowq_body<NCO, 5>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
      case 7:
        conv2d_rowq_body<NCO, 7>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
      default:
        conv2d_rowq_body<NCO, 0>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
    }
  }

  static void conv2d_row4_s1(const float* in, const float* wgt,
                             index_t wstride_ci, index_t wstride_co,
                             float* out, index_t ostride_co, int nco,
                             index_t cin, index_t h, index_t w, index_t k,
                             index_t oy, index_t pad, index_t wo,
                             const float* bias) {
    switch (nco) {
      case 1: conv2d_rowq_k<1>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias); break;
      case 2: conv2d_rowq_k<2>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias); break;
      case 3: conv2d_rowq_k<3>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias); break;
      default: conv2d_rowq_k<4>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias); break;
    }
  }

  template <int NCO, int K>
  static void deconv2d_rowq_body(const float* CCOVID_RESTRICT in,
                                 const float* CCOVID_RESTRICT wgt,
                                 index_t wstride_ci, index_t wstride_co,
                                 float* CCOVID_RESTRICT out,
                                 index_t ostride_co, index_t cin, index_t h,
                                 index_t w, index_t k, index_t oy,
                                 index_t pad, index_t wo,
                                 const float* CCOVID_RESTRICT bias) {
    const index_t kk = K > 0 ? index_t(K) : k;
    const index_t ky0 = std::max<index_t>(0, oy + pad - h + 1);
    const index_t ky1 = std::min<index_t>(kk, oy + pad + 1);
    const index_t xlo =
        std::min<index_t>(std::max<index_t>(0, kk - 1 - pad), wo);
    const index_t xhi = std::max(xlo, std::min<index_t>(wo, w - pad));
    index_t ox = 0;
    for (; ox < xlo; ++ox) {
      deconv_point_q<NCO>(in, wgt, wstride_ci, wstride_co, out,
                          ostride_co, cin, h, w, k, oy, ox, pad, bias);
    }
    for (; ox + 16 <= xhi; ox += 16) {
      v8 a0 = V::set1(bias[0]), b0 = a0;
      v8 a1 = NCO > 1 ? V::set1(bias[1]) : V::zero(), b1 = a1;
      v8 a2 = NCO > 2 ? V::set1(bias[2]) : V::zero(), b2 = a2;
      v8 a3 = NCO > 3 ? V::set1(bias[3]) : V::zero(), b3 = a3;
      for (index_t ci = 0; ci < cin; ++ci) {
        const float* inp = in + ci * h * w;
        const float* w0 = wgt + ci * wstride_ci;
        const float* w1 = w0 + wstride_co;
        const float* w2 = w1 + wstride_co;
        const float* w3 = w2 + wstride_co;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const float* row = inp + (oy + pad - ky) * w + (ox + pad);
          const index_t kb = ky * kk;
          for (index_t kx = 0; kx < kk; ++kx) {
            const v8 v = V::loadu(row - kx);
            const v8 u = V::loadu(row - kx + 8);
            const v8 wv0 = V::set1(w0[kb + kx]);
            a0 = V::madd(a0, v, wv0);
            b0 = V::madd(b0, u, wv0);
            if (NCO > 1) {
              const v8 wv1 = V::set1(w1[kb + kx]);
              a1 = V::madd(a1, v, wv1);
              b1 = V::madd(b1, u, wv1);
            }
            if (NCO > 2) {
              const v8 wv2 = V::set1(w2[kb + kx]);
              a2 = V::madd(a2, v, wv2);
              b2 = V::madd(b2, u, wv2);
            }
            if (NCO > 3) {
              const v8 wv3 = V::set1(w3[kb + kx]);
              a3 = V::madd(a3, v, wv3);
              b3 = V::madd(b3, u, wv3);
            }
          }
        }
      }
      V::storeu(out + ox, a0);
      V::storeu(out + ox + 8, b0);
      if (NCO > 1) {
        V::storeu(out + ostride_co + ox, a1);
        V::storeu(out + ostride_co + ox + 8, b1);
      }
      if (NCO > 2) {
        V::storeu(out + 2 * ostride_co + ox, a2);
        V::storeu(out + 2 * ostride_co + ox + 8, b2);
      }
      if (NCO > 3) {
        V::storeu(out + 3 * ostride_co + ox, a3);
        V::storeu(out + 3 * ostride_co + ox + 8, b3);
      }
    }
    for (; ox + 8 <= xhi; ox += 8) {
      v8 a0 = V::set1(bias[0]);
      v8 a1 = NCO > 1 ? V::set1(bias[1]) : V::zero();
      v8 a2 = NCO > 2 ? V::set1(bias[2]) : V::zero();
      v8 a3 = NCO > 3 ? V::set1(bias[3]) : V::zero();
      for (index_t ci = 0; ci < cin; ++ci) {
        const float* inp = in + ci * h * w;
        const float* w0 = wgt + ci * wstride_ci;
        const float* w1 = w0 + wstride_co;
        const float* w2 = w1 + wstride_co;
        const float* w3 = w2 + wstride_co;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const float* row = inp + (oy + pad - ky) * w + (ox + pad);
          const index_t kb = ky * kk;
          for (index_t kx = 0; kx < kk; ++kx) {
            const v8 v = V::loadu(row - kx);
            a0 = V::madd(a0, v, V::set1(w0[kb + kx]));
            if (NCO > 1) a1 = V::madd(a1, v, V::set1(w1[kb + kx]));
            if (NCO > 2) a2 = V::madd(a2, v, V::set1(w2[kb + kx]));
            if (NCO > 3) a3 = V::madd(a3, v, V::set1(w3[kb + kx]));
          }
        }
      }
      V::storeu(out + ox, a0);
      if (NCO > 1) V::storeu(out + ostride_co + ox, a1);
      if (NCO > 2) V::storeu(out + 2 * ostride_co + ox, a2);
      if (NCO > 3) V::storeu(out + 3 * ostride_co + ox, a3);
    }
    for (; ox < wo; ++ox) {
      deconv_point_q<NCO>(in, wgt, wstride_ci, wstride_co, out,
                          ostride_co, cin, h, w, k, oy, ox, pad, bias);
    }
  }

  template <int NCO>
  static void deconv2d_rowq_k(const float* in, const float* wgt,
                 index_t wstride_ci, index_t wstride_co, float* out,
                 index_t ostride_co, index_t cin, index_t h, index_t w,
                 index_t k, index_t oy, index_t pad, index_t wo,
                 const float* bias) {
    switch (k) {
      case 1:
        deconv2d_rowq_body<NCO, 1>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
      case 3:
        deconv2d_rowq_body<NCO, 3>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
      case 5:
        deconv2d_rowq_body<NCO, 5>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
      case 7:
        deconv2d_rowq_body<NCO, 7>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
      default:
        deconv2d_rowq_body<NCO, 0>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
    }
  }

  static void deconv2d_row4_s1(const float* in, const float* wgt,
                             index_t wstride_ci, index_t wstride_co,
                             float* out, index_t ostride_co, int nco,
                             index_t cin, index_t h, index_t w, index_t k,
                             index_t oy, index_t pad, index_t wo,
                             const float* bias) {
    switch (nco) {
      case 1: deconv2d_rowq_k<1>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias); break;
      case 2: deconv2d_rowq_k<2>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias); break;
      case 3: deconv2d_rowq_k<3>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias); break;
      default: deconv2d_rowq_k<4>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias); break;
    }
  }

  static void scale_shift(const float* CCOVID_RESTRICT x,
                          float* CCOVID_RESTRICT y, index_t n, float scale,
                          float shift) {
    const v8 sc = V::set1(scale), sh = V::set1(shift);
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      V::storeu(y + i, V::madd(sh, V::loadu(x + i), sc));
    }
    for (; i < n; ++i) y[i] = scale * x[i] + shift;
  }

  // No restrict: the graph executor runs this in place on a conv
  // output slab (x == y). Per element this is exactly scale_shift
  // followed by relu/leaky_relu, so fused and unfused epilogues agree
  // bitwise at every position (vector body and scalar tail alike).
  static void scale_shift_act(const float* x, float* y, index_t n,
                              float scale, float shift, int act,
                              float slope) {
    const v8 sc = V::set1(scale), sh = V::set1(shift);
    const v8 z = V::zero();
    const v8 sl = V::set1(slope);
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      v8 t = V::madd(sh, V::loadu(x + i), sc);
      if (act == 1) {
        t = V::max(t, z);
      } else if (act == 2) {
        t = V::blend_gt0(t, t, V::mul(sl, t));
      }
      V::storeu(y + i, t);
    }
    for (; i < n; ++i) {
      float t = scale * x[i] + shift;
      if (act == 1) {
        t = t > 0.0f ? t : 0.0f;
      } else if (act == 2) {
        t = t > 0.0f ? t : slope * t;
      }
      y[i] = t;
    }
  }

  static void relu(const float* CCOVID_RESTRICT x, float* CCOVID_RESTRICT y,
                   index_t n) {
    const v8 z = V::zero();
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      V::storeu(y + i, V::max(V::loadu(x + i), z));
    }
    // Scalar tail keeps maxps semantics: NaN and -0 both map to +0.
    for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
  }

  static void leaky_relu(const float* CCOVID_RESTRICT x,
                         float* CCOVID_RESTRICT y, index_t n, float slope) {
    const v8 sl = V::set1(slope);
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const v8 v = V::loadu(x + i);
      V::storeu(y + i, V::blend_gt0(v, v, V::mul(sl, v)));
    }
    for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : slope * x[i];
  }

  static void add_scalar(float* CCOVID_RESTRICT y, index_t n, float v) {
    const v8 b = V::set1(v);
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      V::storeu(y + i, V::add(V::loadu(y + i), b));
    }
    for (; i < n; ++i) y[i] += v;
  }

  static float dot(const float* CCOVID_RESTRICT a,
                   const float* CCOVID_RESTRICT b, index_t n) {
    v8 acc = V::zero();
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      acc = V::madd(acc, V::loadu(a + i), V::loadu(b + i));
    }
    if (i < n) {
      // Zero-filled lanes contribute +0 products; the virtual-lane
      // partials stay identical at every physical width.
      acc = V::madd(acc, V::load_partial(a + i, n - i),
                    V::load_partial(b + i, n - i));
    }
    return V::reduce_add(acc);
  }

  // ----- probes -----------------------------------------------------
  static void probe_madd(const float* a, const float* b, const float* c,
                         float* out) {
    V::storeu(out, V::madd(V::loadu(c), V::loadu(a), V::loadu(b)));
  }
  static void probe_mul(const float* a, const float* b, float* out) {
    V::storeu(out, V::mul(V::loadu(a), V::loadu(b)));
  }
  static void probe_add(const float* a, const float* b, float* out) {
    V::storeu(out, V::add(V::loadu(a), V::loadu(b)));
  }
  static void probe_min(const float* a, const float* b, float* out) {
    V::storeu(out, V::min(V::loadu(a), V::loadu(b)));
  }
  static void probe_max(const float* a, const float* b, float* out) {
    V::storeu(out, V::max(V::loadu(a), V::loadu(b)));
  }
  static float probe_reduce(const float* a) {
    return V::reduce_add(V::loadu(a));
  }
  static void probe_load_partial(const float* p, index_t n, float* out) {
    V::storeu(out, V::load_partial(p, n));
  }
};

template <class V>
KernelTable make_table(const char* name) {
  KernelTable t;
  t.name = name;
  t.sgemm_micro_4x8 = &Kernels<V>::sgemm_micro_4x8;
  t.conv2d_row_s1 = &Kernels<V>::conv2d_row_s1;
  t.deconv2d_row_s1 = &Kernels<V>::deconv2d_row_s1;
  t.conv2d_row4_s1 = &Kernels<V>::conv2d_row4_s1;
  t.deconv2d_row4_s1 = &Kernels<V>::deconv2d_row4_s1;
  t.scale_shift = &Kernels<V>::scale_shift;
  t.scale_shift_act = &Kernels<V>::scale_shift_act;
  t.relu = &Kernels<V>::relu;
  t.leaky_relu = &Kernels<V>::leaky_relu;
  t.add_scalar = &Kernels<V>::add_scalar;
  t.cmul = &V::cmul;
  t.dot = &Kernels<V>::dot;
  t.probe_madd = &Kernels<V>::probe_madd;
  t.probe_mul = &Kernels<V>::probe_mul;
  t.probe_add = &Kernels<V>::probe_add;
  t.probe_min = &Kernels<V>::probe_min;
  t.probe_max = &Kernels<V>::probe_max;
  t.probe_reduce = &Kernels<V>::probe_reduce;
  t.probe_load_partial = &Kernels<V>::probe_load_partial;
  return t;
}

// Shared scalar complex-multiply element: the exact mul/sub/add pairing
// every backend (and every vector tail) must reproduce.
inline void cmul_one(double* a, const double* b) {
  const double ar = a[0], ai = a[1];
  const double br = b[0], bi = b[1];
  a[0] = ar * br - ai * bi;
  a[1] = ai * br + ar * bi;
}

}  // namespace ccovid::simd::detail
