// Backend-generic vector kernel bodies. Each per-backend translation
// unit (simd_backend_*.cpp) instantiates make_table<V>() with its lane
// type V and hands the resulting function-pointer table to the
// dispatcher. The required V interface:
//
//   using v8 = ...;                       // 8 x f32 value type
//   v8    zero();  v8 set1(float);
//   v8    loadu(const float*);            // unaligned 8-lane load
//   v8    load_partial(const float*, n);  // lanes [n,8) zero-filled
//   void  storeu(float*, v8);
//   v8    add/mul/min/max(v8, v8);
//   v8    madd(v8 acc, v8 a, v8 b);       // acc + a*b, TWO roundings
//   v8    blend_gt0(v8 x, v8 a, v8 b);    // per lane: x > 0 ? a : b
//   float reduce_add(v8);                 // canonical fixed tree
//   void  cmul(double* a, const double* b, index_t n);  // complex a*=b
//
// Lane determinism: per-output lanes accumulate in scalar order (rule 1
// of the contract in core/simd.h), and the border/tail scalar paths
// below are shared source, so every backend runs the identical
// instruction-order-insensitive arithmetic on the identical elements.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/half.h"
#include "core/simd.h"

namespace ccovid::simd::detail {

// Scalar single-output conv tap loop — used for border columns and
// interior tails by every backend. Tap order (ci, ky, kx) ascending
// with bounds-check skips, matching the historical scalar kernels.
inline float conv_point(const float* in, const float* wgt, index_t wstride,
                        index_t cin, index_t h, index_t w, index_t k,
                        index_t oy, index_t ox, index_t pad, float bias) {
  float acc = bias;
  const index_t iy0 = oy - pad;
  const index_t ix0 = ox - pad;
  for (index_t ci = 0; ci < cin; ++ci) {
    const float* inp = in + ci * h * w;
    const float* wp = wgt + ci * wstride;
    for (index_t ky = 0; ky < k; ++ky) {
      const index_t iy = iy0 + ky;
      if (iy < 0 || iy >= h) continue;
      for (index_t kx = 0; kx < k; ++kx) {
        const index_t ix = ix0 + kx;
        if (ix < 0 || ix >= w) continue;
        acc += inp[iy * w + ix] * wp[ky * k + kx];
      }
    }
  }
  return acc;
}

// Scalar single-output gather-deconv tap loop (iy = oy + pad - ky).
inline float deconv_point(const float* in, const float* wgt,
                          index_t wstride, index_t cin, index_t h,
                          index_t w, index_t k, index_t oy, index_t ox,
                          index_t pad, float bias) {
  float acc = bias;
  for (index_t ci = 0; ci < cin; ++ci) {
    const float* inp = in + ci * h * w;
    const float* wp = wgt + ci * wstride;
    for (index_t ky = 0; ky < k; ++ky) {
      const index_t iy = oy + pad - ky;
      if (iy < 0 || iy >= h) continue;
      for (index_t kx = 0; kx < k; ++kx) {
        const index_t ix = ox + pad - kx;
        if (ix < 0 || ix >= w) continue;
        acc += inp[iy * w + ix] * wp[ky * k + kx];
      }
    }
  }
  return acc;
}

// Border-column companions of the quad row kernels: one output column
// for NCO consecutive output channels, sharing every input load across
// four independent scalar accumulator chains. Per channel the tap order
// (ci, ky, kx ascending, bounds-check skips) is exactly conv_point /
// deconv_point, so the results are bitwise identical.
template <int NCO>
inline void conv_point_q(const float* in, const float* wgt,
                         index_t wstride_ci, index_t wstride_co, float* out,
                         index_t ostride_co, index_t cin, index_t h,
                         index_t w, index_t k, index_t oy, index_t ox,
                         index_t pad, const float* bias) {
  float a0 = bias[0];
  float a1 = NCO > 1 ? bias[1] : 0.0f;
  float a2 = NCO > 2 ? bias[2] : 0.0f;
  float a3 = NCO > 3 ? bias[3] : 0.0f;
  const index_t iy0 = oy - pad;
  const index_t ix0 = ox - pad;
  for (index_t ci = 0; ci < cin; ++ci) {
    const float* inp = in + ci * h * w;
    const float* w0 = wgt + ci * wstride_ci;
    const float* w1 = w0 + wstride_co;
    const float* w2 = w1 + wstride_co;
    const float* w3 = w2 + wstride_co;
    for (index_t ky = 0; ky < k; ++ky) {
      const index_t iy = iy0 + ky;
      if (iy < 0 || iy >= h) continue;
      for (index_t kx = 0; kx < k; ++kx) {
        const index_t ix = ix0 + kx;
        if (ix < 0 || ix >= w) continue;
        const float x = inp[iy * w + ix];
        a0 += x * w0[ky * k + kx];
        if (NCO > 1) a1 += x * w1[ky * k + kx];
        if (NCO > 2) a2 += x * w2[ky * k + kx];
        if (NCO > 3) a3 += x * w3[ky * k + kx];
      }
    }
  }
  out[ox] = a0;
  if (NCO > 1) out[ostride_co + ox] = a1;
  if (NCO > 2) out[2 * ostride_co + ox] = a2;
  if (NCO > 3) out[3 * ostride_co + ox] = a3;
}

template <int NCO>
inline void deconv_point_q(const float* in, const float* wgt,
                           index_t wstride_ci, index_t wstride_co,
                           float* out, index_t ostride_co, index_t cin,
                           index_t h, index_t w, index_t k, index_t oy,
                           index_t ox, index_t pad, const float* bias) {
  float a0 = bias[0];
  float a1 = NCO > 1 ? bias[1] : 0.0f;
  float a2 = NCO > 2 ? bias[2] : 0.0f;
  float a3 = NCO > 3 ? bias[3] : 0.0f;
  for (index_t ci = 0; ci < cin; ++ci) {
    const float* inp = in + ci * h * w;
    const float* w0 = wgt + ci * wstride_ci;
    const float* w1 = w0 + wstride_co;
    const float* w2 = w1 + wstride_co;
    const float* w3 = w2 + wstride_co;
    for (index_t ky = 0; ky < k; ++ky) {
      const index_t iy = oy + pad - ky;
      if (iy < 0 || iy >= h) continue;
      for (index_t kx = 0; kx < k; ++kx) {
        const index_t ix = ox + pad - kx;
        if (ix < 0 || ix >= w) continue;
        const float x = inp[iy * w + ix];
        a0 += x * w0[ky * k + kx];
        if (NCO > 1) a1 += x * w1[ky * k + kx];
        if (NCO > 2) a2 += x * w2[ky * k + kx];
        if (NCO > 3) a3 += x * w3[ky * k + kx];
      }
    }
  }
  out[ox] = a0;
  if (NCO > 1) out[ostride_co + ox] = a1;
  if (NCO > 2) out[2 * ostride_co + ox] = a2;
  if (NCO > 3) out[3 * ostride_co + ox] = a3;
}

// ----- low-precision shared scalar machinery ------------------------
//
// The int8 path accumulates in exact int32, so ONE portable body keeps
// every backend bitwise identical for free: scalar and sse2 register
// the functions below directly, and the avx2 TU overrides the table
// entries with vpmaddwd kernels that compute the same exact sums. The
// fp32 tail/border expressions (quant_clamp_rne, dequant_affine_act)
// are the single source of truth the avx2 vector epilogues replicate
// instruction for instruction.

/// Requantize: clamp to [-127, 127] (NaN -> -127, matching the
/// max-with-second-operand-wins lane semantics), round to nearest even
/// (lrintf == CVTPS2DQ in the default rounding mode on the clamped
/// range).
inline std::int8_t quant_clamp_rne(float v) {
  v = v > -127.0f ? v : -127.0f;
  v = v < 127.0f ? v : 127.0f;
  return static_cast<std::int8_t>(std::lrintf(v));
}

/// Dequantize one int32 accumulator and run the scale_shift_act
/// expression: t = fma(float(acc), m, bias), then scale*t + shift
/// (two roundings, exactly like the fp32 epilogue) and the activation.
inline float dequant_affine_act(std::int32_t acc, float m, float bias,
                                int has_affine, float scale, float shift,
                                int act, float slope) {
  float t = std::fmaf(static_cast<float>(acc), m, bias);
  if (has_affine) t = scale * t + shift;
  if (act == 1) {
    t = t > 0.0f ? t : 0.0f;
  } else if (act == 2) {
    t = t > 0.0f ? t : slope * t;
  }
  return t;
}

// One output column, NCO channels, int8 interleaved input (see the
// layout comment in core/simd.h). Shared by the generic row kernels
// below and by the avx2 kernel's border columns.
template <int NCO>
inline void conv_point_q_i8(const std::int8_t* in, const std::int16_t* wgt,
                            index_t wstride_co, std::int32_t* out,
                            index_t ostride_co, index_t cinp, index_t h,
                            index_t w, index_t k, index_t oy, index_t ox,
                            index_t pad) {
  std::int32_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
  const index_t iy0 = oy - pad;
  const index_t ix0 = ox - pad;
  for (index_t p = 0; p < cinp; ++p) {
    const std::int8_t* inp = in + p * h * w * 2;
    const std::int16_t* w0 = wgt + p * k * k * 2;
    for (index_t ky = 0; ky < k; ++ky) {
      const index_t iy = iy0 + ky;
      if (iy < 0 || iy >= h) continue;
      for (index_t kx = 0; kx < k; ++kx) {
        const index_t ix = ix0 + kx;
        if (ix < 0 || ix >= w) continue;
        const std::int32_t x0 = inp[(iy * w + ix) * 2];
        const std::int32_t x1 = inp[(iy * w + ix) * 2 + 1];
        const index_t t = (ky * k + kx) * 2;
        a0 += x0 * w0[t] + x1 * w0[t + 1];
        if (NCO > 1) {
          a1 += x0 * w0[wstride_co + t] + x1 * w0[wstride_co + t + 1];
        }
        if (NCO > 2) {
          a2 += x0 * w0[2 * wstride_co + t] +
                x1 * w0[2 * wstride_co + t + 1];
        }
        if (NCO > 3) {
          a3 += x0 * w0[3 * wstride_co + t] +
                x1 * w0[3 * wstride_co + t + 1];
        }
      }
    }
  }
  out[ox] = a0;
  if (NCO > 1) out[ostride_co + ox] = a1;
  if (NCO > 2) out[2 * ostride_co + ox] = a2;
  if (NCO > 3) out[3 * ostride_co + ox] = a3;
}

template <int NCO>
inline void deconv_point_q_i8(const std::int8_t* in,
                              const std::int16_t* wgt, index_t wstride_co,
                              std::int32_t* out, index_t ostride_co,
                              index_t cinp, index_t h, index_t w, index_t k,
                              index_t oy, index_t ox, index_t pad) {
  std::int32_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
  for (index_t p = 0; p < cinp; ++p) {
    const std::int8_t* inp = in + p * h * w * 2;
    const std::int16_t* w0 = wgt + p * k * k * 2;
    for (index_t ky = 0; ky < k; ++ky) {
      const index_t iy = oy + pad - ky;
      if (iy < 0 || iy >= h) continue;
      for (index_t kx = 0; kx < k; ++kx) {
        const index_t ix = ox + pad - kx;
        if (ix < 0 || ix >= w) continue;
        const std::int32_t x0 = inp[(iy * w + ix) * 2];
        const std::int32_t x1 = inp[(iy * w + ix) * 2 + 1];
        const index_t t = (ky * k + kx) * 2;
        a0 += x0 * w0[t] + x1 * w0[t + 1];
        if (NCO > 1) {
          a1 += x0 * w0[wstride_co + t] + x1 * w0[wstride_co + t + 1];
        }
        if (NCO > 2) {
          a2 += x0 * w0[2 * wstride_co + t] +
                x1 * w0[2 * wstride_co + t + 1];
        }
        if (NCO > 3) {
          a3 += x0 * w0[3 * wstride_co + t] +
                x1 * w0[3 * wstride_co + t + 1];
        }
      }
    }
  }
  out[ox] = a0;
  if (NCO > 1) out[ostride_co + ox] = a1;
  if (NCO > 2) out[2 * ostride_co + ox] = a2;
  if (NCO > 3) out[3 * ostride_co + ox] = a3;
}

inline void conv2d_row4_s1_i8_generic(const std::int8_t* in,
                                      const std::int16_t* wgt,
                                      index_t wstride_co, std::int32_t* out,
                                      index_t ostride_co, int nco,
                                      index_t cinp, index_t h, index_t w,
                                      index_t k, index_t oy, index_t pad,
                                      index_t wo) {
  for (index_t ox = 0; ox < wo; ++ox) {
    switch (nco) {
      case 1:
        conv_point_q_i8<1>(in, wgt, wstride_co, out, ostride_co, cinp, h,
                           w, k, oy, ox, pad);
        break;
      case 2:
        conv_point_q_i8<2>(in, wgt, wstride_co, out, ostride_co, cinp, h,
                           w, k, oy, ox, pad);
        break;
      case 3:
        conv_point_q_i8<3>(in, wgt, wstride_co, out, ostride_co, cinp, h,
                           w, k, oy, ox, pad);
        break;
      default:
        conv_point_q_i8<4>(in, wgt, wstride_co, out, ostride_co, cinp, h,
                           w, k, oy, ox, pad);
        break;
    }
  }
}

inline void deconv2d_row4_s1_i8_generic(const std::int8_t* in,
                                        const std::int16_t* wgt,
                                        index_t wstride_co,
                                        std::int32_t* out,
                                        index_t ostride_co, int nco,
                                        index_t cinp, index_t h, index_t w,
                                        index_t k, index_t oy, index_t pad,
                                        index_t wo) {
  for (index_t ox = 0; ox < wo; ++ox) {
    switch (nco) {
      case 1:
        deconv_point_q_i8<1>(in, wgt, wstride_co, out, ostride_co, cinp,
                             h, w, k, oy, ox, pad);
        break;
      case 2:
        deconv_point_q_i8<2>(in, wgt, wstride_co, out, ostride_co, cinp,
                             h, w, k, oy, ox, pad);
        break;
      case 3:
        deconv_point_q_i8<3>(in, wgt, wstride_co, out, ostride_co, cinp,
                             h, w, k, oy, ox, pad);
        break;
      default:
        deconv_point_q_i8<4>(in, wgt, wstride_co, out, ostride_co, cinp,
                             h, w, k, oy, ox, pad);
        break;
    }
  }
}

inline void quant_epilogue_store_i8_generic(const std::int32_t* acc0,
                                            const std::int32_t* acc1,
                                            std::int8_t* out, index_t n,
                                            const QuantEpilogueParams& p) {
  for (index_t i = 0; i < n; ++i) {
    const float t0 =
        dequant_affine_act(acc0[i], p.m0, p.bias0, p.has_affine, p.scale0,
                           p.shift0, p.act, p.slope);
    out[i * 2] = quant_clamp_rne(t0 * p.inv_out);
    if (acc1) {
      const float t1 =
          dequant_affine_act(acc1[i], p.m1, p.bias1, p.has_affine,
                             p.scale1, p.shift1, p.act, p.slope);
      out[i * 2 + 1] = quant_clamp_rne(t1 * p.inv_out);
    } else {
      out[i * 2 + 1] = 0;
    }
  }
}

inline void dequant_epilogue_f32_generic(const std::int32_t* acc,
                                         float* out, index_t n, float m,
                                         float bias, int has_affine,
                                         float scale, float shift, int act,
                                         float slope) {
  for (index_t i = 0; i < n; ++i) {
    out[i] = dequant_affine_act(acc[i], m, bias, has_affine, scale, shift,
                                act, slope);
  }
}

inline void quant_f32_to_i8_generic(const float* x0, const float* x1,
                                    std::int8_t* out, index_t n,
                                    float inv_scale) {
  for (index_t i = 0; i < n; ++i) {
    out[i * 2] = quant_clamp_rne(x0[i] * inv_scale);
    out[i * 2 + 1] = x1 ? quant_clamp_rne(x1[i] * inv_scale)
                        : std::int8_t(0);
  }
}

inline void dequant_i8_to_f32_generic(const std::int8_t* in, float* x0,
                                      float* x1, index_t n, float scale) {
  for (index_t i = 0; i < n; ++i) {
    x0[i] = static_cast<float>(in[i * 2]) * scale;
    if (x1) x1[i] = static_cast<float>(in[i * 2 + 1]) * scale;
  }
}

// Storage policies for the half-precision row kernels: how one lane /
// one vector of stored elements becomes fp32. The scalar load1 paths
// are bit-exact images of the vector load8 paths (core/half.h matches
// the F16C instructions), so border columns and interiors agree.
template <class V>
struct F16Src {
  using elem = std::uint16_t;
  // Converting sources re-read each row segment k times at shifted
  // offsets, so the row bodies hoist the widening out of the tap loop.
  static constexpr bool kHoist = true;
  static typename V::v8 load8(const std::uint16_t* p) {
    return V::loadu_f16(p);
  }
  // Routed through the backend so F16C hardware converts the border
  // taps too: the software converter's subnormal/zero early-outs are
  // unpredictable branches on real activation data (most post-ReLU
  // values flush to zero), and the border columns take one convert
  // per tap.
  static float load1(const std::uint16_t* p) { return V::load1_f16(p); }
};
template <class V>
struct Bf16Src {
  using elem = std::uint16_t;
  static constexpr bool kHoist = true;
  static typename V::v8 load8(const std::uint16_t* p) {
    return V::loadu_bf16(p);
  }
  static float load1(const std::uint16_t* p) {
    return bf16_bits_to_f32(*p);
  }
};
// Plain-fp32 source for the _fma row kernels: same accumulation
// structure and rounding as the converting policies, loads are direct.
// The hoist is a pure loss here (it would just copy), so it is
// compiled out via kHoist.
template <class V>
struct F32Src {
  using elem = float;
  static constexpr bool kHoist = false;
  static typename V::v8 load8(const float* p) { return V::loadu(p); }
  static float load1(const float* p) { return *p; }
};

// Border-column scalar path of the half-precision quad kernels: fmaf
// per tap mirrors the vector V::fmadd lane op (both correctly
// rounded), keeping border and interior columns on one contract.
template <int NCO, class S>
inline void lowp_conv_point_q(const typename S::elem* in, const float* wgt,
                              index_t wstride_ci, index_t wstride_co,
                              float* out, index_t ostride_co, index_t cin,
                              index_t h, index_t w, index_t k, index_t oy,
                              index_t ox, index_t pad, const float* bias) {
  float a0 = bias[0];
  float a1 = NCO > 1 ? bias[1] : 0.0f;
  float a2 = NCO > 2 ? bias[2] : 0.0f;
  float a3 = NCO > 3 ? bias[3] : 0.0f;
  const index_t iy0 = oy - pad;
  const index_t ix0 = ox - pad;
  for (index_t ci = 0; ci < cin; ++ci) {
    const typename S::elem* inp = in + ci * h * w;
    const float* w0 = wgt + ci * wstride_ci;
    const float* w1 = w0 + wstride_co;
    const float* w2 = w1 + wstride_co;
    const float* w3 = w2 + wstride_co;
    for (index_t ky = 0; ky < k; ++ky) {
      const index_t iy = iy0 + ky;
      if (iy < 0 || iy >= h) continue;
      for (index_t kx = 0; kx < k; ++kx) {
        const index_t ix = ix0 + kx;
        if (ix < 0 || ix >= w) continue;
        const float x = S::load1(inp + iy * w + ix);
        a0 = std::fmaf(x, w0[ky * k + kx], a0);
        if (NCO > 1) a1 = std::fmaf(x, w1[ky * k + kx], a1);
        if (NCO > 2) a2 = std::fmaf(x, w2[ky * k + kx], a2);
        if (NCO > 3) a3 = std::fmaf(x, w3[ky * k + kx], a3);
      }
    }
  }
  out[ox] = a0;
  if (NCO > 1) out[ostride_co + ox] = a1;
  if (NCO > 2) out[2 * ostride_co + ox] = a2;
  if (NCO > 3) out[3 * ostride_co + ox] = a3;
}

template <int NCO, class S>
inline void lowp_deconv_point_q(const typename S::elem* in,
                                const float* wgt,
                                index_t wstride_ci, index_t wstride_co,
                                float* out, index_t ostride_co,
                                index_t cin, index_t h, index_t w,
                                index_t k, index_t oy, index_t ox,
                                index_t pad, const float* bias) {
  float a0 = bias[0];
  float a1 = NCO > 1 ? bias[1] : 0.0f;
  float a2 = NCO > 2 ? bias[2] : 0.0f;
  float a3 = NCO > 3 ? bias[3] : 0.0f;
  for (index_t ci = 0; ci < cin; ++ci) {
    const typename S::elem* inp = in + ci * h * w;
    const float* w0 = wgt + ci * wstride_ci;
    const float* w1 = w0 + wstride_co;
    const float* w2 = w1 + wstride_co;
    const float* w3 = w2 + wstride_co;
    for (index_t ky = 0; ky < k; ++ky) {
      const index_t iy = oy + pad - ky;
      if (iy < 0 || iy >= h) continue;
      for (index_t kx = 0; kx < k; ++kx) {
        const index_t ix = ox + pad - kx;
        if (ix < 0 || ix >= w) continue;
        const float x = S::load1(inp + iy * w + ix);
        a0 = std::fmaf(x, w0[ky * k + kx], a0);
        if (NCO > 1) a1 = std::fmaf(x, w1[ky * k + kx], a1);
        if (NCO > 2) a2 = std::fmaf(x, w2[ky * k + kx], a2);
        if (NCO > 3) a3 = std::fmaf(x, w3[ky * k + kx], a3);
      }
    }
  }
  out[ox] = a0;
  if (NCO > 1) out[ostride_co + ox] = a1;
  if (NCO > 2) out[2 * ostride_co + ox] = a2;
  if (NCO > 3) out[3 * ostride_co + ox] = a3;
}

template <class V>
struct Kernels {
  using v8 = typename V::v8;

  static void sgemm_micro_4x8(const float* CCOVID_RESTRICT a, index_t lda,
                              const float* CCOVID_RESTRICT bpack,
                              float* CCOVID_RESTRICT c, index_t ldc,
                              index_t kc) {
    v8 acc0 = V::zero(), acc1 = V::zero(), acc2 = V::zero(),
       acc3 = V::zero();
    for (index_t p = 0; p < kc; ++p) {
      const v8 b = V::loadu(bpack + p * 8);
      acc0 = V::madd(acc0, V::set1(a[0 * lda + p]), b);
      acc1 = V::madd(acc1, V::set1(a[1 * lda + p]), b);
      acc2 = V::madd(acc2, V::set1(a[2 * lda + p]), b);
      acc3 = V::madd(acc3, V::set1(a[3 * lda + p]), b);
    }
    V::storeu(c + 0 * ldc, V::add(V::loadu(c + 0 * ldc), acc0));
    V::storeu(c + 1 * ldc, V::add(V::loadu(c + 1 * ldc), acc1));
    V::storeu(c + 2 * ldc, V::add(V::loadu(c + 2 * ldc), acc2));
    V::storeu(c + 3 * ldc, V::add(V::loadu(c + 3 * ldc), acc3));
  }

  static void conv2d_row_s1(const float* CCOVID_RESTRICT in,
                            const float* CCOVID_RESTRICT wgt,
                            index_t wstride, float* CCOVID_RESTRICT out,
                            index_t cin, index_t h, index_t w, index_t k,
                            index_t oy, index_t pad, index_t wo,
                            float bias) {
    // Interior x span: every kx tap in bounds. Valid ky rows depend
    // only on oy and bound the tap loop identically on both paths.
    const index_t ky0 = std::max<index_t>(0, pad - oy);
    const index_t ky1 = std::min<index_t>(k, h + pad - oy);
    const index_t xlo = std::min<index_t>(pad, wo);
    const index_t xhi = std::max(xlo, std::min<index_t>(wo, w - k + pad + 1));
    index_t ox = 0;
    for (; ox < xlo; ++ox) {
      out[ox] = conv_point(in, wgt, wstride, cin, h, w, k, oy, ox, pad,
                           bias);
    }
    const index_t iy0 = oy - pad;
    for (; ox + 8 <= xhi; ox += 8) {
      v8 acc = V::set1(bias);
      const index_t ix0 = ox - pad;
      for (index_t ci = 0; ci < cin; ++ci) {
        const float* inp = in + ci * h * w;
        const float* wp = wgt + ci * wstride;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const float* row = inp + (iy0 + ky) * w + ix0;
          for (index_t kx = 0; kx < k; ++kx) {
            acc = V::madd(acc, V::loadu(row + kx), V::set1(wp[ky * k + kx]));
          }
        }
      }
      V::storeu(out + ox, acc);
    }
    for (; ox < wo; ++ox) {
      out[ox] = conv_point(in, wgt, wstride, cin, h, w, k, oy, ox, pad,
                           bias);
    }
  }

  static void deconv2d_row_s1(const float* CCOVID_RESTRICT in,
                              const float* CCOVID_RESTRICT wgt,
                              index_t wstride, float* CCOVID_RESTRICT out,
                              index_t cin, index_t h, index_t w, index_t k,
                              index_t oy, index_t pad, index_t wo,
                              float bias) {
    // ix = ox + pad - kx must stay in [0, w) for every kx in [0, k).
    const index_t ky0 = std::max<index_t>(0, oy + pad - h + 1);
    const index_t ky1 = std::min<index_t>(k, oy + pad + 1);
    const index_t xlo = std::min<index_t>(std::max<index_t>(0, k - 1 - pad),
                                          wo);
    const index_t xhi = std::max(xlo, std::min<index_t>(wo, w - pad));
    index_t ox = 0;
    for (; ox < xlo; ++ox) {
      out[ox] = deconv_point(in, wgt, wstride, cin, h, w, k, oy, ox, pad,
                             bias);
    }
    for (; ox + 8 <= xhi; ox += 8) {
      v8 acc = V::set1(bias);
      for (index_t ci = 0; ci < cin; ++ci) {
        const float* inp = in + ci * h * w;
        const float* wp = wgt + ci * wstride;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const float* row = inp + (oy + pad - ky) * w + (ox + pad);
          for (index_t kx = 0; kx < k; ++kx) {
            acc = V::madd(acc, V::loadu(row - kx), V::set1(wp[ky * k + kx]));
          }
        }
      }
      V::storeu(out + ox, acc);
    }
    for (; ox < wo; ++ox) {
      out[ox] = deconv_point(in, wgt, wstride, cin, h, w, k, oy, ox, pad,
                             bias);
    }
  }

  // Quad-channel row kernels. NCO independent accumulator chains (one
  // per output channel) share each 8-lane input load; every chain
  // replays the exact (ci, ky, kx) tap order of the single-channel
  // kernel, so lane contents match conv2d_row_s1 / deconv2d_row_s1 bit
  // for bit. Border columns reuse the shared scalar points per channel.
  template <int NCO, int K>
  static void conv2d_rowq_body(const float* CCOVID_RESTRICT in,
                               const float* CCOVID_RESTRICT wgt,
                               index_t wstride_ci, index_t wstride_co,
                               float* CCOVID_RESTRICT out,
                               index_t ostride_co, index_t cin, index_t h,
                               index_t w, index_t k, index_t oy,
                               index_t pad, index_t wo,
                               const float* CCOVID_RESTRICT bias) {
    // K > 0: compile-time kernel extent — the kx/ky loops below fully
    // unroll and every weight index folds into a constant displacement.
    const index_t kk = K > 0 ? index_t(K) : k;
    const index_t ky0 = std::max<index_t>(0, pad - oy);
    const index_t ky1 = std::min<index_t>(kk, h + pad - oy);
    const index_t xlo = std::min<index_t>(pad, wo);
    const index_t xhi =
        std::max(xlo, std::min<index_t>(wo, w - kk + pad + 1));
    index_t ox = 0;
    for (; ox < xlo; ++ox) {
      conv_point_q<NCO>(in, wgt, wstride_ci, wstride_co, out,
                        ostride_co, cin, h, w, k, oy, ox, pad, bias);
    }
    const index_t iy0 = oy - pad;
    // Double-wide interior: two 8-lane column blocks per pass share
    // every weight broadcast, giving up to eight independent chains in
    // flight. Column block [ox+8, ox+16) sees the identical tap stream
    // it would in the single-block pass below.
    for (; ox + 16 <= xhi; ox += 16) {
      v8 a0 = V::set1(bias[0]), b0 = a0;
      v8 a1 = NCO > 1 ? V::set1(bias[1]) : V::zero(), b1 = a1;
      v8 a2 = NCO > 2 ? V::set1(bias[2]) : V::zero(), b2 = a2;
      v8 a3 = NCO > 3 ? V::set1(bias[3]) : V::zero(), b3 = a3;
      const index_t ix0 = ox - pad;
      for (index_t ci = 0; ci < cin; ++ci) {
        const float* inp = in + ci * h * w;
        const float* w0 = wgt + ci * wstride_ci;
        const float* w1 = w0 + wstride_co;
        const float* w2 = w1 + wstride_co;
        const float* w3 = w2 + wstride_co;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const float* row = inp + (iy0 + ky) * w + ix0;
          const index_t kb = ky * kk;
          for (index_t kx = 0; kx < kk; ++kx) {
            const v8 v = V::loadu(row + kx);
            const v8 u = V::loadu(row + kx + 8);
            const v8 wv0 = V::set1(w0[kb + kx]);
            a0 = V::madd(a0, v, wv0);
            b0 = V::madd(b0, u, wv0);
            if (NCO > 1) {
              const v8 wv1 = V::set1(w1[kb + kx]);
              a1 = V::madd(a1, v, wv1);
              b1 = V::madd(b1, u, wv1);
            }
            if (NCO > 2) {
              const v8 wv2 = V::set1(w2[kb + kx]);
              a2 = V::madd(a2, v, wv2);
              b2 = V::madd(b2, u, wv2);
            }
            if (NCO > 3) {
              const v8 wv3 = V::set1(w3[kb + kx]);
              a3 = V::madd(a3, v, wv3);
              b3 = V::madd(b3, u, wv3);
            }
          }
        }
      }
      V::storeu(out + ox, a0);
      V::storeu(out + ox + 8, b0);
      if (NCO > 1) {
        V::storeu(out + ostride_co + ox, a1);
        V::storeu(out + ostride_co + ox + 8, b1);
      }
      if (NCO > 2) {
        V::storeu(out + 2 * ostride_co + ox, a2);
        V::storeu(out + 2 * ostride_co + ox + 8, b2);
      }
      if (NCO > 3) {
        V::storeu(out + 3 * ostride_co + ox, a3);
        V::storeu(out + 3 * ostride_co + ox + 8, b3);
      }
    }
    for (; ox + 8 <= xhi; ox += 8) {
      // Hand-unrolled accumulators (not an array: the named values must
      // live in registers — a rolled j-loop leaves them on the stack
      // and re-serializes the chains through store-forwarding).
      v8 a0 = V::set1(bias[0]);
      v8 a1 = NCO > 1 ? V::set1(bias[1]) : V::zero();
      v8 a2 = NCO > 2 ? V::set1(bias[2]) : V::zero();
      v8 a3 = NCO > 3 ? V::set1(bias[3]) : V::zero();
      const index_t ix0 = ox - pad;
      for (index_t ci = 0; ci < cin; ++ci) {
        const float* inp = in + ci * h * w;
        const float* w0 = wgt + ci * wstride_ci;
        const float* w1 = w0 + wstride_co;
        const float* w2 = w1 + wstride_co;
        const float* w3 = w2 + wstride_co;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const float* row = inp + (iy0 + ky) * w + ix0;
          const index_t kb = ky * kk;
          for (index_t kx = 0; kx < kk; ++kx) {
            const v8 v = V::loadu(row + kx);
            a0 = V::madd(a0, v, V::set1(w0[kb + kx]));
            if (NCO > 1) a1 = V::madd(a1, v, V::set1(w1[kb + kx]));
            if (NCO > 2) a2 = V::madd(a2, v, V::set1(w2[kb + kx]));
            if (NCO > 3) a3 = V::madd(a3, v, V::set1(w3[kb + kx]));
          }
        }
      }
      V::storeu(out + ox, a0);
      if (NCO > 1) V::storeu(out + ostride_co + ox, a1);
      if (NCO > 2) V::storeu(out + 2 * ostride_co + ox, a2);
      if (NCO > 3) V::storeu(out + 3 * ostride_co + ox, a3);
    }
    for (; ox < wo; ++ox) {
      conv_point_q<NCO>(in, wgt, wstride_ci, wstride_co, out,
                        ostride_co, cin, h, w, k, oy, ox, pad, bias);
    }
  }

  template <int NCO>
  static void conv2d_rowq_k(const float* in, const float* wgt,
                 index_t wstride_ci, index_t wstride_co, float* out,
                 index_t ostride_co, index_t cin, index_t h, index_t w,
                 index_t k, index_t oy, index_t pad, index_t wo,
                 const float* bias) {
    switch (k) {
      case 1:
        conv2d_rowq_body<NCO, 1>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
      case 3:
        conv2d_rowq_body<NCO, 3>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
      case 5:
        conv2d_rowq_body<NCO, 5>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
      case 7:
        conv2d_rowq_body<NCO, 7>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
      default:
        conv2d_rowq_body<NCO, 0>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
    }
  }

  static void conv2d_row4_s1(const float* in, const float* wgt,
                             index_t wstride_ci, index_t wstride_co,
                             float* out, index_t ostride_co, int nco,
                             index_t cin, index_t h, index_t w, index_t k,
                             index_t oy, index_t pad, index_t wo,
                             const float* bias) {
    switch (nco) {
      case 1: conv2d_rowq_k<1>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias); break;
      case 2: conv2d_rowq_k<2>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias); break;
      case 3: conv2d_rowq_k<3>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias); break;
      default: conv2d_rowq_k<4>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias); break;
    }
  }

  template <int NCO, int K>
  static void deconv2d_rowq_body(const float* CCOVID_RESTRICT in,
                                 const float* CCOVID_RESTRICT wgt,
                                 index_t wstride_ci, index_t wstride_co,
                                 float* CCOVID_RESTRICT out,
                                 index_t ostride_co, index_t cin, index_t h,
                                 index_t w, index_t k, index_t oy,
                                 index_t pad, index_t wo,
                                 const float* CCOVID_RESTRICT bias) {
    const index_t kk = K > 0 ? index_t(K) : k;
    const index_t ky0 = std::max<index_t>(0, oy + pad - h + 1);
    const index_t ky1 = std::min<index_t>(kk, oy + pad + 1);
    const index_t xlo =
        std::min<index_t>(std::max<index_t>(0, kk - 1 - pad), wo);
    const index_t xhi = std::max(xlo, std::min<index_t>(wo, w - pad));
    index_t ox = 0;
    for (; ox < xlo; ++ox) {
      deconv_point_q<NCO>(in, wgt, wstride_ci, wstride_co, out,
                          ostride_co, cin, h, w, k, oy, ox, pad, bias);
    }
    for (; ox + 16 <= xhi; ox += 16) {
      v8 a0 = V::set1(bias[0]), b0 = a0;
      v8 a1 = NCO > 1 ? V::set1(bias[1]) : V::zero(), b1 = a1;
      v8 a2 = NCO > 2 ? V::set1(bias[2]) : V::zero(), b2 = a2;
      v8 a3 = NCO > 3 ? V::set1(bias[3]) : V::zero(), b3 = a3;
      for (index_t ci = 0; ci < cin; ++ci) {
        const float* inp = in + ci * h * w;
        const float* w0 = wgt + ci * wstride_ci;
        const float* w1 = w0 + wstride_co;
        const float* w2 = w1 + wstride_co;
        const float* w3 = w2 + wstride_co;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const float* row = inp + (oy + pad - ky) * w + (ox + pad);
          const index_t kb = ky * kk;
          for (index_t kx = 0; kx < kk; ++kx) {
            const v8 v = V::loadu(row - kx);
            const v8 u = V::loadu(row - kx + 8);
            const v8 wv0 = V::set1(w0[kb + kx]);
            a0 = V::madd(a0, v, wv0);
            b0 = V::madd(b0, u, wv0);
            if (NCO > 1) {
              const v8 wv1 = V::set1(w1[kb + kx]);
              a1 = V::madd(a1, v, wv1);
              b1 = V::madd(b1, u, wv1);
            }
            if (NCO > 2) {
              const v8 wv2 = V::set1(w2[kb + kx]);
              a2 = V::madd(a2, v, wv2);
              b2 = V::madd(b2, u, wv2);
            }
            if (NCO > 3) {
              const v8 wv3 = V::set1(w3[kb + kx]);
              a3 = V::madd(a3, v, wv3);
              b3 = V::madd(b3, u, wv3);
            }
          }
        }
      }
      V::storeu(out + ox, a0);
      V::storeu(out + ox + 8, b0);
      if (NCO > 1) {
        V::storeu(out + ostride_co + ox, a1);
        V::storeu(out + ostride_co + ox + 8, b1);
      }
      if (NCO > 2) {
        V::storeu(out + 2 * ostride_co + ox, a2);
        V::storeu(out + 2 * ostride_co + ox + 8, b2);
      }
      if (NCO > 3) {
        V::storeu(out + 3 * ostride_co + ox, a3);
        V::storeu(out + 3 * ostride_co + ox + 8, b3);
      }
    }
    for (; ox + 8 <= xhi; ox += 8) {
      v8 a0 = V::set1(bias[0]);
      v8 a1 = NCO > 1 ? V::set1(bias[1]) : V::zero();
      v8 a2 = NCO > 2 ? V::set1(bias[2]) : V::zero();
      v8 a3 = NCO > 3 ? V::set1(bias[3]) : V::zero();
      for (index_t ci = 0; ci < cin; ++ci) {
        const float* inp = in + ci * h * w;
        const float* w0 = wgt + ci * wstride_ci;
        const float* w1 = w0 + wstride_co;
        const float* w2 = w1 + wstride_co;
        const float* w3 = w2 + wstride_co;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const float* row = inp + (oy + pad - ky) * w + (ox + pad);
          const index_t kb = ky * kk;
          for (index_t kx = 0; kx < kk; ++kx) {
            const v8 v = V::loadu(row - kx);
            a0 = V::madd(a0, v, V::set1(w0[kb + kx]));
            if (NCO > 1) a1 = V::madd(a1, v, V::set1(w1[kb + kx]));
            if (NCO > 2) a2 = V::madd(a2, v, V::set1(w2[kb + kx]));
            if (NCO > 3) a3 = V::madd(a3, v, V::set1(w3[kb + kx]));
          }
        }
      }
      V::storeu(out + ox, a0);
      if (NCO > 1) V::storeu(out + ostride_co + ox, a1);
      if (NCO > 2) V::storeu(out + 2 * ostride_co + ox, a2);
      if (NCO > 3) V::storeu(out + 3 * ostride_co + ox, a3);
    }
    for (; ox < wo; ++ox) {
      deconv_point_q<NCO>(in, wgt, wstride_ci, wstride_co, out,
                          ostride_co, cin, h, w, k, oy, ox, pad, bias);
    }
  }

  template <int NCO>
  static void deconv2d_rowq_k(const float* in, const float* wgt,
                 index_t wstride_ci, index_t wstride_co, float* out,
                 index_t ostride_co, index_t cin, index_t h, index_t w,
                 index_t k, index_t oy, index_t pad, index_t wo,
                 const float* bias) {
    switch (k) {
      case 1:
        deconv2d_rowq_body<NCO, 1>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
      case 3:
        deconv2d_rowq_body<NCO, 3>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
      case 5:
        deconv2d_rowq_body<NCO, 5>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
      case 7:
        deconv2d_rowq_body<NCO, 7>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
      default:
        deconv2d_rowq_body<NCO, 0>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias);
        break;
    }
  }

  static void deconv2d_row4_s1(const float* in, const float* wgt,
                             index_t wstride_ci, index_t wstride_co,
                             float* out, index_t ostride_co, int nco,
                             index_t cin, index_t h, index_t w, index_t k,
                             index_t oy, index_t pad, index_t wo,
                             const float* bias) {
    switch (nco) {
      case 1: deconv2d_rowq_k<1>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias); break;
      case 2: deconv2d_rowq_k<2>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias); break;
      case 3: deconv2d_rowq_k<3>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias); break;
      default: deconv2d_rowq_k<4>(in, wgt, wstride_ci, wstride_co, out,
                 ostride_co, cin, h, w, k, oy, pad, wo, bias); break;
    }
  }

  static void scale_shift(const float* CCOVID_RESTRICT x,
                          float* CCOVID_RESTRICT y, index_t n, float scale,
                          float shift) {
    const v8 sc = V::set1(scale), sh = V::set1(shift);
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      V::storeu(y + i, V::madd(sh, V::loadu(x + i), sc));
    }
    for (; i < n; ++i) y[i] = scale * x[i] + shift;
  }

  // No restrict: the graph executor runs this in place on a conv
  // output slab (x == y). Per element this is exactly scale_shift
  // followed by relu/leaky_relu, so fused and unfused epilogues agree
  // bitwise at every position (vector body and scalar tail alike).
  static void scale_shift_act(const float* x, float* y, index_t n,
                              float scale, float shift, int act,
                              float slope) {
    const v8 sc = V::set1(scale), sh = V::set1(shift);
    const v8 z = V::zero();
    const v8 sl = V::set1(slope);
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      v8 t = V::madd(sh, V::loadu(x + i), sc);
      if (act == 1) {
        t = V::max(t, z);
      } else if (act == 2) {
        t = V::blend_gt0(t, t, V::mul(sl, t));
      }
      V::storeu(y + i, t);
    }
    for (; i < n; ++i) {
      float t = scale * x[i] + shift;
      if (act == 1) {
        t = t > 0.0f ? t : 0.0f;
      } else if (act == 2) {
        t = t > 0.0f ? t : slope * t;
      }
      y[i] = t;
    }
  }

  static void relu(const float* CCOVID_RESTRICT x, float* CCOVID_RESTRICT y,
                   index_t n) {
    const v8 z = V::zero();
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      V::storeu(y + i, V::max(V::loadu(x + i), z));
    }
    // Scalar tail keeps maxps semantics: NaN and -0 both map to +0.
    for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
  }

  static void leaky_relu(const float* CCOVID_RESTRICT x,
                         float* CCOVID_RESTRICT y, index_t n, float slope) {
    const v8 sl = V::set1(slope);
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const v8 v = V::loadu(x + i);
      V::storeu(y + i, V::blend_gt0(v, v, V::mul(sl, v)));
    }
    for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : slope * x[i];
  }

  static void add_scalar(float* CCOVID_RESTRICT y, index_t n, float v) {
    const v8 b = V::set1(v);
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      V::storeu(y + i, V::add(V::loadu(y + i), b));
    }
    for (; i < n; ++i) y[i] += v;
  }

  static float dot(const float* CCOVID_RESTRICT a,
                   const float* CCOVID_RESTRICT b, index_t n) {
    v8 acc = V::zero();
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      acc = V::madd(acc, V::loadu(a + i), V::loadu(b + i));
    }
    if (i < n) {
      // Zero-filled lanes contribute +0 products; the virtual-lane
      // partials stay identical at every physical width.
      acc = V::madd(acc, V::load_partial(a + i, n - i),
                    V::load_partial(b + i, n - i));
    }
    return V::reduce_add(acc);
  }

  // ----- half-precision (fp16/bf16) storage kernels -----------------
  //
  // Structure mirrors conv2d_rowq_body: double-wide then single-wide
  // interior blocks with per-channel accumulator chains, shared-source
  // scalar borders. Differences are the storage policy S (convert the
  // input on load) and V::fmadd instead of V::madd — the low-precision
  // contract allows single-rounding FMA (see core/simd.h).
  template <int NCO, int K, class S>
  static void lowp_conv2d_rowq_body(
      const typename S::elem* CCOVID_RESTRICT in,
      const float* CCOVID_RESTRICT wgt, index_t wstride_ci,
      index_t wstride_co, float* CCOVID_RESTRICT out, index_t ostride_co,
      index_t cin, index_t h, index_t w, index_t k, index_t oy,
      index_t pad, index_t wo, const float* CCOVID_RESTRICT bias) {
    const index_t kk = K > 0 ? index_t(K) : k;
    const index_t ky0 = std::max<index_t>(0, pad - oy);
    const index_t ky1 = std::min<index_t>(kk, h + pad - oy);
    const index_t xlo = std::min<index_t>(pad, wo);
    const index_t xhi =
        std::max(xlo, std::min<index_t>(wo, w - kk + pad + 1));
    index_t ox = 0;
    for (; ox < xlo; ++ox) {
      lowp_conv_point_q<NCO, S>(in, wgt, wstride_ci, wstride_co, out,
                                ostride_co, cin, h, w, k, oy, ox, pad,
                                bias);
    }
    const index_t iy0 = oy - pad;
    for (; ox + 16 <= xhi; ox += 16) {
      v8 a0 = V::set1(bias[0]), b0 = a0;
      v8 a1 = NCO > 1 ? V::set1(bias[1]) : V::zero(), b1 = a1;
      v8 a2 = NCO > 2 ? V::set1(bias[2]) : V::zero(), b2 = a2;
      v8 a3 = NCO > 3 ? V::set1(bias[3]) : V::zero(), b3 = a3;
      const index_t ix0 = ox - pad;
      // Hoisted widening: the tap loop re-reads each row segment k
      // times at shifted offsets, so convert a CHUNK of channels to
      // fp32 up front and run the taps as pure f32 loads + FMA. The
      // chunk (8 channels) puts enough distance between the converting
      // stores and the overlapping tap loads that store-forwarding
      // stalls disappear, and the convert uops (port-bound) overlap
      // the previous chunk's FMA stream. The spans are exactly what
      // the per-tap loads touched and widening is elementwise, so the
      // result is bitwise unchanged.
      constexpr index_t kSeg = 24;    // 16 wide + up to 7 skirt taps
      constexpr index_t kChunk = 8;   // channels converted per batch
      float rb[kChunk * 8 * kSeg];    // ky rows bounded by kk <= 8
      const bool hoist = S::kHoist && kk <= 8;
      const index_t nky = ky1 - ky0;
      for (index_t ci0 = 0; ci0 < cin; ci0 += kChunk) {
        const index_t ci1 = std::min<index_t>(cin, ci0 + kChunk);
        if (hoist) {
          for (index_t ci = ci0; ci < ci1; ++ci) {
            const typename S::elem* inp = in + ci * h * w;
            for (index_t ky = ky0; ky < ky1; ++ky) {
              const typename S::elem* row = inp + (iy0 + ky) * w + ix0;
              float* d = rb + ((ci - ci0) * nky + (ky - ky0)) * kSeg;
              V::storeu(d, S::load8(row));
              V::storeu(d + 8, S::load8(row + 8));
              for (index_t t = 16; t + 1 < 16 + kk; ++t) {
                d[t] = S::load1(row + t);
              }
            }
          }
        }
        for (index_t ci = ci0; ci < ci1; ++ci) {
          const typename S::elem* inp = in + ci * h * w;
          const float* w0 = wgt + ci * wstride_ci;
          const float* w1 = w0 + wstride_co;
          const float* w2 = w1 + wstride_co;
          const float* w3 = w2 + wstride_co;
          for (index_t ky = ky0; ky < ky1; ++ky) {
            const typename S::elem* row = inp + (iy0 + ky) * w + ix0;
            const float* seg =
                rb + ((ci - ci0) * nky + (ky - ky0)) * kSeg;
            const index_t kb = ky * kk;
            #pragma GCC unroll 8
            for (index_t kx = 0; kx < kk; ++kx) {
              const v8 v = hoist ? V::loadu(seg + kx) : S::load8(row + kx);
              const v8 u =
                  hoist ? V::loadu(seg + kx + 8) : S::load8(row + kx + 8);
              const v8 wv0 = V::set1(w0[kb + kx]);
              a0 = V::fmadd(a0, v, wv0);
              b0 = V::fmadd(b0, u, wv0);
              if (NCO > 1) {
                const v8 wv1 = V::set1(w1[kb + kx]);
                a1 = V::fmadd(a1, v, wv1);
                b1 = V::fmadd(b1, u, wv1);
              }
              if (NCO > 2) {
                const v8 wv2 = V::set1(w2[kb + kx]);
                a2 = V::fmadd(a2, v, wv2);
                b2 = V::fmadd(b2, u, wv2);
              }
              if (NCO > 3) {
                const v8 wv3 = V::set1(w3[kb + kx]);
                a3 = V::fmadd(a3, v, wv3);
                b3 = V::fmadd(b3, u, wv3);
              }
            }
          }
        }
      }
      V::storeu(out + ox, a0);
      V::storeu(out + ox + 8, b0);
      if (NCO > 1) {
        V::storeu(out + ostride_co + ox, a1);
        V::storeu(out + ostride_co + ox + 8, b1);
      }
      if (NCO > 2) {
        V::storeu(out + 2 * ostride_co + ox, a2);
        V::storeu(out + 2 * ostride_co + ox + 8, b2);
      }
      if (NCO > 3) {
        V::storeu(out + 3 * ostride_co + ox, a3);
        V::storeu(out + 3 * ostride_co + ox + 8, b3);
      }
    }
    for (; ox + 8 <= xhi; ox += 8) {
      v8 a0 = V::set1(bias[0]);
      v8 a1 = NCO > 1 ? V::set1(bias[1]) : V::zero();
      v8 a2 = NCO > 2 ? V::set1(bias[2]) : V::zero();
      v8 a3 = NCO > 3 ? V::set1(bias[3]) : V::zero();
      const index_t ix0 = ox - pad;
      float rb[8 + 7];  // same hoist as the double-wide block
      const bool hoist = S::kHoist && kk <= 8;
      for (index_t ci = 0; ci < cin; ++ci) {
        const typename S::elem* inp = in + ci * h * w;
        const float* w0 = wgt + ci * wstride_ci;
        const float* w1 = w0 + wstride_co;
        const float* w2 = w1 + wstride_co;
        const float* w3 = w2 + wstride_co;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const typename S::elem* row = inp + (iy0 + ky) * w + ix0;
          const index_t kb = ky * kk;
          if (hoist) {
            V::storeu(rb, S::load8(row));
            for (index_t t = 8; t + 1 < 8 + kk; ++t) {
              rb[t] = S::load1(row + t);
            }
          }
          #pragma GCC unroll 8
          for (index_t kx = 0; kx < kk; ++kx) {
            const v8 v = hoist ? V::loadu(rb + kx) : S::load8(row + kx);
            a0 = V::fmadd(a0, v, V::set1(w0[kb + kx]));
            if (NCO > 1) a1 = V::fmadd(a1, v, V::set1(w1[kb + kx]));
            if (NCO > 2) a2 = V::fmadd(a2, v, V::set1(w2[kb + kx]));
            if (NCO > 3) a3 = V::fmadd(a3, v, V::set1(w3[kb + kx]));
          }
        }
      }
      V::storeu(out + ox, a0);
      if (NCO > 1) V::storeu(out + ostride_co + ox, a1);
      if (NCO > 2) V::storeu(out + 2 * ostride_co + ox, a2);
      if (NCO > 3) V::storeu(out + 3 * ostride_co + ox, a3);
    }
    if (ox < xhi && kk <= 8) {
      // Partial-width interior tail. Same fmadd lanes as the blocks
      // above over a zero-padded stack copy of the row segment; only
      // the live lanes are stored, so each output's bits match the
      // scalar border path exactly. Without this, narrow rows (e.g.
      // w=128 leaves up to 7 interior columns after the 16/8-wide
      // blocks) fall to the scalar path at ~8x the per-column cost,
      // diluting the FMA advantage of the low-precision contract.
      const index_t n = xhi - ox;  // 1..7 live columns
      v8 a0 = V::set1(bias[0]);
      v8 a1 = NCO > 1 ? V::set1(bias[1]) : V::zero();
      v8 a2 = NCO > 2 ? V::set1(bias[2]) : V::zero();
      v8 a3 = NCO > 3 ? V::set1(bias[3]) : V::zero();
      const index_t ix0 = ox - pad;
      float rb[16];
      for (index_t ci = 0; ci < cin; ++ci) {
        const typename S::elem* inp = in + ci * h * w;
        const float* w0 = wgt + ci * wstride_ci;
        const float* w1 = w0 + wstride_co;
        const float* w2 = w1 + wstride_co;
        const float* w3 = w2 + wstride_co;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const typename S::elem* row = inp + (iy0 + ky) * w + ix0;
          const index_t kb = ky * kk;
          const index_t live = n + kk - 1;
          for (index_t t = 0; t < live; ++t) rb[t] = S::load1(row + t);
          for (index_t t = live; t < 15; ++t) rb[t] = 0.0f;
          #pragma GCC unroll 8
          for (index_t kx = 0; kx < kk; ++kx) {
            const v8 v = V::loadu(rb + kx);
            a0 = V::fmadd(a0, v, V::set1(w0[kb + kx]));
            if (NCO > 1) a1 = V::fmadd(a1, v, V::set1(w1[kb + kx]));
            if (NCO > 2) a2 = V::fmadd(a2, v, V::set1(w2[kb + kx]));
            if (NCO > 3) a3 = V::fmadd(a3, v, V::set1(w3[kb + kx]));
          }
        }
      }
      float tb[8];
      V::storeu(tb, a0);
      for (index_t j = 0; j < n; ++j) out[ox + j] = tb[j];
      if (NCO > 1) {
        V::storeu(tb, a1);
        for (index_t j = 0; j < n; ++j) out[ostride_co + ox + j] = tb[j];
      }
      if (NCO > 2) {
        V::storeu(tb, a2);
        for (index_t j = 0; j < n; ++j)
          out[2 * ostride_co + ox + j] = tb[j];
      }
      if (NCO > 3) {
        V::storeu(tb, a3);
        for (index_t j = 0; j < n; ++j)
          out[3 * ostride_co + ox + j] = tb[j];
      }
      ox = xhi;
    }
    for (; ox < wo; ++ox) {
      lowp_conv_point_q<NCO, S>(in, wgt, wstride_ci, wstride_co, out,
                                ostride_co, cin, h, w, k, oy, ox, pad,
                                bias);
    }
  }

  template <int NCO, int K, class S>
  static void lowp_deconv2d_rowq_body(
      const typename S::elem* CCOVID_RESTRICT in,
      const float* CCOVID_RESTRICT wgt, index_t wstride_ci,
      index_t wstride_co, float* CCOVID_RESTRICT out, index_t ostride_co,
      index_t cin, index_t h, index_t w, index_t k, index_t oy,
      index_t pad, index_t wo, const float* CCOVID_RESTRICT bias) {
    const index_t kk = K > 0 ? index_t(K) : k;
    const index_t ky0 = std::max<index_t>(0, oy + pad - h + 1);
    const index_t ky1 = std::min<index_t>(kk, oy + pad + 1);
    const index_t xlo =
        std::min<index_t>(std::max<index_t>(0, kk - 1 - pad), wo);
    const index_t xhi = std::max(xlo, std::min<index_t>(wo, w - pad));
    index_t ox = 0;
    for (; ox < xlo; ++ox) {
      lowp_deconv_point_q<NCO, S>(in, wgt, wstride_ci, wstride_co, out,
                                  ostride_co, cin, h, w, k, oy, ox, pad,
                                  bias);
    }
    for (; ox + 16 <= xhi; ox += 16) {
      v8 a0 = V::set1(bias[0]), b0 = a0;
      v8 a1 = NCO > 1 ? V::set1(bias[1]) : V::zero(), b1 = a1;
      v8 a2 = NCO > 2 ? V::set1(bias[2]) : V::zero(), b2 = a2;
      v8 a3 = NCO > 3 ? V::set1(bias[3]) : V::zero(), b3 = a3;
      // Hoisted widening, mirrored for the reversed deconv taps: the
      // span [row - (kk-1), row + 16) is exactly what the per-tap
      // loads touched (see the conv body for the chunking rationale).
      constexpr index_t kSeg = 24;
      constexpr index_t kChunk = 8;
      float rb[kChunk * 8 * kSeg];
      const bool hoist = S::kHoist && kk <= 8;
      const index_t nky = ky1 - ky0;
      for (index_t ci0 = 0; ci0 < cin; ci0 += kChunk) {
        const index_t ci1 = std::min<index_t>(cin, ci0 + kChunk);
        if (hoist) {
          for (index_t ci = ci0; ci < ci1; ++ci) {
            const typename S::elem* inp = in + ci * h * w;
            for (index_t ky = ky0; ky < ky1; ++ky) {
              const typename S::elem* base =
                  inp + (oy + pad - ky) * w + (ox + pad) - (kk - 1);
              float* d = rb + ((ci - ci0) * nky + (ky - ky0)) * kSeg;
              V::storeu(d, S::load8(base));
              V::storeu(d + 8, S::load8(base + 8));
              for (index_t t = 16; t + 1 < 16 + kk; ++t) {
                d[t] = S::load1(base + t);
              }
            }
          }
        }
        for (index_t ci = ci0; ci < ci1; ++ci) {
          const typename S::elem* inp = in + ci * h * w;
          const float* w0 = wgt + ci * wstride_ci;
          const float* w1 = w0 + wstride_co;
          const float* w2 = w1 + wstride_co;
          const float* w3 = w2 + wstride_co;
          for (index_t ky = ky0; ky < ky1; ++ky) {
            const typename S::elem* row =
                inp + (oy + pad - ky) * w + (ox + pad);
            const float* seg =
                rb + ((ci - ci0) * nky + (ky - ky0)) * kSeg;
            const index_t kb = ky * kk;
            #pragma GCC unroll 8
            for (index_t kx = 0; kx < kk; ++kx) {
              const v8 v = hoist ? V::loadu(seg + (kk - 1 - kx))
                                 : S::load8(row - kx);
              const v8 u = hoist ? V::loadu(seg + (kk - 1 - kx) + 8)
                                 : S::load8(row - kx + 8);
              const v8 wv0 = V::set1(w0[kb + kx]);
              a0 = V::fmadd(a0, v, wv0);
              b0 = V::fmadd(b0, u, wv0);
              if (NCO > 1) {
                const v8 wv1 = V::set1(w1[kb + kx]);
                a1 = V::fmadd(a1, v, wv1);
                b1 = V::fmadd(b1, u, wv1);
              }
              if (NCO > 2) {
                const v8 wv2 = V::set1(w2[kb + kx]);
                a2 = V::fmadd(a2, v, wv2);
                b2 = V::fmadd(b2, u, wv2);
              }
              if (NCO > 3) {
                const v8 wv3 = V::set1(w3[kb + kx]);
                a3 = V::fmadd(a3, v, wv3);
                b3 = V::fmadd(b3, u, wv3);
              }
            }
          }
        }
      }
      V::storeu(out + ox, a0);
      V::storeu(out + ox + 8, b0);
      if (NCO > 1) {
        V::storeu(out + ostride_co + ox, a1);
        V::storeu(out + ostride_co + ox + 8, b1);
      }
      if (NCO > 2) {
        V::storeu(out + 2 * ostride_co + ox, a2);
        V::storeu(out + 2 * ostride_co + ox + 8, b2);
      }
      if (NCO > 3) {
        V::storeu(out + 3 * ostride_co + ox, a3);
        V::storeu(out + 3 * ostride_co + ox + 8, b3);
      }
    }
    for (; ox + 8 <= xhi; ox += 8) {
      v8 a0 = V::set1(bias[0]);
      v8 a1 = NCO > 1 ? V::set1(bias[1]) : V::zero();
      v8 a2 = NCO > 2 ? V::set1(bias[2]) : V::zero();
      v8 a3 = NCO > 3 ? V::set1(bias[3]) : V::zero();
      float rb[8 + 7];  // same hoist as the double-wide block
      const bool hoist = S::kHoist && kk <= 8;
      for (index_t ci = 0; ci < cin; ++ci) {
        const typename S::elem* inp = in + ci * h * w;
        const float* w0 = wgt + ci * wstride_ci;
        const float* w1 = w0 + wstride_co;
        const float* w2 = w1 + wstride_co;
        const float* w3 = w2 + wstride_co;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const typename S::elem* row =
              inp + (oy + pad - ky) * w + (ox + pad);
          const index_t kb = ky * kk;
          const typename S::elem* base = row - (kk - 1);
          if (hoist) {
            V::storeu(rb, S::load8(base));
            for (index_t t = 8; t + 1 < 8 + kk; ++t) {
              rb[t] = S::load1(base + t);
            }
          }
          #pragma GCC unroll 8
          for (index_t kx = 0; kx < kk; ++kx) {
            const v8 v =
                hoist ? V::loadu(rb + (kk - 1 - kx)) : S::load8(row - kx);
            a0 = V::fmadd(a0, v, V::set1(w0[kb + kx]));
            if (NCO > 1) a1 = V::fmadd(a1, v, V::set1(w1[kb + kx]));
            if (NCO > 2) a2 = V::fmadd(a2, v, V::set1(w2[kb + kx]));
            if (NCO > 3) a3 = V::fmadd(a3, v, V::set1(w3[kb + kx]));
          }
        }
      }
      V::storeu(out + ox, a0);
      if (NCO > 1) V::storeu(out + ostride_co + ox, a1);
      if (NCO > 2) V::storeu(out + 2 * ostride_co + ox, a2);
      if (NCO > 3) V::storeu(out + 3 * ostride_co + ox, a3);
    }
    if (ox < xhi && kk <= 8) {
      // Partial-width interior tail, reversed-tap layout (see the conv
      // body for the rationale and the bit-equality argument).
      const index_t n = xhi - ox;  // 1..7 live columns
      v8 a0 = V::set1(bias[0]);
      v8 a1 = NCO > 1 ? V::set1(bias[1]) : V::zero();
      v8 a2 = NCO > 2 ? V::set1(bias[2]) : V::zero();
      v8 a3 = NCO > 3 ? V::set1(bias[3]) : V::zero();
      float rb[16];
      for (index_t ci = 0; ci < cin; ++ci) {
        const typename S::elem* inp = in + ci * h * w;
        const float* w0 = wgt + ci * wstride_ci;
        const float* w1 = w0 + wstride_co;
        const float* w2 = w1 + wstride_co;
        const float* w3 = w2 + wstride_co;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const typename S::elem* base =
              inp + (oy + pad - ky) * w + (ox + pad) - (kk - 1);
          const index_t kb = ky * kk;
          const index_t live = n + kk - 1;
          for (index_t t = 0; t < live; ++t) rb[t] = S::load1(base + t);
          for (index_t t = live; t < 15; ++t) rb[t] = 0.0f;
          #pragma GCC unroll 8
          for (index_t kx = 0; kx < kk; ++kx) {
            const v8 v = V::loadu(rb + (kk - 1 - kx));
            a0 = V::fmadd(a0, v, V::set1(w0[kb + kx]));
            if (NCO > 1) a1 = V::fmadd(a1, v, V::set1(w1[kb + kx]));
            if (NCO > 2) a2 = V::fmadd(a2, v, V::set1(w2[kb + kx]));
            if (NCO > 3) a3 = V::fmadd(a3, v, V::set1(w3[kb + kx]));
          }
        }
      }
      float tb[8];
      V::storeu(tb, a0);
      for (index_t j = 0; j < n; ++j) out[ox + j] = tb[j];
      if (NCO > 1) {
        V::storeu(tb, a1);
        for (index_t j = 0; j < n; ++j) out[ostride_co + ox + j] = tb[j];
      }
      if (NCO > 2) {
        V::storeu(tb, a2);
        for (index_t j = 0; j < n; ++j)
          out[2 * ostride_co + ox + j] = tb[j];
      }
      if (NCO > 3) {
        V::storeu(tb, a3);
        for (index_t j = 0; j < n; ++j)
          out[3 * ostride_co + ox + j] = tb[j];
      }
      ox = xhi;
    }
    for (; ox < wo; ++ox) {
      lowp_deconv_point_q<NCO, S>(in, wgt, wstride_ci, wstride_co, out,
                                  ostride_co, cin, h, w, k, oy, ox, pad,
                                  bias);
    }
  }

  template <int NCO, class S, bool Deconv>
  static void lowp_rowq_k(const typename S::elem* in, const float* wgt,
                          index_t wstride_ci, index_t wstride_co,
                          float* out, index_t ostride_co, index_t cin,
                          index_t h, index_t w, index_t k, index_t oy,
                          index_t pad, index_t wo, const float* bias) {
    auto run = [&](auto kc) {
      constexpr int K = decltype(kc)::value;
      if (Deconv) {
        lowp_deconv2d_rowq_body<NCO, K, S>(in, wgt, wstride_ci, wstride_co,
                                           out, ostride_co, cin, h, w, k,
                                           oy, pad, wo, bias);
      } else {
        lowp_conv2d_rowq_body<NCO, K, S>(in, wgt, wstride_ci, wstride_co,
                                         out, ostride_co, cin, h, w, k, oy,
                                         pad, wo, bias);
      }
    };
    switch (k) {
      case 1: run(std::integral_constant<int, 1>{}); break;
      case 3: run(std::integral_constant<int, 3>{}); break;
      case 5: run(std::integral_constant<int, 5>{}); break;
      case 7: run(std::integral_constant<int, 7>{}); break;
      default: run(std::integral_constant<int, 0>{}); break;
    }
  }

  template <class S, bool Deconv>
  static void lowp_row4(const typename S::elem* in, const float* wgt,
                        index_t wstride_ci, index_t wstride_co, float* out,
                        index_t ostride_co, int nco, index_t cin, index_t h,
                        index_t w, index_t k, index_t oy, index_t pad,
                        index_t wo, const float* bias) {
    switch (nco) {
      case 1:
        lowp_rowq_k<1, S, Deconv>(in, wgt, wstride_ci, wstride_co, out,
                                  ostride_co, cin, h, w, k, oy, pad, wo,
                                  bias);
        break;
      case 2:
        lowp_rowq_k<2, S, Deconv>(in, wgt, wstride_ci, wstride_co, out,
                                  ostride_co, cin, h, w, k, oy, pad, wo,
                                  bias);
        break;
      case 3:
        lowp_rowq_k<3, S, Deconv>(in, wgt, wstride_ci, wstride_co, out,
                                  ostride_co, cin, h, w, k, oy, pad, wo,
                                  bias);
        break;
      default:
        lowp_rowq_k<4, S, Deconv>(in, wgt, wstride_ci, wstride_co, out,
                                  ostride_co, cin, h, w, k, oy, pad, wo,
                                  bias);
        break;
    }
  }

  // ---- octet (up to 8 output channels) f32 fma row body ------------
  //
  // Same per-output arithmetic as the row4 _fma path: each output
  // channel's (ci, ky, kx) fmadd order is untouched, so regrouping
  // output channels eight at a time changes no bits. What it changes
  // is input traffic — the graph executor walks the (widened) input
  // once per output-channel group, and the DDnet dense-layer convs
  // (co = 8, k = 5) are memory-bound at 128px, so halving the passes
  // buys more than further ALU tuning. Eight v8 accumulators plus the
  // input vector still fit the 16 architectural ymm registers.
  template <int NCO, int K, bool Deconv>
  static void f32_row8_body(const float* CCOVID_RESTRICT in,
                            const float* CCOVID_RESTRICT wgt,
                            index_t wstride_ci, index_t wstride_co,
                            float* CCOVID_RESTRICT out, index_t ostride_co,
                            index_t cin, index_t h, index_t w, index_t k,
                            index_t oy, index_t pad, index_t wo,
                            const float* CCOVID_RESTRICT bias) {
    static_assert(NCO >= 5 && NCO <= 8, "quartets go through lowp_row4");
    using S = F32Src<V>;
    const index_t kk = K > 0 ? index_t(K) : k;
    index_t ky0, ky1, xlo, xhi;
    if (Deconv) {
      ky0 = std::max<index_t>(0, oy + pad - h + 1);
      ky1 = std::min<index_t>(kk, oy + pad + 1);
      xlo = std::min<index_t>(std::max<index_t>(0, kk - 1 - pad), wo);
      xhi = std::max(xlo, std::min<index_t>(wo, w - pad));
    } else {
      ky0 = std::max<index_t>(0, pad - oy);
      ky1 = std::min<index_t>(kk, h + pad - oy);
      xlo = std::min<index_t>(pad, wo);
      xhi = std::max(xlo, std::min<index_t>(wo, w - kk + pad + 1));
    }
    // Border columns: the quartet point helpers, twice (channels 0..3
    // and 4..NCO-1) — bitwise the same fmaf chain per channel.
    const auto point = [&](index_t ox) {
      if (Deconv) {
        lowp_deconv_point_q<4, S>(in, wgt, wstride_ci, wstride_co, out,
                                  ostride_co, cin, h, w, k, oy, ox, pad,
                                  bias);
        lowp_deconv_point_q<NCO - 4, S>(in, wgt + 4 * wstride_co,
                                        wstride_ci, wstride_co,
                                        out + 4 * ostride_co, ostride_co,
                                        cin, h, w, k, oy, ox, pad,
                                        bias + 4);
      } else {
        lowp_conv_point_q<4, S>(in, wgt, wstride_ci, wstride_co, out,
                                ostride_co, cin, h, w, k, oy, ox, pad,
                                bias);
        lowp_conv_point_q<NCO - 4, S>(in, wgt + 4 * wstride_co, wstride_ci,
                                      wstride_co, out + 4 * ostride_co,
                                      ostride_co, cin, h, w, k, oy, ox,
                                      pad, bias + 4);
      }
    };
    index_t ox = 0;
    for (; ox < xlo; ++ox) point(ox);
    for (; ox + 8 <= xhi; ox += 8) {
      v8 a0 = V::set1(bias[0]);
      v8 a1 = V::set1(bias[1]);
      v8 a2 = V::set1(bias[2]);
      v8 a3 = V::set1(bias[3]);
      v8 a4 = V::set1(bias[4]);
      v8 a5 = NCO > 5 ? V::set1(bias[5]) : V::zero();
      v8 a6 = NCO > 6 ? V::set1(bias[6]) : V::zero();
      v8 a7 = NCO > 7 ? V::set1(bias[7]) : V::zero();
      for (index_t ci = 0; ci < cin; ++ci) {
        const float* inp = in + ci * h * w;
        const float* wp = wgt + ci * wstride_ci;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const float* row = Deconv
                                 ? inp + (oy + pad - ky) * w + (ox + pad)
                                 : inp + (oy - pad + ky) * w + (ox - pad);
          const index_t kb = ky * kk;
          #pragma GCC unroll 8
          for (index_t kx = 0; kx < kk; ++kx) {
            const v8 v =
                Deconv ? V::loadu(row - kx) : V::loadu(row + kx);
            a0 = V::fmadd(a0, v, V::set1(wp[kb + kx]));
            a1 = V::fmadd(a1, v, V::set1(wp[wstride_co + kb + kx]));
            a2 = V::fmadd(a2, v, V::set1(wp[2 * wstride_co + kb + kx]));
            a3 = V::fmadd(a3, v, V::set1(wp[3 * wstride_co + kb + kx]));
            a4 = V::fmadd(a4, v, V::set1(wp[4 * wstride_co + kb + kx]));
            if (NCO > 5) {
              a5 = V::fmadd(a5, v, V::set1(wp[5 * wstride_co + kb + kx]));
            }
            if (NCO > 6) {
              a6 = V::fmadd(a6, v, V::set1(wp[6 * wstride_co + kb + kx]));
            }
            if (NCO > 7) {
              a7 = V::fmadd(a7, v, V::set1(wp[7 * wstride_co + kb + kx]));
            }
          }
        }
      }
      V::storeu(out + ox, a0);
      V::storeu(out + ostride_co + ox, a1);
      V::storeu(out + 2 * ostride_co + ox, a2);
      V::storeu(out + 3 * ostride_co + ox, a3);
      V::storeu(out + 4 * ostride_co + ox, a4);
      if (NCO > 5) V::storeu(out + 5 * ostride_co + ox, a5);
      if (NCO > 6) V::storeu(out + 6 * ostride_co + ox, a6);
      if (NCO > 7) V::storeu(out + 7 * ostride_co + ox, a7);
    }
    if (ox < xhi && kk <= 8) {
      // Partial-width interior tail over a zero-padded stack copy —
      // same bit-equality argument as the row4 bodies.
      const index_t n = xhi - ox;  // 1..7 live columns
      v8 a0 = V::set1(bias[0]);
      v8 a1 = V::set1(bias[1]);
      v8 a2 = V::set1(bias[2]);
      v8 a3 = V::set1(bias[3]);
      v8 a4 = V::set1(bias[4]);
      v8 a5 = NCO > 5 ? V::set1(bias[5]) : V::zero();
      v8 a6 = NCO > 6 ? V::set1(bias[6]) : V::zero();
      v8 a7 = NCO > 7 ? V::set1(bias[7]) : V::zero();
      const index_t ix0 = Deconv ? (ox + pad - (kk - 1)) : (ox - pad);
      float rb[16];
      for (index_t ci = 0; ci < cin; ++ci) {
        const float* inp = in + ci * h * w;
        const float* wp = wgt + ci * wstride_ci;
        for (index_t ky = ky0; ky < ky1; ++ky) {
          const index_t iy = Deconv ? (oy + pad - ky) : (oy - pad + ky);
          const float* row = inp + iy * w + ix0;
          const index_t kb = ky * kk;
          const index_t live = n + kk - 1;
          for (index_t t = 0; t < live; ++t) rb[t] = row[t];
          for (index_t t = live; t < 15; ++t) rb[t] = 0.0f;
          #pragma GCC unroll 8
          for (index_t kx = 0; kx < kk; ++kx) {
            const v8 v = V::loadu(rb + (Deconv ? (kk - 1 - kx) : kx));
            a0 = V::fmadd(a0, v, V::set1(wp[kb + kx]));
            a1 = V::fmadd(a1, v, V::set1(wp[wstride_co + kb + kx]));
            a2 = V::fmadd(a2, v, V::set1(wp[2 * wstride_co + kb + kx]));
            a3 = V::fmadd(a3, v, V::set1(wp[3 * wstride_co + kb + kx]));
            a4 = V::fmadd(a4, v, V::set1(wp[4 * wstride_co + kb + kx]));
            if (NCO > 5) {
              a5 = V::fmadd(a5, v, V::set1(wp[5 * wstride_co + kb + kx]));
            }
            if (NCO > 6) {
              a6 = V::fmadd(a6, v, V::set1(wp[6 * wstride_co + kb + kx]));
            }
            if (NCO > 7) {
              a7 = V::fmadd(a7, v, V::set1(wp[7 * wstride_co + kb + kx]));
            }
          }
        }
      }
      float tb[8];
      const auto store_n = [&](v8 acc, index_t co) {
        V::storeu(tb, acc);
        for (index_t j = 0; j < n; ++j) out[co * ostride_co + ox + j] = tb[j];
      };
      store_n(a0, 0);
      store_n(a1, 1);
      store_n(a2, 2);
      store_n(a3, 3);
      store_n(a4, 4);
      if (NCO > 5) store_n(a5, 5);
      if (NCO > 6) store_n(a6, 6);
      if (NCO > 7) store_n(a7, 7);
      ox = xhi;
    }
    for (; ox < wo; ++ox) point(ox);
  }

  template <bool Deconv>
  static void f32_row8(const float* in, const float* wgt,
                       index_t wstride_ci, index_t wstride_co, float* out,
                       index_t ostride_co, int nco, index_t cin, index_t h,
                       index_t w, index_t k, index_t oy, index_t pad,
                       index_t wo, const float* bias) {
    if (nco <= 4) {
      lowp_row4<F32Src<V>, Deconv>(in, wgt, wstride_ci, wstride_co, out,
                                   ostride_co, nco, cin, h, w, k, oy, pad,
                                   wo, bias);
      return;
    }
    const auto run = [&](auto nc) {
      constexpr int NCO = decltype(nc)::value;
      const auto body = [&](auto kc) {
        constexpr int K = decltype(kc)::value;
        f32_row8_body<NCO, K, Deconv>(in, wgt, wstride_ci, wstride_co, out,
                                      ostride_co, cin, h, w, k, oy, pad,
                                      wo, bias);
      };
      switch (k) {
        case 1: body(std::integral_constant<int, 1>{}); break;
        case 3: body(std::integral_constant<int, 3>{}); break;
        case 5: body(std::integral_constant<int, 5>{}); break;
        case 7: body(std::integral_constant<int, 7>{}); break;
        default: body(std::integral_constant<int, 0>{}); break;
      }
    };
    switch (nco) {
      case 5: run(std::integral_constant<int, 5>{}); break;
      case 6: run(std::integral_constant<int, 6>{}); break;
      case 7: run(std::integral_constant<int, 7>{}); break;
      default: run(std::integral_constant<int, 8>{}); break;
    }
  }

  static void conv2d_row8_s1_fma(const float* in, const float* wgt,
                                 index_t wstride_ci, index_t wstride_co,
                                 float* out, index_t ostride_co, int nco,
                                 index_t cin, index_t h, index_t w,
                                 index_t k, index_t oy, index_t pad,
                                 index_t wo, const float* bias) {
    f32_row8<false>(in, wgt, wstride_ci, wstride_co, out, ostride_co, nco,
                    cin, h, w, k, oy, pad, wo, bias);
  }

  static void deconv2d_row8_s1_fma(const float* in, const float* wgt,
                                   index_t wstride_ci, index_t wstride_co,
                                   float* out, index_t ostride_co, int nco,
                                   index_t cin, index_t h, index_t w,
                                   index_t k, index_t oy, index_t pad,
                                   index_t wo, const float* bias) {
    f32_row8<true>(in, wgt, wstride_ci, wstride_co, out, ostride_co, nco,
                   cin, h, w, k, oy, pad, wo, bias);
  }

  static void conv2d_row4_s1_f16(const std::uint16_t* in, const float* wgt,
                                 index_t wstride_ci, index_t wstride_co,
                                 float* out, index_t ostride_co, int nco,
                                 index_t cin, index_t h, index_t w,
                                 index_t k, index_t oy, index_t pad,
                                 index_t wo, const float* bias) {
    lowp_row4<F16Src<V>, false>(in, wgt, wstride_ci, wstride_co, out,
                                ostride_co, nco, cin, h, w, k, oy, pad, wo,
                                bias);
  }
  static void deconv2d_row4_s1_f16(const std::uint16_t* in,
                                   const float* wgt, index_t wstride_ci,
                                   index_t wstride_co, float* out,
                                   index_t ostride_co, int nco, index_t cin,
                                   index_t h, index_t w, index_t k,
                                   index_t oy, index_t pad, index_t wo,
                                   const float* bias) {
    lowp_row4<F16Src<V>, true>(in, wgt, wstride_ci, wstride_co, out,
                               ostride_co, nco, cin, h, w, k, oy, pad, wo,
                               bias);
  }
  static void conv2d_row4_s1_bf16(const std::uint16_t* in,
                                  const float* wgt, index_t wstride_ci,
                                  index_t wstride_co, float* out,
                                  index_t ostride_co, int nco, index_t cin,
                                  index_t h, index_t w, index_t k,
                                  index_t oy, index_t pad, index_t wo,
                                  const float* bias) {
    lowp_row4<Bf16Src<V>, false>(in, wgt, wstride_ci, wstride_co, out,
                                 ostride_co, nco, cin, h, w, k, oy, pad,
                                 wo, bias);
  }
  static void deconv2d_row4_s1_bf16(const std::uint16_t* in,
                                    const float* wgt, index_t wstride_ci,
                                    index_t wstride_co, float* out,
                                    index_t ostride_co, int nco,
                                    index_t cin, index_t h, index_t w,
                                    index_t k, index_t oy, index_t pad,
                                    index_t wo, const float* bias) {
    lowp_row4<Bf16Src<V>, true>(in, wgt, wstride_ci, wstride_co, out,
                                ostride_co, nco, cin, h, w, k, oy, pad, wo,
                                bias);
  }
  static void conv2d_row4_s1_fma(const float* in, const float* wgt,
                                 index_t wstride_ci, index_t wstride_co,
                                 float* out, index_t ostride_co, int nco,
                                 index_t cin, index_t h, index_t w,
                                 index_t k, index_t oy, index_t pad,
                                 index_t wo, const float* bias) {
    lowp_row4<F32Src<V>, false>(in, wgt, wstride_ci, wstride_co, out,
                                ostride_co, nco, cin, h, w, k, oy, pad, wo,
                                bias);
  }
  static void deconv2d_row4_s1_fma(const float* in, const float* wgt,
                                   index_t wstride_ci, index_t wstride_co,
                                   float* out, index_t ostride_co, int nco,
                                   index_t cin, index_t h, index_t w,
                                   index_t k, index_t oy, index_t pad,
                                   index_t wo, const float* bias) {
    lowp_row4<F32Src<V>, true>(in, wgt, wstride_ci, wstride_co, out,
                               ostride_co, nco, cin, h, w, k, oy, pad, wo,
                               bias);
  }

  // Converting epilogue stores: the affine/activation expression is the
  // one from scale_shift_act (two-rounding madd — identical fp32 bits
  // to the fp32-mode epilogue); only the store narrows with RNE.
  static void scale_shift_act_store_f16(const float* x, std::uint16_t* y,
                                        index_t n, float scale, float shift,
                                        int act, float slope) {
    const v8 sc = V::set1(scale), sh = V::set1(shift);
    const v8 z = V::zero();
    const v8 sl = V::set1(slope);
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      v8 t = V::madd(sh, V::loadu(x + i), sc);
      if (act == 1) {
        t = V::max(t, z);
      } else if (act == 2) {
        t = V::blend_gt0(t, t, V::mul(sl, t));
      }
      V::storeu_f16(y + i, t);
    }
    for (; i < n; ++i) {
      float t = scale * x[i] + shift;
      if (act == 1) {
        t = t > 0.0f ? t : 0.0f;
      } else if (act == 2) {
        t = t > 0.0f ? t : slope * t;
      }
      y[i] = f32_to_f16_bits_ftz(t);
    }
  }

  static void scale_shift_act_store_bf16(const float* x, std::uint16_t* y,
                                         index_t n, float scale,
                                         float shift, int act,
                                         float slope) {
    const v8 sc = V::set1(scale), sh = V::set1(shift);
    const v8 z = V::zero();
    const v8 sl = V::set1(slope);
    index_t i = 0;
    for (; i + 8 <= n; i += 8) {
      v8 t = V::madd(sh, V::loadu(x + i), sc);
      if (act == 1) {
        t = V::max(t, z);
      } else if (act == 2) {
        t = V::blend_gt0(t, t, V::mul(sl, t));
      }
      V::storeu_bf16(y + i, t);
    }
    for (; i < n; ++i) {
      float t = scale * x[i] + shift;
      if (act == 1) {
        t = t > 0.0f ? t : 0.0f;
      } else if (act == 2) {
        t = t > 0.0f ? t : slope * t;
      }
      y[i] = f32_to_bf16_bits(t);
    }
  }

  static void cvt_f32_to_f16(const float* x, std::uint16_t* y, index_t n) {
    index_t i = 0;
    for (; i + 8 <= n; i += 8) V::storeu_f16(y + i, V::loadu(x + i));
    for (; i < n; ++i) y[i] = f32_to_f16_bits_ftz(x[i]);
  }
  static void cvt_f16_to_f32(const std::uint16_t* x, float* y, index_t n) {
    index_t i = 0;
    for (; i + 8 <= n; i += 8) V::storeu(y + i, V::loadu_f16(x + i));
    for (; i < n; ++i) y[i] = f16_bits_to_f32(x[i]);
  }
  static void cvt_f32_to_bf16(const float* x, std::uint16_t* y, index_t n) {
    index_t i = 0;
    for (; i + 8 <= n; i += 8) V::storeu_bf16(y + i, V::loadu(x + i));
    for (; i < n; ++i) y[i] = f32_to_bf16_bits(x[i]);
  }
  static void cvt_bf16_to_f32(const std::uint16_t* x, float* y, index_t n) {
    index_t i = 0;
    for (; i + 8 <= n; i += 8) V::storeu(y + i, V::loadu_bf16(x + i));
    for (; i < n; ++i) y[i] = bf16_bits_to_f32(x[i]);
  }

  // ----- probes -----------------------------------------------------
  static void probe_madd(const float* a, const float* b, const float* c,
                         float* out) {
    V::storeu(out, V::madd(V::loadu(c), V::loadu(a), V::loadu(b)));
  }
  static void probe_fmadd(const float* a, const float* b, const float* c,
                          float* out) {
    V::storeu(out, V::fmadd(V::loadu(c), V::loadu(a), V::loadu(b)));
  }
  static void probe_mul(const float* a, const float* b, float* out) {
    V::storeu(out, V::mul(V::loadu(a), V::loadu(b)));
  }
  static void probe_add(const float* a, const float* b, float* out) {
    V::storeu(out, V::add(V::loadu(a), V::loadu(b)));
  }
  static void probe_min(const float* a, const float* b, float* out) {
    V::storeu(out, V::min(V::loadu(a), V::loadu(b)));
  }
  static void probe_max(const float* a, const float* b, float* out) {
    V::storeu(out, V::max(V::loadu(a), V::loadu(b)));
  }
  static float probe_reduce(const float* a) {
    return V::reduce_add(V::loadu(a));
  }
  static void probe_load_partial(const float* p, index_t n, float* out) {
    V::storeu(out, V::load_partial(p, n));
  }
};

template <class V>
KernelTable make_table(const char* name) {
  KernelTable t;
  t.name = name;
  t.sgemm_micro_4x8 = &Kernels<V>::sgemm_micro_4x8;
  t.conv2d_row_s1 = &Kernels<V>::conv2d_row_s1;
  t.deconv2d_row_s1 = &Kernels<V>::deconv2d_row_s1;
  t.conv2d_row4_s1 = &Kernels<V>::conv2d_row4_s1;
  t.deconv2d_row4_s1 = &Kernels<V>::deconv2d_row4_s1;
  t.scale_shift = &Kernels<V>::scale_shift;
  t.scale_shift_act = &Kernels<V>::scale_shift_act;
  t.relu = &Kernels<V>::relu;
  t.leaky_relu = &Kernels<V>::leaky_relu;
  t.add_scalar = &Kernels<V>::add_scalar;
  t.cmul = &V::cmul;
  t.dot = &Kernels<V>::dot;
  t.conv2d_row4_s1_f16 = &Kernels<V>::conv2d_row4_s1_f16;
  t.deconv2d_row4_s1_f16 = &Kernels<V>::deconv2d_row4_s1_f16;
  t.conv2d_row4_s1_bf16 = &Kernels<V>::conv2d_row4_s1_bf16;
  t.deconv2d_row4_s1_bf16 = &Kernels<V>::deconv2d_row4_s1_bf16;
  t.conv2d_row4_s1_fma = &Kernels<V>::conv2d_row4_s1_fma;
  t.deconv2d_row4_s1_fma = &Kernels<V>::deconv2d_row4_s1_fma;
  t.conv2d_row8_s1_fma = &Kernels<V>::conv2d_row8_s1_fma;
  t.deconv2d_row8_s1_fma = &Kernels<V>::deconv2d_row8_s1_fma;
  t.scale_shift_act_store_f16 = &Kernels<V>::scale_shift_act_store_f16;
  t.scale_shift_act_store_bf16 = &Kernels<V>::scale_shift_act_store_bf16;
  t.cvt_f32_to_f16 = &Kernels<V>::cvt_f32_to_f16;
  t.cvt_f16_to_f32 = &Kernels<V>::cvt_f16_to_f32;
  t.cvt_f32_to_bf16 = &Kernels<V>::cvt_f32_to_bf16;
  t.cvt_bf16_to_f32 = &Kernels<V>::cvt_bf16_to_f32;
  // int8 kernels are exact integer arithmetic: one portable body is
  // bitwise-identical everywhere, so scalar/sse2 share it and only the
  // avx2 TU overrides these entries with vpmaddwd versions.
  t.conv2d_row4_s1_i8 = &conv2d_row4_s1_i8_generic;
  t.deconv2d_row4_s1_i8 = &deconv2d_row4_s1_i8_generic;
  t.quant_epilogue_store_i8 = &quant_epilogue_store_i8_generic;
  t.dequant_epilogue_f32 = &dequant_epilogue_f32_generic;
  t.quant_f32_to_i8 = &quant_f32_to_i8_generic;
  t.dequant_i8_to_f32 = &dequant_i8_to_f32_generic;
  t.probe_madd = &Kernels<V>::probe_madd;
  t.probe_fmadd = &Kernels<V>::probe_fmadd;
  t.probe_mul = &Kernels<V>::probe_mul;
  t.probe_add = &Kernels<V>::probe_add;
  t.probe_min = &Kernels<V>::probe_min;
  t.probe_max = &Kernels<V>::probe_max;
  t.probe_reduce = &Kernels<V>::probe_reduce;
  t.probe_load_partial = &Kernels<V>::probe_load_partial;
  return t;
}

// Shared scalar complex-multiply element: the exact mul/sub/add pairing
// every backend (and every vector tail) must reproduce.
inline void cmul_one(double* a, const double* b) {
  const double ar = a[0], ai = a[1];
  const double br = b[0], bi = b[1];
  a[0] = ar * br - ai * bi;
  a[1] = ai * br + ar * bi;
}

}  // namespace ccovid::simd::detail
