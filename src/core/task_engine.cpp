#include "core/task_engine.h"

#include <algorithm>

#include "trace/trace.h"
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace ccovid {

namespace {

// Job-slot states. A slot cycles FREE -> SETUP -> ACTIVE -> DRAINING ->
// FREE; only the master (the thread that claimed the slot) moves it out
// of FREE and back.
enum : int { kFree = 0, kSetup = 1, kActive = 2, kDraining = 3 };

constexpr int kSlots = 64;
// Bounded yield-spin before a thread parks on a condition variable.
// Deliberately modest: on machines with fewer cores than lanes the
// spinners must cede the core to whoever holds real work.
constexpr int kSpinIters = 64;

struct alignas(64) Job {
  // Immutable while ACTIVE; written by the master during SETUP and read
  // by workers only after an acquire load observes ACTIVE.
  TaskEngine::RangeFn fn = nullptr;
  void* ctx = nullptr;
  index_t begin = 0;
  index_t end = 0;
  index_t chunk = 1;
  // Atomic because help_board peeks at it BEFORE attaching (to skip
  // exhausted jobs cheaply); that peek may race a master re-initializing
  // the recycled slot. The value read is advisory only — the post-attach
  // state re-check is the authoritative gate — so relaxed order is
  // enough; atomicity just keeps the unsynchronized peek defined.
  std::atomic<index_t> n_chunks{0};
  int cap = 0;  // max threads on this job, 0 = unlimited

  std::atomic<int> state{kFree};
  std::atomic<index_t> next{0};       // next chunk index to claim
  std::atomic<index_t> done{0};       // chunks fully executed
  std::atomic<std::uint32_t> claimants{0};  // threads attached (incl. master)
  std::atomic<bool> cancelled{false};
  std::atomic<bool> has_error{false};
  std::exception_ptr error;

  // Master parks here waiting for done == n_chunks.
  std::mutex mu;
  std::condition_variable cv;
};

struct EngineState {
  Job board[kSlots];

  // Wake protocol: any publication (job or task) bumps `epoch` under
  // `wake_mu` and notifies; parked workers wait for an epoch change
  // relative to the snapshot they took BEFORE their last failed scan,
  // so a publication racing the scan always wakes them.
  std::atomic<std::uint64_t> epoch{0};
  std::mutex wake_mu;
  std::condition_variable wake_cv;

  // Detached-task queue (TaskEngine::submit).
  std::mutex task_mu;
  std::deque<std::function<void()>> tasks;
  std::atomic<int> tasks_outstanding{0};  // queued + running
  std::condition_variable tasks_idle_cv;

  std::mutex spawn_mu;
  std::atomic<int> n_workers{0};
};

thread_local bool t_on_worker = false;
thread_local std::uint64_t t_rng = 0;

// Leaky singleton: workers hold pointers into this forever, so it is
// never destroyed (clean under LSan — still reachable at exit).
EngineState* state() {
  static EngineState* const s = new EngineState();
  return s;
}

std::uint64_t next_rand() {
  // xorshift64*; seeded per thread in worker_loop / lazily for masters.
  if (t_rng == 0) {
    t_rng = std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1;
  }
  std::uint64_t x = t_rng;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  t_rng = x;
  return x * 0x2545f4914f6cdd1dULL;
}

// Claims and executes chunks of `j` until none remain. Returns true if
// at least one chunk was claimed. Caller must hold a claimant count.
bool work_on(Job& j) {
  bool did = false;
  for (;;) {
    const index_t k = j.next.fetch_add(1, std::memory_order_relaxed);
    if (k >= j.n_chunks.load(std::memory_order_relaxed)) break;
    did = true;
    if (!j.cancelled.load(std::memory_order_relaxed)) {
      const index_t lo = j.begin + k * j.chunk;
      const index_t hi = std::min(j.end, lo + j.chunk);
      try {
        j.fn(j.ctx, lo, hi);
      } catch (...) {
        if (!j.has_error.exchange(true, std::memory_order_acq_rel)) {
          j.error = std::current_exception();
        }
        j.cancelled.store(true, std::memory_order_relaxed);
      }
    }
    // Cancelled chunks still count towards done so the master's wait
    // terminates; their work is simply skipped.
    const index_t d = j.done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (d == j.n_chunks.load(std::memory_order_relaxed)) {
      {
        std::lock_guard<std::mutex> lk(j.mu);
      }
      j.cv.notify_all();
    }
  }
  return did;
}

// One board sweep in this thread's PRNG order. Returns true if any
// chunk was executed.
bool help_board(EngineState* g) {
  bool did = false;
  const std::uint32_t start =
      static_cast<std::uint32_t>(next_rand() % kSlots);
  for (int i = 0; i < kSlots; ++i) {
    Job& j = g->board[(start + i) % kSlots];
    if (j.state.load(std::memory_order_acquire) != kActive) continue;
    if (j.next.load(std::memory_order_relaxed) >=
        j.n_chunks.load(std::memory_order_relaxed)) {
      continue;
    }
    // Attach BEFORE the authoritative checks: the master's release
    // protocol (DRAINING, then CAS claimants 1 -> 0, then FREE) makes a
    // post-release increment synchronize with the master's CAS, so the
    // re-check below reliably sees a non-ACTIVE state and we detach
    // without ever touching the slot's work fields.
    const std::uint32_t c =
        j.claimants.fetch_add(1, std::memory_order_acq_rel);
    if (j.state.load(std::memory_order_acquire) == kActive &&
        (j.cap == 0 || static_cast<int>(c) < j.cap)) {
      if (work_on(j)) {
        did = true;
        TRACE_INSTANT_V("engine.steal");
      }
    }
    j.claimants.fetch_sub(1, std::memory_order_acq_rel);
  }
  return did;
}

bool run_one_task(EngineState* g) {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lk(g->task_mu);
    if (g->tasks.empty()) return false;
    task = std::move(g->tasks.front());
    g->tasks.pop_front();
  }
  task();  // an escaping exception terminates: tasks have no waiter
  if (g->tasks_outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard<std::mutex> lk(g->task_mu);
    }
    g->tasks_idle_cv.notify_all();
  }
  return true;
}

void wake_workers(EngineState* g) {
  {
    std::lock_guard<std::mutex> lk(g->wake_mu);
    g->epoch.fetch_add(1, std::memory_order_release);
  }
  g->wake_cv.notify_all();
}

void worker_loop(EngineState* g, int index) {
  t_on_worker = true;
  t_rng = (static_cast<std::uint64_t>(index) + 2) * 0x9e3779b97f4a7c15ULL;
  for (;;) {
    // Snapshot the epoch BEFORE scanning: if a master publishes while we
    // scan (and we miss it), its epoch bump invalidates this snapshot
    // and the park below returns immediately.
    const std::uint64_t epoch = g->epoch.load(std::memory_order_acquire);
    bool did = help_board(g);
    did |= run_one_task(g);
    if (did) continue;
    bool woke = false;
    for (int s = 0; s < kSpinIters; ++s) {
      if (g->epoch.load(std::memory_order_acquire) != epoch) {
        woke = true;
        break;
      }
      std::this_thread::yield();
    }
    if (woke) continue;
    TRACE_INSTANT_V("engine.park");
    std::unique_lock<std::mutex> lk(g->wake_mu);
    g->wake_cv.wait(lk, [&] {
      return g->epoch.load(std::memory_order_relaxed) != epoch;
    });
  }
}

}  // namespace

TaskEngine& TaskEngine::instance() {
  static TaskEngine* const e =
      new (::operator new(sizeof(TaskEngine))) TaskEngine();
  (void)state();
  return *e;
}

void TaskEngine::ensure_workers(int threads) {
  if (threads <= 1) return;
  EngineState* g = state();
  const int want = threads - 1;  // the calling lane participates
  if (g->n_workers.load(std::memory_order_acquire) >= want) return;
  std::lock_guard<std::mutex> lk(g->spawn_mu);
  while (g->n_workers.load(std::memory_order_relaxed) < want) {
    const int index = g->n_workers.load(std::memory_order_relaxed);
    std::thread(worker_loop, g, index).detach();
    g->n_workers.fetch_add(1, std::memory_order_release);
  }
}

int TaskEngine::worker_count() const {
  return state()->n_workers.load(std::memory_order_acquire);
}

bool TaskEngine::on_worker_thread() { return t_on_worker; }

void TaskEngine::parallel_range(index_t begin, index_t end, index_t chunk,
                                RangeFn fn, void* ctx, int cap) {
  if (end <= begin) return;
  if (chunk <= 0) chunk = 1;
  const index_t n = end - begin;
  const index_t n_chunks = (n + chunk - 1) / chunk;
  if (n_chunks <= 1) {
    fn(ctx, begin, end);
    return;
  }
  if (cap > 1) ensure_workers(cap);
  EngineState* g = state();
  Job* j = nullptr;
  for (int i = 0; i < kSlots; ++i) {
    int expected = kFree;
    if (g->board[i].state.compare_exchange_strong(
            expected, kSetup, std::memory_order_acq_rel)) {
      j = &g->board[i];
      break;
    }
  }
  if (!j) {
    // Board full (64 concurrent loops) — correctness fallback: run the
    // whole range inline. Chunk boundaries are unchanged, so results
    // are still identical.
    for (index_t k = 0; k < n_chunks; ++k) {
      const index_t lo = begin + k * chunk;
      fn(ctx, lo, std::min(end, lo + chunk));
    }
    return;
  }
  j->fn = fn;
  j->ctx = ctx;
  j->begin = begin;
  j->end = end;
  j->chunk = chunk;
  j->n_chunks.store(n_chunks, std::memory_order_relaxed);
  j->cap = cap;
  j->next.store(0, std::memory_order_relaxed);
  j->done.store(0, std::memory_order_relaxed);
  j->cancelled.store(false, std::memory_order_relaxed);
  j->has_error.store(false, std::memory_order_relaxed);
  j->error = nullptr;
  // fetch_add, NOT store: a worker that attached to the slot's previous
  // life may still be about to decrement; a store would erase its
  // pending decrement and underflow the count.
  j->claimants.fetch_add(1, std::memory_order_acq_rel);
  // Publish-through-drain on the master: covers the job's whole lifetime
  // (wake, own chunks, straggler wait) without touching worker lanes.
  TRACE_SPAN_V("engine.dispatch");
  j->state.store(kActive, std::memory_order_release);
  wake_workers(g);

  work_on(*j);  // the master claims chunks like everyone else

  if (j->done.load(std::memory_order_acquire) != n_chunks) {
    for (int s = 0; s < kSpinIters &&
                    j->done.load(std::memory_order_acquire) != n_chunks;
         ++s) {
      std::this_thread::yield();
    }
    if (j->done.load(std::memory_order_acquire) != n_chunks) {
      std::unique_lock<std::mutex> lk(j->mu);
      j->cv.wait(lk, [&] {
        return j->done.load(std::memory_order_acquire) == n_chunks;
      });
    }
  }

  // Release protocol (order matters — see help_board):
  //   1. leave ACTIVE so new attachers fail their re-check,
  //   2. CAS claimants 1 -> 0 (retry while stragglers are attached;
  //      the CAS is the release operation a late attacher's acquire
  //      fetch_add synchronizes with),
  //   3. only then return the slot to FREE for reuse.
  j->state.store(kDraining, std::memory_order_release);
  for (;;) {
    std::uint32_t one = 1;
    if (j->claimants.compare_exchange_weak(one, 0,
                                           std::memory_order_acq_rel)) {
      break;
    }
    std::this_thread::yield();
  }
  std::exception_ptr err;
  if (j->has_error.load(std::memory_order_acquire)) err = j->error;
  j->error = nullptr;
  j->fn = nullptr;
  j->ctx = nullptr;
  j->state.store(kFree, std::memory_order_release);
  if (err) std::rethrow_exception(err);
}

void TaskEngine::submit(std::function<void()> task) {
  EngineState* g = state();
  ensure_workers(2);  // at least one worker so tasks make progress
  {
    std::lock_guard<std::mutex> lk(g->task_mu);
    g->tasks.push_back(std::move(task));
    g->tasks_outstanding.fetch_add(1, std::memory_order_relaxed);
  }
  wake_workers(g);
}

void TaskEngine::wait_tasks_idle() {
  EngineState* g = state();
  while (run_one_task(g)) {  // help drain instead of just blocking
  }
  std::unique_lock<std::mutex> lk(g->task_mu);
  g->tasks_idle_cv.wait(lk, [&] {
    return g->tasks_outstanding.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace ccovid
