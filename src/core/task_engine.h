// TaskEngine: the process-wide work-stealing execution engine backing
// every parallel_for in the library (OpenMP is gone — see
// core/parallel.h for the loop-facing API).
//
// Design
// ------
//  * One persistent pool of workers, grown lazily to the largest width
//    ever requested and parked (condition variable) when idle. Workers
//    spin briefly before parking so back-to-back kernel launches — the
//    steady state of a DDnet forward pass — never pay a futex wake.
//  * Data-parallel loops are published to a fixed board of job slots
//    (static storage, so a worker can never touch freed memory). Each
//    job splits its index range into chunks whose size depends ONLY on
//    (range, grain) — never on the thread count — and workers claim
//    chunks with one fetch_add. Any thread, including the submitting
//    one, may execute any chunk: scheduling is dynamic, results are
//    bitwise independent of both width and claim order because every
//    chunk owns a disjoint slice of the output.
//  * Workers visit the job board in a per-thread PRNG order (seeded by
//    the worker index), the classic work-stealing trick that keeps
//    concurrent jobs from convoying on slot 0.
//  * A job carries a concurrency cap: at most `cap` threads work on it
//    simultaneously. The serving runtime uses this (via ParallelPin) as
//    its per-request limit — four request executors share one engine
//    and saturate the machine instead of statically partitioning it.
//  * Exceptions thrown by a chunk are captured (first wins), remaining
//    chunks are skipped, and the exception is rethrown on the thread
//    that submitted the loop.
//  * submit() enqueues a detached task; tasks may submit further tasks
//    and may run parallel loops (workers that wait on a nested loop
//    keep executing that loop's chunks, so progress never depends on a
//    free worker).
//
// Lifetime: the engine is a leaky singleton — workers are parked, never
// joined, and the heap they hold stays reachable, so process exit is
// clean under LeakSanitizer without any shutdown ordering hazards.
#pragma once

#include <functional>

#include "core/types.h"

namespace ccovid {

class TaskEngine {
 public:
  /// Chunk executor: fn(ctx, lo, hi) must process indices [lo, hi).
  using RangeFn = void (*)(void* ctx, index_t lo, index_t hi);

  static TaskEngine& instance();

  /// Runs fn over [begin, end) in chunks of `chunk` indices, blocking
  /// until every chunk finished. At most `cap` threads (0 = unlimited)
  /// work on this loop concurrently; the calling thread always
  /// participates. Rethrows the first exception a chunk raised.
  /// The chunk partition is a pure function of (begin, end, chunk), so
  /// results that are deterministic per index are bitwise identical at
  /// every thread count.
  void parallel_range(index_t begin, index_t end, index_t chunk,
                      RangeFn fn, void* ctx, int cap);

  /// Ensures at least `threads` lanes (the caller plus threads-1
  /// workers) exist. Called by set_num_threads; growing is cheap and
  /// the pool never shrinks (parked workers cost nothing but memory).
  void ensure_workers(int threads);

  /// Enqueues a detached task. Tasks run on engine workers, may submit
  /// further tasks, and may run parallel loops. Exceptions escaping a
  /// task terminate the process (tasks have no waiter to rethrow to) —
  /// catch inside the task if failure is expected.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. Parallel
  /// loops are not tasks; they are always complete when parallel_range
  /// returns.
  void wait_tasks_idle();

  /// Number of spawned workers (excluding callers). For tests/stats.
  int worker_count() const;

  /// True when the calling thread is an engine worker.
  static bool on_worker_thread();

  TaskEngine(const TaskEngine&) = delete;
  TaskEngine& operator=(const TaskEngine&) = delete;

 private:
  TaskEngine() = default;
  ~TaskEngine() = delete;  // leaky singleton, never destroyed
};

}  // namespace ccovid
