#include "core/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>

#include "core/alloc_cache.h"

namespace ccovid {

namespace {

std::shared_ptr<real_t[]> allocate_aligned(index_t n) {
  if (n == 0) n = 1;  // keep a valid pointer for rank-0 / empty extents
  const std::size_t bytes =
      static_cast<std::size_t>(n) * sizeof(real_t);
  const std::size_t padded =
      (bytes + kTensorAlignment - 1) / kTensorAlignment * kTensorAlignment;
  // Exact-size block pool: steady-state inference cycles through the
  // same tensor shapes, so after warm-up this recycles instead of
  // touching the heap. Recycled blocks hold stale data — the memset
  // preserves the constructor's zero-init contract.
  void* p = cache_aligned_alloc(padded);
  std::memset(p, 0, padded);
  return std::shared_ptr<real_t[]>(static_cast<real_t*>(p),
                                   [](real_t* q) { cache_aligned_free(q); });
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape().str() + " vs " + b.shape().str());
  }
}

}  // namespace

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), storage_(allocate_aligned(shape_.numel())) {}

Tensor Tensor::full(Shape shape, real_t value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::from_vector(Shape shape, const std::vector<real_t>& v) {
  Tensor t(std::move(shape));
  if (static_cast<index_t>(v.size()) != t.numel()) {
    throw std::invalid_argument("Tensor::from_vector: size mismatch");
  }
  std::copy(v.begin(), v.end(), t.data());
  return t;
}

Tensor Tensor::clone() const {
  Tensor t(shape_);
  if (defined()) {
    std::memcpy(t.data(), data(),
                static_cast<std::size_t>(numel()) * sizeof(real_t));
  }
  return t;
}

Tensor Tensor::reshape(Shape new_shape) const {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("Tensor::reshape: numel mismatch " +
                                shape_.str() + " -> " + new_shape.str());
  }
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.storage_ = storage_;
  return t;
}

void Tensor::fill(real_t value) {
  std::fill_n(data(), numel(), value);
}

Tensor& Tensor::add_(const Tensor& other, real_t alpha) {
  check_same_shape(*this, other, "add_");
  real_t* CCOVID_RESTRICT a = data();
  const real_t* CCOVID_RESTRICT b = other.data();
  const index_t n = numel();
  for (index_t i = 0; i < n; ++i) a[i] += alpha * b[i];
  return *this;
}

Tensor& Tensor::mul_(real_t scalar) {
  real_t* a = data();
  const index_t n = numel();
  for (index_t i = 0; i < n; ++i) a[i] *= scalar;
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  check_same_shape(*this, other, "mul_");
  real_t* CCOVID_RESTRICT a = data();
  const real_t* CCOVID_RESTRICT b = other.data();
  const index_t n = numel();
  for (index_t i = 0; i < n; ++i) a[i] *= b[i];
  return *this;
}

Tensor Tensor::add(const Tensor& other) const {
  Tensor out = clone();
  out.add_(other);
  return out;
}

Tensor Tensor::sub(const Tensor& other) const {
  Tensor out = clone();
  out.add_(other, -1.0f);
  return out;
}

Tensor Tensor::mul(const Tensor& other) const {
  Tensor out = clone();
  out.mul_(other);
  return out;
}

real_t Tensor::sum() const {
  // Accumulate in double: test images have ~1e6 elements and float
  // accumulation would lose ~3 digits.
  double s = 0.0;
  const real_t* a = data();
  const index_t n = numel();
  for (index_t i = 0; i < n; ++i) s += a[i];
  return static_cast<real_t>(s);
}

real_t Tensor::mean() const {
  const index_t n = numel();
  return n > 0 ? sum() / static_cast<real_t>(n) : 0.0f;
}

real_t Tensor::min() const {
  const real_t* a = data();
  return *std::min_element(a, a + numel());
}

real_t Tensor::max() const {
  const real_t* a = data();
  return *std::max_element(a, a + numel());
}

real_t Tensor::abs_max() const {
  const real_t* a = data();
  const index_t n = numel();
  real_t m = 0.0f;
  for (index_t i = 0; i < n; ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

std::vector<real_t> Tensor::to_vector() const {
  return std::vector<real_t>(data(), data() + numel());
}

bool allclose(const Tensor& a, const Tensor& b, real_t rtol, real_t atol) {
  if (a.shape() != b.shape()) return false;
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  const index_t n = a.numel();
  for (index_t i = 0; i < n; ++i) {
    const real_t tol = atol + rtol * std::fabs(pb[i]);
    if (std::fabs(pa[i] - pb[i]) > tol) return false;
  }
  return true;
}

real_t max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  const index_t n = a.numel();
  real_t m = 0.0f;
  for (index_t i = 0; i < n; ++i) {
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  }
  return m;
}

}  // namespace ccovid
