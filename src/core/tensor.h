// Tensor: a dense, contiguous, row-major float32 array with shared
// ownership of its storage. This is the single data container used by
// the CT substrate, the NN kernels, and the autograd layer.
//
// Design notes (per the C++ Core Guidelines):
//  * storage is owned via shared_ptr with a custom aligned deleter —
//    no raw owning pointers anywhere;
//  * copies are shallow (shared storage); `clone()` deep-copies;
//  * kernels take raw `const real_t*`/`real_t*` obtained via data(),
//    keeping hot loops free of abstraction overhead.
#pragma once

#include <memory>
#include <vector>

#include "core/shape.h"
#include "core/types.h"

namespace ccovid {

class Tensor {
 public:
  /// Empty tensor: rank 0, no storage. numel() == 1 is *not* implied;
  /// use defined() to check.
  Tensor() = default;

  /// Allocates zero-initialized storage of the given shape.
  explicit Tensor(Shape shape);

  /// Convenience: Tensor({n, c, h, w}).
  Tensor(std::initializer_list<index_t> dims) : Tensor(Shape(dims)) {}

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, real_t value);
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  /// Builds a tensor from explicit values (row-major); size must match.
  static Tensor from_vector(Shape shape, const std::vector<real_t>& v);

  bool defined() const { return storage_ != nullptr; }
  const Shape& shape() const { return shape_; }
  int rank() const { return shape_.rank(); }
  index_t dim(int i) const { return shape_[i]; }
  index_t numel() const { return shape_.numel(); }

  real_t* data() { return storage_.get(); }
  const real_t* data() const { return storage_.get(); }

  /// Element access by multi-index (debug-checked). Hot loops should use
  /// data() + manual offsets instead.
  template <typename... Ix>
  real_t& at(Ix... ix) {
    return storage_.get()[shape_.offset(ix...)];
  }
  template <typename... Ix>
  real_t at(Ix... ix) const {
    return storage_.get()[shape_.offset(ix...)];
  }

  /// Deep copy with fresh storage.
  Tensor clone() const;

  /// Same storage, new shape; numel must be preserved.
  Tensor reshape(Shape new_shape) const;

  void fill(real_t value);
  void zero() { fill(0.0f); }

  /// Elementwise in-place helpers used by optimizers and losses.
  Tensor& add_(const Tensor& other, real_t alpha = 1.0f);
  Tensor& mul_(real_t scalar);
  Tensor& mul_(const Tensor& other);

  /// Elementwise out-of-place arithmetic (shapes must match).
  Tensor add(const Tensor& other) const;
  Tensor sub(const Tensor& other) const;
  Tensor mul(const Tensor& other) const;

  /// Reductions.
  real_t sum() const;
  real_t mean() const;
  real_t min() const;
  real_t max() const;
  /// Largest |x|; useful in tests and gradient clipping.
  real_t abs_max() const;

  /// Copies values out into a std::vector (tests & serialization).
  std::vector<real_t> to_vector() const;

 private:
  Shape shape_;
  std::shared_ptr<real_t[]> storage_;
};

/// True when every pair of elements differs by at most `atol + rtol*|b|`.
bool allclose(const Tensor& a, const Tensor& b, real_t rtol = 1e-5f,
              real_t atol = 1e-6f);

/// Maximum absolute elementwise difference (shapes must match).
real_t max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace ccovid
