// Wall-clock timing used by the benchmark harness. Mirrors the paper's
// "event-based" kernel timing (Table 5): each kernel invocation is
// bracketed and accumulated per kernel name.
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>

namespace ccovid {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates per-kernel execution time, keyed by kernel name
/// ("convolution", "deconvolution", "other"). Thread-safe: worker
/// threads of the serving runtime add() into one shared profile, so
/// every accessor takes the profile lock; totals() therefore returns a
/// snapshot by value rather than a reference into the live map.
class KernelProfile {
 public:
  void add(const std::string& kernel, double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    totals_[kernel] += seconds;
  }
  double total(const std::string& kernel) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = totals_.find(kernel);
    return it == totals_.end() ? 0.0 : it->second;
  }
  double grand_total() const {
    std::lock_guard<std::mutex> lock(mu_);
    double t = 0.0;
    for (const auto& [k, v] : totals_) t += v;
    return t;
  }
  std::map<std::string, double> totals() const {
    std::lock_guard<std::mutex> lock(mu_);
    return totals_;
  }
  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    totals_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> totals_;
};

/// RAII helper: adds elapsed time to `profile[kernel]` on destruction.
class ScopedKernelTimer {
 public:
  ScopedKernelTimer(KernelProfile& profile, std::string kernel)
      : profile_(profile), kernel_(std::move(kernel)) {}
  ~ScopedKernelTimer() { profile_.add(kernel_, timer_.seconds()); }
  ScopedKernelTimer(const ScopedKernelTimer&) = delete;
  ScopedKernelTimer& operator=(const ScopedKernelTimer&) = delete;

 private:
  KernelProfile& profile_;
  std::string kernel_;
  WallTimer timer_;
};

}  // namespace ccovid
