// Basic scalar types and compiler annotations shared across the library.
#pragma once

#include <cstdint>
#include <cstddef>

namespace ccovid {

/// Index type used for tensor extents and loop bounds. Signed so that
/// reverse loops and subtraction-heavy bound arithmetic stay simple.
using index_t = std::int64_t;

/// All network and CT math is single precision, matching the paper
/// (HU data is converted to float32 in [0,1] before entering DDnet).
using real_t = float;

#if defined(__GNUC__) || defined(__clang__)
#define CCOVID_RESTRICT __restrict__
#define CCOVID_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define CCOVID_RESTRICT
#define CCOVID_ALWAYS_INLINE inline
#endif

/// Alignment (bytes) for tensor storage; one x86 cache line, and wide
/// enough for any SIMD width GCC auto-vectorizes to.
inline constexpr std::size_t kTensorAlignment = 64;

}  // namespace ccovid
