#include "ct/fbp.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/arena.h"
#include "core/parallel.h"
#include "ct/fft.h"
#include "trace/trace.h"

namespace ccovid::ct {

namespace {

// Band-limited spatial-domain Ram-Lak kernel (Kak & Slaney eq. 61):
//   h(0) = 1/(4 du^2), h(n odd) = -1/(pi n du)^2, h(n even) = 0.
// Laid out circularly over a power-of-two length for FFT convolution.
std::vector<double> ramp_kernel_circular(index_t len, double du,
                                         RampFilter filter) {
  std::vector<double> h(static_cast<std::size_t>(len), 0.0);
  h[0] = 1.0 / (4.0 * du * du);
  for (index_t n = 1; n < len / 2; ++n) {
    double v = 0.0;
    if (n % 2 == 1) {
      const double d = M_PI * static_cast<double>(n) * du;
      v = -1.0 / (d * d);
    }
    if (filter == RampFilter::kSheppLogan) {
      // Shepp-Logan: h_SL(n) = -2 / (pi^2 du^2 (4 n^2 - 1)).
      const double nn = static_cast<double>(n);
      v = -2.0 / (M_PI * M_PI * du * du * (4.0 * nn * nn - 1.0));
    }
    h[static_cast<std::size_t>(n)] = v;
    h[static_cast<std::size_t>(len - n)] = v;  // symmetric wrap
  }
  if (filter == RampFilter::kSheppLogan) {
    h[0] = 2.0 / (M_PI * M_PI * du * du);
  }
  return h;
}

}  // namespace

Tensor filter_sinogram(const Tensor& sinogram, const FanBeamGeometry& g,
                       RampFilter filter) {
  TRACE_SPAN("ct.fbp.filter");
  if (sinogram.rank() != 2 || sinogram.dim(0) != g.num_views ||
      sinogram.dim(1) != g.num_dets) {
    throw std::invalid_argument("filter_sinogram: sinogram/geometry mismatch");
  }
  const index_t nd = g.num_dets;
  // Ramp filtering happens on the *virtual detector at the isocenter*
  // (Kak & Slaney ch. 3): physical detector coordinates u at distance
  // SDD map to s = u * SOD/SDD, so the filter spacing is ds, not du.
  // Using du here under-scales the reconstruction by SOD/SDD.
  const double ds = g.det_spacing() * g.sod_mm / g.sdd_mm;
  // Zero-pad to 2x next power of two to avoid circular wrap-around.
  const index_t padded = next_pow2(2 * nd);
  const auto kernel = ramp_kernel_circular(padded, ds, filter);
  // The kernel spectrum is view-independent: transform it once and let
  // every view reuse it (bitwise identical to transforming per view).
  std::vector<cplx> fkernel(static_cast<std::size_t>(padded));
  fft_real_forward(kernel.data(), padded, fkernel.data());

  Tensor out(sinogram.shape());
  const real_t* ip = sinogram.data();
  real_t* op = out.data();

  parallel_for(
      0, g.num_views,
      [&](index_t v) {
        // Per-view scratch lives in the executing thread's arena: after
        // the first view a thread filters, its chunks are warm and the
        // loop never touches the heap again.
        ArenaScope scope;
        double* row = scope.alloc_doubles(padded);
        double* filtered = scope.alloc_doubles(padded);
        auto* work = static_cast<cplx*>(
            scope.alloc(static_cast<std::size_t>(padded) * sizeof(cplx)));
        std::fill_n(row, padded, 0.0);
        // Cosine pre-weight: p' = p * SDD / sqrt(SDD^2 + u^2).
        for (index_t d = 0; d < nd; ++d) {
          const double u = g.det_coord(d);
          const double w = g.sdd_mm / std::hypot(g.sdd_mm, u);
          row[d] = static_cast<double>(ip[v * nd + d]) * w;
        }
        fft_convolve_with(row, fkernel.data(), padded, filtered, work);
        for (index_t d = 0; d < nd; ++d) {
          op[v * nd + d] = static_cast<real_t>(filtered[d] * ds);
        }
      },
      /*grain=*/1);
  return out;
}

Tensor backproject(const Tensor& filtered, const FanBeamGeometry& g) {
  TRACE_SPAN("ct.fbp.backproject");
  const index_t n = g.image_px;
  const index_t nd = g.num_dets;
  const double px = g.pixel_size();
  const double du = g.det_spacing();
  const double dbeta = 2.0 * M_PI / static_cast<double>(g.num_views);
  Tensor image({n, n});
  const real_t* sp = filtered.data();
  real_t* op = image.data();

  // Precompute per-view trigonometry.
  std::vector<double> cosb(static_cast<std::size_t>(g.num_views));
  std::vector<double> sinb(static_cast<std::size_t>(g.num_views));
  for (index_t v = 0; v < g.num_views; ++v) {
    cosb[v] = std::cos(g.view_angle(v));
    sinb[v] = std::sin(g.view_angle(v));
  }

  parallel_for(
      0, n,
      [&](index_t iy) {
        const double y = -g.fov_mm / 2.0 + (iy + 0.5) * px;
        for (index_t ix = 0; ix < n; ++ix) {
          const double x = -g.fov_mm / 2.0 + (ix + 0.5) * px;
          double acc = 0.0;
          for (index_t v = 0; v < g.num_views; ++v) {
            const double cb = cosb[v], sb = sinb[v];
            // Distance of the pixel along the central ray axis.
            const double L = g.sod_mm - (x * cb + y * sb);
            if (L <= 1e-6) continue;
            // Lateral offset and flat-detector coordinate.
            const double t = -x * sb + y * cb;
            const double u = g.sdd_mm * t / L;
            const double dpos = (u + g.det_width_mm / 2.0) / du - 0.5;
            const index_t d0 = static_cast<index_t>(std::floor(dpos));
            if (d0 < 0 || d0 + 1 >= nd) continue;
            const double frac = dpos - static_cast<double>(d0);
            const double p = (1.0 - frac) * sp[v * nd + d0] +
                             frac * sp[v * nd + d0 + 1];
            const double inv_w = g.sod_mm / L;  // U^-1 distance weight
            acc += p * inv_w * inv_w;
          }
          op[iy * n + ix] = static_cast<real_t>(acc * dbeta / 2.0);
        }
      },
      /*grain=*/1);
  return image;
}

Tensor fbp_reconstruct(const Tensor& sinogram, const FanBeamGeometry& g,
                       RampFilter filter) {
  return backproject(filter_sinogram(sinogram, g, filter), g);
}

}  // namespace ccovid::ct
