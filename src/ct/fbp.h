// Filtered back projection for the flat-panel fan-beam geometry —
// the reconstruction the paper applies to the simulated low-dose
// projections (§3.1.2, Fig. 8).
//
// Pipeline: cosine pre-weighting -> ramp filtering along the detector
// (band-limited Ram-Lak kernel applied by FFT, optional Shepp-Logan
// apodization) -> distance-weighted backprojection with linear detector
// interpolation.
#pragma once

#include "core/tensor.h"
#include "ct/geometry.h"

namespace ccovid::ct {

enum class RampFilter {
  kRamLak,      ///< pure band-limited ramp
  kSheppLogan,  ///< ramp * sinc apodization (less noise amplification)
};

/// Filters one sinogram row set: input/output (num_views, num_dets).
Tensor filter_sinogram(const Tensor& sinogram, const FanBeamGeometry& g,
                       RampFilter filter = RampFilter::kRamLak);

/// Backprojects a *filtered* sinogram onto the image grid; returns
/// attenuation values (1/mm) on (image_px, image_px).
Tensor backproject(const Tensor& filtered, const FanBeamGeometry& g);

/// Full FBP reconstruction: filter + backproject.
Tensor fbp_reconstruct(const Tensor& sinogram, const FanBeamGeometry& g,
                       RampFilter filter = RampFilter::kRamLak);

}  // namespace ccovid::ct
