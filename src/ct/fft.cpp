#include "ct/fft.h"

#include <cmath>
#include <stdexcept>

namespace ccovid::ct {

bool is_pow2(index_t n) { return n > 0 && (n & (n - 1)) == 0; }

index_t next_pow2(index_t n) {
  index_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<cplx>& data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_pow2(static_cast<index_t>(n))) {
    throw std::invalid_argument("fft: length must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterfly stages.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * M_PI / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const cplx u = data[i + j];
        const cplx v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

std::vector<double> fft_convolve_circular(const std::vector<double>& a,
                                          const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("fft_convolve_circular: size mismatch");
  }
  const std::size_t n = a.size();
  std::vector<cplx> fa(n), fb(n);
  for (std::size_t i = 0; i < n; ++i) {
    fa[i] = cplx(a[i], 0.0);
    fb[i] = cplx(b[i], 0.0);
  }
  fft(fa, false);
  fft(fb, false);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  fft(fa, true);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = fa[i].real();
  return out;
}

}  // namespace ccovid::ct
