#include "ct/fft.h"

#include <cmath>
#include <stdexcept>

#include "core/simd.h"
#include "trace/trace.h"

namespace ccovid::ct {

bool is_pow2(index_t n) { return n > 0 && (n & (n - 1)) == 0; }

index_t next_pow2(index_t n) {
  index_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(cplx* raw, index_t len, bool inverse) {
  const std::size_t n = static_cast<std::size_t>(len);
  if (!is_pow2(len)) {
    throw std::invalid_argument("fft: length must be a power of two");
  }
  cplx* CCOVID_RESTRICT data = raw;
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterfly stages.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * M_PI / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const cplx u = data[i + j];
        const cplx v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) data[i] *= inv_n;
  }
}

void fft(std::vector<cplx>& data, bool inverse) {
  fft(data.data(), static_cast<index_t>(data.size()), inverse);
}

void fft_real_forward(const double* a, index_t n, cplx* out) {
  for (index_t i = 0; i < n; ++i) out[i] = cplx(a[i], 0.0);
  fft(out, n, false);
}

void fft_convolve_with(const double* a, const cplx* fb, index_t n,
                       double* out, cplx* work) {
  TRACE_SPAN("ct.fft.convolve");
  fft_real_forward(a, n, work);
  // Ramp-filter pointwise multiply in the frequency domain. std::complex
  // stores {re, im} contiguously, so the buffer is reinterpretable as an
  // interleaved double array; every backend computes the textbook
  // (ar*br - ai*bi, ai*br + ar*bi) with the same rounding order.
  simd::kernels().cmul(reinterpret_cast<double*>(work),
                       reinterpret_cast<const double*>(fb), n);
  fft(work, n, true);
  for (index_t i = 0; i < n; ++i) out[i] = work[i].real();
}

std::vector<double> fft_convolve_circular(const std::vector<double>& a,
                                          const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("fft_convolve_circular: size mismatch");
  }
  const index_t n = static_cast<index_t>(a.size());
  std::vector<cplx> fb(a.size());
  fft_real_forward(b.data(), n, fb.data());
  std::vector<cplx> work(a.size());
  std::vector<double> out(a.size());
  fft_convolve_with(a.data(), fb.data(), n, out.data(), work.data());
  return out;
}

}  // namespace ccovid::ct
