// Minimal iterative radix-2 FFT used by the filtered-back-projection
// ramp filter. Implemented from scratch (no external FFT dependency).
#pragma once

#include <complex>
#include <vector>

#include "core/types.h"

namespace ccovid::ct {

using cplx = std::complex<double>;

/// True iff n is a power of two (and > 0).
bool is_pow2(index_t n);

/// Smallest power of two >= n.
index_t next_pow2(index_t n);

/// In-place iterative Cooley–Tukey FFT over caller storage. `n` must be
/// a power of two. `inverse` applies the conjugate transform and the
/// 1/N scale. Raw-buffer form so hot loops can run it on arena scratch.
void fft(cplx* data, index_t n, bool inverse);

/// In-place iterative Cooley–Tukey FFT. `data.size()` must be a power of
/// two. `inverse` applies the conjugate transform and the 1/N scale.
void fft(std::vector<cplx>& data, bool inverse);

/// Forward transform of a real sequence into caller storage (`out` gets
/// the n complex spectrum values).
void fft_real_forward(const double* a, index_t n, cplx* out);

/// out[i] = (IFFT(FFT(a) .* fb))[i].real() for a real sequence `a` and a
/// precomputed spectrum `fb` (from fft_real_forward). `work` is caller
/// scratch of n cplx values. All-raw form: zero allocations, so the FBP
/// ramp filter can run per-view entirely from arena memory.
void fft_convolve_with(const double* a, const cplx* fb, index_t n,
                       double* out, cplx* work);

/// Circular convolution of two real sequences of equal power-of-two
/// length via the FFT (used to apply the ramp-filter kernel).
std::vector<double> fft_convolve_circular(const std::vector<double>& a,
                                          const std::vector<double>& b);

}  // namespace ccovid::ct
