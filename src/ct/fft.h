// Minimal iterative radix-2 FFT used by the filtered-back-projection
// ramp filter. Implemented from scratch (no external FFT dependency).
#pragma once

#include <complex>
#include <vector>

#include "core/types.h"

namespace ccovid::ct {

using cplx = std::complex<double>;

/// True iff n is a power of two (and > 0).
bool is_pow2(index_t n);

/// Smallest power of two >= n.
index_t next_pow2(index_t n);

/// In-place iterative Cooley–Tukey FFT. `data.size()` must be a power of
/// two. `inverse` applies the conjugate transform and the 1/N scale.
void fft(std::vector<cplx>& data, bool inverse);

/// Circular convolution of two real sequences of equal power-of-two
/// length via the FFT (used to apply the ramp-filter kernel).
std::vector<double> fft_convolve_circular(const std::vector<double>& a,
                                          const std::vector<double>& b);

}  // namespace ccovid::ct
