// Fan-beam CT acquisition geometry, configured by default with the
// paper's simulation parameters (§3.1.2): source-to-detector distance
// 1500 mm, source-to-isocenter 1000 mm, 720 views over 360 degrees,
// 1024 detector pixels, monochromatic 60 keV source.
#pragma once

#include <cmath>

#include "core/types.h"

namespace ccovid::ct {

struct FanBeamGeometry {
  double sdd_mm = 1500.0;       ///< source-to-detector distance
  double sod_mm = 1000.0;       ///< source-to-isocenter distance
  index_t num_views = 720;      ///< evenly spaced over 360 degrees
  index_t num_dets = 1024;      ///< flat-panel detector cells
  double det_width_mm = 600.0;  ///< total active detector width
  index_t image_px = 512;       ///< reconstruction grid (square)
  double fov_mm = 360.0;        ///< reconstructed field of view

  double det_spacing() const {
    return det_width_mm / static_cast<double>(num_dets);
  }
  double pixel_size() const {
    return fov_mm / static_cast<double>(image_px);
  }
  /// View angle (radians) of view index v.
  double view_angle(index_t v) const {
    return 2.0 * M_PI * static_cast<double>(v) /
           static_cast<double>(num_views);
  }
  /// Centered physical detector coordinate (mm) of detector cell d.
  double det_coord(index_t d) const {
    return (static_cast<double>(d) + 0.5) * det_spacing() -
           det_width_mm / 2.0;
  }

  /// Scaled copy preserving angular coverage: reduces the grid, the
  /// detector count and the view count proportionally. Used for tests
  /// and the reduced-scale benchmark configurations.
  FanBeamGeometry scaled(index_t image_px_new) const {
    FanBeamGeometry g = *this;
    const double f = static_cast<double>(image_px_new) /
                     static_cast<double>(image_px);
    g.image_px = image_px_new;
    g.num_dets = static_cast<index_t>(
        std::max<double>(32.0, std::round(num_dets * f)));
    g.num_views = static_cast<index_t>(
        std::max<double>(64.0, std::round(num_views * f)));
    return g;
  }

  bool valid() const {
    return sdd_mm > sod_mm && sod_mm > fov_mm / 2.0 && num_views > 0 &&
           num_dets > 1 && image_px > 1 && fov_mm > 0;
  }
};

/// The paper's geometry at full 512x512 scale.
inline FanBeamGeometry paper_geometry() { return FanBeamGeometry{}; }

}  // namespace ccovid::ct
