#include "ct/hu.h"

#include <algorithm>
#include <stdexcept>

namespace ccovid::ct {

Tensor mu_to_hu(const Tensor& mu, double mu_water) {
  Tensor hu(mu.shape());
  const real_t* ip = mu.data();
  real_t* op = hu.data();
  const index_t n = mu.numel();
  for (index_t i = 0; i < n; ++i) {
    op[i] = static_cast<real_t>(1000.0 * (ip[i] - mu_water) / mu_water);
  }
  return hu;
}

Tensor hu_to_mu(const Tensor& hu, double mu_water) {
  Tensor mu(hu.shape());
  const real_t* ip = hu.data();
  real_t* op = mu.data();
  const index_t n = hu.numel();
  for (index_t i = 0; i < n; ++i) {
    op[i] = static_cast<real_t>(
        std::max(0.0, mu_water * (1.0 + static_cast<double>(ip[i]) / 1000.0)));
  }
  return mu;
}

Tensor normalize_hu(const Tensor& hu, double lo_hu, double hi_hu) {
  if (hi_hu <= lo_hu) throw std::invalid_argument("normalize_hu: bad window");
  Tensor unit(hu.shape());
  const real_t* ip = hu.data();
  real_t* op = unit.data();
  const index_t n = hu.numel();
  const double inv = 1.0 / (hi_hu - lo_hu);
  for (index_t i = 0; i < n; ++i) {
    op[i] = static_cast<real_t>(
        std::clamp((static_cast<double>(ip[i]) - lo_hu) * inv, 0.0, 1.0));
  }
  return unit;
}

Tensor denormalize_hu(const Tensor& unit, double lo_hu, double hi_hu) {
  if (hi_hu <= lo_hu) {
    throw std::invalid_argument("denormalize_hu: bad window");
  }
  Tensor hu(unit.shape());
  const real_t* ip = unit.data();
  real_t* op = hu.data();
  const index_t n = unit.numel();
  for (index_t i = 0; i < n; ++i) {
    op[i] = static_cast<real_t>(lo_hu +
                                static_cast<double>(ip[i]) * (hi_hu - lo_hu));
  }
  return hu;
}

}  // namespace ccovid::ct
