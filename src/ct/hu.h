// Hounsfield-unit conversions. The CT substrate works in linear
// attenuation (1/mm) at the paper's monochromatic 60 keV; networks work
// either in HU (Classification AI, §3.3.1) or normalized [0, 1]
// (Enhancement AI, §3.1.1).
#pragma once

#include "core/tensor.h"

namespace ccovid::ct {

/// Linear attenuation of water at 60 keV, 1/mm.
inline constexpr double kMuWater60KeV = 0.0206;

/// HU = 1000 * (mu - mu_water) / mu_water.
Tensor mu_to_hu(const Tensor& mu, double mu_water = kMuWater60KeV);

/// mu = mu_water * (1 + HU / 1000), clamped at zero attenuation.
Tensor hu_to_mu(const Tensor& hu, double mu_water = kMuWater60KeV);

/// Affine window [lo_hu, hi_hu] -> [0, 1], clamped — the float
/// normalization applied before Enhancement AI "to avoid integer
/// overflow" (§3.1.1). Defaults cover the full 12-bit CT range.
Tensor normalize_hu(const Tensor& hu, double lo_hu = -1024.0,
                    double hi_hu = 1023.0);

/// Inverse of normalize_hu (values outside [0,1] extrapolate).
Tensor denormalize_hu(const Tensor& unit, double lo_hu = -1024.0,
                      double hi_hu = 1023.0);

}  // namespace ccovid::ct
