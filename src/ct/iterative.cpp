#include "ct/iterative.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ct/siddon.h"

namespace ccovid::ct {

namespace {

// Siddon traversal reporting (pixel, segment length) pairs. Mirrors the
// stepping logic of siddon_line_integral; kept separate so the hot
// forward-projection path stays callback-free.
template <typename Visit>
void siddon_walk(const FanBeamGeometry& g, double sx, double sy, double ex,
                 double ey, Visit&& visit) {
  const index_t n = g.image_px;
  const double px = g.pixel_size();
  const double x0 = -g.fov_mm / 2.0;
  const double y0 = -g.fov_mm / 2.0;

  const double dx = ex - sx;
  const double dy = ey - sy;
  const double len = std::hypot(dx, dy);
  if (len <= 0.0) return;

  double a_min = 0.0, a_max = 1.0;
  const auto clip = [&](double p0, double d, double lo, double hi) {
    if (d == 0.0) return p0 >= lo && p0 <= hi;
    double a1 = (lo - p0) / d;
    double a2 = (hi - p0) / d;
    if (a1 > a2) std::swap(a1, a2);
    a_min = std::max(a_min, a1);
    a_max = std::min(a_max, a2);
    return true;
  };
  if (!clip(sx, dx, x0, x0 + g.fov_mm)) return;
  if (!clip(sy, dy, y0, y0 + g.fov_mm)) return;
  if (a_min >= a_max) return;

  const double eps = 1e-12;
  double a = a_min;
  double ax = std::numeric_limits<double>::infinity();
  double ay = std::numeric_limits<double>::infinity();
  double dax = std::numeric_limits<double>::infinity();
  double day = std::numeric_limits<double>::infinity();
  if (dx != 0.0) {
    dax = px / std::fabs(dx);
    const double k = (sx + a * dx - x0) / px;
    const double next_plane =
        dx > 0 ? std::floor(k + 1.0 - eps) : std::ceil(k - 1.0 + eps);
    ax = ((x0 + next_plane * px) - sx) / dx;
    if (ax < a + eps) ax += dax;
  }
  if (dy != 0.0) {
    day = px / std::fabs(dy);
    const double k = (sy + a * dy - y0) / px;
    const double next_plane =
        dy > 0 ? std::floor(k + 1.0 - eps) : std::ceil(k - 1.0 + eps);
    ay = ((y0 + next_plane * px) - sy) / dy;
    if (ay < a + eps) ay += day;
  }

  while (a < a_max - eps) {
    const double a_next = std::min({ax, ay, a_max});
    const double seg = (a_next - a) * len;
    if (seg > 0.0) {
      const double mid = 0.5 * (a + a_next);
      const index_t ix =
          static_cast<index_t>(std::floor((sx + mid * dx - x0) / px));
      const index_t iy =
          static_cast<index_t>(std::floor((sy + mid * dy - y0) / px));
      if (ix >= 0 && ix < n && iy >= 0 && iy < n) visit(ix, iy, seg);
    }
    if (a_next == ax) ax += dax;
    if (a_next == ay) ay += day;
    a = a_next;
  }
}

template <typename PerRay>
void for_each_ray(const FanBeamGeometry& g, PerRay&& per_ray) {
  for (index_t v = 0; v < g.num_views; ++v) {
    const double beta = g.view_angle(v);
    const double cb = std::cos(beta), sb = std::sin(beta);
    const double sx = g.sod_mm * cb;
    const double sy = g.sod_mm * sb;
    const double ccx = (g.sod_mm - g.sdd_mm) * cb;
    const double ccy = (g.sod_mm - g.sdd_mm) * sb;
    for (index_t d = 0; d < g.num_dets; ++d) {
      const double u = g.det_coord(d);
      per_ray(v, d, sx, sy, ccx - u * sb, ccy + u * cb);
    }
  }
}

}  // namespace

Tensor back_project_adjoint(const Tensor& sinogram,
                            const FanBeamGeometry& g) {
  if (sinogram.rank() != 2 || sinogram.dim(0) != g.num_views ||
      sinogram.dim(1) != g.num_dets) {
    throw std::invalid_argument("back_project_adjoint: shape mismatch");
  }
  Tensor image({g.image_px, g.image_px});
  real_t* img = image.data();
  const real_t* sp = sinogram.data();
  const index_t n = g.image_px;
  for_each_ray(g, [&](index_t v, index_t d, double sx, double sy,
                      double ex, double ey) {
    const double value = sp[v * g.num_dets + d];
    if (value == 0.0) return;
    siddon_walk(g, sx, sy, ex, ey,
                [&](index_t ix, index_t iy, double seg) {
                  img[iy * n + ix] += static_cast<real_t>(value * seg);
                });
  });
  return image;
}

SirtResult sirt_reconstruct(const Tensor& sinogram,
                            const FanBeamGeometry& g, SirtConfig cfg,
                            const Tensor& initial) {
  if (cfg.iterations < 1) {
    throw std::invalid_argument("sirt_reconstruct: iterations < 1");
  }
  // Row sums R = A 1 (per-ray total intersection length) and column
  // sums C = A^T 1 (per-pixel total ray coverage).
  const Tensor ones_img = Tensor::ones({g.image_px, g.image_px});
  const Tensor row_sums = forward_project(ones_img, g);
  const Tensor ones_sino = Tensor::ones({g.num_views, g.num_dets});
  const Tensor col_sums = back_project_adjoint(ones_sino, g);

  Tensor x = initial.defined() ? initial.clone()
                               : Tensor({g.image_px, g.image_px});
  if (x.shape() != ones_img.shape()) {
    throw std::invalid_argument("sirt_reconstruct: bad initial image");
  }

  SirtResult result;
  const index_t n_rays = sinogram.numel();
  const index_t n_pix = x.numel();
  for (int it = 0; it < cfg.iterations; ++it) {
    // Residual r = y - A x, scaled by R^-1.
    const Tensor ax = forward_project(x, g);
    Tensor resid(sinogram.shape());
    double norm = 0.0;
    for (index_t i = 0; i < n_rays; ++i) {
      const double r = double(sinogram.data()[i]) - ax.data()[i];
      norm += r * r;
      const double rs = row_sums.data()[i];
      resid.data()[i] = rs > 1e-9 ? static_cast<real_t>(r / rs) : 0.0f;
    }
    result.residuals.push_back(std::sqrt(norm));
    // x += lambda * C^-1 A^T resid.
    const Tensor update = back_project_adjoint(resid, g);
    for (index_t i = 0; i < n_pix; ++i) {
      const double cs = col_sums.data()[i];
      if (cs > 1e-9) {
        x.data()[i] += static_cast<real_t>(cfg.relaxation *
                                           update.data()[i] / cs);
      }
      if (cfg.nonnegativity && x.data()[i] < 0.0f) x.data()[i] = 0.0f;
    }
  }
  result.image = std::move(x);
  return result;
}

}  // namespace ccovid::ct
