// Iterative reconstruction baseline (§6.3 cites iterative methods as
// the classic alternative to FBP for low-dose CT). Implements SIRT
// (simultaneous iterative reconstruction technique) with the exact
// adjoint of the Siddon forward projector:
//
//   x_{k+1} = x_k + lambda * C^-1 A^T R^-1 (y - A x_k)
//
// where R and C are the row/column sums of the system matrix (computed
// with one projection/backprojection of ones). Used by the
// ablation_reconstruction bench to compare FBP vs SIRT vs FBP+DDnet.
#pragma once

#include "core/tensor.h"
#include "ct/geometry.h"

namespace ccovid::ct {

/// Exact adjoint of forward_project: scatters each sinogram value back
/// along its ray, weighted by the per-pixel intersection lengths.
/// Satisfies <A x, y> == <x, A^T y> to float precision.
Tensor back_project_adjoint(const Tensor& sinogram,
                            const FanBeamGeometry& g);

struct SirtConfig {
  int iterations = 20;
  double relaxation = 1.0;  ///< lambda
  bool nonnegativity = true;  ///< clamp attenuation at zero each step
};

struct SirtResult {
  Tensor image;                   ///< reconstructed attenuation (N, N)
  std::vector<double> residuals;  ///< ||y - A x_k||_2 per iteration
};

/// SIRT reconstruction from a (num_views, num_dets) sinogram of line
/// integrals. `initial` may be undefined (starts from zero) or a warm
/// start (e.g. the FBP image).
SirtResult sirt_reconstruct(const Tensor& sinogram,
                            const FanBeamGeometry& g, SirtConfig cfg,
                            const Tensor& initial = Tensor());

}  // namespace ccovid::ct
