#include "ct/noise.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ccovid::ct {

Tensor apply_poisson_noise(const Tensor& sinogram, const NoiseModel& model,
                           Rng& rng) {
  if (model.blank_scan_photons <= 0.0) {
    throw std::invalid_argument("apply_poisson_noise: b must be positive");
  }
  Tensor noisy(sinogram.shape());
  const real_t* ip = sinogram.data();
  real_t* op = noisy.data();
  const index_t n = sinogram.numel();
  const double b = model.blank_scan_photons;
  for (index_t i = 0; i < n; ++i) {
    const double lambda = b * std::exp(-static_cast<double>(ip[i]));
    const double counts =
        std::max<double>(1.0, static_cast<double>(rng.poisson(lambda)));
    op[i] = static_cast<real_t>(-std::log(counts / b));
  }
  return noisy;
}

Tensor expected_counts(const Tensor& sinogram, const NoiseModel& model) {
  Tensor counts(sinogram.shape());
  const real_t* ip = sinogram.data();
  real_t* op = counts.data();
  const index_t n = sinogram.numel();
  for (index_t i = 0; i < n; ++i) {
    op[i] = static_cast<real_t>(model.blank_scan_photons *
                                std::exp(-static_cast<double>(ip[i])));
  }
  return counts;
}

}  // namespace ccovid::ct
