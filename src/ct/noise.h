// Projection-domain photon noise per §3.1.2: Beer's law transmission
// with Poisson statistics, P_i ~ Poisson(b_i * exp(-l_i)), no electronic
// readout noise. The paper sets b_i = 1e6 photons uniformly per ray.
#pragma once

#include "core/random.h"
#include "core/tensor.h"

namespace ccovid::ct {

struct NoiseModel {
  double blank_scan_photons = 1e6;  ///< b_i, photons per ray
};

/// Applies Beer's-law Poisson noise to a sinogram of line integrals,
/// returning the noisy line integrals -ln(P_i / b_i). Zero counts are
/// clamped to one photon (photon starvation floor).
Tensor apply_poisson_noise(const Tensor& sinogram, const NoiseModel& model,
                           Rng& rng);

/// Expected detector counts b * exp(-l) without sampling (tests and
/// dose sweeps).
Tensor expected_counts(const Tensor& sinogram, const NoiseModel& model);

}  // namespace ccovid::ct
