#include "ct/siddon.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.h"
#include "trace/trace.h"

namespace ccovid::ct {

double siddon_line_integral(const Tensor& mu, const FanBeamGeometry& g,
                            double sx, double sy, double ex, double ey) {
  const index_t n = g.image_px;
  const double px = g.pixel_size();
  const double x0 = -g.fov_mm / 2.0;  // grid origin (lower-left corner)
  const double y0 = -g.fov_mm / 2.0;

  const double dx = ex - sx;
  const double dy = ey - sy;
  const double len = std::hypot(dx, dy);
  if (len <= 0.0) return 0.0;

  // Parametric entry/exit of the ray into the grid bounding box.
  double a_min = 0.0, a_max = 1.0;
  const auto clip = [&](double p0, double d, double lo, double hi) {
    if (d == 0.0) return p0 >= lo && p0 <= hi;
    double a1 = (lo - p0) / d;
    double a2 = (hi - p0) / d;
    if (a1 > a2) std::swap(a1, a2);
    a_min = std::max(a_min, a1);
    a_max = std::min(a_max, a2);
    return true;
  };
  if (!clip(sx, dx, x0, x0 + g.fov_mm)) return 0.0;
  if (!clip(sy, dy, y0, y0 + g.fov_mm)) return 0.0;
  if (a_min >= a_max) return 0.0;

  // Incremental Siddon traversal: march from plane crossing to plane
  // crossing, accumulating (segment length) * mu of the pixel behind it.
  const double eps = 1e-12;
  double a = a_min;
  // Current pixel: evaluated at the midpoint just after entry.
  const auto pixel_of = [&](double alpha_mid, index_t& ix, index_t& iy) {
    const double x = sx + alpha_mid * dx;
    const double y = sy + alpha_mid * dy;
    ix = static_cast<index_t>(std::floor((x - x0) / px));
    iy = static_cast<index_t>(std::floor((y - y0) / px));
    return ix >= 0 && ix < n && iy >= 0 && iy < n;
  };

  // Next crossing parameters along x and y.
  double ax = std::numeric_limits<double>::infinity();
  double ay = std::numeric_limits<double>::infinity();
  double dax = std::numeric_limits<double>::infinity();
  double day = std::numeric_limits<double>::infinity();
  if (dx != 0.0) {
    dax = px / std::fabs(dx);
    const double x_at = sx + a * dx;
    const double k = (x_at - x0) / px;
    const double next_plane =
        dx > 0 ? std::floor(k + 1.0 - eps) : std::ceil(k - 1.0 + eps);
    ax = ((x0 + next_plane * px) - sx) / dx;
    if (ax < a + eps) ax += dax;
  }
  if (dy != 0.0) {
    day = px / std::fabs(dy);
    const double y_at = sy + a * dy;
    const double k = (y_at - y0) / px;
    const double next_plane =
        dy > 0 ? std::floor(k + 1.0 - eps) : std::ceil(k - 1.0 + eps);
    ay = ((y0 + next_plane * px) - sy) / dy;
    if (ay < a + eps) ay += day;
  }

  const real_t* m = mu.data();
  double integral = 0.0;
  while (a < a_max - eps) {
    const double a_next = std::min({ax, ay, a_max});
    const double seg = (a_next - a) * len;
    if (seg > 0.0) {
      index_t ix, iy;
      if (pixel_of(0.5 * (a + a_next), ix, iy)) {
        integral += seg * static_cast<double>(m[iy * n + ix]);
      }
    }
    if (a_next == ax) ax += dax;
    if (a_next == ay) ay += day;
    a = a_next;
  }
  return integral;
}

Tensor forward_project(const Tensor& mu, const FanBeamGeometry& g) {
  TRACE_SPAN("ct.siddon.forward");
  if (!g.valid()) throw std::invalid_argument("forward_project: bad geometry");
  if (mu.rank() != 2 || mu.dim(0) != g.image_px || mu.dim(1) != g.image_px) {
    throw std::invalid_argument("forward_project: image must be (N, N) = " +
                                std::to_string(g.image_px));
  }
  Tensor sino({g.num_views, g.num_dets});
  real_t* sp = sino.data();

  parallel_for(
      0, g.num_views,
      [&](index_t v) {
        const double beta = g.view_angle(v);
        const double cb = std::cos(beta), sb = std::sin(beta);
        const double sx = g.sod_mm * cb;
        const double sy = g.sod_mm * sb;
        // Detector center sits SDD beyond the source along -(cb, sb).
        const double ccx = (g.sod_mm - g.sdd_mm) * cb;
        const double ccy = (g.sod_mm - g.sdd_mm) * sb;
        for (index_t d = 0; d < g.num_dets; ++d) {
          const double u = g.det_coord(d);
          const double ex = ccx - u * sb;
          const double ey = ccy + u * cb;
          sp[v * g.num_dets + d] = static_cast<real_t>(
              siddon_line_integral(mu, g, sx, sy, ex, ey));
        }
      },
      /*grain=*/1);
  return sino;
}

}  // namespace ccovid::ct
