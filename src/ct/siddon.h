// Siddon's ray-driven forward projector (Siddon 1985), the projection
// method the paper uses to synthesize low-dose data (§3.1.2). Computes
// exact radiological path lengths of each source-to-detector-cell ray
// through the square attenuation grid.
#pragma once

#include "core/tensor.h"
#include "ct/geometry.h"

namespace ccovid::ct {

/// Line integral of `mu` (attenuation, 1/mm, image grid (N, N) over the
/// geometry's FOV) along the segment from `sx,sy` to `ex,ey` (mm).
double siddon_line_integral(const Tensor& mu, const FanBeamGeometry& g,
                            double sx, double sy, double ex, double ey);

/// Full fan-beam sinogram: output (num_views, num_dets) of line
/// integrals (dimensionless attenuation path products).
Tensor forward_project(const Tensor& mu, const FanBeamGeometry& g);

}  // namespace ccovid::ct
