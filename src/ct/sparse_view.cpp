#include "ct/sparse_view.h"

#include <stdexcept>

namespace ccovid::ct {

Tensor decimate_views(const Tensor& sinogram, const FanBeamGeometry& g,
                      index_t factor, FanBeamGeometry* sparse_geometry) {
  if (sinogram.rank() != 2 || sinogram.dim(0) != g.num_views ||
      sinogram.dim(1) != g.num_dets) {
    throw std::invalid_argument("decimate_views: sinogram mismatch");
  }
  if (factor < 1 || g.num_views % factor != 0) {
    throw std::invalid_argument(
        "decimate_views: factor must divide num_views");
  }
  const index_t kept = g.num_views / factor;
  Tensor sparse({kept, g.num_dets});
  for (index_t v = 0; v < kept; ++v) {
    std::copy(sinogram.data() + (v * factor) * g.num_dets,
              sinogram.data() + (v * factor + 1) * g.num_dets,
              sparse.data() + v * g.num_dets);
  }
  if (sparse_geometry != nullptr) {
    *sparse_geometry = g;
    sparse_geometry->num_views = kept;
  }
  return sparse;
}

Tensor inpaint_views(const Tensor& sparse_sinogram,
                     const FanBeamGeometry& full_geometry, index_t factor) {
  const index_t kept = sparse_sinogram.dim(0);
  const index_t nd = sparse_sinogram.dim(1);
  if (kept * factor != full_geometry.num_views ||
      nd != full_geometry.num_dets) {
    throw std::invalid_argument("inpaint_views: geometry mismatch");
  }
  Tensor full({full_geometry.num_views, nd});
  const real_t* sp = sparse_sinogram.data();
  real_t* fp = full.data();
  for (index_t v = 0; v < kept; ++v) {
    const index_t next = (v + 1) % kept;  // circular in angle
    // The kept view itself.
    std::copy(sp + v * nd, sp + (v + 1) * nd, fp + (v * factor) * nd);
    // Linear interpolation for the skipped views between v and v+1.
    for (index_t s = 1; s < factor; ++s) {
      const real_t t =
          static_cast<real_t>(s) / static_cast<real_t>(factor);
      real_t* row = fp + (v * factor + s) * nd;
      const real_t* a = sp + v * nd;
      const real_t* b = sp + next * nd;
      for (index_t d = 0; d < nd; ++d) {
        row[d] = (1.0f - t) * a[d] + t * b[d];
      }
    }
  }
  return full;
}

}  // namespace ccovid::ct
