// Sparse-view CT utilities. DDnet was originally designed for
// sparse-view reconstruction (Zhang et al. 2018, the paper's ref [45]),
// and §6.3 cites sinogram completion as the classical remedy; these
// helpers let the ablation benches reproduce that setting: decimate the
// view set, reconstruct (with streak artifacts), optionally inpaint the
// missing views by angular interpolation, or repair in the image domain
// with DDnet.
#pragma once

#include "core/tensor.h"
#include "ct/geometry.h"

namespace ccovid::ct {

/// Keeps every `factor`-th view of a (num_views, num_dets) sinogram.
/// Returns the decimated sinogram; `sparse_geometry` receives the
/// matching geometry (num_views / factor, same detector).
Tensor decimate_views(const Tensor& sinogram, const FanBeamGeometry& g,
                      index_t factor, FanBeamGeometry* sparse_geometry);

/// Sinogram completion: expands a decimated sinogram back to the full
/// view count by linear interpolation between adjacent kept views
/// (angular direction, circular wrap). The classical §6.3 baseline.
Tensor inpaint_views(const Tensor& sparse_sinogram,
                     const FanBeamGeometry& full_geometry, index_t factor);

}  // namespace ccovid::ct
