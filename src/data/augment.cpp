#include "data/augment.h"

#include <algorithm>
#include <cmath>

namespace ccovid::data {

Tensor augment_volume(const Tensor& volume, const AugmentConfig& cfg,
                      Rng& rng) {
  Tensor out = volume.clone();
  real_t* p = out.data();
  const index_t n = out.numel();

  if (rng.bernoulli(cfg.noise_prob)) {
    const double stddev = std::sqrt(cfg.noise_variance);
    for (index_t i = 0; i < n; ++i) {
      p[i] += static_cast<real_t>(rng.gaussian(0.0, stddev));
    }
  }
  if (rng.bernoulli(cfg.contrast_prob)) {
    // Gamma-style contrast about the volume mean.
    const double gamma =
        rng.uniform(1.0 - cfg.contrast_range, 1.0 + cfg.contrast_range);
    const real_t mean = out.mean();
    for (index_t i = 0; i < n; ++i) {
      p[i] = mean + static_cast<real_t>(
                        std::copysign(std::pow(std::fabs(double(p[i] - mean)),
                                               gamma),
                                      double(p[i] - mean)));
    }
  }
  {
    // Intensity scale oscillation, magnitude 0.1 (always applied).
    const double scale = rng.uniform(1.0 - cfg.intensity_magnitude,
                                     1.0 + cfg.intensity_magnitude);
    for (index_t i = 0; i < n; ++i) {
      p[i] = static_cast<real_t>(p[i] * scale);
    }
  }
  return out;
}

}  // namespace ccovid::data
