// Training-time augmentations for Classification AI (§3.3.1): Gaussian
// noise added with probability 0.75 (variance 0.1), contrast adjusted
// with probability 0.5, and intensity scaled with magnitude 0.1. Applied
// to normalized [0,1]-ish volume data.
#pragma once

#include "core/random.h"
#include "core/tensor.h"

namespace ccovid::data {

struct AugmentConfig {
  double noise_prob = 0.75;
  double noise_variance = 0.1;
  double contrast_prob = 0.5;
  double contrast_range = 0.25;   ///< gamma in [1 - r, 1 + r]
  double intensity_magnitude = 0.1;
};

/// Returns an augmented copy; the input is untouched.
Tensor augment_volume(const Tensor& volume, const AugmentConfig& cfg,
                      Rng& rng);

}  // namespace ccovid::data
