#include "data/dataset.h"

#include <stdexcept>

namespace ccovid::data {

EnhancementDataset make_enhancement_dataset(EnhancementDatasetConfig cfg,
                                            Rng& rng) {
  cfg.lowdose.geometry = cfg.lowdose.geometry.scaled(cfg.image_px);
  EnhancementDataset ds;
  const index_t total = cfg.num_train + cfg.num_val + cfg.num_test;
  for (index_t i = 0; i < total; ++i) {
    const Anatomy anatomy = Anatomy::sample(rng);
    const bool covid = rng.bernoulli(cfg.covid_fraction);
    const std::vector<Lesion> lesions =
        covid ? sample_covid_lesions(rng) : std::vector<Lesion>{};
    const double z = rng.uniform(0.25, 0.75);  // mid-thorax slices
    const PhantomSlice slice =
        render_slice(cfg.image_px, anatomy, lesions, z);
    LowDosePair pair = make_lowdose_pair(slice.hu, cfg.lowdose, rng);
    if (i < cfg.num_train) {
      ds.train.push_back(std::move(pair));
    } else if (i < cfg.num_train + cfg.num_val) {
      ds.val.push_back(std::move(pair));
    } else {
      ds.test.push_back(std::move(pair));
    }
  }
  return ds;
}

ClassificationDataset make_classification_dataset(
    ClassificationDatasetConfig cfg, Rng& rng) {
  ClassificationDataset ds;
  const index_t total = cfg.num_train + cfg.num_test;
  for (index_t i = 0; i < total; ++i) {
    const bool covid = rng.bernoulli(cfg.positive_fraction);
    PhantomVolume vol = make_volume(cfg.depth, cfg.image_px, covid, rng,
                                    cfg.min_lesion_radius_frac);
    VolumeSample s{std::move(vol.hu), std::move(vol.lung_mask), vol.label};
    if (i < cfg.num_train) {
      ds.train.push_back(std::move(s));
    } else {
      ds.test.push_back(std::move(s));
    }
  }
  return ds;
}

bool passes_slice_count_filter(const Tensor& volume_hu, index_t min_slices) {
  if (volume_hu.rank() != 3) {
    throw std::invalid_argument("slice_count_filter: expected (D, H, W)");
  }
  return volume_hu.dim(0) >= min_slices;
}

Tensor remove_circular_fov_volume(const Tensor& volume_hu) {
  if (volume_hu.rank() != 3) {
    throw std::invalid_argument("remove_circular_fov: expected (D, H, W)");
  }
  const index_t d = volume_hu.dim(0), n = volume_hu.dim(1);
  Tensor out(volume_hu.shape());
  for (index_t z = 0; z < d; ++z) {
    Tensor slice({n, n});
    std::copy(volume_hu.data() + z * n * n,
              volume_hu.data() + (z + 1) * n * n, slice.data());
    const Tensor cleaned = remove_circular_fov_artifact(slice);
    std::copy(cleaned.data(), cleaned.data() + n * n, out.data() + z * n * n);
  }
  return out;
}

}  // namespace ccovid::data
