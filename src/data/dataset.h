// Dataset assembly: the data-preparation rules of §2.1 plus factories
// that build the synthetic equivalents of the paper's training corpora
// (enhancement pairs and labeled classification volumes) with
// deterministic train/validation/test splits.
#pragma once

#include <vector>

#include "data/lowdose.h"
#include "data/phantom.h"

namespace ccovid::data {

struct EnhancementDataset {
  std::vector<LowDosePair> train;
  std::vector<LowDosePair> val;
  std::vector<LowDosePair> test;
};

struct EnhancementDatasetConfig {
  index_t image_px = 64;       ///< slice size (paper: 512)
  index_t num_train = 24;
  index_t num_val = 4;
  index_t num_test = 4;
  double covid_fraction = 0.5; ///< fraction of slices from positive anatomy
  LowDoseConfig lowdose;       ///< geometry auto-scaled to image_px
};

/// Renders random phantom slices and runs each through the low-dose
/// physics chain.
EnhancementDataset make_enhancement_dataset(EnhancementDatasetConfig cfg,
                                            Rng& rng);

struct VolumeSample {
  Tensor hu;         ///< (d, n, n) Hounsfield units
  Tensor lung_mask;  ///< ground-truth lung foreground
  int label;         ///< 1 = COVID-positive
};

struct ClassificationDataset {
  std::vector<VolumeSample> train;
  std::vector<VolumeSample> test;
};

struct ClassificationDatasetConfig {
  index_t depth = 16;
  index_t image_px = 32;
  index_t num_train = 24;
  index_t num_test = 16;
  double positive_fraction = 0.4;  ///< test mirrors §5.2.2's 36/95 ratio
  /// Minimum lesion radius as a fraction of the FOV; reduced-resolution
  /// experiments pass ~4.0/image_px so GGOs stay resolvable (see
  /// sample_covid_lesions).
  double min_lesion_radius_frac = 0.0;
};

ClassificationDataset make_classification_dataset(
    ClassificationDatasetConfig cfg, Rng& rng);

/// §2.1 data-prep predicate: volumes must have at least `min_slices` 2-D
/// slices "to maintain isotropy ... for better segmentation and
/// classification with 3D networks".
bool passes_slice_count_filter(const Tensor& volume_hu,
                               index_t min_slices = 128);

/// Applies remove_circular_fov_artifact to every slice of a volume.
Tensor remove_circular_fov_volume(const Tensor& volume_hu);

}  // namespace ccovid::data
