#include "data/lowdose.h"

#include <stdexcept>

#include "ct/hu.h"
#include "ct/siddon.h"

namespace ccovid::data {

LowDosePair make_lowdose_pair(const Tensor& hu_slice,
                              const LowDoseConfig& cfg, Rng& rng) {
  if (hu_slice.rank() != 2 || hu_slice.dim(0) != cfg.geometry.image_px ||
      hu_slice.dim(1) != cfg.geometry.image_px) {
    throw std::invalid_argument("make_lowdose_pair: slice/geometry mismatch");
  }
  const Tensor mu = ct::hu_to_mu(hu_slice);
  const Tensor sino = ct::forward_project(mu, cfg.geometry);
  const ct::NoiseModel noise{cfg.photons_per_ray};
  const Tensor noisy = ct::apply_poisson_noise(sino, noise, rng);
  const Tensor recon_mu = ct::fbp_reconstruct(noisy, cfg.geometry);
  const Tensor recon_hu = ct::mu_to_hu(recon_mu);

  LowDosePair pair;
  pair.low = ct::normalize_hu(recon_hu, cfg.hu_window_lo, cfg.hu_window_hi);
  pair.full = ct::normalize_hu(hu_slice, cfg.hu_window_lo, cfg.hu_window_hi);
  return pair;
}

Tensor noiseless_fbp(const Tensor& hu_slice, const LowDoseConfig& cfg) {
  const Tensor mu = ct::hu_to_mu(hu_slice);
  const Tensor sino = ct::forward_project(mu, cfg.geometry);
  const Tensor recon_mu = ct::fbp_reconstruct(sino, cfg.geometry);
  return ct::mu_to_hu(recon_mu);
}

}  // namespace ccovid::data
