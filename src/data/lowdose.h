// Low-dose CT pair synthesis — the paper's §3.1.2 procedure end to end:
// ground-truth HU slice -> attenuation -> Siddon fan-beam projections ->
// Beer's-law Poisson noise (b photons/ray) -> FBP reconstruction ->
// HU -> [0,1] normalization. The pair (X = low-dose reconstruction,
// Y = normalized ground truth) is the training unit of Enhancement AI.
#pragma once

#include "core/random.h"
#include "ct/fbp.h"
#include "ct/geometry.h"
#include "ct/noise.h"

namespace ccovid::data {

struct LowDosePair {
  Tensor low;   ///< X: noisy low-dose FBP reconstruction, [0, 1]
  Tensor full;  ///< Y: ground-truth image, [0, 1]
};

struct LowDoseConfig {
  ct::FanBeamGeometry geometry;       ///< defaults = paper geometry
  double photons_per_ray = 1e6;      ///< b_i of §3.1.2
  double hu_window_lo = -1024.0;
  double hu_window_hi = 1023.0;
};

/// Full physics chain for one HU slice (must be geometry.image_px
/// square).
LowDosePair make_lowdose_pair(const Tensor& hu_slice,
                              const LowDoseConfig& cfg, Rng& rng);

/// Noise-free FBP of the same slice — isolates reconstruction error from
/// photon noise (used by tests and the dose-sweep ablation).
Tensor noiseless_fbp(const Tensor& hu_slice, const LowDoseConfig& cfg);

}  // namespace ccovid::data
