#include "data/phantom.h"

#include <algorithm>
#include <cmath>

namespace ccovid::data {

namespace {

constexpr double kAirHu = -1000.0;
constexpr double kBoneHu = 700.0;

// Cheap value-noise texture: hashes lattice coordinates and bilinearly
// interpolates, giving smooth per-patient parenchyma texture.
double hash_noise(std::uint64_t seed, index_t x, index_t y) {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(x) * 0x9E3779B97F4A7C15ull;
  h ^= static_cast<std::uint64_t>(y) * 0xC2B2AE3D27D4EB4Full;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
}

double value_noise(std::uint64_t seed, double x, double y, double freq) {
  const double fx = x * freq, fy = y * freq;
  const index_t x0 = static_cast<index_t>(std::floor(fx));
  const index_t y0 = static_cast<index_t>(std::floor(fy));
  const double tx = fx - static_cast<double>(x0);
  const double ty = fy - static_cast<double>(y0);
  const double v00 = hash_noise(seed, x0, y0);
  const double v10 = hash_noise(seed, x0 + 1, y0);
  const double v01 = hash_noise(seed, x0, y0 + 1);
  const double v11 = hash_noise(seed, x0 + 1, y0 + 1);
  const double a = v00 + (v10 - v00) * tx;
  const double b = v01 + (v11 - v01) * tx;
  return a + (b - a) * ty;  // [0, 1)
}

bool inside_ellipse(double x, double y, double cx, double cy, double rx,
                    double ry) {
  const double dx = (x - cx) / rx;
  const double dy = (y - cy) / ry;
  return dx * dx + dy * dy <= 1.0;
}

}  // namespace

Anatomy Anatomy::sample(Rng& rng) {
  Anatomy a;
  a.body_rx = rng.uniform(0.40, 0.46);
  a.body_ry = rng.uniform(0.30, 0.36);
  a.lung_rx = rng.uniform(0.16, 0.20);
  a.lung_ry = rng.uniform(0.20, 0.26);
  a.lung_cx = rng.uniform(0.19, 0.23);
  a.lung_cy = rng.uniform(-0.03, 0.03);
  a.heart_r = rng.uniform(0.08, 0.11);
  a.spine_r = rng.uniform(0.04, 0.055);
  a.tissue_hu = rng.uniform(20.0, 60.0);
  a.lung_hu = rng.uniform(-870.0, -780.0);
  a.num_vessels = static_cast<int>(rng.uniform_int(6, 14));
  a.texture_seed = rng.next_u64();
  return a;
}

std::vector<Lesion> sample_covid_lesions(Rng& rng,
                                         double min_radius_frac) {
  std::vector<Lesion> lesions;
  const int count = static_cast<int>(rng.uniform_int(2, 6));
  for (int i = 0; i < count; ++i) {
    Lesion l;
    // Peripheral, bilateral distribution: bias towards the outer half of
    // a lung, random side.
    const double side = rng.bernoulli(0.5) ? 1.0 : -1.0;
    const double ang = rng.uniform(0.0, 2.0 * M_PI);
    const double rad = rng.uniform(0.45, 0.95);  // outer fraction of lung
    l.cx = side * 0.21 + std::cos(ang) * rad * 0.14;
    l.cy = std::sin(ang) * rad * 0.18;
    l.cz = rng.uniform(0.25, 0.75);
    l.r = std::max(min_radius_frac, rng.uniform(0.035, 0.09));
    // GGO raises aerated lung towards -400; consolidation towards 0.
    l.delta_hu = rng.bernoulli(0.3) ? rng.uniform(650.0, 850.0)   // consol.
                                    : rng.uniform(300.0, 500.0);  // GGO
    l.crazy_paving = rng.bernoulli(0.4);
    lesions.push_back(l);
  }
  return lesions;
}

PhantomSlice render_slice(index_t n, const Anatomy& an,
                          const std::vector<Lesion>& lesions, double z) {
  PhantomSlice out{Tensor({n, n}), Tensor({n, n})};
  real_t* hu = out.hu.data();
  real_t* mask = out.lung_mask.data();

  // Lungs taper towards the apex/base: scale by a smooth arch in z.
  const double taper = std::sqrt(
      std::max(0.0, 1.0 - std::pow(2.0 * (z - 0.5), 2.0)));
  const double lrx = an.lung_rx * (0.35 + 0.65 * taper);
  const double lry = an.lung_ry * (0.35 + 0.65 * taper);

  for (index_t iy = 0; iy < n; ++iy) {
    // Normalized coordinates in [-0.5, 0.5].
    const double y = (static_cast<double>(iy) + 0.5) / n - 0.5;
    for (index_t ix = 0; ix < n; ++ix) {
      const double x = (static_cast<double>(ix) + 0.5) / n - 0.5;
      double v = kAirHu;
      bool in_lung = false;

      if (inside_ellipse(x, y, 0.0, 0.0, an.body_rx, an.body_ry)) {
        v = an.tissue_hu +
            30.0 * (value_noise(an.texture_seed ^ 0x51CE, x + 2.0, y + 2.0,
                                24.0) -
                    0.5);
        // Spine (posterior) and sternum (anterior).
        if (inside_ellipse(x, y, 0.0, an.body_ry * 0.72, an.spine_r,
                           an.spine_r)) {
          v = kBoneHu;
        } else if (inside_ellipse(x, y, 0.0, -an.body_ry * 0.82,
                                  an.spine_r * 0.7, an.spine_r * 0.4)) {
          v = kBoneHu * 0.8;
        } else {
          for (int side = -1; side <= 1; side += 2) {
            if (inside_ellipse(x, y, side * an.lung_cx, an.lung_cy, lrx,
                               lry)) {
              in_lung = true;
              // Parenchyma with fine texture.
              v = an.lung_hu +
                  35.0 * (value_noise(an.texture_seed, x + side, y, 60.0) -
                          0.5);
              break;
            }
          }
          // Heart (medial, slightly anterior-left) overrides lung border.
          if (!in_lung && inside_ellipse(x, y, -0.04, -0.05, an.heart_r,
                                         an.heart_r * 1.15)) {
            v = an.tissue_hu + 10.0;
          }
        }
      }

      if (in_lung) {
        // Pulmonary vessels: sparse bright threads; thresholded ridge of
        // a coarse noise field gives connected filament-like structures.
        const double vess =
            value_noise(an.texture_seed ^ 0x7E55ull, x + 4.0, y + 4.0,
                        10.0 + an.num_vessels);
        if (std::fabs(vess - 0.5) < 0.012) {
          v += 650.0;  // vessel lumen approaches soft tissue density
        }
        // Lesions.
        for (const Lesion& l : lesions) {
          const double dz = (z - l.cz) / (l.r * 2.2);
          const double dx = (x - l.cx) / l.r;
          const double dy = (y - l.cy) / l.r;
          const double d2 = dx * dx + dy * dy + dz * dz;
          if (d2 <= 1.0) {
            // Smooth falloff towards the rim; GGO keeps some aeration.
            double add = l.delta_hu * (1.0 - 0.6 * d2);
            if (l.crazy_paving) {
              add *= 0.75 + 0.5 * value_noise(an.texture_seed ^ 0xCAFE,
                                              x * 3.0, y * 3.0, 90.0);
            }
            v += add;
          }
        }
        mask[iy * n + ix] = 1.0f;
      }
      hu[iy * n + ix] = static_cast<real_t>(std::clamp(v, -1024.0, 1023.0));
    }
  }
  return out;
}

PhantomVolume make_volume(index_t depth, index_t n, bool covid_positive,
                          Rng& rng, double min_lesion_radius_frac) {
  const Anatomy anatomy = Anatomy::sample(rng);
  const std::vector<Lesion> lesions =
      covid_positive ? sample_covid_lesions(rng, min_lesion_radius_frac)
                     : std::vector<Lesion>{};
  PhantomVolume vol{Tensor({depth, n, n}), Tensor({depth, n, n}),
                    covid_positive ? 1 : 0};
  for (index_t d = 0; d < depth; ++d) {
    const double z = (static_cast<double>(d) + 0.5) / depth;
    PhantomSlice s = render_slice(n, anatomy, lesions, z);
    std::copy(s.hu.data(), s.hu.data() + n * n, vol.hu.data() + d * n * n);
    std::copy(s.lung_mask.data(), s.lung_mask.data() + n * n,
              vol.lung_mask.data() + d * n * n);
  }
  return vol;
}

Tensor add_circular_fov_artifact(const Tensor& hu_slice, double outside_hu) {
  const index_t n = hu_slice.dim(0);
  Tensor out = hu_slice.clone();
  real_t* p = out.data();
  const double r2 = 0.25;  // inscribed circle in normalized coords
  for (index_t iy = 0; iy < n; ++iy) {
    const double y = (static_cast<double>(iy) + 0.5) / n - 0.5;
    for (index_t ix = 0; ix < n; ++ix) {
      const double x = (static_cast<double>(ix) + 0.5) / n - 0.5;
      if (x * x + y * y > r2) {
        p[iy * n + ix] = static_cast<real_t>(outside_hu);
      }
    }
  }
  return out;
}

Tensor remove_circular_fov_artifact(const Tensor& hu_slice) {
  const index_t n = hu_slice.dim(0);
  Tensor out = hu_slice.clone();
  real_t* p = out.data();
  const double r2 = 0.25;
  for (index_t iy = 0; iy < n; ++iy) {
    const double y = (static_cast<double>(iy) + 0.5) / n - 0.5;
    for (index_t ix = 0; ix < n; ++ix) {
      const double x = (static_cast<double>(ix) + 0.5) / n - 0.5;
      if (x * x + y * y > r2) {
        p[iy * n + ix] = -1000.0f;  // air
      }
    }
  }
  return out;
}

}  // namespace ccovid::data
