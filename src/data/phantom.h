// Procedural chest CT phantoms — the clinical-data substitute (DESIGN.md
// §1). Generates anatomically-structured HU rasters: elliptical thorax,
// two air-filled lungs, spine/sternum bone, heart, pulmonary vessels,
// and — for COVID-positive cases — the hallmark abnormalities the paper
// lists in Fig. 1: peripheral ground-glass opacities (GGO), crazy-paving
// texture and denser consolidations. Ground-truth lung masks and labels
// come for free, which is what lets us train/evaluate Segmentation and
// Classification AI without clinical data.
#pragma once

#include "core/random.h"
#include "core/tensor.h"

namespace ccovid::data {

/// Randomized per-patient anatomy; sampled once per phantom so every
/// slice of a volume is coherent.
struct Anatomy {
  double body_rx, body_ry;      ///< thorax half-axes (fraction of FOV)
  double lung_rx, lung_ry;      ///< lung half-axes
  double lung_cx, lung_cy;      ///< lung center offsets
  double heart_r;               ///< heart radius
  double spine_r;               ///< vertebra radius
  double tissue_hu;             ///< soft-tissue baseline (around +40)
  double lung_hu;               ///< healthy aerated lung (around -820)
  int num_vessels;
  std::uint64_t texture_seed;   ///< per-patient noise stream

  static Anatomy sample(Rng& rng);
};

/// One focal COVID lesion (GGO / consolidation).
struct Lesion {
  double cx, cy, cz;  ///< center (fractions: xy of FOV, z of volume)
  double r;           ///< radius (fraction of FOV)
  double delta_hu;    ///< opacity added to lung parenchyma
  bool crazy_paving;  ///< superimpose septal-thickening texture
};

struct PhantomSlice {
  Tensor hu;         ///< (n, n) Hounsfield units
  Tensor lung_mask;  ///< (n, n) binary ground-truth lung foreground
};

/// Renders the axial slice at relative height z in [0, 1] (lungs taper
/// towards 0 and 1). `lesions` may be empty (healthy).
PhantomSlice render_slice(index_t n, const Anatomy& anatomy,
                          const std::vector<Lesion>& lesions, double z);

/// Samples a COVID-like lesion set: 2-6 predominantly peripheral,
/// bilateral GGOs, occasionally consolidating. `min_radius_frac` floors
/// the lesion radius (fraction of FOV): clinically GGOs span 1-3 cm —
/// dozens of pixels at the paper's 512px — so reduced-resolution
/// experiments pass e.g. 4.0/n to keep lesions resolvable instead of
/// letting them shrink below the pixel grid.
std::vector<Lesion> sample_covid_lesions(Rng& rng,
                                         double min_radius_frac = 0.0);

struct PhantomVolume {
  Tensor hu;         ///< (d, n, n)
  Tensor lung_mask;  ///< (d, n, n)
  int label;         ///< 1 = COVID-positive
};

/// Full coherent volume; positive cases receive sampled lesions (with
/// the given minimum radius — see sample_covid_lesions).
PhantomVolume make_volume(index_t depth, index_t n, bool covid_positive,
                          Rng& rng, double min_lesion_radius_frac = 0.0);

/// Adds the circular reconstruction-FOV artifact some sources exhibit
/// (Fig. 5 left): pixels outside the inscribed circle are set to
/// `outside_hu` (a non-physical padding value).
Tensor add_circular_fov_artifact(const Tensor& hu_slice,
                                 double outside_hu = -2000.0);

/// Data-preparation step of §2.1 / Fig. 5: replaces the non-physical
/// padding outside the inscribed circle with air (-1000 HU).
Tensor remove_circular_fov_artifact(const Tensor& hu_slice);

}  // namespace ccovid::data
