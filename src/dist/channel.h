// Blocking point-to-point message channel — the primitive under the
// in-process message-passing runtime. Semantics follow MPI two-sided
// messaging (cooperative send/recv, FIFO per (source, tag) pair), per
// the message-passing model the HPC guides describe.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "core/types.h"

namespace ccovid::dist {

using Message = std::vector<real_t>;

class Channel {
 public:
  /// Enqueues a message (moves the payload).
  void send(Message msg) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(msg));
    }
    cv_.notify_one();
  }

  /// Blocks until a message is available; FIFO order.
  Message recv() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !queue_.empty(); });
    Message msg = std::move(queue_.front());
    queue_.pop_front();
    return msg;
  }

  /// Non-blocking probe.
  bool has_message() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !queue_.empty();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace ccovid::dist
