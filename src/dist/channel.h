// Compatibility alias: the blocking point-to-point Channel primitive
// moved to net/channel.h when the transport layer grew a socket backend
// (PR 6) — the Message/Packet/Channel types now live under the
// Transport abstraction so the in-process shared-memory path and the
// wire-frame socket path are two backends of one interface. The
// in-process World (dist/comm.h) and its fault primitives are
// unchanged; they simply use the moved types.
#pragma once

#include "net/channel.h"

namespace ccovid::dist {

using Message = net::Message;
using Packet = net::Packet;
using Channel = net::Channel;

}  // namespace ccovid::dist
