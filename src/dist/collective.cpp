#include "dist/collective.h"

#include <stdexcept>
#include <utility>

#include "core/env.h"

namespace ccovid::dist {

namespace {

bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

void send_counted(World& w, int rank, int to, Message msg) {
  w.note_sent(rank, msg.size() * sizeof(real_t));
  w.send(rank, to, std::move(msg));
}

/// Canonical fold of `n` concatenated raw contributions (rank order,
/// `len` elements each) into `data`. This is THE fold — every algorithm
/// funnels through it so the bit pattern cannot depend on topology.
void fold_blocks(const std::vector<real_t>& blocks, std::size_t len, int n,
                 std::vector<real_t>& data) {
  for (std::size_t i = 0; i < len; ++i) data[i] = blocks[i];
  for (int r = 1; r < n; ++r) {
    const real_t* src = blocks.data() + static_cast<std::size_t>(r) * len;
    for (std::size_t i = 0; i < len; ++i) data[i] += src[i];
  }
}

/// Ring: circulate every rank's raw contribution n-1 hops around the
/// ring, then fold locally in rank order.
void ring_all_reduce(World& w, int rank, std::vector<real_t>& data) {
  const int n = w.size();
  const std::size_t len = data.size();
  const int next = (rank + 1) % n;
  const int prev = (rank + n - 1) % n;
  std::vector<real_t> blocks(len * static_cast<std::size_t>(n));
  std::copy(data.begin(), data.end(),
            blocks.begin() + static_cast<std::ptrdiff_t>(len) * rank);
  for (int s = 0; s < n - 1; ++s) {
    const int send_origin = ((rank - s) % n + n) % n;
    const int recv_origin = ((rank - s - 1) % n + n) % n;
    const auto base =
        blocks.begin() + static_cast<std::ptrdiff_t>(len) * send_origin;
    send_counted(w, rank, next,
                 Message(base, base + static_cast<std::ptrdiff_t>(len)));
    Message in = w.recv(rank, prev);
    if (in.size() != len) {
      throw std::runtime_error("collective ring: length mismatch");
    }
    std::copy(in.begin(), in.end(),
              blocks.begin() + static_cast<std::ptrdiff_t>(len) * recv_origin);
  }
  fold_blocks(blocks, len, n, data);
}

/// Tree: binomial gather of contiguous-rank raw blocks to rank 0, one
/// canonical fold at the root, binomial broadcast of the result.
void tree_all_reduce(World& w, int rank, std::vector<real_t>& data) {
  const int n = w.size();
  const std::size_t len = data.size();
  const int k_max = InterconnectModel::ceil_log2(n);

  // Gather. Invariant: before step k, `block` holds the raw
  // contributions of ranks [rank, min(rank + 2^k, n)) concatenated in
  // rank order. A rank whose k-th bit is set ships its block downward
  // at step k and is done.
  std::vector<real_t> block = data;
  bool sent = false;
  for (int k = 0; k < k_max && !sent; ++k) {
    const int bit = 1 << k;
    if ((rank & bit) != 0) {
      send_counted(w, rank, rank - bit, Message(block.begin(), block.end()));
      sent = true;
    } else if (rank + bit < n) {
      Message in = w.recv(rank, rank + bit);
      block.insert(block.end(), in.begin(), in.end());
    }
  }
  if (rank == 0) {
    if (block.size() != len * static_cast<std::size_t>(n)) {
      throw std::runtime_error("collective tree: gather length mismatch");
    }
    fold_blocks(block, len, n, data);
  }

  // Broadcast the folded result back down the same tree.
  for (int k = k_max - 1; k >= 0; --k) {
    const int bit = 1 << k;
    const int pos = rank & (2 * bit - 1);
    if (pos == 0) {
      if (rank + bit < n) {
        send_counted(w, rank, rank + bit, Message(data.begin(), data.end()));
      }
    } else if (pos == bit) {
      Message in = w.recv(rank, rank - bit);
      if (in.size() != len) {
        throw std::runtime_error("collective tree: broadcast length mismatch");
      }
      std::copy(in.begin(), in.end(), data.begin());
    }
  }
}

/// Bcast-halving (recursive doubling): at step k every rank swaps its
/// aligned 2^k-rank raw block with the partner across bit k, doubling
/// the contiguous range it holds; after ceil(log2 n) steps every rank
/// folds the full rank-ordered concatenation. Power-of-two worlds only.
void halving_all_reduce(World& w, int rank, std::vector<real_t>& data) {
  const int n = w.size();
  const std::size_t len = data.size();
  const int k_max = InterconnectModel::ceil_log2(n);
  std::vector<real_t> block = data;  // ranks [base, base + 2^k)
  for (int k = 0; k < k_max; ++k) {
    const int bit = 1 << k;
    const int partner = rank ^ bit;
    send_counted(w, rank, partner, Message(block.begin(), block.end()));
    Message in = w.recv(rank, partner);
    if (in.size() != block.size()) {
      throw std::runtime_error("collective bcast-halving: length mismatch");
    }
    if ((rank & bit) != 0) {
      // Partner's block covers the lower rank range: it goes first.
      block.insert(block.begin(), in.begin(), in.end());
    } else {
      block.insert(block.end(), in.begin(), in.end());
    }
  }
  fold_blocks(block, len, n, data);
}

}  // namespace

const char* collective_name(Collective c) {
  switch (c) {
    case Collective::kRing:
      return "ring";
    case Collective::kTree:
      return "tree";
    case Collective::kBcastHalving:
      return "bcast-halving";
    case Collective::kAuto:
      break;
  }
  return "auto";
}

std::optional<Collective> parse_collective(const std::string& name) {
  for (const Collective c : {Collective::kAuto, Collective::kRing,
                             Collective::kTree, Collective::kBcastHalving}) {
    if (name == collective_name(c)) return c;
  }
  return std::nullopt;
}

Collective env_collective() {
  const auto v = env::choice("CCOVID_COLLECTIVE",
                             {"ring", "tree", "bcast-halving", "auto"},
                             "auto (cost-model choice)");
  if (!v) return Collective::kAuto;
  return parse_collective(*v).value_or(Collective::kAuto);
}

Collective resolve_collective(Collective requested,
                              const InterconnectModel& net,
                              std::uint64_t bytes, int world) {
  Collective c = requested;
  if (c == Collective::kAuto) c = env_collective();
  if (c == Collective::kAuto) c = net.best_collective(bytes, world);
  return c;
}

void all_reduce(World& world, int rank, std::vector<real_t>& data,
                Collective alg) {
  if (world.size() == 1 || data.empty()) return;
  switch (alg) {
    case Collective::kRing:
      ring_all_reduce(world, rank, data);
      return;
    case Collective::kTree:
      tree_all_reduce(world, rank, data);
      return;
    case Collective::kBcastHalving:
      if (!is_pow2(world.size())) {
        ring_all_reduce(world, rank, data);  // same bits, see header
        return;
      }
      halving_all_reduce(world, rank, data);
      return;
    case Collective::kAuto:
      break;
  }
  throw std::invalid_argument(
      "collective::all_reduce: resolve kAuto before the wire call");
}

}  // namespace ccovid::dist
