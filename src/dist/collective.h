// Deterministic allreduce family used by the DDP gradient path.
//
// THE CONTRACT: every algorithm produces, on every rank, the canonical
// linear fold of the per-rank contributions
//
//     result[i] = ((c0[i] + c1[i]) + c2[i]) + ... + c_{n-1}[i]
//
// — bitwise, not just numerically. The algorithms therefore never ship
// partial sums whose fold shape depends on the topology; they move the
// RAW contributions (ring circulation, binomial gather of contiguous
// rank ranges, recursive doubling of aligned blocks) and fold in rank
// order at the end. That makes the gradient bits independent of the
// chosen collective, of DDP bucket boundaries (a fold over a
// concatenation is the concatenation of folds), and of the task-engine
// width — which is what lets tests/test_golden.cpp pin ONE digest for
// the whole collective x bucket-size x width sweep.
//
// World::all_reduce_sum (the classic Baidu ring: reduce-scatter +
// all-gather) stays untouched: its per-chunk fold order is a rotation
// of rank order, so it is deterministic per chunk layout but NOT
// bucket-size-invariant. The trainer uses the collectives below.
//
// Selection: an explicit --collective choice wins; kAuto defers to the
// CCOVID_COLLECTIVE environment variable ("ring" | "tree" |
// "bcast-halving" | "auto"), and a still-unresolved kAuto asks the
// interconnect cost model for the cheapest algorithm at the given
// transfer size.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dist/comm.h"
#include "dist/interconnect.h"

namespace ccovid::dist {

/// CLI / env spelling of an algorithm ("ring", "tree", "bcast-halving",
/// "auto").
const char* collective_name(Collective c);

/// Parses a spelling; nullopt on unknown input.
std::optional<Collective> parse_collective(const std::string& name);

/// CCOVID_COLLECTIVE environment override (kAuto when unset; unknown
/// values warn once via env::choice and fall back to kAuto).
Collective env_collective();

/// Resolves a requested algorithm to a concrete one: explicit choice >
/// CCOVID_COLLECTIVE > cost-model argmin for (bytes, world).
Collective resolve_collective(Collective requested,
                              const InterconnectModel& net,
                              std::uint64_t bytes, int world);

/// Deterministic allreduce over `world`'s point-to-point channels:
/// every rank calls with its contribution in `data`; on return `data`
/// holds the canonical rank-order fold on every rank. `alg` must be
/// concrete (resolve kAuto first); kBcastHalving on a non-power-of-two
/// world runs the ring. Collective byte traffic is tracked per rank
/// like the World collectives.
void all_reduce(World& world, int rank, std::vector<real_t>& data,
                Collective alg);

}  // namespace ccovid::dist
