#include "dist/comm.h"

#include <stdexcept>

namespace ccovid::dist {

World::World(int world_size) : size_(world_size), bytes_(world_size) {
  if (world_size < 1) throw std::invalid_argument("World: size must be >= 1");
  channels_.resize(static_cast<std::size_t>(size_) * size_);
  for (auto& c : channels_) c = std::make_unique<Channel>();
  for (auto& b : bytes_) b.store(0);
}

void World::send(int from, int to, Message msg) {
  if (from < 0 || from >= size_ || to < 0 || to >= size_) {
    throw std::invalid_argument("World::send: bad rank");
  }
  channels_[static_cast<std::size_t>(from) * size_ + to]->send(
      std::move(msg));
}

Message World::recv(int at, int from) {
  if (at < 0 || at >= size_ || from < 0 || from >= size_) {
    throw std::invalid_argument("World::recv: bad rank");
  }
  return channels_[static_cast<std::size_t>(from) * size_ + at]->recv();
}

void World::barrier() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  const int gen = barrier_generation_;
  if (++barrier_count_ == size_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [this, gen] { return gen != barrier_generation_; });
  }
}

void World::all_reduce_sum(int rank, std::vector<real_t>& data) {
  const int n = size_;
  if (n == 1) return;
  const index_t len = static_cast<index_t>(data.size());
  // Chunk boundaries: chunk c covers [off[c], off[c+1]).
  std::vector<index_t> off(static_cast<std::size_t>(n) + 1);
  for (int c = 0; c <= n; ++c) {
    off[c] = len * c / n;
  }
  const int next = (rank + 1) % n;
  const int prev = (rank + n - 1) % n;
  const auto chunk_of = [&](int c) {
    return ((c % n) + n) % n;
  };

  // Phase 1 — reduce-scatter: after n-1 steps rank r holds the full sum
  // of chunk (r+1) mod n.
  for (int s = 0; s < n - 1; ++s) {
    const int send_c = chunk_of(rank - s);
    const int recv_c = chunk_of(rank - s - 1);
    Message out(data.begin() + off[send_c], data.begin() + off[send_c + 1]);
    bytes_[rank].fetch_add(out.size() * sizeof(real_t));
    send(rank, next, std::move(out));
    Message in = recv(rank, prev);
    real_t* dst = data.data() + off[recv_c];
    for (std::size_t i = 0; i < in.size(); ++i) dst[i] += in[i];
  }
  // Phase 2 — all-gather: circulate the reduced chunks.
  for (int s = 0; s < n - 1; ++s) {
    const int send_c = chunk_of(rank + 1 - s);
    const int recv_c = chunk_of(rank - s);
    Message out(data.begin() + off[send_c], data.begin() + off[send_c + 1]);
    bytes_[rank].fetch_add(out.size() * sizeof(real_t));
    send(rank, next, std::move(out));
    Message in = recv(rank, prev);
    real_t* dst = data.data() + off[recv_c];
    for (std::size_t i = 0; i < in.size(); ++i) dst[i] = in[i];
  }
}

void World::broadcast(int rank, int root, std::vector<real_t>& data) {
  if (size_ == 1) return;
  if (root < 0 || root >= size_) {
    throw std::invalid_argument("World::broadcast: bad root");
  }
  if (rank == root) {
    for (int r = 0; r < size_; ++r) {
      if (r == root) continue;
      Message out(data.begin(), data.end());
      bytes_[rank].fetch_add(out.size() * sizeof(real_t));
      send(rank, r, std::move(out));
    }
  } else {
    Message in = recv(rank, root);
    if (in.size() != data.size()) {
      throw std::runtime_error("World::broadcast: length mismatch");
    }
    std::copy(in.begin(), in.end(), data.begin());
  }
}

void World::reduce_sum(int rank, int root, std::vector<real_t>& data) {
  if (size_ == 1) return;
  if (root < 0 || root >= size_) {
    throw std::invalid_argument("World::reduce_sum: bad root");
  }
  if (rank == root) {
    for (int r = 0; r < size_; ++r) {
      if (r == root) continue;
      Message in = recv(rank, r);
      if (in.size() != data.size()) {
        throw std::runtime_error("World::reduce_sum: length mismatch");
      }
      for (std::size_t i = 0; i < in.size(); ++i) data[i] += in[i];
    }
  } else {
    Message out(data.begin(), data.end());
    bytes_[rank].fetch_add(out.size() * sizeof(real_t));
    send(rank, root, std::move(out));
  }
}

void World::all_gather(int rank, const std::vector<real_t>& data,
                       std::vector<real_t>& out) {
  const std::size_t len = data.size();
  out.resize(len * static_cast<std::size_t>(size_));
  std::copy(data.begin(), data.end(),
            out.begin() + static_cast<std::ptrdiff_t>(len) * rank);
  if (size_ == 1) return;
  // Ring circulation: after size-1 steps every rank has every chunk.
  const int next = (rank + 1) % size_;
  const int prev = (rank + size_ - 1) % size_;
  int have = rank;  // chunk most recently received / owned
  for (int s = 0; s < size_ - 1; ++s) {
    Message out_msg(out.begin() + static_cast<std::ptrdiff_t>(len) * have,
                    out.begin() + static_cast<std::ptrdiff_t>(len) *
                                      (have + 1));
    bytes_[rank].fetch_add(out_msg.size() * sizeof(real_t));
    send(rank, next, std::move(out_msg));
    Message in = recv(rank, prev);
    have = ((prev - s) % size_ + size_) % size_;
    std::copy(in.begin(), in.end(),
              out.begin() + static_cast<std::ptrdiff_t>(len) * have);
  }
}

std::uint64_t World::bytes_sent(int rank) const {
  return bytes_[rank].load();
}

}  // namespace ccovid::dist
