#include "dist/comm.h"

#include <stdexcept>
#include <utility>

#include "core/digest.h"
#include "fault/failpoint.h"

namespace ccovid::dist {

namespace {

std::uint64_t payload_digest(const Message& m) {
  return fnv1a64(m.data(), m.size() * sizeof(real_t));
}

}  // namespace

World::World(int world_size) : size_(world_size), bytes_(world_size) {
  if (world_size < 1) throw std::invalid_argument("World: size must be >= 1");
  channels_.resize(static_cast<std::size_t>(size_) * size_);
  for (auto& c : channels_) c = std::make_unique<Channel>();
  for (auto& b : bytes_) b.store(0);
}

void World::send(int from, int to, Message msg) {
  if (from < 0 || from >= size_ || to < 0 || to >= size_) {
    throw std::invalid_argument("World::send: bad rank");
  }
  Channel& ch = channel(from, to);
  if (!guard_.enabled && !fault::Registry::any_armed()) {
    ch.send(std::move(msg));  // bare fast path
    return;
  }

  Packet p;
  p.payload = std::move(msg);
  p.seq = ch.allocate_seq();
  // Checksum BEFORE fault injection: a corruption models an on-the-wire
  // bit flip after the NIC computed the frame check, so the receiver's
  // recomputation must disagree.
  if (guard_.enabled) p.checksum = payload_digest(p.payload);

  // Transport faults, evaluated on the sender thread (ordinal = sender
  // rank for thread(I) filters). Use a thread(from) filter to fault one
  // rank's uplink only.
  if (auto f = CCOVID_FAILPOINT_FIRED("dist.msg.corrupt")) {
    fault::corrupt_bytes(p.payload.data(),
                         p.payload.size() * sizeof(real_t), f.seed,
                         f.count);
  }
  if (CCOVID_FAILPOINT_FIRED("dist.msg.drop")) {
    return;  // seq consumed but never delivered: the receiver sees a gap
  }
  if (CCOVID_FAILPOINT_FIRED("dist.msg.reorder")) {
    ch.hold_packet(std::move(p));  // delivered after the NEXT send
    return;
  }
  if (CCOVID_FAILPOINT_FIRED("dist.msg.dup")) {
    ch.send_packet(p);  // same seq delivered twice, like a network dup
  }
  ch.send_packet(std::move(p));
}

Message World::recv(int at, int from) {
  if (at < 0 || at >= size_ || from < 0 || from >= size_) {
    throw std::invalid_argument("World::recv: bad rank");
  }
  Channel& ch = channel(from, at);
  if (!guard_.enabled) return ch.recv();

  auto p = ch.recv_packet_for(guard_.recv_timeout_s);
  if (!p) {
    throw CommError(CommError::Kind::kTimeout, at, from,
                    "no message within " +
                        std::to_string(guard_.recv_timeout_s) +
                        "s (sender dead, stalled, or message dropped)");
  }
  switch (ch.check_recv_seq(p->seq)) {
    case Channel::SeqCheck::kOk:
      break;
    case Channel::SeqCheck::kDuplicate:
      throw CommError(CommError::Kind::kDuplicate, at, from,
                      "seq " + std::to_string(p->seq) + " seen again");
    case Channel::SeqCheck::kOutOfOrder:
      throw CommError(CommError::Kind::kOutOfOrder, at, from,
                      "seq " + std::to_string(p->seq) +
                          " arrived ahead of an undelivered predecessor "
                          "(reordered or dropped message)");
  }
  if (p->checksum != payload_digest(p->payload)) {
    throw CommError(CommError::Kind::kCorrupt, at, from,
                    "payload checksum mismatch on seq " +
                        std::to_string(p->seq));
  }
  return std::move(p->payload);
}

void World::barrier() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  const int gen = barrier_generation_;
  if (++barrier_count_ == size_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [this, gen] { return gen != barrier_generation_; });
  }
}

void World::all_reduce_sum(int rank, std::vector<real_t>& data) {
  const int n = size_;
  if (n == 1) return;
  const index_t len = static_cast<index_t>(data.size());
  // Chunk boundaries: chunk c covers [off[c], off[c+1]).
  std::vector<index_t> off(static_cast<std::size_t>(n) + 1);
  for (int c = 0; c <= n; ++c) {
    off[c] = len * c / n;
  }
  const int next = (rank + 1) % n;
  const int prev = (rank + n - 1) % n;
  const auto chunk_of = [&](int c) {
    return ((c % n) + n) % n;
  };

  // Phase 1 — reduce-scatter: after n-1 steps rank r holds the full sum
  // of chunk (r+1) mod n.
  for (int s = 0; s < n - 1; ++s) {
    const int send_c = chunk_of(rank - s);
    const int recv_c = chunk_of(rank - s - 1);
    Message out(data.begin() + off[send_c], data.begin() + off[send_c + 1]);
    bytes_[rank].fetch_add(out.size() * sizeof(real_t));
    send(rank, next, std::move(out));
    Message in = recv(rank, prev);
    real_t* dst = data.data() + off[recv_c];
    for (std::size_t i = 0; i < in.size(); ++i) dst[i] += in[i];
  }
  // Phase 2 — all-gather: circulate the reduced chunks.
  for (int s = 0; s < n - 1; ++s) {
    const int send_c = chunk_of(rank + 1 - s);
    const int recv_c = chunk_of(rank - s);
    Message out(data.begin() + off[send_c], data.begin() + off[send_c + 1]);
    bytes_[rank].fetch_add(out.size() * sizeof(real_t));
    send(rank, next, std::move(out));
    Message in = recv(rank, prev);
    real_t* dst = data.data() + off[recv_c];
    for (std::size_t i = 0; i < in.size(); ++i) dst[i] = in[i];
  }
}

void World::broadcast(int rank, int root, std::vector<real_t>& data) {
  if (size_ == 1) return;
  if (root < 0 || root >= size_) {
    throw std::invalid_argument("World::broadcast: bad root");
  }
  if (rank == root) {
    for (int r = 0; r < size_; ++r) {
      if (r == root) continue;
      Message out(data.begin(), data.end());
      bytes_[rank].fetch_add(out.size() * sizeof(real_t));
      send(rank, r, std::move(out));
    }
  } else {
    Message in = recv(rank, root);
    if (in.size() != data.size()) {
      throw std::runtime_error("World::broadcast: length mismatch");
    }
    std::copy(in.begin(), in.end(), data.begin());
  }
}

void World::reduce_sum(int rank, int root, std::vector<real_t>& data) {
  if (size_ == 1) return;
  if (root < 0 || root >= size_) {
    throw std::invalid_argument("World::reduce_sum: bad root");
  }
  if (rank == root) {
    for (int r = 0; r < size_; ++r) {
      if (r == root) continue;
      Message in = recv(rank, r);
      if (in.size() != data.size()) {
        throw std::runtime_error("World::reduce_sum: length mismatch");
      }
      for (std::size_t i = 0; i < in.size(); ++i) data[i] += in[i];
    }
  } else {
    Message out(data.begin(), data.end());
    bytes_[rank].fetch_add(out.size() * sizeof(real_t));
    send(rank, root, std::move(out));
  }
}

void World::all_gather(int rank, const std::vector<real_t>& data,
                       std::vector<real_t>& out) {
  const std::size_t len = data.size();
  out.resize(len * static_cast<std::size_t>(size_));
  std::copy(data.begin(), data.end(),
            out.begin() + static_cast<std::ptrdiff_t>(len) * rank);
  if (size_ == 1) return;
  // Ring circulation: after size-1 steps every rank has every chunk.
  const int next = (rank + 1) % size_;
  const int prev = (rank + size_ - 1) % size_;
  int have = rank;  // chunk most recently received / owned
  for (int s = 0; s < size_ - 1; ++s) {
    Message out_msg(out.begin() + static_cast<std::ptrdiff_t>(len) * have,
                    out.begin() + static_cast<std::ptrdiff_t>(len) *
                                      (have + 1));
    bytes_[rank].fetch_add(out_msg.size() * sizeof(real_t));
    send(rank, next, std::move(out_msg));
    Message in = recv(rank, prev);
    have = ((prev - s) % size_ + size_) % size_;
    std::copy(in.begin(), in.end(),
              out.begin() + static_cast<std::ptrdiff_t>(len) * have);
  }
}

std::uint64_t World::bytes_sent(int rank) const {
  return bytes_[rank].load();
}

}  // namespace ccovid::dist
