// In-process message-passing world: N ranks (threads) exchanging typed
// float payloads over point-to-point channels, with barrier and ring
// all-reduce collectives. This is the gloo/MPI stand-in used by the
// distributed data-parallel trainer (§4.1): the semantics (cooperative
// two-sided messaging, synchronous collectives) match, only the
// transport is shared memory.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/channel.h"
#include "net/error.h"

namespace ccovid::dist {

/// The guard knobs and error taxonomy are transport-independent (PR 6):
/// they moved to net/error.h so the socket frame protocol surfaces the
/// same typed kTimeout / kDuplicate / kOutOfOrder / kCorrupt faults as
/// this in-process World. GuardOptions::recv_timeout_s now defaults
/// from the CCOVID_RECV_TIMEOUT environment variable (else 2 s) and is
/// settable per tool via --recv-timeout.
using GuardOptions = net::GuardOptions;
using CommError = net::CommError;

class World {
 public:
  explicit World(int world_size);

  int size() const { return size_; }

  /// Point-to-point: FIFO per (from, to) pair.
  void send(int from, int to, Message msg);
  Message recv(int at, int from);

  /// Blocks until all ranks arrive (reusable).
  void barrier();

  /// Ring all-reduce (reduce-scatter + all-gather, Baidu-style): every
  /// rank calls this with its local buffer; on return every buffer holds
  /// the elementwise sum across ranks. Buffers must be the same length.
  /// Tracks the total bytes a real interconnect would have moved per
  /// rank (for the communication model).
  void all_reduce_sum(int rank, std::vector<real_t>& data);

  /// Broadcast from `root`: every rank calls with a same-length buffer;
  /// on return all buffers equal the root's. Linear fan-out over the
  /// point-to-point channels (how DDP ships initial weights).
  void broadcast(int rank, int root, std::vector<real_t>& data);

  /// Reduce-to-root: root's buffer receives the elementwise sum; other
  /// ranks' buffers are unchanged.
  void reduce_sum(int rank, int root, std::vector<real_t>& data);

  /// All-gather: rank r contributes `data`; on return `out` holds the
  /// world-ordered concatenation on every rank.
  void all_gather(int rank, const std::vector<real_t>& data,
                  std::vector<real_t>& out);

  /// Bytes sent per rank over all collectives so far.
  std::uint64_t bytes_sent(int rank) const;

  /// Byte-accounting hook for collectives layered on the point-to-point
  /// API (dist/collective.cpp): counts `bytes` against `rank`'s sent
  /// total, exactly as the built-in collectives do internally.
  void note_sent(int rank, std::uint64_t bytes) {
    bytes_[static_cast<std::size_t>(rank)].fetch_add(bytes);
  }

  /// Enables/disables guarded transport for subsequent send/recv calls.
  /// Set before the ranks start communicating — not thread-safe against
  /// in-flight traffic.
  void set_guard(GuardOptions g) { guard_ = g; }
  const GuardOptions& guard() const { return guard_; }

 private:
  Channel& channel(int from, int to) {
    return *channels_[static_cast<std::size_t>(from) * size_ + to];
  }

  GuardOptions guard_;
  int size_;
  // channels_[from * size + to]
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::atomic<std::uint64_t>> bytes_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  int barrier_generation_ = 0;
};

}  // namespace ccovid::dist
