// In-process message-passing world: N ranks (threads) exchanging typed
// float payloads over point-to-point channels, with barrier and ring
// all-reduce collectives. This is the gloo/MPI stand-in used by the
// distributed data-parallel trainer (§4.1): the semantics (cooperative
// two-sided messaging, synchronous collectives) match, only the
// transport is shared memory.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "dist/channel.h"

namespace ccovid::dist {

class World {
 public:
  explicit World(int world_size);

  int size() const { return size_; }

  /// Point-to-point: FIFO per (from, to) pair.
  void send(int from, int to, Message msg);
  Message recv(int at, int from);

  /// Blocks until all ranks arrive (reusable).
  void barrier();

  /// Ring all-reduce (reduce-scatter + all-gather, Baidu-style): every
  /// rank calls this with its local buffer; on return every buffer holds
  /// the elementwise sum across ranks. Buffers must be the same length.
  /// Tracks the total bytes a real interconnect would have moved per
  /// rank (for the communication model).
  void all_reduce_sum(int rank, std::vector<real_t>& data);

  /// Broadcast from `root`: every rank calls with a same-length buffer;
  /// on return all buffers equal the root's. Linear fan-out over the
  /// point-to-point channels (how DDP ships initial weights).
  void broadcast(int rank, int root, std::vector<real_t>& data);

  /// Reduce-to-root: root's buffer receives the elementwise sum; other
  /// ranks' buffers are unchanged.
  void reduce_sum(int rank, int root, std::vector<real_t>& data);

  /// All-gather: rank r contributes `data`; on return `out` holds the
  /// world-ordered concatenation on every rank.
  void all_gather(int rank, const std::vector<real_t>& data,
                  std::vector<real_t>& out);

  /// Bytes sent per rank over all collectives so far.
  std::uint64_t bytes_sent(int rank) const;

 private:
  int size_;
  // channels_[from * size + to]
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::atomic<std::uint64_t>> bytes_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  int barrier_generation_ = 0;
};

}  // namespace ccovid::dist
