#include "dist/ddp.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "core/finite.h"
#include "core/parallel.h"
#include "core/timer.h"
#include "fault/failpoint.h"
#include "trace/trace.h"

#include <cmath>
#include <ctime>

namespace ccovid::dist {

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}

DdpTrainer::DdpTrainer(const ModelFactory& factory, DdpConfig cfg)
    : cfg_(cfg), world_(cfg.world_size) {
  if (cfg_.world_size < 1 || cfg_.per_worker_batch < 1) {
    throw std::invalid_argument("DdpTrainer: bad config");
  }
  world_.set_guard(cfg_.guard);
  for (int r = 0; r < cfg_.world_size; ++r) {
    models_.push_back(factory());
    optims_.push_back(std::make_unique<autograd::Adam>(
        models_[r]->parameters(), cfg_.lr));
  }
  // Rank 0 broadcasts its initial weights through the communicator so
  // every replica starts identical — exactly how DDP bootstraps.
  if (cfg_.world_size > 1) {
    const index_t len = gradient_elements();
    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(
        static_cast<std::size_t>(cfg_.world_size));
    for (int r = 0; r < cfg_.world_size; ++r) {
      threads.emplace_back([this, r, len, &errors] {
        fault::ScopedThreadOrdinal ordinal(r);
        try {
          std::vector<real_t> flat(static_cast<std::size_t>(len));
          auto params = models_[r]->parameters();
          if (r == 0) {
            index_t off = 0;
            for (auto& p : params) {
              const index_t n = p.value().numel();
              std::memcpy(flat.data() + off, p.value().data(),
                          static_cast<std::size_t>(n) * sizeof(real_t));
              off += n;
            }
          }
          world_.broadcast(r, /*root=*/0, flat);
          if (r != 0) {
            index_t off = 0;
            for (auto& p : params) {
              const index_t n = p.value().numel();
              std::memcpy(p.value().data(), flat.data() + off,
                          static_cast<std::size_t>(n) * sizeof(real_t));
              off += n;
            }
          }
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    // Non-learnable buffers (running stats) start identical via direct
    // copy; they are not synchronized during training, as in DDP.
    for (int r = 1; r < cfg_.world_size; ++r) {
      models_[r]->copy_parameters_from(*models_[0]);
    }
  }
}

index_t DdpTrainer::gradient_elements() const {
  index_t n = 0;
  for (const auto& p : models_[0]->parameters()) n += p.value().numel();
  return n;
}

void DdpTrainer::decay_lr() {
  for (auto& o : optims_) o->set_lr(o->lr() * cfg_.lr_decay);
}

EpochStats DdpTrainer::train_epoch(index_t dataset_size,
                                   const LossFn& loss_fn, Rng& rng) {
  const int world = cfg_.world_size;
  const index_t global_batch = world * cfg_.per_worker_batch;
  if (dataset_size < global_batch) {
    throw std::invalid_argument(
        "train_epoch: dataset smaller than one global batch");
  }
  // Shuffle once per epoch (rank-identical, as DistributedSampler does).
  std::vector<index_t> order(static_cast<std::size_t>(dataset_size));
  std::iota(order.begin(), order.end(), 0);
  for (index_t i = dataset_size - 1; i > 0; --i) {
    std::swap(order[i], order[rng.uniform_int(0, i)]);
  }
  const index_t steps = dataset_size / global_batch;
  const index_t grad_len = gradient_elements();

  std::vector<double> rank_loss(world, 0.0);
  std::vector<double> rank_cpu(world, 0.0);
  WallTimer wall;

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world));
  auto worker = [&](int rank) {
    fault::ScopedThreadOrdinal ordinal(rank);
    // Rank as correlation id: each rank's spans form one lane in the
    // chrome view, so straggler stalls and allreduce waits line up.
    trace::ScopedCorrelation lane(static_cast<std::uint64_t>(rank) + 1);
    const double cpu0 = thread_cpu_seconds();
    std::vector<real_t> flat(static_cast<std::size_t>(grad_len));
    for (index_t s = 0; s < steps; ++s) {
      // Straggler injection: thread(R)*delay(...) stalls rank R at the
      // step boundary, modeling a slow node the collectives must absorb.
      CCOVID_FAILPOINT("dist.rank.straggler");
      // This rank's shard of the global batch.
      std::vector<index_t> shard;
      shard.reserve(cfg_.per_worker_batch);
      const index_t base = s * global_batch + rank * cfg_.per_worker_batch;
      for (index_t i = 0; i < cfg_.per_worker_batch; ++i) {
        shard.push_back(order[base + i]);
      }
      {
        TRACE_SPAN("ddp.compute");
        autograd::Var loss = loss_fn(*models_[rank], rank, shard);
        rank_loss[rank] += static_cast<double>(loss.value().at(0));
        optims_[rank]->zero_grad();
        loss.backward();

        // Flatten gradients in deterministic parameter order.
        auto params = models_[rank]->parameters();
        index_t off = 0;
        for (auto& p : params) {
          const index_t n = p.value().numel();
          if (p.has_grad()) {
            std::memcpy(flat.data() + off, p.grad().data(),
                        static_cast<std::size_t>(n) * sizeof(real_t));
          } else {
            std::fill_n(flat.data() + off, n, 0.0f);
          }
          off += n;
        }
      }
      // Local-gradient poisoning BEFORE the all-reduce: the sum carries
      // the NaN/flipped bits to every rank, the worst silent-divergence
      // scenario check_finite_grads exists to catch.
      if (auto f = CCOVID_FAILPOINT_FIRED("dist.grad.corrupt")) {
        if (f.action == fault::Action::kNan) {
          fault::inject_nonfinite(flat.data(), flat.size(), f.seed, f.count);
        } else {
          fault::corrupt_bytes(flat.data(), flat.size() * sizeof(real_t),
                               f.seed, f.count);
        }
      }
      {
        TRACE_SPAN("ddp.allreduce");
        world_.all_reduce_sum(rank, flat);
        if (cfg_.check_finite_grads) {
          for (const real_t g : flat) {
            if (!std::isfinite(g)) {
              throw StageError("dist.grad.allreduce",
                               "non-finite gradient after all-reduce at rank " +
                                   std::to_string(rank) + ", step " +
                                   std::to_string(s));
            }
          }
        }
      }
      // Average and scatter back.
      TRACE_SPAN("ddp.apply");
      auto params = models_[rank]->parameters();
      const real_t inv = 1.0f / static_cast<real_t>(world);
      index_t off = 0;
      for (auto& p : params) {
        const index_t n = p.value().numel();
        if (p.has_grad()) {
          real_t* g = p.grad().data();
          for (index_t i = 0; i < n; ++i) g[i] = flat[off + i] * inv;
        }
        off += n;
      }
      optims_[rank]->step();
    }
    rank_cpu[rank] = thread_cpu_seconds() - cpu0;
  };
  auto guarded_worker = [&](int rank) {
    try {
      worker(rank);
    } catch (...) {
      errors[static_cast<std::size_t>(rank)] = std::current_exception();
    }
  };

  if (world == 1) {
    guarded_worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(world);
    for (int r = 0; r < world; ++r) threads.emplace_back(guarded_worker, r);
    for (auto& t : threads) t.join();
  }
  // Every rank joined (guard timeouts bound the wait when a peer died
  // mid-collective); now surface the first failure as a typed error.
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  EpochStats stats;
  stats.steps = steps;
  stats.wall_seconds = wall.seconds();
  double loss_sum = 0.0;
  double cpu_max = 0.0;
  for (int r = 0; r < world; ++r) {
    loss_sum += rank_loss[r];
    cpu_max = std::max(cpu_max, rank_cpu[r]);
  }
  stats.mean_loss = loss_sum / (static_cast<double>(world) * steps);
  const std::uint64_t grad_bytes =
      static_cast<std::uint64_t>(grad_len) * sizeof(real_t);
  stats.allreduce_bytes_per_rank = grad_bytes * steps;
  stats.modeled_seconds =
      cpu_max + static_cast<double>(steps) *
                    cfg_.net.allreduce_seconds(grad_bytes, world);
  return stats;
}

}  // namespace ccovid::dist
