#include "dist/ddp.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "autograd/engine.h"
#include "core/finite.h"
#include "core/parallel.h"
#include "core/timer.h"
#include "fault/failpoint.h"
#include "trace/trace.h"

#include <cmath>
#include <ctime>

namespace ccovid::dist {

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}

DdpTrainer::DdpTrainer(const ModelFactory& factory, DdpConfig cfg)
    : cfg_(cfg), world_(cfg.world_size) {
  if (cfg_.world_size < 1 || cfg_.per_worker_batch < 1) {
    throw std::invalid_argument("DdpTrainer: bad config");
  }
  world_.set_guard(cfg_.guard);
  for (int r = 0; r < cfg_.world_size; ++r) {
    models_.push_back(factory());
    optims_.push_back(std::make_unique<autograd::Adam>(
        models_[r]->parameters(), cfg_.lr));
  }
  // Rank 0 broadcasts its initial weights through the communicator so
  // every replica starts identical — exactly how DDP bootstraps.
  if (cfg_.world_size > 1) {
    const index_t len = gradient_elements();
    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(
        static_cast<std::size_t>(cfg_.world_size));
    for (int r = 0; r < cfg_.world_size; ++r) {
      threads.emplace_back([this, r, len, &errors] {
        fault::ScopedThreadOrdinal ordinal(r);
        try {
          std::vector<real_t> flat(static_cast<std::size_t>(len));
          auto params = models_[r]->parameters();
          if (r == 0) {
            index_t off = 0;
            for (auto& p : params) {
              const index_t n = p.value().numel();
              std::memcpy(flat.data() + off, p.value().data(),
                          static_cast<std::size_t>(n) * sizeof(real_t));
              off += n;
            }
          }
          world_.broadcast(r, /*root=*/0, flat);
          if (r != 0) {
            index_t off = 0;
            for (auto& p : params) {
              const index_t n = p.value().numel();
              std::memcpy(p.value().data(), flat.data() + off,
                          static_cast<std::size_t>(n) * sizeof(real_t));
              off += n;
            }
          }
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    // Non-learnable buffers (running stats) start identical via direct
    // copy; they are not synchronized during training, as in DDP.
    for (int r = 1; r < cfg_.world_size; ++r) {
      models_[r]->copy_parameters_from(*models_[0]);
    }
  }
  plan_buckets();
}

void DdpTrainer::plan_buckets() {
  const auto params = models_[0]->parameters();
  const std::size_t m = params.size();
  std::vector<index_t> off(m + 1, 0);
  for (std::size_t i = 0; i < m; ++i) {
    off[i + 1] = off[i] + params[i].value().numel();
  }
  buckets_.clear();
  bucket_of_param_.assign(m, 0);
  const std::size_t budget =
      cfg_.bucket_bytes == 0 ? ~std::size_t{0} : cfg_.bucket_bytes;
  // Greedy fill over parameters in REVERSE registration order; each
  // bucket therefore covers a contiguous [lo, hi) range of the original
  // order and bucket 0 holds the tail — the parameters whose gradients
  // the backward pass finalizes first.
  std::size_t hi = m;
  while (hi > 0) {
    std::size_t lo = hi;
    std::size_t bytes = 0;
    while (lo > 0) {
      const std::size_t pb =
          static_cast<std::size_t>(params[lo - 1].value().numel()) *
          sizeof(real_t);
      if (lo != hi && bytes + pb > budget) break;
      bytes += pb;
      --lo;
    }
    Bucket b;
    b.param_lo = lo;
    b.param_hi = hi;
    b.elem_off = off[lo];
    b.elems = off[hi] - off[lo];
    for (std::size_t i = lo; i < hi; ++i) {
      bucket_of_param_[i] = buckets_.size();
    }
    buckets_.push_back(b);
    hi = lo;
  }
}

index_t DdpTrainer::gradient_elements() const {
  index_t n = 0;
  for (const auto& p : models_[0]->parameters()) n += p.value().numel();
  return n;
}

void DdpTrainer::decay_lr() {
  for (auto& o : optims_) o->set_lr(o->lr() * cfg_.lr_decay);
}

EpochStats DdpTrainer::train_epoch(index_t dataset_size,
                                   const LossFn& loss_fn, Rng& rng) {
  const int world = cfg_.world_size;
  const index_t global_batch = world * cfg_.per_worker_batch;
  if (dataset_size < global_batch) {
    throw std::invalid_argument(
        "train_epoch: dataset smaller than one global batch");
  }
  // Shuffle once per epoch (rank-identical, as DistributedSampler does).
  std::vector<index_t> order(static_cast<std::size_t>(dataset_size));
  std::iota(order.begin(), order.end(), 0);
  for (index_t i = dataset_size - 1; i > 0; --i) {
    std::swap(order[i], order[rng.uniform_int(0, i)]);
  }
  const index_t steps = dataset_size / global_batch;
  const index_t grad_len = gradient_elements();
  const std::uint64_t grad_bytes =
      static_cast<std::uint64_t>(grad_len) * sizeof(real_t);
  // One resolution per epoch, identical on every rank: collectives are
  // cooperative, so ranks must agree on the algorithm a priori.
  const Collective coll =
      resolve_collective(cfg_.collective, cfg_.net, grad_bytes, world);

  std::vector<double> rank_loss(world, 0.0);
  std::vector<double> rank_cpu(world, 0.0);
  WallTimer wall;

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world));
  auto worker = [&](int rank) {
    fault::ScopedThreadOrdinal ordinal(rank);
    // Rank as correlation id: each rank's spans form one lane in the
    // chrome view, so straggler stalls and allreduce waits line up.
    trace::ScopedCorrelation lane(static_cast<std::uint64_t>(rank) + 1);
    const double cpu0 = thread_cpu_seconds();
    std::vector<real_t> flat(static_cast<std::size_t>(grad_len));

    auto params = models_[rank]->parameters();
    // Flat element offset per parameter (registration order).
    std::vector<index_t> off(params.size() + 1, 0);
    std::unordered_map<const autograd::detail::VarImpl*, std::size_t> pindex;
    for (std::size_t i = 0; i < params.size(); ++i) {
      off[i + 1] = off[i] + params[i].value().numel();
      pindex.emplace(params[i].impl().get(), i);
    }
    // Copies one parameter range's gradients (zeros when a parameter
    // never received one) into the flat buffer — the SAME bytes whether
    // called per bucket (overlap) or over everything (sequential).
    const auto flatten_range = [&](std::size_t p_lo, std::size_t p_hi) {
      for (std::size_t i = p_lo; i < p_hi; ++i) {
        const index_t n = params[i].value().numel();
        if (params[i].has_grad()) {
          std::memcpy(flat.data() + off[i], params[i].grad().data(),
                      static_cast<std::size_t>(n) * sizeof(real_t));
        } else {
          std::fill_n(flat.data() + off[i], n, 0.0f);
        }
      }
    };
    const auto check_finite_range = [&](const real_t* g, index_t n,
                                        index_t step) {
      if (!cfg_.check_finite_grads) return;
      for (index_t i = 0; i < n; ++i) {
        if (!std::isfinite(g[i])) {
          throw StageError("dist.grad.allreduce",
                           "non-finite gradient after all-reduce at rank " +
                               std::to_string(rank) + ", step " +
                               std::to_string(step));
        }
      }
    };
    const auto poison = [&](real_t* g, std::size_t n, const fault::Fired& f) {
      if (f.action == fault::Action::kNan) {
        fault::inject_nonfinite(g, n, f.seed, f.count);
      } else {
        fault::corrupt_bytes(g, n * sizeof(real_t), f.seed, f.count);
      }
    };

    for (index_t s = 0; s < steps; ++s) {
      // Straggler injection: thread(R)*delay(...) stalls rank R at the
      // step boundary, modeling a slow node the collectives must absorb.
      CCOVID_FAILPOINT("dist.rank.straggler");
      // This rank's shard of the global batch.
      std::vector<index_t> shard;
      shard.reserve(cfg_.per_worker_batch);
      const index_t base = s * global_batch + rank * cfg_.per_worker_batch;
      for (index_t i = 0; i < cfg_.per_worker_batch; ++i) {
        shard.push_back(order[base + i]);
      }

      if (cfg_.overlap) {
        // --- Overlapped path: per-bucket allreduce races backward. ---
        // Countdown of unfinalized parameters per bucket, decremented by
        // the engine's finalize hook from worker threads; `done` covers
        // parameters the step's graph never touches (their buckets
        // release when the whole run finishes).
        struct BucketSync {
          std::mutex mu;
          std::condition_variable cv;
          std::vector<index_t> pending;
          std::vector<char> ready;
          bool done = false;
        } sync;
        sync.pending.reserve(buckets_.size());
        for (const Bucket& b : buckets_) {
          sync.pending.push_back(static_cast<index_t>(b.param_hi - b.param_lo));
        }
        sync.ready.assign(buckets_.size(), 0);

        autograd::BackwardRun run;
        {
          TRACE_SPAN("ddp.compute");
          autograd::Var loss = loss_fn(*models_[rank], rank, shard);
          if (loss.value().numel() != 1) {
            throw std::runtime_error("ddp: loss must be scalar");
          }
          rank_loss[rank] += static_cast<double>(loss.value().at(0));
          optims_[rank]->zero_grad();
          autograd::BackwardOptions bo;
          bo.trace_correlation = static_cast<std::uint64_t>(rank) + 1;
          bo.on_node_finalized = [&](const autograd::detail::VarImpl* n) {
            const auto it = pindex.find(n);
            if (it == pindex.end()) return;
            const std::size_t b = bucket_of_param_[it->second];
            std::lock_guard<std::mutex> lock(sync.mu);
            if (--sync.pending[b] == 0) {
              sync.ready[b] = 1;
              sync.cv.notify_all();
            }
          };
          bo.on_complete = [&] {
            std::lock_guard<std::mutex> lock(sync.mu);
            sync.done = true;
            sync.cv.notify_all();
          };
          run = autograd::backward_start(loss.impl(),
                                         Tensor::ones(loss.shape()),
                                         std::move(bo));
        }
        // Evaluated once per step on the rank thread — the same count
        // sequence as the sequential path, so fault schedules fire at
        // identical points in both modes. A fired poison lands on
        // bucket 0 (first on the wire).
        const fault::Fired corrupt = CCOVID_FAILPOINT_FIRED("dist.grad.corrupt");
        std::vector<real_t> seg;
        for (std::size_t b = 0; b < buckets_.size(); ++b) {
          const Bucket& bk = buckets_[b];
          {
            std::unique_lock<std::mutex> lock(sync.mu);
            sync.cv.wait(lock,
                         [&] { return sync.ready[b] != 0 || sync.done; });
          }
          flatten_range(bk.param_lo, bk.param_hi);
          real_t* g = flat.data() + bk.elem_off;
          if (b == 0 && corrupt) {
            poison(g, static_cast<std::size_t>(bk.elems), corrupt);
          }
          seg.assign(g, g + bk.elems);
          {
            TRACE_SPAN("ddp.allreduce");
            TRACE_SPAN_V("ddp.allreduce.bucket");
            all_reduce(world_, rank, seg, coll);
            check_finite_range(seg.data(), bk.elems, s);
          }
          std::copy(seg.begin(), seg.end(), g);
        }
        // Rethrows anything a backward closure raised. The buckets are
        // already reduced by then, so every rank ran the same wire
        // schedule and stays lock-step even on the error path.
        run.wait();
      } else {
        // --- Sequential path: one collective after backward. ---
        {
          TRACE_SPAN("ddp.compute");
          autograd::Var loss = loss_fn(*models_[rank], rank, shard);
          rank_loss[rank] += static_cast<double>(loss.value().at(0));
          optims_[rank]->zero_grad();
          loss.backward();
          flatten_range(0, params.size());
        }
        // Local-gradient poisoning BEFORE the all-reduce: the sum
        // carries the NaN/flipped bits to every rank, the worst silent-
        // divergence scenario check_finite_grads exists to catch.
        if (auto f = CCOVID_FAILPOINT_FIRED("dist.grad.corrupt")) {
          poison(flat.data(), flat.size(), f);
        }
        {
          TRACE_SPAN("ddp.allreduce");
          all_reduce(world_, rank, flat, coll);
          check_finite_range(flat.data(), grad_len, s);
        }
      }

      // Average and scatter back.
      TRACE_SPAN("ddp.apply");
      const real_t inv = 1.0f / static_cast<real_t>(world);
      for (std::size_t i = 0; i < params.size(); ++i) {
        const index_t n = params[i].value().numel();
        if (params[i].has_grad()) {
          real_t* g = params[i].grad().data();
          for (index_t k = 0; k < n; ++k) g[k] = flat[off[i] + k] * inv;
        }
      }
      optims_[rank]->step();
    }
    rank_cpu[rank] = thread_cpu_seconds() - cpu0;
  };
  auto guarded_worker = [&](int rank) {
    try {
      worker(rank);
    } catch (...) {
      errors[static_cast<std::size_t>(rank)] = std::current_exception();
    }
  };

  if (world == 1) {
    guarded_worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(world);
    for (int r = 0; r < world; ++r) threads.emplace_back(guarded_worker, r);
    for (auto& t : threads) t.join();
  }
  // Every rank joined (guard timeouts bound the wait when a peer died
  // mid-collective); now surface the first failure as a typed error.
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  EpochStats stats;
  stats.steps = steps;
  stats.wall_seconds = wall.seconds();
  double loss_sum = 0.0;
  double cpu_max = 0.0;
  for (int r = 0; r < world; ++r) {
    loss_sum += rank_loss[r];
    cpu_max = std::max(cpu_max, rank_cpu[r]);
  }
  stats.mean_loss = loss_sum / (static_cast<double>(world) * steps);
  stats.allreduce_bytes_per_rank = grad_bytes * steps;
  stats.collective = coll;
  // Serial compute + comm model; the dist_overlap bench layers the
  // pipelined (bucketed, overlapped) simulation on top of this.
  stats.modeled_seconds =
      cpu_max + static_cast<double>(steps) *
                    cfg_.net.collective_seconds(coll, grad_bytes, world);
  return stats;
}

}  // namespace ccovid::dist
