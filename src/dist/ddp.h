// Distributed data-parallel trainer (§4.1).
//
// Mirrors PyTorch DistributedDataParallel over gloo: one model replica
// per "node" (here: thread), independent forward/backward over disjoint
// data shards, gradients synchronized each step, identical Adam updates
// keeping replicas in lock-step.
//
// Gradient synchronization comes in two modes sharing one bit pattern:
//
//  * sequential (overlap=false): backward completes, the flat gradient
//    is reduced in one deterministic collective (dist/collective.h).
//  * overlapped (overlap=true, default): parameters are packed into
//    fixed-size buckets in REVERSE registration order (PyTorch DDP's
//    heuristic — the deepest layers' gradients finalize first). The
//    async backward engine's finalize hook counts down each bucket's
//    outstanding parameters, and the rank thread drains buckets in
//    bucket order, launching each bucket's allreduce while backward is
//    still producing the shallower layers' gradients. The optimizer
//    steps only after every bucket reduced and the backward run
//    finished — there is no partially-synchronized step.
//
// Both modes fold contributions in canonical rank order per element
// (see dist/collective.h), so gradients and post-step weights are
// bitwise identical across overlap on/off, bucket sizes, collective
// algorithms, and task-engine widths — tests/test_golden.cpp pins one
// digest for the whole sweep.
//
// Because this process runs on a single machine, wall time says nothing
// about cluster scaling; the trainer therefore reports *modeled* cluster
// time per epoch: max over ranks of the thread-CPU compute time plus the
// interconnect model's collective cost for the real gradient byte counts
// (Table 3's runtime column). Accuracy effects of batch size are real:
// the trained weights come out of genuine synchronized SGD.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "autograd/optim.h"
#include "dist/collective.h"
#include "dist/comm.h"
#include "dist/interconnect.h"
#include "nn/module.h"

namespace ccovid::dist {

struct DdpConfig {
  int world_size = 1;
  index_t per_worker_batch = 1;
  double lr = 1e-4;           ///< Enhancement AI default (§3.1.1)
  double lr_decay = 0.8;      ///< exponential per-epoch decay (§3.1.1)
  InterconnectModel net;
  /// Transport verification (see dist/comm.h): enabled, transport
  /// faults surface as CommError from train_epoch instead of hanging
  /// the collective or silently desynchronizing replicas.
  GuardOptions guard;
  /// Scan the averaged gradient after each all-reduce and throw a typed
  /// StageError("dist.grad.allreduce") on NaN/Inf — a poisoned gradient
  /// reaches every rank through the sum, so training either converges
  /// or raises; it never silently diverges.
  bool check_finite_grads = false;
  /// Overlap per-bucket allreduce with the still-running backward pass
  /// (see the header comment). Off = reduce once after backward; the
  /// resulting bits are identical either way.
  bool overlap = true;
  /// Gradient bucket budget in bytes (>= one parameter per bucket;
  /// 0 = whole model in a single bucket).
  std::size_t bucket_bytes = 1 << 20;
  /// Allreduce algorithm; kAuto defers to CCOVID_COLLECTIVE and then to
  /// the interconnect cost model (dist/collective.h).
  Collective collective = Collective::kAuto;
};

struct EpochStats {
  double mean_loss = 0.0;        ///< average per-step loss across ranks
  double modeled_seconds = 0.0;  ///< modeled cluster wall time
  double wall_seconds = 0.0;     ///< actual local wall time
  std::uint64_t allreduce_bytes_per_rank = 0;
  index_t steps = 0;
  Collective collective = Collective::kAuto;  ///< resolved algorithm
};

class DdpTrainer {
 public:
  using ModelFactory = std::function<std::shared_ptr<nn::Module>()>;
  /// Builds the loss graph for `model` over the given sample ids.
  /// Called concurrently from different ranks — must only share
  /// read-only state across ranks.
  using LossFn = std::function<autograd::Var(
      nn::Module& model, int rank, const std::vector<index_t>& samples)>;

  DdpTrainer(const ModelFactory& factory, DdpConfig cfg);

  /// One epoch over a dataset of `dataset_size` samples, shuffled with
  /// `rng`. Incomplete trailing global batches are dropped (as
  /// DistributedSampler does).
  EpochStats train_epoch(index_t dataset_size, const LossFn& loss_fn,
                         Rng& rng);

  /// Applies the per-epoch exponential learning-rate decay.
  void decay_lr();

  nn::Module& model(int rank = 0) { return *models_.at(rank); }
  const DdpConfig& config() const { return cfg_; }
  /// Flat gradient length (elements) — the all-reduce payload.
  index_t gradient_elements() const;

  /// One gradient bucket: parameters [param_lo, param_hi) in
  /// registration order, occupying [elem_off, elem_off + elems) of the
  /// flat gradient. Buckets are drained in index order; bucket 0 holds
  /// the LAST-registered (deepest) parameters.
  struct Bucket {
    std::size_t param_lo = 0;
    std::size_t param_hi = 0;
    index_t elem_off = 0;
    index_t elems = 0;
  };
  const std::vector<Bucket>& buckets() const { return buckets_; }

 private:
  void plan_buckets();

  DdpConfig cfg_;
  std::vector<std::shared_ptr<nn::Module>> models_;
  std::vector<std::unique_ptr<autograd::Adam>> optims_;
  std::vector<Bucket> buckets_;
  /// bucket_of_param_[i] = index in buckets_ of parameter i's bucket.
  std::vector<std::size_t> bucket_of_param_;
  World world_;
};

/// Thread CPU time of the calling thread, seconds.
double thread_cpu_seconds();

}  // namespace ccovid::dist
