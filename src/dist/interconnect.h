// Analytical interconnect cost model used to convert the in-process DDP
// run into modeled cluster wall time (Table 3). Parameters default to a
// 10 GbE cluster like Virginia Tech's Infer nodes (T4 GPU per node).
#pragma once

#include <cstdint>

namespace ccovid::dist {

struct InterconnectModel {
  double latency_s = 50e-6;       ///< per-message latency
  double bandwidth_Bps = 1.25e9;  ///< 10 GbE payload bandwidth

  /// Ring all-reduce time for `bytes` across `world` ranks:
  /// 2*(world-1) steps, each moving bytes/world and paying latency.
  double allreduce_seconds(std::uint64_t bytes, int world) const {
    if (world <= 1) return 0.0;
    const double steps = 2.0 * (world - 1);
    const double chunk = static_cast<double>(bytes) / world;
    return steps * (latency_s + chunk / bandwidth_Bps);
  }
};

}  // namespace ccovid::dist
