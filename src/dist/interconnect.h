// Analytical interconnect cost model used to convert the in-process DDP
// run into modeled cluster wall time (Table 3). Parameters default to a
// 10 GbE cluster like Virginia Tech's Infer nodes (T4 GPU per node).
//
// PR 9 added the deterministic collective family (dist/collective.h):
// the model prices each algorithm so `--collective auto` can pick the
// cheapest for a given (bytes, world) point. All three move the raw
// per-rank contributions (that is what makes them bitwise-identical to
// one another — see collective.h), so their byte volumes differ from
// the classic reduce-scatter ring priced by allreduce_seconds():
//
//   ring           (w-1) serial steps, full buffer each step
//   tree           binomial gather + binomial broadcast: 2*ceil(log2 w)
//                  latency terms; the root's inbound volume dominates
//                  the gather and the broadcast ships K tree levels
//   bcast-halving  recursive doubling, K steps with doubling payloads
//                  (power-of-two worlds; otherwise falls back to ring)
#pragma once

#include <cstdint>

namespace ccovid::dist {

/// Allreduce algorithm family. kAuto defers the choice to the
/// CCOVID_COLLECTIVE environment variable and then to
/// InterconnectModel::best_collective (see dist/collective.h).
enum class Collective {
  kAuto,
  kRing,
  kTree,
  kBcastHalving,
};

struct InterconnectModel {
  double latency_s = 50e-6;       ///< per-message latency
  double bandwidth_Bps = 1.25e9;  ///< 10 GbE payload bandwidth

  /// Ring all-reduce time for `bytes` across `world` ranks:
  /// 2*(world-1) steps, each moving bytes/world and paying latency.
  double allreduce_seconds(std::uint64_t bytes, int world) const {
    if (world <= 1) return 0.0;
    const double steps = 2.0 * (world - 1);
    const double chunk = static_cast<double>(bytes) / world;
    return steps * (latency_s + chunk / bandwidth_Bps);
  }

  /// Modeled time of one deterministic allreduce of `bytes` per rank.
  /// kAuto prices as the best concrete algorithm.
  double collective_seconds(Collective c, std::uint64_t bytes,
                            int world) const {
    if (world <= 1) return 0.0;
    const double B = static_cast<double>(bytes);
    const double bw = bandwidth_Bps;
    const int k = ceil_log2(world);
    switch (c) {
      case Collective::kRing:
        return (world - 1) * (latency_s + B / bw);
      case Collective::kTree:
        return 2.0 * k * latency_s + (world - 1 + k) * B / bw;
      case Collective::kBcastHalving:
        if ((world & (world - 1)) != 0) {
          // Non-power-of-two worlds run the ring on the wire too.
          return collective_seconds(Collective::kRing, bytes, world);
        }
        return k * latency_s + (world - 1) * B / bw;
      case Collective::kAuto:
        break;
    }
    return collective_seconds(best_collective(bytes, world), bytes, world);
  }

  /// Cheapest concrete algorithm for this (bytes, world) point. Ties
  /// break toward the earlier enumerator, so the choice is total.
  Collective best_collective(std::uint64_t bytes, int world) const {
    Collective best = Collective::kRing;
    double best_s = collective_seconds(best, bytes, world);
    for (const Collective c : {Collective::kTree, Collective::kBcastHalving}) {
      const double s = collective_seconds(c, bytes, world);
      if (s < best_s) {
        best = c;
        best_s = s;
      }
    }
    return best;
  }

  static int ceil_log2(int n) {
    int k = 0;
    while ((1 << k) < n) ++k;
    return k;
  }
};

}  // namespace ccovid::dist
