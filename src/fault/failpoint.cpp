#include "fault/failpoint.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/tensor.h"
#include "trace/trace.h"

namespace ccovid::fault {

namespace {

// splitmix64 — seed mixing for (registry seed, name) and per-fire seeds.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument(
      "failpoint spec '" + spec + "': " + why +
      " (grammar: trigger once|nth(K)|every(K)|after(K)|times(K)|prob(P), "
      "filter thread(I), action error|abort|delay(D)|corrupt(N)|nan(N)|off, "
      "terms joined by '*')");
}

// Splits "fn(arg)" into fn and arg; arg empty when there are no parens.
bool split_call(const std::string& term, std::string& fn, std::string& arg) {
  const auto open = term.find('(');
  if (open == std::string::npos) {
    fn = term;
    arg.clear();
    return true;
  }
  if (term.back() != ')') return false;
  fn = term.substr(0, open);
  arg = term.substr(open + 1, term.size() - open - 2);
  return !arg.empty();
}

// stod/stoll ignore trailing junk ("5kg" parses as 5); require the
// whole argument to be consumed.
double parse_number(const std::string& spec, const std::string& arg) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(arg, &pos);
    if (pos != arg.size()) {
      bad_spec(spec, "trailing characters in number '" + arg + "'");
    }
    return v;
  } catch (const std::invalid_argument&) {
    bad_spec(spec, "'" + arg + "' is not a number");
  } catch (const std::out_of_range&) {
    bad_spec(spec, "'" + arg + "' is out of range");
  }
}

std::uint64_t parse_count(const std::string& spec, const std::string& arg) {
  const double v = parse_number(spec, arg);
  if (v < 1.0 || v != std::floor(v)) {
    bad_spec(spec, "count '" + arg + "' must be an integer >= 1");
  }
  return static_cast<std::uint64_t>(v);
}

double parse_delay(const std::string& spec, const std::string& arg) {
  double scale = 1.0;
  std::string num = arg;
  if (num.size() > 2 && num.substr(num.size() - 2) == "ms") {
    scale = 1e-3;
    num.resize(num.size() - 2);
  } else if (num.size() > 2 && num.substr(num.size() - 2) == "us") {
    scale = 1e-6;
    num.resize(num.size() - 2);
  } else if (num.size() > 1 && num.back() == 's') {
    num.resize(num.size() - 1);
  }
  const double v = parse_number(spec, num) * scale;
  if (!(v >= 0.0)) bad_spec(spec, "delay '" + arg + "' must be >= 0");
  return v;
}

thread_local int g_thread_ordinal = -1;

}  // namespace

const char* to_string(Action a) {
  switch (a) {
    case Action::kNone: return "none";
    case Action::kError: return "error";
    case Action::kDelay: return "delay";
    case Action::kCorrupt: return "corrupt";
    case Action::kNan: return "nan";
    case Action::kAbort: return "abort";
  }
  return "?";
}

Schedule parse_schedule(const std::string& spec) {
  Schedule s;
  bool have_trigger = false, have_action = false, have_filter = false;

  std::vector<std::string> terms;
  std::string cur;
  for (char c : spec) {
    if (c == '*') {
      terms.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  terms.push_back(cur);

  for (const std::string& term : terms) {
    if (term.empty()) bad_spec(spec, "empty term");
    std::string fn, arg;
    if (!split_call(term, fn, arg)) bad_spec(spec, "malformed term '" + term + "'");

    const bool is_trigger = fn == "once" || fn == "nth" || fn == "every" ||
                            fn == "after" || fn == "times" || fn == "prob";
    const bool is_action = fn == "error" || fn == "abort" || fn == "delay" ||
                           fn == "corrupt" || fn == "nan" || fn == "off";
    if (is_trigger) {
      if (have_trigger) bad_spec(spec, "more than one trigger");
      have_trigger = true;
      if (fn == "once") {
        s.trigger = Schedule::Trigger::kOnce;
      } else if (fn == "prob") {
        s.trigger = Schedule::Trigger::kProb;
        s.p = parse_number(spec, arg);
        if (!(s.p >= 0.0 && s.p <= 1.0))
          bad_spec(spec, "prob argument must be in [0,1]");
      } else {
        s.k = parse_count(spec, arg);
        s.trigger = fn == "nth"     ? Schedule::Trigger::kNth
                    : fn == "every" ? Schedule::Trigger::kEvery
                    : fn == "after" ? Schedule::Trigger::kAfter
                                    : Schedule::Trigger::kTimes;
      }
    } else if (fn == "thread") {
      if (have_filter) bad_spec(spec, "more than one thread filter");
      have_filter = true;
      const double v = parse_number(spec, arg);
      if (v < 0.0 || v != std::floor(v)) {
        bad_spec(spec, "thread ordinal must be an integer >= 0");
      }
      s.thread = static_cast<int>(v);
    } else if (is_action) {
      if (have_action) bad_spec(spec, "more than one action");
      have_action = true;
      if (fn == "error") {
        s.action = Action::kError;
      } else if (fn == "abort") {
        s.action = Action::kAbort;
      } else if (fn == "off") {
        s.action = Action::kNone;
      } else if (fn == "delay") {
        s.action = Action::kDelay;
        s.delay_s = parse_delay(spec, arg);
      } else {
        s.action = fn == "corrupt" ? Action::kCorrupt : Action::kNan;
        s.count = static_cast<std::uint32_t>(parse_count(spec, arg));
      }
    } else {
      bad_spec(spec, "unknown term '" + term + "'");
    }
  }
  return s;
}

// ------------------------------------------------------------ Failpoint

Fired Failpoint::eval() {
  Fired f;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_;
    if (!armed_ || sched_.action == Action::kNone) return f;
    if (sched_.thread >= 0 && thread_ordinal() != sched_.thread) return f;
    ++eligible_;

    bool fire = false;
    switch (sched_.trigger) {
      case Schedule::Trigger::kAlways:
        fire = true;
        break;
      case Schedule::Trigger::kOnce:
        fire = true;
        break;
      case Schedule::Trigger::kNth:
        fire = eligible_ == sched_.k;
        break;
      case Schedule::Trigger::kEvery:
        fire = eligible_ % sched_.k == 0;
        break;
      case Schedule::Trigger::kAfter:
        fire = eligible_ > sched_.k;
        break;
      case Schedule::Trigger::kTimes:
        fire = fires_ < sched_.k;
        break;
      case Schedule::Trigger::kProb:
        // One draw per eligible hit keeps the stream aligned with the
        // hit sequence, so identical hit orders reproduce identical
        // fire patterns for a given seed.
        fire = rng_.uniform() < sched_.p;
        break;
    }
    if (!fire) {
      // nth(K) with eligible_ > K can never fire again; disarm so the
      // armed fast path goes quiet.
      if (sched_.trigger == Schedule::Trigger::kNth && eligible_ > sched_.k &&
          disarm_locked()) {
        Registry::armed_count_.fetch_sub(1);
      }
      return f;
    }

    ++fires_;
    f.action = sched_.action;
    f.delay_s = sched_.delay_s;
    f.count = sched_.count;
    f.seed = mix64(arm_seed_ ^ mix64(fires_));
    const bool done =
        sched_.one_shot() ||
        (sched_.trigger == Schedule::Trigger::kTimes && fires_ >= sched_.k);
    if (done && disarm_locked()) Registry::armed_count_.fetch_sub(1);
  }
  // Fires show up in traces as instants named after the site, carrying
  // the per-fire seed as the correlation id — chaos runs can match every
  // injected fault to the request/rank timeline it landed in. name_ is
  // never destroyed (failpoints leak by design), so c_str() is a valid
  // trace name.
  if (f) TRACE_INSTANT_ID(name_.c_str(), f.seed);
  // Side-effect actions run outside the lock so stalled threads don't
  // serialize other failpoint evaluations.
  if (f.action == Action::kDelay && f.delay_s > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(f.delay_s));
  } else if (f.action == Action::kAbort) {
    std::abort();
  }
  return f;
}

std::uint64_t Failpoint::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t Failpoint::fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fires_;
}

bool Failpoint::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return armed_;
}

void Failpoint::arm_locked(const Schedule& s, std::uint64_t registry_seed) {
  sched_ = s;
  armed_ = s.action != Action::kNone;
  eligible_ = 0;
  fires_ = 0;
  arm_seed_ = mix64(registry_seed ^ hash_name(name_));
  rng_ = Rng(arm_seed_);
}

bool Failpoint::disarm_locked() {
  const bool was = armed_;
  armed_ = false;
  return was;
}

// ------------------------------------------------------------- Registry

std::atomic<int> Registry::armed_count_{0};

Registry& Registry::instance() {
  static Registry* r = new Registry();  // leaked: outlives static call sites
  return *r;
}

Failpoint& Registry::handle(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = points_[name];
  if (!slot) slot = std::make_unique<Failpoint>(name);
  return *slot;
}

void Registry::arm(const std::string& name, const std::string& spec) {
  const Schedule s = parse_schedule(spec);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = points_[name];
  if (!slot) slot = std::make_unique<Failpoint>(name);
  std::lock_guard<std::mutex> fp_lock(slot->mu_);
  const bool was = slot->armed_;
  slot->arm_locked(s, seed_);
  if (slot->armed_ && !was) armed_count_.fetch_add(1);
  if (!slot->armed_ && was) armed_count_.fetch_sub(1);
}

int Registry::configure(const std::string& specs) {
  int applied = 0;
  std::string entry;
  std::stringstream ss(specs);
  while (std::getline(ss, entry, ';')) {
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("failpoint entry '" + entry +
                                  "' is not name=spec");
    }
    arm(entry.substr(0, eq), entry.substr(eq + 1));
    ++applied;
  }
  return applied;
}

void Registry::disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) return;
  std::lock_guard<std::mutex> fp_lock(it->second->mu_);
  if (it->second->disarm_locked()) armed_count_.fetch_sub(1);
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, fp] : points_) {
    std::lock_guard<std::mutex> fp_lock(fp->mu_);
    if (fp->disarm_locked()) armed_count_.fetch_sub(1);
    fp->hits_ = 0;
    fp->eligible_ = 0;
    fp->fires_ = 0;
  }
}

void Registry::set_seed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

std::uint64_t Registry::seed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seed_;
}

std::vector<Registry::Counter> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Counter> out;
  for (const auto& [name, fp] : points_) {
    std::lock_guard<std::mutex> fp_lock(fp->mu_);
    if (fp->hits_ == 0 && !fp->armed_) continue;
    out.push_back({name, fp->hits_, fp->fires_, fp->armed_});
  }
  return out;
}

std::string Registry::json() const {
  const auto cs = counters();
  std::string out = "{";
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (i) out += ",";
    out += "\"" + cs[i].name + "\":{\"hits\":" + std::to_string(cs[i].hits) +
           ",\"fires\":" + std::to_string(cs[i].fires) +
           ",\"armed\":" + (cs[i].armed ? "true" : "false") + "}";
  }
  out += "}";
  return out;
}

// ------------------------------------------------------ thread ordinals

int thread_ordinal() { return g_thread_ordinal; }

ScopedThreadOrdinal::ScopedThreadOrdinal(int ordinal) : prev_(g_thread_ordinal) {
  g_thread_ordinal = ordinal;
}

ScopedThreadOrdinal::~ScopedThreadOrdinal() { g_thread_ordinal = prev_; }

// ------------------------------------------------- injection utilities

void corrupt_bytes(void* data, std::size_t size, std::uint64_t seed,
                   std::uint32_t n) {
  if (data == nullptr || size == 0) return;
  auto* bytes = static_cast<unsigned char*>(data);
  std::uint64_t x = seed;
  for (std::uint32_t i = 0; i < n; ++i) {
    x = mix64(x);
    const std::size_t pos = static_cast<std::size_t>(x % size);
    const unsigned bit = static_cast<unsigned>((x >> 32) & 7u);
    bytes[pos] ^= static_cast<unsigned char>(1u << bit);
  }
}

void inject_nonfinite(real_t* data, std::size_t count, std::uint64_t seed,
                      std::uint32_t n) {
  if (data == nullptr || count == 0) return;
  static const real_t kPoison[3] = {
      std::numeric_limits<real_t>::quiet_NaN(),
      std::numeric_limits<real_t>::infinity(),
      -std::numeric_limits<real_t>::infinity()};
  std::uint64_t x = seed;
  for (std::uint32_t i = 0; i < n; ++i) {
    x = mix64(x);
    data[static_cast<std::size_t>(x % count)] = kPoison[(x >> 32) % 3];
  }
}

void inject_nonfinite(Tensor& t, std::uint64_t seed, std::uint32_t n) {
  inject_nonfinite(t.data(), static_cast<std::size_t>(t.numel()), seed, n);
}

}  // namespace ccovid::fault
