// Deterministic fault-injection (failpoint) subsystem.
//
// A failpoint is a named hook compiled into a hot path:
//
//   CCOVID_FAILPOINT("serve.batcher.flush");            // side effects only
//   if (auto f = CCOVID_FAILPOINT_FIRED("serve.queue.admit")) { ... }
//
// Disabled cost: one relaxed atomic load of a global armed counter — no
// lock, no map lookup, no allocation (the registry handle is resolved
// once per call site and cached in a function-local static, and only
// ever resolved while at least one failpoint is armed). Compiling with
// -DCCOVID_DISABLE_FAILPOINTS removes the hooks entirely (macros expand
// to nothing), for builds that must not carry even the atomic load.
//
// Failpoints are armed with seed-driven *schedules* parsed from a spec
// string (CLI flag `--failpoints`, or Registry::configure in tests):
//
//   name=spec[;name=spec...]
//   spec    := term ('*' term)*          one optional trigger, one
//                                        optional thread filter, at most
//                                        one action (default: error)
//   trigger := once | nth(K) | every(K) | after(K) | times(K) | prob(P)
//   filter  := thread(I)                 only fires on the thread whose
//                                        ScopedThreadOrdinal == I
//   action  := error | abort | delay(D) | corrupt(N) | nan(N) | off
//   D       := float suffixed s|ms|us    e.g. delay(30ms)
//
// Examples:
//   serve.queue.admit=prob(0.3)*error
//   serve.worker.exec=nth(2)*delay(50ms)
//   dist.rank.straggler=thread(1)*every(2)*delay(10ms)
//   pipeline.enhance.output=every(1)*nan(4)
//
// Determinism: probabilistic triggers draw from a PRNG seeded from
// (registry seed, failpoint name) at arm time and advanced once per
// eligible hit, and every fire carries a per-fire `seed` derived from
// (arm seed, fire index) — so a given schedule seed reproduces the same
// fault sequence, byte corruptions included, on every run. `once` and
// `nth` are one-shot (disarm after firing); the other triggers are
// sticky. Naming convention: `layer.component.event`, matching the
// stage names used by StageError (core/finite.h).
//
// Actions `delay` and `abort` execute inline inside eval(); `error`,
// `corrupt`, and `nan` are returned to the call site, which interprets
// them (inject an error return, damage a payload via corrupt_bytes(),
// poison a tensor via inject_nonfinite()).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/random.h"

namespace ccovid {
class Tensor;
}

namespace ccovid::fault {

enum class Action : std::uint8_t {
  kNone,     ///< not fired
  kError,    ///< call site should take its failure path
  kDelay,    ///< stall (already slept inside eval())
  kCorrupt,  ///< call site should corrupt `count` payload bytes
  kNan,      ///< call site should poison `count` tensor elements
  kAbort,    ///< std::abort() (executed inside eval())
};

const char* to_string(Action a);

/// Result of evaluating a failpoint: empty (action == kNone) when the
/// failpoint is disarmed or its trigger did not fire.
struct Fired {
  Action action = Action::kNone;
  double delay_s = 0.0;      ///< delay actions: stall already applied
  std::uint64_t seed = 0;    ///< deterministic per-fire seed
  std::uint32_t count = 1;   ///< corrupt(N) bytes / nan(N) elements
  explicit operator bool() const { return action != Action::kNone; }
};

/// Parsed schedule (see the grammar above).
struct Schedule {
  enum class Trigger : std::uint8_t {
    kAlways,
    kOnce,
    kNth,
    kEvery,
    kAfter,
    kTimes,
    kProb,
  };
  Trigger trigger = Trigger::kAlways;
  std::uint64_t k = 1;     ///< nth/every/after/times argument
  double p = 1.0;          ///< prob argument
  int thread = -1;         ///< -1 = any thread; else required ordinal
  Action action = Action::kError;
  double delay_s = 0.0;
  std::uint32_t count = 1;

  bool one_shot() const {
    return trigger == Trigger::kOnce || trigger == Trigger::kNth;
  }
};

/// Parses one spec (the part after `name=`). Throws std::invalid_argument
/// with a grammar hint on malformed input.
Schedule parse_schedule(const std::string& spec);

class Registry;

/// One named failpoint. Created on first arm/hit, never destroyed (call
/// sites cache a reference), counters survive disarm so injected faults
/// remain attributable after the schedule completes.
class Failpoint {
 public:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}
  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  /// Hot path (reached only while >= 1 failpoint is armed): counts the
  /// hit, applies the schedule, performs delay/abort inline, returns the
  /// action for the call site to interpret.
  Fired eval();

  const std::string& name() const { return name_; }
  std::uint64_t hits() const;
  std::uint64_t fires() const;
  bool armed() const;

 private:
  friend class Registry;
  void arm_locked(const Schedule& s, std::uint64_t registry_seed);
  bool disarm_locked();  ///< returns true if it was armed

  const std::string name_;
  mutable std::mutex mu_;
  Schedule sched_;
  bool armed_ = false;
  std::uint64_t hits_ = 0;      ///< every eval()
  std::uint64_t eligible_ = 0;  ///< evals passing the thread filter, armed
  std::uint64_t fires_ = 0;
  std::uint64_t arm_seed_ = 0;
  Rng rng_{0};  ///< prob-trigger stream, reseeded at arm time
};

/// Process-global failpoint registry.
class Registry {
 public:
  static Registry& instance();

  /// True while at least one failpoint is armed — the only check on the
  /// disabled hot path.
  static bool any_armed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Call-site handle (creates the failpoint on demand). The returned
  /// reference is stable for the process lifetime.
  Failpoint& handle(const char* name);

  /// Arms `name` with `spec` (grammar above). `off` disarms. Throws
  /// std::invalid_argument on parse errors.
  void arm(const std::string& name, const std::string& spec);

  /// Arms every `name=spec` entry of a ';'-separated list (the
  /// `--failpoints` CLI payload). Returns the number of entries applied.
  int configure(const std::string& specs);

  void disarm(const std::string& name);

  /// Disarms everything and zeroes all counters. Failpoint objects (and
  /// cached call-site references) stay valid.
  void reset();

  /// Schedule seed mixed into every armed failpoint's PRNG and per-fire
  /// seeds. Applies to subsequent arm() calls.
  void set_seed(std::uint64_t seed);
  std::uint64_t seed() const;

  struct Counter {
    std::string name;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    bool armed = false;
  };
  /// Snapshot of every failpoint that is armed or has been hit.
  std::vector<Counter> counters() const;

  /// {"name":{"hits":H,"fires":F,"armed":B},...} over counters(); "{}"
  /// when nothing was armed or hit — callers splice this into stats
  /// JSON so injected failures stay distinguishable from organic ones.
  std::string json() const;

 private:
  Registry() = default;
  friend class Failpoint;
  static std::atomic<int> armed_count_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Failpoint>> points_;
  std::uint64_t seed_ = 0x5eedfa11u;
};

// ------------------------------------------------------ thread ordinals

/// Deterministic thread identity for `thread(I)` filters: serve workers
/// register their worker index, DDP ranks their rank. -1 when unset.
int thread_ordinal();

class ScopedThreadOrdinal {
 public:
  explicit ScopedThreadOrdinal(int ordinal);
  ~ScopedThreadOrdinal();
  ScopedThreadOrdinal(const ScopedThreadOrdinal&) = delete;
  ScopedThreadOrdinal& operator=(const ScopedThreadOrdinal&) = delete;

 private:
  int prev_;
};

// ------------------------------------------------- injection utilities

/// Deterministically flips one bit in each of `n` bytes of `data`
/// chosen by `seed` (positions and bit indices from a splitmix64
/// stream). No-op on empty buffers.
void corrupt_bytes(void* data, std::size_t size, std::uint64_t seed,
                   std::uint32_t n);

/// Sets `n` elements (positions chosen by `seed`) to NaN / +-Inf.
void inject_nonfinite(real_t* data, std::size_t count, std::uint64_t seed,
                      std::uint32_t n);
void inject_nonfinite(Tensor& t, std::uint64_t seed, std::uint32_t n);

/// True when failpoint hooks are compiled in (i.e. the translation unit
/// observing this value was built without CCOVID_DISABLE_FAILPOINTS).
#ifdef CCOVID_DISABLE_FAILPOINTS
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

}  // namespace ccovid::fault

// ------------------------------------------------------------- macros

#ifdef CCOVID_DISABLE_FAILPOINTS

#define CCOVID_FAILPOINT_FIRED(name) (::ccovid::fault::Fired{})
#define CCOVID_FAILPOINT(name) \
  do {                         \
  } while (0)

#else

/// Expression yielding fault::Fired. `name` must be a string literal;
/// the registry handle is resolved once per call site and cached.
#define CCOVID_FAILPOINT_FIRED(name)                                  \
  (::ccovid::fault::Registry::any_armed()                             \
       ? ([]() -> ::ccovid::fault::Failpoint& {                       \
           static ::ccovid::fault::Failpoint& ccovid_fp_ =            \
               ::ccovid::fault::Registry::instance().handle(name);    \
           return ccovid_fp_;                                         \
         }())                                                         \
             .eval()                                                  \
       : ::ccovid::fault::Fired{})

/// Statement form: delay/abort actions execute inline, everything else
/// is ignored. Use for pure stall/crash sites.
#define CCOVID_FAILPOINT(name)                  \
  do {                                          \
    (void)CCOVID_FAILPOINT_FIRED(name);         \
  } while (0)

#endif  // CCOVID_DISABLE_FAILPOINTS
