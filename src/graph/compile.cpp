// Graph compiler + executor: fusion pass, liveness-based slab planning,
// and the flat-step interpreter (DESIGN.md §12). The executed math is
// intentionally the SAME kernel calls the ops make — see graph.h for
// the bitwise contract and the legality notes inline below.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/arena.h"
#include "core/parallel.h"
#include "core/simd.h"
#include "graph/graph.h"
#include "trace/trace.h"

namespace ccovid::graph {

namespace {

/// One executed step after fusion. `kind` keeps the producing op's
/// OpKind; fusion is expressed through the epilogue fields:
///   conv/deconv + has_affine(+act): the conv→bn(→act) chain collapsed
///     into one plane pass (rows, then scale_shift_act in place);
///   kBatchNorm + act: a bn→act chain collapsed into one eltwise pass.
struct Step {
  OpKind kind = OpKind::kInput;
  int out_node = -1;          ///< node id whose value this step defines
  std::vector<int> in_nodes;  ///< original producer ids
  ValueShape out_shape, in_shape;

  // conv / deconv.
  Tensor weight;
  std::vector<real_t> bias;  ///< hoisted (Cout) — zeros when bias-less
  index_t k = 0, pad = 0;

  // Hoisted batch-norm epilogue constants (batch_norm_infer's exact
  // per-channel floats) + activation: 0 none, 1 relu, 2 leaky.
  bool has_affine = false;
  std::vector<real_t> scale, shift;
  int act = 0;
  real_t slope = 0.0f;

  // Pool / unpool constants.
  ops::Pool2dParams pool{};
  std::vector<ops::Lerp> ly, lx;

  // Concat: channel count per input, in input order.
  std::vector<index_t> concat_c;
};

int act_code(OpKind k) {
  return k == OpKind::kRelu ? 1 : k == OpKind::kLeakyRelu ? 2 : 0;
}

/// batch_norm_infer's per-channel constants, expression for expression
/// (real_t arithmetic; see ops/batchnorm.cpp).
void hoist_bn_constants(const Node& bn, std::vector<real_t>* scale,
                        std::vector<real_t>* shift) {
  const index_t c = bn.gamma.dim(0);
  scale->resize(size_t(c));
  shift->resize(size_t(c));
  const real_t* gp = bn.gamma.data();
  const real_t* bp = bn.beta.data();
  const real_t* mp = bn.mean.data();
  const real_t* vp = bn.var.data();
  for (index_t i = 0; i < c; ++i) {
    const real_t inv_std = 1.0f / std::sqrt(vp[i] + bn.eps);
    const real_t s = gp[i] * inv_std;
    (*scale)[size_t(i)] = s;
    (*shift)[size_t(i)] = bp[i] - s * mp[i];
  }
}

std::vector<real_t> hoist_bias(const Tensor& bias, index_t cout) {
  std::vector<real_t> out(size_t(cout), 0.0f);
  if (bias.defined()) {
    std::memcpy(out.data(), bias.data(),
                size_t(cout) * sizeof(real_t));
  }
  return out;
}

// Value locations (CompiledGraph::Impl::value_loc).
constexpr int kLocDead = -3;    ///< absorbed into a fused step
constexpr int kLocInput = -2;   ///< the graph input tensor
constexpr int kLocOutput = -1;  ///< the run() output tensor

}  // namespace

struct CompiledGraph::Impl {
  ValueShape in_shape, out_shape;
  int out_node = -1;
  std::vector<Step> steps;
  std::vector<int> value_loc;       ///< per node id
  std::vector<index_t> slab_sizes;  ///< floats per slab
  Stats stats;
  std::vector<BufferPlan> plans;
};

CompiledGraph::CompiledGraph(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
CompiledGraph::CompiledGraph(CompiledGraph&&) noexcept = default;
CompiledGraph& CompiledGraph::operator=(CompiledGraph&&) noexcept = default;
CompiledGraph::~CompiledGraph() = default;

const CompiledGraph::Stats& CompiledGraph::stats() const {
  return impl_->stats;
}
const std::vector<BufferPlan>& CompiledGraph::plan() const {
  return impl_->plans;
}

namespace {

/// Fusion walk. Emits one Step per surviving node in schedule order.
/// Legality (see graph.h): a bn is absorbed into its producing conv /
/// deconv only when it is that conv's sole consumer and the conv is not
/// the graph output; an activation is absorbed only behind an affine
/// epilogue (bn), under the same sole-consumer / non-output rule.
/// A conv WITHOUT a bn never absorbs an activation: pushing x through
/// the identity affine (madd) turns -0 into +0, which would break
/// bitwise parity with the standalone leaky_relu kernel.
std::vector<Step> fuse_steps(const Graph& g, bool fuse, int* fused_away) {
  TRACE_SPAN("graph.fuse");
  const auto order = g.schedule();
  const auto cons = g.consumers();
  std::vector<char> absorbed(size_t(g.num_nodes()), 0);
  std::vector<Step> steps;
  *fused_away = 0;

  const auto sole_consumer = [&](int id) -> const Node* {
    if (cons[size_t(id)].size() != 1 || id == g.output()) return nullptr;
    return &g.node(cons[size_t(id)][0]);
  };

  for (int id : order) {
    if (absorbed[size_t(id)]) continue;
    const Node& n = g.node(id);
    if (n.kind == OpKind::kInput) continue;

    Step s;
    s.kind = n.kind;
    s.out_node = id;
    s.in_nodes = n.inputs;
    s.out_shape = n.shape;
    s.in_shape = g.node(n.inputs.empty() ? id : n.inputs[0]).shape;

    switch (n.kind) {
      case OpKind::kConv2d:
      case OpKind::kDeconv2d: {
        s.weight = n.weight;
        s.k = n.ksize;
        s.pad = n.pad;
        s.bias = hoist_bias(n.bias, n.shape.c);
        if (fuse) {
          const Node* bn = sole_consumer(id);
          if (bn && bn->kind == OpKind::kBatchNorm) {
            hoist_bn_constants(*bn, &s.scale, &s.shift);
            s.has_affine = true;
            absorbed[size_t(bn->id)] = 1;
            ++*fused_away;
            s.out_node = bn->id;
            s.out_shape = bn->shape;
            const Node* a = sole_consumer(bn->id);
            if (a && (a->kind == OpKind::kRelu ||
                      a->kind == OpKind::kLeakyRelu)) {
              s.act = act_code(a->kind);
              s.slope = a->slope;
              absorbed[size_t(a->id)] = 1;
              ++*fused_away;
              s.out_node = a->id;
              s.out_shape = a->shape;
            }
          }
        }
        break;
      }
      case OpKind::kBatchNorm: {
        hoist_bn_constants(n, &s.scale, &s.shift);
        s.has_affine = true;
        if (fuse) {
          const Node* a = sole_consumer(id);
          if (a &&
              (a->kind == OpKind::kRelu || a->kind == OpKind::kLeakyRelu)) {
            s.act = act_code(a->kind);
            s.slope = a->slope;
            absorbed[size_t(a->id)] = 1;
            ++*fused_away;
            s.out_node = a->id;
            s.out_shape = a->shape;
          }
        }
        break;
      }
      case OpKind::kRelu:
      case OpKind::kLeakyRelu:
        s.act = act_code(n.kind);
        s.slope = n.slope;
        break;
      case OpKind::kMaxPool:
        s.pool = n.pool;
        break;
      case OpKind::kUnpool: {
        // Hoisted interpolation tables (the per-call table build the
        // op pays is one of the wins the alloc-flatness test pins).
        const ValueShape& in = s.in_shape;
        s.ly.reserve(size_t(s.out_shape.h));
        for (index_t o = 0; o < s.out_shape.h; ++o) {
          s.ly.push_back(ops::unpool_lerp(o, n.scale, in.h));
        }
        s.lx.reserve(size_t(s.out_shape.w));
        for (index_t o = 0; o < s.out_shape.w; ++o) {
          s.lx.push_back(ops::unpool_lerp(o, n.scale, in.w));
        }
        break;
      }
      case OpKind::kConcat:
        s.concat_c.reserve(n.inputs.size());
        for (int in : n.inputs) {
          s.concat_c.push_back(g.node(in).shape.c);
        }
        break;
      case OpKind::kAdd:
        break;
      case OpKind::kInput:
        break;
    }
    steps.push_back(std::move(s));
  }
  return steps;
}

/// Greedy liveness-based slab assignment in step order. A value's slab
/// is freed only AFTER its last reader's output got a slab, so a step
/// never writes the buffer it is reading (the kernels rely on that:
/// all non-epilogue paths are restrict-qualified). The fused epilogue
/// is the one deliberate in-place pass and touches only the step's own
/// output slab.
void plan_buffers(const Graph& g, const std::vector<Step>& steps,
                  int out_node, std::vector<int>* value_loc,
                  std::vector<index_t>* slab_sizes,
                  std::vector<BufferPlan>* plans) {
  TRACE_SPAN("graph.plan");
  value_loc->assign(size_t(g.num_nodes()), kLocDead);
  (*value_loc)[0] = kLocInput;

  std::vector<int> last_use(size_t(g.num_nodes()), -1);
  for (int si = 0; si < int(steps.size()); ++si) {
    for (int in : steps[size_t(si)].in_nodes) {
      last_use[size_t(in)] = si;
    }
  }

  plans->push_back(BufferPlan{0, -1, g.input_shape().numel(), -1,
                              last_use[0]});

  std::vector<char> slab_free;
  for (int si = 0; si < int(steps.size()); ++si) {
    const Step& s = steps[size_t(si)];
    const index_t need = s.out_shape.numel();
    int loc;
    if (s.out_node == out_node) {
      loc = kLocOutput;
    } else {
      // Best fit: smallest free slab that holds the value; otherwise
      // grow the largest free slab; otherwise open a new one.
      int best = -1, largest = -1;
      for (int i = 0; i < int(slab_sizes->size()); ++i) {
        if (!slab_free[size_t(i)]) continue;
        if ((*slab_sizes)[size_t(i)] >= need &&
            (best < 0 ||
             (*slab_sizes)[size_t(i)] < (*slab_sizes)[size_t(best)])) {
          best = i;
        }
        if (largest < 0 ||
            (*slab_sizes)[size_t(i)] > (*slab_sizes)[size_t(largest)]) {
          largest = i;
        }
      }
      if (best < 0 && largest >= 0) {
        best = largest;
        (*slab_sizes)[size_t(best)] = need;
      }
      if (best < 0) {
        best = int(slab_sizes->size());
        slab_sizes->push_back(need);
        slab_free.push_back(0);
      }
      slab_free[size_t(best)] = 0;
      loc = best;
    }
    (*value_loc)[size_t(s.out_node)] = loc;
    plans->push_back(BufferPlan{s.out_node, loc < 0 ? -1 : loc, need, si,
                                std::max(last_use[size_t(s.out_node)], si)});
    for (int in : s.in_nodes) {
      const int in_loc = (*value_loc)[size_t(in)];
      if (in_loc >= 0 && last_use[size_t(in)] == si) {
        slab_free[size_t(in_loc)] = 1;
      }
    }
  }
}

}  // namespace

CompiledGraph compile(const Graph& g, const CompileOptions& opt) {
  TRACE_SPAN("graph.compile");
  auto impl = std::make_unique<CompiledGraph::Impl>();
  impl->in_shape = g.input_shape();
  impl->out_node = g.output();
  impl->out_shape = g.node(impl->out_node).shape;

  int fused_away = 0;
  impl->steps = fuse_steps(g, opt.fuse, &fused_away);
  plan_buffers(g, impl->steps, impl->out_node, &impl->value_loc,
               &impl->slab_sizes, &impl->plans);

  impl->stats.steps = int(impl->steps.size());
  impl->stats.fused_away = fused_away;
  impl->stats.slabs = int(impl->slab_sizes.size());
  impl->stats.slab_floats = 0;
  for (index_t f : impl->slab_sizes) impl->stats.slab_floats += f;
  return CompiledGraph(std::move(impl));
}

Tensor CompiledGraph::run(const Tensor& input) const {
  TRACE_SPAN("graph.run");
  const Impl& im = *impl_;
  if (input.rank() != 4 || input.dim(0) != im.in_shape.n ||
      input.dim(1) != im.in_shape.c || input.dim(2) != im.in_shape.h ||
      input.dim(3) != im.in_shape.w) {
    throw std::invalid_argument("graph.run: input shape " +
                                input.shape().str() + " != captured " +
                                im.in_shape.str());
  }
  if (im.steps.empty() || im.out_node == 0) return input.clone();

  Tensor out({im.out_shape.n, im.out_shape.c, im.out_shape.h,
              im.out_shape.w});
  const real_t* in_data = input.data();
  real_t* out_data = out.data();

  // All intermediates live in this thread's arena for the duration of
  // the call; concurrent run() callers therefore never share buffers.
  ArenaScope scope;
  std::vector<real_t*> slab(im.slab_sizes.size());
  for (size_t i = 0; i < im.slab_sizes.size(); ++i) {
    slab[i] = scope.alloc_floats(im.slab_sizes[i]);
  }
  const auto ptr = [&](int node) -> real_t* {
    const int loc = im.value_loc[size_t(node)];
    if (loc == kLocInput) return const_cast<real_t*>(in_data);
    if (loc == kLocOutput) return out_data;
    return slab[size_t(loc)];
  };

  const simd::KernelTable& kt = simd::kernels();

  for (const Step& s : im.steps) {
    real_t* dst = ptr(s.out_node);
    switch (s.kind) {
      case OpKind::kConv2d:
      case OpKind::kDeconv2d: {
        TRACE_SPAN_V("graph.step.conv");
        const bool deconv = s.kind == OpKind::kDeconv2d;
        const real_t* src = ptr(s.in_nodes[0]);
        const real_t* wp = s.weight.data();
        const ValueShape in = s.in_shape, o = s.out_shape;
        const index_t cin = in.c, cout = o.c, k = s.k, pad = s.pad;
        const index_t spatial = o.h * o.w;
        // Output channels run in groups of four through the quad row
        // kernels: four independent accumulator chains share every
        // input-row load, which both hides FMA latency and quarters
        // the input traffic. Each chain replays the single-channel
        // (ci, ky, kx) tap order, so results stay bitwise identical to
        // ops::conv2d / ops::deconv2d at any group split.
        const index_t ngroups = (cout + 3) / 4;
        parallel_for(
            0, o.n * ngroups,
            [&](index_t job) {
              const index_t ni = job / ngroups;
              const index_t co0 = (job % ngroups) * 4;
              const int nco = int(std::min<index_t>(4, cout - co0));
              const real_t* in_n = src + ni * cin * in.h * in.w;
              real_t* out_p = dst + (ni * cout + co0) * spatial;
              const real_t* bias_p = s.bias.data() + co0;
              if (deconv) {
                for (index_t oy = 0; oy < o.h; ++oy) {
                  kt.deconv2d_row4_s1(in_n, wp + co0 * k * k, cout * k * k,
                                      k * k, out_p + oy * o.w, spatial, nco,
                                      cin, in.h, in.w, k, oy, pad, o.w,
                                      bias_p);
                }
              } else {
                for (index_t oy = 0; oy < o.h; ++oy) {
                  kt.conv2d_row4_s1(in_n, wp + co0 * cin * k * k, k * k,
                                    cin * k * k, out_p + oy * o.w, spatial,
                                    nco, cin, in.h, in.w, k, oy, pad, o.w,
                                    bias_p);
                }
              }
              if (s.has_affine) {
                // The fused epilogue: bn (+ activation) applied in
                // place on planes that are still cache-hot.
                for (int j = 0; j < nco; ++j) {
                  kt.scale_shift_act(out_p + j * spatial,
                                     out_p + j * spatial, spatial,
                                     s.scale[size_t(co0 + j)],
                                     s.shift[size_t(co0 + j)], s.act,
                                     s.slope);
                }
              }
            },
            /*grain=*/1);
        break;
      }
      case OpKind::kBatchNorm: {
        TRACE_SPAN_V("graph.step.bn");
        const real_t* src = ptr(s.in_nodes[0]);
        const ValueShape o = s.out_shape;
        const index_t spatial = o.h * o.w;
        parallel_for(
            0, o.n * o.c,
            [&](index_t plane) {
              const index_t c = plane % o.c;
              // act == 0 keeps batch_norm_infer's exact kernel; with a
              // fused activation the combined kernel applies the same
              // two per-element expressions in one pass.
              if (s.act == 0) {
                kt.scale_shift(src + plane * spatial, dst + plane * spatial,
                               spatial, s.scale[size_t(c)],
                               s.shift[size_t(c)]);
              } else {
                kt.scale_shift_act(src + plane * spatial,
                                   dst + plane * spatial, spatial,
                                   s.scale[size_t(c)], s.shift[size_t(c)],
                                   s.act, s.slope);
              }
            },
            /*grain=*/1);
        break;
      }
      case OpKind::kRelu:
      case OpKind::kLeakyRelu: {
        TRACE_SPAN_V("graph.step.act");
        // Standalone activation: the op's own kernel (NOT the affine
        // epilogue — an identity madd would flip the sign of -0).
        const real_t* src = ptr(s.in_nodes[0]);
        const index_t total = s.out_shape.numel();
        parallel_for_blocked(
            0, total,
            [&](index_t lo, index_t hi) {
              if (s.act == 1) {
                kt.relu(src + lo, dst + lo, hi - lo);
              } else {
                kt.leaky_relu(src + lo, dst + lo, hi - lo, s.slope);
              }
            },
            /*grain=*/1 << 16);
        break;
      }
      case OpKind::kMaxPool: {
        TRACE_SPAN_V("graph.step.pool");
        const real_t* src = ptr(s.in_nodes[0]);
        const ValueShape in = s.in_shape, o = s.out_shape;
        parallel_for(
            0, o.n * o.c,
            [&](index_t plane) {
              ops::max_pool2d_plane(src + plane * in.h * in.w,
                                    dst + plane * o.h * o.w,
                                    /*arg_p=*/nullptr, in.h, in.w, o.h,
                                    o.w, s.pool);
            },
            /*grain=*/1);
        break;
      }
      case OpKind::kUnpool: {
        TRACE_SPAN_V("graph.step.unpool");
        const real_t* src = ptr(s.in_nodes[0]);
        const ValueShape in = s.in_shape, o = s.out_shape;
        parallel_for(
            0, o.n * o.c,
            [&](index_t plane) {
              ops::unpool2d_bilinear_plane(src + plane * in.h * in.w,
                                           dst + plane * o.h * o.w, in.w,
                                           o.h, o.w, s.ly.data(),
                                           s.lx.data());
            },
            /*grain=*/1);
        break;
      }
      case OpKind::kConcat: {
        TRACE_SPAN_V("graph.step.concat");
        const ValueShape o = s.out_shape;
        const index_t hw = o.h * o.w;
        index_t c_off = 0;
        for (size_t j = 0; j < s.in_nodes.size(); ++j) {
          const real_t* src = ptr(s.in_nodes[j]);
          const index_t chan = s.concat_c[j];
          for (index_t ni = 0; ni < o.n; ++ni) {
            std::memcpy(dst + (ni * o.c + c_off) * hw,
                        src + ni * chan * hw,
                        size_t(chan * hw) * sizeof(real_t));
          }
          c_off += chan;
        }
        break;
      }
      case OpKind::kAdd: {
        TRACE_SPAN_V("graph.step.add");
        const real_t* a = ptr(s.in_nodes[0]);
        const real_t* b = ptr(s.in_nodes[1]);
        parallel_for_blocked(
            0, s.out_shape.numel(),
            [&](index_t lo, index_t hi) {
              for (index_t i = lo; i < hi; ++i) dst[i] = a[i] + b[i];
            },
            /*grain=*/1 << 16);
        break;
      }
      case OpKind::kInput:
        break;
    }
  }
  return out;
}

}  // namespace ccovid::graph
