// Graph compiler + executor: fusion pass, liveness-based slab planning,
// and the flat-step interpreter (DESIGN.md §12). The executed math is
// intentionally the SAME kernel calls the ops make — see graph.h for
// the bitwise contract and the legality notes inline below.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/arena.h"
#include "core/half.h"
#include "core/parallel.h"
#include "core/precision.h"
#include "core/simd.h"
#include "graph/graph.h"
#include "trace/trace.h"

namespace ccovid::graph {

namespace {

/// One executed step after fusion. `kind` keeps the producing op's
/// OpKind; fusion is expressed through the epilogue fields:
///   conv/deconv + has_affine(+act): the conv→bn(→act) chain collapsed
///     into one plane pass (rows, then scale_shift_act in place);
///   kBatchNorm + act: a bn→act chain collapsed into one eltwise pass.
struct Step {
  OpKind kind = OpKind::kInput;
  int out_node = -1;          ///< node id whose value this step defines
  std::vector<int> in_nodes;  ///< original producer ids
  ValueShape out_shape, in_shape;

  // conv / deconv.
  Tensor weight;
  std::vector<real_t> bias;  ///< hoisted (Cout) — zeros when bias-less
  index_t k = 0, pad = 0;

  // Hoisted batch-norm epilogue constants (batch_norm_infer's exact
  // per-channel floats) + activation: 0 none, 1 relu, 2 leaky.
  bool has_affine = false;
  std::vector<real_t> scale, shift;
  int act = 0;
  real_t slope = 0.0f;

  // Pool / unpool constants.
  ops::Pool2dParams pool{};
  std::vector<ops::Lerp> ly, lx;

  // Concat: channel count per input, in input order.
  std::vector<index_t> concat_c;

  // ----- low-precision images (compile-time; empty at fp32) ---------
  // f16/bf16: weights re-laid out CO-MAJOR [co][ci][k*k] regardless of
  // conv/deconv origin, so one per-job contiguous convert feeds the
  // half row kernels with uniform strides (wstride_ci = k*k,
  // wstride_co = cin*k*k).
  std::vector<std::uint16_t> whalf;
  // int8: weights quantized per OUTPUT channel and pre-widened to the
  // int16 channel-pair layout VPMADDWD consumes: [co][p][k*k][2]
  // (odd trailing input channel zero-padded).
  std::vector<std::int16_t> wq;
  std::vector<float> wscale;  ///< per-co weight scale (absmax/127)
  std::vector<float> m;       ///< per-co dequant multiplier s_in * s_w
  float s_in = 1.0f;          ///< int8 activation scale of input 0
  float s_out = 1.0f;         ///< int8 activation scale of the output
  float inv_out = 1.0f;       ///< 1 / s_out
  bool concat_fast = false;   ///< int8 concat is pure pair memcpy
};

int act_code(OpKind k) {
  return k == OpKind::kRelu ? 1 : k == OpKind::kLeakyRelu ? 2 : 0;
}

/// batch_norm_infer's per-channel constants, expression for expression
/// (real_t arithmetic; see ops/batchnorm.cpp).
void hoist_bn_constants(const Node& bn, std::vector<real_t>* scale,
                        std::vector<real_t>* shift) {
  const index_t c = bn.gamma.dim(0);
  scale->resize(size_t(c));
  shift->resize(size_t(c));
  const real_t* gp = bn.gamma.data();
  const real_t* bp = bn.beta.data();
  const real_t* mp = bn.mean.data();
  const real_t* vp = bn.var.data();
  for (index_t i = 0; i < c; ++i) {
    const real_t inv_std = 1.0f / std::sqrt(vp[i] + bn.eps);
    const real_t s = gp[i] * inv_std;
    (*scale)[size_t(i)] = s;
    (*shift)[size_t(i)] = bp[i] - s * mp[i];
  }
}

std::vector<real_t> hoist_bias(const Tensor& bias, index_t cout) {
  std::vector<real_t> out(size_t(cout), 0.0f);
  if (bias.defined()) {
    std::memcpy(out.data(), bias.data(),
                size_t(cout) * sizeof(real_t));
  }
  return out;
}

// Value locations (CompiledGraph::Impl::value_loc).
constexpr int kLocDead = -3;    ///< absorbed into a fused step
constexpr int kLocInput = -2;   ///< the graph input tensor
constexpr int kLocOutput = -1;  ///< the run() output tensor

}  // namespace

struct CompiledGraph::Impl {
  ValueShape in_shape, out_shape;
  int out_node = -1;
  core::Precision prec = core::Precision::kF32;
  std::vector<Step> steps;
  std::vector<int> value_loc;       ///< per node id
  std::vector<index_t> slab_sizes;  ///< floats per slab
  std::vector<float> node_scale;    ///< int8: per node id (calibration)
  Stats stats;
  std::vector<BufferPlan> plans;

  // Low-precision executors (definitions after compile()); the fp32
  // path stays inline in CompiledGraph::run.
  Tensor run_half(const Tensor& input, bool bf) const;
  Tensor run_int8(const Tensor& input) const;
  void prepare_lowp(core::Precision prec);
};

CompiledGraph::CompiledGraph(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
CompiledGraph::CompiledGraph(CompiledGraph&&) noexcept = default;
CompiledGraph& CompiledGraph::operator=(CompiledGraph&&) noexcept = default;
CompiledGraph::~CompiledGraph() = default;

const CompiledGraph::Stats& CompiledGraph::stats() const {
  return impl_->stats;
}
const std::vector<BufferPlan>& CompiledGraph::plan() const {
  return impl_->plans;
}

namespace {

/// Fusion walk. Emits one Step per surviving node in schedule order.
/// Legality (see graph.h): a bn is absorbed into its producing conv /
/// deconv only when it is that conv's sole consumer and the conv is not
/// the graph output; an activation is absorbed only behind an affine
/// epilogue (bn), under the same sole-consumer / non-output rule.
/// A conv WITHOUT a bn never absorbs an activation: pushing x through
/// the identity affine (madd) turns -0 into +0, which would break
/// bitwise parity with the standalone leaky_relu kernel.
std::vector<Step> fuse_steps(const Graph& g, bool fuse, int* fused_away) {
  TRACE_SPAN("graph.fuse");
  const auto order = g.schedule();
  const auto cons = g.consumers();
  std::vector<char> absorbed(size_t(g.num_nodes()), 0);
  std::vector<Step> steps;
  *fused_away = 0;

  const auto sole_consumer = [&](int id) -> const Node* {
    if (cons[size_t(id)].size() != 1 || id == g.output()) return nullptr;
    return &g.node(cons[size_t(id)][0]);
  };

  for (int id : order) {
    if (absorbed[size_t(id)]) continue;
    const Node& n = g.node(id);
    if (n.kind == OpKind::kInput) continue;

    Step s;
    s.kind = n.kind;
    s.out_node = id;
    s.in_nodes = n.inputs;
    s.out_shape = n.shape;
    s.in_shape = g.node(n.inputs.empty() ? id : n.inputs[0]).shape;

    switch (n.kind) {
      case OpKind::kConv2d:
      case OpKind::kDeconv2d: {
        s.weight = n.weight;
        s.k = n.ksize;
        s.pad = n.pad;
        s.bias = hoist_bias(n.bias, n.shape.c);
        if (fuse) {
          const Node* bn = sole_consumer(id);
          if (bn && bn->kind == OpKind::kBatchNorm) {
            hoist_bn_constants(*bn, &s.scale, &s.shift);
            s.has_affine = true;
            absorbed[size_t(bn->id)] = 1;
            ++*fused_away;
            s.out_node = bn->id;
            s.out_shape = bn->shape;
            const Node* a = sole_consumer(bn->id);
            if (a && (a->kind == OpKind::kRelu ||
                      a->kind == OpKind::kLeakyRelu)) {
              s.act = act_code(a->kind);
              s.slope = a->slope;
              absorbed[size_t(a->id)] = 1;
              ++*fused_away;
              s.out_node = a->id;
              s.out_shape = a->shape;
            }
          }
        }
        break;
      }
      case OpKind::kBatchNorm: {
        hoist_bn_constants(n, &s.scale, &s.shift);
        s.has_affine = true;
        if (fuse) {
          const Node* a = sole_consumer(id);
          if (a &&
              (a->kind == OpKind::kRelu || a->kind == OpKind::kLeakyRelu)) {
            s.act = act_code(a->kind);
            s.slope = a->slope;
            absorbed[size_t(a->id)] = 1;
            ++*fused_away;
            s.out_node = a->id;
            s.out_shape = a->shape;
          }
        }
        break;
      }
      case OpKind::kRelu:
      case OpKind::kLeakyRelu:
        s.act = act_code(n.kind);
        s.slope = n.slope;
        break;
      case OpKind::kMaxPool:
        s.pool = n.pool;
        break;
      case OpKind::kUnpool: {
        // Hoisted interpolation tables (the per-call table build the
        // op pays is one of the wins the alloc-flatness test pins).
        const ValueShape& in = s.in_shape;
        s.ly.reserve(size_t(s.out_shape.h));
        for (index_t o = 0; o < s.out_shape.h; ++o) {
          s.ly.push_back(ops::unpool_lerp(o, n.scale, in.h));
        }
        s.lx.reserve(size_t(s.out_shape.w));
        for (index_t o = 0; o < s.out_shape.w; ++o) {
          s.lx.push_back(ops::unpool_lerp(o, n.scale, in.w));
        }
        break;
      }
      case OpKind::kConcat:
        s.concat_c.reserve(n.inputs.size());
        for (int in : n.inputs) {
          s.concat_c.push_back(g.node(in).shape.c);
        }
        break;
      case OpKind::kAdd:
        break;
      case OpKind::kInput:
        break;
    }
    steps.push_back(std::move(s));
  }
  return steps;
}

/// Greedy liveness-based slab assignment in step order. A value's slab
/// is freed only AFTER its last reader's output got a slab, so a step
/// never writes the buffer it is reading (the kernels rely on that:
/// all non-epilogue paths are restrict-qualified). The fused epilogue
/// is the one deliberate in-place pass and touches only the step's own
/// output slab.
void plan_buffers(const Graph& g, const std::vector<Step>& steps,
                  int out_node, std::vector<int>* value_loc,
                  std::vector<index_t>* slab_sizes,
                  std::vector<BufferPlan>* plans) {
  TRACE_SPAN("graph.plan");
  value_loc->assign(size_t(g.num_nodes()), kLocDead);
  (*value_loc)[0] = kLocInput;

  std::vector<int> last_use(size_t(g.num_nodes()), -1);
  for (int si = 0; si < int(steps.size()); ++si) {
    for (int in : steps[size_t(si)].in_nodes) {
      last_use[size_t(in)] = si;
    }
  }

  plans->push_back(BufferPlan{0, -1, g.input_shape().numel(), -1,
                              last_use[0]});

  std::vector<char> slab_free;
  for (int si = 0; si < int(steps.size()); ++si) {
    const Step& s = steps[size_t(si)];
    const index_t need = s.out_shape.numel();
    int loc;
    if (s.out_node == out_node) {
      loc = kLocOutput;
    } else {
      // Best fit: smallest free slab that holds the value; otherwise
      // grow the largest free slab; otherwise open a new one.
      int best = -1, largest = -1;
      for (int i = 0; i < int(slab_sizes->size()); ++i) {
        if (!slab_free[size_t(i)]) continue;
        if ((*slab_sizes)[size_t(i)] >= need &&
            (best < 0 ||
             (*slab_sizes)[size_t(i)] < (*slab_sizes)[size_t(best)])) {
          best = i;
        }
        if (largest < 0 ||
            (*slab_sizes)[size_t(i)] > (*slab_sizes)[size_t(largest)]) {
          largest = i;
        }
      }
      if (best < 0 && largest >= 0) {
        best = largest;
        (*slab_sizes)[size_t(best)] = need;
      }
      if (best < 0) {
        best = int(slab_sizes->size());
        slab_sizes->push_back(need);
        slab_free.push_back(0);
      }
      slab_free[size_t(best)] = 0;
      loc = best;
    }
    (*value_loc)[size_t(s.out_node)] = loc;
    plans->push_back(BufferPlan{s.out_node, loc < 0 ? -1 : loc, need, si,
                                std::max(last_use[size_t(s.out_node)], si)});
    for (int in : s.in_nodes) {
      const int in_loc = (*value_loc)[size_t(in)];
      if (in_loc >= 0 && last_use[size_t(in)] == si) {
        slab_free[size_t(in_loc)] = 1;
      }
    }
  }
}

// ------------------------------------------------- low-precision prep

/// Weight quantization rounding (compile-time only — nothing at run
/// time has to reproduce it, it just has to be deterministic).
std::int16_t quant_weight(float v) {
  v = v > -127.0f ? v : -127.0f;
  v = v < 127.0f ? v : 127.0f;
  return static_cast<std::int16_t>(std::lrintf(v));
}

void build_half_weights(Step* s, bool deconv, bool bf) {
  const index_t k2 = s->k * s->k;
  const index_t cin = deconv ? s->weight.dim(0) : s->weight.dim(1);
  const index_t cout = deconv ? s->weight.dim(1) : s->weight.dim(0);
  s->whalf.resize(size_t(cout * cin * k2));
  const real_t* wp = s->weight.data();
  for (index_t co = 0; co < cout; ++co) {
    for (index_t ci = 0; ci < cin; ++ci) {
      const real_t* src =
          deconv ? wp + (ci * cout + co) * k2 : wp + (co * cin + ci) * k2;
      std::uint16_t* dst = s->whalf.data() + (co * cin + ci) * k2;
      for (index_t i = 0; i < k2; ++i) {
        // f16 uses the ftz flush: the widening of subnormal halves is
        // the slow direction on F16C hardware, and wbuf re-widens the
        // weights on every worker job.
        dst[i] =
            bf ? f32_to_bf16_bits(src[i]) : f32_to_f16_bits_ftz(src[i]);
      }
    }
  }
}

void build_i8_weights(Step* s, bool deconv) {
  const index_t k2 = s->k * s->k;
  const index_t cin = deconv ? s->weight.dim(0) : s->weight.dim(1);
  const index_t cout = deconv ? s->weight.dim(1) : s->weight.dim(0);
  const index_t cinp = (cin + 1) / 2;
  s->wscale.resize(size_t(cout));
  s->m.resize(size_t(cout));
  s->wq.assign(size_t(cout * cinp * k2 * 2), 0);
  const real_t* wp = s->weight.data();
  const auto tap = [&](index_t co, index_t ci) {
    return deconv ? wp + (ci * cout + co) * k2 : wp + (co * cin + ci) * k2;
  };
  for (index_t co = 0; co < cout; ++co) {
    float amax = 0.0f;
    for (index_t ci = 0; ci < cin; ++ci) {
      const real_t* src = tap(co, ci);
      for (index_t i = 0; i < k2; ++i) {
        const float a = std::fabs(src[i]);
        if (a > amax) amax = a;
      }
    }
    const float sw = amax > 0.0f ? amax / 127.0f : 1.0f;
    const float inv = 1.0f / sw;
    s->wscale[size_t(co)] = sw;
    s->m[size_t(co)] = s->s_in * sw;
    for (index_t ci = 0; ci < cin; ++ci) {
      const real_t* src = tap(co, ci);
      std::int16_t* dst =
          s->wq.data() + ((co * cinp + ci / 2) * k2) * 2 + (ci & 1);
      for (index_t i = 0; i < k2; ++i) {
        dst[i * 2] = quant_weight(src[i] * inv);
      }
    }
  }
}

}  // namespace

/// Fills the per-step low-precision images after fusion. The executed
/// low-precision paths never consult Node weights again — everything
/// they need is baked here. (A member because anonymous-namespace free
/// functions cannot name the private nested Impl.)
void CompiledGraph::Impl::prepare_lowp(core::Precision prec) {
  TRACE_SPAN("graph.lowp_prep");
  Impl* im = this;
  const bool i8 = prec == core::Precision::kInt8;
  const bool bf = prec == core::Precision::kBf16;
  for (Step& s : im->steps) {
    // The low-precision executors materialize the graph output in fp32
    // only; a graph whose output feeds another node would need a
    // quantized copy too. No supported network does that.
    for (int in : s.in_nodes) {
      if (in == im->out_node) {
        throw std::invalid_argument(
            "compile: low-precision graphs cannot read the output node");
      }
    }
    if (i8) {
      s.s_in = s.in_nodes.empty()
                   ? 1.0f
                   : im->node_scale[size_t(s.in_nodes[0])];
      s.s_out = im->node_scale[size_t(s.out_node)];
      s.inv_out = 1.0f / s.s_out;
    }
    const bool deconv = s.kind == OpKind::kDeconv2d;
    if (s.kind == OpKind::kConv2d || s.kind == OpKind::kDeconv2d) {
      if (i8) {
        build_i8_weights(&s, deconv);
      } else {
        build_half_weights(&s, deconv, bf);
      }
    } else if (i8 && s.kind == OpKind::kConcat) {
      // Calibration unifies concat groups, so this normally holds and
      // the quantized concat is pure pair movement; odd channel counts
      // or divergent scales fall back to dequant/requant.
      bool fast = s.out_shape.c % 2 == 0;
      for (size_t j = 0; j < s.in_nodes.size(); ++j) {
        fast = fast && s.concat_c[j] % 2 == 0 &&
               im->node_scale[size_t(s.in_nodes[j])] == s.s_out;
      }
      s.concat_fast = fast;
    }
  }
}

CompiledGraph compile(const Graph& g, const CompileOptions& opt) {
  TRACE_SPAN("graph.compile");
  auto impl = std::make_unique<CompiledGraph::Impl>();
  impl->in_shape = g.input_shape();
  impl->out_node = g.output();
  impl->out_shape = g.node(impl->out_node).shape;
  impl->prec = opt.precision;
  if (opt.precision == core::Precision::kInt8) {
    if (int(opt.calibration.node_scale.size()) != g.num_nodes()) {
      throw std::invalid_argument(
          "compile: int8 precision requires a calibration with one "
          "scale per node (see graph::calibrate)");
    }
    impl->node_scale = opt.calibration.node_scale;
  }

  int fused_away = 0;
  impl->steps = fuse_steps(g, opt.fuse, &fused_away);
  if (opt.precision != core::Precision::kF32) {
    impl->prepare_lowp(opt.precision);
  }
  // Slab planning is precision-agnostic: plans are sized in fp32
  // elements, which upper-bounds every storage format (u16 needs half,
  // int8 pairs at most half), so the placement is valid for all of
  // them and the planner invariants tests pin stay unchanged.
  plan_buffers(g, impl->steps, impl->out_node, &impl->value_loc,
               &impl->slab_sizes, &impl->plans);

  impl->stats.steps = int(impl->steps.size());
  impl->stats.fused_away = fused_away;
  impl->stats.slabs = int(impl->slab_sizes.size());
  impl->stats.slab_floats = 0;
  for (index_t f : impl->slab_sizes) impl->stats.slab_floats += f;
  return CompiledGraph(std::move(impl));
}

// --------------------------------------------- fp16/bf16 executor
//
// Weights and every intermediate value are stored as 16-bit elements;
// arithmetic is fp32 (single-rounding fmadd in the conv kernels, the
// ops' own fp32 expressions elsewhere). The graph input converts once
// at entry, each step's store narrows with RNE, and the graph output
// materializes in fp32.
Tensor CompiledGraph::Impl::run_half(const Tensor& input, bool bf) const {
  TRACE_SPAN("graph.run_half");
  const simd::KernelTable& kt = simd::kernels();
  const auto cvt_to = bf ? kt.cvt_f32_to_bf16 : kt.cvt_f32_to_f16;
  const auto cvt_from = bf ? kt.cvt_bf16_to_f32 : kt.cvt_f16_to_f32;
  const auto store_ep =
      bf ? kt.scale_shift_act_store_bf16 : kt.scale_shift_act_store_f16;

  Tensor out({out_shape.n, out_shape.c, out_shape.h, out_shape.w});
  real_t* out_data = out.data();

  ArenaScope scope;
  std::vector<std::uint16_t*> slab(slab_sizes.size());
  for (size_t i = 0; i < slab_sizes.size(); ++i) {
    slab[i] = static_cast<std::uint16_t*>(
        scope.alloc(std::size_t(slab_sizes[i]) * sizeof(std::uint16_t)));
  }
  const index_t in_numel = in_shape.numel();
  std::uint16_t* in_half = static_cast<std::uint16_t*>(
      scope.alloc(std::size_t(in_numel) * sizeof(std::uint16_t)));
  cvt_to(input.data(), in_half, in_numel);

  const auto ptr = [&](int node) -> std::uint16_t* {
    const int loc = value_loc[size_t(node)];
    if (loc == kLocInput) return in_half;
    return slab[size_t(loc)];
  };

  for (const Step& s : steps) {
    const bool is_out = value_loc[size_t(s.out_node)] == kLocOutput;
    std::uint16_t* dst = is_out ? nullptr : ptr(s.out_node);
    switch (s.kind) {
      case OpKind::kConv2d:
      case OpKind::kDeconv2d: {
        TRACE_SPAN_V("graph.step.conv");
        const bool deconv = s.kind == OpKind::kDeconv2d;
        const std::uint16_t* src = ptr(s.in_nodes[0]);
        const ValueShape in = s.in_shape, o = s.out_shape;
        const index_t cin = in.c, cout = o.c, k = s.k, pad = s.pad;
        const index_t spatial = o.h * o.w;
        const index_t ngroups = (cout + 7) / 8;
        // Widen the step input ONCE, then run the fp32-load FMA row
        // kernel. The converting row kernels re-read (and re-convert)
        // every input row k times per tap loop, for each co group —
        // ~k * ngroups redundant converts per element at the graph
        // level. Widening is elementwise-exact and the _fma kernel
        // keeps the same accumulation order and single-rounding
        // contract, so the output bits are unchanged (per-precision
        // golden digests pin this). Groups are OCTETS, not quads: the
        // row8 kernel amortizes each pass over the widened input
        // across 8 output channels, which matters because the co=8
        // dense-layer convs are memory-bound (grouping is also
        // bit-neutral — each channel keeps its own fmadd order).
        const index_t in_hw = in.h * in.w;
        parallel_for(
            0, o.n * ngroups,
            [&](index_t job) {
              const index_t ni = job / ngroups;
              const index_t co0 = (job % ngroups) * 8;
              const int nco = int(std::min<index_t>(8, cout - co0));
              const std::uint16_t* src_n = src + ni * cin * in_hw;
              const real_t* bias_p = s.bias.data() + co0;
              // Worker-local scratch: the co-group's weights convert
              // to fp32 ONCE per job (amortized over every output
              // row), plus fp32 accumulator planes unless the step
              // materializes the fp32 graph output directly.
              ArenaScope ws;
              const index_t wcount = index_t(nco) * cin * k * k;
              real_t* wbuf = ws.alloc_floats(wcount);
              cvt_from(s.whalf.data() + co0 * cin * k * k, wbuf, wcount);
              real_t* acc = is_out
                                ? out_data + (ni * cout + co0) * spatial
                                : ws.alloc_floats(index_t(nco) * spatial);
              // Banded widening: instead of materializing the whole
              // fp32 input (which the tap loops then stream from L3 at
              // twice the stored bytes), widen a sliding tile of input
              // rows into a band buffer small enough to stay in L2 and
              // hand the kernel a band-local view. With "same" padding
              // the band [oy0-pad, oy1-1+pad] clipped to the image
              // makes the kernel's border clamps over (band height,
              // local oy) coincide exactly with the full-image clamps
              // — for conv and deconv alike — so every output keeps
              // its bits while the heavy k-fold re-reads come from L2.
              constexpr index_t kTileRows = 16;
              real_t* band =
                  ws.alloc_floats(cin * (kTileRows + (k - 1)) * in.w);
              for (index_t oy0 = 0; oy0 < o.h; oy0 += kTileRows) {
                const index_t oy1 =
                    std::min<index_t>(o.h, oy0 + kTileRows);
                const index_t by0 = std::max<index_t>(0, oy0 - pad);
                const index_t by1 =
                    std::min<index_t>(in.h, oy1 + pad);
                const index_t bh = by1 - by0;
                {
                  TRACE_SPAN_V("graph.step.conv.widen");
                  for (index_t ci = 0; ci < cin; ++ci) {
                    cvt_from(src_n + ci * in_hw + by0 * in.w,
                             band + ci * bh * in.w, bh * in.w);
                  }
                }
                for (index_t oy = oy0; oy < oy1; ++oy) {
                  if (deconv) {
                    kt.deconv2d_row8_s1_fma(band, wbuf, k * k,
                                            cin * k * k, acc + oy * o.w,
                                            spatial, nco, cin, bh, in.w,
                                            k, oy - by0, pad, o.w,
                                            bias_p);
                  } else {
                    kt.conv2d_row8_s1_fma(band, wbuf, k * k, cin * k * k,
                                          acc + oy * o.w, spatial, nco,
                                          cin, bh, in.w, k, oy - by0,
                                          pad, o.w, bias_p);
                  }
                }
              }
              if (is_out) {
                if (s.has_affine) {
                  for (int j = 0; j < nco; ++j) {
                    kt.scale_shift_act(acc + j * spatial, acc + j * spatial,
                                       spatial, s.scale[size_t(co0 + j)],
                                       s.shift[size_t(co0 + j)], s.act,
                                       s.slope);
                  }
                }
              } else {
                std::uint16_t* outp = dst + (ni * cout + co0) * spatial;
                for (int j = 0; j < nco; ++j) {
                  if (s.has_affine) {
                    store_ep(acc + j * spatial, outp + j * spatial,
                             spatial, s.scale[size_t(co0 + j)],
                             s.shift[size_t(co0 + j)], s.act, s.slope);
                  } else {
                    // Plain converting copy: an identity-affine madd
                    // would flip the sign of -0.
                    cvt_to(acc + j * spatial, outp + j * spatial, spatial);
                  }
                }
              }
            },
            /*grain=*/1);
        break;
      }
      case OpKind::kBatchNorm: {
        TRACE_SPAN_V("graph.step.bn");
        const std::uint16_t* src = ptr(s.in_nodes[0]);
        const ValueShape o = s.out_shape;
        const index_t spatial = o.h * o.w;
        parallel_for(
            0, o.n * o.c,
            [&](index_t plane) {
              const index_t c = plane % o.c;
              ArenaScope ws;
              real_t* tmp = ws.alloc_floats(spatial);
              cvt_from(src + plane * spatial, tmp, spatial);
              if (is_out) {
                real_t* dp = out_data + plane * spatial;
                if (s.act == 0) {
                  kt.scale_shift(tmp, dp, spatial, s.scale[size_t(c)],
                                 s.shift[size_t(c)]);
                } else {
                  kt.scale_shift_act(tmp, dp, spatial, s.scale[size_t(c)],
                                     s.shift[size_t(c)], s.act, s.slope);
                }
              } else {
                store_ep(tmp, dst + plane * spatial, spatial,
                         s.scale[size_t(c)], s.shift[size_t(c)], s.act,
                         s.slope);
              }
            },
            /*grain=*/1);
        break;
      }
      case OpKind::kRelu:
      case OpKind::kLeakyRelu: {
        TRACE_SPAN_V("graph.step.act");
        const std::uint16_t* src = ptr(s.in_nodes[0]);
        const index_t total = s.out_shape.numel();
        parallel_for_blocked(
            0, total,
            [&](index_t lo, index_t hi) {
              const index_t n = hi - lo;
              ArenaScope ws;
              real_t* ta = ws.alloc_floats(n);
              cvt_from(src + lo, ta, n);
              if (is_out) {
                if (s.act == 1) {
                  kt.relu(ta, out_data + lo, n);
                } else {
                  kt.leaky_relu(ta, out_data + lo, n, s.slope);
                }
              } else {
                real_t* tb = ws.alloc_floats(n);
                if (s.act == 1) {
                  kt.relu(ta, tb, n);
                } else {
                  kt.leaky_relu(ta, tb, n, s.slope);
                }
                cvt_to(tb, dst + lo, n);
              }
            },
            /*grain=*/1 << 16);
        break;
      }
      case OpKind::kMaxPool: {
        TRACE_SPAN_V("graph.step.pool");
        const std::uint16_t* src = ptr(s.in_nodes[0]);
        const ValueShape in = s.in_shape, o = s.out_shape;
        parallel_for(
            0, o.n * o.c,
            [&](index_t plane) {
              ArenaScope ws;
              real_t* tin = ws.alloc_floats(in.h * in.w);
              cvt_from(src + plane * in.h * in.w, tin, in.h * in.w);
              if (is_out) {
                ops::max_pool2d_plane(tin, out_data + plane * o.h * o.w,
                                      nullptr, in.h, in.w, o.h, o.w,
                                      s.pool);
              } else {
                real_t* tout = ws.alloc_floats(o.h * o.w);
                ops::max_pool2d_plane(tin, tout, nullptr, in.h, in.w, o.h,
                                      o.w, s.pool);
                cvt_to(tout, dst + plane * o.h * o.w, o.h * o.w);
              }
            },
            /*grain=*/1);
        break;
      }
      case OpKind::kUnpool: {
        TRACE_SPAN_V("graph.step.unpool");
        const std::uint16_t* src = ptr(s.in_nodes[0]);
        const ValueShape in = s.in_shape, o = s.out_shape;
        parallel_for(
            0, o.n * o.c,
            [&](index_t plane) {
              ArenaScope ws;
              real_t* tin = ws.alloc_floats(in.h * in.w);
              cvt_from(src + plane * in.h * in.w, tin, in.h * in.w);
              if (is_out) {
                ops::unpool2d_bilinear_plane(tin,
                                             out_data + plane * o.h * o.w,
                                             in.w, o.h, o.w, s.ly.data(),
                                             s.lx.data());
              } else {
                real_t* tout = ws.alloc_floats(o.h * o.w);
                ops::unpool2d_bilinear_plane(tin, tout, in.w, o.h, o.w,
                                             s.ly.data(), s.lx.data());
                cvt_to(tout, dst + plane * o.h * o.w, o.h * o.w);
              }
            },
            /*grain=*/1);
        break;
      }
      case OpKind::kConcat: {
        TRACE_SPAN_V("graph.step.concat");
        const ValueShape o = s.out_shape;
        const index_t hw = o.h * o.w;
        index_t c_off = 0;
        for (size_t j = 0; j < s.in_nodes.size(); ++j) {
          const std::uint16_t* src = ptr(s.in_nodes[j]);
          const index_t chan = s.concat_c[j];
          for (index_t ni = 0; ni < o.n; ++ni) {
            if (is_out) {
              cvt_from(src + ni * chan * hw,
                       out_data + (ni * o.c + c_off) * hw, chan * hw);
            } else {
              std::memcpy(dst + (ni * o.c + c_off) * hw,
                          src + ni * chan * hw,
                          size_t(chan * hw) * sizeof(std::uint16_t));
            }
          }
          c_off += chan;
        }
        break;
      }
      case OpKind::kAdd: {
        TRACE_SPAN_V("graph.step.add");
        const std::uint16_t* a = ptr(s.in_nodes[0]);
        const std::uint16_t* b = ptr(s.in_nodes[1]);
        parallel_for_blocked(
            0, s.out_shape.numel(),
            [&](index_t lo, index_t hi) {
              const index_t n = hi - lo;
              ArenaScope ws;
              real_t* ta = ws.alloc_floats(n);
              real_t* tb = ws.alloc_floats(n);
              cvt_from(a + lo, ta, n);
              cvt_from(b + lo, tb, n);
              for (index_t i = 0; i < n; ++i) ta[i] = ta[i] + tb[i];
              if (is_out) {
                std::memcpy(out_data + lo, ta, size_t(n) * sizeof(real_t));
              } else {
                cvt_to(ta, dst + lo, n);
              }
            },
            /*grain=*/1 << 16);
        break;
      }
      case OpKind::kInput:
        break;
    }
  }
  return out;
}

// -------------------------------------------------- int8 executor
//
// Calibrated symmetric quantization: activations live as channel-pair
// interleaved int8 planes, conv/deconv accumulate exact int32 and the
// fused epilogue dequantizes, applies the hoisted bn/activation in
// fp32, and requantizes to the consumer's scale. Non-conv steps run
// the generic dequant -> fp32 op -> requant staging (concat short-cuts
// to pair memcpy when calibration unified its group).
Tensor CompiledGraph::Impl::run_int8(const Tensor& input) const {
  TRACE_SPAN("graph.run_int8");
  const simd::KernelTable& kt = simd::kernels();
  Tensor out({out_shape.n, out_shape.c, out_shape.h, out_shape.w});
  real_t* out_data = out.data();

  ArenaScope scope;
  std::vector<std::int8_t*> slab(slab_sizes.size());
  for (size_t i = 0; i < slab_sizes.size(); ++i) {
    // Pair interleaving rounds odd channel counts up, so a value needs
    // at most 2x its element count in bytes — covered by 2x the fp32
    // element plan.
    slab[i] = static_cast<std::int8_t*>(
        scope.alloc(std::size_t(slab_sizes[i]) * 2));
  }
  const index_t hw_in = in_shape.h * in_shape.w;
  const index_t cp_in = (in_shape.c + 1) / 2;
  std::int8_t* in_q = static_cast<std::int8_t*>(
      scope.alloc(std::size_t(in_shape.n * cp_in * hw_in * 2)));
  const float in_inv = 1.0f / node_scale[0];
  parallel_for(
      0, in_shape.n * cp_in,
      [&](index_t job) {
        const index_t ni = job / cp_in, p = job % cp_in;
        const real_t* x0 = input.data() + (ni * in_shape.c + 2 * p) * hw_in;
        const real_t* x1 = 2 * p + 1 < in_shape.c ? x0 + hw_in : nullptr;
        kt.quant_f32_to_i8(x0, x1, in_q + (ni * cp_in + p) * hw_in * 2,
                           hw_in, in_inv);
      },
      /*grain=*/1);

  const auto ptr = [&](int node) -> std::int8_t* {
    const int loc = value_loc[size_t(node)];
    if (loc == kLocInput) return in_q;
    return slab[size_t(loc)];
  };
  // Planar fp32 staging of one quantized value (generic steps).
  const auto dequant_node = [&](int node, ValueShape sh, real_t* buf) {
    const index_t hw = sh.h * sh.w;
    const index_t cp = (sh.c + 1) / 2;
    const std::int8_t* src = ptr(node);
    const float sc = node_scale[size_t(node)];
    parallel_for(
        0, sh.n * cp,
        [&](index_t job) {
          const index_t ni = job / cp, p = job % cp;
          real_t* x0 = buf + (ni * sh.c + 2 * p) * hw;
          real_t* x1 = 2 * p + 1 < sh.c ? x0 + hw : nullptr;
          kt.dequant_i8_to_f32(src + (ni * cp + p) * hw * 2, x0, x1, hw,
                               sc);
        },
        /*grain=*/1);
  };
  const auto requant_value = [&](const real_t* buf, ValueShape sh,
                                 float inv, std::int8_t* q) {
    const index_t hw = sh.h * sh.w;
    const index_t cp = (sh.c + 1) / 2;
    parallel_for(
        0, sh.n * cp,
        [&](index_t job) {
          const index_t ni = job / cp, p = job % cp;
          const real_t* x0 = buf + (ni * sh.c + 2 * p) * hw;
          const real_t* x1 = 2 * p + 1 < sh.c ? x0 + hw : nullptr;
          kt.quant_f32_to_i8(x0, x1, q + (ni * cp + p) * hw * 2, hw, inv);
        },
        /*grain=*/1);
  };

  for (const Step& s : steps) {
    const bool is_out = value_loc[size_t(s.out_node)] == kLocOutput;
    std::int8_t* dst = is_out ? nullptr : ptr(s.out_node);
    const ValueShape o = s.out_shape;
    switch (s.kind) {
      case OpKind::kConv2d:
      case OpKind::kDeconv2d: {
        TRACE_SPAN_V("graph.step.conv");
        const bool deconv = s.kind == OpKind::kDeconv2d;
        const std::int8_t* src = ptr(s.in_nodes[0]);
        const ValueShape in = s.in_shape;
        const index_t cin = in.c, cout = o.c, k = s.k, pad = s.pad;
        const index_t hw_i = in.h * in.w, spatial = o.h * o.w;
        const index_t cinp = (cin + 1) / 2;
        const index_t cpo = (cout + 1) / 2;
        const index_t wstride_co = cinp * k * k * 2;
        const index_t ngroups = (cout + 3) / 4;
        parallel_for(
            0, o.n * ngroups,
            [&](index_t job) {
              const index_t ni = job / ngroups;
              const index_t co0 = (job % ngroups) * 4;
              const int nco = int(std::min<index_t>(4, cout - co0));
              const std::int8_t* in_n = src + ni * cinp * hw_i * 2;
              ArenaScope ws;
              std::int32_t* acc = static_cast<std::int32_t*>(ws.alloc(
                  std::size_t(nco) * std::size_t(spatial) *
                  sizeof(std::int32_t)));
              const std::int16_t* wg = s.wq.data() + co0 * wstride_co;
              for (index_t oy = 0; oy < o.h; ++oy) {
                if (deconv) {
                  kt.deconv2d_row4_s1_i8(in_n, wg, wstride_co,
                                         acc + oy * o.w, spatial, nco,
                                         cinp, in.h, in.w, k, oy, pad,
                                         o.w);
                } else {
                  kt.conv2d_row4_s1_i8(in_n, wg, wstride_co,
                                       acc + oy * o.w, spatial, nco, cinp,
                                       in.h, in.w, k, oy, pad, o.w);
                }
              }
              if (is_out) {
                for (int j = 0; j < nco; ++j) {
                  const size_t co = size_t(co0 + j);
                  kt.dequant_epilogue_f32(
                      acc + j * spatial,
                      out_data + (ni * cout + co0 + j) * spatial, spatial,
                      s.m[co], s.bias[co], s.has_affine ? 1 : 0,
                      s.has_affine ? s.scale[co] : 1.0f,
                      s.has_affine ? s.shift[co] : 0.0f, s.act, s.slope);
                }
              } else {
                for (int t = 0; 2 * t < nco; ++t) {
                  const size_t ce = size_t(co0 + 2 * t);
                  const bool two = 2 * t + 1 < nco;
                  simd::QuantEpilogueParams p;
                  p.m0 = s.m[ce];
                  p.bias0 = s.bias[ce];
                  p.m1 = two ? s.m[ce + 1] : 1.0f;
                  p.bias1 = two ? s.bias[ce + 1] : 0.0f;
                  p.has_affine = s.has_affine ? 1 : 0;
                  if (s.has_affine) {
                    p.scale0 = s.scale[ce];
                    p.shift0 = s.shift[ce];
                    if (two) {
                      p.scale1 = s.scale[ce + 1];
                      p.shift1 = s.shift[ce + 1];
                    }
                  }
                  p.act = s.act;
                  p.slope = s.slope;
                  p.inv_out = s.inv_out;
                  kt.quant_epilogue_store_i8(
                      acc + 2 * t * spatial,
                      two ? acc + (2 * t + 1) * spatial : nullptr,
                      dst + (ni * cpo + index_t(ce) / 2) * spatial * 2,
                      spatial, p);
                }
              }
            },
            /*grain=*/1);
        break;
      }
      case OpKind::kConcat: {
        TRACE_SPAN_V("graph.step.concat");
        const index_t hw = o.h * o.w;
        if (is_out) {
          // Dequantize each input straight into its fp32 output slot.
          index_t c_off = 0;
          for (size_t j = 0; j < s.in_nodes.size(); ++j) {
            const std::int8_t* src = ptr(s.in_nodes[j]);
            const float sc = node_scale[size_t(s.in_nodes[j])];
            const index_t chan = s.concat_c[j];
            const index_t cp = (chan + 1) / 2;
            for (index_t ni = 0; ni < o.n; ++ni) {
              for (index_t p = 0; p < cp; ++p) {
                real_t* x0 = out_data + (ni * o.c + c_off + 2 * p) * hw;
                real_t* x1 = 2 * p + 1 < chan ? x0 + hw : nullptr;
                kt.dequant_i8_to_f32(src + (ni * cp + p) * hw * 2, x0, x1,
                                     hw, sc);
              }
            }
            c_off += chan;
          }
        } else if (s.concat_fast) {
          // Unified scales + even channels: pure pair movement.
          const index_t cpo = o.c / 2;
          index_t p_off = 0;
          for (size_t j = 0; j < s.in_nodes.size(); ++j) {
            const std::int8_t* src = ptr(s.in_nodes[j]);
            const index_t cp = s.concat_c[j] / 2;
            for (index_t ni = 0; ni < o.n; ++ni) {
              std::memcpy(dst + (ni * cpo + p_off) * hw * 2,
                          src + ni * cp * hw * 2,
                          std::size_t(cp * hw * 2));
            }
            p_off += cp;
          }
        } else {
          ArenaScope ss;
          real_t* buf = ss.alloc_floats(o.numel());
          index_t c_off = 0;
          for (size_t j = 0; j < s.in_nodes.size(); ++j) {
            const index_t chan = s.concat_c[j];
            ArenaScope js;
            real_t* jin = js.alloc_floats(o.n * chan * hw);
            dequant_node(s.in_nodes[j], ValueShape{o.n, chan, o.h, o.w},
                         jin);
            for (index_t ni = 0; ni < o.n; ++ni) {
              std::memcpy(buf + (ni * o.c + c_off) * hw,
                          jin + ni * chan * hw,
                          std::size_t(chan * hw) * sizeof(real_t));
            }
            c_off += chan;
          }
          requant_value(buf, o, s.inv_out, dst);
        }
        break;
      }
      case OpKind::kBatchNorm:
      case OpKind::kRelu:
      case OpKind::kLeakyRelu:
      case OpKind::kMaxPool:
      case OpKind::kUnpool:
      case OpKind::kAdd: {
        TRACE_SPAN_V("graph.step.generic_lowp");
        ArenaScope ss;
        const ValueShape in0 = s.in_shape;
        real_t* fin = ss.alloc_floats(in0.numel());
        dequant_node(s.in_nodes[0], in0, fin);
        real_t* fout = is_out ? out_data : ss.alloc_floats(o.numel());
        const index_t spatial = o.h * o.w;
        if (s.kind == OpKind::kBatchNorm) {
          parallel_for(
              0, o.n * o.c,
              [&](index_t plane) {
                const index_t c = plane % o.c;
                if (s.act == 0) {
                  kt.scale_shift(fin + plane * spatial,
                                 fout + plane * spatial, spatial,
                                 s.scale[size_t(c)], s.shift[size_t(c)]);
                } else {
                  kt.scale_shift_act(fin + plane * spatial,
                                     fout + plane * spatial, spatial,
                                     s.scale[size_t(c)],
                                     s.shift[size_t(c)], s.act, s.slope);
                }
              },
              /*grain=*/1);
        } else if (s.kind == OpKind::kRelu ||
                   s.kind == OpKind::kLeakyRelu) {
          parallel_for_blocked(
              0, o.numel(),
              [&](index_t lo, index_t hi) {
                if (s.act == 1) {
                  kt.relu(fin + lo, fout + lo, hi - lo);
                } else {
                  kt.leaky_relu(fin + lo, fout + lo, hi - lo, s.slope);
                }
              },
              /*grain=*/1 << 16);
        } else if (s.kind == OpKind::kMaxPool) {
          parallel_for(
              0, o.n * o.c,
              [&](index_t plane) {
                ops::max_pool2d_plane(fin + plane * in0.h * in0.w,
                                      fout + plane * spatial, nullptr,
                                      in0.h, in0.w, o.h, o.w, s.pool);
              },
              /*grain=*/1);
        } else if (s.kind == OpKind::kUnpool) {
          parallel_for(
              0, o.n * o.c,
              [&](index_t plane) {
                ops::unpool2d_bilinear_plane(fin + plane * in0.h * in0.w,
                                             fout + plane * spatial, in0.w,
                                             o.h, o.w, s.ly.data(),
                                             s.lx.data());
              },
              /*grain=*/1);
        } else {  // kAdd
          real_t* fin2 = ss.alloc_floats(o.numel());
          dequant_node(s.in_nodes[1], o, fin2);
          parallel_for_blocked(
              0, o.numel(),
              [&](index_t lo, index_t hi) {
                for (index_t i = lo; i < hi; ++i) {
                  fout[i] = fin[i] + fin2[i];
                }
              },
              /*grain=*/1 << 16);
        }
        if (!is_out) requant_value(fout, o, s.inv_out, dst);
        break;
      }
      case OpKind::kInput:
        break;
    }
  }
  return out;
}

Tensor CompiledGraph::run(const Tensor& input) const {
  TRACE_SPAN("graph.run");
  const Impl& im = *impl_;
  if (input.rank() != 4 || input.dim(0) != im.in_shape.n ||
      input.dim(1) != im.in_shape.c || input.dim(2) != im.in_shape.h ||
      input.dim(3) != im.in_shape.w) {
    throw std::invalid_argument("graph.run: input shape " +
                                input.shape().str() + " != captured " +
                                im.in_shape.str());
  }
  if (im.steps.empty() || im.out_node == 0) return input.clone();

  if (im.prec == core::Precision::kF16 ||
      im.prec == core::Precision::kBf16) {
    return im.run_half(input, im.prec == core::Precision::kBf16);
  }
  if (im.prec == core::Precision::kInt8) return im.run_int8(input);

  Tensor out({im.out_shape.n, im.out_shape.c, im.out_shape.h,
              im.out_shape.w});
  const real_t* in_data = input.data();
  real_t* out_data = out.data();

  // All intermediates live in this thread's arena for the duration of
  // the call; concurrent run() callers therefore never share buffers.
  ArenaScope scope;
  std::vector<real_t*> slab(im.slab_sizes.size());
  for (size_t i = 0; i < im.slab_sizes.size(); ++i) {
    slab[i] = scope.alloc_floats(im.slab_sizes[i]);
  }
  const auto ptr = [&](int node) -> real_t* {
    const int loc = im.value_loc[size_t(node)];
    if (loc == kLocInput) return const_cast<real_t*>(in_data);
    if (loc == kLocOutput) return out_data;
    return slab[size_t(loc)];
  };

  const simd::KernelTable& kt = simd::kernels();

  for (const Step& s : im.steps) {
    real_t* dst = ptr(s.out_node);
    switch (s.kind) {
      case OpKind::kConv2d:
      case OpKind::kDeconv2d: {
        TRACE_SPAN_V("graph.step.conv");
        const bool deconv = s.kind == OpKind::kDeconv2d;
        const real_t* src = ptr(s.in_nodes[0]);
        const real_t* wp = s.weight.data();
        const ValueShape in = s.in_shape, o = s.out_shape;
        const index_t cin = in.c, cout = o.c, k = s.k, pad = s.pad;
        const index_t spatial = o.h * o.w;
        // Output channels run in groups of four through the quad row
        // kernels: four independent accumulator chains share every
        // input-row load, which both hides FMA latency and quarters
        // the input traffic. Each chain replays the single-channel
        // (ci, ky, kx) tap order, so results stay bitwise identical to
        // ops::conv2d / ops::deconv2d at any group split.
        const index_t ngroups = (cout + 3) / 4;
        parallel_for(
            0, o.n * ngroups,
            [&](index_t job) {
              const index_t ni = job / ngroups;
              const index_t co0 = (job % ngroups) * 4;
              const int nco = int(std::min<index_t>(4, cout - co0));
              const real_t* in_n = src + ni * cin * in.h * in.w;
              real_t* out_p = dst + (ni * cout + co0) * spatial;
              const real_t* bias_p = s.bias.data() + co0;
              if (deconv) {
                for (index_t oy = 0; oy < o.h; ++oy) {
                  kt.deconv2d_row4_s1(in_n, wp + co0 * k * k, cout * k * k,
                                      k * k, out_p + oy * o.w, spatial, nco,
                                      cin, in.h, in.w, k, oy, pad, o.w,
                                      bias_p);
                }
              } else {
                for (index_t oy = 0; oy < o.h; ++oy) {
                  kt.conv2d_row4_s1(in_n, wp + co0 * cin * k * k, k * k,
                                    cin * k * k, out_p + oy * o.w, spatial,
                                    nco, cin, in.h, in.w, k, oy, pad, o.w,
                                    bias_p);
                }
              }
              if (s.has_affine) {
                // The fused epilogue: bn (+ activation) applied in
                // place on planes that are still cache-hot.
                for (int j = 0; j < nco; ++j) {
                  kt.scale_shift_act(out_p + j * spatial,
                                     out_p + j * spatial, spatial,
                                     s.scale[size_t(co0 + j)],
                                     s.shift[size_t(co0 + j)], s.act,
                                     s.slope);
                }
              }
            },
            /*grain=*/1);
        break;
      }
      case OpKind::kBatchNorm: {
        TRACE_SPAN_V("graph.step.bn");
        const real_t* src = ptr(s.in_nodes[0]);
        const ValueShape o = s.out_shape;
        const index_t spatial = o.h * o.w;
        parallel_for(
            0, o.n * o.c,
            [&](index_t plane) {
              const index_t c = plane % o.c;
              // act == 0 keeps batch_norm_infer's exact kernel; with a
              // fused activation the combined kernel applies the same
              // two per-element expressions in one pass.
              if (s.act == 0) {
                kt.scale_shift(src + plane * spatial, dst + plane * spatial,
                               spatial, s.scale[size_t(c)],
                               s.shift[size_t(c)]);
              } else {
                kt.scale_shift_act(src + plane * spatial,
                                   dst + plane * spatial, spatial,
                                   s.scale[size_t(c)], s.shift[size_t(c)],
                                   s.act, s.slope);
              }
            },
            /*grain=*/1);
        break;
      }
      case OpKind::kRelu:
      case OpKind::kLeakyRelu: {
        TRACE_SPAN_V("graph.step.act");
        // Standalone activation: the op's own kernel (NOT the affine
        // epilogue — an identity madd would flip the sign of -0).
        const real_t* src = ptr(s.in_nodes[0]);
        const index_t total = s.out_shape.numel();
        parallel_for_blocked(
            0, total,
            [&](index_t lo, index_t hi) {
              if (s.act == 1) {
                kt.relu(src + lo, dst + lo, hi - lo);
              } else {
                kt.leaky_relu(src + lo, dst + lo, hi - lo, s.slope);
              }
            },
            /*grain=*/1 << 16);
        break;
      }
      case OpKind::kMaxPool: {
        TRACE_SPAN_V("graph.step.pool");
        const real_t* src = ptr(s.in_nodes[0]);
        const ValueShape in = s.in_shape, o = s.out_shape;
        parallel_for(
            0, o.n * o.c,
            [&](index_t plane) {
              ops::max_pool2d_plane(src + plane * in.h * in.w,
                                    dst + plane * o.h * o.w,
                                    /*arg_p=*/nullptr, in.h, in.w, o.h,
                                    o.w, s.pool);
            },
            /*grain=*/1);
        break;
      }
      case OpKind::kUnpool: {
        TRACE_SPAN_V("graph.step.unpool");
        const real_t* src = ptr(s.in_nodes[0]);
        const ValueShape in = s.in_shape, o = s.out_shape;
        parallel_for(
            0, o.n * o.c,
            [&](index_t plane) {
              ops::unpool2d_bilinear_plane(src + plane * in.h * in.w,
                                           dst + plane * o.h * o.w, in.w,
                                           o.h, o.w, s.ly.data(),
                                           s.lx.data());
            },
            /*grain=*/1);
        break;
      }
      case OpKind::kConcat: {
        TRACE_SPAN_V("graph.step.concat");
        const ValueShape o = s.out_shape;
        const index_t hw = o.h * o.w;
        index_t c_off = 0;
        for (size_t j = 0; j < s.in_nodes.size(); ++j) {
          const real_t* src = ptr(s.in_nodes[j]);
          const index_t chan = s.concat_c[j];
          for (index_t ni = 0; ni < o.n; ++ni) {
            std::memcpy(dst + (ni * o.c + c_off) * hw,
                        src + ni * chan * hw,
                        size_t(chan * hw) * sizeof(real_t));
          }
          c_off += chan;
        }
        break;
      }
      case OpKind::kAdd: {
        TRACE_SPAN_V("graph.step.add");
        const real_t* a = ptr(s.in_nodes[0]);
        const real_t* b = ptr(s.in_nodes[1]);
        parallel_for_blocked(
            0, s.out_shape.numel(),
            [&](index_t lo, index_t hi) {
              for (index_t i = lo; i < hi; ++i) dst[i] = a[i] + b[i];
            },
            /*grain=*/1 << 16);
        break;
      }
      case OpKind::kInput:
        break;
    }
  }
  return out;
}

}  // namespace ccovid::graph
