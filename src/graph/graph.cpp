#include "graph/graph.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/env.h"
#include "ops/activations.h"
#include "ops/batchnorm.h"
#include "ops/concat.h"
#include "ops/conv2d.h"
#include "ops/deconv2d.h"

namespace ccovid::graph {

// ------------------------------------------------------------- flag

namespace {

// -1 = uninitialized (read CCOVID_GRAPH_FUSION on first query).
std::atomic<int> g_fusion{-1};

bool fusion_from_env() {
  // Through the shared env helper: unknown spellings warn once and
  // fall back to the default (fusion on).
  const auto v = env::choice(
      "CCOVID_GRAPH_FUSION",
      {"0", "off", "false", "1", "on", "true"}, "on");
  if (!v) return true;
  return !(*v == "0" || *v == "off" || *v == "false");
}

}  // namespace

bool fusion_enabled() {
  int v = g_fusion.load(std::memory_order_relaxed);
  if (v < 0) {
    const bool b = fusion_from_env();
    g_fusion.store(b ? 1 : 0, std::memory_order_relaxed);
    return b;
  }
  return v == 1;
}

void set_fusion_enabled(bool on) {
  g_fusion.store(on ? 1 : 0, std::memory_order_relaxed);
}

// --------------------------------------------------------------- IR

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kInput: return "input";
    case OpKind::kConv2d: return "conv2d";
    case OpKind::kDeconv2d: return "deconv2d";
    case OpKind::kBatchNorm: return "batchnorm";
    case OpKind::kRelu: return "relu";
    case OpKind::kLeakyRelu: return "leaky_relu";
    case OpKind::kMaxPool: return "max_pool";
    case OpKind::kUnpool: return "unpool";
    case OpKind::kConcat: return "concat";
    case OpKind::kAdd: return "add";
  }
  return "?";
}

std::string ValueShape::str() const {
  return "(" + std::to_string(n) + "," + std::to_string(c) + "," +
         std::to_string(h) + "," + std::to_string(w) + ")";
}

int Graph::push(Node n) {
  n.id = int(nodes_.size());
  nodes_.push_back(std::move(n));
  output_ = nodes_.back().id;
  return output_;
}

const Node& Graph::in_node(int id, const char* who) const {
  if (id < 0 || id >= int(nodes_.size())) {
    throw std::invalid_argument(std::string("graph: ") + who +
                                ": input id out of range");
  }
  return nodes_[size_t(id)];
}

int Graph::add_input(ValueShape s) {
  if (!nodes_.empty()) {
    throw std::invalid_argument("graph: add_input: single input only");
  }
  if (s.n < 1 || s.c < 1 || s.h < 1 || s.w < 1) {
    throw std::invalid_argument("graph: add_input: bad shape " + s.str());
  }
  Node n;
  n.kind = OpKind::kInput;
  n.shape = s;
  return push(std::move(n));
}

int Graph::add_conv2d(int in, Tensor weight, Tensor bias, index_t pad) {
  const Node& src = in_node(in, "conv2d");
  if (weight.rank() != 4 || weight.dim(2) != weight.dim(3)) {
    throw std::invalid_argument("graph: conv2d: weight must be (Cout,Cin,K,K)");
  }
  if (weight.dim(1) != src.shape.c) {
    throw std::invalid_argument("graph: conv2d: channel mismatch");
  }
  if (bias.defined() && (bias.rank() != 1 || bias.dim(0) != weight.dim(0))) {
    throw std::invalid_argument("graph: conv2d: bias must be (Cout)");
  }
  if (pad < 0) throw std::invalid_argument("graph: conv2d: negative pad");
  const index_t k = weight.dim(2);
  Node n;
  n.kind = OpKind::kConv2d;
  n.inputs = {in};
  n.ksize = k;
  n.pad = pad;
  n.shape = {src.shape.n, weight.dim(0),
             ops::conv_out_extent(src.shape.h, k, 1, pad),
             ops::conv_out_extent(src.shape.w, k, 1, pad)};
  if (n.shape.h <= 0 || n.shape.w <= 0) {
    throw std::invalid_argument("graph: conv2d: non-positive output extent");
  }
  n.weight = std::move(weight);
  n.bias = std::move(bias);
  return push(std::move(n));
}

int Graph::add_deconv2d(int in, Tensor weight, Tensor bias, index_t pad) {
  const Node& src = in_node(in, "deconv2d");
  if (weight.rank() != 4 || weight.dim(2) != weight.dim(3)) {
    throw std::invalid_argument(
        "graph: deconv2d: weight must be (Cin,Cout,K,K)");
  }
  if (weight.dim(0) != src.shape.c) {
    throw std::invalid_argument("graph: deconv2d: channel mismatch");
  }
  if (bias.defined() && (bias.rank() != 1 || bias.dim(0) != weight.dim(1))) {
    throw std::invalid_argument("graph: deconv2d: bias must be (Cout)");
  }
  if (pad < 0) throw std::invalid_argument("graph: deconv2d: negative pad");
  const index_t k = weight.dim(2);
  Node n;
  n.kind = OpKind::kDeconv2d;
  n.inputs = {in};
  n.ksize = k;
  n.pad = pad;
  n.shape = {src.shape.n, weight.dim(1),
             ops::deconv_out_extent(src.shape.h, k, 1, pad),
             ops::deconv_out_extent(src.shape.w, k, 1, pad)};
  if (n.shape.h <= 0 || n.shape.w <= 0) {
    throw std::invalid_argument("graph: deconv2d: non-positive output extent");
  }
  n.weight = std::move(weight);
  n.bias = std::move(bias);
  return push(std::move(n));
}

int Graph::add_batchnorm(int in, Tensor gamma, Tensor beta,
                         Tensor running_mean, Tensor running_var,
                         real_t eps) {
  const Node& src = in_node(in, "batchnorm");
  for (const Tensor* t : {&gamma, &beta, &running_mean, &running_var}) {
    if (!t->defined() || t->rank() != 1 || t->dim(0) != src.shape.c) {
      throw std::invalid_argument("graph: batchnorm: params must be (C)");
    }
  }
  Node n;
  n.kind = OpKind::kBatchNorm;
  n.inputs = {in};
  n.shape = src.shape;
  n.gamma = std::move(gamma);
  n.beta = std::move(beta);
  n.mean = std::move(running_mean);
  n.var = std::move(running_var);
  n.eps = eps;
  return push(std::move(n));
}

int Graph::add_relu(int in) {
  Node n;
  n.kind = OpKind::kRelu;
  n.inputs = {in};
  n.shape = in_node(in, "relu").shape;
  return push(std::move(n));
}

int Graph::add_leaky_relu(int in, real_t slope) {
  Node n;
  n.kind = OpKind::kLeakyRelu;
  n.inputs = {in};
  n.shape = in_node(in, "leaky_relu").shape;
  n.slope = slope;
  return push(std::move(n));
}

int Graph::add_max_pool(int in, ops::Pool2dParams p) {
  const Node& src = in_node(in, "max_pool");
  if (p.ksize < 1 || p.stride < 1 || p.pad < 0 || p.pad >= p.ksize) {
    throw std::invalid_argument("graph: max_pool: bad params");
  }
  Node n;
  n.kind = OpKind::kMaxPool;
  n.inputs = {in};
  n.pool = p;
  n.shape = {src.shape.n, src.shape.c, ops::pool_out_extent(src.shape.h, p),
             ops::pool_out_extent(src.shape.w, p)};
  if (n.shape.h <= 0 || n.shape.w <= 0) {
    throw std::invalid_argument("graph: max_pool: non-positive output extent");
  }
  return push(std::move(n));
}

int Graph::add_unpool(int in, index_t scale) {
  const Node& src = in_node(in, "unpool");
  if (scale < 1) throw std::invalid_argument("graph: unpool: scale < 1");
  Node n;
  n.kind = OpKind::kUnpool;
  n.inputs = {in};
  n.scale = scale;
  n.shape = {src.shape.n, src.shape.c, src.shape.h * scale,
             src.shape.w * scale};
  return push(std::move(n));
}

int Graph::add_concat(const std::vector<int>& ins) {
  if (ins.empty()) throw std::invalid_argument("graph: concat: no inputs");
  const Node& first = in_node(ins[0], "concat");
  index_t total_c = 0;
  for (int id : ins) {
    const Node& src = in_node(id, "concat");
    if (src.shape.n != first.shape.n || src.shape.h != first.shape.h ||
        src.shape.w != first.shape.w) {
      throw std::invalid_argument("graph: concat: shape mismatch");
    }
    total_c += src.shape.c;
  }
  Node n;
  n.kind = OpKind::kConcat;
  n.inputs = ins;
  n.shape = {first.shape.n, total_c, first.shape.h, first.shape.w};
  return push(std::move(n));
}

int Graph::add_add(int a, int b) {
  const Node& na = in_node(a, "add");
  const Node& nb = in_node(b, "add");
  if (na.shape != nb.shape) {
    throw std::invalid_argument("graph: add: shape mismatch " +
                                na.shape.str() + " vs " + nb.shape.str());
  }
  Node n;
  n.kind = OpKind::kAdd;
  n.inputs = {a, b};
  n.shape = na.shape;
  return push(std::move(n));
}

void Graph::mark_output(int id) {
  in_node(id, "mark_output");
  output_ = id;
}

int Graph::output() const {
  if (output_ < 0) throw std::logic_error("graph: empty graph has no output");
  return output_;
}

ValueShape Graph::input_shape() const {
  if (nodes_.empty() || nodes_[0].kind != OpKind::kInput) {
    throw std::logic_error("graph: no input node");
  }
  return nodes_[0].shape;
}

std::vector<int> Graph::schedule() const {
  // Kahn with a smallest-id-first ready set. Ids are already born in a
  // valid topological order, so this is equivalent to 0..N-1 — but
  // computing it from the edges (and asserting every node is reached)
  // keeps the invariant honest if construction ever changes.
  const int n = num_nodes();
  std::vector<int> indegree(size_t(n), 0);
  for (const Node& node : nodes_) {
    indegree[size_t(node.id)] = int(node.inputs.size());
  }
  const auto cons = consumers();
  std::vector<int> ready, order;
  order.reserve(size_t(n));
  for (int i = 0; i < n; ++i) {
    if (indegree[size_t(i)] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    const auto it = std::min_element(ready.begin(), ready.end());
    const int id = *it;
    ready.erase(it);
    order.push_back(id);
    for (int c : cons[size_t(id)]) {
      if (--indegree[size_t(c)] == 0) ready.push_back(c);
    }
  }
  if (int(order.size()) != n) {
    throw std::logic_error("graph: cycle detected in schedule()");
  }
  return order;
}

std::vector<std::vector<int>> Graph::consumers() const {
  auto out = std::vector<std::vector<int>>(static_cast<size_t>(num_nodes()));
  for (const Node& node : nodes_) {
    // A node reading the same value twice (add(x, x)) counts once per
    // edge; consumer-count-based fusion legality needs exactly that.
    for (int in : node.inputs) out[size_t(in)].push_back(node.id);
  }
  return out;
}

// -------------------------------------------------------- reference

namespace {

/// Op-by-op sweep retaining EVERY node value (run_reference keeps only
/// the output alive transitively; calibrate() needs all of them).
std::vector<Tensor> eval_all_nodes(const Graph& g, const Tensor& input) {
  if (input.rank() != 4) {
    throw std::invalid_argument("run_reference: input must be NCHW");
  }
  std::vector<Tensor> values(size_t(g.num_nodes()));
  for (int id : g.schedule()) {
    const Node& n = g.node(id);
    Tensor& out = values[size_t(id)];
    switch (n.kind) {
      case OpKind::kInput:
        out = input;
        break;
      case OpKind::kConv2d:
        out = ops::conv2d(values[size_t(n.inputs[0])], n.weight, n.bias,
                          ops::Conv2dParams{1, n.pad});
        break;
      case OpKind::kDeconv2d:
        out = ops::deconv2d(values[size_t(n.inputs[0])], n.weight, n.bias,
                            ops::Deconv2dParams{1, n.pad});
        break;
      case OpKind::kBatchNorm:
        out = ops::batch_norm_infer(values[size_t(n.inputs[0])], n.gamma,
                                    n.beta, n.mean, n.var, n.eps);
        break;
      case OpKind::kRelu:
        out = ops::relu(values[size_t(n.inputs[0])]);
        break;
      case OpKind::kLeakyRelu:
        out = ops::leaky_relu(values[size_t(n.inputs[0])], n.slope);
        break;
      case OpKind::kMaxPool:
        out = ops::max_pool2d(values[size_t(n.inputs[0])], n.pool).output;
        break;
      case OpKind::kUnpool:
        out = ops::unpool2d_bilinear(values[size_t(n.inputs[0])], n.scale);
        break;
      case OpKind::kConcat: {
        std::vector<Tensor> ins;
        ins.reserve(n.inputs.size());
        for (int in : n.inputs) ins.push_back(values[size_t(in)]);
        out = ops::concat_channels(ins);
        break;
      }
      case OpKind::kAdd:
        out = values[size_t(n.inputs[0])].add(values[size_t(n.inputs[1])]);
        break;
    }
  }
  return values;
}

}  // namespace

Tensor run_reference(const Graph& g, const Tensor& input) {
  return eval_all_nodes(g, input)[size_t(g.output())];
}

Calibration calibrate(const Graph& g, const std::vector<Tensor>& batch) {
  if (batch.empty()) {
    throw std::invalid_argument("calibrate: empty batch");
  }
  std::vector<float> absmax(size_t(g.num_nodes()), 0.0f);
  for (const Tensor& input : batch) {
    const std::vector<Tensor> values = eval_all_nodes(g, input);
    for (int id = 0; id < g.num_nodes(); ++id) {
      const Tensor& v = values[size_t(id)];
      if (!v.defined()) continue;
      const real_t* p = v.data();
      float m = absmax[size_t(id)];
      const index_t n = v.numel();
      for (index_t i = 0; i < n; ++i) {
        const float a = std::fabs(p[i]);
        // NaN/Inf inputs degrade upstream (core/finite.h); here they
        // must not poison the scale, so only finite maxima count.
        if (a > m && a < std::numeric_limits<float>::infinity()) m = a;
      }
      absmax[size_t(id)] = m;
    }
  }
  Calibration cal;
  cal.node_scale.resize(size_t(g.num_nodes()));
  for (int id = 0; id < g.num_nodes(); ++id) {
    const float m = absmax[size_t(id)];
    cal.node_scale[size_t(id)] = m > 0.0f ? m / 127.0f : 1.0f;
  }
  // Unify each concat group (inputs + output share one scale) so the
  // quantized concat is pure byte movement. Groups can chain through
  // shared producers, so iterate to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Node& n : g.nodes()) {
      if (n.kind != OpKind::kConcat) continue;
      float s = cal.node_scale[size_t(n.id)];
      for (int in : n.inputs) s = std::max(s, cal.node_scale[size_t(in)]);
      for (int in : n.inputs) {
        if (cal.node_scale[size_t(in)] != s) {
          cal.node_scale[size_t(in)] = s;
          changed = true;
        }
      }
      if (cal.node_scale[size_t(n.id)] != s) {
        cal.node_scale[size_t(n.id)] = s;
        changed = true;
      }
    }
  }
  return cal;
}

// -------------------------------------------------------- utilities

FoldedConv fold_batchnorm(const Tensor& weight, const Tensor& bias,
                          const Tensor& gamma, const Tensor& beta,
                          const Tensor& mean, const Tensor& var, real_t eps,
                          bool deconv_layout) {
  const index_t cout = deconv_layout ? weight.dim(1) : weight.dim(0);
  if (gamma.dim(0) != cout) {
    throw std::invalid_argument("fold_batchnorm: channel mismatch");
  }
  FoldedConv f{weight.clone(), Tensor({cout})};
  const real_t* gp = gamma.data();
  const real_t* bp = beta.data();
  const real_t* mp = mean.data();
  const real_t* vp = var.data();
  real_t* fb = f.bias.data();
  real_t* fw = f.weight.data();
  const index_t k2 = weight.dim(2) * weight.dim(3);
  for (index_t co = 0; co < cout; ++co) {
    const real_t inv_std = 1.0f / std::sqrt(vp[co] + eps);
    const real_t s = gp[co] * inv_std;
    const real_t b0 = bias.defined() ? bias.data()[co] : 0.0f;
    fb[co] = (b0 - mp[co]) * s + bp[co];
    if (deconv_layout) {
      // (Cin, Cout, K, K): the co slice is strided.
      const index_t cin = weight.dim(0), w_cout = weight.dim(1);
      for (index_t ci = 0; ci < cin; ++ci) {
        real_t* slice = fw + (ci * w_cout + co) * k2;
        for (index_t i = 0; i < k2; ++i) slice[i] *= s;
      }
    } else {
      real_t* slice = fw + co * weight.dim(1) * k2;
      for (index_t i = 0; i < weight.dim(1) * k2; ++i) slice[i] *= s;
    }
  }
  return f;
}

}  // namespace ccovid::graph
