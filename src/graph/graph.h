// Static inference graph IR + eval-mode fusion over src/ops (DESIGN.md
// §12). Networks capture their forward pass into a Graph via explicit
// builders (nn/ddnet.cpp, nn/unet.cpp); compile() then
//
//   1. fuses conv→batchnorm(→relu/leaky) chains into single kernel
//      dispatches whose batch-norm scale/shift are hoisted to
//      per-channel constants applied as an in-register epilogue,
//   2. plans liveness-based buffer reuse over core/arena.h slabs so a
//      steady-state run performs no intermediate allocations, and
//   3. emits a flat step schedule the executor replays per input.
//
// THE BITWISE CONTRACT. A compiled graph — fused or not — reproduces
// the op-by-op interpreter (run_reference, and therefore the nn::Module
// eval forward) bit for bit, at every SIMD backend and task-engine
// width. That holds because fusion never re-associates float math:
//
//  * conv/deconv steps call the SAME simd::KernelTable row kernels the
//    ops use, per (n, cout) plane in the same tap order;
//  * batch-norm is NOT folded into the weights on the executed path.
//    Folding w' = w * gamma/sqrt(var+eps) changes rounding, so instead
//    the compiler precomputes batch_norm_infer's exact per-channel
//    (scale, shift) floats and the fused kernel applies them per
//    element AFTER the convolution — the same two operations the
//    unfused pipeline performs, minus the intermediate buffer;
//  * activations keep the per-element expressions of simd relu /
//    leaky_relu (scale_shift_act shares them verbatim).
//
// The closed-form weight fold is still provided (fold_batchnorm) for
// the quantization work in ROADMAP item 4; it is tested to tolerance,
// not bitwise, and the executor does not use it.
//
// Fusion legality: a batch-norm is absorbable only when its running
// statistics are frozen — i.e. eval mode and NOT
// set_batch_stats_always (instance-norm mode recomputes statistics per
// input, so nothing is constant to hoist). The nn builders enforce
// this by bypassing the graph entirely in those modes.
//
// Only stride-1 conv/deconv are supported (everything DDnet/UNet
// execute); builders must not emit other strides.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/precision.h"
#include "core/tensor.h"
#include "ops/pool2d.h"
#include "ops/unpool2d.h"

namespace ccovid::graph {

// ------------------------------------------------------------- flag

/// Global fusion switch, initialized once from CCOVID_GRAPH_FUSION
/// (0/off/false disable; anything else — including unset — enables).
/// The `--graph-fusion on|off` CLI flag maps here. When off, networks
/// fall back to the op-by-op module interpreter.
bool fusion_enabled();
void set_fusion_enabled(bool on);

/// RAII override of the fusion flag (tests compare on/off digests).
class FusionGuard {
 public:
  explicit FusionGuard(bool on) : prev_(fusion_enabled()) {
    set_fusion_enabled(on);
  }
  ~FusionGuard() { set_fusion_enabled(prev_); }
  FusionGuard(const FusionGuard&) = delete;
  FusionGuard& operator=(const FusionGuard&) = delete;

 private:
  bool prev_;
};

// --------------------------------------------------------------- IR

enum class OpKind : int {
  kInput = 0,
  kConv2d,      // stride-1, square kernel, zero padding
  kDeconv2d,    // stride-1 gather form
  kBatchNorm,   // frozen running statistics (eval mode)
  kRelu,
  kLeakyRelu,
  kMaxPool,
  kUnpool,      // bilinear upsample by integer scale
  kConcat,      // channel concatenation
  kAdd,         // elementwise sum (residual shortcut)
};

const char* op_kind_name(OpKind k);

/// NCHW shape of every value in the graph.
struct ValueShape {
  index_t n = 0, c = 0, h = 0, w = 0;
  index_t numel() const { return n * c * h * w; }
  bool operator==(const ValueShape& o) const {
    return n == o.n && c == o.c && h == o.h && w == o.w;
  }
  bool operator!=(const ValueShape& o) const { return !(*this == o); }
  std::string str() const;
};

/// One IR node. Produces exactly one value; `shape` is inferred at
/// add-time. Attribute fields are meaningful per kind only.
struct Node {
  OpKind kind = OpKind::kInput;
  int id = -1;
  std::vector<int> inputs;
  ValueShape shape;

  // conv / deconv: weight (Cout,Cin,K,K) / (Cin,Cout,K,K), optional
  // bias (Cout). Shallow copies — storage is shared with the module
  // parameters, so in-place weight updates are visible without
  // recapture (derived batch-norm constants are NOT; recompile).
  Tensor weight, bias;
  index_t ksize = 0, pad = 0;

  // batchnorm: per-channel tensors + eps.
  Tensor gamma, beta, mean, var;
  real_t eps = 0.0f;

  real_t slope = 0.0f;           // leaky relu
  ops::Pool2dParams pool{};      // max pool
  index_t scale = 0;             // unpool
};

/// Builder + container. add_* methods validate and infer shapes
/// eagerly (throwing std::invalid_argument on a malformed graph), and
/// return the new node's id. Inputs must already exist, so ids are
/// born topologically sorted; schedule() is the canonical
/// deterministic order used by every pass and by the executor.
class Graph {
 public:
  int add_input(ValueShape s);
  int add_conv2d(int in, Tensor weight, Tensor bias, index_t pad);
  int add_deconv2d(int in, Tensor weight, Tensor bias, index_t pad);
  int add_batchnorm(int in, Tensor gamma, Tensor beta, Tensor running_mean,
                    Tensor running_var, real_t eps);
  int add_relu(int in);
  int add_leaky_relu(int in, real_t slope);
  int add_max_pool(int in, ops::Pool2dParams p);
  int add_unpool(int in, index_t scale);
  int add_concat(const std::vector<int>& ins);
  int add_add(int a, int b);

  /// Marks the graph output (defaults to the last node added).
  void mark_output(int id);
  int output() const;

  const Node& node(int id) const { return nodes_.at(size_t(id)); }
  const std::vector<Node>& nodes() const { return nodes_; }
  int num_nodes() const { return int(nodes_.size()); }
  ValueShape input_shape() const;

  /// Kahn topological order, smallest-id-first among ready nodes — a
  /// pure function of the graph structure (asserted deterministic by
  /// tests/test_graph.cpp).
  std::vector<int> schedule() const;

  /// consumers[id] = ids of nodes reading this node's value.
  std::vector<std::vector<int>> consumers() const;

 private:
  int push(Node n);
  const Node& in_node(int id, const char* who) const;

  std::vector<Node> nodes_;
  int output_ = -1;
};

// ------------------------------------------------------ compilation

/// Symmetric per-node activation scales for the int8 path: value v of
/// node id dequantizes as q * node_scale[id]. Produced by calibrate()
/// from a representative batch (absmax / 127, concat groups unified so
/// a concat is pure data movement in the quantized domain).
struct Calibration {
  std::vector<float> node_scale;
  bool defined() const { return !node_scale.empty(); }
};

/// Min/max calibration: runs the reference interpreter over every
/// batch input, records each node's absolute maximum, and converts the
/// maxima to symmetric scales. Deterministic for a fixed batch (the
/// sweep is sequential; no atomics, no reduction reordering).
Calibration calibrate(const Graph& g, const std::vector<Tensor>& batch);

struct CompileOptions {
  /// Fuse conv→bn(→act) and bn→act chains; hoist bn scale/shift and
  /// missing conv biases into constants. Off = one step per node
  /// (same arena planning, no chain collapsing) — the unfused half of
  /// the fusion-equivalence battery.
  bool fuse = true;

  /// Storage format for weights and intermediate activations on the
  /// executed path (DESIGN.md §13). kF32 is the bitwise-contract path;
  /// fp16/bf16 store values at half the bytes with fp32 accumulation;
  /// int8 runs the calibrated symmetric-quantized pipeline and
  /// requires `calibration`. The graph input and output tensors are
  /// always fp32 — conversion happens at the boundary.
  core::Precision precision = core::Precision::kF32;

  /// Required when precision == kInt8; ignored otherwise.
  Calibration calibration;
};

/// Liveness/placement record for one intermediate value (tests assert
/// the planner invariant: overlapping live ranges never share a slab).
struct BufferPlan {
  int node = -1;        ///< producing node id
  int slab = -1;        ///< -1: external (graph input / output)
  index_t floats = 0;   ///< size of the value
  int def_step = -1;    ///< schedule position producing it
  int last_use = -1;    ///< schedule position of the last reader
};

class CompiledGraph {
 public:
  struct Stats {
    int steps = 0;          ///< executed steps after fusion
    int fused_away = 0;     ///< nodes absorbed into a predecessor
    int slabs = 0;          ///< arena slabs planned
    index_t slab_floats = 0;///< total slab footprint
  };

  /// Executes the graph on `input` (shape must match the captured
  /// input shape). Thread-safe: concurrent callers get independent
  /// per-thread arena scratch. Steady state performs no fresh heap
  /// allocations beyond the returned tensor (alloc-cache recycled).
  Tensor run(const Tensor& input) const;

  const Stats& stats() const;
  const std::vector<BufferPlan>& plan() const;

  // Movable pimpl.
  CompiledGraph(CompiledGraph&&) noexcept;
  CompiledGraph& operator=(CompiledGraph&&) noexcept;
  ~CompiledGraph();

 private:
  friend CompiledGraph compile(const Graph&, const CompileOptions&);
  struct Impl;
  explicit CompiledGraph(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Runs fusion (per CompileOptions), buffer planning and schedule
/// emission. Traced as graph.compile / graph.fuse / graph.plan.
CompiledGraph compile(const Graph& g, const CompileOptions& opt = {});

/// Op-by-op interpreter over the public ops:: entry points — the
/// unfused reference the equivalence fuzzer compares against. Matches
/// the nn::Module eval-mode forward bitwise.
Tensor run_reference(const Graph& g, const Tensor& input);

// -------------------------------------------------------- utilities

/// Closed-form batch-norm fold into conv weights:
///   w'[co,...] = w[co,...] * gamma[co] / sqrt(var[co] + eps)
///   b'[co]     = (b[co] - mean[co]) * gamma[co] / sqrt(var[co] + eps)
///                + beta[co]
/// `deconv_layout` selects the (Cin,Cout,K,K) channel axis. Changes
/// rounding versus the epilogue form, so the executor does not use it;
/// provided (and tested to tolerance) for the low-precision backends.
struct FoldedConv {
  Tensor weight;
  Tensor bias;
};
FoldedConv fold_batchnorm(const Tensor& weight, const Tensor& bias,
                          const Tensor& gamma, const Tensor& beta,
                          const Tensor& mean, const Tensor& var, real_t eps,
                          bool deconv_layout = false);

}  // namespace ccovid::graph
