#include "hetero/ddnet_counts.h"

#include "ops/instrumented.h"

namespace ccovid::hetero {

namespace {

struct Acc {
  NetworkCounts counts;

  void conv(index_t cin, index_t h, index_t w, index_t cout, index_t k) {
    counts.conv += ops::count_conv2d(1, cin, h, w, cout, k,
                                     ops::Conv2dParams::same(k));
    counts.conv_launches += 1;
  }
  void deconv(index_t cin, index_t h, index_t w, index_t cout, index_t k) {
    counts.deconv_gather += ops::count_deconv2d_gather(
        1, cin, h, w, cout, k, ops::Deconv2dParams::same(k));
    counts.deconv_scatter += ops::count_deconv2d_scatter(
        1, cin, h, w, cout, k, ops::Deconv2dParams::same(k));
    counts.deconv_launches += 1;
  }
  void bn_lrelu(index_t c, index_t h, index_t w) {
    counts.other += ops::count_batch_norm(1, c, h * w);
    counts.other += ops::count_leaky_relu(c * h * w);
    counts.other_launches += 2;
  }
  void pool(index_t c, index_t h, index_t w) {
    counts.other += ops::count_max_pool2d(1, c, h, w, {3, 2, 1});
    counts.other_launches += 1;
  }
  void unpool(index_t c, index_t h, index_t w) {
    counts.other += ops::count_unpool2d(1, c, h, w, 2);
    counts.other_launches += 1;
  }
};

}  // namespace

NetworkCounts count_ddnet(const nn::DDnetConfig& cfg, index_t h, index_t w) {
  Acc a;
  const index_t base = cfg.base_channels;
  const index_t g = cfg.growth;

  // Stem: 7x7 conv + BN + leaky-ReLU at full resolution.
  a.conv(cfg.in_channels, h, w, base, 7);
  a.bn_lrelu(base, h, w);

  index_t lh = h, lw = w;
  for (int level = 0; level < cfg.levels; ++level) {
    a.pool(base, lh, lw);
    lh /= 2;
    lw /= 2;
    // Dense block: each layer is BN + lrelu + 1x1 conv (2g) + BN +
    // lrelu + 5x5 conv (g) on the growing concatenation.
    index_t c = base;
    for (int l = 0; l < cfg.dense_layers; ++l) {
      a.bn_lrelu(c, lh, lw);
      a.conv(c, lh, lw, 4 * g, 1);
      a.bn_lrelu(4 * g, lh, lw);
      a.conv(4 * g, lh, lw, g, 5);
      c += g;
    }
    // Transition 1x1 back to trunk width.
    a.conv(c, lh, lw, base, 1);
    a.bn_lrelu(base, lh, lw);
  }

  for (int level = 0; level < cfg.levels; ++level) {
    const bool is_output = (level == cfg.levels - 1);
    a.unpool(base, lh, lw);
    lh *= 2;
    lw *= 2;
    // concat(base + base) -> deconv5 -> 2*base -> deconv1.
    a.deconv(2 * base, lh, lw, 2 * base, 5);
    a.bn_lrelu(2 * base, lh, lw);
    a.deconv(2 * base, lh, lw, is_output ? cfg.out_channels : base, 1);
    if (!is_output) a.bn_lrelu(base, lh, lw);
  }
  return a.counts;
}

}  // namespace ccovid::hetero
