// Layer-by-layer operation counting for a whole DDnet, driving the
// Table 4/5/7 projections and the Table 6 report. Walks the exact layer
// sequence of nn::DDnet (stem, per-level pool + dense block + transition,
// decoder unpool + deconv pair) and accumulates the instrumented counts
// per kernel class, in both the gather (REF) and scatter (baseline)
// deconvolution formulations.
#pragma once

#include "hetero/device_model.h"
#include "nn/ddnet.h"

namespace ccovid::hetero {

/// Counts for one DDnet forward pass on an (h, w) single-channel image.
/// "conv" covers all 2-D convolutions; "other" covers pooling,
/// un-pooling, batch norm and leaky-ReLU (the paper's "other kernels").
NetworkCounts count_ddnet(const nn::DDnetConfig& cfg, index_t h, index_t w);

}  // namespace ccovid::hetero
