#include "hetero/device_model.h"

#include <algorithm>
#include <stdexcept>

namespace ccovid::hetero {

std::vector<DeviceSpec> paper_devices() {
  std::vector<DeviceSpec> devices;

  DeviceSpec v100;
  v100.name = "Nvidia V100 GPU";
  v100.cores = 5120;
  v100.bandwidth_GBps = 900;
  v100.freq_MHz = 1380;
  devices.push_back(v100);

  DeviceSpec p100;
  p100.name = "Nvidia P100 GPU";
  p100.cores = 3584;
  p100.bandwidth_GBps = 732;
  p100.freq_MHz = 1328;
  // Older memory subsystem; lower achieved fraction of peak.
  p100.mem_efficiency = 0.55;
  devices.push_back(p100);

  DeviceSpec vega;
  vega.name = "AMD Radeon Vega Frontier GPU";
  vega.cores = 4096;
  vega.bandwidth_GBps = 480;
  vega.freq_MHz = 1600;
  vega.mem_efficiency = 0.85;
  devices.push_back(vega);

  DeviceSpec t4;
  t4.name = "Nvidia T4 GPU";
  t4.cores = 2560;
  t4.bandwidth_GBps = 320;
  t4.freq_MHz = 1590;
  devices.push_back(t4);

  DeviceSpec cpu;
  cpu.name = "Intel Xeon Gold 6128 CPU";
  cpu.cores = 24;  // two sockets, as listed in Table 4
  cpu.bandwidth_GBps = 119;
  cpu.freq_MHz = 3400;
  cpu.flops_per_cycle = 16;  // AVX-512 FMA
  cpu.mem_efficiency = 0.6;
  cpu.launch_overhead_s = 1e-6;
  // CPU caches absorb most of the partial-sum RMW traffic: the paper
  // measures only a 3.3x baseline/REF gap on this platform.
  cpu.scatter_penalty = 6.0;
  devices.push_back(cpu);

  DeviceSpec fpga;
  fpga.name = "Intel Arria 10 GX 1150 FPGA";
  fpga.cores = 2;  // compute units (§4.2.3)
  fpga.bandwidth_GBps = 2.5;
  fpga.freq_MHz = 184;
  // Vectorization x5 and unroll x5 per CU pipeline.
  fpga.flops_per_cycle = 25;
  fpga.mem_efficiency = 0.8;
  fpga.launch_overhead_s = 1e-4;
  // Deeply pipelined accumulators keep partial sums on chip.
  fpga.scatter_penalty = 4.0;
  // Missing unroll hurts an FPGA pipeline far more than an OoO core:
  // the paper's FPGA ablation drops 127.7 -> 65.8 s with LU alone.
  fpga.no_unroll_slowdown = 1.9;
  fpga.is_fpga = true;
  fpga.reconfig_overhead_s = 2.0;  // bitstream swap between kernels
  devices.push_back(fpga);

  return devices;
}

DeviceSpec device_by_name(const std::string& name) {
  for (const auto& d : paper_devices()) {
    if (d.name == name) return d;
  }
  throw std::invalid_argument("device_by_name: unknown device " + name);
}

double project_kernel_seconds(const DeviceSpec& dev,
                              const OpCounters& counters, KernelKind kind,
                              const ops::KernelOptions& opt,
                              index_t launches, double bytes_per_element) {
  if (bytes_per_element <= 0.0) {
    throw std::invalid_argument(
        "project_kernel_seconds: bytes_per_element must be positive");
  }
  // Counters track element accesses; the storage format sets the bytes
  // each one moves.
  double bytes =
      static_cast<double>(counters.global_loads + counters.global_stores) *
      bytes_per_element;
  double flops = static_cast<double>(counters.flops);

  double bandwidth = dev.bandwidth_GBps * 1e9 * dev.mem_efficiency;
  double compute = dev.peak_gflops() * 1e9;

  if (kind == KernelKind::kDeconvolution && !opt.refactor) {
    // Scatter partial sums: RMW traffic to the output cannot coalesce.
    bandwidth /= dev.scatter_penalty;
  }
  if (!opt.prefetch) {
    bytes *= 1.0 + dev.no_prefetch_traffic;
  }
  if (!opt.unroll) {
    compute /= dev.no_unroll_slowdown;
  }
  const double t_mem = bytes / bandwidth;
  const double t_cmp = flops / compute;
  return std::max(t_mem, t_cmp) +
         static_cast<double>(launches) * dev.launch_overhead_s;
}

ProjectedBreakdown project_network_seconds(const DeviceSpec& dev,
                                           const NetworkCounts& counts,
                                           const ops::KernelOptions& opt,
                                           double bytes_per_element) {
  ProjectedBreakdown b;
  b.conv_s = project_kernel_seconds(dev, counts.conv,
                                    KernelKind::kConvolution, opt,
                                    counts.conv_launches, bytes_per_element);
  const OpCounters& dc =
      opt.refactor ? counts.deconv_gather : counts.deconv_scatter;
  b.deconv_s =
      project_kernel_seconds(dev, dc, KernelKind::kDeconvolution, opt,
                             counts.deconv_launches, bytes_per_element);
  b.other_s =
      project_kernel_seconds(dev, counts.other, KernelKind::kOther, opt,
                             counts.other_launches, bytes_per_element);
  if (dev.is_fpga) {
    // Runtime reconfiguration between the convolution and deconvolution
    // bitstreams (Fig. 10): one swap each way.
    b.other_s += 2.0 * dev.reconfig_overhead_s;
  }
  return b;
}

}  // namespace ccovid::hetero
