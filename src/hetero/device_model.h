// Analytical heterogeneous-platform performance model.
//
// We have no V100/P100/Vega/T4/Arria-10 hardware, so the cross-platform
// rows of Tables 4, 5 and 7 are *projected* from (a) the exact per-kernel
// global-memory traffic and flop counts measured by the instrumented
// kernels (src/ops/instrumented.h) and (b) a roofline model of each
// platform built from the specs the paper itself lists in Table 4
// (cores, peak bandwidth, frequency). The paper's own analysis motivates
// this: "the performance of our optimized OpenCL kernels across the
// various platforms ... tracks with the memory bandwidth of the
// platforms" (§5.1.3). The CPU row is also *measured* for real in the
// benchmarks; the projection's fidelity can be judged there.
//
// Model: t = max(bytes / eff_bandwidth, flops / eff_compute)
//            + launches * launch_overhead,
// with two option-dependent corrections matching §4.2:
//  * scatter (non-REF) deconvolution pays `scatter_penalty` on its
//    read-modify-write traffic (uncoalesced atomic partial sums) —
//    calibrated per device class against the paper's Baseline column;
//  * missing PF re-reads kernel parameters (small extra traffic);
//    missing LU costs a few percent of compute efficiency.
#pragma once

#include <string>
#include <vector>

#include "core/counters.h"
#include "ops/kernel_options.h"

namespace ccovid::hetero {

struct DeviceSpec {
  std::string name;
  double cores = 1;             ///< Table 4 "Number of Cores"
  double bandwidth_GBps = 1;    ///< Table 4 "Maximum Bandwidth"
  double freq_MHz = 1000;       ///< Table 4 "Maximum Frequency"
  double flops_per_cycle = 2;   ///< FMA lanes per core
  double mem_efficiency = 0.9;  ///< achieved fraction of peak bandwidth
  double launch_overhead_s = 5e-6;
  double scatter_penalty = 1000.0;  ///< RMW-traffic slowdown, baseline deconv
  double no_prefetch_traffic = 0.15;  ///< extra traffic fraction w/o PF
  double no_unroll_slowdown = 1.05;   ///< compute slowdown w/o LU
  bool is_fpga = false;
  double reconfig_overhead_s = 0.0;  ///< runtime reconfiguration (§4.2.3)

  double peak_gflops() const {
    return cores * freq_MHz * 1e6 * flops_per_cycle / 1e9;
  }
};

/// The six platforms of Table 4, parameterized from the table itself.
std::vector<DeviceSpec> paper_devices();
DeviceSpec device_by_name(const std::string& name);

enum class KernelKind { kConvolution, kDeconvolution, kOther };

/// Projected execution time of one kernel class under a given
/// optimization stage. `counters` must be the counts for the kernel
/// implementation that stage actually runs (gather vs scatter).
/// `bytes_per_element` is the storage width of weights/activations
/// (4 for fp32, 2 for fp16/bf16, 1 for int8 — core::precision_bytes):
/// the roofline's memory term scales with it directly, which is the
/// whole point of the low-precision backends on bandwidth-bound
/// platforms. The compute term is unchanged (accumulation stays fp32 /
/// int32 at full rate on every modeled device).
double project_kernel_seconds(const DeviceSpec& dev,
                              const OpCounters& counters, KernelKind kind,
                              const ops::KernelOptions& opt,
                              index_t launches,
                              double bytes_per_element = sizeof(real_t));

/// Sum over kernel classes plus (for FPGAs) the runtime-reconfiguration
/// overhead of swapping between the convolution and deconvolution
/// bitstreams (Fig. 10).
struct NetworkCounts {
  OpCounters conv;
  OpCounters deconv_gather;
  OpCounters deconv_scatter;
  OpCounters other;
  index_t conv_launches = 0;
  index_t deconv_launches = 0;
  index_t other_launches = 0;
};

struct ProjectedBreakdown {
  double conv_s = 0;
  double deconv_s = 0;
  double other_s = 0;
  double total() const { return conv_s + deconv_s + other_s; }
};

ProjectedBreakdown project_network_seconds(
    const DeviceSpec& dev, const NetworkCounts& counts,
    const ops::KernelOptions& opt,
    double bytes_per_element = sizeof(real_t));

}  // namespace ccovid::hetero
