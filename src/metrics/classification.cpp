#include "metrics/classification.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace ccovid::metrics {

namespace {

void check_inputs(const std::vector<double>& scores,
                  const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("classification: scores/labels size mismatch");
  }
  if (scores.empty()) {
    throw std::invalid_argument("classification: empty inputs");
  }
  for (int l : labels) {
    if (l != 0 && l != 1) {
      throw std::invalid_argument("classification: labels must be 0/1");
    }
  }
}

}  // namespace

double ConfusionMatrix::accuracy() const {
  const index_t t = total();
  return t == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(t);
}

double ConfusionMatrix::tpr() const {
  const index_t p = tp + fn;
  return p == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(p);
}

double ConfusionMatrix::fpr() const {
  const index_t n = fp + tn;
  return n == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(n);
}

double ConfusionMatrix::precision() const {
  const index_t d = tp + fp;
  return d == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(d);
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = tpr();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

ConfusionMatrix confusion_at_threshold(const std::vector<double>& scores,
                                       const std::vector<int>& labels,
                                       double threshold) {
  check_inputs(scores, labels);
  ConfusionMatrix m;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool pred = scores[i] >= threshold;
    if (labels[i] == 1) {
      pred ? ++m.tp : ++m.fn;
    } else {
      pred ? ++m.fp : ++m.tn;
    }
  }
  return m;
}

std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<int>& labels) {
  check_inputs(scores, labels);
  std::set<double> distinct(scores.begin(), scores.end());
  std::vector<RocPoint> pts;
  pts.reserve(distinct.size() + 2);
  // Threshold above every score: nothing predicted positive.
  pts.push_back({*distinct.rbegin() + 1.0, 0.0, 0.0});
  for (auto it = distinct.rbegin(); it != distinct.rend(); ++it) {
    const ConfusionMatrix m = confusion_at_threshold(scores, labels, *it);
    pts.push_back({*it, m.fpr(), m.tpr()});
  }
  std::sort(pts.begin(), pts.end(), [](const RocPoint& a, const RocPoint& b) {
    if (a.fpr != b.fpr) return a.fpr < b.fpr;
    return a.tpr < b.tpr;
  });
  return pts;
}

double auc(const std::vector<RocPoint>& roc) {
  double area = 0.0;
  for (std::size_t i = 1; i < roc.size(); ++i) {
    const double dx = roc[i].fpr - roc[i - 1].fpr;
    area += dx * 0.5 * (roc[i].tpr + roc[i - 1].tpr);
  }
  return area;
}

double auc(const std::vector<double>& scores,
           const std::vector<int>& labels) {
  return auc(roc_curve(scores, labels));
}

double youden_optimal_threshold(const std::vector<double>& scores,
                                const std::vector<int>& labels) {
  check_inputs(scores, labels);
  std::set<double> distinct(scores.begin(), scores.end());
  double best_j = -2.0;
  double best_t = 0.5;
  for (double t : distinct) {
    const ConfusionMatrix m = confusion_at_threshold(scores, labels, t);
    const double j = m.tpr() - m.fpr();
    if (j > best_j) {
      best_j = j;
      best_t = t;
    }
  }
  return best_t;
}

double best_accuracy(const std::vector<double>& scores,
                     const std::vector<int>& labels,
                     double* best_threshold) {
  check_inputs(scores, labels);
  std::set<double> distinct(scores.begin(), scores.end());
  double best_acc = -1.0;
  double best_t = 0.5;
  for (double t : distinct) {
    const double acc = confusion_at_threshold(scores, labels, t).accuracy();
    if (acc > best_acc) {
      best_acc = acc;
      best_t = t;
    }
  }
  if (best_threshold != nullptr) *best_threshold = best_t;
  return best_acc;
}

}  // namespace ccovid::metrics
