// Classification metrics for §5.2: accuracy (Eq. 3), TPR/FPR (Eqs. 4-5),
// the ROC curve and its AUC, the confusion matrix (Table 9), and the
// optimal operating threshold (the paper reports 0.061).
#pragma once

#include <vector>

#include "core/types.h"

namespace ccovid::metrics {

struct ConfusionMatrix {
  index_t tp = 0;
  index_t fp = 0;
  index_t fn = 0;
  index_t tn = 0;

  index_t total() const { return tp + fp + fn + tn; }
  /// Eq. (3): (TP + TN) / all.
  double accuracy() const;
  /// Eq. (4): sensitivity / recall — the paper's headline 91%.
  double tpr() const;
  /// Eq. (5).
  double fpr() const;
  double specificity() const { return 1.0 - fpr(); }
  double precision() const;
  double f1() const;
};

/// Thresholds `scores` at `threshold` (score >= threshold => positive)
/// against binary ground-truth `labels` (1 = COVID-positive).
ConfusionMatrix confusion_at_threshold(const std::vector<double>& scores,
                                       const std::vector<int>& labels,
                                       double threshold);

struct RocPoint {
  double threshold;
  double fpr;
  double tpr;
};

/// ROC points swept over every distinct score (plus the (0,0)/(1,1)
/// endpoints), sorted by increasing FPR.
std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<int>& labels);

/// Area under the ROC curve by trapezoidal integration; equals the
/// Mann-Whitney U statistic up to ties.
double auc(const std::vector<RocPoint>& roc);
double auc(const std::vector<double>& scores, const std::vector<int>& labels);

/// Threshold maximizing Youden's J = TPR - FPR (the "optimal threshold"
/// of Table 9).
double youden_optimal_threshold(const std::vector<double>& scores,
                                const std::vector<int>& labels);

/// Accuracy at the accuracy-maximizing threshold; used for Fig. 13a.
double best_accuracy(const std::vector<double>& scores,
                     const std::vector<int>& labels, double* best_threshold);

}  // namespace ccovid::metrics
