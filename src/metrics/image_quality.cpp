#include "metrics/image_quality.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ccovid::metrics {

namespace {

// Separable Gaussian filtration with zero-padding-free ("valid")
// semantics: the output shrinks by window-1, so window statistics never
// mix with padding, matching the reference SSIM implementation.
Tensor filter_valid(const Tensor& img, const Tensor& win) {
  const index_t h = img.dim(0), w = img.dim(1), k = win.dim(0);
  if (h < k || w < k) {
    throw std::invalid_argument("ssim: image smaller than window");
  }
  const index_t ho = h - k + 1, wo = w - k + 1;
  Tensor tmp({h, wo});
  const real_t* ip = img.data();
  const real_t* wp = win.data();
  real_t* tp = tmp.data();
  // Horizontal pass.
  for (index_t y = 0; y < h; ++y) {
    for (index_t x = 0; x < wo; ++x) {
      real_t acc = 0.0f;
      for (index_t i = 0; i < k; ++i) acc += ip[y * w + x + i] * wp[i];
      tp[y * wo + x] = acc;
    }
  }
  // Vertical pass.
  Tensor out({ho, wo});
  real_t* op = out.data();
  for (index_t y = 0; y < ho; ++y) {
    for (index_t x = 0; x < wo; ++x) {
      real_t acc = 0.0f;
      for (index_t i = 0; i < k; ++i) acc += tp[(y + i) * wo + x] * wp[i];
      op[y * wo + x] = acc;
    }
  }
  return out;
}

void check_pair(const Tensor& a, const Tensor& b, const char* who) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(who) + ": shape mismatch " +
                                a.shape().str() + " vs " + b.shape().str());
  }
  if (a.rank() != 2) {
    throw std::invalid_argument(std::string(who) + ": expected 2-D images");
  }
}

}  // namespace

double mse(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("mse: shape mismatch");
  }
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  const index_t n = a.numel();
  double acc = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pa[i]) - pb[i];
    acc += d * d;
  }
  return acc / static_cast<double>(n);
}

double psnr(const Tensor& a, const Tensor& b) {
  const double m = mse(a, b);
  if (m == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(1.0 / m);
}

Tensor gaussian_window(index_t size, double sigma) {
  if (size < 1 || sigma <= 0.0) {
    throw std::invalid_argument("gaussian_window: bad params");
  }
  Tensor w({size});
  const double c = (static_cast<double>(size) - 1.0) / 2.0;
  double total = 0.0;
  for (index_t i = 0; i < size; ++i) {
    const double d = static_cast<double>(i) - c;
    const double v = std::exp(-d * d / (2.0 * sigma * sigma));
    w.at(i) = static_cast<real_t>(v);
    total += v;
  }
  w.mul_(static_cast<real_t>(1.0 / total));
  return w;
}

SsimComponents ssim(const Tensor& a, const Tensor& b, index_t window,
                    double sigma, double data_range) {
  check_pair(a, b, "ssim");
  const double c1 = (0.01 * data_range) * (0.01 * data_range);
  const double c2 = (0.03 * data_range) * (0.03 * data_range);
  const Tensor win = gaussian_window(window, sigma);

  const Tensor mu_a = filter_valid(a, win);
  const Tensor mu_b = filter_valid(b, win);
  const Tensor aa = filter_valid(a.mul(a), win);
  const Tensor bb = filter_valid(b.mul(b), win);
  const Tensor ab = filter_valid(a.mul(b), win);

  const index_t n = mu_a.numel();
  const real_t* ma = mu_a.data();
  const real_t* mb = mu_b.data();
  const real_t* paa = aa.data();
  const real_t* pbb = bb.data();
  const real_t* pab = ab.data();

  double sum_l = 0.0, sum_cs = 0.0, sum_ssim = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const double mua = ma[i], mub = mb[i];
    const double var_a = std::max(0.0, double(paa[i]) - mua * mua);
    const double var_b = std::max(0.0, double(pbb[i]) - mub * mub);
    const double cov = double(pab[i]) - mua * mub;
    const double l = (2.0 * mua * mub + c1) / (mua * mua + mub * mub + c1);
    const double cs = (2.0 * cov + c2) / (var_a + var_b + c2);
    sum_l += l;
    sum_cs += cs;
    sum_ssim += l * cs;
  }
  const double inv = 1.0 / static_cast<double>(n);
  return {sum_l * inv, sum_cs * inv, sum_ssim * inv};
}

Tensor downsample2x(const Tensor& image) {
  if (image.rank() != 2) {
    throw std::invalid_argument("downsample2x: expected 2-D image");
  }
  const index_t h = image.dim(0) / 2, w = image.dim(1) / 2;
  if (h < 1 || w < 1) {
    throw std::invalid_argument("downsample2x: image too small");
  }
  Tensor out({h, w});
  const real_t* ip = image.data();
  real_t* op = out.data();
  const index_t in_w = image.dim(1);
  for (index_t y = 0; y < h; ++y) {
    for (index_t x = 0; x < w; ++x) {
      op[y * w + x] = 0.25f * (ip[(2 * y) * in_w + 2 * x] +
                               ip[(2 * y) * in_w + 2 * x + 1] +
                               ip[(2 * y + 1) * in_w + 2 * x] +
                               ip[(2 * y + 1) * in_w + 2 * x + 1]);
    }
  }
  return out;
}

double ms_ssim(const Tensor& a, const Tensor& b, index_t window,
               double sigma, double data_range, int scales) {
  check_pair(a, b, "ms_ssim");
  static const double kWeights[5] = {0.0448, 0.2856, 0.3001, 0.2363,
                                     0.1333};
  if (scales < 1 || scales > 5) {
    throw std::invalid_argument("ms_ssim: scales must be in [1, 5]");
  }
  // Shrink the pyramid if the image cannot support all requested scales.
  int usable = scales;
  {
    index_t m = std::min(a.dim(0), a.dim(1));
    usable = 0;
    while (usable < scales && m >= window) {
      ++usable;
      m /= 2;
    }
    if (usable == 0) {
      throw std::invalid_argument("ms_ssim: image smaller than window");
    }
  }
  // Renormalize the weights of the scales actually used so they sum to 1.
  double wsum = 0.0;
  for (int s = 0; s < usable; ++s) wsum += kWeights[s];

  Tensor x = a.clone();
  Tensor y = b.clone();
  double result = 1.0;
  for (int s = 0; s < usable; ++s) {
    const SsimComponents c = ssim(x, y, window, sigma, data_range);
    const double weight = kWeights[s] / wsum;
    // Contrast-structure term at every scale; full SSIM (with luminance)
    // only at the coarsest scale. Negative terms are clamped: they only
    // occur for pathological anticorrelated inputs.
    const double term = (s == usable - 1) ? c.ssim : c.contrast;
    result *= std::pow(std::max(term, 1e-8), weight);
    if (s + 1 < usable) {
      x = downsample2x(x);
      y = downsample2x(y);
    }
  }
  return result;
}

}  // namespace ccovid::metrics
