// Image-quality metrics used to evaluate Enhancement AI (Table 8):
// mean squared error and the multi-scale structural similarity index
// (MS-SSIM, Wang et al. 2004), computed exactly as in the reference
// formulation: 11x11 Gaussian window (sigma 1.5), K1 = 0.01, K2 = 0.03,
// five scales with the standard weights, dyadic downsampling by 2x2
// average pooling.
//
// Images are single-channel 2-D tensors (H, W) in [0, 1] (data range
// L = 1), matching the paper's normalization of HU data before DDnet.
#pragma once

#include "core/tensor.h"

namespace ccovid::metrics {

/// Mean squared error between two same-shape tensors.
double mse(const Tensor& a, const Tensor& b);

/// Peak signal-to-noise ratio in dB for data range [0, 1].
double psnr(const Tensor& a, const Tensor& b);

/// Normalized 1-D Gaussian window of the given size and sigma.
Tensor gaussian_window(index_t size, double sigma);

struct SsimComponents {
  double luminance;   ///< mean of the l map (top scale only)
  double contrast;    ///< mean of the cs map
  double ssim;        ///< mean of the full SSIM map
};

/// Single-scale SSIM between 2-D images (H, W).
SsimComponents ssim(const Tensor& a, const Tensor& b, index_t window = 11,
                    double sigma = 1.5, double data_range = 1.0);

/// Multi-scale SSIM in [0 (typically), 1]. Images must be at least
/// (window * 2^(scales-1)) in each dimension for the default 5 scales;
/// the scale count is reduced automatically for smaller images so tests
/// can run on small tensors.
double ms_ssim(const Tensor& a, const Tensor& b, index_t window = 11,
               double sigma = 1.5, double data_range = 1.0, int scales = 5);

/// 2x2 average-pool downsampling of a 2-D image (the MS-SSIM pyramid
/// step); odd trailing row/column is dropped.
Tensor downsample2x(const Tensor& image);

}  // namespace ccovid::metrics
