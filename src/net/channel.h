// Blocking point-to-point message channel — the in-process
// shared-memory transport primitive. Semantics follow MPI two-sided
// messaging (cooperative send/recv, FIFO per (source, tag) pair), per
// the message-passing model the HPC guides describe.
//
// Moved here from dist/channel.h so the primitive sits under the
// transport abstraction (net/transport.h) next to the socket backend;
// dist/channel.h aliases these names for the in-process World.
//
// Internally every message travels as a Packet carrying a per-channel
// sequence number and an optional payload checksum; the plain
// send()/recv() Message API ignores both, while World's guarded mode
// (dist/comm.h) uses them to detect dropped, duplicated, reordered,
// and corrupted messages. hold_packet() parks one packet until the
// next send on the channel — the reorder fault primitive. close()
// gives the socket backend's EOF an in-process equivalent: receivers
// drain the queue, then observe the closed state instead of blocking.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/types.h"

namespace ccovid::net {

using Message = std::vector<real_t>;

struct Packet {
  Message payload;
  std::uint64_t seq = 0;       ///< per-channel monotonic sender sequence
  std::uint64_t checksum = 0;  ///< FNV-1a of payload bytes; 0 = unguarded
};

class Channel {
 public:
  /// Enqueues a message (moves the payload). Consumes a sequence number
  /// so guarded and unguarded senders can interleave consistently.
  void send(Message msg) {
    Packet p;
    p.payload = std::move(msg);
    {
      std::lock_guard<std::mutex> lock(mu_);
      p.seq = send_seq_++;
      enqueue_locked(std::move(p));
    }
    // notify_all, not notify_one: guarded (recv_packet_for) and
    // unguarded (recv) receivers share one condition variable, and a
    // timed waiter can consume a notification on its timeout path
    // without taking the packet it was woken for — with notify_one that
    // wake is spent and a second blocked receiver stays parked until
    // the next send. Waking every waiter costs a predicate re-check;
    // stranding a consumer costs a guard timeout.
    cv_.notify_all();
  }

  /// Blocks until a message is available; FIFO order. Throws when the
  /// channel is closed and drained (dist never closes its channels, so
  /// the in-process World keeps its original blocking semantics).
  Message recv() { return recv_packet().payload; }

  /// Non-blocking probe.
  bool has_message() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !queue_.empty();
  }

  // --- packet API (guarded transport + fault injection) ---

  /// Consumes the next sender-side sequence number. A consumed seq that
  /// is never enqueued IS the drop fault: the receiver observes the gap.
  std::uint64_t allocate_seq() {
    std::lock_guard<std::mutex> lock(mu_);
    return send_seq_++;
  }

  /// Enqueues `p`, then flushes any held packet behind it (completing a
  /// reorder: the held packet is delivered out of sequence order).
  void send_packet(Packet p) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      enqueue_locked(std::move(p));
    }
    cv_.notify_all();
  }

  /// Parks `p` until the next send_packet() on this channel. A held
  /// packet that is never flushed is lost (guarded receivers time out).
  void hold_packet(Packet p) {
    std::lock_guard<std::mutex> lock(mu_);
    held_ = std::move(p);
  }

  Packet recv_packet() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) {
      throw std::runtime_error("Channel::recv: channel closed");
    }
    Packet p = std::move(queue_.front());
    queue_.pop_front();
    return p;
  }

  /// nullopt when nothing arrives within the timeout, or immediately
  /// when the channel is closed and drained (check closed() to tell the
  /// two apart — the socket backend's EOF vs poll-timeout distinction).
  std::optional<Packet> recv_packet_for(double timeout_s) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                 [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    Packet p = std::move(queue_.front());
    queue_.pop_front();
    return p;
  }

  /// Marks the channel closed (the in-process EOF): senders may not
  /// enqueue further, parked receivers wake, and once the queue drains
  /// recv_packet_for reports nullopt immediately instead of waiting.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  enum class SeqCheck { kOk, kDuplicate, kOutOfOrder };

  /// Receiver-side in-order verification: compares `seq` against the
  /// next expected sequence number and advances past it, so after a
  /// detected (and thrown) gap the channel is not permanently poisoned.
  SeqCheck check_recv_seq(std::uint64_t seq) {
    std::lock_guard<std::mutex> lock(mu_);
    if (seq < recv_seq_) return SeqCheck::kDuplicate;
    const bool in_order = seq == recv_seq_;
    recv_seq_ = seq + 1;
    return in_order ? SeqCheck::kOk : SeqCheck::kOutOfOrder;
  }

 private:
  // Pre: mu_ held.
  void enqueue_locked(Packet p) {
    queue_.push_back(std::move(p));
    if (held_) {
      queue_.push_back(std::move(*held_));
      held_.reset();
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Packet> queue_;
  std::optional<Packet> held_;
  bool closed_ = false;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

}  // namespace ccovid::net
