// Transport-independent communication error taxonomy + guard knobs.
//
// Extracted from dist/comm.h so that every transport backend — the
// in-process shared-memory Channel (net/channel.h) and the socket frame
// protocol (net/socket.h) — surfaces faults through ONE typed error
// vocabulary: a guarded receiver sees kTimeout / kDuplicate /
// kOutOfOrder / kCorrupt regardless of whether the bytes crossed a
// mutex or a kernel socket buffer. dist/comm.h aliases these types, so
// existing CommError call sites (DDP chaos suites included) are
// unchanged.
#pragma once

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ccovid::net {

/// Transport verification knobs. Disabled (the default), send/recv are
/// the bare fast path. Enabled, every send stamps a payload checksum
/// and every recv verifies checksum + sequence order under a timeout,
/// converting silent transport faults (dropped / duplicated / reordered
/// / bit-flipped messages) into typed CommError throws instead of hangs
/// or silent divergence.
struct GuardOptions {
  bool enabled = false;
  /// recv gives up after this long (a dropped message upstream shows up
  /// here as a timeout, unblocking the collective). Defaults to the
  /// CCOVID_RECV_TIMEOUT environment variable when set, else 2 s; CLI
  /// flags (--recv-timeout) override per tool.
  double recv_timeout_s;

  GuardOptions();
};

/// Resolves the process-wide default receive timeout: the
/// CCOVID_RECV_TIMEOUT environment variable (seconds, > 0) when set and
/// parseable, otherwise 2.0. Parsed on every call so tests can vary the
/// environment; callers on hot paths should cache the GuardOptions.
inline double default_recv_timeout_s() {
  if (const char* env = std::getenv("CCOVID_RECV_TIMEOUT")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v > 0.0) return v;
  }
  return 2.0;
}

inline GuardOptions::GuardOptions() : recv_timeout_s(default_recv_timeout_s()) {}

class CommError : public std::runtime_error {
 public:
  /// A dropped message has no kind of its own: it surfaces as kTimeout
  /// (nothing ever arrives) or kOutOfOrder (a successor arrives first).
  /// A dead peer likewise surfaces as kTimeout — from the receiver's
  /// side, a killed worker and a dropped message are indistinguishable.
  enum class Kind { kTimeout, kDuplicate, kOutOfOrder, kCorrupt };

  CommError(Kind kind, int at, int from, const std::string& detail)
      : std::runtime_error("CommError[" + kind_name(kind) + "] recv at rank " +
                           std::to_string(at) + " from rank " +
                           std::to_string(from) + ": " + detail),
        kind_(kind),
        at_(at),
        from_(from) {}

  Kind kind() const { return kind_; }
  int at() const { return at_; }
  int from() const { return from_; }

  static std::string kind_name(Kind k) {
    switch (k) {
      case Kind::kTimeout: return "timeout";
      case Kind::kDuplicate: return "duplicate";
      case Kind::kOutOfOrder: return "out_of_order";
      case Kind::kCorrupt: return "corrupt";
    }
    return "?";
  }

 private:
  Kind kind_;
  int at_;
  int from_;
};

}  // namespace ccovid::net
