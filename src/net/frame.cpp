#include "net/frame.h"

#include <cstring>
#include <string>

#include "core/digest.h"

namespace ccovid::net {

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloAck: return "hello_ack";
    case FrameType::kRequest: return "request";
    case FrameType::kResponse: return "response";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kHeartbeatAck: return "heartbeat_ack";
    case FrameType::kShutdown: return "shutdown";
    case FrameType::kData: return "data";
  }
  return "?";
}

namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

}  // namespace

void encode_frame(const Frame& f, std::vector<std::uint8_t>& out) {
  const std::size_t base = out.size();
  out.resize(base + kFrameHeaderSize + f.payload.size());
  std::uint8_t* h = out.data() + base;
  std::memset(h, 0, kFrameHeaderSize);
  put_u32(h, kFrameMagic);
  h[4] = static_cast<std::uint8_t>(f.type);
  put_u64(h + 8, f.seq);
  put_u64(h + 16, fnv1a64(f.payload.data(), f.payload.size()));
  put_u32(h + 24, static_cast<std::uint32_t>(f.payload.size()));
  put_u32(h + 28, static_cast<std::uint32_t>(
                      fnv1a64(h, kFrameHeaderSize - 4)));
  if (!f.payload.empty()) {
    std::memcpy(h + kFrameHeaderSize, f.payload.data(), f.payload.size());
  }
}

std::optional<Frame> FrameDecoder::next() {
  if (!corrupt_.empty()) {
    throw CommError(CommError::Kind::kCorrupt, -1, -1, corrupt_);
  }
  if (buf_.size() < kFrameHeaderSize) return std::nullopt;

  // The deque is not contiguous; stage the fixed-size header.
  std::uint8_t h[kFrameHeaderSize];
  for (std::size_t i = 0; i < kFrameHeaderSize; ++i) h[i] = buf_[i];

  auto fail = [this](const std::string& why) -> std::optional<Frame> {
    corrupt_ = why;
    throw CommError(CommError::Kind::kCorrupt, -1, -1, corrupt_);
  };

  if (get_u32(h) != kFrameMagic) {
    return fail("bad frame magic 0x" + std::to_string(get_u32(h)) +
                " (stream out of sync or foreign protocol)");
  }
  // Header checksum before ANY other header field is trusted: it covers
  // the length, so a corrupted length can neither over-allocate nor
  // mis-frame the stream.
  if (get_u32(h + 28) !=
      static_cast<std::uint32_t>(fnv1a64(h, kFrameHeaderSize - 4))) {
    return fail("header checksum mismatch (bit flip in frame header)");
  }
  const std::size_t len = get_u32(h + 24);
  if (len > max_payload_) {
    return fail("declared payload " + std::to_string(len) +
                " bytes exceeds the " + std::to_string(max_payload_) +
                "-byte bound");
  }
  if (buf_.size() < kFrameHeaderSize + len) return std::nullopt;  // truncated

  Frame f;
  f.type = static_cast<FrameType>(h[4]);
  f.seq = get_u64(h + 8);
  f.payload.resize(len);
  for (std::size_t i = 0; i < len; ++i) {
    f.payload[i] = buf_[kFrameHeaderSize + i];
  }
  if (fnv1a64(f.payload.data(), f.payload.size()) != get_u64(h + 16)) {
    return fail("payload checksum mismatch on seq " + std::to_string(f.seq));
  }
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderSize + len));
  return f;
}

}  // namespace ccovid::net
