// Length-prefixed, checksummed wire-frame protocol — the byte layer of
// the socket transport (and, for codec parity, of the in-process
// backend too). Modeled on THD's CommandChannel framing: every message
// is one self-delimiting frame a streaming receiver can re-synchronize
// on and verify independently of the transport underneath.
//
// Frame layout (little-endian, 32-byte header):
//
//   offset size field
//   0      4    magic 0x31564343 ("CCV1")
//   4      1    type (FrameType)
//   5      1    flags (reserved, 0)
//   6      2    reserved, 0
//   8      8    seq — per-direction monotonic sender sequence
//   16     8    payload checksum — FNV-1a over the payload bytes
//   24     4    payload length (bytes)
//   28     4    header checksum — FNV-1a over bytes [0, 28)
//   32     N    payload
//
// The header checksum covers the length field, so a bit flip anywhere
// in the header — including one that would inflate the declared length
// into an allocation bomb or deflate it into a mis-framed stream — is
// detected before any payload byte is trusted. A flip in the payload
// trips the payload checksum. Both surface as CommError kCorrupt from
// FrameDecoder; a truncated frame (header or payload cut short) yields
// no frame at all and surfaces as the caller's recv timeout, matching
// the taxonomy rule that lost bytes look like a dead sender.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "net/error.h"

namespace ccovid::net {

enum class FrameType : std::uint8_t {
  kHello = 1,         ///< connector -> acceptor: identity + topology
  kHelloAck = 2,      ///< acceptor -> connector: identity echo
  kRequest = 3,       ///< front door -> worker: one diagnosis request
  kResponse = 4,      ///< worker -> front door: one diagnosis response
  kHeartbeat = 5,     ///< front door -> worker: liveness probe
  kHeartbeatAck = 6,  ///< worker -> front door: probe echo
  kShutdown = 7,      ///< front door -> worker: drain and exit
  kData = 8,          ///< opaque payload (tests, future collectives)
};

const char* to_string(FrameType t);

struct Frame {
  FrameType type = FrameType::kData;
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
};

inline constexpr std::uint32_t kFrameMagic = 0x31564343u;  // "CCV1"
inline constexpr std::size_t kFrameHeaderSize = 32;
/// Default bound on a single frame's payload: large enough for any
/// volume this system serves, small enough that a corrupted length
/// field can never turn into a multi-gigabyte allocation. (A corrupt
/// length is caught by the header checksum first; this bound is the
/// defense-in-depth backstop.)
inline constexpr std::size_t kDefaultMaxPayload = 64u << 20;

/// Serializes `f` (header + payload) onto the end of `out`.
void encode_frame(const Frame& f, std::vector<std::uint8_t>& out);

/// Incremental streaming decoder: feed() arbitrary byte slices as they
/// arrive, next() yields complete verified frames in order. Malformed
/// input (bad magic, header checksum mismatch, oversized declared
/// length, payload checksum mismatch) throws CommError kCorrupt from
/// next(); incomplete input simply yields nullopt until more bytes
/// arrive. The decoder never blocks and never allocates more than the
/// declared (bounded) payload.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void feed(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  /// Next complete frame, or nullopt when the buffer holds none. Throws
  /// CommError(kCorrupt) on malformed framing; the decoder is then
  /// poisoned (a byte stream that lost framing cannot be trusted again)
  /// and every subsequent next() rethrows until reset().
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by a complete frame.
  std::size_t buffered() const { return buf_.size(); }

  /// Drops all buffered bytes and clears the poisoned state. Used by
  /// packet-aligned transports (one frame per packet) where residual
  /// padding must not bleed into the next packet's parse.
  void reset() {
    buf_.clear();
    corrupt_.clear();
  }

 private:
  std::size_t max_payload_;
  std::deque<std::uint8_t> buf_;
  std::string corrupt_;  ///< non-empty once framing is lost
};

}  // namespace ccovid::net
