#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#include "trace/trace.h"

namespace ccovid::net {

namespace {

/// poll() for one event with a fractional-second timeout; returns the
/// revents mask (0 on timeout). Restarts on EINTR with the remaining
/// budget.
short poll_for(int fd, short events, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    const double remain =
        std::chrono::duration<double>(deadline -
                                      std::chrono::steady_clock::now())
            .count();
    if (remain <= 0.0) return 0;
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    const int ms = static_cast<int>(remain * 1e3) + 1;  // round up
    const int rc = ::poll(&pfd, 1, ms);
    if (rc > 0) return pfd.revents;
    if (rc == 0) return 0;
    if (errno != EINTR) return POLLERR;
  }
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw std::invalid_argument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string h = host.empty() ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, h.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("tcp endpoint host must be a dotted quad: " +
                                h);
  }
  return addr;
}

}  // namespace

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) {
      throw std::invalid_argument("endpoint 'unix:' needs a path");
    }
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Kind::kTcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument(
          "endpoint 'tcp:' needs host:port, got: " + spec);
    }
    ep.host = rest.substr(0, colon);
    ep.port = std::atoi(rest.substr(colon + 1).c_str());
    if (ep.port < 0 || ep.port > 65535) {
      throw std::invalid_argument("endpoint port out of range: " + spec);
    }
    return ep;
  }
  throw std::invalid_argument(
      "endpoint must be unix:/path or tcp:host:port, got: " + spec);
}

std::string Endpoint::str() const {
  return kind == Kind::kUnix
             ? "unix:" + path
             : "tcp:" + host + ":" + std::to_string(port);
}

SocketTransport::SocketTransport(int fd, int local_id, int peer_id,
                                 const char* kind_name)
    : Transport(local_id, peer_id), fd_(fd), kind_name_(kind_name) {}

SocketTransport::~SocketTransport() { close(); }

bool SocketTransport::open() const {
  return fd_.load(std::memory_order_acquire) >= 0 &&
         !eof_.load(std::memory_order_acquire);
}

void SocketTransport::close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);  // unblocks a peer parked in poll/read
    ::close(fd);
  }
}

void SocketTransport::send_bytes(const std::uint8_t* data, std::size_t n) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) {
    throw CommError(CommError::Kind::kTimeout, local_id(), peer_id(),
                    "send on closed connection");
  }
  std::size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a dead peer raises EPIPE here instead of SIGPIPE
    // killing the process.
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    const std::string why = std::strerror(errno);
    close();
    throw CommError(CommError::Kind::kTimeout, local_id(), peer_id(),
                    "send failed (peer dead?): " + why);
  }
}

bool SocketTransport::fill_decoder(double timeout_s) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return false;
  const short ev = poll_for(fd, POLLIN, timeout_s);
  if (ev == 0) return false;  // timeout
  std::uint8_t chunk[64 * 1024];
  const ssize_t n = ::read(fd, chunk, sizeof(chunk));
  if (n > 0) {
    decoder_.feed(chunk, static_cast<std::size_t>(n));
    count_received(static_cast<std::size_t>(n));
    return true;
  }
  if (n < 0 && errno == EINTR) return false;  // caller loops on budget
  // 0 = orderly EOF; <0 = reset/err — either way the peer is gone.
  eof_.store(true, std::memory_order_release);
  return false;
}

SocketListener::SocketListener(const Endpoint& ep, int backlog) : ep_(ep) {
  int fd = -1;
  if (ep.kind == Endpoint::Kind::kUnix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket(AF_UNIX) failed");
    ::unlink(ep.path.c_str());  // stale file from a killed predecessor
    sockaddr_un addr = make_unix_addr(ep.path);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw std::runtime_error("bind(" + ep.str() + ") failed: " + why);
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = make_tcp_addr(ep.host, ep.port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw std::runtime_error("bind(" + ep.str() + ") failed: " + why);
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port_ = ntohs(addr.sin_port);
    ep_.port = bound_port_;
  }
  if (::listen(fd, backlog) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("listen(" + ep.str() + ") failed: " + why);
  }
  fd_.store(fd, std::memory_order_release);
}

SocketListener::~SocketListener() {
  close();
  if (ep_.kind == Endpoint::Kind::kUnix) ::unlink(ep_.path.c_str());
}

void SocketListener::close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

std::unique_ptr<SocketTransport> SocketListener::accept_for(double timeout_s,
                                                            int local_id,
                                                            int peer_id) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return nullptr;
  if ((poll_for(fd, POLLIN, timeout_s) & POLLIN) == 0) return nullptr;
  const int conn = ::accept(fd, nullptr, nullptr);
  if (conn < 0) return nullptr;
  if (ep_.kind == Endpoint::Kind::kTcp) {
    const int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return std::make_unique<SocketTransport>(
      conn, local_id, peer_id,
      ep_.kind == Endpoint::Kind::kUnix ? "unix" : "tcp");
}

std::unique_ptr<SocketTransport> connect_endpoint(const Endpoint& ep,
                                                  double timeout_s,
                                                  int local_id, int peer_id) {
  TRACE_SPAN("net.connect");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::string last_error = "timeout";
  for (;;) {
    int fd = -1;
    if (ep.kind == Endpoint::Kind::kUnix) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd >= 0) {
        sockaddr_un addr = make_unix_addr(ep.path);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          return std::make_unique<SocketTransport>(fd, local_id, peer_id,
                                                   "unix");
        }
        last_error = std::strerror(errno);
        ::close(fd);
      }
    } else {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd >= 0) {
        sockaddr_in addr = make_tcp_addr(ep.host, ep.port);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          return std::make_unique<SocketTransport>(fd, local_id, peer_id,
                                                   "tcp");
        }
        last_error = std::strerror(errno);
        ::close(fd);
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw CommError(CommError::Kind::kTimeout, local_id, peer_id,
                      "connect to " + ep.str() + " failed within " +
                          std::to_string(timeout_s) + "s: " + last_error);
    }
    // The listener may not be up yet (spawned worker still booting).
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace ccovid::net
