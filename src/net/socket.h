// Socket backend of the Transport interface: length-prefixed,
// checksummed frames (net/frame.h) over Unix-domain or loopback/LAN TCP
// stream sockets — the process-boundary transport under the sharded
// front door. Modeled on THD's CommandChannel: blocking sockets,
// poll-bounded receives, one duplex connection per (front door, worker)
// pair.
//
// Endpoint grammar (CLI --listen / --connect):
//   unix:/path/to/socket      Unix-domain stream socket
//   tcp:HOST:PORT             TCP (PORT 0 = ephemeral, see bound_port)
#pragma once

#include <memory>
#include <string>

#include "net/transport.h"

namespace ccovid::net {

struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< unix: filesystem path
  std::string host;  ///< tcp: hostname or dotted quad
  int port = 0;      ///< tcp: port (0 = ephemeral when listening)

  /// Parses "unix:/path" or "tcp:host:port". Throws std::invalid_argument
  /// with a grammar hint on malformed input.
  static Endpoint parse(const std::string& spec);
  std::string str() const;
};

class SocketTransport final : public Transport {
 public:
  /// Takes ownership of a connected stream socket fd.
  SocketTransport(int fd, int local_id, int peer_id, const char* kind_name);
  ~SocketTransport() override;

  bool open() const override;
  void close() override;
  const char* kind() const override { return kind_name_; }

 protected:
  void send_bytes(const std::uint8_t* data, std::size_t n) override;
  bool fill_decoder(double timeout_s) override;

 private:
  std::atomic<int> fd_;
  std::atomic<bool> eof_{false};
  const char* kind_name_;
};

class SocketListener {
 public:
  /// Binds and listens on `ep`. Unix paths are unlinked first (stale
  /// socket files from a killed predecessor) and unlinked again on
  /// destruction. TCP port 0 binds an ephemeral port; read it back via
  /// bound_port(). Throws std::runtime_error on failure.
  explicit SocketListener(const Endpoint& ep, int backlog = 16);
  ~SocketListener();
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Accepts one connection within the timeout; nullptr on timeout or
  /// after close().
  std::unique_ptr<SocketTransport> accept_for(double timeout_s,
                                              int local_id = 0,
                                              int peer_id = -1);

  /// Unblocks a pending accept_for and makes future accepts fail.
  void close();

  const Endpoint& endpoint() const { return ep_; }
  /// For tcp with port 0: the kernel-assigned port.
  int bound_port() const { return bound_port_; }

 private:
  Endpoint ep_;
  std::atomic<int> fd_{-1};
  int bound_port_ = 0;
};

/// Connects to `ep`, retrying until `timeout_s` elapses (covers the
/// listener-not-up-yet race when the front door spawns workers and
/// connects immediately). Throws CommError(kTimeout) when the deadline
/// passes without a connection.
std::unique_ptr<SocketTransport> connect_endpoint(const Endpoint& ep,
                                                  double timeout_s,
                                                  int local_id = 0,
                                                  int peer_id = -1);

}  // namespace ccovid::net
