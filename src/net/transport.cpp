#include "net/transport.h"

#include <cstring>
#include <string>

#include "fault/failpoint.h"
#include "trace/trace.h"

namespace ccovid::net {

void Transport::send(FrameType type, std::vector<std::uint8_t> payload) {
  TRACE_SPAN("net.frame.send");
  std::lock_guard<std::mutex> lock(send_mu_);
  if (!open()) {
    throw CommError(CommError::Kind::kTimeout, local_id_, peer_id_,
                    "send on closed connection");
  }
  Frame f;
  f.type = type;
  f.seq = send_seq_++;
  f.payload = std::move(payload);
  std::vector<std::uint8_t> wire;
  encode_frame(f, wire);

  // Sender-side fault schedule — the transport-independent chaos
  // surface. Corruption happens AFTER the checksums are stamped, so the
  // receiver's verification must disagree (an on-the-wire bit flip).
  if (auto fp = CCOVID_FAILPOINT_FIRED("net.frame.corrupt")) {
    fault::corrupt_bytes(wire.data(), wire.size(), fp.seed, fp.count);
  }
  if (CCOVID_FAILPOINT_FIRED("net.frame.drop")) {
    return;  // seq consumed but never transmitted: the receiver sees a gap
  }
  if (CCOVID_FAILPOINT_FIRED("net.conn.drop")) {
    close();  // hard connection loss: the peer observes EOF mid-stream
    return;
  }
  if (CCOVID_FAILPOINT_FIRED("net.frame.dup")) {
    send_bytes(wire.data(), wire.size());  // same seq delivered twice
  }
  send_bytes(wire.data(), wire.size());
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(wire.size(), std::memory_order_relaxed);
}

std::optional<Frame> Transport::recv_for(double timeout_s) {
  TRACE_SPAN("net.frame.recv");
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  for (;;) {
    std::optional<Frame> f = decoder_.next();  // throws kCorrupt
    if (f) {
      if (f->seq < recv_seq_) {
        throw CommError(CommError::Kind::kDuplicate, local_id_, peer_id_,
                        "seq " + std::to_string(f->seq) + " seen again");
      }
      const bool in_order = f->seq == recv_seq_;
      recv_seq_ = f->seq + 1;  // advance past the gap: poison-free recovery
      if (!in_order) {
        throw CommError(CommError::Kind::kOutOfOrder, local_id_, peer_id_,
                        "seq " + std::to_string(f->seq) +
                            " arrived ahead of an undelivered predecessor "
                            "(reordered or dropped frame)");
      }
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      return f;
    }
    const double remain =
        std::chrono::duration<double>(deadline -
                                      std::chrono::steady_clock::now())
            .count();
    if (remain <= 0.0) return std::nullopt;
    if (!fill_decoder(remain) && !open()) return std::nullopt;  // EOF
  }
}

Frame Transport::recv(double timeout_s) {
  std::optional<Frame> f = recv_for(timeout_s);
  if (!f) {
    throw CommError(
        CommError::Kind::kTimeout, local_id_, peer_id_,
        open() ? "no frame within " + std::to_string(timeout_s) +
                     "s (sender dead, stalled, or frame dropped)"
               : "connection closed by peer");
  }
  return std::move(*f);
}

std::pair<std::unique_ptr<InprocTransport>, std::unique_ptr<InprocTransport>>
InprocTransport::make_pair(int id_a, int id_b) {
  auto ab = std::make_shared<Channel>();
  auto ba = std::make_shared<Channel>();
  std::unique_ptr<InprocTransport> a(
      new InprocTransport(ab, ba, id_a, id_b));
  std::unique_ptr<InprocTransport> b(
      new InprocTransport(ba, ab, id_b, id_a));
  return {std::move(a), std::move(b)};
}

void InprocTransport::send_bytes(const std::uint8_t* data, std::size_t n) {
  // One frame per packet, byte-packed into the real_t payload (the
  // trailing pad never reaches the decoder: fill_decoder resets per
  // packet, and the frame header's length field delimits the payload).
  Message m((n + sizeof(real_t) - 1) / sizeof(real_t));
  std::memcpy(m.data(), data, n);
  tx_->send(std::move(m));
}

bool InprocTransport::fill_decoder(double timeout_s) {
  std::optional<Packet> p = rx_->recv_packet_for(timeout_s);
  if (!p) return false;  // timeout, or closed-and-drained (open() tells)
  // Packet-aligned stream: drop any residual pad bytes from the
  // previous packet before feeding the next frame.
  decoder_.reset();
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(
      p->payload.data());
  const std::size_t n = p->payload.size() * sizeof(real_t);
  decoder_.feed(bytes, n);
  count_received(n);
  return true;
}

}  // namespace ccovid::net
