// Transport — the duplex, frame-oriented connection abstraction under
// the sharded serving runtime (serve/shard.h). Two backends implement
// it:
//
//   InprocTransport   the existing shared-memory Channel (net/channel.h)
//                     carrying encoded frames between threads — zero
//                     syscalls, used by tests and single-process mode
//   SocketTransport   length-prefixed checksummed frames over
//                     Unix-domain or TCP stream sockets (net/socket.h)
//                     — the real multi-process deployment path
//
// The guard semantics live HERE, in the backend-agnostic base class:
// send() assigns a per-direction monotonic sequence number and encodes
// through the checksummed frame codec; recv_for() verifies framing
// (CommError kCorrupt), sequence order (kDuplicate / kOutOfOrder, with
// poison-free recovery past a detected gap), and bounded waiting
// (kTimeout via recv()). The net.frame.* / net.conn.* failpoints are
// also evaluated here, on the SENDER side of either backend — which is
// what makes fault schedules fire across process boundaries: a worker
// process armed with net.frame.corrupt damages real bytes on a real
// socket, and the front door's receiver sees the same typed kCorrupt
// the in-process chaos suites see.
//
// Failpoints (sender side, evaluated per frame):
//   net.frame.corrupt   flip bits in the encoded frame after checksums
//                       are stamped (receiver detects kCorrupt)
//   net.frame.drop      consume the seq but transmit nothing (receiver
//                       sees the gap: kOutOfOrder on the successor, or
//                       kTimeout if nothing follows)
//   net.frame.dup       transmit the frame twice (receiver: kDuplicate)
//   net.conn.drop       hard-close the connection instead of sending
//                       (receiver sees EOF — the worker-kill primitive)
//
// Threading: send() is internally serialized (multiple producer threads
// may share one transport); recv_for()/recv() must be called from one
// consumer thread at a time.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "net/channel.h"
#include "net/error.h"
#include "net/frame.h"

namespace ccovid::net {

class Transport {
 public:
  Transport(int local_id, int peer_id)
      : local_id_(local_id), peer_id_(peer_id) {}
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Sends one frame: assigns the next sequence number, encodes through
  /// the checksummed codec, applies the net.frame.* fault schedule, and
  /// transmits. Throws CommError(kTimeout) when the connection is
  /// already closed or the write fails (peer dead).
  void send(FrameType type, std::vector<std::uint8_t> payload = {});

  /// Verified receive: blocks up to `timeout_s` for the next complete
  /// frame. Returns nullopt on timeout OR on connection close — check
  /// open() to tell them apart. Throws CommError kCorrupt / kDuplicate
  /// / kOutOfOrder on guard violations; after a detected gap the
  /// expected sequence advances (poison-free recovery).
  std::optional<Frame> recv_for(double timeout_s);

  /// Throwing variant of recv_for: kTimeout when nothing arrives, with
  /// a detail string distinguishing a silent peer from a closed
  /// connection.
  Frame recv(double timeout_s);

  virtual bool open() const = 0;
  virtual void close() = 0;
  virtual const char* kind() const = 0;  ///< "inproc" | "unix" | "tcp"

  int local_id() const { return local_id_; }
  int peer_id() const { return peer_id_; }

  std::uint64_t frames_sent() const { return frames_sent_.load(); }
  std::uint64_t frames_received() const { return frames_received_.load(); }
  std::uint64_t bytes_sent() const { return bytes_sent_.load(); }
  std::uint64_t bytes_received() const { return bytes_received_.load(); }

 protected:
  /// Transmits one encoded frame's bytes. Called with the send lock
  /// held. Throws CommError on a dead connection.
  virtual void send_bytes(const std::uint8_t* data, std::size_t n) = 0;

  /// Blocks up to `timeout_s` for more inbound bytes and feeds them to
  /// decoder_. Returns false on timeout or close (open() reflects the
  /// close); true when at least one byte arrived.
  virtual bool fill_decoder(double timeout_s) = 0;

  void count_received(std::size_t n) {
    bytes_received_.fetch_add(n, std::memory_order_relaxed);
  }

  FrameDecoder decoder_;

 private:
  const int local_id_;
  const int peer_id_;
  std::mutex send_mu_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
};

/// In-process backend: frames ride as Packets through a pair of
/// shared-memory Channels (one per direction), going through the SAME
/// codec and guard path as the socket backend — one frame per packet,
/// byte-packed into the Message payload.
class InprocTransport final : public Transport {
 public:
  /// Connected endpoint pair (a <-> b) sharing two channels.
  static std::pair<std::unique_ptr<InprocTransport>,
                   std::unique_ptr<InprocTransport>>
  make_pair(int id_a = 0, int id_b = 1);

  bool open() const override {
    return !closed_.load(std::memory_order_acquire) && !rx_->closed();
  }
  void close() override {
    closed_.store(true, std::memory_order_release);
    tx_->close();
    rx_->close();
  }
  const char* kind() const override { return "inproc"; }

 protected:
  void send_bytes(const std::uint8_t* data, std::size_t n) override;
  bool fill_decoder(double timeout_s) override;

 private:
  InprocTransport(std::shared_ptr<Channel> tx, std::shared_ptr<Channel> rx,
                  int local_id, int peer_id)
      : Transport(local_id, peer_id), tx_(std::move(tx)), rx_(std::move(rx)) {}

  std::shared_ptr<Channel> tx_;
  std::shared_ptr<Channel> rx_;
  std::atomic<bool> closed_{false};
};

}  // namespace ccovid::net
