#include "nn/ahnet.h"

#include <stdexcept>

namespace ccovid::nn {

AhNet::AhNet(AhNetConfig cfg) : cfg_(cfg) {
  const index_t base = cfg_.base_channels;
  stem_ = std::make_shared<Conv2d>(cfg_.in_channels, base, 3);
  stem_bn_ = std::make_shared<BatchNorm>(base);
  register_module("stem", stem_);
  register_module("stem_bn", stem_bn_);

  index_t c = base;
  for (int l = 0; l < cfg_.levels; ++l) {
    EncLevel e;
    e.conv = std::make_shared<Conv2d>(c, c * 2, 3);
    e.bn = std::make_shared<BatchNorm>(c * 2);
    const std::string tag = "enc" + std::to_string(l) + ".";
    register_module(tag + "conv", e.conv);
    register_module(tag + "bn", e.bn);
    encoder_.push_back(std::move(e));
    c *= 2;
  }
  for (int l = 0; l < cfg_.levels; ++l) {
    DecLevel d;
    // Input: unpooled (c) + skip (c/2) channels.
    d.conv = std::make_shared<Conv2d>(c + c / 2, c / 2, 3);
    d.bn = std::make_shared<BatchNorm>(c / 2);
    const std::string tag = "dec" + std::to_string(l) + ".";
    register_module(tag + "conv", d.conv);
    register_module(tag + "bn", d.bn);
    decoder_.push_back(std::move(d));
    c /= 2;
  }
  head_ = std::make_shared<Conv2d>(base, 1, 1);
  register_module("head", head_);
}

Var AhNet::forward(const Var& x) const {
  const index_t div = index_t(1) << cfg_.levels;
  if (x.value().dim(2) % div != 0 || x.value().dim(3) % div != 0) {
    throw std::invalid_argument("AhNet: extent must be divisible by " +
                                std::to_string(div));
  }
  const ops::Pool2dParams pool{2, 2, 0};

  Var t = stem_->forward(x);
  t = stem_bn_->forward(t);
  t = autograd::leaky_relu(t, cfg_.leaky_slope);

  std::vector<Var> skips;
  for (int l = 0; l < cfg_.levels; ++l) {
    skips.push_back(t);
    t = autograd::max_pool2d(t, pool);
    t = encoder_[l].conv->forward(t);
    t = encoder_[l].bn->forward(t);
    t = autograd::leaky_relu(t, cfg_.leaky_slope);
  }
  for (int l = 0; l < cfg_.levels; ++l) {
    t = autograd::unpool2d(t, 2);
    t = autograd::concat(
        {t, skips[static_cast<std::size_t>(cfg_.levels - 1 - l)]});
    t = decoder_[l].conv->forward(t);
    t = decoder_[l].bn->forward(t);
    t = autograd::leaky_relu(t, cfg_.leaky_slope);
  }
  return head_->forward(t);
}

Tensor AhNet::segment_volume(const Tensor& volume) const {
  if (volume.rank() != 3) {
    throw std::invalid_argument("segment_volume: expected (D, H, W)");
  }
  autograd::NoGradGuard no_grad;
  const index_t d = volume.dim(0), h = volume.dim(1), w = volume.dim(2);
  Tensor mask({d, h, w});
  for (index_t z = 0; z < d; ++z) {
    Tensor slice({1, 1, h, w});
    std::copy(volume.data() + z * h * w, volume.data() + (z + 1) * h * w,
              slice.data());
    const Var logits = forward(Var(std::move(slice)));
    const real_t* lp = logits.value().data();
    real_t* mp = mask.data() + z * h * w;
    for (index_t i = 0; i < h * w; ++i) mp[i] = lp[i] > 0.0f ? 1.0f : 0.0f;
  }
  return mask;
}

Tensor AhNet::apply_mask(const Tensor& volume, const Tensor& mask) {
  if (volume.shape() != mask.shape()) {
    throw std::invalid_argument("apply_mask: shape mismatch");
  }
  return volume.mul(mask);
}

}  // namespace ccovid::nn
