// AH-Net-style lung segmenter — Segmentation AI (§2.3.1).
//
// The paper uses Nvidia Clara's pre-trained anisotropic hybrid network
// (AH-Net, Liu et al. 2017), whose defining idea is to run strong 2-D
// in-plane feature extractors over the anisotropic CT volume and fuse
// across slices. Lacking the pre-trained model, we implement a compact
// anisotropic encoder-decoder with the same role and interface: 2-D
// in-plane convolutions applied slice-wise, a two-level downsampling
// encoder, and a bilinear-upsampling decoder emitting a per-pixel
// foreground (lung) logit. The binary mask is then multiplied into the
// scan exactly as in §3.2.
#pragma once

#include <memory>

#include "nn/layers.h"

namespace ccovid::nn {

struct AhNetConfig {
  index_t in_channels = 1;
  index_t base_channels = 8;
  int levels = 2;  ///< downsampling stages
  real_t leaky_slope = 0.01f;
};

class AhNet : public Module {
 public:
  explicit AhNet(AhNetConfig cfg = AhNetConfig{});

  /// (N, C, H, W) slices -> (N, 1, H, W) foreground logits.
  Var forward(const Var& x) const;

  /// Segments a full volume (D, H, W) slice-wise into a binary mask
  /// using threshold 0.5 on the sigmoid output; no gradients.
  Tensor segment_volume(const Tensor& volume) const;

  /// Applies a binary mask to a volume (elementwise multiply) — the
  /// "segmented CT scan" of §3.2.
  static Tensor apply_mask(const Tensor& volume, const Tensor& mask);

 private:
  AhNetConfig cfg_;
  struct EncLevel {
    std::shared_ptr<Conv2d> conv;
    std::shared_ptr<BatchNorm> bn;
  };
  struct DecLevel {
    std::shared_ptr<Conv2d> conv;  // after unpool + skip concat
    std::shared_ptr<BatchNorm> bn;
  };
  std::shared_ptr<Conv2d> stem_;
  std::shared_ptr<BatchNorm> stem_bn_;
  std::vector<EncLevel> encoder_;
  std::vector<DecLevel> decoder_;
  std::shared_ptr<Conv2d> head_;
};

}  // namespace ccovid::nn
