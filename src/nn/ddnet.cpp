#include "nn/ddnet.h"

#include <stdexcept>

#include "core/precision.h"
#include "core/random.h"
#include "nn/graph_capture.h"

namespace ccovid::nn {

DDnet::DDnet(DDnetConfig cfg) : cfg_(cfg) {
  if (cfg_.levels < 1 || cfg_.dense_layers < 1 || cfg_.base_channels < 1) {
    throw std::invalid_argument("DDnet: bad config");
  }
  const index_t base = cfg_.base_channels;

  // "Convolution 1": 7x7 stem to base width at full resolution; its
  // output is both the encoder input and the full-resolution global
  // shortcut source.
  stem_ = std::make_shared<Conv2d>(cfg_.in_channels, base, 7);
  stem_bn_ = std::make_shared<BatchNorm>(base);
  register_module("stem", stem_);
  register_module("stem_bn", stem_bn_);

  for (int l = 0; l < cfg_.levels; ++l) {
    EncoderLevel e;
    e.block = std::make_shared<DenseBlock2d>(base, cfg_.growth,
                                             cfg_.dense_layers,
                                             cfg_.leaky_slope);
    e.transition =
        std::make_shared<Conv2d>(e.block->out_channels(), base, 1);
    e.bn = std::make_shared<BatchNorm>(base);
    const std::string tag = "enc" + std::to_string(l) + ".";
    register_module(tag + "block", e.block);
    register_module(tag + "transition", e.transition);
    register_module(tag + "bn", e.bn);
    encoder_.push_back(e);
    all_convs_.push_back(e.transition);
  }
  all_convs_.push_back(stem_);

  for (int l = 0; l < cfg_.levels; ++l) {
    // Decoder level l operates at scale 2^(levels-1-l) relative to the
    // bottom; the last level reaches full resolution and emits the
    // output image.
    const bool is_output = (l == cfg_.levels - 1);
    DecoderLevel d;
    // Input: unpooled trunk (base) concatenated with the matching-scale
    // global shortcut (base) -> 2*base channels.
    d.deconv5 = std::make_shared<Deconv2d>(2 * base, 2 * base, 5);
    d.bn5 = std::make_shared<BatchNorm>(2 * base);
    d.deconv1 = std::make_shared<Deconv2d>(
        2 * base, is_output ? cfg_.out_channels : base, 1);
    d.bn1 = is_output ? nullptr : std::make_shared<BatchNorm>(base);
    const std::string tag = "dec" + std::to_string(l) + ".";
    register_module(tag + "deconv5", d.deconv5);
    register_module(tag + "bn5", d.bn5);
    register_module(tag + "deconv1", d.deconv1);
    if (d.bn1) register_module(tag + "bn1", d.bn1);
    decoder_.push_back(d);
    all_deconvs_.push_back(d.deconv5);
    all_deconvs_.push_back(d.deconv1);
  }
}

Var DDnet::forward(const Var& x) const {
  const index_t h = x.value().dim(2), w = x.value().dim(3);
  const index_t div = index_t(1) << cfg_.levels;
  if (h % div != 0 || w % div != 0) {
    throw std::invalid_argument("DDnet: input extent must be divisible by " +
                                std::to_string(div));
  }
  const ops::Pool2dParams pool{3, 2, 1};

  Var t = stem_->forward(x);
  t = stem_bn_->forward(t);
  t = autograd::leaky_relu(t, cfg_.leaky_slope);

  // skips[l] is the trunk at scale /2^l (l = 0 is full resolution).
  std::vector<Var> skips;
  skips.push_back(t);
  for (int l = 0; l < cfg_.levels; ++l) {
    t = autograd::max_pool2d(t, pool);
    t = encoder_[l].block->forward(t);
    t = encoder_[l].transition->forward(t);
    t = encoder_[l].bn->forward(t);
    t = autograd::leaky_relu(t, cfg_.leaky_slope);
    if (l + 1 < cfg_.levels) skips.push_back(t);
  }

  for (int l = 0; l < cfg_.levels; ++l) {
    const bool is_output = (l == cfg_.levels - 1);
    t = autograd::unpool2d(t, 2);
    // Global shortcut from the encoder trunk at this scale (§2.2.3).
    const Var& skip = skips[static_cast<std::size_t>(cfg_.levels - 1 - l)];
    t = autograd::concat({t, skip});
    t = decoder_[l].deconv5->forward(t);
    t = decoder_[l].bn5->forward(t);
    t = autograd::leaky_relu(t, cfg_.leaky_slope);
    t = decoder_[l].deconv1->forward(t);
    if (!is_output) {
      t = decoder_[l].bn1->forward(t);
      t = autograd::leaky_relu(t, cfg_.leaky_slope);
    }
  }

  if (cfg_.residual) {
    t = autograd::add(t, x.requires_grad() ? x : x.detach());
  }
  return t;
}

graph::Graph DDnet::build_graph(index_t n, index_t h, index_t w) const {
  const index_t div = index_t(1) << cfg_.levels;
  if (h % div != 0 || w % div != 0) {
    throw std::invalid_argument("DDnet: input extent must be divisible by " +
                                std::to_string(div));
  }
  const ops::Pool2dParams pool{3, 2, 1};
  graph::Graph g;
  const int input = g.add_input({n, cfg_.in_channels, h, w});

  // Mirrors forward() node for node (same op order, same parameters),
  // so the compiled unfused schedule reproduces the module bitwise.
  int t = capture_conv(&g, input, *stem_);
  t = capture_bn(&g, t, *stem_bn_);
  t = g.add_leaky_relu(t, cfg_.leaky_slope);

  std::vector<int> skips;
  skips.push_back(t);
  for (int l = 0; l < cfg_.levels; ++l) {
    t = g.add_max_pool(t, pool);
    t = encoder_[size_t(l)].block->append_to_graph(&g, t);
    t = capture_conv(&g, t, *encoder_[size_t(l)].transition);
    t = capture_bn(&g, t, *encoder_[size_t(l)].bn);
    t = g.add_leaky_relu(t, cfg_.leaky_slope);
    if (l + 1 < cfg_.levels) skips.push_back(t);
  }

  for (int l = 0; l < cfg_.levels; ++l) {
    const bool is_output = (l == cfg_.levels - 1);
    t = g.add_unpool(t, 2);
    t = g.add_concat(
        {t, skips[static_cast<std::size_t>(cfg_.levels - 1 - l)]});
    t = capture_deconv(&g, t, *decoder_[size_t(l)].deconv5);
    t = capture_bn(&g, t, *decoder_[size_t(l)].bn5);
    t = g.add_leaky_relu(t, cfg_.leaky_slope);
    t = capture_deconv(&g, t, *decoder_[size_t(l)].deconv1);
    if (!is_output) {
      t = capture_bn(&g, t, *decoder_[size_t(l)].bn1);
      t = g.add_leaky_relu(t, cfg_.leaky_slope);
    }
  }

  if (cfg_.residual) t = g.add_add(t, input);
  g.mark_output(t);
  return g;
}

std::shared_ptr<graph::CompiledGraph> DDnet::compiled_for(
    index_t h, index_t w, core::Precision prec) const {
  // h/w are CT image extents (< 2^30), so the precision and fusion
  // tags fit in the top bits of the cache key. Fusion matters for the
  // key because low-precision results — unlike fp32, which is bitwise
  // fusion-invariant — round at different step boundaries per mode.
  const bool fuse = graph::fusion_enabled();
  const std::uint64_t key = (std::uint64_t(int(prec)) << 61) |
                            (std::uint64_t(fuse) << 60) |
                            (std::uint64_t(std::uint32_t(h)) << 30) |
                            std::uint64_t(std::uint32_t(w));
  std::lock_guard<std::mutex> lock(graph_mu_);
  auto it = graph_cache_.find(key);
  if (it != graph_cache_.end()) return it->second;
  graph::Graph g = build_graph(1, h, w);
  graph::CompileOptions opt;
  opt.fuse = fuse;
  opt.precision = prec;
  if (prec == core::Precision::kInt8) {
    // Seeded synthetic calibration batch: CT slices enter enhance()
    // normalized to [0, 1], so uniform images bound every activation's
    // dynamic range deterministically (same seed -> same scales -> same
    // quantized graph on every host).
    Rng rng(0x5ca1ab1e);
    std::vector<Tensor> batch;
    for (int b = 0; b < 2; ++b) {
      Tensor t({1, cfg_.in_channels, h, w});
      rng.fill_uniform(t, 0.0, 1.0);
      batch.push_back(std::move(t));
    }
    opt.calibration = graph::calibrate(g, batch);
  }
  auto cg =
      std::make_shared<graph::CompiledGraph>(graph::compile(g, opt));
  graph_cache_.emplace(key, cg);
  return cg;
}

void DDnet::invalidate_graphs() const {
  std::lock_guard<std::mutex> lock(graph_mu_);
  graph_cache_.clear();
}

void DDnet::on_set_training(bool /*training*/) { invalidate_graphs(); }
void DDnet::on_state_loaded() { invalidate_graphs(); }
void DDnet::on_set_batch_stats(bool on) {
  batch_stats_always_ = on;
  invalidate_graphs();
}

Tensor DDnet::enhance(const Tensor& image) const {
  if (image.rank() != 2) {
    throw std::invalid_argument("DDnet::enhance: expected (H, W)");
  }
  // The storage precision is sampled ONCE per request: a concurrent
  // set_active_precision (serve --precision toggles) can never mix
  // formats within a single enhance() call.
  const core::Precision prec = core::active_precision();
  // Fast path: compiled fusion graph (eval-mode only — training mode
  // and batch-stats-always both change the batch-norm semantics the
  // capture froze). At fp32 this is bitwise identical to the module
  // walk below; fp16/bf16/int8 swap the storage format of weights and
  // intermediates (DESIGN.md §13) and only exist on the graph path, so
  // they route here regardless of the fusion flag (compile honors it).
  if (!training() && !batch_stats_always_ &&
      (graph::fusion_enabled() || prec != core::Precision::kF32)) {
    auto cg = compiled_for(image.dim(0), image.dim(1), prec);
    Tensor in = image.clone().reshape({1, 1, image.dim(0), image.dim(1)});
    return cg->run(in).reshape({image.dim(0), image.dim(1)});
  }
  autograd::NoGradGuard no_grad;
  Var in(image.clone().reshape({1, 1, image.dim(0), image.dim(1)}));
  Var out = forward(in);
  return out.value().clone().reshape({image.dim(0), image.dim(1)});
}

void DDnet::set_kernel_options(const ops::KernelOptions& opt) {
  for (auto& c : all_convs_) c->set_kernel_options(opt);
  for (auto& d : all_deconvs_) d->set_kernel_options(opt);
  for (auto& e : encoder_) e.block->set_kernel_options(opt);
}

}  // namespace ccovid::nn
