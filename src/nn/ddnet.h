// DDnet — the DenseNet & Deconvolution network of §2.2 / Table 2: a
// convolution (encoder) network of four dense blocks with pooling, and a
// deconvolution (decoder) network of eight deconvolution layers with
// bilinear un-pooling, joined by global shortcut connections at each
// scale.
//
// With the paper configuration (base 16, growth 16, 4 levels) the
// encoder holds 37 convolution layers (1 stem + 4 blocks * (4 layers *
// 2 convs) + 4 transitions) and the decoder 8 deconvolution layers
// (2 per scale * 4 scales), exactly as stated in §2.2.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/precision.h"
#include "nn/dense_block.h"

namespace ccovid::graph {
class Graph;
class CompiledGraph;
}

namespace ccovid::nn {

struct DDnetConfig {
  index_t in_channels = 1;
  index_t out_channels = 1;
  index_t base_channels = 16;  ///< trunk width at every scale
  index_t growth = 16;         ///< dense-layer growth rate
  int dense_layers = 4;        ///< layers per dense block
  int levels = 4;              ///< dense blocks / pooling stages
  real_t leaky_slope = 0.01f;
  /// Learn the residual y - x rather than y directly; identical layer
  /// structure, markedly faster convergence for denoising. Off by
  /// default to match Table 2 literally.
  bool residual = true;

  /// Exact Table 2 configuration (512x512 inputs).
  static DDnetConfig paper() { return DDnetConfig{}; }
  /// Reduced configuration for unit tests and fast benchmarks; handles
  /// inputs as small as 2^levels pixels.
  static DDnetConfig tiny() {
    DDnetConfig c;
    c.base_channels = 4;
    c.growth = 4;
    c.dense_layers = 2;
    c.levels = 2;
    return c;
  }
};

class DDnet : public Module {
 public:
  explicit DDnet(DDnetConfig cfg = DDnetConfig::paper());

  /// (N, in_ch, H, W) -> (N, out_ch, H, W). H and W must be divisible by
  /// 2^levels.
  Var forward(const Var& x) const;

  /// Convenience for single 2-D images: (H, W) -> (H, W), no gradients.
  /// In eval mode with frozen batch statistics and graph::fusion_enabled()
  /// this dispatches through a cached compiled fusion graph (bitwise
  /// identical to forward(); see graph/graph.h). core::active_precision()
  /// is sampled once per call: fp16/bf16/int8 run the low-precision
  /// storage pipeline of DESIGN.md §13 on the graph path (int8 scales
  /// come from a seeded synthetic calibration batch, cached per shape);
  /// training / batch-stats-always modes always run the fp32 module walk.
  Tensor enhance(const Tensor& image) const;

  /// Captures the eval-mode forward pass as a graph IR for an
  /// (n, in_channels, h, w) input. Requires frozen batch statistics.
  graph::Graph build_graph(index_t n, index_t h, index_t w) const;

  /// Selects the §4.2 optimization stage for every conv/deconv kernel in
  /// the network (benchmarks sweep this).
  void set_kernel_options(const ops::KernelOptions& opt);

  const DDnetConfig& config() const { return cfg_; }

 protected:
  // Compiled-graph cache invalidation: training moves the weights, a
  // state load rewrites them, and batch-stats-always mode makes the
  // captured batch-norm constants illegal outright.
  void on_set_training(bool training) override;
  void on_set_batch_stats(bool on) override;
  void on_state_loaded() override;

 private:
  std::shared_ptr<graph::CompiledGraph> compiled_for(
      index_t h, index_t w, core::Precision prec) const;
  void invalidate_graphs() const;

  DDnetConfig cfg_;
  std::shared_ptr<Conv2d> stem_;  // 7x7 "Convolution 1"
  std::shared_ptr<BatchNorm> stem_bn_;
  struct EncoderLevel {
    std::shared_ptr<DenseBlock2d> block;
    std::shared_ptr<Conv2d> transition;  // 1x1 back to base width
    std::shared_ptr<BatchNorm> bn;
  };
  struct DecoderLevel {
    std::shared_ptr<Deconv2d> deconv5;  // 5x5, 2*base channels
    std::shared_ptr<BatchNorm> bn5;
    std::shared_ptr<Deconv2d> deconv1;  // 1x1, base (or output) channels
    std::shared_ptr<BatchNorm> bn1;     // null on the output stage
  };
  std::vector<EncoderLevel> encoder_;
  std::vector<DecoderLevel> decoder_;
  std::vector<std::shared_ptr<Conv2d>> all_convs_;
  std::vector<std::shared_ptr<Deconv2d>> all_deconvs_;

  // Per-(H, W) compiled fusion graphs for the enhance() fast path.
  // Guarded by graph_mu_: serve workers share one DDnet const&.
  mutable std::mutex graph_mu_;
  mutable std::unordered_map<std::uint64_t,
                             std::shared_ptr<graph::CompiledGraph>>
      graph_cache_;
  bool batch_stats_always_ = false;
};

}  // namespace ccovid::nn
