#include "nn/dense_block.h"

#include "nn/graph_capture.h"

namespace ccovid::nn {

DenseBlock2d::DenseBlock2d(index_t in_channels, index_t growth,
                           int num_layers, real_t leaky_slope)
    : slope_(leaky_slope) {
  index_t c = in_channels;
  for (int i = 0; i < num_layers; ++i) {
    Layer l;
    // DenseNet-BC bottleneck: the 1x1 produces 4*growth feature maps
    // before the 5x5 growth conv — this width reproduces Table 6's
    // convolution flop count at the 256^2 scale.
    l.bn1 = std::make_shared<BatchNorm>(c);
    l.conv1 = std::make_shared<Conv2d>(c, 4 * growth, 1);
    l.bn2 = std::make_shared<BatchNorm>(4 * growth);
    l.conv5 = std::make_shared<Conv2d>(4 * growth, growth, 5);
    const std::string tag = "layer" + std::to_string(i) + ".";
    register_module(tag + "bn1", l.bn1);
    register_module(tag + "conv1", l.conv1);
    register_module(tag + "bn2", l.bn2);
    register_module(tag + "conv5", l.conv5);
    layers_.push_back(std::move(l));
    c += growth;
  }
  out_channels_ = c;
}

Var DenseBlock2d::forward(const Var& x) const {
  std::vector<Var> features{x};
  Var current = x;
  for (const Layer& l : layers_) {
    Var h = l.bn1->forward(current);
    h = autograd::leaky_relu(h, slope_);
    h = l.conv1->forward(h);
    h = l.bn2->forward(h);
    h = autograd::leaky_relu(h, slope_);
    h = l.conv5->forward(h);
    features.push_back(h);
    current = autograd::concat(features);
  }
  return current;
}

int DenseBlock2d::append_to_graph(graph::Graph* g, int in) const {
  std::vector<int> features{in};
  int current = in;
  for (const Layer& l : layers_) {
    int h = capture_bn(g, current, *l.bn1);
    h = g->add_leaky_relu(h, slope_);
    h = capture_conv(g, h, *l.conv1);
    h = capture_bn(g, h, *l.bn2);
    h = g->add_leaky_relu(h, slope_);
    h = capture_conv(g, h, *l.conv5);
    features.push_back(h);
    current = g->add_concat(features);
  }
  return current;
}

void DenseBlock2d::set_kernel_options(const ops::KernelOptions& opt) {
  for (Layer& l : layers_) {
    l.conv1->set_kernel_options(opt);
    l.conv5->set_kernel_options(opt);
  }
}

DenseBlock3d::DenseBlock3d(index_t in_channels, index_t growth,
                           int num_layers) {
  index_t c = in_channels;
  for (int i = 0; i < num_layers; ++i) {
    Layer l;
    l.bn = std::make_shared<BatchNorm>(c);
    l.conv = std::make_shared<Conv3d>(c, growth, 3);
    const std::string tag = "layer" + std::to_string(i) + ".";
    register_module(tag + "bn", l.bn);
    register_module(tag + "conv", l.conv);
    layers_.push_back(std::move(l));
    c += growth;
  }
  out_channels_ = c;
}

Var DenseBlock3d::forward(const Var& x) const {
  std::vector<Var> features{x};
  Var current = x;
  for (const Layer& l : layers_) {
    Var h = l.bn->forward(current);
    h = autograd::relu(h);
    h = l.conv->forward(h);
    features.push_back(h);
    current = autograd::concat(features);
  }
  return current;
}

}  // namespace ccovid::nn
