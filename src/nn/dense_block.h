// Dense blocks (Huang et al. 2017) as used by DDnet (§2.2.1, Fig. 7) and
// the 3-D classifier (§2.3.2): densely connected layers whose input is
// the concatenation of all previous layers' outputs (the "local shortcut
// connections").
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.h"

namespace ccovid::graph {
class Graph;
}

namespace ccovid::nn {

/// DDnet dense block: `num_layers` layers, each BN -> leaky-ReLU ->
/// conv1x1 (bottleneck, 2*growth) -> BN -> leaky-ReLU -> conv5x5
/// (growth), output concatenated with the block input. With the paper's
/// numbers (input 16, growth 16, 4 layers) the output has 80 channels,
/// matching Table 2.
class DenseBlock2d : public Module {
 public:
  DenseBlock2d(index_t in_channels, index_t growth, int num_layers = 4,
               real_t leaky_slope = 0.01f);
  Var forward(const Var& x) const;
  index_t out_channels() const { return out_channels_; }
  /// Propagates the §4.2 optimization stage to every conv in the block.
  void set_kernel_options(const ops::KernelOptions& opt);

  /// Appends the block's eval-mode ops to `g` starting from value `in`;
  /// returns the output value id. Mirrors forward() node for node.
  int append_to_graph(graph::Graph* g, int in) const;

 private:
  struct Layer {
    std::shared_ptr<BatchNorm> bn1;
    std::shared_ptr<Conv2d> conv1;  // 1x1 bottleneck
    std::shared_ptr<BatchNorm> bn2;
    std::shared_ptr<Conv2d> conv5;  // 5x5 growth
  };
  std::vector<Layer> layers_;
  index_t out_channels_;
  real_t slope_;
};

/// 3-D dense block for the classifier: BN -> ReLU -> conv3x3x3 (growth)
/// per layer, densely concatenated.
class DenseBlock3d : public Module {
 public:
  DenseBlock3d(index_t in_channels, index_t growth, int num_layers);
  Var forward(const Var& x) const;
  index_t out_channels() const { return out_channels_; }

 private:
  struct Layer {
    std::shared_ptr<BatchNorm> bn;
    std::shared_ptr<Conv3d> conv;
  };
  std::vector<Layer> layers_;
  index_t out_channels_;
};

}  // namespace ccovid::nn
