#include "nn/densenet3d.h"

#include <cmath>
#include <stdexcept>

namespace ccovid::nn {

DenseNet3d::DenseNet3d(DenseNet3dConfig cfg) : cfg_(cfg) {
  stem_ = std::make_shared<Conv3d>(cfg_.in_channels, cfg_.init_channels, 3);
  stem_bn_ = std::make_shared<BatchNorm>(cfg_.init_channels);
  register_module("stem", stem_);
  register_module("stem_bn", stem_bn_);

  index_t c = cfg_.init_channels;
  for (std::size_t s = 0; s < cfg_.block_layers.size(); ++s) {
    Stage st;
    st.block = std::make_shared<DenseBlock3d>(c, cfg_.growth,
                                              cfg_.block_layers[s]);
    c = st.block->out_channels();
    const bool last = (s + 1 == cfg_.block_layers.size());
    if (!last) {
      const index_t compressed = std::max<index_t>(
          1, static_cast<index_t>(static_cast<double>(c) *
                                  cfg_.compression));
      st.transition = std::make_shared<Conv3d>(c, compressed, 1);
      st.bn = std::make_shared<BatchNorm>(compressed);
      c = compressed;
    }
    const std::string tag = "stage" + std::to_string(s) + ".";
    register_module(tag + "block", st.block);
    if (st.transition) {
      register_module(tag + "transition", st.transition);
      register_module(tag + "bn", st.bn);
    }
    stages_.push_back(std::move(st));
  }
  head_bn_ = std::make_shared<BatchNorm>(c);
  fc_ = std::make_shared<Linear>(c, 1);
  register_module("head_bn", head_bn_);
  register_module("fc", fc_);
}

Var DenseNet3d::forward(const Var& x) const {
  if (x.value().rank() != 5) {
    throw std::invalid_argument("DenseNet3d: input must be NCDHW");
  }
  const ops::Pool3dParams pool{2, 2, 0};

  Var t = stem_->forward(x);
  t = stem_bn_->forward(t);
  t = autograd::relu(t);
  t = autograd::max_pool3d(t, pool);

  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const Stage& st = stages_[s];
    t = st.block->forward(t);
    if (st.transition) {
      t = st.transition->forward(t);
      t = st.bn->forward(t);
      t = autograd::relu(t);
      // Pool only while all extents still allow it.
      if (t.value().dim(2) >= 2 && t.value().dim(3) >= 2 &&
          t.value().dim(4) >= 2) {
        t = autograd::avg_pool3d(t, pool);
      }
    }
  }
  t = head_bn_->forward(t);
  t = autograd::relu(t);
  t = autograd::global_avg_pool3d(t);
  return fc_->forward(t);
}

double DenseNet3d::predict_probability(const Tensor& volume) const {
  if (volume.rank() != 3) {
    throw std::invalid_argument("predict_probability: expected (D, H, W)");
  }
  autograd::NoGradGuard no_grad;
  Var in(volume.clone().reshape(
      {1, 1, volume.dim(0), volume.dim(1), volume.dim(2)}));
  const Var logit = forward(in);
  const double z = static_cast<double>(logit.value().at(0, 0));
  return 1.0 / (1.0 + std::exp(-z));
}

}  // namespace ccovid::nn
