// 3-D DenseNet classifier — Classification AI (§2.3.2): DenseNet-121
// adapted for 3-D volume classification. Four densely connected blocks,
// each followed by a transition convolution and pooling, then a global
// pool and a fully-connected head emitting one logit (COVID-positive
// probability after sigmoid).
//
// The block/growth sizes are configurable; densenet121_config() gives
// the paper-faithful (6, 12, 24, 16) x growth-32 layout, while the
// default is a compact version sized for CPU-scale experiments.
#pragma once

#include <array>
#include <memory>

#include "nn/dense_block.h"

namespace ccovid::nn {

struct DenseNet3dConfig {
  index_t in_channels = 1;
  index_t init_channels = 8;
  index_t growth = 4;
  std::array<int, 4> block_layers = {2, 2, 2, 2};
  /// Transition keeps this fraction of channels (0.5 in DenseNet).
  double compression = 0.5;

  static DenseNet3dConfig compact() { return DenseNet3dConfig{}; }
  static DenseNet3dConfig densenet121() {
    DenseNet3dConfig c;
    c.init_channels = 64;
    c.growth = 32;
    c.block_layers = {6, 12, 24, 16};
    return c;
  }
};

class DenseNet3d : public Module {
 public:
  explicit DenseNet3d(DenseNet3dConfig cfg = DenseNet3dConfig::compact());

  /// (N, C, D, H, W) -> (N, 1) logits. Spatial extents must survive the
  /// 5 halvings (stem pool + 4 block pools): i.e. be at least 32... 2^5,
  /// though global pooling tolerates any remainder >= 1.
  Var forward(const Var& x) const;

  /// Probability of COVID-positive for one volume (D, H, W); no grads.
  double predict_probability(const Tensor& volume) const;

 private:
  DenseNet3dConfig cfg_;
  std::shared_ptr<Conv3d> stem_;
  std::shared_ptr<BatchNorm> stem_bn_;
  struct Stage {
    std::shared_ptr<DenseBlock3d> block;
    std::shared_ptr<Conv3d> transition;  // 1x1x1 compression (null last)
    std::shared_ptr<BatchNorm> bn;
  };
  std::vector<Stage> stages_;
  std::shared_ptr<BatchNorm> head_bn_;
  std::shared_ptr<Linear> fc_;
};

}  // namespace ccovid::nn
