// Helpers for capturing primitive layers into the inference graph IR
// (graph/graph.h). The captured weight tensors are shallow copies of
// the layer parameters; batch-norm capture is legal only with frozen
// running statistics (eval mode, not set_batch_stats_always) — the
// network builders gate on that before calling these.
#pragma once

#include "graph/graph.h"
#include "nn/layers.h"

namespace ccovid::nn {

inline int capture_conv(graph::Graph* g, int in, const Conv2d& c) {
  return g->add_conv2d(in, c.weight_tensor(), c.bias_tensor(),
                       c.params().pad);
}

inline int capture_deconv(graph::Graph* g, int in, const Deconv2d& d) {
  return g->add_deconv2d(in, d.weight_tensor(), d.bias_tensor(),
                         d.params().pad);
}

inline int capture_bn(graph::Graph* g, int in, const BatchNorm& bn) {
  return g->add_batchnorm(in, bn.gamma_tensor(), bn.beta_tensor(),
                          bn.running_mean(), bn.running_var(), bn.eps());
}

}  // namespace ccovid::nn
