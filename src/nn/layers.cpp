#include "nn/layers.h"

namespace ccovid::nn {

namespace {
Rng g_init_rng(0x5EEDF00Dull);
constexpr double kInitStdDev = 0.01;  // §3.1.1
}  // namespace

Rng& init_rng() { return g_init_rng; }
void seed_init_rng(std::uint64_t seed) { g_init_rng = Rng(seed); }

Conv2d::Conv2d(index_t in_ch, index_t out_ch, index_t ksize, index_t stride,
               index_t pad, bool bias) {
  p_.stride = stride;
  p_.pad = pad < 0 ? ksize / 2 : pad;
  Tensor w({out_ch, in_ch, ksize, ksize});
  init_rng().fill_gaussian(w, 0.0, kInitStdDev);
  weight_ = register_parameter("weight", std::move(w));
  if (bias) {
    bias_ = register_parameter("bias", Tensor({out_ch}));
  }
}

Var Conv2d::forward(const Var& x) const {
  return autograd::conv2d(x, weight_, bias_, p_, opt_);
}

Deconv2d::Deconv2d(index_t in_ch, index_t out_ch, index_t ksize,
                   index_t stride, index_t pad, bool bias) {
  p_.stride = stride;
  p_.pad = pad < 0 ? ksize / 2 : pad;
  Tensor w({in_ch, out_ch, ksize, ksize});
  init_rng().fill_gaussian(w, 0.0, kInitStdDev);
  weight_ = register_parameter("weight", std::move(w));
  if (bias) {
    bias_ = register_parameter("bias", Tensor({out_ch}));
  }
}

Var Deconv2d::forward(const Var& x) const {
  return autograd::deconv2d(x, weight_, bias_, p_, opt_);
}

Conv3d::Conv3d(index_t in_ch, index_t out_ch, index_t ksize, index_t stride,
               index_t pad, bool bias) {
  p_.stride = stride;
  p_.pad = pad < 0 ? ksize / 2 : pad;
  Tensor w({out_ch, in_ch, ksize, ksize, ksize});
  init_rng().fill_gaussian(w, 0.0, kInitStdDev);
  weight_ = register_parameter("weight", std::move(w));
  if (bias) {
    bias_ = register_parameter("bias", Tensor({out_ch}));
  }
}

Var Conv3d::forward(const Var& x) const {
  return autograd::conv3d(x, weight_, bias_, p_);
}

BatchNorm::BatchNorm(index_t channels, real_t momentum, real_t eps)
    : momentum_(momentum), eps_(eps) {
  gamma_ = register_parameter("gamma", Tensor::ones({channels}));
  beta_ = register_parameter("beta", Tensor({channels}));
  running_mean_ = Tensor({channels});
  running_var_ = Tensor::ones({channels});
  register_buffer("running_mean", running_mean_);
  register_buffer("running_var", running_var_);
}

Var BatchNorm::forward(const Var& x) const {
  const bool use_batch_stats = training() || always_batch_stats_;
  // Only genuine training updates the running statistics.
  const real_t momentum = training() ? momentum_ : 0.0f;
  return autograd::batch_norm(x, gamma_, beta_, running_mean_, running_var_,
                              use_batch_stats, momentum, eps_);
}

Linear::Linear(index_t in_features, index_t out_features, bool bias) {
  Tensor w({out_features, in_features});
  init_rng().fill_gaussian(w, 0.0, kInitStdDev);
  weight_ = register_parameter("weight", std::move(w));
  if (bias) {
    bias_ = register_parameter("bias", Tensor({out_features}));
  }
}

Var Linear::forward(const Var& x) const {
  return autograd::linear(x, weight_, bias_);
}

}  // namespace ccovid::nn
