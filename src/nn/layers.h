// Primitive layers. Filters are initialized from N(0, 0.01) as specified
// in §3.1.1 ("all filters are initialized with a random Gaussian
// distribution with a mean of zero and standard deviation of 0.01");
// biases start at zero, batch-norm at identity.
#pragma once

#include <memory>

#include "autograd/functions.h"
#include "nn/module.h"

namespace ccovid::nn {

/// Per-process RNG used by layer initialization. Seed it before building
/// a model for reproducible weights (DDP replicas instead copy weights
/// from the rank-0 model).
Rng& init_rng();
void seed_init_rng(std::uint64_t seed);

class Conv2d : public Module {
 public:
  Conv2d(index_t in_ch, index_t out_ch, index_t ksize, index_t stride = 1,
         index_t pad = -1 /* -1 = same */, bool bias = true);
  Var forward(const Var& x) const;
  /// Kernel-optimization stage used for inference benchmarking.
  void set_kernel_options(const ops::KernelOptions& opt) { opt_ = opt; }

  // Graph-capture accessors (src/graph builders). The tensors are
  // shallow copies sharing storage with the parameters, so a compiled
  // graph sees in-place weight updates without recapture.
  Tensor weight_tensor() const { return weight_.value(); }
  Tensor bias_tensor() const {
    return bias_.defined() ? bias_.value() : Tensor();
  }
  const ops::Conv2dParams& params() const { return p_; }

 private:
  Var weight_, bias_;
  ops::Conv2dParams p_;
  ops::KernelOptions opt_ = ops::KernelOptions::all();
};

class Deconv2d : public Module {
 public:
  Deconv2d(index_t in_ch, index_t out_ch, index_t ksize, index_t stride = 1,
           index_t pad = -1, bool bias = true);
  Var forward(const Var& x) const;
  void set_kernel_options(const ops::KernelOptions& opt) { opt_ = opt; }

  Tensor weight_tensor() const { return weight_.value(); }
  Tensor bias_tensor() const {
    return bias_.defined() ? bias_.value() : Tensor();
  }
  const ops::Deconv2dParams& params() const { return p_; }

 private:
  Var weight_, bias_;
  ops::Deconv2dParams p_;
  ops::KernelOptions opt_ = ops::KernelOptions::all();
};

class Conv3d : public Module {
 public:
  Conv3d(index_t in_ch, index_t out_ch, index_t ksize, index_t stride = 1,
         index_t pad = -1, bool bias = true);
  Var forward(const Var& x) const;

 private:
  Var weight_, bias_;
  ops::Conv3dParams p_;
};

/// Batch normalization over dim 1; shared by 2-D and 3-D networks.
class BatchNorm : public Module {
 public:
  explicit BatchNorm(index_t channels, real_t momentum = 0.1f,
                     real_t eps = 1e-5f);
  Var forward(const Var& x) const;

  // Graph-capture accessors. Running statistics share storage with the
  // registered buffers; eval-mode folding reads them as frozen values,
  // which is only legal while always_batch_stats() is false.
  Tensor gamma_tensor() const { return gamma_.value(); }
  Tensor beta_tensor() const { return beta_.value(); }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  real_t eps() const { return eps_; }
  bool always_batch_stats() const { return always_batch_stats_; }

 protected:
  void on_set_batch_stats(bool on) override { always_batch_stats_ = on; }

 private:
  Var gamma_, beta_;
  mutable Tensor running_mean_, running_var_;
  real_t momentum_, eps_;
  /// When set, eval-mode forward normalizes with the current batch's
  /// statistics (no running-stat update) — see Module::set_batch_stats_always.
  bool always_batch_stats_ = false;
};

class Linear : public Module {
 public:
  Linear(index_t in_features, index_t out_features, bool bias = true);
  Var forward(const Var& x) const;

 private:
  Var weight_, bias_;
};

}  // namespace ccovid::nn
