#include "nn/module.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/half.h"

namespace ccovid::nn {

std::vector<Var> Module::parameters() const {
  std::vector<Var> out;
  for (const auto& [name, v] : named_parameters()) out.push_back(v);
  return out;
}

std::vector<std::pair<std::string, Var>> Module::named_parameters() const {
  std::vector<std::pair<std::string, Var>> out;
  collect_params("", out);
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::named_buffers() const {
  std::vector<std::pair<std::string, Tensor>> out;
  collect_buffers("", out);
  return out;
}

void Module::collect_params(
    const std::string& prefix,
    std::vector<std::pair<std::string, Var>>& out) const {
  for (const auto& [name, v] : params_) {
    out.emplace_back(prefix + name, v);
  }
  for (const auto& [name, child] : children_) {
    child->collect_params(prefix + name + ".", out);
  }
}

void Module::collect_buffers(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor>>& out) const {
  for (const auto& [name, t] : buffers_) {
    out.emplace_back(prefix + name, t);
  }
  for (const auto& [name, child] : children_) {
    child->collect_buffers(prefix + name + ".", out);
  }
}

void Module::set_training(bool training) {
  training_ = training;
  on_set_training(training);
  for (auto& [name, child] : children_) child->set_training(training);
}

void Module::set_batch_stats_always(bool on) {
  on_set_batch_stats(on);
  for (auto& [name, child] : children_) child->set_batch_stats_always(on);
}

index_t Module::num_parameters() const {
  index_t n = 0;
  for (const Var& p : parameters()) n += p.value().numel();
  return n;
}

TensorMap Module::state_dict() const {
  TensorMap dict;
  for (const auto& [name, v] : named_parameters()) {
    dict["param." + name] = v.value().clone();
  }
  for (const auto& [name, t] : named_buffers()) {
    dict["buffer." + name] = t.clone();
  }
  return dict;
}

void Module::load_state_dict(const TensorMap& dict) {
  const auto fetch = [&dict](const std::string& key,
                             const Shape& shape) -> const Tensor& {
    auto it = dict.find(key);
    if (it == dict.end()) {
      throw std::runtime_error("load_state_dict: missing entry " + key);
    }
    if (it->second.shape() != shape) {
      throw std::runtime_error("load_state_dict: shape mismatch for " + key);
    }
    return it->second;
  };
  for (auto& [name, v] : named_parameters()) {
    const Tensor& src = fetch("param." + name, v.value().shape());
    std::memcpy(v.value().data(), src.data(),
                static_cast<std::size_t>(src.numel()) * sizeof(real_t));
  }
  for (auto& [name, t] : named_buffers()) {
    const Tensor& src = fetch("buffer." + name, t.shape());
    // named_buffers returns shallow copies sharing storage with the
    // registered buffer, so writing through `t` updates the module.
    Tensor dst = t;
    std::memcpy(dst.data(), src.data(),
                static_cast<std::size_t>(src.numel()) * sizeof(real_t));
  }
  on_state_loaded();
}

void Module::save(const std::string& path) const {
  save_tensor_map(path, state_dict());
}

void Module::load(const std::string& path) {
  load_state_dict(load_tensor_map(path));
}

void Module::copy_parameters_from(const Module& other) {
  const auto src = other.named_parameters();
  auto dst = named_parameters();
  if (src.size() != dst.size()) {
    throw std::runtime_error("copy_parameters_from: architecture mismatch");
  }
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i].second.value().shape() != dst[i].second.value().shape()) {
      throw std::runtime_error("copy_parameters_from: shape mismatch at " +
                               dst[i].first);
    }
    std::memcpy(dst[i].second.value().data(), src[i].second.value().data(),
                static_cast<std::size_t>(src[i].second.value().numel()) *
                    sizeof(real_t));
  }
  // Buffers (running stats) travel with the parameters.
  const auto sbuf = other.named_buffers();
  auto dbuf = named_buffers();
  for (std::size_t i = 0; i < sbuf.size() && i < dbuf.size(); ++i) {
    Tensor dst_t = dbuf[i].second;
    std::memcpy(dst_t.data(), sbuf[i].second.data(),
                static_cast<std::size_t>(sbuf[i].second.numel()) *
                    sizeof(real_t));
  }
  on_state_loaded();
}

Var Module::register_parameter(const std::string& name, Tensor init) {
  Var v(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(name, v);
  return v;
}

void Module::register_buffer(const std::string& name, const Tensor& t) {
  buffers_.emplace_back(name, t);
}

void Module::register_module(const std::string& name,
                             std::shared_ptr<Module> m) {
  children_.emplace_back(name, std::move(m));
}

void fake_quantize_weights(Module& m, core::Precision prec) {
  if (prec == core::Precision::kF32) return;
  for (auto& [name, v] : m.named_parameters()) {
    Tensor t = v.value();  // shallow: writes land in the parameter
    if (t.rank() < 2) continue;
    real_t* d = t.data();
    const index_t n = t.numel();
    if (prec == core::Precision::kF16) {
      for (index_t i = 0; i < n; ++i) {
        d[i] = f16_bits_to_f32(f32_to_f16_bits_ftz(d[i]));
      }
    } else if (prec == core::Precision::kBf16) {
      for (index_t i = 0; i < n; ++i) {
        d[i] = bf16_bits_to_f32(f32_to_bf16_bits(d[i]));
      }
    } else {  // kInt8: symmetric per-leading-axis scales, the same
              // absmax/127 + clamp + lrintf the graph compiler bakes.
      const index_t slice = n / t.dim(0);
      for (index_t c = 0; c < t.dim(0); ++c) {
        real_t* s = d + c * slice;
        float amax = 0.0f;
        for (index_t i = 0; i < slice; ++i) {
          const float a = std::fabs(s[i]);
          if (a > amax) amax = a;
        }
        const float sw = amax > 0.0f ? amax / 127.0f : 1.0f;
        const float inv = 1.0f / sw;
        for (index_t i = 0; i < slice; ++i) {
          float q = s[i] * inv;
          q = q > -127.0f ? q : -127.0f;
          q = q < 127.0f ? q : 127.0f;
          s[i] = float(std::lrintf(q)) * sw;
        }
      }
    }
  }
}

}  // namespace ccovid::nn
