// Module: the unit of network composition (cf. torch::nn::Module).
// Owns named parameters (Vars), named non-learnable buffers (running
// statistics), and named submodules; provides recursive parameter
// collection for the optimizer / DDP gradient sync, train/eval mode
// switching, and state-dict (de)serialization.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "core/precision.h"
#include "core/random.h"
#include "core/serialize.h"

namespace ccovid::nn {

using autograd::Var;

class Module {
 public:
  virtual ~Module() = default;

  /// All learnable parameters, depth-first (deterministic order — the
  /// DDP all-reduce relies on every replica seeing the same order).
  std::vector<Var> parameters() const;

  /// Parameters with hierarchical dotted names, e.g. "db1.conv1.weight".
  std::vector<std::pair<std::string, Var>> named_parameters() const;

  /// Buffers (running statistics etc.) with hierarchical names.
  std::vector<std::pair<std::string, Tensor>> named_buffers() const;

  /// Training-mode flag, propagated to submodules (controls batch-norm
  /// statistic selection and augmentation hooks).
  void set_training(bool training);
  bool training() const { return training_; }

  /// Recursively switches every BatchNorm in the tree to per-sample
  /// (batch) statistics even in eval mode. Batch-size-1 training — which
  /// the paper uses for Enhancement AI and which our volume classifiers
  /// share — leaves running statistics that are inconsistent with the
  /// statistics the weights were trained against; per-sample statistics
  /// (instance-norm behaviour) are the consistent inference-time choice.
  void set_batch_stats_always(bool on);

  /// Sum of parameter element counts.
  index_t num_parameters() const;

  /// Serializes parameters + buffers. load_state_dict requires that
  /// every entry exists with an identical shape.
  TensorMap state_dict() const;
  void load_state_dict(const TensorMap& dict);
  void save(const std::string& path) const;
  void load(const std::string& path);

  /// Copies parameter *values* from another module of identical
  /// architecture (used to replicate models across DDP workers).
  void copy_parameters_from(const Module& other);

 protected:
  /// Hook for set_batch_stats_always; overridden by BatchNorm.
  virtual void on_set_batch_stats(bool /*on*/) {}

  /// Called by set_training before recursing into children. Networks
  /// that cache compiled inference graphs (nn/ddnet.h) override this to
  /// invalidate them — training moves weights and running statistics
  /// out from under the captured constants.
  virtual void on_set_training(bool /*training*/) {}

  /// Called after load_state_dict / copy_parameters_from finished
  /// writing new parameter and buffer values; same invalidation purpose
  /// as on_set_training.
  virtual void on_state_loaded() {}

  Var register_parameter(const std::string& name, Tensor init);
  /// Registers a shallow copy of `t`: Tensor storage is shared, so
  /// in-place updates through the layer's own member (running statistics)
  /// are visible to state_dict()/load_state_dict(). The layer must not
  /// reassign its member to a different tensor afterwards.
  void register_buffer(const std::string& name, const Tensor& t);
  void register_module(const std::string& name, std::shared_ptr<Module> m);

 private:
  void collect_params(const std::string& prefix,
                      std::vector<std::pair<std::string, Var>>& out) const;
  void collect_buffers(const std::string& prefix,
                       std::vector<std::pair<std::string, Tensor>>& out) const;

  std::vector<std::pair<std::string, Var>> params_;
  std::vector<std::pair<std::string, Tensor>> buffers_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
  bool training_ = true;
};

/// Fake-quant round-trip of a module's weight tensors in place:
/// every rank >= 2 parameter (conv/deconv/linear kernels) is squeezed
/// through the given storage format and back to fp32 — fp16/bf16 via
/// the core/half.h RNE conversions, int8 via symmetric per-leading-axis
/// absmax scales with the executor's clamp+lrintf rounding. Rank-0/1
/// parameters (biases, norm gains) are untouched, mirroring the graph
/// executors, which keep those fp32 at every precision.
///
/// This is how accuracy deltas are measured for networks without a
/// compiled-graph path (the 3-D classifiers behind the AUC numbers):
/// the model sees exactly the weight error the storage format would
/// introduce, while the arithmetic stays fp32. No-op for kF32.
/// Networks that cache compiled graphs (DDnet) should use the
/// precision axis itself instead.
void fake_quantize_weights(Module& m, core::Precision prec);

}  // namespace ccovid::nn
