#include "nn/unet.h"

#include <stdexcept>

#include "nn/graph_capture.h"

namespace ccovid::nn {

UNetDenoiser::UNetDenoiser(UNetConfig cfg) : cfg_(cfg) {
  const index_t base = cfg_.base_channels;
  stem_ = std::make_shared<Conv2d>(cfg_.in_channels, base, 3);
  stem_bn_ = std::make_shared<BatchNorm>(base);
  register_module("stem", stem_);
  register_module("stem_bn", stem_bn_);

  index_t c = base;
  for (int l = 0; l < cfg_.levels; ++l) {
    Level e{std::make_shared<Conv2d>(c, c * 2, 3),
            std::make_shared<BatchNorm>(c * 2)};
    const std::string tag = "enc" + std::to_string(l) + ".";
    register_module(tag + "conv", e.conv);
    register_module(tag + "bn", e.bn);
    encoder_.push_back(std::move(e));
    c *= 2;
  }
  for (int l = 0; l < cfg_.levels; ++l) {
    Level d{std::make_shared<Conv2d>(c + c / 2, c / 2, 3),
            std::make_shared<BatchNorm>(c / 2)};
    const std::string tag = "dec" + std::to_string(l) + ".";
    register_module(tag + "conv", d.conv);
    register_module(tag + "bn", d.bn);
    decoder_.push_back(std::move(d));
    c /= 2;
  }
  head_ = std::make_shared<Conv2d>(base, cfg_.out_channels, 1);
  register_module("head", head_);
}

Var UNetDenoiser::forward(const Var& x) const {
  const index_t div = index_t(1) << cfg_.levels;
  if (x.value().dim(2) % div != 0 || x.value().dim(3) % div != 0) {
    throw std::invalid_argument("UNetDenoiser: extent must divide " +
                                std::to_string(div));
  }
  const ops::Pool2dParams pool{2, 2, 0};
  Var t = stem_->forward(x);
  t = stem_bn_->forward(t);
  t = autograd::leaky_relu(t, cfg_.leaky_slope);

  std::vector<Var> skips;
  for (int l = 0; l < cfg_.levels; ++l) {
    skips.push_back(t);
    t = autograd::max_pool2d(t, pool);
    t = encoder_[l].conv->forward(t);
    t = encoder_[l].bn->forward(t);
    t = autograd::leaky_relu(t, cfg_.leaky_slope);
  }
  for (int l = 0; l < cfg_.levels; ++l) {
    t = autograd::unpool2d(t, 2);
    t = autograd::concat(
        {t, skips[static_cast<std::size_t>(cfg_.levels - 1 - l)]});
    t = decoder_[l].conv->forward(t);
    t = decoder_[l].bn->forward(t);
    t = autograd::leaky_relu(t, cfg_.leaky_slope);
  }
  t = head_->forward(t);
  if (cfg_.residual) {
    t = autograd::add(t, x.requires_grad() ? x : x.detach());
  }
  return t;
}

graph::Graph UNetDenoiser::build_graph(index_t n, index_t h,
                                       index_t w) const {
  const index_t div = index_t(1) << cfg_.levels;
  if (h % div != 0 || w % div != 0) {
    throw std::invalid_argument("UNetDenoiser: extent must divide " +
                                std::to_string(div));
  }
  const ops::Pool2dParams pool{2, 2, 0};
  graph::Graph g;
  const int input = g.add_input({n, cfg_.in_channels, h, w});

  int t = capture_conv(&g, input, *stem_);
  t = capture_bn(&g, t, *stem_bn_);
  t = g.add_leaky_relu(t, cfg_.leaky_slope);

  std::vector<int> skips;
  for (int l = 0; l < cfg_.levels; ++l) {
    skips.push_back(t);
    t = g.add_max_pool(t, pool);
    t = capture_conv(&g, t, *encoder_[size_t(l)].conv);
    t = capture_bn(&g, t, *encoder_[size_t(l)].bn);
    t = g.add_leaky_relu(t, cfg_.leaky_slope);
  }
  for (int l = 0; l < cfg_.levels; ++l) {
    t = g.add_unpool(t, 2);
    t = g.add_concat(
        {t, skips[static_cast<std::size_t>(cfg_.levels - 1 - l)]});
    t = capture_conv(&g, t, *decoder_[size_t(l)].conv);
    t = capture_bn(&g, t, *decoder_[size_t(l)].bn);
    t = g.add_leaky_relu(t, cfg_.leaky_slope);
  }
  t = capture_conv(&g, t, *head_);
  if (cfg_.residual) t = g.add_add(t, input);
  g.mark_output(t);
  return g;
}

std::shared_ptr<graph::CompiledGraph> UNetDenoiser::compiled_for(
    index_t h, index_t w) const {
  const std::uint64_t key =
      (std::uint64_t(std::uint32_t(h)) << 32) | std::uint64_t(std::uint32_t(w));
  std::lock_guard<std::mutex> lock(graph_mu_);
  auto it = graph_cache_.find(key);
  if (it != graph_cache_.end()) return it->second;
  auto cg = std::make_shared<graph::CompiledGraph>(
      graph::compile(build_graph(1, h, w)));
  graph_cache_.emplace(key, cg);
  return cg;
}

void UNetDenoiser::invalidate_graphs() const {
  std::lock_guard<std::mutex> lock(graph_mu_);
  graph_cache_.clear();
}

void UNetDenoiser::on_set_training(bool /*training*/) {
  invalidate_graphs();
}
void UNetDenoiser::on_state_loaded() { invalidate_graphs(); }
void UNetDenoiser::on_set_batch_stats(bool on) {
  batch_stats_always_ = on;
  invalidate_graphs();
}

Tensor UNetDenoiser::enhance(const Tensor& image) const {
  if (image.rank() != 2) {
    throw std::invalid_argument("UNetDenoiser::enhance: expected (H, W)");
  }
  if (!training() && !batch_stats_always_ && graph::fusion_enabled()) {
    auto cg = compiled_for(image.dim(0), image.dim(1));
    Tensor in = image.clone().reshape({1, 1, image.dim(0), image.dim(1)});
    return cg->run(in).reshape({image.dim(0), image.dim(1)});
  }
  autograd::NoGradGuard no_grad;
  Var in(image.clone().reshape({1, 1, image.dim(0), image.dim(1)}));
  return forward(in).value().clone().reshape({image.dim(0), image.dim(1)});
}

}  // namespace ccovid::nn
