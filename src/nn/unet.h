// U-Net-style denoiser — the comparator architecture §6.3 attributes to
// Jin et al. / Chen et al. ("FBP ... followed by a U-Net-like CNN for
// image enhancement"). Used by the ablation benches to compare DDnet's
// dense-block encoder against the plain conv encoder at matched depth.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "nn/layers.h"

namespace ccovid::graph {
class Graph;
class CompiledGraph;
}

namespace ccovid::nn {

struct UNetConfig {
  index_t in_channels = 1;
  index_t out_channels = 1;
  index_t base_channels = 8;
  int levels = 2;
  real_t leaky_slope = 0.01f;
  bool residual = true;
};

class UNetDenoiser : public Module {
 public:
  explicit UNetDenoiser(UNetConfig cfg = UNetConfig{});

  /// (N, C, H, W) -> (N, out, H, W); extents divisible by 2^levels.
  Var forward(const Var& x) const;

  /// Single-image convenience, no gradients. Eval mode with frozen
  /// batch statistics and fusion enabled runs the compiled graph
  /// (bitwise identical; graph/graph.h).
  Tensor enhance(const Tensor& image) const;

  /// Captures the eval-mode forward pass as a graph IR.
  graph::Graph build_graph(index_t n, index_t h, index_t w) const;

 protected:
  void on_set_training(bool training) override;
  void on_set_batch_stats(bool on) override;
  void on_state_loaded() override;

 private:
  std::shared_ptr<graph::CompiledGraph> compiled_for(index_t h,
                                                     index_t w) const;
  void invalidate_graphs() const;

  UNetConfig cfg_;
  struct Level {
    std::shared_ptr<Conv2d> conv;
    std::shared_ptr<BatchNorm> bn;
  };
  std::shared_ptr<Conv2d> stem_;
  std::shared_ptr<BatchNorm> stem_bn_;
  std::vector<Level> encoder_;
  std::vector<Level> decoder_;
  std::shared_ptr<Conv2d> head_;

  mutable std::mutex graph_mu_;
  mutable std::unordered_map<std::uint64_t,
                             std::shared_ptr<graph::CompiledGraph>>
      graph_cache_;
  bool batch_stats_always_ = false;
};

}  // namespace ccovid::nn
