#include "ops/activations.h"

#include <cmath>

#include "core/parallel.h"
#include "core/simd.h"

namespace ccovid::ops {

namespace {

template <typename F>
Tensor elementwise(const Tensor& input, F&& f) {
  Tensor out(input.shape());
  const real_t* ip = input.data();
  real_t* op = out.data();
  const index_t n = input.numel();
  parallel_for_blocked(0, n, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) op[i] = f(ip[i]);
  },
  /*grain=*/65536);
  return out;
}

template <typename F>
Tensor elementwise2(const Tensor& a, const Tensor& b, F&& f) {
  Tensor out(a.shape());
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  real_t* op = out.data();
  const index_t n = a.numel();
  parallel_for_blocked(0, n, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) op[i] = f(pa[i], pb[i]);
  },
  /*grain=*/65536);
  return out;
}

}  // namespace

Tensor relu(const Tensor& input) {
  // Vectorized epilogue: maxps against zero, eight lanes per step.
  Tensor out(input.shape());
  const real_t* ip = input.data();
  real_t* op = out.data();
  const simd::KernelTable& kt = simd::kernels();
  parallel_for_blocked(
      0, input.numel(),
      [&](index_t lo, index_t hi) { kt.relu(ip + lo, op + lo, hi - lo); },
      /*grain=*/65536);
  return out;
}

Tensor relu_backward(const Tensor& grad_out, const Tensor& input) {
  return elementwise2(grad_out, input,
                      [](real_t dy, real_t x) { return x > 0 ? dy : 0.0f; });
}

Tensor leaky_relu(const Tensor& input, real_t slope) {
  Tensor out(input.shape());
  const real_t* ip = input.data();
  real_t* op = out.data();
  const simd::KernelTable& kt = simd::kernels();
  parallel_for_blocked(
      0, input.numel(),
      [&](index_t lo, index_t hi) {
        kt.leaky_relu(ip + lo, op + lo, hi - lo, slope);
      },
      /*grain=*/65536);
  return out;
}

Tensor leaky_relu_backward(const Tensor& grad_out, const Tensor& input,
                           real_t slope) {
  return elementwise2(grad_out, input, [slope](real_t dy, real_t x) {
    return x > 0 ? dy : slope * dy;
  });
}

Tensor sigmoid(const Tensor& input) {
  return elementwise(input, [](real_t x) {
    // Branch on sign for numerical stability at large |x|.
    if (x >= 0) {
      const real_t e = std::exp(-x);
      return 1.0f / (1.0f + e);
    }
    const real_t e = std::exp(x);
    return e / (1.0f + e);
  });
}

Tensor sigmoid_backward(const Tensor& grad_out, const Tensor& output) {
  return elementwise2(grad_out, output, [](real_t dy, real_t y) {
    return dy * y * (1.0f - y);
  });
}

}  // namespace ccovid::ops
