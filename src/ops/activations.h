// Elementwise activations and their backward kernels. DDnet uses
// leaky-ReLU (Table 6); the classifier head uses a sigmoid to produce
// the COVID-positive probability.
#pragma once

#include "core/tensor.h"

namespace ccovid::ops {

Tensor relu(const Tensor& input);
Tensor relu_backward(const Tensor& grad_out, const Tensor& input);

Tensor leaky_relu(const Tensor& input, real_t slope = 0.01f);
Tensor leaky_relu_backward(const Tensor& grad_out, const Tensor& input,
                           real_t slope = 0.01f);

Tensor sigmoid(const Tensor& input);
/// Takes the *output* of sigmoid (dy * y * (1 - y)).
Tensor sigmoid_backward(const Tensor& grad_out, const Tensor& output);

}  // namespace ccovid::ops
