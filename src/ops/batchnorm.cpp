#include "ops/batchnorm.h"

#include <cmath>
#include <stdexcept>

#include "core/parallel.h"
#include "core/simd.h"
#include "trace/trace.h"

namespace ccovid::ops {

namespace {

struct NCS {
  index_t n, c, spatial;
};

NCS split_ncs(const Tensor& t) {
  if (t.rank() < 2) {
    throw std::invalid_argument("batch_norm: rank must be >= 2");
  }
  index_t spatial = 1;
  for (int i = 2; i < t.rank(); ++i) spatial *= t.dim(i);
  return {t.dim(0), t.dim(1), spatial};
}

void check_param(const Tensor& p, index_t c, const char* name) {
  if (!p.defined() || p.rank() != 1 || p.dim(0) != c) {
    throw std::invalid_argument(std::string("batch_norm: ") + name +
                                " must be (C)");
  }
}

}  // namespace

Tensor batch_norm_train(const Tensor& input, const Tensor& gamma,
                        const Tensor& beta, BatchNormStats& stats,
                        real_t eps) {
  TRACE_SPAN("ops.batch_norm_train");
  const NCS d = split_ncs(input);
  check_param(gamma, d.c, "gamma");
  check_param(beta, d.c, "beta");

  stats.mean = Tensor({d.c});
  stats.var = Tensor({d.c});
  stats.inv_std = Tensor({d.c});
  Tensor out(input.shape());

  const real_t* ip = input.data();
  const real_t* gp = gamma.data();
  const real_t* bp = beta.data();
  real_t* mp = stats.mean.data();
  real_t* vp = stats.var.data();
  real_t* sp = stats.inv_std.data();
  real_t* op = out.data();
  const index_t count = d.n * d.spatial;

  parallel_for(
      0, d.c,
      [&](index_t c) {
        double sum = 0.0, sum_sq = 0.0;
        for (index_t ni = 0; ni < d.n; ++ni) {
          const real_t* x = ip + (ni * d.c + c) * d.spatial;
          for (index_t i = 0; i < d.spatial; ++i) {
            sum += x[i];
            sum_sq += static_cast<double>(x[i]) * x[i];
          }
        }
        const double mean = sum / count;
        const double var = std::max(0.0, sum_sq / count - mean * mean);
        const real_t inv_std = static_cast<real_t>(1.0 / std::sqrt(var + eps));
        mp[c] = static_cast<real_t>(mean);
        vp[c] = static_cast<real_t>(var);
        sp[c] = inv_std;
        const real_t scale = gp[c] * inv_std;
        const real_t shift =
            bp[c] - scale * static_cast<real_t>(mean);
        const simd::KernelTable& kt = simd::kernels();
        for (index_t ni = 0; ni < d.n; ++ni) {
          const real_t* x = ip + (ni * d.c + c) * d.spatial;
          real_t* y = op + (ni * d.c + c) * d.spatial;
          kt.scale_shift(x, y, d.spatial, scale, shift);
        }
      },
      /*grain=*/1);
  return out;
}

Tensor batch_norm_infer(const Tensor& input, const Tensor& gamma,
                        const Tensor& beta, const Tensor& running_mean,
                        const Tensor& running_var, real_t eps) {
  TRACE_SPAN("ops.batch_norm_infer");
  const NCS d = split_ncs(input);
  check_param(gamma, d.c, "gamma");
  check_param(beta, d.c, "beta");
  check_param(running_mean, d.c, "running_mean");
  check_param(running_var, d.c, "running_var");

  Tensor out(input.shape());
  const real_t* ip = input.data();
  real_t* op = out.data();
  const real_t* gp = gamma.data();
  const real_t* bp = beta.data();
  const real_t* mp = running_mean.data();
  const real_t* vp = running_var.data();

  const simd::KernelTable& kt = simd::kernels();
  parallel_for(
      0, d.n * d.c,
      [&](index_t plane) {
        const index_t c = plane % d.c;
        const real_t inv_std =
            1.0f / std::sqrt(vp[c] + eps);
        const real_t scale = gp[c] * inv_std;
        const real_t shift = bp[c] - scale * mp[c];
        // Vectorized affine epilogue: same mul-then-add per element as
        // the scalar loop it replaces, eight pixels per vector.
        kt.scale_shift(ip + plane * d.spatial, op + plane * d.spatial,
                       d.spatial, scale, shift);
      },
      /*grain=*/1);
  return out;
}

BatchNormGrads batch_norm_backward(const Tensor& grad_out,
                                   const Tensor& input, const Tensor& gamma,
                                   const BatchNormStats& stats) {
  const NCS d = split_ncs(input);
  BatchNormGrads g{Tensor(input.shape()), Tensor({d.c}), Tensor({d.c})};

  const real_t* gop = grad_out.data();
  const real_t* ip = input.data();
  const real_t* gp = gamma.data();
  const real_t* mp = stats.mean.data();
  const real_t* sp = stats.inv_std.data();
  real_t* gip = g.grad_input.data();
  real_t* ggp = g.grad_gamma.data();
  real_t* gbp = g.grad_beta.data();
  const index_t count = d.n * d.spatial;

  parallel_for(
      0, d.c,
      [&](index_t c) {
        const real_t mean = mp[c];
        const real_t inv_std = sp[c];
        // First pass: sum of dy and sum of dy * xhat.
        double sum_dy = 0.0, sum_dy_xhat = 0.0;
        for (index_t ni = 0; ni < d.n; ++ni) {
          const real_t* dy = gop + (ni * d.c + c) * d.spatial;
          const real_t* x = ip + (ni * d.c + c) * d.spatial;
          for (index_t i = 0; i < d.spatial; ++i) {
            const real_t xhat = (x[i] - mean) * inv_std;
            sum_dy += dy[i];
            sum_dy_xhat += static_cast<double>(dy[i]) * xhat;
          }
        }
        ggp[c] = static_cast<real_t>(sum_dy_xhat);
        gbp[c] = static_cast<real_t>(sum_dy);
        // Second pass: dx = gamma*inv_std/count *
        //   (count*dy - sum_dy - xhat*sum_dy_xhat)
        const real_t k = gp[c] * inv_std / static_cast<real_t>(count);
        const real_t mdy = static_cast<real_t>(sum_dy);
        const real_t mdyx = static_cast<real_t>(sum_dy_xhat);
        for (index_t ni = 0; ni < d.n; ++ni) {
          const real_t* dy = gop + (ni * d.c + c) * d.spatial;
          const real_t* x = ip + (ni * d.c + c) * d.spatial;
          real_t* dx = gip + (ni * d.c + c) * d.spatial;
          for (index_t i = 0; i < d.spatial; ++i) {
            const real_t xhat = (x[i] - mean) * inv_std;
            dx[i] = k * (static_cast<real_t>(count) * dy[i] - mdy -
                         xhat * mdyx);
          }
        }
      },
      /*grain=*/1);
  return g;
}

}  // namespace ccovid::ops
