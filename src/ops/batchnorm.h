// Batch normalization over the channel dimension (dim 1). Works for any
// rank >= 2 tensor laid out (N, C, spatial...), so the same kernels serve
// the 2-D DDnet and the 3-D classifier.
#pragma once

#include "core/tensor.h"

namespace ccovid::ops {

struct BatchNormStats {
  Tensor mean;     ///< per-channel batch mean (C)
  Tensor var;      ///< per-channel biased batch variance (C)
  Tensor inv_std;  ///< 1 / sqrt(var + eps), cached for backward
};

/// Training-mode forward: normalizes with batch statistics, returns them
/// for the backward pass, and folds in the affine (gamma, beta).
Tensor batch_norm_train(const Tensor& input, const Tensor& gamma,
                        const Tensor& beta, BatchNormStats& stats,
                        real_t eps = 1e-5f);

/// Inference-mode forward with running statistics.
Tensor batch_norm_infer(const Tensor& input, const Tensor& gamma,
                        const Tensor& beta, const Tensor& running_mean,
                        const Tensor& running_var, real_t eps = 1e-5f);

struct BatchNormGrads {
  Tensor grad_input;
  Tensor grad_gamma;
  Tensor grad_beta;
};

/// Backward through the training-mode forward.
BatchNormGrads batch_norm_backward(const Tensor& grad_out,
                                   const Tensor& input, const Tensor& gamma,
                                   const BatchNormStats& stats);

}  // namespace ccovid::ops
