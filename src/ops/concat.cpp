#include "ops/concat.h"

#include <cstring>
#include <stdexcept>

namespace ccovid::ops {

Tensor concat_channels(const std::vector<Tensor>& inputs) {
  if (inputs.empty()) {
    throw std::invalid_argument("concat_channels: no inputs");
  }
  const Tensor& first = inputs.front();
  if (first.rank() < 2) {
    throw std::invalid_argument("concat_channels: rank must be >= 2");
  }
  index_t total_c = 0;
  index_t spatial = 1;
  for (int i = 2; i < first.rank(); ++i) spatial *= first.dim(i);
  for (const Tensor& t : inputs) {
    if (t.rank() != first.rank() || t.dim(0) != first.dim(0)) {
      throw std::invalid_argument("concat_channels: batch/rank mismatch");
    }
    for (int i = 2; i < first.rank(); ++i) {
      if (t.dim(i) != first.dim(i)) {
        throw std::invalid_argument("concat_channels: spatial mismatch");
      }
    }
    total_c += t.dim(1);
  }
  index_t dims[Shape::kMaxRank];
  for (int i = 0; i < first.rank(); ++i) dims[i] = first.dim(i);
  dims[1] = total_c;
  Tensor out{Shape(dims, first.rank())};

  const index_t n = first.dim(0);
  real_t* op = out.data();
  for (index_t ni = 0; ni < n; ++ni) {
    index_t c_off = 0;
    for (const Tensor& t : inputs) {
      const index_t c = t.dim(1);
      std::memcpy(op + (ni * total_c + c_off) * spatial,
                  t.data() + ni * c * spatial,
                  static_cast<std::size_t>(c * spatial) * sizeof(real_t));
      c_off += c;
    }
  }
  return out;
}

std::vector<Tensor> split_channels(const Tensor& grad,
                                   const std::vector<index_t>& channels) {
  index_t total_c = 0;
  for (index_t c : channels) total_c += c;
  if (grad.rank() < 2 || grad.dim(1) != total_c) {
    throw std::invalid_argument("split_channels: channel sum mismatch");
  }
  index_t spatial = 1;
  for (int i = 2; i < grad.rank(); ++i) spatial *= grad.dim(i);
  const index_t n = grad.dim(0);

  std::vector<Tensor> outs;
  outs.reserve(channels.size());
  index_t c_off = 0;
  for (index_t c : channels) {
    index_t dims[Shape::kMaxRank];
    for (int i = 0; i < grad.rank(); ++i) dims[i] = grad.dim(i);
    dims[1] = c;
    Tensor t{Shape(dims, grad.rank())};
    for (index_t ni = 0; ni < n; ++ni) {
      std::memcpy(t.data() + ni * c * spatial,
                  grad.data() + (ni * total_c + c_off) * spatial,
                  static_cast<std::size_t>(c * spatial) * sizeof(real_t));
    }
    outs.push_back(std::move(t));
    c_off += c;
  }
  return outs;
}

}  // namespace ccovid::ops
