// Channel concatenation — the dense (local) and global shortcut
// connections of DDnet are concatenations along dim 1 (§2.2.3).
#pragma once

#include <vector>

#include "core/tensor.h"

namespace ccovid::ops {

/// Concatenates along the channel dimension (dim 1). All inputs must
/// agree on every other dimension.
Tensor concat_channels(const std::vector<Tensor>& inputs);

/// Splits a channel-dim gradient back into per-input gradients with the
/// given channel counts.
std::vector<Tensor> split_channels(const Tensor& grad,
                                   const std::vector<index_t>& channels);

}  // namespace ccovid::ops
