#include "ops/conv2d.h"

#include <stdexcept>

#include "core/parallel.h"
#include "core/simd.h"
#include "trace/trace.h"

namespace ccovid::ops {

namespace {

void check_conv_args(const Tensor& input, const Tensor& weight,
                     const Tensor& bias, const Conv2dParams& p) {
  if (input.rank() != 4) {
    throw std::invalid_argument("conv2d: input must be NCHW, got " +
                                input.shape().str());
  }
  if (weight.rank() != 4 || weight.dim(2) != weight.dim(3)) {
    throw std::invalid_argument("conv2d: weight must be (Cout,Cin,K,K)");
  }
  if (input.dim(1) != weight.dim(1)) {
    throw std::invalid_argument("conv2d: channel mismatch: input " +
                                input.shape().str() + " weight " +
                                weight.shape().str());
  }
  if (bias.defined() &&
      (bias.rank() != 1 || bias.dim(0) != weight.dim(0))) {
    throw std::invalid_argument("conv2d: bias must be (Cout)");
  }
  if (p.stride < 1) throw std::invalid_argument("conv2d: stride < 1");
  if (p.pad < 0) throw std::invalid_argument("conv2d: negative pad");
}

// Fixed-K inner kernel; the compiler fully unrolls the K loops.
template <int K>
void conv_plane_unrolled(const real_t* CCOVID_RESTRICT in,  // (Cin,H,W)
                         const real_t* CCOVID_RESTRICT w,   // (Cin,K,K)
                         real_t* CCOVID_RESTRICT out,       // (Ho,Wo)
                         index_t cin, index_t h, index_t wdt, index_t ho,
                         index_t wo, index_t stride, index_t pad,
                         real_t bias_v) {
  for (index_t oy = 0; oy < ho; ++oy) {
    for (index_t ox = 0; ox < wo; ++ox) {
      real_t acc = bias_v;
      const index_t iy0 = oy * stride - pad;
      const index_t ix0 = ox * stride - pad;
      for (index_t ci = 0; ci < cin; ++ci) {
        const real_t* inp = in + ci * h * wdt;
        const real_t* wp = w + ci * K * K;
#pragma GCC unroll 8
        for (int ky = 0; ky < K; ++ky) {
          const index_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
#pragma GCC unroll 8
          for (int kx = 0; kx < K; ++kx) {
            const index_t ix = ix0 + kx;
            if (ix < 0 || ix >= wdt) continue;
            acc += inp[iy * wdt + ix] * wp[ky * K + kx];
          }
        }
      }
      out[oy * wo + ox] = acc;
    }
  }
}

// Generic-K kernel with bounds cached in locals (the PF stage).
void conv_plane_prefetched(const real_t* CCOVID_RESTRICT in,
                           const real_t* CCOVID_RESTRICT w,
                           real_t* CCOVID_RESTRICT out, index_t cin,
                           index_t h, index_t wdt, index_t ho, index_t wo,
                           index_t k, index_t stride, index_t pad,
                           real_t bias_v) {
  const index_t lh = h, lw = wdt, lk = k, ls = stride, lp = pad;
  for (index_t oy = 0; oy < ho; ++oy) {
    for (index_t ox = 0; ox < wo; ++ox) {
      real_t acc = bias_v;
      const index_t iy0 = oy * ls - lp;
      const index_t ix0 = ox * ls - lp;
      for (index_t ci = 0; ci < cin; ++ci) {
        const real_t* inp = in + ci * lh * lw;
        const real_t* wp = w + ci * lk * lk;
        for (index_t ky = 0; ky < lk; ++ky) {
          const index_t iy = iy0 + ky;
          if (iy < 0 || iy >= lh) continue;
          for (index_t kx = 0; kx < lk; ++kx) {
            const index_t ix = ix0 + kx;
            if (ix < 0 || ix >= lw) continue;
            acc += inp[iy * lw + ix] * wp[ky * lk + kx];
          }
        }
      }
      out[oy * wo + ox] = acc;
    }
  }
}

// Baseline (no PF): every inner iteration re-reads the kernel parameters
// through a volatile block, modeling the unoptimized OpenCL kernel that
// fetches sizes from __global argument memory each time. Produces
// identical results; only the parameter loads differ.
struct VolatileBounds {
  volatile index_t h, w, k, stride, pad;
};

void conv_plane_baseline(const real_t* in, const real_t* w, real_t* out,
                         index_t cin, const VolatileBounds& b, index_t ho,
                         index_t wo, real_t bias_v) {
  for (index_t oy = 0; oy < ho; ++oy) {
    for (index_t ox = 0; ox < wo; ++ox) {
      real_t acc = bias_v;
      for (index_t ci = 0; ci < cin; ++ci) {
        for (index_t ky = 0; ky < b.k; ++ky) {
          const index_t iy = oy * b.stride - b.pad + ky;
          if (iy < 0 || iy >= b.h) continue;
          for (index_t kx = 0; kx < b.k; ++kx) {
            const index_t ix = ox * b.stride - b.pad + kx;
            if (ix < 0 || ix >= b.w) continue;
            acc += in[ci * b.h * b.w + iy * b.w + ix] *
                   w[ci * b.k * b.k + ky * b.k + kx];
          }
        }
      }
      out[oy * wo + ox] = acc;
    }
  }
}

}  // namespace

index_t conv_out_extent(index_t in, index_t ksize, index_t stride,
                        index_t pad) {
  return (in + 2 * pad - ksize) / stride + 1;
}

Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              Conv2dParams p, const KernelOptions& opt) {
  check_conv_args(input, weight, bias, p);
  TRACE_SPAN("ops.conv2d");
  const index_t n = input.dim(0), cin = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const index_t cout = weight.dim(0), k = weight.dim(2);
  const index_t ho = conv_out_extent(h, k, p.stride, p.pad);
  const index_t wo = conv_out_extent(w, k, p.stride, p.pad);
  if (ho <= 0 || wo <= 0) {
    throw std::invalid_argument("conv2d: non-positive output extent");
  }
  Tensor out({n, cout, ho, wo});

  const real_t* ip = input.data();
  const real_t* wp = weight.data();
  const real_t* bp = bias.defined() ? bias.data() : nullptr;
  real_t* op = out.data();
  const simd::KernelTable& kt = simd::kernels();

  parallel_for(
      0, n * cout,
      [&](index_t job) {
        const index_t ni = job / cout;
        const index_t co = job % cout;
        const real_t* in_n = ip + ni * cin * h * w;
        const real_t* w_co = wp + co * cin * k * k;
        real_t* out_p = op + (ni * cout + co) * ho * wo;
        const real_t bias_v = bp ? bp[co] : 0.0f;
        if (opt.unroll && p.stride == 1) {
          // Widened-datapath LU stage: 8 output pixels per vector via
          // the dispatched backend; border columns and the scalar
          // emulation accumulate taps in the identical (ci, ky, kx)
          // order, so results match the historical unrolled kernel
          // bitwise on every backend.
          for (index_t oy = 0; oy < ho; ++oy) {
            kt.conv2d_row_s1(in_n, w_co, k * k, out_p + oy * wo, cin, h,
                             w, k, oy, p.pad, wo, bias_v);
          }
          return;
        }
        if (opt.unroll) {
          switch (k) {
            case 1:
              conv_plane_unrolled<1>(in_n, w_co, out_p, cin, h, w, ho, wo,
                                     p.stride, p.pad, bias_v);
              return;
            case 3:
              conv_plane_unrolled<3>(in_n, w_co, out_p, cin, h, w, ho, wo,
                                     p.stride, p.pad, bias_v);
              return;
            case 5:
              conv_plane_unrolled<5>(in_n, w_co, out_p, cin, h, w, ho, wo,
                                     p.stride, p.pad, bias_v);
              return;
            case 7:
              conv_plane_unrolled<7>(in_n, w_co, out_p, cin, h, w, ho, wo,
                                     p.stride, p.pad, bias_v);
              return;
            default:
              break;  // fall through to the prefetched generic kernel
          }
        }
        if (opt.prefetch || opt.unroll) {
          conv_plane_prefetched(in_n, w_co, out_p, cin, h, w, ho, wo, k,
                                p.stride, p.pad, bias_v);
        } else {
          const VolatileBounds b{h, w, k, p.stride, p.pad};
          conv_plane_baseline(in_n, w_co, out_p, cin, b, ho, wo, bias_v);
        }
      },
      /*grain=*/1);
  return out;
}

Tensor conv2d_reference(const Tensor& input, const Tensor& weight,
                        const Tensor& bias, Conv2dParams p) {
  check_conv_args(input, weight, bias, p);
  const index_t n = input.dim(0), cin = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const index_t cout = weight.dim(0), k = weight.dim(2);
  const index_t ho = conv_out_extent(h, k, p.stride, p.pad);
  const index_t wo = conv_out_extent(w, k, p.stride, p.pad);
  Tensor out({n, cout, ho, wo});
  for (index_t ni = 0; ni < n; ++ni) {
    for (index_t co = 0; co < cout; ++co) {
      for (index_t oy = 0; oy < ho; ++oy) {
        for (index_t ox = 0; ox < wo; ++ox) {
          double acc = bias.defined() ? bias.at(co) : 0.0;
          for (index_t ci = 0; ci < cin; ++ci) {
            for (index_t ky = 0; ky < k; ++ky) {
              for (index_t kx = 0; kx < k; ++kx) {
                const index_t iy = oy * p.stride - p.pad + ky;
                const index_t ix = ox * p.stride - p.pad + kx;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                acc += static_cast<double>(input.at(ni, ci, iy, ix)) *
                       weight.at(co, ci, ky, kx);
              }
            }
          }
          out.at(ni, co, oy, ox) = static_cast<real_t>(acc);
        }
      }
    }
  }
  return out;
}

Tensor conv2d_backward_input(const Tensor& grad_out, const Tensor& weight,
                             index_t input_h, index_t input_w,
                             Conv2dParams p) {
  const index_t n = grad_out.dim(0), cout = grad_out.dim(1),
                ho = grad_out.dim(2), wo = grad_out.dim(3);
  const index_t cin = weight.dim(1), k = weight.dim(2);
  Tensor gin({n, cin, input_h, input_w});
  const real_t* gp = grad_out.data();
  const real_t* wp = weight.data();
  real_t* op = gin.data();

  // Gather form: each input pixel collects contributions from every
  // output position whose receptive field covers it — race-free under
  // (n, ci) parallelism.
  parallel_for(
      0, n * cin,
      [&](index_t job) {
        const index_t ni = job / cin;
        const index_t ci = job % cin;
        real_t* g = op + (ni * cin + ci) * input_h * input_w;
        const real_t* go_n = gp + ni * cout * ho * wo;
        for (index_t iy = 0; iy < input_h; ++iy) {
          for (index_t ix = 0; ix < input_w; ++ix) {
            real_t acc = 0.0f;
            for (index_t ky = 0; ky < k; ++ky) {
              const index_t oy_num = iy + p.pad - ky;
              if (oy_num < 0 || oy_num % p.stride != 0) continue;
              const index_t oy = oy_num / p.stride;
              if (oy >= ho) continue;
              for (index_t kx = 0; kx < k; ++kx) {
                const index_t ox_num = ix + p.pad - kx;
                if (ox_num < 0 || ox_num % p.stride != 0) continue;
                const index_t ox = ox_num / p.stride;
                if (ox >= wo) continue;
                for (index_t co = 0; co < cout; ++co) {
                  acc += go_n[(co * ho + oy) * wo + ox] *
                         wp[((co * cin + ci) * k + ky) * k + kx];
                }
              }
            }
            g[iy * input_w + ix] = acc;
          }
        }
      },
      /*grain=*/1);
  return gin;
}

Tensor conv2d_backward_weight(const Tensor& grad_out, const Tensor& input,
                              index_t ksize, Conv2dParams p) {
  const index_t n = grad_out.dim(0), cout = grad_out.dim(1),
                ho = grad_out.dim(2), wo = grad_out.dim(3);
  const index_t cin = input.dim(1), h = input.dim(2), w = input.dim(3);
  Tensor gw({cout, cin, ksize, ksize});
  const real_t* gp = grad_out.data();
  const real_t* ip = input.data();
  real_t* wp = gw.data();

  parallel_for(
      0, cout * cin,
      [&](index_t job) {
        const index_t co = job / cin;
        const index_t ci = job % cin;
        for (index_t ky = 0; ky < ksize; ++ky) {
          for (index_t kx = 0; kx < ksize; ++kx) {
            double acc = 0.0;
            for (index_t ni = 0; ni < n; ++ni) {
              const real_t* go = gp + (ni * cout + co) * ho * wo;
              const real_t* in_p = ip + (ni * cin + ci) * h * w;
              for (index_t oy = 0; oy < ho; ++oy) {
                const index_t iy = oy * p.stride - p.pad + ky;
                if (iy < 0 || iy >= h) continue;
                for (index_t ox = 0; ox < wo; ++ox) {
                  const index_t ix = ox * p.stride - p.pad + kx;
                  if (ix < 0 || ix >= w) continue;
                  acc += static_cast<double>(go[oy * wo + ox]) *
                         in_p[iy * w + ix];
                }
              }
            }
            wp[((co * cin + ci) * ksize + ky) * ksize + kx] =
                static_cast<real_t>(acc);
          }
        }
      },
      /*grain=*/1);
  return gw;
}

Tensor conv2d_backward_bias(const Tensor& grad_out) {
  const index_t n = grad_out.dim(0), cout = grad_out.dim(1),
                hw = grad_out.dim(2) * grad_out.dim(3);
  Tensor gb({cout});
  const real_t* gp = grad_out.data();
  for (index_t co = 0; co < cout; ++co) {
    double acc = 0.0;
    for (index_t ni = 0; ni < n; ++ni) {
      const real_t* g = gp + (ni * cout + co) * hw;
      for (index_t i = 0; i < hw; ++i) acc += g[i];
    }
    gb.at(co) = static_cast<real_t>(acc);
  }
  return gb;
}

}  // namespace ccovid::ops
