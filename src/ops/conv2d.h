// 2-D convolution (NCHW) — forward kernels in the four optimization
// stages of §4.2, a clear reference implementation for testing, and the
// gradient kernels used by autograd.
//
// DDnet uses 7x7/s1, 5x5/s1 and 1x1/s1 convolutions, always with "same"
// padding. The kernels here support arbitrary square filters, stride and
// zero padding.
#pragma once

#include "core/tensor.h"
#include "ops/kernel_options.h"

namespace ccovid::ops {

struct Conv2dParams {
  index_t stride = 1;
  index_t pad = 0;

  /// "Same" padding for odd filter sizes at stride 1.
  static Conv2dParams same(index_t ksize) { return {1, ksize / 2}; }
};

/// Output spatial extent for one dimension.
index_t conv_out_extent(index_t in, index_t ksize, index_t stride,
                        index_t pad);

/// Forward convolution.
///   input  (N, Cin, H, W)
///   weight (Cout, Cin, K, K)
///   bias   (Cout) — pass an undefined Tensor for no bias
/// Returns (N, Cout, Ho, Wo).
///
/// `opt` selects the optimization stage; all stages produce identical
/// results (verified by tests) and differ only in speed:
///   - !prefetch: loop bounds are re-read from memory on every inner
///     iteration (models the unoptimized OpenCL kernel re-reading
///     __global parameters);
///   - prefetch: bounds cached in locals before the hot loop;
///   - unroll: multiply-add loop fully unrolled for K in {1, 3, 5, 7}.
Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              Conv2dParams p, const KernelOptions& opt = KernelOptions::all());

/// Straightforward quadruple-loop reference used to validate the
/// optimized variants and by the instrumented (counting) kernels.
Tensor conv2d_reference(const Tensor& input, const Tensor& weight,
                        const Tensor& bias, Conv2dParams p);

/// dL/dInput given dL/dOutput. `input_h`, `input_w` disambiguate sizes
/// lost to striding.
Tensor conv2d_backward_input(const Tensor& grad_out, const Tensor& weight,
                             index_t input_h, index_t input_w,
                             Conv2dParams p);

/// dL/dWeight.
Tensor conv2d_backward_weight(const Tensor& grad_out, const Tensor& input,
                              index_t ksize, Conv2dParams p);

/// dL/dBias: sum of grad_out over (N, H, W) per output channel.
Tensor conv2d_backward_bias(const Tensor& grad_out);

}  // namespace ccovid::ops
