#include "ops/conv3d.h"

#include <stdexcept>

#include "core/parallel.h"
#include "trace/trace.h"

namespace ccovid::ops {

namespace {

index_t out_extent(index_t in, index_t k, index_t stride, index_t pad) {
  return (in + 2 * pad - k) / stride + 1;
}

void check_args(const Tensor& input, const Tensor& weight,
                const Tensor& bias, const Conv3dParams& p) {
  if (input.rank() != 5) {
    throw std::invalid_argument("conv3d: input must be NCDHW");
  }
  if (weight.rank() != 5 || weight.dim(2) != weight.dim(3) ||
      weight.dim(3) != weight.dim(4)) {
    throw std::invalid_argument("conv3d: weight must be (Cout,Cin,K,K,K)");
  }
  if (input.dim(1) != weight.dim(1)) {
    throw std::invalid_argument("conv3d: channel mismatch");
  }
  if (bias.defined() && (bias.rank() != 1 || bias.dim(0) != weight.dim(0))) {
    throw std::invalid_argument("conv3d: bias must be (Cout)");
  }
  if (p.stride < 1 || p.pad < 0) {
    throw std::invalid_argument("conv3d: bad params");
  }
}

}  // namespace

Tensor conv3d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              Conv3dParams p) {
  check_args(input, weight, bias, p);
  TRACE_SPAN("ops.conv3d");
  const index_t n = input.dim(0), cin = input.dim(1), d = input.dim(2),
                h = input.dim(3), w = input.dim(4);
  const index_t cout = weight.dim(0), k = weight.dim(2);
  const index_t od = out_extent(d, k, p.stride, p.pad);
  const index_t oh = out_extent(h, k, p.stride, p.pad);
  const index_t ow = out_extent(w, k, p.stride, p.pad);
  if (od <= 0 || oh <= 0 || ow <= 0) {
    throw std::invalid_argument("conv3d: non-positive output extent");
  }
  Tensor out({n, cout, od, oh, ow});
  const real_t* ip = input.data();
  const real_t* wp = weight.data();
  const real_t* bp = bias.defined() ? bias.data() : nullptr;
  real_t* op = out.data();

  parallel_for(
      0, n * cout,
      [&](index_t job) {
        const index_t ni = job / cout;
        const index_t co = job % cout;
        const real_t* in_n = ip + ni * cin * d * h * w;
        const real_t* w_co = wp + co * cin * k * k * k;
        real_t* out_p = op + (ni * cout + co) * od * oh * ow;
        const real_t bias_v = bp ? bp[co] : 0.0f;
        for (index_t oz = 0; oz < od; ++oz) {
          for (index_t oy = 0; oy < oh; ++oy) {
            for (index_t ox = 0; ox < ow; ++ox) {
              real_t acc = bias_v;
              for (index_t ci = 0; ci < cin; ++ci) {
                const real_t* in_c = in_n + ci * d * h * w;
                const real_t* w_c = w_co + ci * k * k * k;
                for (index_t kz = 0; kz < k; ++kz) {
                  const index_t iz = oz * p.stride - p.pad + kz;
                  if (iz < 0 || iz >= d) continue;
                  for (index_t ky = 0; ky < k; ++ky) {
                    const index_t iy = oy * p.stride - p.pad + ky;
                    if (iy < 0 || iy >= h) continue;
                    for (index_t kx = 0; kx < k; ++kx) {
                      const index_t ix = ox * p.stride - p.pad + kx;
                      if (ix < 0 || ix >= w) continue;
                      acc += in_c[(iz * h + iy) * w + ix] *
                             w_c[(kz * k + ky) * k + kx];
                    }
                  }
                }
              }
              out_p[(oz * oh + oy) * ow + ox] = acc;
            }
          }
        }
      },
      /*grain=*/1);
  return out;
}

Tensor conv3d_backward_input(const Tensor& grad_out, const Tensor& weight,
                             index_t in_d, index_t in_h, index_t in_w,
                             Conv3dParams p) {
  const index_t n = grad_out.dim(0), cout = grad_out.dim(1),
                od = grad_out.dim(2), oh = grad_out.dim(3),
                ow = grad_out.dim(4);
  const index_t cin = weight.dim(1), k = weight.dim(2);
  Tensor gin({n, cin, in_d, in_h, in_w});
  const real_t* gp = grad_out.data();
  const real_t* wp = weight.data();
  real_t* op = gin.data();

  parallel_for(
      0, n * cin,
      [&](index_t job) {
        const index_t ni = job / cin;
        const index_t ci = job % cin;
        real_t* g = op + (ni * cin + ci) * in_d * in_h * in_w;
        const real_t* go_n = gp + ni * cout * od * oh * ow;
        for (index_t iz = 0; iz < in_d; ++iz) {
          for (index_t iy = 0; iy < in_h; ++iy) {
            for (index_t ix = 0; ix < in_w; ++ix) {
              real_t acc = 0.0f;
              for (index_t kz = 0; kz < k; ++kz) {
                const index_t oz_num = iz + p.pad - kz;
                if (oz_num < 0 || oz_num % p.stride != 0) continue;
                const index_t oz = oz_num / p.stride;
                if (oz >= od) continue;
                for (index_t ky = 0; ky < k; ++ky) {
                  const index_t oy_num = iy + p.pad - ky;
                  if (oy_num < 0 || oy_num % p.stride != 0) continue;
                  const index_t oy = oy_num / p.stride;
                  if (oy >= oh) continue;
                  for (index_t kx = 0; kx < k; ++kx) {
                    const index_t ox_num = ix + p.pad - kx;
                    if (ox_num < 0 || ox_num % p.stride != 0) continue;
                    const index_t ox = ox_num / p.stride;
                    if (ox >= ow) continue;
                    for (index_t co = 0; co < cout; ++co) {
                      acc += go_n[((co * od + oz) * oh + oy) * ow + ox] *
                             wp[(((co * cin + ci) * k + kz) * k + ky) * k +
                                kx];
                    }
                  }
                }
              }
              g[(iz * in_h + iy) * in_w + ix] = acc;
            }
          }
        }
      },
      /*grain=*/1);
  return gin;
}

Tensor conv3d_backward_weight(const Tensor& grad_out, const Tensor& input,
                              index_t ksize, Conv3dParams p) {
  const index_t n = grad_out.dim(0), cout = grad_out.dim(1),
                od = grad_out.dim(2), oh = grad_out.dim(3),
                ow = grad_out.dim(4);
  const index_t cin = input.dim(1), d = input.dim(2), h = input.dim(3),
                w = input.dim(4);
  Tensor gw({cout, cin, ksize, ksize, ksize});
  const real_t* gp = grad_out.data();
  const real_t* ip = input.data();
  real_t* wp = gw.data();

  parallel_for(
      0, cout * cin,
      [&](index_t job) {
        const index_t co = job / cin;
        const index_t ci = job % cin;
        for (index_t kz = 0; kz < ksize; ++kz) {
          for (index_t ky = 0; ky < ksize; ++ky) {
            for (index_t kx = 0; kx < ksize; ++kx) {
              double acc = 0.0;
              for (index_t ni = 0; ni < n; ++ni) {
                const real_t* go = gp + (ni * cout + co) * od * oh * ow;
                const real_t* in_p = ip + (ni * cin + ci) * d * h * w;
                for (index_t oz = 0; oz < od; ++oz) {
                  const index_t iz = oz * p.stride - p.pad + kz;
                  if (iz < 0 || iz >= d) continue;
                  for (index_t oy = 0; oy < oh; ++oy) {
                    const index_t iy = oy * p.stride - p.pad + ky;
                    if (iy < 0 || iy >= h) continue;
                    for (index_t ox = 0; ox < ow; ++ox) {
                      const index_t ix = ox * p.stride - p.pad + kx;
                      if (ix < 0 || ix >= w) continue;
                      acc += static_cast<double>(
                                 go[(oz * oh + oy) * ow + ox]) *
                             in_p[(iz * h + iy) * w + ix];
                    }
                  }
                }
              }
              wp[(((co * cin + ci) * ksize + kz) * ksize + ky) * ksize +
                 kx] = static_cast<real_t>(acc);
            }
          }
        }
      },
      /*grain=*/1);
  return gw;
}

Tensor conv3d_backward_bias(const Tensor& grad_out) {
  const index_t n = grad_out.dim(0), cout = grad_out.dim(1),
                sp = grad_out.dim(2) * grad_out.dim(3) * grad_out.dim(4);
  Tensor gb({cout});
  const real_t* gp = grad_out.data();
  for (index_t co = 0; co < cout; ++co) {
    double acc = 0.0;
    for (index_t ni = 0; ni < n; ++ni) {
      const real_t* g = gp + (ni * cout + co) * sp;
      for (index_t i = 0; i < sp; ++i) acc += g[i];
    }
    gb.at(co) = static_cast<real_t>(acc);
  }
  return gb;
}

}  // namespace ccovid::ops
