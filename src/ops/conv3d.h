// 3-D convolution (NCDHW) — substrate for the 3-D DenseNet classifier
// and the AH-Net-style segmenter (§2.3). Volumes are modest (the
// classifier downsamples quickly), so a clear direct kernel is used.
#pragma once

#include "core/tensor.h"

namespace ccovid::ops {

struct Conv3dParams {
  index_t stride = 1;
  index_t pad = 0;

  static Conv3dParams same(index_t ksize) { return {1, ksize / 2}; }
};

/// input (N, Cin, D, H, W), weight (Cout, Cin, K, K, K) cubic filters,
/// bias (Cout) or undefined. Returns (N, Cout, Do, Ho, Wo).
Tensor conv3d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              Conv3dParams p);

Tensor conv3d_backward_input(const Tensor& grad_out, const Tensor& weight,
                             index_t in_d, index_t in_h, index_t in_w,
                             Conv3dParams p);
Tensor conv3d_backward_weight(const Tensor& grad_out, const Tensor& input,
                              index_t ksize, Conv3dParams p);
Tensor conv3d_backward_bias(const Tensor& grad_out);

}  // namespace ccovid::ops
