#include "ops/deconv2d.h"

#include <stdexcept>

#include "core/parallel.h"
#include "core/simd.h"
#include "trace/trace.h"

namespace ccovid::ops {

namespace {

void check_deconv_args(const Tensor& input, const Tensor& weight,
                       const Tensor& bias, const Deconv2dParams& p) {
  if (input.rank() != 4) {
    throw std::invalid_argument("deconv2d: input must be NCHW");
  }
  if (weight.rank() != 4 || weight.dim(2) != weight.dim(3)) {
    throw std::invalid_argument("deconv2d: weight must be (Cin,Cout,K,K)");
  }
  if (input.dim(1) != weight.dim(0)) {
    throw std::invalid_argument("deconv2d: channel mismatch: input " +
                                input.shape().str() + " weight " +
                                weight.shape().str());
  }
  if (bias.defined() &&
      (bias.rank() != 1 || bias.dim(0) != weight.dim(1))) {
    throw std::invalid_argument("deconv2d: bias must be (Cout)");
  }
  if (p.stride < 1) throw std::invalid_argument("deconv2d: stride < 1");
  if (p.pad < 0) throw std::invalid_argument("deconv2d: negative pad");
}

// --- Scatter baseline (Fig. 9a) -------------------------------------
//
// For each input element, the partial products with every filter tap are
// accumulated straight into the output buffer. The output plane is
// touched K*K*Cin times per element — the "recurring load and store
// operations" §4.2.1 identifies. Parallel over (n, co): each thread owns
// one output plane, so the scatter is race-free.
void deconv_scatter_plane(const real_t* CCOVID_RESTRICT in,  // (Cin,H,W)
                          const real_t* CCOVID_RESTRICT w,   // (Cin,Cout,K,K)
                          real_t* CCOVID_RESTRICT out,       // (Ho,Wo)
                          index_t cin, index_t cout, index_t co, index_t h,
                          index_t wdt, index_t ho, index_t wo, index_t k,
                          index_t stride, index_t pad, real_t bias_v,
                          bool prefetch) {
  for (index_t i = 0; i < ho * wo; ++i) out[i] = bias_v;
  if (prefetch) {
    const index_t lh = h, lw = wdt, lk = k, ls = stride, lp = pad;
    for (index_t ci = 0; ci < cin; ++ci) {
      const real_t* inp = in + ci * lh * lw;
      const real_t* wp = w + (ci * cout + co) * lk * lk;
      for (index_t iy = 0; iy < lh; ++iy) {
        for (index_t ix = 0; ix < lw; ++ix) {
          const real_t v = inp[iy * lw + ix];
          const index_t oy0 = iy * ls - lp;
          const index_t ox0 = ix * ls - lp;
          for (index_t ky = 0; ky < lk; ++ky) {
            const index_t oy = oy0 + ky;
            if (oy < 0 || oy >= ho) continue;
            for (index_t kx = 0; kx < lk; ++kx) {
              const index_t ox = ox0 + kx;
              if (ox < 0 || ox >= wo) continue;
              out[oy * wo + ox] += v * wp[ky * lk + kx];
            }
          }
        }
      }
    }
    return;
  }
  // No-PF flavor: bounds re-read through volatiles each iteration.
  volatile index_t vh = h, vw = wdt, vk = k, vs = stride, vp = pad;
  for (index_t ci = 0; ci < cin; ++ci) {
    for (index_t iy = 0; iy < vh; ++iy) {
      for (index_t ix = 0; ix < vw; ++ix) {
        const real_t v = in[ci * vh * vw + iy * vw + ix];
        for (index_t ky = 0; ky < vk; ++ky) {
          const index_t oy = iy * vs - vp + ky;
          if (oy < 0 || oy >= ho) continue;
          for (index_t kx = 0; kx < vk; ++kx) {
            const index_t ox = ix * vs - vp + kx;
            if (ox < 0 || ox >= wo) continue;
            out[oy * wo + ox] += v * w[(ci * cout + co) * vk * vk + ky * vk + kx];
          }
        }
      }
    }
  }
}

// --- Gather / inverse coefficient mapping (Fig. 9b) ------------------
//
// Each output element solves oy = iy*stride - pad + ky for iy, which
// introduces the integer division + divisibility test the paper flags.
void deconv_gather_plane(const real_t* CCOVID_RESTRICT in,
                         const real_t* CCOVID_RESTRICT w,
                         real_t* CCOVID_RESTRICT out, index_t cin,
                         index_t cout, index_t co, index_t h, index_t wdt,
                         index_t ho, index_t wo, index_t k, index_t stride,
                         index_t pad, real_t bias_v) {
  const index_t lh = h, lw = wdt, lk = k, ls = stride, lp = pad;
  for (index_t oy = 0; oy < ho; ++oy) {
    for (index_t ox = 0; ox < wo; ++ox) {
      real_t acc = bias_v;
      for (index_t ky = 0; ky < lk; ++ky) {
        const index_t iy_num = oy + lp - ky;
        if (iy_num < 0 || iy_num % ls != 0) continue;
        const index_t iy = iy_num / ls;
        if (iy >= lh) continue;
        for (index_t kx = 0; kx < lk; ++kx) {
          const index_t ix_num = ox + lp - kx;
          if (ix_num < 0 || ix_num % ls != 0) continue;
          const index_t ix = ix_num / ls;
          if (ix >= lw) continue;
          for (index_t ci = 0; ci < cin; ++ci) {
            acc += in[ci * lh * lw + iy * lw + ix] *
                   w[(ci * cout + co) * lk * lk + ky * lk + kx];
          }
        }
      }
      out[oy * wo + ox] = acc;
    }
  }
}

// The stride-1 unrolled gather kernel moved into the SIMD layer
// (simd::KernelTable::deconv2d_row_s1): the fixed-K index collapse the
// paper attributes to "vectorization" is now literal — 8 output pixels
// per vector with no division or modulo in the hot loop.

}  // namespace

index_t deconv_out_extent(index_t in, index_t ksize, index_t stride,
                          index_t pad) {
  return (in - 1) * stride - 2 * pad + ksize;
}

Tensor deconv2d(const Tensor& input, const Tensor& weight,
                const Tensor& bias, Deconv2dParams p,
                const KernelOptions& opt) {
  check_deconv_args(input, weight, bias, p);
  TRACE_SPAN("ops.deconv2d");
  const index_t n = input.dim(0), cin = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const index_t cout = weight.dim(1), k = weight.dim(2);
  const index_t ho = deconv_out_extent(h, k, p.stride, p.pad);
  const index_t wo = deconv_out_extent(w, k, p.stride, p.pad);
  if (ho <= 0 || wo <= 0) {
    throw std::invalid_argument("deconv2d: non-positive output extent");
  }
  Tensor out({n, cout, ho, wo});

  const real_t* ip = input.data();
  const real_t* wp = weight.data();
  const real_t* bp = bias.defined() ? bias.data() : nullptr;
  real_t* op = out.data();
  const simd::KernelTable& kt = simd::kernels();

  parallel_for(
      0, n * cout,
      [&](index_t job) {
        const index_t ni = job / cout;
        const index_t co = job % cout;
        const real_t* in_n = ip + ni * cin * h * w;
        real_t* out_p = op + (ni * cout + co) * ho * wo;
        const real_t bias_v = bp ? bp[co] : 0.0f;
        if (!opt.refactor) {
          deconv_scatter_plane(in_n, wp, out_p, cin, cout, co, h, w, ho, wo,
                               k, p.stride, p.pad, bias_v,
                               opt.prefetch || opt.unroll);
          return;
        }
        if (opt.unroll && p.stride == 1) {
          // Vectorized gather (LU stage): lane = output pixel, taps in
          // the ascending (ci, ky, kx) order of the old unrolled
          // kernel. Weight slices for this co start at co*k*k and are
          // cout*k*k apart per ci.
          for (index_t oy = 0; oy < ho; ++oy) {
            kt.deconv2d_row_s1(in_n, wp + co * k * k, cout * k * k,
                               out_p + oy * wo, cin, h, w, k, oy, p.pad,
                               wo, bias_v);
          }
          return;
        }
        deconv_gather_plane(in_n, wp, out_p, cin, cout, co, h, w, ho, wo, k,
                            p.stride, p.pad, bias_v);
      },
      /*grain=*/1);
  return out;
}

Tensor deconv2d_reference(const Tensor& input, const Tensor& weight,
                          const Tensor& bias, Deconv2dParams p) {
  check_deconv_args(input, weight, bias, p);
  const index_t n = input.dim(0), cin = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const index_t cout = weight.dim(1), k = weight.dim(2);
  const index_t ho = deconv_out_extent(h, k, p.stride, p.pad);
  const index_t wo = deconv_out_extent(w, k, p.stride, p.pad);
  Tensor out({n, cout, ho, wo});
  for (index_t ni = 0; ni < n; ++ni) {
    for (index_t co = 0; co < cout; ++co) {
      for (index_t oy = 0; oy < ho; ++oy) {
        for (index_t ox = 0; ox < wo; ++ox) {
          double acc = bias.defined() ? bias.at(co) : 0.0;
          for (index_t ci = 0; ci < cin; ++ci) {
            for (index_t ky = 0; ky < k; ++ky) {
              const index_t iy_num = oy + p.pad - ky;
              if (iy_num < 0 || iy_num % p.stride != 0) continue;
              const index_t iy = iy_num / p.stride;
              if (iy >= h) continue;
              for (index_t kx = 0; kx < k; ++kx) {
                const index_t ix_num = ox + p.pad - kx;
                if (ix_num < 0 || ix_num % p.stride != 0) continue;
                const index_t ix = ix_num / p.stride;
                if (ix >= w) continue;
                acc += static_cast<double>(input.at(ni, ci, iy, ix)) *
                       weight.at(ci, co, ky, kx);
              }
            }
          }
          out.at(ni, co, oy, ox) = static_cast<real_t>(acc);
        }
      }
    }
  }
  return out;
}

Tensor deconv2d_backward_input(const Tensor& grad_out, const Tensor& weight,
                               Deconv2dParams p) {
  // d(deconv)/d(input): gin[iy,ix] = sum_{co,ky,kx} gout[iy*s - pad + ky]
  // * w[ci,co,ky,kx] — a direct correlation of grad_out with the weights.
  const index_t n = grad_out.dim(0), cout = grad_out.dim(1),
                ho = grad_out.dim(2), wo = grad_out.dim(3);
  const index_t cin = weight.dim(0), k = weight.dim(2);
  const index_t h = (ho + 2 * p.pad - k) / p.stride + 1;
  const index_t w = (wo + 2 * p.pad - k) / p.stride + 1;
  Tensor gin({n, cin, h, w});
  const real_t* gp = grad_out.data();
  const real_t* wp = weight.data();
  real_t* op = gin.data();

  parallel_for(
      0, n * cin,
      [&](index_t job) {
        const index_t ni = job / cin;
        const index_t ci = job % cin;
        real_t* g = op + (ni * cin + ci) * h * w;
        const real_t* go_n = gp + ni * cout * ho * wo;
        for (index_t iy = 0; iy < h; ++iy) {
          for (index_t ix = 0; ix < w; ++ix) {
            real_t acc = 0.0f;
            for (index_t ky = 0; ky < k; ++ky) {
              const index_t oy = iy * p.stride - p.pad + ky;
              if (oy < 0 || oy >= ho) continue;
              for (index_t kx = 0; kx < k; ++kx) {
                const index_t ox = ix * p.stride - p.pad + kx;
                if (ox < 0 || ox >= wo) continue;
                for (index_t co = 0; co < cout; ++co) {
                  acc += go_n[(co * ho + oy) * wo + ox] *
                         wp[((ci * cout + co) * k + ky) * k + kx];
                }
              }
            }
            g[iy * w + ix] = acc;
          }
        }
      },
      /*grain=*/1);
  return gin;
}

Tensor deconv2d_backward_weight(const Tensor& grad_out, const Tensor& input,
                                index_t ksize, Deconv2dParams p) {
  const index_t n = grad_out.dim(0), cout = grad_out.dim(1),
                ho = grad_out.dim(2), wo = grad_out.dim(3);
  const index_t cin = input.dim(1), h = input.dim(2), w = input.dim(3);
  Tensor gw({cin, cout, ksize, ksize});
  const real_t* gp = grad_out.data();
  const real_t* ip = input.data();
  real_t* wp = gw.data();

  parallel_for(
      0, cin * cout,
      [&](index_t job) {
        const index_t ci = job / cout;
        const index_t co = job % cout;
        for (index_t ky = 0; ky < ksize; ++ky) {
          for (index_t kx = 0; kx < ksize; ++kx) {
            double acc = 0.0;
            for (index_t ni = 0; ni < n; ++ni) {
              const real_t* go = gp + (ni * cout + co) * ho * wo;
              const real_t* in_p = ip + (ni * cin + ci) * h * w;
              for (index_t iy = 0; iy < h; ++iy) {
                const index_t oy = iy * p.stride - p.pad + ky;
                if (oy < 0 || oy >= ho) continue;
                for (index_t ix = 0; ix < w; ++ix) {
                  const index_t ox = ix * p.stride - p.pad + kx;
                  if (ox < 0 || ox >= wo) continue;
                  acc += static_cast<double>(in_p[iy * w + ix]) *
                         go[oy * wo + ox];
                }
              }
            }
            wp[((ci * cout + co) * ksize + ky) * ksize + kx] =
                static_cast<real_t>(acc);
          }
        }
      },
      /*grain=*/1);
  return gw;
}

Tensor deconv2d_backward_bias(const Tensor& grad_out) {
  const index_t n = grad_out.dim(0), cout = grad_out.dim(1),
                hw = grad_out.dim(2) * grad_out.dim(3);
  Tensor gb({cout});
  const real_t* gp = grad_out.data();
  for (index_t co = 0; co < cout; ++co) {
    double acc = 0.0;
    for (index_t ni = 0; ni < n; ++ni) {
      const real_t* g = gp + (ni * cout + co) * hw;
      for (index_t i = 0; i < hw; ++i) acc += g[i];
    }
    gb.at(co) = static_cast<real_t>(acc);
  }
  return gb;
}

}  // namespace ccovid::ops
