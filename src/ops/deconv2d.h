// 2-D transposed convolution ("deconvolution", NCHW).
//
// This kernel is the centerpiece of the paper's optimization study
// (§4.2.1, Fig. 9): the baseline *scatter* formulation multiplies every
// input element by the whole filter and accumulates partial sums directly
// in the output buffer (recurring global loads+stores); the *refactored*
// formulation (inverse coefficient mapping) gathers, per output element,
// exactly the input elements that affect it, accumulates in a register,
// and writes once. The gather index math contains the integer divisions
// the paper calls out as expensive; the unrolled stride-1 5x5/1x1 paths
// eliminate them.
//
// DDnet's deconvolution layers are stride-1 "same" (output size equals
// input size); general stride/padding is supported for completeness and
// is exercised by the tests.
#pragma once

#include "core/tensor.h"
#include "ops/kernel_options.h"

namespace ccovid::ops {

struct Deconv2dParams {
  index_t stride = 1;
  index_t pad = 0;

  static Deconv2dParams same(index_t ksize) { return {1, ksize / 2}; }
};

/// Output spatial extent: (in - 1) * stride - 2*pad + ksize.
index_t deconv_out_extent(index_t in, index_t ksize, index_t stride,
                          index_t pad);

/// Forward transposed convolution.
///   input  (N, Cin, H, W)
///   weight (Cin, Cout, K, K)   — PyTorch ConvTranspose2d layout
///   bias   (Cout) or undefined
/// Returns (N, Cout, Ho, Wo). `opt.refactor` selects gather vs scatter;
/// all variants agree bit-for-bit up to float addition order.
Tensor deconv2d(const Tensor& input, const Tensor& weight,
                const Tensor& bias, Deconv2dParams p,
                const KernelOptions& opt = KernelOptions::all());

/// Reference (scalar gather) implementation for tests / counting.
Tensor deconv2d_reference(const Tensor& input, const Tensor& weight,
                          const Tensor& bias, Deconv2dParams p);

/// dL/dInput — for a transposed conv this is a plain convolution of
/// grad_out with the (non-flipped) weights.
Tensor deconv2d_backward_input(const Tensor& grad_out, const Tensor& weight,
                               Deconv2dParams p);

/// dL/dWeight.
Tensor deconv2d_backward_weight(const Tensor& grad_out, const Tensor& input,
                                index_t ksize, Deconv2dParams p);

/// dL/dBias: reduce grad_out over (N, H, W).
Tensor deconv2d_backward_bias(const Tensor& grad_out);

}  // namespace ccovid::ops
