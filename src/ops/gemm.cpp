#include "ops/gemm.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/arena.h"
#include "core/parallel.h"
#include "core/simd.h"
#include "trace/trace.h"

namespace ccovid::ops {

namespace {

// Cache block sizes: the B panel (kKc x kNc floats) stays L1/L2
// resident while a block row of A streams through.
constexpr index_t kMc = 64;
constexpr index_t kKc = 256;
constexpr index_t kNc = 256;

// The 4x8 register-tiled micro kernel lives in the SIMD layer
// (simd::KernelTable::sgemm_micro_4x8): lane j owns output column j
// and accumulates sequentially over K, so every backend — scalar
// emulation included — produces the bits the historical scalar
// microkernel did.

// Scalar edge kernel for remainder tiles.
void edge_kernel(const real_t* a, index_t lda, const real_t* b,
                 index_t ldb, real_t* c, index_t ldc, index_t mr,
                 index_t nr, index_t kc) {
  for (index_t i = 0; i < mr; ++i) {
    for (index_t j = 0; j < nr; ++j) {
      real_t acc = 0.0f;
      for (index_t p = 0; p < kc; ++p) {
        acc += a[i * lda + p] * b[p * ldb + j];
      }
      c[i * ldc + j] += acc;
    }
  }
}

}  // namespace

void sgemm(const real_t* a, const real_t* b, real_t* c, index_t m,
           index_t k, index_t n) {
  std::fill_n(c, m * n, 0.0f);
  const simd::KernelTable& kt = simd::kernels();
  // Parallelize across independent row blocks of C.
  const index_t row_blocks = (m + kMc - 1) / kMc;
  parallel_for(
      0, row_blocks,
      [&](index_t rb) {
        // Per-thread arena scratch for the packed B panels: each full
        // 8-wide column strip of the (kc x nc) block is copied into a
        // contiguous kc x 8 tile (ldb = 8), so the micro kernel streams
        // B with unit stride instead of jumping n floats per row. The
        // multiply-add order is unchanged — packing moves bytes, not
        // the FP summation — so results stay bitwise identical.
        ArenaScope scope;
        real_t* bpack = scope.alloc_floats(kKc * kNc);
        const index_t i0 = rb * kMc;
        const index_t i1 = std::min(m, i0 + kMc);
        for (index_t p0 = 0; p0 < k; p0 += kKc) {
          const index_t p1 = std::min(k, p0 + kKc);
          const index_t kc = p1 - p0;
          for (index_t j0 = 0; j0 < n; j0 += kNc) {
            const index_t j1 = std::min(n, j0 + kNc);
            const index_t panels = (j1 - j0) / 8;  // full 8-wide strips
            for (index_t t = 0; t < panels; ++t) {
              const real_t* CCOVID_RESTRICT src = b + p0 * n + j0 + t * 8;
              real_t* CCOVID_RESTRICT dst = bpack + t * kc * 8;
              for (index_t p = 0; p < kc; ++p) {
                for (int jj = 0; jj < 8; ++jj) {
                  dst[p * 8 + jj] = src[p * n + jj];
                }
              }
            }
            // Tile the (i0..i1, j0..j1) block with 4x8 micro tiles.
            index_t i = i0;
            for (; i + 4 <= i1; i += 4) {
              index_t j = j0;
              for (; j + 8 <= j1; j += 8) {
                kt.sgemm_micro_4x8(a + i * k + p0, k,
                                   bpack + ((j - j0) / 8) * kc * 8,
                                   c + i * n + j, n, kc);
              }
              if (j < j1) {
                // Narrow edge columns read B unpacked; the scalar edge
                // kernel is not leading-dimension sensitive.
                edge_kernel(a + i * k + p0, k, b + p0 * n + j, n,
                            c + i * n + j, n, 4, j1 - j, kc);
              }
            }
            if (i < i1) {
              edge_kernel(a + i * k + p0, k, b + p0 * n + j0, n,
                          c + i * n + j0, n, i1 - i, j1 - j0, kc);
            }
          }
        }
      },
      /*grain=*/1);
}

void sgemm_half(const std::uint16_t* a, const std::uint16_t* b, real_t* c,
                index_t m, index_t k, index_t n, bool bf) {
  std::fill_n(c, m * n, 0.0f);
  const simd::KernelTable& kt = simd::kernels();
  const auto cvt = bf ? kt.cvt_bf16_to_f32 : kt.cvt_f16_to_f32;
  const index_t row_blocks = (m + kMc - 1) / kMc;
  parallel_for(
      0, row_blocks,
      [&](index_t rb) {
        // Same blocking as sgemm; the packs widen 16-bit storage to the
        // fp32 the micro kernel consumes. A's block rows widen once per
        // (rb, p0) and B's strips during the pack, so no multiply ever
        // touches a half value and the FP order matches sgemm exactly.
        ArenaScope scope;
        real_t* bpack = scope.alloc_floats(kKc * kNc);
        real_t* apack = scope.alloc_floats(kMc * kKc);
        real_t* bedge = scope.alloc_floats(kKc * 8);
        const index_t i0 = rb * kMc;
        const index_t i1 = std::min(m, i0 + kMc);
        for (index_t p0 = 0; p0 < k; p0 += kKc) {
          const index_t p1 = std::min(k, p0 + kKc);
          const index_t kc = p1 - p0;
          for (index_t i = i0; i < i1; ++i) {
            cvt(a + i * k + p0, apack + (i - i0) * kc, kc);
          }
          for (index_t j0 = 0; j0 < n; j0 += kNc) {
            const index_t j1 = std::min(n, j0 + kNc);
            const index_t panels = (j1 - j0) / 8;
            for (index_t t = 0; t < panels; ++t) {
              const std::uint16_t* CCOVID_RESTRICT src =
                  b + p0 * n + j0 + t * 8;
              real_t* CCOVID_RESTRICT dst = bpack + t * kc * 8;
              for (index_t p = 0; p < kc; ++p) {
                cvt(src + p * n, dst + p * 8, 8);
              }
            }
            // Narrow right-edge columns widen once per block into a
            // kc x nr strip the scalar edge kernel reads in place of
            // sgemm's unpacked B (values and order identical).
            const index_t nr = (j1 - j0) - panels * 8;
            const index_t je = j1 - nr;
            if (nr > 0) {
              for (index_t p = 0; p < kc; ++p) {
                cvt(b + (p0 + p) * n + je, bedge + p * nr, nr);
              }
            }
            index_t i = i0;
            for (; i + 4 <= i1; i += 4) {
              index_t j = j0;
              for (; j + 8 <= j1; j += 8) {
                kt.sgemm_micro_4x8(apack + (i - i0) * kc, kc,
                                   bpack + ((j - j0) / 8) * kc * 8,
                                   c + i * n + j, n, kc);
              }
              if (nr > 0) {
                edge_kernel(apack + (i - i0) * kc, kc, bedge, nr,
                            c + i * n + je, n, 4, nr, kc);
              }
            }
            if (i < i1) {
              for (index_t t = 0; t < panels; ++t) {
                edge_kernel(apack + (i - i0) * kc, kc, bpack + t * kc * 8,
                            8, c + i * n + j0 + t * 8, n, i1 - i, 8, kc);
              }
              if (nr > 0) {
                edge_kernel(apack + (i - i0) * kc, kc, bedge, nr,
                            c + i * n + je, n, i1 - i, nr, kc);
              }
            }
          }
        }
      },
      /*grain=*/1);
}

void qgemm_i8(const std::int8_t* a, const std::int8_t* b, real_t* c,
              index_t m, index_t k, index_t n, float a_scale,
              const float* b_scale) {
  parallel_for(
      0, m,
      [&](index_t i) {
        // Row-local exact int32 accumulation (every |a*b| <= 127*127,
        // far from overflow for any realistic k), then the fp32
        // dequantization epilogue. Integer sums make the result
        // trivially independent of backend and task width.
        ArenaScope scope;
        std::int32_t* acc = static_cast<std::int32_t*>(
            scope.alloc(std::size_t(n) * sizeof(std::int32_t)));
        std::fill_n(acc, n, 0);
        for (index_t p = 0; p < k; ++p) {
          const std::int32_t av = a[i * k + p];
          if (av == 0) continue;
          const std::int8_t* CCOVID_RESTRICT brow = b + p * n;
          for (index_t j = 0; j < n; ++j) {
            acc[j] += av * std::int32_t(brow[j]);
          }
        }
        for (index_t j = 0; j < n; ++j) {
          c[i * n + j] = float(acc[j]) * (a_scale * b_scale[j]);
        }
      },
      /*grain=*/4);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  TRACE_SPAN("ops.gemm.matmul");
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: shapes " + a.shape().str() +
                                " x " + b.shape().str());
  }
  Tensor c({a.dim(0), b.dim(1)});
  sgemm(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
  return c;
}

namespace {

// Shared implementation of im2col writing into caller-owned storage —
// either a Tensor (public im2col) or arena scratch (conv2d_gemm's hot
// path, which must not touch the heap in steady state).
void im2col_into(const Tensor& input, index_t ksize, Conv2dParams p,
                 real_t* op) {
  const index_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const index_t ho = conv_out_extent(h, ksize, p.stride, p.pad);
  const index_t wo = conv_out_extent(w, ksize, p.stride, p.pad);
  const real_t* ip = input.data();
  parallel_for(
      0, n * c,
      [&](index_t job) {
        const index_t ni = job / c;
        const index_t ci = job % c;
        const real_t* in_p = ip + (ni * c + ci) * h * w;
        for (index_t ky = 0; ky < ksize; ++ky) {
          for (index_t kx = 0; kx < ksize; ++kx) {
            real_t* row = op + (ni * c * ksize * ksize +
                                (ci * ksize + ky) * ksize + kx) *
                                   ho * wo;
            if (p.stride == 1) {
              // Stride-1 fast path: for a fixed (ky, kx) the source
              // indices ix = ox - pad + kx are contiguous, so each
              // output row is zero padding around one memcpy. This is
              // pure data movement — no FP ops — so it cannot perturb
              // lane determinism, and it keeps the backend-independent
              // share of conv2d_gemm from swamping the GEMM speedup.
              const index_t xlo =
                  std::min(wo, std::max<index_t>(0, p.pad - kx));
              const index_t xhi =
                  std::max(xlo, std::min(wo, w + p.pad - kx));
              for (index_t oy = 0; oy < ho; ++oy) {
                const index_t iy = oy - p.pad + ky;
                real_t* dst = row + oy * wo;
                if (iy < 0 || iy >= h) {
                  std::memset(dst, 0, sizeof(real_t) * wo);
                  continue;
                }
                if (xlo > 0) std::memset(dst, 0, sizeof(real_t) * xlo);
                if (xhi > xlo) {
                  std::memcpy(dst + xlo,
                              in_p + iy * w + (xlo - p.pad + kx),
                              sizeof(real_t) * (xhi - xlo));
                }
                if (wo > xhi) {
                  std::memset(dst + xhi, 0, sizeof(real_t) * (wo - xhi));
                }
              }
              continue;
            }
            for (index_t oy = 0; oy < ho; ++oy) {
              const index_t iy = oy * p.stride - p.pad + ky;
              for (index_t ox = 0; ox < wo; ++ox) {
                const index_t ix = ox * p.stride - p.pad + kx;
                row[oy * wo + ox] =
                    (iy >= 0 && iy < h && ix >= 0 && ix < w)
                        ? in_p[iy * w + ix]
                        : 0.0f;
              }
            }
          }
        }
      },
      /*grain=*/1);
}

}  // namespace

Tensor im2col(const Tensor& input, index_t ksize, Conv2dParams p) {
  if (input.rank() != 4) {
    throw std::invalid_argument("im2col: input must be NCHW");
  }
  const index_t ho =
      conv_out_extent(input.dim(2), ksize, p.stride, p.pad);
  const index_t wo =
      conv_out_extent(input.dim(3), ksize, p.stride, p.pad);
  Tensor cols(
      {input.dim(0), input.dim(1) * ksize * ksize, ho * wo});
  im2col_into(input, ksize, p, cols.data());
  return cols;
}

Tensor col2im(const Tensor& cols, index_t channels, index_t h, index_t w,
              index_t ksize, Conv2dParams p) {
  const index_t n = cols.dim(0);
  const index_t ho = conv_out_extent(h, ksize, p.stride, p.pad);
  const index_t wo = conv_out_extent(w, ksize, p.stride, p.pad);
  if (cols.dim(1) != channels * ksize * ksize ||
      cols.dim(2) != ho * wo) {
    throw std::invalid_argument("col2im: column shape mismatch");
  }
  Tensor img({n, channels, h, w});
  const real_t* ip = cols.data();
  real_t* op = img.data();
  parallel_for(
      0, n * channels,
      [&](index_t job) {
        const index_t ni = job / channels;
        const index_t ci = job % channels;
        real_t* out_p = op + (ni * channels + ci) * h * w;
        for (index_t ky = 0; ky < ksize; ++ky) {
          for (index_t kx = 0; kx < ksize; ++kx) {
            const real_t* row =
                ip + (ni * channels * ksize * ksize +
                      (ci * ksize + ky) * ksize + kx) *
                         ho * wo;
            for (index_t oy = 0; oy < ho; ++oy) {
              const index_t iy = oy * p.stride - p.pad + ky;
              if (iy < 0 || iy >= h) continue;
              for (index_t ox = 0; ox < wo; ++ox) {
                const index_t ix = ox * p.stride - p.pad + kx;
                if (ix < 0 || ix >= w) continue;
                out_p[iy * w + ix] += row[oy * wo + ox];
              }
            }
          }
        }
      },
      /*grain=*/1);
  return img;
}

Tensor conv2d_gemm(const Tensor& input, const Tensor& weight,
                   const Tensor& bias, Conv2dParams p) {
  TRACE_SPAN("ops.conv2d.gemm");
  if (weight.rank() != 4 || weight.dim(1) != input.dim(1)) {
    throw std::invalid_argument("conv2d_gemm: weight shape mismatch");
  }
  const index_t n = input.dim(0), cout = weight.dim(0),
                k = weight.dim(2);
  const index_t ho = conv_out_extent(input.dim(2), k, p.stride, p.pad);
  const index_t wo = conv_out_extent(input.dim(3), k, p.stride, p.pad);
  const index_t patch = input.dim(1) * k * k;

  // The column matrix is pure scratch: stage it in the calling
  // thread's arena (workers inside the parallel loops may read it —
  // the arena only dictates who frees) so steady-state inference never
  // allocates here.
  ArenaScope scope;
  real_t* cols = scope.alloc_floats(n * patch * ho * wo);
  im2col_into(input, k, p, cols);
  Tensor out({n, cout, ho, wo});
  for (index_t ni = 0; ni < n; ++ni) {
    // (Cout x patch) @ (patch x Ho*Wo).
    sgemm(weight.data(), cols + ni * patch * ho * wo,
          out.data() + ni * cout * ho * wo, cout, patch, ho * wo);
  }
  if (bias.defined()) {
    const simd::KernelTable& kt = simd::kernels();
    real_t* op = out.data();
    for (index_t ni = 0; ni < n; ++ni) {
      for (index_t co = 0; co < cout; ++co) {
        kt.add_scalar(op + (ni * cout + co) * ho * wo, ho * wo,
                      bias.at(co));
      }
    }
  }
  return out;
}

}  // namespace ccovid::ops
