// Small blocked single-precision GEMM and the im2col convolution path
// built on it. Direct convolution (ops/conv2d.h) is memory-bound on the
// DDnet shapes; the im2col+GEMM formulation trades extra memory traffic
// for a compute kernel with far better register/cache reuse — the
// classic alternative kernel strategy on CPUs, provided here so the
// microbenchmarks can compare the two and tests can cross-check them.
#pragma once

#include <cstdint>

#include "core/tensor.h"
#include "ops/conv2d.h"

namespace ccovid::ops {

/// C (m x n) = A (m x k) @ B (k x n), row-major, C overwritten.
/// Cache-blocked with a register-tiled inner kernel; parallel over row
/// blocks.
void sgemm(const real_t* a, const real_t* b, real_t* c, index_t m,
           index_t k, index_t n);

/// sgemm over half-width storage: A and B hold fp16 (bf=false) or bf16
/// (bf=true) bit patterns, C accumulates and stores fp32. The operands
/// stream at half the bytes and widen during the cache-blocking pack —
/// the same convert-on-load discipline as the low-precision conv row
/// kernels — so the multiply-add order is exactly sgemm's and the
/// result is bitwise identical to sgemm() on pre-widened copies of A
/// and B (asserted by tests/test_lowprec.cpp).
void sgemm_half(const std::uint16_t* a, const std::uint16_t* b, real_t* c,
                index_t m, index_t k, index_t n, bool bf);

/// Calibrated symmetric-int8 GEMM: C = (Aq @ Bq) * a_scale * b_scale[j]
/// with exact int32 accumulation and a per-output-column (per-channel)
/// dequantization epilogue. Quantized operands are produced by the
/// caller (absmax/127 scales; see graph::calibrate). Portable reference
/// implementation — the hot int8 path is the graph executor's
/// channel-pair conv kernels; this entry point exists for the im2col /
/// dense layers and as the semantics oracle in tests.
void qgemm_i8(const std::int8_t* a, const std::int8_t* b, real_t* c,
              index_t m, index_t k, index_t n, float a_scale,
              const float* b_scale);

/// Tensor convenience wrapper: returns A @ B for rank-2 tensors.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Unfolds conv patches: input (N, C, H, W) -> (N, C*K*K, Ho*Wo)
/// columns; out-of-bounds taps contribute zeros.
Tensor im2col(const Tensor& input, index_t ksize, Conv2dParams p);

/// Folds columns back (the adjoint of im2col): (N, C*K*K, Ho*Wo) ->
/// (N, C, H, W), accumulating overlaps.
Tensor col2im(const Tensor& cols, index_t channels, index_t h, index_t w,
              index_t ksize, Conv2dParams p);

/// conv2d via im2col + GEMM; numerically identical to ops::conv2d up to
/// float summation order.
Tensor conv2d_gemm(const Tensor& input, const Tensor& weight,
                   const Tensor& bias, Conv2dParams p);

}  // namespace ccovid::ops
